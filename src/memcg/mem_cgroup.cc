#include "memcg/mem_cgroup.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace escra::memcg {

MemCgroup::MemCgroup(std::uint32_t id, Bytes limit) : id_(id) {
  if (limit < 0) throw std::invalid_argument("MemCgroup: negative limit");
  limit_ = limit;
}

void MemCgroup::set_limit(Bytes limit) {
  if (limit < 0) throw std::invalid_argument("set_limit: negative limit");
  limit_ = limit;
}

ChargeResult MemCgroup::try_charge(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("try_charge: negative charge");
  ++charges_;
  if (usage_ + bytes <= limit_) {
    usage_ += bytes;
    return ChargeResult::kOk;
  }
  // Escra's hook point: the charge failed, the OOM killer is imminent.
  const Bytes shortfall = usage_ + bytes - limit_;
  if (oom_hook_ && oom_hook_(*this, bytes, shortfall)) {
    if (usage_ + bytes <= limit_) {
      usage_ += bytes;
      ++oom_rescues_;
      if (obs_rescues_ != nullptr) obs_rescues_->inc();
      return ChargeResult::kRescued;
    }
    // Hook claimed success but the limit is still short: treat as OOM.
  }
  ++oom_kills_;
  if (obs_kills_ != nullptr) obs_kills_->inc();
  return ChargeResult::kOom;
}

void MemCgroup::uncharge(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("uncharge: negative");
  usage_ = std::max<Bytes>(0, usage_ - bytes);
}

void MemCgroup::force_charge(Bytes bytes) {
  if (bytes < 0) throw std::invalid_argument("force_charge: negative");
  usage_ += bytes;
}

void MemCgroup::reset_usage() { usage_ = 0; }

}  // namespace escra::memcg
