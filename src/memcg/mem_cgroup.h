// Model of the Linux memory cgroup with Escra's pre-OOM kernel hook.
//
// The paper adds a hook inside `try_charge()` that fires *after* a charge
// would exceed the cgroup limit but *before* the OOM killer runs
// (Section III / IV-B). The hook forwards the event to the Controller over
// the container's kernel socket; if the Controller raises the limit in time,
// the charge retries and the container survives. Without Escra (static, VPA,
// Autopilot deployments) the same condition kills the container.
//
// This class reproduces that state machine: charge / uncharge, a limit that
// can be resized at runtime without restarting, and a pluggable OOM hook
// whose verdict decides between "retry" and "kill".
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace escra::obs {
class Counter;
}

namespace escra::memcg {

using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;
inline constexpr Bytes kPageSize = 4096;

// Outcome of a charge attempt.
enum class ChargeResult {
  kOk,        // charged within the limit
  kRescued,   // exceeded the limit, the OOM hook raised it, charge succeeded
  kOom,       // exceeded the limit and no rescue: the OOM killer fires
};

class MemCgroup {
 public:
  // The pre-OOM hook. Receives the cgroup, the failed charge size, and the
  // shortfall (bytes by which usage+charge exceeds the limit). Returns true
  // if the limit was raised enough for the charge to be retried (the Escra
  // path), false to let the OOM killer proceed (the vanilla path).
  using OomHook = std::function<bool(MemCgroup&, Bytes charge, Bytes shortfall)>;

  MemCgroup(std::uint32_t id, Bytes limit);

  std::uint32_t id() const { return id_; }

  Bytes usage() const { return usage_; }
  Bytes limit() const { return limit_; }
  Bytes slack() const { return limit_ - usage_; }

  // Raises or lowers the limit. Lowering below current usage is permitted
  // (as in Linux, where reclaim would kick in); the next charge then OOMs
  // unless rescued.
  void set_limit(Bytes limit);

  // Attempts to charge `bytes`. On overflow calls the OOM hook (if any);
  // a successful hook retries the charge once.
  ChargeResult try_charge(Bytes bytes);

  // Releases `bytes` (clamped at zero).
  void uncharge(Bytes bytes);

  // Charges without a limit check; models memory that is already resident
  // (e.g. a container's base image pages right after start).
  void force_charge(Bytes bytes);

  // Drops all charges (container killed / restarted).
  void reset_usage();

  void set_oom_hook(OomHook hook) { oom_hook_ = std::move(hook); }

  // Observability: shared counters bumped when try_charge ends in a kill or
  // a rescue. Null (the default) disables the hook.
  void set_obs_counters(obs::Counter* kills, obs::Counter* rescues) {
    obs_kills_ = kills;
    obs_rescues_ = rescues;
  }

  std::uint64_t oom_kills() const { return oom_kills_; }
  std::uint64_t oom_rescues() const { return oom_rescues_; }
  std::uint64_t charge_count() const { return charges_; }

  // Internal-consistency predicate for the invariant checker: usage and
  // limit are non-negative. usage <= limit is deliberately NOT asserted
  // here — force_charge (resident base memory at restart) and limit cuts
  // below usage are both legitimate Linux behaviours; the checker applies
  // the context-aware rule instead.
  bool state_valid() const { return usage_ >= 0 && limit_ >= 0; }

 private:
  std::uint32_t id_;
  Bytes limit_ = 0;
  Bytes usage_ = 0;
  OomHook oom_hook_;
  std::uint64_t oom_kills_ = 0;
  std::uint64_t oom_rescues_ = 0;
  std::uint64_t charges_ = 0;
  obs::Counter* obs_kills_ = nullptr;
  obs::Counter* obs_rescues_ = nullptr;
};

}  // namespace escra::memcg
