#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace escra::net {

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kCpuTelemetry: return "cpu-telemetry";
    case Channel::kMemoryEvent: return "memory-event";
    case Channel::kControlRpc: return "control-rpc";
    case Channel::kRegistration: return "registration";
    case Channel::kHaReplication: return "ha-replication";
    case Channel::kBwTelemetry: return "bw-telemetry";
    case Channel::kAppData: return "app-data";
    case Channel::kShardControl: return "shard-control";
  }
  return "unknown";
}

Network::Network(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {}

sim::Duration Network::latency_for(Channel channel) const {
  switch (channel) {
    case Channel::kCpuTelemetry:
    case Channel::kBwTelemetry:
    case Channel::kAppData:
      return config_.telemetry_latency;
    case Channel::kMemoryEvent:
    case Channel::kControlRpc:
    case Channel::kRegistration:
    case Channel::kHaReplication:
    case Channel::kShardControl:
      return config_.rpc_latency;
  }
  return config_.rpc_latency;
}

void Network::account(Channel channel, EndpointId from, std::size_t bytes) {
  auto& s = stats_[static_cast<int>(channel)];
  ++s.messages;
  s.bytes += bytes;
  lifetime_bytes_ += bytes;
  ++lifetime_messages_;
  if (from != kUnroutedEndpoint) {
    auto& ep = endpoint_slot_ref(from);
    ++ep.tx_messages;
    ep.tx_bytes += bytes;
  }
  if (obs_bytes_[static_cast<int>(channel)] != nullptr) {
    obs_bytes_[static_cast<int>(channel)]->inc(bytes);
    obs_messages_[static_cast<int>(channel)]->inc();
  }
  if (obs_egress_bytes_ != nullptr) obs_egress_bytes_->inc(bytes);

  const sim::TimePoint now = sim_.now();
  if (now - window_start_ >= config_.bandwidth_window) {
    peak_window_bytes_ = std::max(peak_window_bytes_, window_bytes_);
    // Snap the window boundary to a multiple of the window size so quiet
    // gaps do not stretch a window.
    window_start_ = now - (now % config_.bandwidth_window);
    window_bytes_ = 0;
  }
  window_bytes_ += bytes;
  peak_window_bytes_ = std::max(peak_window_bytes_, window_bytes_);
}

void Network::count_drop(std::size_t bytes) {
  ++dropped_;
  dropped_bytes_ += bytes;
  if (obs_dropped_ != nullptr) obs_dropped_->inc();
  if (obs_dropped_bytes_ != nullptr) obs_dropped_bytes_->inc(bytes);
}

void Network::ensure_fault_rng() {
  // Deterministic default so fault knobs work standalone; callers wanting
  // scenario-level reproducibility install their own via set_fault_rng.
  if (!fault_rng_.has_value()) fault_rng_.emplace(0x5e5cfa0117ULL);
}

void Network::set_fault_rng(sim::Rng rng) { fault_rng_ = rng; }

void Network::set_loss(double rate, sim::Rng rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("set_loss: rate out of [0,1)");
  }
  loss_rate_ = rate;
  fault_rng_ = rng;
}

void Network::set_jitter(sim::Duration max_jitter) {
  if (max_jitter < 0) throw std::invalid_argument("set_jitter: negative");
  max_jitter_ = max_jitter;
  if (max_jitter_ > 0) ensure_fault_rng();
}

void Network::set_drop_rate(Channel channel, double rate) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("set_drop_rate: rate out of [0,1)");
  }
  drop_rate_[static_cast<int>(channel)] = rate;
  if (rate > 0.0) ensure_fault_rng();
}

void Network::set_duplicate_rate(Channel channel, double rate) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("set_duplicate_rate: rate out of [0,1)");
  }
  dup_rate_[static_cast<int>(channel)] = rate;
  if (rate > 0.0) ensure_fault_rng();
}

void Network::set_delay_spike(Channel channel, double rate,
                              sim::Duration extra) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("set_delay_spike: rate out of [0,1)");
  }
  if (extra < 0) throw std::invalid_argument("set_delay_spike: negative");
  spike_rate_[static_cast<int>(channel)] = rate;
  spike_extra_[static_cast<int>(channel)] = extra;
  if (rate > 0.0) ensure_fault_rng();
}

void Network::set_link_down(EndpointId from, EndpointId to, bool down) {
  if (down) {
    down_links_.insert(link_key(from, to));
  } else {
    down_links_.erase(link_key(from, to));
  }
}

void Network::partition(EndpointId a, EndpointId b) {
  set_link_down(a, b, true);
  set_link_down(b, a, true);
}

void Network::heal(EndpointId a, EndpointId b) {
  set_link_down(a, b, false);
  set_link_down(b, a, false);
}

bool Network::link_up(EndpointId from, EndpointId to) const {
  return !down_links_.contains(link_key(from, to));
}

sim::Duration Network::jitter() {
  if (max_jitter_ <= 0 || !fault_rng_.has_value()) return 0;
  return fault_rng_->uniform_int(0, max_jitter_);
}

Network::Route Network::route(Channel channel, EndpointId from, EndpointId to,
                              std::size_t bytes) {
  Route r;
  const int ch = static_cast<int>(channel);
  // Partition check first: a severed link consumes no fault-rng draws, so a
  // partition window does not perturb the fault schedule elsewhere.
  if (from != kUnroutedEndpoint && to != kUnroutedEndpoint &&
      !link_up(from, to)) {
    count_drop(bytes);
    return r;
  }
  // Probabilistic faults draw in a fixed order (drop, duplicate, spike,
  // jitter), each only when armed, keeping the stream stable.
  if (channel == Channel::kCpuTelemetry && loss_rate_ > 0.0 &&
      fault_rng_.has_value() && fault_rng_->chance(loss_rate_)) {
    count_drop(bytes);
    return r;  // datagram lost; UDP telemetry has no retransmit
  }
  if (drop_rate_[ch] > 0.0 && fault_rng_.has_value() &&
      fault_rng_->chance(drop_rate_[ch])) {
    count_drop(bytes);
    return r;
  }
  r.deliver = true;
  // Ingress accounted at the delivery decision, once per message (a
  // duplicate delivery re-runs the callback, not the wire).
  ingress_bytes_ += bytes;
  if (to != kUnroutedEndpoint) {
    auto& ep = endpoint_slot_ref(to);
    ++ep.rx_messages;
    ep.rx_bytes += bytes;
  }
  if (obs_ingress_bytes_ != nullptr) obs_ingress_bytes_->inc(bytes);
  if (dup_rate_[ch] > 0.0 && fault_rng_.has_value() &&
      fault_rng_->chance(dup_rate_[ch])) {
    r.duplicate = true;
    ++duplicated_;
    if (obs_duplicated_ != nullptr) obs_duplicated_->inc();
  }
  r.delay = latency_for(channel);
  if (spike_rate_[ch] > 0.0 && fault_rng_.has_value() &&
      fault_rng_->chance(spike_rate_[ch])) {
    r.delay += spike_extra_[ch];
  }
  r.delay += jitter();
  return r;
}

void Network::send(Channel channel, std::size_t bytes,
                   std::function<void()> on_deliver) {
  send_to(channel, kUnroutedEndpoint, kUnroutedEndpoint, bytes,
          std::move(on_deliver));
}

void Network::send_to(Channel channel, EndpointId from, EndpointId to,
                      std::size_t bytes, std::function<void()> on_deliver) {
  account(channel, from, bytes);  // the wire carried it either way
  const Route r = route(channel, from, to, bytes);
  if (!r.deliver) return;
  if (r.duplicate) {
    // The copy trails the original by one channel latency (e.g. a retried
    // datagram whose first attempt was only slow). Bytes are counted once:
    // the duplication is delivery-level.
    sim_.schedule_coalesced(sim_.now() + r.delay + latency_for(channel),
                            on_deliver);
  }
  sim_.schedule_coalesced(sim_.now() + r.delay, std::move(on_deliver));
}

void Network::send_flow(Channel channel, EndpointId from, EndpointId to,
                        std::uint32_t from_container,
                        std::uint32_t to_container, std::size_t bytes,
                        std::function<void()> on_deliver) {
  // Wire transit starts only once the sender's egress bucket releases the
  // message: accounting then reflects the *shaped* transmit time.
  std::function<void()> wire = [this, channel, from, to, to_container, bytes,
                                cb = std::move(on_deliver)]() {
    account(channel, from, bytes);
    const Route r = route(channel, from, to, bytes);
    if (!r.deliver) return;
    std::function<void()> arrive = [this, to_container, bytes, cb]() {
      if (shaper_ != nullptr && to_container != 0 &&
          shaper_->shape_ingress(to_container, bytes, cb)) {
        return;  // queued behind the receiver's ingress bucket
      }
      cb();
    };
    if (r.duplicate) {
      sim_.schedule_coalesced(sim_.now() + r.delay + latency_for(channel),
                              arrive);
    }
    sim_.schedule_coalesced(sim_.now() + r.delay, std::move(arrive));
  };
  if (shaper_ != nullptr && from_container != 0 &&
      shaper_->shape_egress(from_container, bytes, wire)) {
    return;  // queued behind the sender's egress bucket
  }
  wire();
}

void Network::rpc(std::size_t request_bytes, std::size_t response_bytes,
                  std::function<void()> on_request_delivered,
                  std::function<void()> on_response_delivered) {
  rpc_to(
      kUnroutedEndpoint, kUnroutedEndpoint, request_bytes, response_bytes,
      [req = std::move(on_request_delivered)]() mutable {
        req();
        return true;
      },
      std::move(on_response_delivered));
}

void Network::rpc_to(EndpointId from, EndpointId to, std::size_t request_bytes,
                     std::size_t response_bytes,
                     std::function<bool()> on_request_delivered,
                     std::function<void()> on_response_delivered) {
  account(Channel::kControlRpc, from, request_bytes);
  const Route r = route(Channel::kControlRpc, from, to, request_bytes);
  if (!r.deliver) return;  // request lost; the caller's timeout handles it

  // One delivered request leg: run the handler; if the receiver is alive,
  // account and route the response leg back.
  auto deliver_request = [this, from, to, response_bytes,
                          req = std::move(on_request_delivered),
                          resp = std::move(on_response_delivered)]() {
    if (!req()) return;  // receiver dead: the call just hangs
    account(Channel::kControlRpc, to, response_bytes);
    const Route back = route(Channel::kControlRpc, to, from, response_bytes);
    if (!back.deliver) return;  // response lost
    if (back.duplicate) {
      sim_.schedule_coalesced(
          sim_.now() + back.delay + latency_for(Channel::kControlRpc), resp);
    }
    sim_.schedule_coalesced(sim_.now() + back.delay, resp);
  };
  if (r.duplicate) {
    // Duplicated request: the receiver sees the call twice (idempotency is
    // the receiver's job); each delivery generates its own response leg.
    sim_.schedule_coalesced(
        sim_.now() + r.delay + latency_for(Channel::kControlRpc),
        deliver_request);
  }
  sim_.schedule_coalesced(sim_.now() + r.delay, std::move(deliver_request));
}

void Network::attach_metrics(obs::MetricsRegistry& registry) {
  for (int i = 0; i < kChannelCount; ++i) {
    const std::string base =
        std::string("net.") + channel_name(static_cast<Channel>(i));
    obs_bytes_[i] = &registry.counter(base + ".bytes");
    obs_messages_[i] = &registry.counter(base + ".messages");
  }
  obs_dropped_ = &registry.counter("net.dropped_datagrams");
  obs_duplicated_ = &registry.counter("net.duplicated_messages");
  obs_egress_bytes_ = &registry.counter("net.egress_bytes");
  obs_ingress_bytes_ = &registry.counter("net.ingress_bytes");
  obs_dropped_bytes_ = &registry.counter("net.dropped_bytes");
}

const EndpointStats& Network::endpoint_stats(EndpointId endpoint) const {
  static const EndpointStats kEmpty;
  const std::size_t slot = endpoint_slot(endpoint);
  return slot < endpoint_stats_.size() ? endpoint_stats_[slot] : kEmpty;
}

const ChannelStats& Network::stats(Channel channel) const {
  return stats_[static_cast<int>(channel)];
}

std::uint64_t Network::total_bytes() const { return lifetime_bytes_; }
std::uint64_t Network::total_messages() const { return lifetime_messages_; }

double Network::peak_mbps() const {
  const std::uint64_t peak = std::max(peak_window_bytes_, window_bytes_);
  return static_cast<double>(peak) * 8.0 /
         sim::to_seconds(config_.bandwidth_window) / 1e6;
}

double Network::mean_mbps() const {
  const double elapsed = sim::to_seconds(sim_.now());
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(lifetime_bytes_) * 8.0 / elapsed / 1e6;
}

}  // namespace escra::net
