#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace escra::net {

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kCpuTelemetry: return "cpu-telemetry";
    case Channel::kMemoryEvent: return "memory-event";
    case Channel::kControlRpc: return "control-rpc";
    case Channel::kRegistration: return "registration";
  }
  return "unknown";
}

Network::Network(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {}

sim::Duration Network::latency_for(Channel channel) const {
  switch (channel) {
    case Channel::kCpuTelemetry:
      return config_.telemetry_latency;
    case Channel::kMemoryEvent:
    case Channel::kControlRpc:
    case Channel::kRegistration:
      return config_.rpc_latency;
  }
  return config_.rpc_latency;
}

void Network::account(Channel channel, std::size_t bytes) {
  auto& s = stats_[static_cast<int>(channel)];
  ++s.messages;
  s.bytes += bytes;
  lifetime_bytes_ += bytes;
  ++lifetime_messages_;
  if (obs_bytes_[static_cast<int>(channel)] != nullptr) {
    obs_bytes_[static_cast<int>(channel)]->inc(bytes);
    obs_messages_[static_cast<int>(channel)]->inc();
  }

  const sim::TimePoint now = sim_.now();
  if (now - window_start_ >= config_.bandwidth_window) {
    peak_window_bytes_ = std::max(peak_window_bytes_, window_bytes_);
    // Snap the window boundary to a multiple of the window size so quiet
    // gaps do not stretch a window.
    window_start_ = now - (now % config_.bandwidth_window);
    window_bytes_ = 0;
  }
  window_bytes_ += bytes;
  peak_window_bytes_ = std::max(peak_window_bytes_, window_bytes_);
}

void Network::set_loss(double rate, sim::Rng rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("set_loss: rate out of [0,1)");
  }
  loss_rate_ = rate;
  fault_rng_ = rng;
}

void Network::set_jitter(sim::Duration max_jitter) {
  if (max_jitter < 0) throw std::invalid_argument("set_jitter: negative");
  max_jitter_ = max_jitter;
}

sim::Duration Network::jitter() {
  if (max_jitter_ <= 0 || !fault_rng_.has_value()) return 0;
  return fault_rng_->uniform_int(0, max_jitter_);
}

void Network::send(Channel channel, std::size_t bytes,
                   std::function<void()> on_deliver) {
  account(channel, bytes);  // the wire carried it either way
  if (channel == Channel::kCpuTelemetry && loss_rate_ > 0.0 &&
      fault_rng_.has_value() && fault_rng_->chance(loss_rate_)) {
    ++dropped_;
    if (obs_dropped_ != nullptr) obs_dropped_->inc();
    return;  // datagram lost; UDP telemetry has no retransmit
  }
  sim_.schedule_after(latency_for(channel) + jitter(), std::move(on_deliver));
}

void Network::rpc(std::size_t request_bytes, std::size_t response_bytes,
                  std::function<void()> on_request_delivered,
                  std::function<void()> on_response_delivered) {
  account(Channel::kControlRpc, request_bytes);
  const sim::Duration lat = latency_for(Channel::kControlRpc) + jitter();
  sim_.schedule_after(
      lat, [this, response_bytes, req = std::move(on_request_delivered),
            resp = std::move(on_response_delivered)]() mutable {
        req();
        account(Channel::kControlRpc, response_bytes);
        sim_.schedule_after(latency_for(Channel::kControlRpc) + jitter(),
                            std::move(resp));
      });
}

void Network::attach_metrics(obs::MetricsRegistry& registry) {
  for (int i = 0; i < kChannelCount; ++i) {
    const std::string base =
        std::string("net.") + channel_name(static_cast<Channel>(i));
    obs_bytes_[i] = &registry.counter(base + ".bytes");
    obs_messages_[i] = &registry.counter(base + ".messages");
  }
  obs_dropped_ = &registry.counter("net.dropped_datagrams");
}

const ChannelStats& Network::stats(Channel channel) const {
  static const ChannelStats kEmpty;
  const auto it = stats_.find(static_cast<int>(channel));
  return it == stats_.end() ? kEmpty : it->second;
}

std::uint64_t Network::total_bytes() const { return lifetime_bytes_; }
std::uint64_t Network::total_messages() const { return lifetime_messages_; }

double Network::peak_mbps() const {
  const std::uint64_t peak = std::max(peak_window_bytes_, window_bytes_);
  return static_cast<double>(peak) * 8.0 /
         sim::to_seconds(config_.bandwidth_window) / 1e6;
}

double Network::mean_mbps() const {
  const double elapsed = sim::to_seconds(sim_.now());
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(lifetime_bytes_) * 8.0 / elapsed / 1e6;
}

}  // namespace escra::net
