// Simulated message transport.
//
// Stands in for the paper's kernel TCP/UDP sockets (telemetry, OOM events)
// and gRPC (Controller -> Agent limit updates, reclamation requests). Two
// things matter for the reproduction and are modelled:
//   1. one-way delivery latency, which bounds how fast the control loop can
//      react (Escra's claims are sub-second; limit application is 100s of us),
//   2. per-channel byte accounting, which regenerates the network-overhead
//      microbenchmark (Section VI-I: 12.06 Mbps peak at 32 containers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::obs {
class Counter;
class MetricsRegistry;
}

namespace escra::net {

// Logical traffic classes, matching the paper's transports.
enum class Channel {
  kCpuTelemetry,   // per-period CFS stats, UDP in the paper
  kMemoryEvent,    // OOM events / memory requests, kernel TCP socket
  kControlRpc,     // Controller <-> Agent gRPC (limit updates, reclamation)
  kRegistration,   // container registration at deploy time
};

inline constexpr int kChannelCount = 4;
inline constexpr Channel kAllChannels[kChannelCount] = {
    Channel::kCpuTelemetry, Channel::kMemoryEvent, Channel::kControlRpc,
    Channel::kRegistration};

const char* channel_name(Channel c);

// Counters for one traffic class.
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Samples of aggregate bandwidth over fixed windows, for peak-Mbps reporting.
struct BandwidthSample {
  sim::TimePoint window_start = 0;
  std::uint64_t bytes = 0;
  double mbps(sim::Duration window) const {
    return static_cast<double>(bytes) * 8.0 / sim::to_seconds(window) / 1e6;
  }
};

class Network {
 public:
  struct Config {
    // One-way latency for datagram-style telemetry (same-rack kernel path).
    sim::Duration telemetry_latency = sim::microseconds(80);
    // One-way latency for RPC-style control messages.
    sim::Duration rpc_latency = sim::microseconds(150);
    // Window used for bandwidth sampling.
    sim::Duration bandwidth_window = sim::milliseconds(100);
  };

  explicit Network(sim::Simulation& sim) : Network(sim, Config{}) {}
  Network(sim::Simulation& sim, Config config);

  // Sends `bytes` on `channel`; `on_deliver` runs after the channel latency.
  void send(Channel channel, std::size_t bytes, std::function<void()> on_deliver);

  // Models a synchronous Controller->Agent RPC with fixed request/response
  // sizes. `request_bytes` are accounted at issue time; after the one-way
  // latency `on_request_delivered` runs at the receiver, then
  // `response_bytes` are accounted and `on_response_delivered` runs at the
  // caller after the return leg — a full round trip end to end.
  void rpc(std::size_t request_bytes, std::size_t response_bytes,
           std::function<void()> on_request_delivered,
           std::function<void()> on_response_delivered);

  const ChannelStats& stats(Channel channel) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;

  // Observability: registers per-channel byte/message counters (plus a
  // dropped-datagram counter) as "net.<channel>.bytes" / ".messages" and
  // mirrors all subsequent traffic into them. Unattached, accounting costs
  // nothing extra.
  void attach_metrics(obs::MetricsRegistry& registry);

  // Peak bandwidth observed over any sampling window so far, in Mbps.
  double peak_mbps() const;
  // Mean bandwidth over the whole run so far, in Mbps.
  double mean_mbps() const;

  // --- fault injection ---

  // Drops each UDP telemetry datagram independently with probability
  // `rate`; TCP-carried traffic (memory events, registration) and RPCs are
  // not dropped (retransmits). Used to test that the control loop tolerates
  // lossy telemetry.
  void set_loss(double rate, sim::Rng rng);
  // Adds uniform random jitter in [0, max_jitter] to every delivery.
  void set_jitter(sim::Duration max_jitter);
  std::uint64_t dropped_messages() const { return dropped_; }

  const Config& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }

 private:
  void account(Channel channel, std::size_t bytes);
  sim::Duration latency_for(Channel channel) const;
  sim::Duration jitter();

  sim::Simulation& sim_;
  Config config_;
  std::unordered_map<int, ChannelStats> stats_;
  // Current bandwidth window accumulator.
  sim::TimePoint window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t peak_window_bytes_ = 0;
  std::uint64_t lifetime_bytes_ = 0;
  std::uint64_t lifetime_messages_ = 0;
  double loss_rate_ = 0.0;
  sim::Duration max_jitter_ = 0;
  std::optional<sim::Rng> fault_rng_;
  std::uint64_t dropped_ = 0;
  // Registry mirrors, indexed by channel; all null until attach_metrics.
  obs::Counter* obs_bytes_[kChannelCount] = {};
  obs::Counter* obs_messages_[kChannelCount] = {};
  obs::Counter* obs_dropped_ = nullptr;
};

}  // namespace escra::net
