// Simulated message transport.
//
// Stands in for the paper's kernel TCP/UDP sockets (telemetry, OOM events)
// and gRPC (Controller -> Agent limit updates, reclamation requests). Three
// things matter for the reproduction and are modelled:
//   1. one-way delivery latency, which bounds how fast the control loop can
//      react (Escra's claims are sub-second; limit application is 100s of us),
//   2. per-channel byte accounting, which regenerates the network-overhead
//      microbenchmark (Section VI-I: 12.06 Mbps peak at 32 containers),
//   3. failure: directed link partitions between endpoints plus per-channel
//      probabilistic drop / duplicate / delay-spike faults, so the control
//      plane's reliability layer (retransmit, resync, fail-static) can be
//      exercised deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::obs {
class Counter;
class MetricsRegistry;
}

namespace escra::net {

// Logical traffic classes, matching the paper's transports.
enum class Channel {
  kCpuTelemetry,    // per-period CFS stats, UDP in the paper
  kMemoryEvent,     // OOM events / memory requests, kernel TCP socket
  kControlRpc,      // Controller <-> Agent gRPC (limit updates, reclamation)
  kRegistration,    // container registration at deploy time
  kHaReplication,   // leader -> standby WAL stream + lease announcements
  kBwTelemetry,     // per-period bandwidth shaper stats (src/bw)
  kAppData,         // application data plane (shaped container traffic)
  kShardControl,    // shard <-> shard surplus adverts + borrow/return RPCs
};

inline constexpr int kChannelCount = 8;
inline constexpr Channel kAllChannels[kChannelCount] = {
    Channel::kCpuTelemetry, Channel::kMemoryEvent,   Channel::kControlRpc,
    Channel::kRegistration, Channel::kHaReplication, Channel::kBwTelemetry,
    Channel::kAppData,      Channel::kShardControl};

const char* channel_name(Channel c);

// Network endpoints, for addressed (partitionable) traffic. Worker nodes use
// their zero-based NodeId; the Controller has a reserved address. Traffic
// sent through the legacy unaddressed `send`/`rpc` entry points never
// crosses a partition boundary and is only subject to channel-level faults.
using EndpointId = std::int32_t;
inline constexpr EndpointId kControllerEndpoint = -1;
inline constexpr EndpointId kUnroutedEndpoint = -2;
// Warm-standby controller replicas: standby k (by creation order) answers at
// kStandbyEndpointBase - k, keeping the whole negative standby range clear of
// node ids (>= 0) and the reserved addresses above. Sharded control planes
// give each shard's HA group a disjoint standby band (HaConfig::
// endpoint_base), so the range runs -16 down to kShardEndpointBase + 1.
inline constexpr EndpointId kStandbyEndpointBase = -16;
inline constexpr EndpointId standby_endpoint(int standby_index) {
  return kStandbyEndpointBase - standby_index;
}
// Controller shards (src/shard): shard i's leader seat answers borrow/advert
// traffic at kShardEndpointBase - i. Per-node control traffic still uses
// kControllerEndpoint — a node has one control uplink regardless of how many
// shards manage containers on it — so shard endpoints only address the
// shard-to-shard borrowing protocol (partitionable per shard pair).
inline constexpr EndpointId kShardEndpointBase = -96;
inline constexpr EndpointId shard_endpoint(int shard_index) {
  return kShardEndpointBase - shard_index;
}

// Counters for one traffic class.
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Per-endpoint directional counters. Egress (tx) is accounted when a message
// is handed to the NIC (even if the network later drops it); ingress (rx) is
// accounted once per message at the delivery decision — a duplicated message
// is delivered twice but its bytes crossed the sender's NIC once, so it
// counts once on both sides and tx/rx totals reconcile exactly.
struct EndpointStats {
  std::uint64_t tx_messages = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_messages = 0;
  std::uint64_t rx_bytes = 0;
};

// Data-plane bandwidth shaping hook (implemented by bw::ClusterShaper).
// The network consults it on every send_flow: a shape_* call either passes
// the message through (returns false; `release` is discarded) or queues it
// behind the container's token bucket (returns true; the shaper invokes
// `release` from a sim timer once enough tokens accumulate), so shaping is
// visible in end-to-end latency.
class Shaper {
 public:
  virtual ~Shaper() = default;
  virtual bool shape_egress(std::uint32_t container, std::size_t bytes,
                            std::function<void()> release) = 0;
  virtual bool shape_ingress(std::uint32_t container, std::size_t bytes,
                             std::function<void()> release) = 0;
};

// Samples of aggregate bandwidth over fixed windows, for peak-Mbps reporting.
struct BandwidthSample {
  sim::TimePoint window_start = 0;
  std::uint64_t bytes = 0;
  double mbps(sim::Duration window) const {
    return static_cast<double>(bytes) * 8.0 / sim::to_seconds(window) / 1e6;
  }
};

class Network {
 public:
  struct Config {
    // One-way latency for datagram-style telemetry (same-rack kernel path).
    sim::Duration telemetry_latency = sim::microseconds(80);
    // One-way latency for RPC-style control messages.
    sim::Duration rpc_latency = sim::microseconds(150);
    // Window used for bandwidth sampling.
    sim::Duration bandwidth_window = sim::milliseconds(100);
  };

  explicit Network(sim::Simulation& sim) : Network(sim, Config{}) {}
  Network(sim::Simulation& sim, Config config);

  // Sends `bytes` on `channel`; `on_deliver` runs after the channel latency.
  // Unaddressed: never partitioned (see send_to).
  void send(Channel channel, std::size_t bytes, std::function<void()> on_deliver);

  // Addressed variant: the message travels the directed link `from -> to`
  // and is lost (silently, after byte accounting — the NIC transmitted it)
  // when that link is partitioned or the channel's drop fault fires.
  void send_to(Channel channel, EndpointId from, EndpointId to,
               std::size_t bytes, std::function<void()> on_deliver);

  // Container-attributed data-plane send. Like send_to, but the message is
  // charged to `from_container`'s egress and `to_container`'s ingress token
  // buckets when a shaper is attached (container id 0 = unattributed, never
  // shaped). Egress shaping happens *before* the wire — bytes are accounted
  // when the message actually transmits, so shaped traffic shows the shaped
  // rate in the bandwidth meters; ingress shaping happens after transit,
  // before `on_deliver`. With no shaper attached this is exactly send_to.
  void send_flow(Channel channel, EndpointId from, EndpointId to,
                 std::uint32_t from_container, std::uint32_t to_container,
                 std::size_t bytes, std::function<void()> on_deliver);

  // Attaches/detaches the bandwidth shaper consulted by send_flow. Nullable;
  // shaping is strictly opt-in and traffic through the other entry points is
  // never shaped.
  void set_shaper(Shaper* shaper) { shaper_ = shaper; }
  Shaper* shaper() const { return shaper_; }

  // Models a synchronous Controller->Agent RPC with fixed request/response
  // sizes. `request_bytes` are accounted at issue time; after the one-way
  // latency `on_request_delivered` runs at the receiver, then
  // `response_bytes` are accounted and `on_response_delivered` runs at the
  // caller after the return leg — a full round trip end to end. Unaddressed:
  // the round trip is infallible (callers relying on this must not need
  // partition semantics).
  void rpc(std::size_t request_bytes, std::size_t response_bytes,
           std::function<void()> on_request_delivered,
           std::function<void()> on_response_delivered);

  // Addressed, fallible RPC. Each leg independently traverses the directed
  // link (`from -> to` for the request, `to -> from` for the response) and
  // can be lost to a partition or a drop fault — the caller sees silence and
  // must retransmit. `on_request_delivered` returns false to model a dead
  // receiver (process gone: no response is ever generated). A duplicated
  // request leg delivers the request twice, exercising receiver idempotency.
  void rpc_to(EndpointId from, EndpointId to, std::size_t request_bytes,
              std::size_t response_bytes,
              std::function<bool()> on_request_delivered,
              std::function<void()> on_response_delivered);

  const ChannelStats& stats(Channel channel) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;

  // Directional aggregates (every entry point, all channels). Every byte
  // handed to a NIC is either delivered or dropped, so
  //   egress_bytes() == ingress_bytes() + dropped_bytes()
  // holds exactly at all times (duplicate deliveries count once).
  std::uint64_t egress_bytes() const { return lifetime_bytes_; }
  std::uint64_t ingress_bytes() const { return ingress_bytes_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

  // Per-endpoint tx/rx counters for addressed traffic (send_to / rpc_to /
  // send_flow). Unaddressed sends are aggregate-only.
  const EndpointStats& endpoint_stats(EndpointId endpoint) const;

  // Observability: registers per-channel byte/message counters (plus
  // dropped/duplicated message counters) as "net.<channel>.bytes" /
  // ".messages" and mirrors all subsequent traffic into them. Unattached,
  // accounting costs nothing extra.
  void attach_metrics(obs::MetricsRegistry& registry);

  // Peak bandwidth observed over any sampling window so far, in Mbps.
  double peak_mbps() const;
  // Mean bandwidth over the whole run so far, in Mbps.
  double mean_mbps() const;

  // --- fault injection ---

  // Seeds the RNG all probabilistic faults (loss, drop, duplicate, delay
  // spike) and jitter draw from. set_loss also installs its rng for
  // backward compatibility; the other knobs auto-seed a default
  // deterministic stream if none was provided — pass your own for
  // scenario-level reproducibility.
  void set_fault_rng(sim::Rng rng);

  // Drops each UDP telemetry datagram independently with probability
  // `rate`; TCP-carried traffic (memory events, registration) and RPCs are
  // not dropped by *this* knob (TCP retransmits; use set_drop_rate or
  // partitions to break them). Used to test that the control loop tolerates
  // lossy telemetry.
  void set_loss(double rate, sim::Rng rng);
  // Adds uniform random jitter in [0, max_jitter] to every delivery.
  void set_jitter(sim::Duration max_jitter);

  // Per-channel fault knobs (addressed and unaddressed traffic alike).
  // Rates are probabilities in [0, 1); a dropped message is accounted but
  // never delivered, a duplicated message is delivered twice (the copy
  // trails by one channel latency), a delay spike adds `extra` to the
  // delivery latency with probability `rate`.
  void set_drop_rate(Channel channel, double rate);
  void set_duplicate_rate(Channel channel, double rate);
  void set_delay_spike(Channel channel, double rate, sim::Duration extra);

  // Directed partitions between endpoints. set_link_down severs one
  // direction; partition/heal sever/restore both. Messages crossing a down
  // link are accounted, counted as dropped, and never delivered.
  void set_link_down(EndpointId from, EndpointId to, bool down);
  void partition(EndpointId a, EndpointId b);
  void heal(EndpointId a, EndpointId b);
  bool link_up(EndpointId from, EndpointId to) const;

  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t duplicated_messages() const { return duplicated_; }

  const Config& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }

 private:
  // Outcome of routing one message: whether it survives, the delivery delay,
  // and whether a duplicate copy follows.
  struct Route {
    bool deliver = false;
    bool duplicate = false;
    sim::Duration delay = 0;
  };
  Route route(Channel channel, EndpointId from, EndpointId to,
              std::size_t bytes);
  void account(Channel channel, EndpointId from, std::size_t bytes);
  void count_drop(std::size_t bytes);
  sim::Duration latency_for(Channel channel) const;
  sim::Duration jitter();
  void ensure_fault_rng();
  static std::uint64_t link_key(EndpointId from, EndpointId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  // Maps an endpoint id onto a dense slot in endpoint_stats_: node ids
  // (>= 0) sit above a fixed band reserved for the negative reserved
  // addresses (controller -1, standby bands -16-k, shard seats -96-i), so
  // lookups are a single bounds-checked index instead of a hash probe on
  // the RPC hot path. The band must cover the deepest reserved address
  // (kShardEndpointBase - max shards) or shard seats would alias node slots.
  static constexpr std::size_t kNegativeEndpointSlots = 128;
  static std::size_t endpoint_slot(EndpointId endpoint) {
    return endpoint >= 0
               ? kNegativeEndpointSlots + static_cast<std::size_t>(endpoint)
               : static_cast<std::size_t>(-endpoint);
  }
  EndpointStats& endpoint_slot_ref(EndpointId endpoint) {
    const std::size_t slot = endpoint_slot(endpoint);
    if (slot >= endpoint_stats_.size()) endpoint_stats_.resize(slot + 1);
    return endpoint_stats_[slot];
  }

  sim::Simulation& sim_;
  Config config_;
  ChannelStats stats_[kChannelCount] = {};
  // Current bandwidth window accumulator.
  sim::TimePoint window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t peak_window_bytes_ = 0;
  std::uint64_t lifetime_bytes_ = 0;
  std::uint64_t lifetime_messages_ = 0;
  double loss_rate_ = 0.0;
  double drop_rate_[kChannelCount] = {};
  double dup_rate_[kChannelCount] = {};
  double spike_rate_[kChannelCount] = {};
  sim::Duration spike_extra_[kChannelCount] = {};
  sim::Duration max_jitter_ = 0;
  std::optional<sim::Rng> fault_rng_;
  std::set<std::uint64_t> down_links_;  // ordered: deterministic iteration
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t ingress_bytes_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::vector<EndpointStats> endpoint_stats_;  // dense, see endpoint_slot
  Shaper* shaper_ = nullptr;
  // Registry mirrors, indexed by channel; all null until attach_metrics.
  obs::Counter* obs_bytes_[kChannelCount] = {};
  obs::Counter* obs_messages_[kChannelCount] = {};
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_duplicated_ = nullptr;
  obs::Counter* obs_egress_bytes_ = nullptr;
  obs::Counter* obs_ingress_bytes_ = nullptr;
  obs::Counter* obs_dropped_bytes_ = nullptr;
};

}  // namespace escra::net
