#include "check/invariant_checker.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

#include "cluster/cluster.h"
#include "cluster/container.h"
#include "cluster/node.h"
#include "core/escra.h"
#include "core/messages.h"

namespace escra::check {

namespace {

std::string fmt(const char* format, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

std::string fmt3(const char* format, double a, double b, double c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b, c);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(core::EscraSystem& escra,
                                   net::Network& network,
                                   obs::Observer& observer, Config config)
    : escra_(escra),
      net_(network),
      obs_(observer),
      cluster_(escra.cluster()),
      sim_(escra.cluster().simulation()),
      config_(config) {
  if (escra_.controller().observer() != &observer) {
    throw std::invalid_argument(
        "InvariantChecker: observer is not attached to this EscraSystem "
        "(call EscraSystem::attach_observer first)");
  }
  if (config_.sweep_interval <= 0) {
    throw std::invalid_argument("InvariantChecker: sweep_interval <= 0");
  }

  last_event_time_ = sim_.now();

  const obs::Observer::Handles& h = obs_.h;
  base_cpu_grants_ = h.cpu_grants->value();
  base_cpu_shrinks_ = h.cpu_shrinks->value();
  base_mem_grants_ = h.mem_grants->value();
  base_rpcs_issued_ = h.rpcs_issued->value();
  base_rpcs_applied_ = h.rpcs_applied->value();
  base_registrations_ = h.registrations->value();
  base_deregistrations_ = h.deregistrations->value();
  base_throttled_periods_ = h.cfs_throttled_periods->value();
  base_reclaim_bytes_ = h.reclaim_bytes->value();
  base_retransmits_ = h.retransmits->value();
  base_dup_suppressed_ = h.dup_suppressed->value();
  base_resyncs_ = h.resyncs->value();
  base_nodes_dead_ = h.nodes_dead->value();
  base_nodes_alive_ = h.nodes_alive->value();
  base_fail_static_ = h.fail_static_entries->value();
  base_faults_injected_ = h.faults_injected->value();
  base_faults_cleared_ = h.faults_cleared->value();
  base_ha_elections_ = h.ha_elections->value();
  base_ha_fenced_ = h.ha_fenced_updates->value();
  base_ha_wal_lag_ = h.ha_wal_lag_events->value();
  base_bw_throttles_ = h.bw_throttle_events->value();
  base_bw_saturation_ = h.bw_saturation->value();
  base_bw_grants_ = h.bw_grants->value();
  base_bw_shrinks_ = h.bw_shrinks->value();
  base_telemetry_rejected_ = h.telemetry_rejected->value();
  base_credit_charges_ = h.credit_charges->value();
  base_credit_refunds_ = h.credit_refunds->value();
  base_greedy_throttles_ = h.greedy_throttles->value();
  base_rt_admitted_ = h.rt_admitted->value();
  base_rt_rejected_ = h.rt_rejected->value();
  base_rt_evicted_ = h.rt_evicted->value();
  base_deadline_misses_ = h.deadline_misses->value();

  // Network mirrors exist only once Network::attach_metrics has run against
  // this observer's registry; absent counters disable the net check.
  for (int i = 0; i < net::kChannelCount; ++i) {
    const net::Channel channel = net::kAllChannels[i];
    const std::string base = std::string("net.") + net::channel_name(channel);
    NetBaseline& nb = net_base_[i];
    nb.bytes = obs_.metrics().find_counter(base + ".bytes");
    nb.messages = obs_.metrics().find_counter(base + ".messages");
    if (nb.bytes != nullptr) {
      nb.bytes_offset = net_.stats(channel).bytes - nb.bytes->value();
    }
    if (nb.messages != nullptr) {
      nb.messages_offset = net_.stats(channel).messages - nb.messages->value();
    }
  }
  net_dropped_ = obs_.metrics().find_counter("net.dropped_datagrams");
  if (net_dropped_ != nullptr) {
    net_dropped_offset_ = net_.dropped_messages() - net_dropped_->value();
  }
  net_duplicated_ = obs_.metrics().find_counter("net.duplicated_messages");
  if (net_duplicated_ != nullptr) {
    net_duplicated_offset_ =
        net_.duplicated_messages() - net_duplicated_->value();
  }

  obs_.trace().set_record_hook(
      [this](const obs::TraceEvent& event) { on_event(event); });
  sweep_event_ = sim_.schedule_every(sim_.now() + config_.sweep_interval,
                                     config_.sweep_interval,
                                     [this] { sweep(); });
}

InvariantChecker::~InvariantChecker() {
  sim_.cancel(sweep_event_);
  obs_.trace().set_record_hook(nullptr);
}

void InvariantChecker::add(const std::string& rule, std::uint32_t container,
                           std::string detail) {
  if (violations_.size() >= config_.max_violations) {
    ++dropped_violations_;
    return;
  }
  violations_.push_back({sim_.now(), rule, container, std::move(detail)});
}

void InvariantChecker::on_event(const obs::TraceEvent& ev) {
  ++events_checked_;
  const core::EscraConfig& cfg = escra_.config();
  const double eps = config_.cpu_eps;

  // Event-queue / trace time monotonicity: the deterministic simulation
  // records every event at the current clock, so times never regress.
  if (ev.time < last_event_time_) {
    add("trace-time-monotonic", ev.container,
        fmt("event time %.0f < previous %.0f", static_cast<double>(ev.time),
            static_cast<double>(last_event_time_)));
  }
  if (ev.time != sim_.now()) {
    add("trace-time-monotonic", ev.container,
        fmt("event time %.0f != sim now %.0f", static_cast<double>(ev.time),
            static_cast<double>(sim_.now())));
  }
  last_event_time_ = std::max(last_event_time_, ev.time);
  ++seen_[static_cast<std::size_t>(ev.kind)];

  switch (ev.kind) {
    case obs::EventKind::kCpuGrant:
      if (ev.after <= ev.before - eps) {
        add("cpu-grant", ev.container,
            fmt("grant does not raise the limit: %.6f -> %.6f", ev.before,
                ev.after));
      }
      if (ev.after > escra_.app().cpu_limit() + eps) {
        add("cpu-grant", ev.container,
            fmt("granted %.6f cores beyond the global limit %.6f", ev.after,
                escra_.app().cpu_limit()));
      }
      break;

    case obs::EventKind::kCpuShrink:
      if (ev.after >= ev.before + eps) {
        add("cpu-shrink", ev.container,
            fmt("shrink does not lower the limit: %.6f -> %.6f", ev.before,
                ev.after));
      }
      if (ev.after < cfg.min_cores - eps) {
        add("cpu-floor", ev.container,
            fmt("shrink to %.6f cores below the %.6f-core floor", ev.after,
                cfg.min_cores));
      }
      if (const auto rt = rt_floor_track_.find(ev.container);
          rt != rt_floor_track_.end() && ev.after < rt->second - eps) {
        add("rt-floor", ev.container,
            fmt("shrink to %.6f cores below the admitted %.6f-core "
                "reservation floor",
                ev.after, rt->second));
      }
      break;

    case obs::EventKind::kMemGrantOnOom: {
      // detail is the shortfall the grant was issued to cover, measured
      // against the applied limit at grant time (`before`): the kernel's
      // reported shortfall on the direct path, the recomputed book
      // shortfall on the post-reclaim retry. For honest events both equal
      // usage + charge - limit; a forged event is covered per its claim
      // (and priced by the credit defense), since the claim is all the
      // control plane is asked to act on.
      const double shortfall = static_cast<double>(ev.detail);
      // A grant may legitimately land below the previous applied limit when
      // an emergency reclaim shrank this container in the same instant (the
      // reclaimed limit is still in flight on the wire); any other lowering
      // is a mid-OOM limit cut.
      const auto rec = last_reclaim_.find(ev.container);
      const bool reclaimed_now =
          rec != last_reclaim_.end() && rec->second == ev.time;
      if (ev.after < ev.before - 0.5 && !reclaimed_now) {
        add("mem-grant-covers", ev.container,
            fmt("pre-OOM grant lowered the limit: %.0f -> %.0f", ev.before,
                ev.after));
      }
      // The allocator judged the container grantable (it granted); a limit
      // below usage + charge (= before + detail) means the retried charge
      // still overflows and the OOM killer fires anyway — the exact failure
      // Escra's pre-OOM hook exists to prevent.
      if (ev.after - ev.before < shortfall - 0.5) {
        add("mem-grant-covers", ev.container,
            fmt3("grant of %.0f bytes does not cover the %.0f-byte shortfall "
                 "(post-grant OOM kill); limit now %.0f",
                 ev.after - ev.before, shortfall, ev.after));
      }
      if (ev.after >
          static_cast<double>(escra_.app().mem_limit()) + 0.5) {
        add("mem-grant-covers", ev.container,
            fmt("granted limit %.0f beyond the global limit %.0f", ev.after,
                static_cast<double>(escra_.app().mem_limit())));
      }
      break;
    }

    case obs::EventKind::kReclaim: {
      if (ev.after >= ev.before) {
        add("mem-reclaim", ev.container,
            fmt("reclaim did not shrink: %.0f -> %.0f", ev.before, ev.after));
      }
      if (ev.after < static_cast<double>(cfg.min_mem) - 0.5) {
        add("mem-reclaim", ev.container,
            fmt("reclaim to %.0f bytes below the %.0f-byte floor", ev.after,
                static_cast<double>(cfg.min_mem)));
      }
      const double freed = ev.before - ev.after;
      if (std::abs(static_cast<double>(ev.detail) - freed) > 0.5) {
        add("mem-reclaim", ev.container,
            fmt("freed-bytes detail %.0f != limit delta %.0f",
                static_cast<double>(ev.detail), freed));
      }
      reclaim_bytes_seen_ += ev.detail;
      last_reclaim_[ev.container] = ev.time;
      break;
    }

    case obs::EventKind::kRpcIssued:
      // `before` carries the resource flag: 0 = CPU, 1 = memory, 2 =
      // bandwidth. Only CPU updates feed the conservation slack.
      if (ev.before == 0.0) {
        CpuTrack& t = cpu_track_[ev.container];
        ++t.inflight;
        t.latest_issue = ev.id;
      }
      break;

    case obs::EventKind::kRpcApplied:
      if (ev.before == 0.0) {
        const auto it = cpu_track_.find(ev.container);
        if (it != cpu_track_.end()) {
          // Applying the latest issue means the cgroup holds the newest
          // intent; older issues were superseded by the slot protocol and
          // can never apply after it, so the whole count clears.
          if (ev.cause != 0 && ev.cause == it->second.latest_issue) {
            it->second.inflight = 0;
          } else if (it->second.inflight > 0) {
            --it->second.inflight;
          }
        }
      }
      // Split-brain guard: `detail` carries the applied update sequence,
      // which packs the issuing controller's epoch in its high bits. Per
      // slot, applied sequences must strictly increase — an apply at or
      // below the last one means either a duplicate slipped the agent's
      // dedup or, worse, a deposed leader landed a limit after its
      // successor did (two live epochs mutating the same slot).
      if (ev.detail != 0) {
        const std::uint64_t seq = static_cast<std::uint64_t>(ev.detail);
        // `before` is the resource flag (0/1/2): one slot per (container,
        // resource), matching the controller's update_key packing.
        const std::uint64_t key =
            static_cast<std::uint64_t>(ev.container) * 4 +
            static_cast<std::uint64_t>(ev.before);
        AppliedSeq& slot = applied_seq_[key];
        if (slot.seq != 0 && seq <= slot.seq) {
          add("no-split-brain", ev.container,
              fmt3("applied seq %.0f (epoch %.0f) not above previous %.0f",
                   static_cast<double>(seq),
                   static_cast<double>(core::update_seq_epoch(seq)),
                   static_cast<double>(slot.seq)));
        }
        slot.seq = std::max(slot.seq, seq);
        slot.node = ev.node;
      }
      break;

    case obs::EventKind::kRetransmit:
      if (ev.detail < 1) {
        add("counter-consistency", ev.container,
            fmt("retransmit with attempt count %.0f < 1",
                static_cast<double>(ev.detail), 0.0));
      }
      break;

    case obs::EventKind::kDuplicateSuppressed:
      break;

    case obs::EventKind::kResync: {
      // The controller just reconciled this container against the agent's
      // snapshot; in-flight bookkeeping from before the fault is void (any
      // residual divergence gets its own corrective kRpcIssued).
      const auto it = cpu_track_.find(ev.container);
      if (it != cpu_track_.end()) {
        it->second.inflight = 0;
        it->second.latest_issue = 0;
      }
      break;
    }

    case obs::EventKind::kFailStatic:
      if (ev.detail != 0 && ev.detail != 1) {
        add("counter-consistency", ev.container,
            fmt("fail-static event with detail %.0f (want 0 or 1)",
                static_cast<double>(ev.detail), 0.0));
      }
      if (ev.detail == 1) ++fail_static_entries_seen_;
      break;

    case obs::EventKind::kNodeDead:
    case obs::EventKind::kNodeAlive:
      break;

    case obs::EventKind::kFaultInjected:
      // An agent crash (fault kind 2, fault::FaultKind::kAgentCrash) wipes
      // that node's sequence tables and epoch fence by design, so earlier
      // sequences may legitimately re-apply there after the restart+resync;
      // restart the split-brain ratchet for the node's containers.
      if (ev.detail == 2 && ev.node != 0) {
        for (auto it = applied_seq_.begin(); it != applied_seq_.end();) {
          if (it->second.node == ev.node) {
            it = applied_seq_.erase(it);
          } else {
            ++it;
          }
        }
      }
      break;

    case obs::EventKind::kFaultCleared:
      if (seen_[static_cast<std::size_t>(obs::EventKind::kFaultCleared)] >
          seen_[static_cast<std::size_t>(obs::EventKind::kFaultInjected)]) {
        add("fault-accounting", 0,
            fmt("fault clears %.0f outnumber injections %.0f",
                static_cast<double>(seen_[static_cast<std::size_t>(
                    obs::EventKind::kFaultCleared)]),
                static_cast<double>(seen_[static_cast<std::size_t>(
                    obs::EventKind::kFaultInjected)])));
      }
      break;

    case obs::EventKind::kContainerRegistered:
      if (ev.after < -eps || ev.detail < 0) {
        add("pool-conservation", ev.container,
            fmt("registration with negative limits: %.6f cores, %.0f bytes",
                ev.after, static_cast<double>(ev.detail)));
      }
      break;

    case obs::EventKind::kThrottleObserved:
      if (ev.detail < 0) {
        add("cfs-state", ev.container,
            fmt("negative unused runtime %.0f at quota %.6f",
                static_cast<double>(ev.detail), ev.before));
      }
      last_throttle_[ev.container] = ev.time;
      break;

    case obs::EventKind::kContainerKilled:
      // A kill that reaches the trace with the reservation still tracked
      // means the controller dropped an admitted RT container without the
      // explicit kRtEvicted decision that must precede it (same instant).
      if (const auto rt = rt_floor_track_.find(ev.container);
          rt != rt_floor_track_.end()) {
        add("rt-evict-explicit", ev.container,
            fmt("admitted RT container killed (%.6f-core floor) without a "
                "preceding rt-evicted decision",
                rt->second, 0.0));
        rt_floor_track_.erase(rt);
      }
      cpu_track_.erase(ev.container);
      applied_seq_.erase(static_cast<std::uint64_t>(ev.container) * 4);
      applied_seq_.erase(static_cast<std::uint64_t>(ev.container) * 4 + 1);
      applied_seq_.erase(static_cast<std::uint64_t>(ev.container) * 4 + 2);
      break;

    case obs::EventKind::kLeaderElected: {
      const std::uint64_t epoch = static_cast<std::uint64_t>(ev.detail);
      if (epoch <= last_elected_epoch_) {
        add("epoch-monotonic", 0,
            fmt("elected epoch %.0f not above previously elected %.0f",
                static_cast<double>(epoch),
                static_cast<double>(last_elected_epoch_)));
      }
      if (static_cast<double>(epoch) <= ev.before) {
        add("epoch-monotonic", 0,
            fmt("elected epoch %.0f not above deposed epoch %.0f",
                static_cast<double>(epoch), ev.before));
      }
      last_elected_epoch_ = std::max(last_elected_epoch_, epoch);
      break;
    }

    case obs::EventKind::kEpochFenced:
      if (ev.detail <= 0) {
        add("epoch-monotonic", ev.container,
            fmt("epoch-fenced event with rejected seq %.0f (want > 0)",
                static_cast<double>(ev.detail), 0.0));
      }
      break;

    case obs::EventKind::kWalLag:
      if (ev.detail < 1) {
        add("epoch-monotonic", 0,
            fmt("wal-lag event with lag %.0f records (want >= 1)",
                static_cast<double>(ev.detail), 0.0));
      }
      break;

    case obs::EventKind::kBwThrottled:
      // Recorded when a shaper queue forms; detail is the queue depth at
      // that moment, so a throttle with an empty queue is inconsistent.
      if (ev.detail < 1) {
        add("counter-consistency", ev.container,
            fmt("bw-throttle event with queue depth %.0f (want >= 1)",
                static_cast<double>(ev.detail), 0.0));
      }
      break;

    case obs::EventKind::kBwSaturation:
      // Telemetry echo of a saturated period; counted for consistency only.
      break;

    case obs::EventKind::kBwGrant:
      if (ev.after < ev.before - 0.5) {
        add("bw-grant", ev.container,
            fmt("grant lowered the rate: %.0f -> %.0f bytes/s", ev.before,
                ev.after));
      }
      if (ev.after > escra_.app().bw_limit() + 0.5) {
        add("bw-grant", ev.container,
            fmt("granted %.0f bytes/s beyond the global limit %.0f",
                ev.after, escra_.app().bw_limit()));
      }
      break;

    case obs::EventKind::kBwShrink:
      if (ev.after > ev.before + 0.5) {
        add("bw-shrink", ev.container,
            fmt("shrink raised the rate: %.0f -> %.0f bytes/s", ev.before,
                ev.after));
      }
      if (ev.after < cfg.bw_min_rate - 0.5) {
        add("bw-floor", ev.container,
            fmt("shrink to %.0f bytes/s below the %.0f floor", ev.after,
                cfg.bw_min_rate));
      }
      break;

    case obs::EventKind::kTelemetryRejected:
      // `before` is the resource flag: 0 = CPU, 2 = bandwidth.
      if (ev.before != 0.0 && ev.before != 2.0) {
        add("counter-consistency", ev.container,
            fmt("telemetry-rejected with resource flag %.0f (want 0 or 2)",
                ev.before, 0.0));
      }
      break;

    case obs::EventKind::kCreditCharge:
      // before/after carry the balance: a charge only ever lowers it.
      if (ev.after > ev.before + 1e-9) {
        add("credit-conservation", ev.container,
            fmt("credit charge raised the balance: %.6f -> %.6f", ev.before,
                ev.after));
      }
      break;

    case obs::EventKind::kCreditRefund:
      if (ev.after < ev.before - 1e-9) {
        add("credit-conservation", ev.container,
            fmt("credit refund lowered the balance: %.6f -> %.6f", ev.before,
                ev.after));
      }
      break;

    case obs::EventKind::kGreedyThrottle:
      // The decay only ever lowers the limit, and never below the floor:
      // degrading an overclaimer to its fair share must not starve it.
      if (ev.after > ev.before + eps) {
        add("credit-honest-floor", ev.container,
            fmt("greedy throttle raised the limit: %.6f -> %.6f", ev.before,
                ev.after));
      }
      if (ev.after < cfg.min_cores - eps) {
        add("credit-honest-floor", ev.container,
            fmt("greedy throttle to %.6f cores below the %.6f floor",
                ev.after, cfg.min_cores));
      }
      if (const auto rt = rt_floor_track_.find(ev.container);
          rt != rt_floor_track_.end() && ev.after < rt->second - eps) {
        add("rt-floor", ev.container,
            fmt("greedy throttle to %.6f cores below the admitted "
                "%.6f-core reservation floor",
                ev.after, rt->second));
      }
      break;

    case obs::EventKind::kShardAdvertise:
    case obs::EventKind::kBorrowRequest:
    case obs::EventKind::kBorrowGrant:
    case obs::EventKind::kBorrowReturn:
    case obs::EventKind::kShardPoolResize:
      // Cross-shard borrowing is validated by the sharded control plane's
      // own conservation tests; counted here for the trace totals only.
      break;

    case obs::EventKind::kRtAdmitted:
      // `after` is the reservation floor; `detail` packs (runtime << 32) |
      // period in microseconds — both must be present for a valid spec.
      if (ev.after <= eps) {
        add("rt-admission-conservation", ev.container,
            fmt("admission with a %.6f-core floor (want > 0)", ev.after,
                0.0));
      }
      if ((ev.detail >> 32) < 1 || (ev.detail & 0xffffffff) < 1) {
        add("rt-admission-conservation", ev.container,
            fmt("admission detail packs runtime %.0f us, period %.0f us "
                "(want both >= 1)",
                static_cast<double>(ev.detail >> 32),
                static_cast<double>(ev.detail & 0xffffffff)));
      }
      rt_floor_track_[ev.container] = ev.after;
      break;

    case obs::EventKind::kRtRejected:
      // detail is the rejection reason: 0 node bound, 1 pool bound, 2 bw
      // bound, 3 state (crashed / unknown / dead node / double admit).
      if (ev.detail < 0 || ev.detail > 3) {
        add("rt-admission-conservation", ev.container,
            fmt("rejection with reason %.0f (want 0..3)",
                static_cast<double>(ev.detail), 0.0));
      }
      break;

    case obs::EventKind::kRtEvicted: {
      if (ev.detail < 0 || ev.detail > 2) {
        add("rt-evict-explicit", ev.container,
            fmt("eviction with reason %.0f (want 0..2)",
                static_cast<double>(ev.detail), 0.0));
      }
      // `before` reports the floor the eviction releases; an eviction seen
      // for a container the trace admitted must release that exact floor.
      const auto rt = rt_floor_track_.find(ev.container);
      if (rt != rt_floor_track_.end()) {
        if (std::abs(ev.before - rt->second) > eps) {
          add("rt-floor", ev.container,
              fmt("eviction releases %.6f cores but the admitted floor "
                  "was %.6f",
                  ev.before, rt->second));
        }
        rt_floor_track_.erase(rt);
      }
      break;
    }

    case obs::EventKind::kDeadlineMiss: {
      // detail is the core-time (us) still owed at the deadline: a miss
      // with nothing owed is no miss. `before` is the reservation floor the
      // node-side deadline model was admitted with.
      if (ev.detail < 1) {
        add("rt-allocator-miss", ev.container,
            fmt("deadline miss with %.0f us remaining (want >= 1)",
                static_cast<double>(ev.detail), 0.0));
      }
      if (ev.before <= eps) {
        add("rt-allocator-miss", ev.container,
            fmt("deadline miss with a %.6f-core floor (want > 0)", ev.before,
                0.0));
      }
      // The no-deadline-miss guarantee: an ADMITTED container may only miss
      // through its own overrun or enforcement lag (RPC loss, fail-static
      // windows) — never because the book reclaimed it below its floor. A
      // miss while the controller's shadow book holds the container under
      // the floor is an allocator decision causing the miss.
      const auto rt = rt_floor_track_.find(ev.container);
      if (rt != rt_floor_track_.end() &&
          escra_.app().is_member(ev.container)) {
        const double book = escra_.app().member_cores(ev.container);
        if (book < rt->second - eps) {
          add("rt-allocator-miss", ev.container,
              fmt3("deadline miss while the book holds %.6f cores below "
                   "the %.6f-core floor (%.0f us still owed)",
                   book, rt->second, static_cast<double>(ev.detail)));
        }
      }
      break;
    }
  }
}

void InvariantChecker::sweep() {
  ++sweeps_;
  const double eps = config_.cpu_eps;
  core::DistributedContainer& app = escra_.app();
  core::Controller& controller = escra_.controller();

  // Per-node CPU conservation: the scheduler's max-min fair grant is capped
  // at the node's core count, whatever limits the allocator handed out.
  for (const auto& node : cluster_.nodes()) {
    const double used = node->scheduler().last_slice_usage_cores();
    if (used > node->config().cores + eps) {
      add("node-cpu-conservation", 0,
          fmt3("node %.0f scheduled %.6f cores on %.6f",
               static_cast<double>(node->id()), used, node->config().cores));
    }
  }

  // Pool book of record: 0 <= allocated <= limit for both resources.
  if (app.cpu_allocated() < -eps ||
      app.cpu_allocated() > app.cpu_limit() + eps) {
    add("pool-conservation", 0,
        fmt("cpu allocated %.6f outside [0, %.6f]", app.cpu_allocated(),
            app.cpu_limit()));
  }
  if (app.mem_allocated() < 0 || app.mem_allocated() > app.mem_limit()) {
    add("pool-conservation", 0,
        fmt("mem allocated %.0f outside [0, %.0f]",
            static_cast<double>(app.mem_allocated()),
            static_cast<double>(app.mem_limit())));
  }
  if (app.bw_allocated() < -0.5 ||
      app.bw_allocated() > app.bw_limit() + 0.5) {
    add("pool-conservation", 0,
        fmt("bw allocated %.0f outside [0, %.0f]", app.bw_allocated(),
            app.bw_limit()));
  }

  // Walk every container once: shadow-limit sums, applied cgroup limits,
  // and per-cgroup internal consistency.
  double shadow_cpu_sum = 0.0;
  double actual_cpu_sum = 0.0;
  double inflight_slack = 0.0;
  std::size_t registered = 0;
  for (cluster::Container* container : cluster_.containers()) {
    const cfs::CfsCgroup& cpu = container->cpu_cgroup();
    const memcg::MemCgroup& mem = container->mem_cgroup();

    if (!cpu.bandwidth_state_valid()) {
      add("cfs-state", container->id(),
          fmt3("bandwidth state invalid: remaining %.0f, quota %.0f, "
               "burst %.0f",
               static_cast<double>(cpu.runtime_remaining()),
               static_cast<double>(cpu.quota()),
               static_cast<double>(cpu.burst())));
    }
    if (!mem.state_valid()) {
      add("memcg-state", container->id(),
          fmt("memcg state invalid: usage %.0f, limit %.0f",
              static_cast<double>(mem.usage()),
              static_cast<double>(mem.limit())));
    }
    // charge <= limit, except force-charged residency: a restart charges the
    // base footprint unconditionally (as Linux accounts already-resident
    // pages), which legitimately exceeds a limit reclamation shrank.
    if (mem.usage() > mem.limit() && mem.usage() > container->resident()) {
      add("memcg-charge-le-limit", container->id(),
          fmt3("usage %.0f exceeds limit %.0f and resident %.0f",
               static_cast<double>(mem.usage()),
               static_cast<double>(mem.limit()),
               static_cast<double>(container->resident())));
    }

    if (controller.is_registered(container->id())) {
      ++registered;
      const double shadow = app.member_cores(container->id());
      shadow_cpu_sum += shadow;
      actual_cpu_sum += cpu.limit_cores();
      // A container with a limit-update RPC in flight (issued but not yet
      // applied — possibly dropped and retransmitting, or stranded behind a
      // partition) may legitimately hold more cgroup capacity than its
      // shadow limit says: the pool has already re-committed the freed
      // share. The allowance is exactly the current divergence, so it
      // vanishes the moment the update lands.
      const auto track = cpu_track_.find(container->id());
      if (track != cpu_track_.end() && track->second.inflight > 0) {
        inflight_slack += std::max(0.0, cpu.limit_cores() - shadow);
      }
    }
  }

  // Registered members' shadow limits must sum to the pool's allocated
  // figure (each registered container is a member, so a mismatch means the
  // two books diverged).
  if (registered == controller.registered_count()) {
    const double tol = eps * static_cast<double>(registered + 1);
    if (std::abs(shadow_cpu_sum - app.cpu_allocated()) > tol) {
      add("pool-conservation", 0,
          fmt("member shadow limits sum to %.6f but pool says %.6f",
              shadow_cpu_sum, app.cpu_allocated()));
    }
  }

  // CPU conservation over *applied* limits. Capacity freed by a shrink
  // decision re-enters the pool at decide time but leaves the cgroup only
  // when the (retransmitted-until-acked) RPC lands, so the applied sum may
  // transiently exceed the global limit by the summed divergence of exactly
  // those containers with an update in flight — no more.
  if (actual_cpu_sum >
      app.cpu_limit() + inflight_slack +
          eps * static_cast<double>(registered + 1)) {
    add("cpu-conservation", 0,
        fmt3("applied cgroup limits sum to %.6f cores > global %.6f "
             "(+%.6f in-flight divergence allowed)",
             actual_cpu_sum, app.cpu_limit(), inflight_slack));
  }

  // Gauges mirror the books of record.
  const obs::Observer::Handles& h = obs_.h;
  if (static_cast<std::size_t>(h.containers_active->value()) !=
      controller.registered_count()) {
    add("gauge-containers-active", 0,
        fmt("gauge %.0f != registry %.0f", h.containers_active->value(),
            static_cast<double>(controller.registered_count())));
  }
  if (std::abs(h.pool_cpu_allocated->value() - app.cpu_allocated()) > eps ||
      std::abs(h.pool_cpu_unallocated->value() - app.cpu_unallocated()) >
          eps) {
    add("gauge-pool", 0,
        fmt("cpu gauges (%.6f, %.6f) diverge from pool",
            h.pool_cpu_allocated->value(), h.pool_cpu_unallocated->value()));
  }
  if (std::abs(h.pool_mem_allocated->value() -
               static_cast<double>(app.mem_allocated())) > 0.5 ||
      std::abs(h.pool_mem_unallocated->value() -
               static_cast<double>(app.mem_unallocated())) > 0.5) {
    add("gauge-pool", 0,
        fmt("mem gauges (%.0f, %.0f) diverge from pool",
            h.pool_mem_allocated->value(), h.pool_mem_unallocated->value()));
  }
  if (app.bw_limit() > 0.0 &&
      (std::abs(h.pool_bw_allocated->value() - app.bw_allocated()) > 0.5 ||
       std::abs(h.pool_bw_unallocated->value() - app.bw_unallocated()) >
           0.5)) {
    add("gauge-pool", 0,
        fmt("bw gauges (%.0f, %.0f) diverge from pool",
            h.pool_bw_allocated->value(), h.pool_bw_unallocated->value()));
  }

  // Real-time admission conservation. The controller's admitted set is the
  // book of record here: recovery re-installation (crash/resync, HA
  // takeover) is deliberately traceless, so the tracked set is re-armed
  // from introspection each sweep — and entries for containers no longer
  // admitted (evicted during a window the trace could not observe) are
  // dropped the same way. A crashed controller holds no soft RT state and
  // enforces nothing, so the sync pauses rather than erasing live floors.
  if (!controller.crashed()) {
    for (auto it = rt_floor_track_.begin(); it != rt_floor_track_.end();) {
      if (!controller.rt_admitted(it->first)) {
        it = rt_floor_track_.erase(it);
      } else {
        ++it;
      }
    }
    const core::EscraConfig& cfg = escra_.config();
    const double rt_tol = eps * static_cast<double>(controller.rt_count() + 1);
    double floor_sum = 0.0;
    for (const auto& node : cluster_.nodes()) {
      double node_floor = 0.0;
      for (cluster::Container* c : node->containers()) {
        if (!controller.rt_admitted(c->id())) continue;
        const double floor = controller.rt_floor_of(c->id());
        rt_floor_track_[c->id()] = floor;
        node_floor += floor;
        floor_sum += floor;
      }
      // Per-node utilization bound: the deadline scheduler's guarantee
      // holds only while the node's reservation density stays under it.
      if (node_floor >
          cfg.rt_util_bound * node->config().cores + rt_tol) {
        add("rt-admission-conservation", 0,
            fmt3("node %.0f admitted floors sum to %.6f cores above the "
                 "utilization bound %.6f",
                 static_cast<double>(node->id()), node_floor,
                 cfg.rt_util_bound * node->config().cores));
      }
    }
    // Pool bound against non-borrowed RT capacity, and internal
    // consistency: the reserved total is exactly the sum of the floors.
    if (controller.rt_reserved_cores() >
        cfg.rt_util_bound * controller.rt_capacity() + rt_tol) {
      add("rt-admission-conservation", 0,
          fmt3("reserved %.6f cores above the pool bound %.6f "
               "(rt capacity %.6f)",
               controller.rt_reserved_cores(),
               cfg.rt_util_bound * controller.rt_capacity(),
               controller.rt_capacity()));
    }
    if (std::abs(controller.rt_reserved_cores() - floor_sum) > rt_tol) {
      add("rt-admission-conservation", 0,
          fmt("reserved total %.6f != sum of admitted floors %.6f",
              controller.rt_reserved_cores(), floor_sum));
    }
    if (std::abs(h.rt_reserved_cores->value() -
                 controller.rt_reserved_cores()) > eps) {
      add("rt-admission-conservation", 0,
          fmt("gauge %.6f != reserved book %.6f",
              h.rt_reserved_cores->value(), controller.rt_reserved_cores()));
    }
  }

  // Bandwidth conservation against the live shaper (attach_bw). Each
  // shaped container is counted at the larger of its applied shaper rate
  // and its shadow book rate, so a grant decided but not yet landed (or a
  // shrink in flight) stays charged against the NIC on both books — the
  // controller's admission clamp guarantees the sum never exceeds NIC
  // capacity through drops, retransmits, and crash/resync cycles.
  if (bw_shaper_ != nullptr) {
    const core::EscraConfig& cfg = escra_.config();
    std::map<std::uint32_t, double> node_rate_sum;
    for (const auto& [id, node] : bw_shaper_->attachments()) {
      const double applied = bw_shaper_->container_rate(id);
      // Registration and book membership can briefly diverge across a
      // controller crash (registry rebuilt from resync while fail-static
      // attachments persist), so both are required before reading the book.
      const double book = controller.is_registered(id) && app.is_member(id)
                              ? app.member_bw(id)
                              : 0.0;
      node_rate_sum[node] += std::max(applied, book);
      if (controller.is_registered(id) && book > 0.0 &&
          book < cfg.bw_min_rate - 0.5) {
        add("bw-floor", id,
            fmt("shaped member rate %.0f bytes/s below the %.0f admission "
                "floor",
                book, cfg.bw_min_rate));
      }
    }
    for (const auto& [node, sum] : node_rate_sum) {
      const double nic = bw_shaper_->node_nic_bps(node);
      if (nic > 0.0 && sum > nic + 0.5) {
        add("bw-nic-conservation", 0,
            fmt3("node %.0f rate limits sum to %.0f bytes/s on a %.0f "
                 "bytes/s NIC",
                 static_cast<double>(node), sum, nic));
      }
    }
  }

  check_credits();
  check_counters();
  check_network();
}

void InvariantChecker::check_credits() {
  if (credits_ == nullptr) return;
  const core::CreditLedger& lg = *credits_;

  // Exact conservation: every micro-credit ever minted is either burned or
  // outstanding in some account — integer arithmetic, no tolerance.
  std::int64_t sum = 0;
  for (const auto& [id, acct] : lg.accounts()) sum += acct.micro;
  if (lg.minted_micro() != lg.burned_micro() + lg.outstanding_micro()) {
    add("credit-conservation", 0,
        "minted " + std::to_string(lg.minted_micro()) + " != burned " +
            std::to_string(lg.burned_micro()) + " + outstanding " +
            std::to_string(lg.outstanding_micro()));
  }
  if (sum != lg.outstanding_micro()) {
    add("credit-conservation", 0,
        "outstanding total " + std::to_string(lg.outstanding_micro()) +
            " != sum of balances " + std::to_string(sum));
  }

  // Honest floor: the defense must punish overclaimers without inverting
  // fairness. If, sweep after sweep, some member in good standing sits
  // below its fair share and throttling while a credit-exhausted member
  // holds cores above fair share, the defense is feeding the attacker with
  // the honest tenant's cycles. Transient inversions are expected (grants
  // in flight, decay grace); twenty consecutive sweeps (~2 s) is not.
  // The defense acts only through a live control plane: a crashed
  // (fail-static) Controller cannot run settle sweeps, and a member on a
  // dead-quarantined node is deliberately skipped by settle_credits (a
  // frozen share is not the tenant's choice). Pause the streak — rather
  // than reset it — while either holds, so a flapping fault can neither
  // trip the rule nor mask a genuine inversion.
  core::Controller& floor_controller = escra_.controller();
  bool defense_paralyzed = floor_controller.crashed();
  if (!defense_paralyzed) {
    for (const auto& node : cluster_.nodes()) {
      if (floor_controller.node_dead(node->id())) {
        defense_paralyzed = true;
        break;
      }
    }
  }
  if (defense_paralyzed) return;
  core::DistributedContainer& app = escra_.app();
  const std::size_t members = app.member_count();
  if (members == 0) {
    starve_streak_ = 0;
    return;
  }
  const double fair = app.cpu_limit() / static_cast<double>(members);
  const double tol = escra_.config().credit_tolerance;
  bool overclaimer = false;
  bool starving_honest = false;
  std::uint32_t over_id = 0;
  std::uint32_t starved_id = 0;
  for (const auto& [id, acct] : lg.accounts()) {
    if (!app.is_member(id)) continue;
    const double cores = app.member_cores(id);
    if (acct.micro <= 0 && cores > fair * (1.0 + tol) + config_.cpu_eps) {
      overclaimer = true;
      over_id = id;
    }
    if (acct.micro > 0 && cores < fair * (1.0 - tol) - config_.cpu_eps) {
      const auto it = last_throttle_.find(id);
      if (it != last_throttle_.end() &&
          sim_.now() - it->second <= 2 * config_.sweep_interval) {
        starving_honest = true;
        starved_id = id;
      }
    }
  }
  if (overclaimer && starving_honest) {
    ++starve_streak_;
  } else {
    starve_streak_ = 0;
  }
  constexpr int kStarveSweeps = 20;
  if (starve_streak_ >= kStarveSweeps) {
    add("credit-honest-floor", starved_id,
        "member starved below fair share " + std::to_string(fair) +
            " cores for 20 consecutive sweeps while credit-exhausted member " +
            std::to_string(over_id) + " held cores above it");
    starve_streak_ = 0;
  }
}

void InvariantChecker::check_counters() {
  const obs::Observer::Handles& h = obs_.h;
  const auto seen = [this](obs::EventKind kind) {
    return seen_[static_cast<std::size_t>(kind)];
  };
  struct Pair {
    const char* what;
    std::uint64_t counter_delta;
    std::uint64_t trace_count;
  };
  const Pair pairs[] = {
      {"allocator.cpu_grants vs cpu-grant events",
       h.cpu_grants->value() - base_cpu_grants_,
       seen(obs::EventKind::kCpuGrant)},
      {"allocator.cpu_shrinks vs cpu-shrink events",
       h.cpu_shrinks->value() - base_cpu_shrinks_,
       seen(obs::EventKind::kCpuShrink)},
      {"allocator.mem_grants vs mem-grant-on-oom events",
       h.mem_grants->value() - base_mem_grants_,
       seen(obs::EventKind::kMemGrantOnOom)},
      {"controller.rpcs_issued vs rpc-issued events",
       h.rpcs_issued->value() - base_rpcs_issued_,
       seen(obs::EventKind::kRpcIssued)},
      {"controller.rpcs_applied vs rpc-applied events",
       h.rpcs_applied->value() - base_rpcs_applied_,
       seen(obs::EventKind::kRpcApplied)},
      {"containers.registered_total vs container-registered events",
       h.registrations->value() - base_registrations_,
       seen(obs::EventKind::kContainerRegistered)},
      {"containers.deregistered_total vs container-killed events",
       h.deregistrations->value() - base_deregistrations_,
       seen(obs::EventKind::kContainerKilled)},
      {"cfs.throttled_periods_total vs throttle-observed events",
       h.cfs_throttled_periods->value() - base_throttled_periods_,
       seen(obs::EventKind::kThrottleObserved)},
      {"reclaim.bytes_total vs reclaim event details",
       h.reclaim_bytes->value() - base_reclaim_bytes_,
       static_cast<std::uint64_t>(reclaim_bytes_seen_)},
      {"controller.retransmits vs retransmit events",
       h.retransmits->value() - base_retransmits_,
       seen(obs::EventKind::kRetransmit)},
      {"agent.duplicates_suppressed vs duplicate-suppressed events",
       h.dup_suppressed->value() - base_dup_suppressed_,
       seen(obs::EventKind::kDuplicateSuppressed)},
      {"controller.resyncs vs resync events",
       h.resyncs->value() - base_resyncs_, seen(obs::EventKind::kResync)},
      {"controller.nodes_declared_dead vs node-dead events",
       h.nodes_dead->value() - base_nodes_dead_,
       seen(obs::EventKind::kNodeDead)},
      {"controller.nodes_recovered vs node-alive events",
       h.nodes_alive->value() - base_nodes_alive_,
       seen(obs::EventKind::kNodeAlive)},
      {"agent.fail_static_entries vs fail-static enter events",
       h.fail_static_entries->value() - base_fail_static_,
       fail_static_entries_seen_},
      {"fault.injected vs fault-injected events",
       h.faults_injected->value() - base_faults_injected_,
       seen(obs::EventKind::kFaultInjected)},
      {"fault.cleared vs fault-cleared events",
       h.faults_cleared->value() - base_faults_cleared_,
       seen(obs::EventKind::kFaultCleared)},
      {"ha.elections vs leader-elected events",
       h.ha_elections->value() - base_ha_elections_,
       seen(obs::EventKind::kLeaderElected)},
      {"ha.fenced_updates vs epoch-fenced events",
       h.ha_fenced_updates->value() - base_ha_fenced_,
       seen(obs::EventKind::kEpochFenced)},
      {"ha.wal_lag_events vs wal-lag events",
       h.ha_wal_lag_events->value() - base_ha_wal_lag_,
       seen(obs::EventKind::kWalLag)},
      {"bw.throttle_events vs bw-throttled events",
       h.bw_throttle_events->value() - base_bw_throttles_,
       seen(obs::EventKind::kBwThrottled)},
      {"controller.bw_saturation_events vs bw-saturation events",
       h.bw_saturation->value() - base_bw_saturation_,
       seen(obs::EventKind::kBwSaturation)},
      {"allocator.bw_grants vs bw-grant events",
       h.bw_grants->value() - base_bw_grants_,
       seen(obs::EventKind::kBwGrant)},
      {"allocator.bw_shrinks vs bw-shrink events",
       h.bw_shrinks->value() - base_bw_shrinks_,
       seen(obs::EventKind::kBwShrink)},
      {"controller.telemetry_rejected vs telemetry-rejected events",
       h.telemetry_rejected->value() - base_telemetry_rejected_,
       seen(obs::EventKind::kTelemetryRejected)},
      {"controller.credit_charges vs credit-charge events",
       h.credit_charges->value() - base_credit_charges_,
       seen(obs::EventKind::kCreditCharge)},
      {"controller.credit_refunds vs credit-refund events",
       h.credit_refunds->value() - base_credit_refunds_,
       seen(obs::EventKind::kCreditRefund)},
      {"controller.greedy_throttles vs greedy-throttle events",
       h.greedy_throttles->value() - base_greedy_throttles_,
       seen(obs::EventKind::kGreedyThrottle)},
      {"controller.rt_admitted vs rt-admitted events",
       h.rt_admitted->value() - base_rt_admitted_,
       seen(obs::EventKind::kRtAdmitted)},
      {"controller.rt_rejected vs rt-rejected events",
       h.rt_rejected->value() - base_rt_rejected_,
       seen(obs::EventKind::kRtRejected)},
      {"controller.rt_evicted vs rt-evicted events",
       h.rt_evicted->value() - base_rt_evicted_,
       seen(obs::EventKind::kRtEvicted)},
      {"cfs.deadline_misses vs deadline-miss events",
       h.deadline_misses->value() - base_deadline_misses_,
       seen(obs::EventKind::kDeadlineMiss)},
  };
  for (const Pair& p : pairs) {
    if (p.counter_delta != p.trace_count) {
      add("counter-consistency", 0,
          std::string(p.what) + ": counter advanced " +
              std::to_string(p.counter_delta) + ", trace saw " +
              std::to_string(p.trace_count));
    }
  }
}

void InvariantChecker::check_network() {
  for (int i = 0; i < net::kChannelCount; ++i) {
    const net::Channel channel = net::kAllChannels[i];
    const net::ChannelStats& stats = net_.stats(channel);
    const NetBaseline& nb = net_base_[i];
    if (nb.bytes != nullptr &&
        stats.bytes != nb.bytes->value() + nb.bytes_offset) {
      add("net-obs-consistency", 0,
          std::string("net.") + net::channel_name(channel) +
              ".bytes: transport " + std::to_string(stats.bytes) +
              " != mirror " +
              std::to_string(nb.bytes->value() + nb.bytes_offset));
    }
    if (nb.messages != nullptr &&
        stats.messages != nb.messages->value() + nb.messages_offset) {
      add("net-obs-consistency", 0,
          std::string("net.") + net::channel_name(channel) +
              ".messages: transport " + std::to_string(stats.messages) +
              " != mirror " +
              std::to_string(nb.messages->value() + nb.messages_offset));
    }
  }
  if (net_dropped_ != nullptr &&
      net_.dropped_messages() != net_dropped_->value() + net_dropped_offset_) {
    add("net-obs-consistency", 0,
        "net.dropped_datagrams: transport " +
            std::to_string(net_.dropped_messages()) + " != mirror " +
            std::to_string(net_dropped_->value() + net_dropped_offset_));
  }
  if (net_duplicated_ != nullptr &&
      net_.duplicated_messages() !=
          net_duplicated_->value() + net_duplicated_offset_) {
    add("net-obs-consistency", 0,
        "net.duplicated_messages: transport " +
            std::to_string(net_.duplicated_messages()) + " != mirror " +
            std::to_string(net_duplicated_->value() + net_duplicated_offset_));
  }
  // Byte accounting across the transport: every egressed byte is either
  // delivered (ingress) or dropped, never both and never lost to the books.
  if (net_.egress_bytes() != net_.ingress_bytes() + net_.dropped_bytes()) {
    add("net-byte-accounting", 0,
        "egress " + std::to_string(net_.egress_bytes()) + " != ingress " +
            std::to_string(net_.ingress_bytes()) + " + dropped " +
            std::to_string(net_.dropped_bytes()));
  }
}

std::string InvariantChecker::report() const {
  if (ok()) {
    return "invariants ok: " + std::to_string(events_checked_) +
           " events, " + std::to_string(sweeps_) + " sweeps, 0 violations\n";
  }
  std::string out = std::to_string(violations_.size() + dropped_violations_) +
                    " invariant violation(s):\n";
  for (const Violation& v : violations_) {
    out += "  t=" + std::to_string(v.time) + "us [" + v.rule + "]";
    if (v.container != 0) out += " container " + std::to_string(v.container);
    out += ": " + v.detail + "\n";
  }
  if (dropped_violations_ > 0) {
    out += "  (+" + std::to_string(dropped_violations_) +
           " further violations not retained)\n";
  }
  return out;
}

}  // namespace escra::check
