// System-wide invariant checker (escra_check).
//
// Attaches to a live EscraSystem through the obs hook points (PR 1's
// Observer) and validates the conservation laws the paper's claims rest on,
// continuously: at every recorded control-plane decision (via the
// TraceBuffer record hook) and at every CFS period boundary (via a periodic
// sweep on the simulation clock).
//
// Rules enforced
//   per event (as each decision is recorded):
//     - trace-time-monotonic   event times never go backwards, and every
//                              event is stamped with the current sim time
//     - cpu-grant              a grant raises the limit and stays within the
//                              Distributed Container's global CPU limit
//     - cpu-floor              a shrink never cuts below config.min_cores
//     - mem-grant-covers       a pre-OOM grant covers the reported shortfall
//                              (otherwise the retried charge kills a
//                              container the allocator judged grantable)
//     - mem-reclaim            reclamation shrinks, respects min_mem, and
//                              reports freed bytes consistently
//   per sweep (every sweep_interval, default one CFS period):
//     - node-cpu-conservation  per-node scheduled core-time <= node cores
//     - cpu-conservation       sum of *applied* cgroup CPU limits over
//                              registered containers <= global limit, plus
//                              per-container slack for containers with a
//                              limit-update RPC in flight (issued, possibly
//                              retransmitting, not yet applied) of exactly
//                              the container's current cgroup-vs-shadow
//                              divergence — so the bound self-tightens to
//                              the plain global limit as updates land, and
//                              stays sound through drops, duplicates,
//                              partitions, and crash/resync cycles without
//                              ever being relaxed to vacuity
//     - pool-conservation      0 <= allocated <= limit for both resources,
//                              and the member shadow limits sum to allocated
//     - cfs-state              every cgroup's bandwidth state is internally
//                              consistent (CfsCgroup::bandwidth_state_valid)
//     - memcg-charge-le-limit  usage <= limit, except for force-charged
//                              residency (restart into a reclaimed limit)
//     - counter-consistency    obs counters mirror the decision trace
//                              one-for-one (grants, shrinks, RPCs,
//                              retransmits, suppressed duplicates, resyncs,
//                              node death/recovery, fail-static entries,
//                              fault injections/clears, ...)
//     - fault-accounting       fault windows are well-formed (clears never
//                              outnumber injections)
//     - no-split-brain         per-(container, resource) applied update
//                              sequences strictly increase (epoch packed in
//                              the high bits): two leaders can never both
//                              land limits on the same slot — the fenced
//                              epoch's updates are discarded, so divergent
//                              limits are never applied. Reset per node on
//                              agent-crash fault windows (a crash clears the
//                              agent's seq table and fence by design).
//     - epoch-monotonic        leader elections claim strictly increasing
//                              epochs; WAL-lag traces carry positive lag
//     - net-obs-consistency    src/net ChannelStats and the mirrored
//                              net.<channel>.bytes/messages counters agree
//     - gauge-*                pool occupancy / active-container gauges
//                              match the book of record
//   real-time class (mixed criticality; armed automatically — RT events
//   appear only when Controller::admit_rt is used):
//     - rt-floor               no allocator decision (shrink, greedy-decay
//                              throttle) lands an admitted RT container
//                              below its reservation floor, and an eviction
//                              reports the floor it releases exactly
//     - rt-allocator-miss      a deadline miss while the controller's book
//                              holds the admitted container below its floor
//                              is allocator-caused — the never-reclaim
//                              guarantee was broken (misses with the floor
//                              honored are the tenant's own overrun, or RPC
//                              loss delaying enforcement, and are allowed)
//     - rt-evict-explicit      an admitted RT container is never killed or
//                              silently dropped without a same-instant
//                              kRtEvicted decision explaining the revoke
//     - rt-admission-conservation
//                              per node, admitted floors sum within
//                              rt_util_bound x node cores; pool-wide the
//                              reserved total stays within rt_util_bound x
//                              non-borrowed RT capacity, matches the
//                              per-container floors, and mirrors the
//                              controller.rt_reserved_cores gauge
//
// Overhead contract: the checker piggybacks on the existing nullable hooks —
// with no checker (and no observer) attached, every instrumentation site
// remains a single null-pointer test; attaching is strictly additive.
//
//   obs::Observer observer;
//   escra.attach_observer(observer);          // checker requires this first
//   check::InvariantChecker checker(escra, network, observer);
//   simulation.run_until(...);
//   if (!checker.ok()) std::puts(checker.report().c_str());
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bw/shaper.h"
#include "core/credit_ledger.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::core {
class EscraSystem;
}
namespace escra::cluster {
class Cluster;
}

namespace escra::check {

// One invariant breach. `rule` is the stable rule name listed above;
// `detail` is a human-readable description with the offending values.
struct Violation {
  sim::TimePoint time = 0;
  std::string rule;
  std::uint32_t container = 0;  // 0 = not container-specific
  std::string detail;
};

class InvariantChecker {
 public:
  struct Config {
    // Sweep cadence; the default matches the CFS period so system-wide
    // checks run at every period boundary.
    sim::Duration sweep_interval = sim::milliseconds(100);
    // Violations stored beyond this are counted but not retained.
    std::size_t max_violations = 64;
    // Absolute tolerance for CPU-core comparisons (doubles).
    double cpu_eps = 1e-6;
  };

  // The observer must already be attached to `escra`
  // (EscraSystem::attach_observer) — the checker validates the decision
  // stream that attachment produces and throws std::invalid_argument
  // otherwise. Installs itself as the observer's TraceBuffer record hook
  // (replacing any previous hook) and schedules the periodic sweep; both are
  // undone by the destructor. The checker must not outlive any of its
  // arguments. (Two constructors instead of a defaulted `Config{}` argument
  // for the same incomplete-class reason as obs::Observer.)
  InvariantChecker(core::EscraSystem& escra, net::Network& network,
                   obs::Observer& observer)
      : InvariantChecker(escra, network, observer, Config{}) {}
  InvariantChecker(core::EscraSystem& escra, net::Network& network,
                   obs::Observer& observer, Config config);
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Runs a full sweep immediately (in addition to the periodic schedule).
  void check_now() { sweep(); }

  // Arms the bandwidth-conservation sweep against a live shaper (call when
  // the system runs with EscraSystem::enable_bandwidth):
  //   - bw-nic-conservation   per node, the summed per-container rate limits
  //                           (counting each container at the larger of its
  //                           applied shaper rate and its shadow book rate,
  //                           so in-flight slots stay accounted) never
  //                           exceed the node's NIC capacity
  //   - bw-floor              every shaped member's granted rate stays at or
  //                           above the bw_min_rate admission floor
  //   - pool/gauge checks     the bandwidth pool book and its obs gauges,
  //                           same rules as CPU/memory
  void attach_bw(const bw::ClusterShaper& shaper) { bw_shaper_ = &shaper; }

  // Arms the credit-ledger rules (Karma defense; call when the system runs
  // with config.credit_defense, passing controller().credits()):
  //   - credit-conservation    minted == burned + outstanding, exactly
  //                            (integer micro-credits), and the maintained
  //                            outstanding total equals the sum of balances
  //   - credit-honest-floor    the defense never inverts fairness: a member
  //                            in good standing (positive balance) must not
  //                            sit starved below its fair share while
  //                            throttling, sweep after sweep, while a
  //                            credit-exhausted member holds cores above
  //                            fair share the whole time
  void attach_credits(const core::CreditLedger& ledger) { credits_ = &ledger; }

  bool ok() const { return violations_.empty() && dropped_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }
  // Violations observed but not retained (beyond max_violations).
  std::uint64_t dropped_violations() const { return dropped_violations_; }
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t events_checked() const { return events_checked_; }

  // Human-readable multi-line summary ("ok" or one line per violation).
  std::string report() const;

 private:
  void on_event(const obs::TraceEvent& event);
  void sweep();
  void check_counters();
  void check_network();
  void check_credits();
  void add(const std::string& rule, std::uint32_t container,
           std::string detail);

  core::EscraSystem& escra_;
  net::Network& net_;
  obs::Observer& obs_;
  cluster::Cluster& cluster_;
  sim::Simulation& sim_;
  Config config_;
  sim::EventHandle sweep_event_;

  // --- per-event state ---
  sim::TimePoint last_event_time_ = 0;
  std::uint64_t events_checked_ = 0;
  std::uint64_t seen_[obs::kEventKindCount] = {};
  std::int64_t reclaim_bytes_seen_ = 0;
  std::uint64_t fail_static_entries_seen_ = 0;
  // Per-container CPU limit-update RPC tracking. `inflight` counts issues
  // without a matching apply; an apply of the *latest* issue clears the
  // count outright (the slot protocol supersedes older updates, so the
  // newest apply means the cgroup holds the controller's newest intent). A
  // resync also clears it: the controller just reconciled, and any residual
  // divergence gets its own corrective kRpcIssued. While inflight > 0 the
  // sweep grants the container slack equal to max(0, cgroup - shadow);
  // converged containers contribute zero, so the bound never goes vacuous.
  struct CpuTrack {
    int inflight = 0;
    obs::EventId latest_issue = 0;
  };
  std::unordered_map<std::uint32_t, CpuTrack> cpu_track_;

  // Split-brain detection (controller HA): the newest applied sequence per
  // (container, resource) slot, from kRpcApplied's detail field. Sequences
  // pack the controller epoch in the high bits, so "strictly increasing"
  // simultaneously rules out stale duplicates and any apply from a deposed
  // (lower) epoch after a higher epoch has landed one. Entries are dropped
  // for a node when an agent-crash fault window opens there: the crash
  // legitimately zeroes the agent's own seq table and epoch fence.
  struct AppliedSeq {
    std::uint64_t seq = 0;
    std::uint32_t node = 0;  // trace node tag (node id + 1)
  };
  std::unordered_map<std::uint64_t, AppliedSeq> applied_seq_;
  std::uint64_t last_elected_epoch_ = 0;

  // --- counter baselines captured at construction (the checker may attach
  //     to a system that has already been running) ---
  std::uint64_t base_cpu_grants_ = 0;
  std::uint64_t base_cpu_shrinks_ = 0;
  std::uint64_t base_mem_grants_ = 0;
  std::uint64_t base_rpcs_issued_ = 0;
  std::uint64_t base_rpcs_applied_ = 0;
  std::uint64_t base_registrations_ = 0;
  std::uint64_t base_deregistrations_ = 0;
  std::uint64_t base_throttled_periods_ = 0;
  std::uint64_t base_reclaim_bytes_ = 0;
  std::uint64_t base_retransmits_ = 0;
  std::uint64_t base_dup_suppressed_ = 0;
  std::uint64_t base_resyncs_ = 0;
  std::uint64_t base_nodes_dead_ = 0;
  std::uint64_t base_nodes_alive_ = 0;
  std::uint64_t base_fail_static_ = 0;
  std::uint64_t base_faults_injected_ = 0;
  std::uint64_t base_faults_cleared_ = 0;
  std::uint64_t base_ha_elections_ = 0;
  std::uint64_t base_ha_fenced_ = 0;
  std::uint64_t base_ha_wal_lag_ = 0;
  std::uint64_t base_bw_throttles_ = 0;
  std::uint64_t base_bw_saturation_ = 0;
  std::uint64_t base_bw_grants_ = 0;
  std::uint64_t base_bw_shrinks_ = 0;
  std::uint64_t base_telemetry_rejected_ = 0;
  std::uint64_t base_credit_charges_ = 0;
  std::uint64_t base_credit_refunds_ = 0;
  std::uint64_t base_greedy_throttles_ = 0;
  std::uint64_t base_rt_admitted_ = 0;
  std::uint64_t base_rt_rejected_ = 0;
  std::uint64_t base_rt_evicted_ = 0;
  std::uint64_t base_deadline_misses_ = 0;

  // Admitted RT containers and their reservation floors, tracked from
  // kRtAdmitted/kRtEvicted events and re-armed from controller introspection
  // every sweep (recovery re-installation after a crash/resync or takeover
  // is deliberately traceless — exactly-once admission events — so the
  // event stream alone under-reports the live admitted set).
  std::unordered_map<std::uint32_t, double> rt_floor_track_;

  const bw::ClusterShaper* bw_shaper_ = nullptr;
  const core::CreditLedger* credits_ = nullptr;
  // Honest-floor bookkeeping: when each container last reported a throttled
  // period (kThrottleObserved), and how many consecutive sweeps the
  // inversion (starving honest member + overclaiming broke member) held.
  std::unordered_map<std::uint32_t, sim::TimePoint> last_throttle_;
  int starve_streak_ = 0;
  // When each container was last reclaimed (kReclaim): a pre-OOM grant may
  // land below the stale applied limit only when an emergency reclaim
  // shrank the same container in the same instant.
  std::unordered_map<std::uint32_t, sim::TimePoint> last_reclaim_;

  // net ChannelStats vs obs counter offsets (attach_metrics only mirrors
  // traffic sent after attachment, so the two differ by a constant).
  struct NetBaseline {
    const obs::Counter* bytes = nullptr;
    const obs::Counter* messages = nullptr;
    std::uint64_t bytes_offset = 0;
    std::uint64_t messages_offset = 0;
  };
  NetBaseline net_base_[net::kChannelCount];
  const obs::Counter* net_dropped_ = nullptr;
  std::uint64_t net_dropped_offset_ = 0;
  const obs::Counter* net_duplicated_ = nullptr;
  std::uint64_t net_duplicated_offset_ = 0;

  std::vector<Violation> violations_;
  std::uint64_t dropped_violations_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace escra::check
