// Cross-shard conservation checker (escra_check).
//
// The per-shard story is covered by one InvariantChecker per shard (each
// shard has its own Observer, so the per-event hooks and pool/counter
// sweeps apply unchanged). What no per-shard checker can see is the
// *plane-level* law the borrowing protocol must preserve:
//
//     sum over shards(pool slice limit) + in-flight transfers
//         == cluster pool                          (per resource)
//
// exactly for memory (every transfer is whole bytes) and to cpu_eps for
// CPU / bw_eps for bandwidth. Because lenders and returners shrink their
// slice *before* the grant/notice travels, the identity holds at every
// instant — through drops, duplicated RPC legs, retransmits, and shard
// leader crashes — not just at quiescence. This checker sweeps it on the
// sim clock, plus the plane-level sanity rules:
//
//   - shard-cpu/mem/bw-conservation   the identity above
//   - shard-pool-floor                every slice limit covers its
//                                     allocated sum (never negative)
//   - shard-inflight-floor            in-flight totals never go negative
//                                     (a transfer landed twice)
//   - shard-borrow-counters           grants never outnumber requests and
//                                     sequenced ops imply their sends
//
//   shard::ShardedControlPlane plane(...);
//   check::ShardInvariantChecker checker(plane);
//   simulation.run_until(...);
//   if (!checker.ok()) std::puts(checker.report().c_str());
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "shard/sharded_control_plane.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::check {

class ShardInvariantChecker {
 public:
  struct Config {
    sim::Duration sweep_interval = sim::milliseconds(100);
    std::size_t max_violations = 64;
    double cpu_eps = 1e-6;
    double bw_eps = 1e-3;  // bytes/s pools are ~1e9-scale
  };

  explicit ShardInvariantChecker(shard::ShardedControlPlane& plane)
      : ShardInvariantChecker(plane, Config{}) {}
  ShardInvariantChecker(shard::ShardedControlPlane& plane, Config config);
  ~ShardInvariantChecker();

  ShardInvariantChecker(const ShardInvariantChecker&) = delete;
  ShardInvariantChecker& operator=(const ShardInvariantChecker&) = delete;

  // Runs a full sweep immediately (in addition to the periodic schedule).
  void check_now() { sweep(); }

  bool ok() const { return violations_.empty() && dropped_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t dropped_violations() const { return dropped_violations_; }
  std::uint64_t sweeps() const { return sweeps_; }

  // Human-readable multi-line summary ("ok" or one line per violation).
  std::string report() const;

 private:
  void sweep();
  void add(const std::string& rule, std::string detail);

  shard::ShardedControlPlane& plane_;
  sim::Simulation& sim_;
  Config config_;
  sim::EventHandle sweep_event_;

  std::vector<Violation> violations_;
  std::uint64_t dropped_violations_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace escra::check
