#include "check/shard_checker.h"

#include <cmath>
#include <cstdio>

namespace escra::check {

ShardInvariantChecker::ShardInvariantChecker(
    shard::ShardedControlPlane& plane, Config config)
    : plane_(plane), sim_(plane.simulation()), config_(config) {
  sweep_event_ = sim_.schedule_every(sim_.now() + config_.sweep_interval,
                                     config_.sweep_interval,
                                     [this] { sweep(); });
}

ShardInvariantChecker::~ShardInvariantChecker() { sim_.cancel(sweep_event_); }

void ShardInvariantChecker::add(const std::string& rule, std::string detail) {
  if (violations_.size() >= config_.max_violations) {
    ++dropped_violations_;
    return;
  }
  violations_.push_back({sim_.now(), rule, 0, std::move(detail)});
}

void ShardInvariantChecker::sweep() {
  ++sweeps_;
  char buf[256];

  double cpu_sum = 0.0;
  memcg::Bytes mem_sum = 0;
  double bw_sum = 0.0;
  for (int s = 0; s < plane_.shard_count(); ++s) {
    core::DistributedContainer& app = plane_.shard(s).app();
    cpu_sum += app.cpu_limit();
    mem_sum += app.mem_limit();
    bw_sum += app.bw_limit();
    // Slice floors: the DistributedContainer asserts limit >= allocated on
    // every mutation, but a lender bug could shrink past its commitments
    // between mutations of *different* shards — re-check from outside.
    if (app.cpu_limit() < app.cpu_allocated() - config_.cpu_eps ||
        app.cpu_limit() < 0.0) {
      std::snprintf(buf, sizeof buf,
                    "shard %d cpu slice %.6f below allocated %.6f", s,
                    app.cpu_limit(), app.cpu_allocated());
      add("shard-pool-floor", buf);
    }
    if (app.mem_limit() < app.mem_allocated() || app.mem_limit() < 0) {
      std::snprintf(buf, sizeof buf,
                    "shard %d mem slice %lld below allocated %lld", s,
                    static_cast<long long>(app.mem_limit()),
                    static_cast<long long>(app.mem_allocated()));
      add("shard-pool-floor", buf);
    }
  }

  const double cpu_total = cpu_sum + plane_.inflight_cpu();
  if (std::fabs(cpu_total - plane_.cluster_cpu_limit()) > config_.cpu_eps) {
    std::snprintf(buf, sizeof buf,
                  "sum(slices) %.9f + inflight %.9f != cluster %.9f", cpu_sum,
                  plane_.inflight_cpu(), plane_.cluster_cpu_limit());
    add("shard-cpu-conservation", buf);
  }
  // Memory transfers are whole bytes, so the identity must hold exactly.
  const long long mem_inflight = std::llround(plane_.inflight_mem());
  if (mem_sum + mem_inflight !=
      static_cast<long long>(plane_.cluster_mem_limit())) {
    std::snprintf(buf, sizeof buf,
                  "sum(slices) %lld + inflight %lld != cluster %lld",
                  static_cast<long long>(mem_sum), mem_inflight,
                  static_cast<long long>(plane_.cluster_mem_limit()));
    add("shard-mem-conservation", buf);
  }
  if (plane_.cluster_bw_limit() > 0.0 &&
      std::fabs(bw_sum + plane_.inflight_bw() - plane_.cluster_bw_limit()) >
          config_.bw_eps) {
    std::snprintf(buf, sizeof buf,
                  "sum(slices) %.3f + inflight %.3f != cluster %.3f", bw_sum,
                  plane_.inflight_bw(), plane_.cluster_bw_limit());
    add("shard-bw-conservation", buf);
  }

  if (plane_.inflight_cpu() < -config_.cpu_eps ||
      plane_.inflight_mem() < -0.5 || plane_.inflight_bw() < -config_.bw_eps) {
    std::snprintf(buf, sizeof buf,
                  "inflight cpu %.9f mem %.0f bw %.3f (a transfer landed "
                  "twice)",
                  plane_.inflight_cpu(), plane_.inflight_mem(),
                  plane_.inflight_bw());
    add("shard-inflight-floor", buf);
  }

  // Counter sanity: every grant answers exactly one fresh request sequence
  // and every return ships at most once per sequence, so grants can never
  // outnumber requests.
  if (plane_.borrows_granted() > plane_.borrows_requested()) {
    std::snprintf(buf, sizeof buf, "grants %llu > requests %llu",
                  static_cast<unsigned long long>(plane_.borrows_granted()),
                  static_cast<unsigned long long>(plane_.borrows_requested()));
    add("shard-borrow-counters", buf);
  }
}

std::string ShardInvariantChecker::report() const {
  if (ok()) return "ok";
  std::string out;
  char head[128];
  std::snprintf(head, sizeof head, "%zu violation(s), %llu dropped:\n",
                violations_.size(),
                static_cast<unsigned long long>(dropped_violations_));
  out += head;
  for (const Violation& v : violations_) {
    char line[384];
    std::snprintf(line, sizeof line, "  t=%lld us [%s] %s\n",
                  static_cast<long long>(v.time), v.rule.c_str(),
                  v.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace escra::check
