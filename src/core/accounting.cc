#include "core/accounting.h"

#include <stdexcept>

namespace escra::core {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}  // namespace

UsageAccountant::UsageAccountant(sim::Simulation& sim, sim::Duration interval)
    : sim_(sim), interval_(interval) {
  if (interval <= 0) throw std::invalid_argument("UsageAccountant: interval");
  loop_ = sim_.schedule_every(sim_.now() + interval_, interval_,
                              [this] { on_sample(); });
}

UsageAccountant::~UsageAccountant() { sim_.cancel(loop_); }

void UsageAccountant::track(cluster::Container& container,
                            const std::string& tenant) {
  if (tenant.empty()) throw std::invalid_argument("track: empty tenant");
  const std::uint32_t slot = index_.intern(container.id());
  if (slot >= tracked_.size()) {
    tracked_.resize(index_.capacity());
    tenant_of_.resize(index_.capacity());
  }
  Tracked t;
  t.container = &container;
  t.prev_consumed = container.cpu_cgroup().total_consumed();
  tracked_[slot] = t;
  tenant_of_[slot] = tenant;
  bills_.try_emplace(tenant);
}

void UsageAccountant::untrack(cluster::ContainerId id) { index_.release(id); }

void UsageAccountant::on_sample() {
  const double interval_s = sim::to_seconds(interval_);
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId) {
    Tracked& t = tracked_[slot];
    UsageBill& bill = bills_[tenant_of_[slot]];
    const sim::Duration consumed = t.container->cpu_cgroup().total_consumed();
    bill.cpu_core_seconds_used +=
        static_cast<double>(consumed - t.prev_consumed) /
        static_cast<double>(sim::kSecond);
    t.prev_consumed = consumed;
    bill.cpu_core_seconds_reserved +=
        t.container->cpu_cgroup().limit_cores() * interval_s;
    bill.mem_gib_seconds_used +=
        static_cast<double>(t.container->mem_cgroup().usage()) / kGiB *
        interval_s;
    bill.mem_gib_seconds_reserved +=
        static_cast<double>(t.container->mem_cgroup().limit()) / kGiB *
        interval_s;
    ++bill.samples;
  });
}

const UsageBill& UsageAccountant::bill(const std::string& tenant) const {
  static const UsageBill kEmpty;
  const auto it = bills_.find(tenant);
  return it == bills_.end() ? kEmpty : it->second;
}

std::vector<std::string> UsageAccountant::tenants() const {
  std::vector<std::string> out;
  out.reserve(bills_.size());
  for (const auto& [tenant, bill] : bills_) out.push_back(tenant);
  return out;
}

}  // namespace escra::core
