#include "core/credit_ledger.h"

#include <algorithm>

namespace escra::core {

void CreditLedger::open(cluster::ContainerId id, std::int64_t init_micro) {
  const auto [it, inserted] = accounts_.try_emplace(id);
  if (!inserted) return;
  it->second.micro = init_micro;
  minted_ += init_micro;
  outstanding_ += init_micro;
}

void CreditLedger::close(cluster::ContainerId id) {
  const auto it = accounts_.find(id);
  if (it == accounts_.end()) return;
  // The remaining balance (or debt) is burned with the account: minted
  // stays the history of everything ever issued, outstanding drops by
  // exactly what the account held, and conservation holds through the sign.
  burned_ += it->second.micro;
  outstanding_ -= it->second.micro;
  accounts_.erase(it);
}

std::int64_t CreditLedger::balance_micro(cluster::ContainerId id) const {
  const auto it = accounts_.find(id);
  return it != accounts_.end() ? it->second.micro : 0;
}

std::int64_t CreditLedger::mint(cluster::ContainerId id, std::int64_t micro,
                                std::int64_t cap_micro) {
  const auto it = accounts_.find(id);
  if (it == accounts_.end() || micro <= 0) return 0;
  const std::int64_t room = cap_micro - it->second.micro;
  const std::int64_t granted = std::clamp<std::int64_t>(micro, 0, std::max<std::int64_t>(0, room));
  it->second.micro += granted;
  minted_ += granted;
  outstanding_ += granted;
  return granted;
}

std::int64_t CreditLedger::burn(cluster::ContainerId id, std::int64_t micro) {
  const auto it = accounts_.find(id);
  if (it == accounts_.end() || micro <= 0) return 0;
  it->second.micro -= micro;
  burned_ += micro;
  outstanding_ -= micro;
  return micro;
}

std::int32_t CreditLedger::bump_streak(cluster::ContainerId id) {
  const auto it = accounts_.find(id);
  if (it == accounts_.end()) return 0;
  return ++it->second.above_streak;
}

void CreditLedger::reset_streak(cluster::ContainerId id) {
  const auto it = accounts_.find(id);
  if (it != accounts_.end()) it->second.above_streak = 0;
}

std::int32_t CreditLedger::streak(cluster::ContainerId id) const {
  const auto it = accounts_.find(id);
  return it != accounts_.end() ? it->second.above_streak : 0;
}

void CreditLedger::clear() {
  accounts_.clear();
  minted_ = 0;
  burned_ = 0;
  outstanding_ = 0;
}

void CreditLedger::install(const std::vector<Snapshot>& accounts,
                           std::int64_t minted, std::int64_t burned) {
  clear();
  for (const Snapshot& s : accounts) {
    Account& a = accounts_[s.id];
    a.micro = s.micro;
    outstanding_ += s.micro;
  }
  minted_ = minted;
  burned_ = burned;
}

std::vector<CreditLedger::Snapshot> CreditLedger::snapshot() const {
  std::vector<Snapshot> out;
  out.reserve(accounts_.size());
  for (const auto& [id, a] : accounts_) out.push_back(Snapshot{id, a.micro});
  return out;
}

}  // namespace escra::core
