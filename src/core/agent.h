// The Escra Agent (Figure 1, circle 5).
//
// One Agent runs per worker node (like a kubelet). It receives limit-update
// RPCs from the Controller and applies them to the container's cgroups —
// seamlessly, with no restart — and executes the periodic memory-reclamation
// scan (Section IV-C): any managed container whose memory limit exceeds its
// usage by more than the safe margin δ is shrunk to usage + δ, and the total
// reclaimed amount ψ is reported back.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/container.h"
#include "cluster/node.h"
#include "memcg/mem_cgroup.h"

namespace escra::obs {
class Counter;
}

namespace escra::core {

class Agent {
 public:
  explicit Agent(cluster::Node& node);

  cluster::Node& node() { return node_; }

  // The Container Watcher notifies the Agent of a newly created container on
  // its node; from then on the Agent can resize it (Section IV-A).
  void manage(cluster::Container& container);
  void unmanage(cluster::ContainerId id);
  bool manages(cluster::ContainerId id) const { return managed_.contains(id); }
  std::size_t managed_count() const { return managed_.size(); }

  // --- limit application (RPC handlers) ---
  // Both return false if the container is not managed by this Agent.
  bool apply_cpu_limit(cluster::ContainerId id, double cores);
  bool apply_mem_limit(cluster::ContainerId id, memcg::Bytes limit);

  // --- memory reclamation (Section IV-C) ---
  struct Resize {
    cluster::ContainerId container = 0;
    memcg::Bytes old_limit = 0;  // limit before the shrink (for tracing)
    memcg::Bytes new_limit = 0;
  };
  struct ReclaimResult {
    memcg::Bytes psi = 0;          // total reclaimed bytes
    std::vector<Resize> resizes;   // per-container new limits (for shadow sync)
  };

  // Shrinks every managed container with limit > usage + delta down to
  // usage + delta (never below `floor`). Returns ψ and the new limits.
  ReclaimResult reclaim(memcg::Bytes delta, memcg::Bytes floor);

  // Observability: counter bumped on every successful limit application
  // (CPU or memory). Null (the default) disables the hook.
  void set_obs_counter(obs::Counter* limit_applies) {
    obs_applies_ = limit_applies;
  }

 private:
  cluster::Node& node_;
  std::unordered_map<cluster::ContainerId, cluster::Container*> managed_;
  obs::Counter* obs_applies_ = nullptr;
};

}  // namespace escra::core
