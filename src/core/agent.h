// The Escra Agent (Figure 1, circle 5).
//
// One Agent runs per worker node (like a kubelet). It receives limit-update
// RPCs from the Controller and applies them to the container's cgroups —
// seamlessly, with no restart — and executes the periodic memory-reclamation
// scan (Section IV-C): any managed container whose memory limit exceeds its
// usage by more than the safe margin δ is shrunk to usage + δ, and the total
// reclaimed amount ψ is reported back.
//
// Reliability layer (beyond the paper): limit updates carry sequence
// numbers, and the Agent keeps the newest applied sequence per container and
// resource so duplicated or reordered retransmits are discarded (idempotent
// applies). The Agent heartbeats to the Controller, and a lease watchdog
// drops it into *fail-static* mode when the Controller goes silent: no local
// limit churn, containers keep running at their last-applied limits. The
// Agent can crash (soft state — the sequence table — is lost; cgroups are
// kernel state and persist) and restart with a new incarnation, which the
// Controller detects to trigger a resync.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bw/shaper.h"
#include "cluster/container.h"
#include "cluster/node.h"
#include "core/container_index.h"
#include "memcg/mem_cgroup.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace escra::obs {
class Observer;
}

namespace escra::core {

class Agent {
 public:
  explicit Agent(cluster::Node& node);

  cluster::Node& node() { return node_; }

  // The Container Watcher notifies the Agent of a newly created container on
  // its node; from then on the Agent can resize it (Section IV-A).
  void manage(cluster::Container& container);
  void unmanage(cluster::ContainerId id);
  bool manages(cluster::ContainerId id) const { return index_.contains(id); }
  std::size_t managed_count() const { return index_.size(); }

  // --- limit application (RPC handlers) ---

  // Outcome of a sequenced apply.
  enum class Apply {
    kApplied,   // limit written to the cgroup
    kStale,     // duplicate / out-of-date sequence: discarded (idempotent)
    kRejected,  // agent crashed or container unmanaged: no response at all
    kFenced,    // update from a fenced (deposed) controller epoch: discarded
  };
  // Sequenced applies: `seq` must exceed the newest applied sequence for the
  // (container, resource) pair or the update is discarded as stale. seq 0
  // bypasses the check (unsequenced local/test path).
  Apply apply_cpu_limit(cluster::ContainerId id, double cores,
                        std::uint64_t seq);
  Apply apply_mem_limit(cluster::ContainerId id, memcg::Bytes limit,
                        std::uint64_t seq);
  // Writes a bandwidth rate limit into the node's shaper (the tc/HTB
  // analogue of a cgroup write). Rejected when no shaper is wired.
  Apply apply_bw_limit(cluster::ContainerId id, double rate_bps,
                       std::uint64_t seq);
  // Unsequenced compatibility overloads; false if not managed here.
  bool apply_cpu_limit(cluster::ContainerId id, double cores) {
    return apply_cpu_limit(id, cores, 0) == Apply::kApplied;
  }
  bool apply_mem_limit(cluster::ContainerId id, memcg::Bytes limit) {
    return apply_mem_limit(id, limit, 0) == Apply::kApplied;
  }

  // --- memory reclamation (Section IV-C) ---
  struct Resize {
    cluster::ContainerId container = 0;
    memcg::Bytes old_limit = 0;  // limit before the shrink (for tracing)
    memcg::Bytes new_limit = 0;
  };
  struct ReclaimResult {
    memcg::Bytes psi = 0;          // total reclaimed bytes
    std::vector<Resize> resizes;   // per-container new limits (for shadow sync)
  };

  // Shrinks every managed container with limit > usage + delta down to
  // usage + delta (never below `floor`). Returns ψ and the new limits.
  ReclaimResult reclaim(memcg::Bytes delta, memcg::Bytes floor);

  // --- heartbeats, lease, crash/restart ---

  // Wires the agent to the simulation and network. `heartbeat_sink` runs at
  // the Controller when a heartbeat is delivered (node id, incarnation).
  using HeartbeatSink =
      std::function<void(cluster::NodeId, std::uint64_t incarnation)>;
  void connect(sim::Simulation& sim, net::Network& net, HeartbeatSink sink);

  // Starts/stops the heartbeat loop (and the piggybacked lease watchdog).
  // Requires connect() first; driven by Controller::start/stop.
  void start(sim::Duration heartbeat_interval, sim::Duration lease);
  void stop();

  // Crash: the agent process dies. Soft state (sequence table) is lost;
  // cgroup limits are kernel state and persist — the node fails static.
  // RPCs to a crashed agent are rejected (no response). restart() brings it
  // back with a new incarnation so the Controller can detect it and resync.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }
  std::uint64_t incarnation() const { return incarnation_; }

  // Fail-static: entered when the lease expires without Controller contact,
  // left on the next contact. (The flag is advisory — the applied cgroup
  // limits already *are* the fail-static state.)
  bool fail_static() const { return fail_static_; }
  // Any message from the Controller (heartbeat ack, delivered RPC) renews
  // the lease.
  void note_controller_contact();

  // --- epoch fencing (controller HA, src/ha) ---
  // A newly elected leader broadcasts its epoch; from then on any sequenced
  // update whose packed epoch (seq >> 48) is below the fence is discarded
  // with Apply::kFenced — a deposed leader (or its in-flight retransmits)
  // can never move a cgroup after the handoff. The fence only ratchets up.
  // Like the sequence table, the fence is soft state: a crash clears it and
  // the new leader's resync re-establishes it.
  void fence_epoch(std::uint64_t epoch);
  std::uint64_t fenced_epoch() const { return fenced_epoch_; }

  // --- resync snapshot ---
  // The agent's managed-container inventory with last-applied limits,
  // sorted by id (deterministic order for resync replay). The Controller
  // rebuilds its registry and pool accounting from this on reconnect.
  struct SnapshotEntry {
    cluster::ContainerId id = 0;
    cluster::Container* container = nullptr;
    double cpu_cores = 0.0;
    memcg::Bytes mem_limit = 0;
    double bw_bps = 0.0;  // applied shaper rate; 0 = unshaped
  };
  std::vector<SnapshotEntry> snapshot() const;

  // Wires the node's traffic shaper. Like the cgroups, shaper rates are
  // node state: they persist across Agent crashes (fail-static) and are
  // reported in the resync snapshot.
  void set_bw_shaper(bw::ClusterShaper* shaper) { bw_shaper_ = shaper; }
  bw::ClusterShaper* bw_shaper() { return bw_shaper_; }

  // Observability: trace events (duplicate-suppressed, fail-static) and the
  // limit-apply counter. Null (the default) disables the hooks.
  void set_observer(obs::Observer* observer) { obs_ = observer; }

 private:
  void send_heartbeat();
  void enter_fail_static();
  void record_fail_static(bool entered);
  void record_dup(cluster::ContainerId id, double before, double offered,
                  std::uint64_t seq);
  void record_fenced(cluster::ContainerId id, double before, double offered,
                     std::uint64_t seq);

  cluster::Node& node_;
  // Managed containers interned to dense slots; the hot per-container state
  // (container pointer + newest applied sequence per resource) lives in
  // slot-indexed struct-of-arrays so the per-RPC apply path is a direct
  // load, and the reclaim sweep walks containers densely.
  ContainerIndex index_;
  std::vector<cluster::Container*> containers_;
  std::vector<std::uint64_t> cpu_seq_;
  std::vector<std::uint64_t> mem_seq_;
  std::vector<std::uint64_t> bw_seq_;
  obs::Observer* obs_ = nullptr;
  bw::ClusterShaper* bw_shaper_ = nullptr;

  sim::Simulation* sim_ = nullptr;
  net::Network* net_ = nullptr;
  HeartbeatSink heartbeat_sink_;
  sim::EventHandle heartbeat_loop_;
  sim::Duration lease_ = 0;
  sim::TimePoint last_contact_ = 0;
  bool running_ = false;
  bool crashed_ = false;
  bool fail_static_ = false;
  std::uint64_t incarnation_ = 1;
  std::uint64_t fenced_epoch_ = 0;  // min controller epoch still accepted
};

}  // namespace escra::core
