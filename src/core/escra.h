// EscraSystem: the one-object public API.
//
// Bundles the Distributed Container, Resource Allocator, Controller,
// Deployer, and Container Watcher into a single facade. A typical use:
//
//   sim::Simulation simulation;
//   net::Network network(simulation);
//   cluster::Cluster k8s(simulation);
//   k8s.add_node({.cores = 20});
//
//   core::EscraSystem escra(simulation, network, k8s,
//                           /*global_cpu=*/8.0, /*global_mem=*/4 * kGiB);
//   escra.deploy({.name = "shop", .containers = {...}});   // Eq. 1-2 limits
//   escra.start();                                          // control loops on
//   simulation.run_until(sim::seconds(60));
//
// Containers created later (serverless pods) are picked up automatically
// once `watch()` is enabled.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/deployer.h"
#include "core/distributed_container.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace escra::core {

class EscraSystem {
 public:
  EscraSystem(sim::Simulation& sim, net::Network& network,
              cluster::Cluster& cluster, double global_cpu_cores,
              memcg::Bytes global_mem, EscraConfig config = EscraConfig{});

  // Deploys an application under Escra management (Deployer path, Eq. 1-2).
  std::vector<cluster::Container*> deploy(const AppSpec& spec);

  // Takes over already-deployed containers as one application, applying the
  // Eq. 1-2 initial limits (the Deployer path for containers another
  // component created, e.g. the experiment harness).
  void manage(const std::vector<cluster::Container*>& containers);

  // Enables the Container Watcher: containers created in the cluster from
  // now on are adopted as late joiners.
  void watch() { watcher_.enable(); }
  void unwatch() { watcher_.disable(); }

  // Adopts an already-running container (manual Watcher path).
  void adopt(cluster::Container& container);
  // Releases a container (pod reaped): limits return to the pool.
  void release(cluster::Container& container);

  // Starts the periodic control loops (memory reclamation, liveness checks,
  // Agent heartbeats).
  void start() { controller_.start(); }
  void stop() { controller_.stop(); }

  // Arms bandwidth as a third managed resource: the Distributed Container
  // gains a bandwidth pool of `global_bw_bps`, the Controller keeps the
  // shaper for admission/clamping and starts its telemetry sampler, and
  // subsequent manage()/deploy() calls grant each container an equal
  // bootstrap rate (the bandwidth analogue of Eq. 1). The shaper must
  // outlive the system and be wired into the Network by the caller
  // (network.set_shaper).
  void enable_bandwidth(bw::ClusterShaper& shaper, double global_bw_bps);
  bool bandwidth_enabled() const { return controller_.bandwidth_enabled(); }

  // Real-time admission (mixed-criticality class): reserves a
  // (runtime, deadline, period) floor for a managed container. The
  // container must already be adopted/deployed; see Controller::admit_rt
  // for the utilization-bound tests and the never-reclaim guarantee.
  Controller::RtAdmit admit_rt(cluster::Container& container,
                               const cfs::RtSpec& spec, double bw_bps = 0.0) {
    return controller_.admit_rt(container.id(), spec, bw_bps);
  }
  bool evict_rt(cluster::Container& container, int reason = 2) {
    return controller_.evict_rt(container.id(), reason);
  }
  bool rt_admitted(cluster::ContainerId id) const {
    return controller_.rt_admitted(id);
  }
  double rt_reserved_cores() const { return controller_.rt_reserved_cores(); }

  // Fault injection: kills / revives the Controller process. Soft state
  // (registry, pool accounting, pending retransmits) is lost on crash and
  // rebuilt from the Agents' snapshots on restart; nodes fail static in
  // between (cgroups keep the last applied limits).
  void crash() { controller_.crash(); }
  void restart() { controller_.restart(); }
  bool crashed() const { return controller_.crashed(); }

  // Attaches control-plane observability (decision trace, metrics, loop
  // profiler) to the Controller and the Resource Allocator. Safe before or
  // after deploy; already-registered containers are re-wired. The observer
  // must outlive the system (or be detached first).
  void attach_observer(obs::Observer& observer) {
    controller_.set_observer(&observer);
    allocator_.set_observer(&observer);
  }
  void detach_observer() {
    controller_.set_observer(nullptr);
    allocator_.set_observer(nullptr);
  }

  DistributedContainer& app() { return app_; }
  ResourceAllocator& allocator() { return allocator_; }
  Controller& controller() { return controller_; }
  cluster::Cluster& cluster() { return cluster_; }
  const EscraConfig& config() const { return config_; }

 private:
  cluster::Cluster& cluster_;
  EscraConfig config_;
  DistributedContainer app_;
  ResourceAllocator allocator_;
  Controller controller_;
  Deployer deployer_;
  ContainerWatcher watcher_;
};

}  // namespace escra::core
