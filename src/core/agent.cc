#include "core/agent.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/messages.h"
#include "obs/observer.h"

namespace escra::core {

Agent::Agent(cluster::Node& node) : node_(node) {}

void Agent::manage(cluster::Container& container) {
  // Re-managing keeps the existing sequence state (idempotent).
  bool created = false;
  const std::uint32_t slot = index_.intern(container.id(), &created);
  if (slot >= containers_.size()) {
    containers_.resize(index_.capacity(), nullptr);
    cpu_seq_.resize(index_.capacity(), 0);
    mem_seq_.resize(index_.capacity(), 0);
    bw_seq_.resize(index_.capacity(), 0);
  }
  if (created) {
    // Fresh tenancy (first manage, or slot reuse after an unmanage): the
    // sequence state starts clean for the new container.
    cpu_seq_[slot] = 0;
    mem_seq_[slot] = 0;
    bw_seq_[slot] = 0;
  }
  containers_[slot] = &container;
}

void Agent::unmanage(cluster::ContainerId id) { index_.release(id); }

void Agent::record_dup(cluster::ContainerId id, double before, double offered,
                       std::uint64_t seq) {
  if (obs_ == nullptr || sim_ == nullptr) return;
  obs_->h.dup_suppressed->inc();
  obs::TraceEvent ev;
  ev.time = sim_->now();
  ev.kind = obs::EventKind::kDuplicateSuppressed;
  ev.container = id;
  ev.node = node_.id() + 1;
  ev.before = before;
  ev.after = offered;
  ev.detail = static_cast<std::int64_t>(seq);
  obs_->record(ev);
}

Agent::Apply Agent::apply_cpu_limit(cluster::ContainerId id, double cores,
                                    std::uint64_t seq) {
  if (crashed_) return Apply::kRejected;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return Apply::kRejected;
  cluster::Container& c = *containers_[slot];
  if (seq != 0 && update_seq_epoch(seq) < fenced_epoch_) {
    record_fenced(id, c.cpu_cgroup().limit_cores(), cores, seq);
    return Apply::kFenced;
  }
  if (seq != 0 && seq <= cpu_seq_[slot]) {
    record_dup(id, c.cpu_cgroup().limit_cores(), cores, seq);
    return Apply::kStale;
  }
  c.cpu_cgroup().set_limit_cores(cores);
  if (seq != 0) cpu_seq_[slot] = seq;
  if (obs_ != nullptr) obs_->h.agent_limit_applies->inc();
  return Apply::kApplied;
}

Agent::Apply Agent::apply_mem_limit(cluster::ContainerId id,
                                    memcg::Bytes limit, std::uint64_t seq) {
  if (crashed_) return Apply::kRejected;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return Apply::kRejected;
  cluster::Container& c = *containers_[slot];
  if (seq != 0 && update_seq_epoch(seq) < fenced_epoch_) {
    record_fenced(id, static_cast<double>(c.mem_cgroup().limit()),
                  static_cast<double>(limit), seq);
    return Apply::kFenced;
  }
  if (seq != 0 && seq <= mem_seq_[slot]) {
    record_dup(id, static_cast<double>(c.mem_cgroup().limit()),
               static_cast<double>(limit), seq);
    return Apply::kStale;
  }
  c.mem_cgroup().set_limit(limit);
  if (seq != 0) mem_seq_[slot] = seq;
  if (obs_ != nullptr) obs_->h.agent_limit_applies->inc();
  return Apply::kApplied;
}

Agent::Apply Agent::apply_bw_limit(cluster::ContainerId id, double rate_bps,
                                   std::uint64_t seq) {
  if (crashed_) return Apply::kRejected;
  if (bw_shaper_ == nullptr) return Apply::kRejected;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return Apply::kRejected;
  const double before = bw_shaper_->node_of(id) == bw::ClusterShaper::kNoNode
                            ? 0.0
                            : bw_shaper_->container_rate(id);
  if (seq != 0 && update_seq_epoch(seq) < fenced_epoch_) {
    record_fenced(id, before, rate_bps, seq);
    return Apply::kFenced;
  }
  if (seq != 0 && seq <= bw_seq_[slot]) {
    record_dup(id, before, rate_bps, seq);
    return Apply::kStale;
  }
  // Attach on first write: after a takeover or re-adoption the controller's
  // registration-time attach may not have happened on this seat.
  if (bw_shaper_->node_of(id) == bw::ClusterShaper::kNoNode) {
    bw_shaper_->attach(id, node_.id());
  }
  bw_shaper_->set_container_rate(id, rate_bps);
  if (seq != 0) bw_seq_[slot] = seq;
  if (obs_ != nullptr) obs_->h.agent_limit_applies->inc();
  return Apply::kApplied;
}

Agent::ReclaimResult Agent::reclaim(memcg::Bytes delta, memcg::Bytes floor) {
  ReclaimResult result;
  if (crashed_) return result;
  // Dense slot order: deterministic (unlike the old unordered_map walk) and
  // cache-friendly at node scale.
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId id) {
    memcg::MemCgroup& mem = containers_[slot]->mem_cgroup();
    const memcg::Bytes usage = mem.usage();
    const memcg::Bytes limit = mem.limit();
    if (limit <= usage + delta) return;  // C(i)_l <= C(i)_u + δ: leave it
    const memcg::Bytes new_limit = std::max(usage + delta, floor);
    if (new_limit >= limit) return;
    mem.set_limit(new_limit);
    result.psi += limit - new_limit;
    result.resizes.push_back({id, limit, new_limit});
  });
  return result;
}

void Agent::connect(sim::Simulation& sim, net::Network& net,
                    HeartbeatSink sink) {
  sim_ = &sim;
  net_ = &net;
  heartbeat_sink_ = std::move(sink);
  last_contact_ = sim.now();
}

void Agent::start(sim::Duration heartbeat_interval, sim::Duration lease) {
  if (running_) return;
  if (sim_ == nullptr) {
    throw std::logic_error("Agent::start: connect() first");
  }
  running_ = true;
  lease_ = lease;
  last_contact_ = sim_->now();
  heartbeat_loop_ =
      sim_->schedule_every(sim_->now() + heartbeat_interval,
                           heartbeat_interval, [this] { send_heartbeat(); });
}

void Agent::stop() {
  if (!running_) return;
  running_ = false;
  if (sim_ != nullptr) sim_->cancel(heartbeat_loop_);
}

void Agent::crash() {
  if (crashed_) return;
  crashed_ = true;
  fail_static_ = false;
  // Soft state dies with the process; cgroups persist in the kernel. The
  // epoch fence goes with it — the current leader's resync re-fences.
  fenced_epoch_ = 0;
  std::fill(cpu_seq_.begin(), cpu_seq_.end(), 0);
  std::fill(mem_seq_.begin(), mem_seq_.end(), 0);
  std::fill(bw_seq_.begin(), bw_seq_.end(), 0);
}

void Agent::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++incarnation_;
  if (sim_ != nullptr) last_contact_ = sim_->now();  // fresh lease
}

void Agent::record_fail_static(bool entered) {
  if (obs_ == nullptr || sim_ == nullptr) return;
  if (entered) obs_->h.fail_static_entries->inc();
  obs::TraceEvent ev;
  ev.time = sim_->now();
  ev.kind = obs::EventKind::kFailStatic;
  ev.node = node_.id() + 1;
  ev.detail = entered ? 1 : 0;
  obs_->record(ev);
}

void Agent::enter_fail_static() {
  if (fail_static_) return;
  fail_static_ = true;
  record_fail_static(true);
}

void Agent::record_fenced(cluster::ContainerId id, double before,
                          double offered, std::uint64_t seq) {
  if (obs_ == nullptr || sim_ == nullptr) return;
  obs_->h.ha_fenced_updates->inc();
  obs::TraceEvent ev;
  ev.time = sim_->now();
  ev.kind = obs::EventKind::kEpochFenced;
  ev.container = id;
  ev.node = node_.id() + 1;
  ev.before = before;
  ev.after = offered;
  ev.detail = static_cast<std::int64_t>(seq);
  obs_->record(ev);
}

void Agent::fence_epoch(std::uint64_t epoch) {
  if (crashed_) return;
  fenced_epoch_ = std::max(fenced_epoch_, epoch);
  // The fence broadcast comes from the live (new) leader: it renews the
  // lease like any other controller contact, so a takeover that beats the
  // watchdog keeps the node out of fail-static entirely.
  note_controller_contact();
}

void Agent::note_controller_contact() {
  if (crashed_ || sim_ == nullptr) return;
  last_contact_ = sim_->now();
  if (fail_static_) {
    fail_static_ = false;
    record_fail_static(false);
  }
}

void Agent::send_heartbeat() {
  if (crashed_ || net_ == nullptr) return;
  // The lease watchdog piggybacks on the heartbeat tick: silence past the
  // lease means the Controller (or the path to it) is gone — fall back to
  // fail-static rather than acting on stale intent.
  //
  // Boundary contract (strict >): contact delivered at *exactly* the lease
  // expiry instant still holds the lease — the agent stays live and only
  // strictly-longer silence trips fail-static. The controller's liveness
  // sweep uses the same strict comparison, so both sides of the lease agree
  // on the boundary deterministically.
  if (lease_ > 0 && sim_->now() - last_contact_ > lease_) enter_fail_static();
  if (!heartbeat_sink_) return;
  const cluster::NodeId node = node_.id();
  const std::uint64_t inc = incarnation_;
  net_->send_to(net::Channel::kControlRpc,
                static_cast<net::EndpointId>(node), net::kControllerEndpoint,
                kHeartbeatWireBytes,
                [sink = heartbeat_sink_, node, inc] { sink(node, inc); });
}

std::vector<Agent::SnapshotEntry> Agent::snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(index_.size());
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId id) {
    SnapshotEntry e;
    e.id = id;
    e.container = containers_[slot];
    e.cpu_cores = e.container->cpu_cgroup().limit_cores();
    e.mem_limit = e.container->mem_cgroup().limit();
    if (bw_shaper_ != nullptr &&
        bw_shaper_->node_of(id) != bw::ClusterShaper::kNoNode) {
      e.bw_bps = bw_shaper_->container_rate(id);
    }
    out.push_back(e);
  });
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace escra::core
