#include "core/agent.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace escra::core {

Agent::Agent(cluster::Node& node) : node_(node) {}

void Agent::manage(cluster::Container& container) {
  managed_[container.id()] = &container;
}

void Agent::unmanage(cluster::ContainerId id) { managed_.erase(id); }

bool Agent::apply_cpu_limit(cluster::ContainerId id, double cores) {
  const auto it = managed_.find(id);
  if (it == managed_.end()) return false;
  it->second->cpu_cgroup().set_limit_cores(cores);
  if (obs_applies_ != nullptr) obs_applies_->inc();
  return true;
}

bool Agent::apply_mem_limit(cluster::ContainerId id, memcg::Bytes limit) {
  const auto it = managed_.find(id);
  if (it == managed_.end()) return false;
  it->second->mem_cgroup().set_limit(limit);
  if (obs_applies_ != nullptr) obs_applies_->inc();
  return true;
}

Agent::ReclaimResult Agent::reclaim(memcg::Bytes delta, memcg::Bytes floor) {
  ReclaimResult result;
  for (auto& [id, container] : managed_) {
    memcg::MemCgroup& mem = container->mem_cgroup();
    const memcg::Bytes usage = mem.usage();
    const memcg::Bytes limit = mem.limit();
    if (limit <= usage + delta) continue;  // C(i)_l <= C(i)_u + δ: leave it
    const memcg::Bytes new_limit = std::max(usage + delta, floor);
    if (new_limit >= limit) continue;
    mem.set_limit(new_limit);
    result.psi += limit - new_limit;
    result.resizes.push_back({id, limit, new_limit});
  }
  return result;
}

}  // namespace escra::core
