// Dense container-slot interning for the control-plane hot path.
//
// Every per-sample structure in the control plane — the Controller's
// registry and desired-state slots, the Agent's managed table, the
// allocator's sliding windows, the Distributed Container's member book —
// used to hash a sparse `cluster::ContainerId` on every lookup. A
// ContainerIndex interns those ids into contiguous u32 *slots* so hot state
// can live in struct-of-arrays vectors indexed directly: one predictable
// load instead of a hash probe, and dense iteration instead of
// unordered_map walk order.
//
// Properties the rest of the tree relies on (locked by
// tests/container_index_test.cc):
//   * Determinism. Slot assignment is a pure function of the intern/release
//     call sequence (LIFO free-list reuse, ascending growth), so identical
//     seeds — and a takeover replaying the same registration order — produce
//     identical slot layouts and identical dense iteration order.
//   * Generation tags. A released slot's generation bumps before reuse;
//     a Handle captured before the release no longer resolves. Stale
//     handles are inert, never aliases of the slot's next tenant.
//   * Dense iteration. for_each visits live slots in ascending slot order,
//     skipping holes; after heavy churn the order is still deterministic.
//
// External identities (WAL records, replication events, trace events, the
// `container_id * 4 + resource` slot keys) keep using the stable
// ContainerId — slots are a process-local acceleration, never serialized.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/container.h"

namespace escra::core {

class ContainerIndex {
 public:
  // Sentinel for "no slot". All-ones so a branchless `slot < size` check
  // also rejects it.
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  // A generation-tagged reference to a slot. Resolves only while the slot's
  // current tenant is the one the handle was taken against.
  struct Handle {
    std::uint32_t slot = kInvalid;
    std::uint32_t generation = 0;
  };

  // Interns `id`, returning its slot. A known id returns its existing slot;
  // an unknown one takes the most recently freed slot (LIFO) or grows the
  // arrays by one. `created` (optional) reports which case happened so the
  // caller knows to (re)initialize its per-slot state.
  std::uint32_t intern(cluster::ContainerId id, bool* created = nullptr) {
    if (id < id_to_slot_.size() && id_to_slot_[id] != kInvalid) {
      if (created != nullptr) *created = false;
      return id_to_slot_[id];
    }
    if (id >= id_to_slot_.size()) id_to_slot_.resize(id + 1, kInvalid);
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slot_to_id_[slot] = id;
      live_[slot] = 1;
    } else {
      slot = static_cast<std::uint32_t>(slot_to_id_.size());
      slot_to_id_.push_back(id);
      gen_.push_back(0);
      live_.push_back(1);
    }
    id_to_slot_[id] = slot;
    ++size_;
    if (created != nullptr) *created = true;
    return slot;
  }

  // Slot for `id`, or kInvalid if the id is not interned.
  std::uint32_t find(cluster::ContainerId id) const {
    return id < id_to_slot_.size() ? id_to_slot_[id] : kInvalid;
  }

  bool contains(cluster::ContainerId id) const { return find(id) != kInvalid; }

  // Releases `id`'s slot back to the free list, bumping its generation so
  // outstanding handles go stale. Returns the freed slot (kInvalid if the
  // id was not interned). Per-slot side-table state need not be cleared
  // here: intern reports `created` on reuse so owners reset it then.
  std::uint32_t release(cluster::ContainerId id) {
    const std::uint32_t slot = find(id);
    if (slot == kInvalid) return kInvalid;
    id_to_slot_[id] = kInvalid;
    live_[slot] = 0;
    ++gen_[slot];
    free_.push_back(slot);
    --size_;
    return slot;
  }

  // Generation-tagged handle for a live id; {kInvalid, 0} otherwise.
  Handle handle(cluster::ContainerId id) const {
    const std::uint32_t slot = find(id);
    return slot == kInvalid ? Handle{} : Handle{slot, gen_[slot]};
  }

  // Resolves a handle: its slot while the tenancy it was taken against is
  // still current, kInvalid once the slot was released (even if reused).
  std::uint32_t resolve(Handle h) const {
    if (h.slot >= live_.size() || live_[h.slot] == 0) return kInvalid;
    return gen_[h.slot] == h.generation ? h.slot : kInvalid;
  }

  bool live(std::uint32_t slot) const {
    return slot < live_.size() && live_[slot] != 0;
  }
  cluster::ContainerId id_at(std::uint32_t slot) const {
    return slot_to_id_[slot];
  }
  std::uint32_t generation(std::uint32_t slot) const { return gen_[slot]; }

  // Live slot count / total slots ever created (vector length for SoA
  // side tables — index any slot in [0, capacity)).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slot_to_id_.size(); }

  // Visits every live slot in ascending slot order: fn(slot, id).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint32_t n = static_cast<std::uint32_t>(slot_to_id_.size());
    for (std::uint32_t slot = 0; slot < n; ++slot) {
      if (live_[slot] != 0) fn(slot, slot_to_id_[slot]);
    }
  }

  void clear() {
    id_to_slot_.clear();
    slot_to_id_.clear();
    gen_.clear();
    live_.clear();
    free_.clear();
    size_ = 0;
  }

 private:
  // Direct-mapped id -> slot. Container ids in this tree are small and
  // sequential (Cluster hands them out densely), so a flat vector beats a
  // hash table in both lookup cost and footprint.
  std::vector<std::uint32_t> id_to_slot_;
  std::vector<cluster::ContainerId> slot_to_id_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_;  // LIFO: hottest slot reused first
  std::size_t size_ = 0;
};

}  // namespace escra::core
