// Wire-message shapes and sizes for Escra's control plane.
//
// Sizes model the paper's transports: the per-period CPU statistic is a
// small fixed struct sent over UDP from a kernel thread (cgroup tag, quota,
// unused runtime, throttled flag — Section IV-B); OOM events and container
// registration ride the per-container kernel TCP socket; limit updates and
// reclamation requests are gRPC calls. The byte counts include L2-L4 and
// protocol framing so the network-overhead microbenchmark (Section VI-I)
// can report Mbps on comparable terms.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cfs/cgroup.h"
#include "memcg/mem_cgroup.h"

namespace escra::core {

// The resource a limit-update slot targets. Slot keys, WAL records, and the
// checker all pack this into the low bits of `container_id * 4 + resource`,
// so the numeric values are part of the on-disk/replication format.
enum class Resource : std::uint8_t {
  kCpu = 0,
  kMem = 1,
  kBw = 2,
};

// UDP telemetry datagram: 14B eth + 20B IP + 8B UDP + payload
// (4B cgroup tag, 8B quota, 8B unused runtime, 1B flags, padding).
inline constexpr std::size_t kCpuStatsWireBytes = 14 + 20 + 8 + 24;

// UDP bandwidth telemetry datagram: same transport as the CPU statistic
// (4B container tag, 8B rate, 8B used, 8B queue depth, 1B flags, padding).
inline constexpr std::size_t kBwStatsWireBytes = 14 + 20 + 8 + 32;

// TCP memory event (established kernel socket): headers + 16B payload.
inline constexpr std::size_t kOomEventWireBytes = 14 + 20 + 32 + 16;

// TCP registration message.
inline constexpr std::size_t kRegistrationWireBytes = 14 + 20 + 32 + 24;

// gRPC limit-update call: HTTP/2 + protobuf, empirically a few hundred bytes.
inline constexpr std::size_t kLimitUpdateRpcBytes = 280;
inline constexpr std::size_t kLimitUpdateRespBytes = 120;

// Coalesced per-node limit push: one gRPC call carrying every pending
// desired-state update for a node in the current period. The header covers
// HTTP/2 + protobuf framing once; each entry adds a compact repeated field
// (container id, resource tag, seq, value). The ack response mirrors the
// shape with per-entry (seq, status) pairs so partial application is
// visible to the controller's retransmit machinery.
inline constexpr std::size_t kBatchedLimitUpdateHdrBytes = 220;
inline constexpr std::size_t kBatchedLimitEntryBytes = 28;
inline constexpr std::size_t kBatchedLimitAckHdrBytes = 100;
inline constexpr std::size_t kBatchedLimitAckEntryBytes = 12;

// gRPC reclamation request/response (response carries per-node ψ).
inline constexpr std::size_t kReclaimRpcBytes = 260;
inline constexpr std::size_t kReclaimRespBytes = 160;

// Agent -> Controller heartbeat and its ack: small keepalive frames on the
// gRPC channel (node id + incarnation / bare ack).
inline constexpr std::size_t kHeartbeatWireBytes = 14 + 20 + 32 + 16;
inline constexpr std::size_t kHeartbeatAckWireBytes = 14 + 20 + 32 + 8;

// Resync snapshot exchange on reconnect/restart: the request names the
// node, the response carries the Agent's managed-container inventory with
// last-applied limits (modelled as a fixed mid-size frame).
inline constexpr std::size_t kResyncRpcBytes = 240;
inline constexpr std::size_t kResyncRespBytes = 320;

// Controller HA (src/ha). One WAL record streamed leader -> standby (kind,
// epoch, index, container/node, seq, limits), the standby's cumulative-ack
// frame back, the periodic epoch-lease announcement (which also carries the
// retransmit cursor exchange), and the new leader's epoch-fence broadcast to
// the Agents.
inline constexpr std::size_t kWalRecordWireBytes = 14 + 20 + 32 + 56;
inline constexpr std::size_t kWalAckWireBytes = 14 + 20 + 32 + 16;
inline constexpr std::size_t kLeaseAnnounceWireBytes = 14 + 20 + 32 + 24;
inline constexpr std::size_t kFenceWireBytes = 14 + 20 + 32 + 16;

// Cross-shard pool borrowing (src/shard). The periodic surplus advertisement
// is a small fire-and-forget datagram (per-resource headroom triple); borrow
// requests and return notices are gRPC calls whose responses carry the
// sequenced grant/ack, mirroring the desired-state-slot shapes above.
inline constexpr std::size_t kShardAdvertWireBytes = 14 + 20 + 8 + 40;
inline constexpr std::size_t kBorrowRequestRpcBytes = 180;
inline constexpr std::size_t kBorrowGrantRespBytes = 140;
inline constexpr std::size_t kBorrowReturnRpcBytes = 160;
inline constexpr std::size_t kBorrowReturnAckBytes = 90;

// Limit-update sequence numbers pack the controller epoch (incarnation) in
// the high 16 bits and a per-epoch counter in the low 48, so a higher epoch
// always compares greater and the Agents' monotonic-seq check doubles as
// epoch fencing. Controller::next_seq wraps the counter by bumping the epoch
// before it would overflow 48 bits, keeping packed comparison monotonic.
inline constexpr int kUpdateSeqBits = 48;
inline constexpr std::uint64_t kUpdateSeqMask =
    (std::uint64_t{1} << kUpdateSeqBits) - 1;
constexpr std::uint64_t pack_update_seq(std::uint64_t epoch,
                                        std::uint64_t counter) {
  return (epoch << kUpdateSeqBits) | (counter & kUpdateSeqMask);
}
constexpr std::uint64_t update_seq_epoch(std::uint64_t seq) {
  return seq >> kUpdateSeqBits;
}
constexpr std::uint64_t update_seq_counter(std::uint64_t seq) {
  return seq & kUpdateSeqMask;
}

// The per-period CPU statistic (Section IV-B).
struct CpuStatsMsg {
  cfs::CgroupId cgroup = 0;
  sim::TimePoint period_end = 0;
  sim::Duration quota = 0;
  sim::Duration unused = 0;
  bool throttled = false;
};

// Pre-OOM memory request (Section IV-B / IV-D2).
struct OomEventMsg {
  std::uint32_t container = 0;
  memcg::Bytes attempted_charge = 0;
  memcg::Bytes shortfall = 0;
};

}  // namespace escra::core
