#include "core/distributed_container.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace escra::core {

DistributedContainer::DistributedContainer(double cpu_limit_cores,
                                           memcg::Bytes mem_limit)
    : cpu_limit_(cpu_limit_cores), mem_limit_(mem_limit) {
  if (cpu_limit_cores <= 0.0 || mem_limit <= 0) {
    throw std::invalid_argument("DistributedContainer: nonpositive limits");
  }
}

void DistributedContainer::add_member(std::uint32_t container, double cores,
                                      memcg::Bytes mem) {
  if (index_.contains(container)) {
    throw std::invalid_argument("add_member: duplicate container");
  }
  if (cores < 0.0 || mem < 0) {
    throw std::invalid_argument("add_member: negative limits");
  }
  if (cpu_allocated_ + cores > cpu_limit_ + 1e-9) {
    throw std::invalid_argument("add_member: CPU grant exceeds global limit");
  }
  if (mem_allocated_ + mem > mem_limit_) {
    throw std::invalid_argument("add_member: memory grant exceeds global limit");
  }
  const std::uint32_t slot = index_.intern(container);
  if (slot >= members_.size()) members_.resize(index_.capacity());
  members_[slot] = Member{cores, mem, 0.0};
  cpu_allocated_ += cores;
  mem_allocated_ += mem;
  sync_gauges();
}

void DistributedContainer::remove_member(std::uint32_t container) {
  const std::uint32_t slot = index_.find(container);
  if (slot == ContainerIndex::kInvalid) {
    throw std::invalid_argument("remove_member: unknown");
  }
  const Member& m = members_[slot];
  cpu_allocated_ -= m.cores;
  mem_allocated_ -= m.mem;
  bw_allocated_ -= m.bw;
  index_.release(container);
  cpu_allocated_ = std::max(0.0, cpu_allocated_);
  mem_allocated_ = std::max<memcg::Bytes>(0, mem_allocated_);
  bw_allocated_ = std::max(0.0, bw_allocated_);
  sync_gauges();
}

void DistributedContainer::set_cpu_limit(double cpu_cores) {
  if (cpu_cores < 0.0) {
    throw std::invalid_argument("set_cpu_limit: negative limit");
  }
  if (cpu_cores + 1e-6 < cpu_allocated_) {
    throw std::invalid_argument("set_cpu_limit: below allocated cores");
  }
  cpu_limit_ = cpu_cores;
  sync_gauges();
}

void DistributedContainer::set_mem_limit(memcg::Bytes mem) {
  if (mem < 0) {
    throw std::invalid_argument("set_mem_limit: negative limit");
  }
  if (mem < mem_allocated_) {
    throw std::invalid_argument("set_mem_limit: below allocated memory");
  }
  mem_limit_ = mem;
  sync_gauges();
}

void DistributedContainer::set_bw_limit(double bw_bps) {
  if (bw_bps < 0.0) {
    throw std::invalid_argument("set_bw_limit: negative limit");
  }
  if (bw_bps + 1e-6 < bw_allocated_) {
    throw std::invalid_argument("set_bw_limit: below allocated bandwidth");
  }
  bw_limit_ = bw_bps;
  sync_gauges();
}

const DistributedContainer::Member& DistributedContainer::member(
    std::uint32_t container) const {
  const std::uint32_t slot = index_.find(container);
  if (slot == ContainerIndex::kInvalid) {
    throw std::invalid_argument("DistributedContainer: unknown member");
  }
  return members_[slot];
}

DistributedContainer::Member& DistributedContainer::member_at(
    std::uint32_t container, const char* caller) {
  const std::uint32_t slot = index_.find(container);
  if (slot == ContainerIndex::kInvalid) {
    throw std::invalid_argument(std::string(caller) + ": unknown member");
  }
  return members_[slot];
}

double DistributedContainer::member_cores(std::uint32_t container) const {
  return member(container).cores;
}

memcg::Bytes DistributedContainer::member_mem(std::uint32_t container) const {
  return member(container).mem;
}

double DistributedContainer::set_member_cores(std::uint32_t container,
                                              double cores) {
  Member& m = member_at(container, "set_member_cores");
  cores = std::max(0.0, cores);
  // Clamp so the application aggregate never exceeds the global limit: this
  // is the runtime enforcement that distinguishes a Distributed Container
  // from an admission-time Resource Quota.
  const double headroom = cpu_limit_ - (cpu_allocated_ - m.cores);
  cores = std::min(cores, headroom);
  cpu_allocated_ += cores - m.cores;
  m.cores = cores;
  sync_gauges();
  return cores;
}

memcg::Bytes DistributedContainer::set_member_mem(std::uint32_t container,
                                                  memcg::Bytes mem) {
  Member& m = member_at(container, "set_member_mem");
  mem = std::max<memcg::Bytes>(0, mem);
  const memcg::Bytes headroom = mem_limit_ - (mem_allocated_ - m.mem);
  mem = std::min(mem, headroom);
  mem_allocated_ += mem - m.mem;
  m.mem = mem;
  sync_gauges();
  return mem;
}

double DistributedContainer::member_bw(std::uint32_t container) const {
  return member(container).bw;
}

double DistributedContainer::set_member_bw(std::uint32_t container,
                                           double bw_bps) {
  Member& m = member_at(container, "set_member_bw");
  bw_bps = std::max(0.0, bw_bps);
  const double headroom = bw_limit_ - (bw_allocated_ - m.bw);
  bw_bps = std::min(bw_bps, std::max(0.0, headroom));
  bw_allocated_ += bw_bps - m.bw;
  m.bw = bw_bps;
  sync_gauges();
  return bw_bps;
}

void DistributedContainer::set_obs_gauges(obs::Gauge* cpu_allocated,
                                          obs::Gauge* cpu_unallocated,
                                          obs::Gauge* mem_allocated,
                                          obs::Gauge* mem_unallocated) {
  gauge_cpu_allocated_ = cpu_allocated;
  gauge_cpu_unallocated_ = cpu_unallocated;
  gauge_mem_allocated_ = mem_allocated;
  gauge_mem_unallocated_ = mem_unallocated;
  sync_gauges();
}

void DistributedContainer::set_bw_gauges(obs::Gauge* bw_allocated,
                                         obs::Gauge* bw_unallocated) {
  gauge_bw_allocated_ = bw_allocated;
  gauge_bw_unallocated_ = bw_unallocated;
  sync_gauges();
}

void DistributedContainer::sync_gauges() const {
  if (gauge_cpu_allocated_ != nullptr) {
    gauge_cpu_allocated_->set(cpu_allocated_);
    gauge_cpu_unallocated_->set(cpu_unallocated());
    gauge_mem_allocated_->set(static_cast<double>(mem_allocated_));
    gauge_mem_unallocated_->set(static_cast<double>(mem_unallocated()));
  }
  if (gauge_bw_allocated_ != nullptr) {
    gauge_bw_allocated_->set(bw_allocated_);
    gauge_bw_unallocated_->set(bw_unallocated());
  }
}

}  // namespace escra::core
