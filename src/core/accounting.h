// Usage accounting for Distributed Containers (Section VII).
//
// The paper observes that the Distributed Container abstraction is a natural
// unit for billing in serverless and multi-tenant systems: instead of
// charging for static reservations (what a pod *might* use) or opaque
// invocation counts, a provider can meter the aggregate resources a tenant's
// containers actually hold — which Escra keeps close to what they actually
// use.
//
// UsageAccountant samples tracked containers once per interval and
// integrates, per tenant:
//   * reserved core-seconds / GiB-seconds (the limit curve), and
//   * used core-seconds / GiB-seconds (the usage curve).
// The gap between the two integrals is exactly the slack the paper's
// cost-efficiency results are about, expressed in billable units.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/container.h"
#include "core/container_index.h"
#include "sim/event_queue.h"

namespace escra::core {

// One tenant's metered totals.
struct UsageBill {
  double cpu_core_seconds_used = 0.0;
  double cpu_core_seconds_reserved = 0.0;
  double mem_gib_seconds_used = 0.0;
  double mem_gib_seconds_reserved = 0.0;
  std::uint64_t samples = 0;

  // Cost under reservation billing (pay for limits, the IaaS model).
  double cost_reserved(double per_core_second, double per_gib_second) const {
    return cpu_core_seconds_reserved * per_core_second +
           mem_gib_seconds_reserved * per_gib_second;
  }
  // Cost under usage billing (pay for consumption, the serverless model).
  double cost_used(double per_core_second, double per_gib_second) const {
    return cpu_core_seconds_used * per_core_second +
           mem_gib_seconds_used * per_gib_second;
  }
  // Fraction of the reservation that was actually used (CPU).
  double cpu_utilization() const {
    return cpu_core_seconds_reserved > 0.0
               ? cpu_core_seconds_used / cpu_core_seconds_reserved
               : 0.0;
  }
  double mem_utilization() const {
    return mem_gib_seconds_reserved > 0.0
               ? mem_gib_seconds_used / mem_gib_seconds_reserved
               : 0.0;
  }
};

class UsageAccountant {
 public:
  explicit UsageAccountant(sim::Simulation& sim,
                           sim::Duration interval = sim::kSecond);
  ~UsageAccountant();

  UsageAccountant(const UsageAccountant&) = delete;
  UsageAccountant& operator=(const UsageAccountant&) = delete;

  // Meters a container under `tenant` from now on. A container that is
  // removed must be untracked first (or use `final_charge` on reap).
  void track(cluster::Container& container, const std::string& tenant);

  // Stops metering; the usage up to the last sample stays on the bill.
  void untrack(cluster::ContainerId id);

  bool tracking(cluster::ContainerId id) const {
    return index_.contains(id);
  }
  std::size_t tracked_count() const { return index_.size(); }

  // The accumulated bill for a tenant (zero-valued if unknown).
  const UsageBill& bill(const std::string& tenant) const;
  std::vector<std::string> tenants() const;

 private:
  // Hot per-sample state (container pointer, CPU-time cursor) is
  // slot-indexed SoA walked densely each interval; the tenant string is
  // cold metadata and lives in a side table keyed by the same slot.
  struct Tracked {
    cluster::Container* container = nullptr;
    sim::Duration prev_consumed = 0;
  };
  void on_sample();

  sim::Simulation& sim_;
  sim::Duration interval_;
  ContainerIndex index_;
  std::vector<Tracked> tracked_;
  std::vector<std::string> tenant_of_;  // cold side table, slot-indexed
  std::unordered_map<std::string, UsageBill> bills_;
  sim::EventHandle loop_;
};

}  // namespace escra::core
