#include "core/controller.h"

#include <algorithm>
#include <utility>

namespace escra::core {

Controller::Controller(sim::Simulation& sim, net::Network& network,
                       const EscraConfig& config, ResourceAllocator& allocator)
    : sim_(sim), net_(network), config_(config), allocator_(allocator) {}

Controller::~Controller() { stop(); }

Agent& Controller::agent_for(cluster::Node& node) {
  const auto it = agents_by_node_.find(node.id());
  if (it != agents_by_node_.end()) return *it->second;
  agents_.push_back(std::make_unique<Agent>(node));
  Agent& agent = *agents_.back();
  agents_by_node_[node.id()] = &agent;
  return agent;
}

void Controller::register_container(cluster::Container& container,
                                    cluster::Node& node, double cores,
                                    memcg::Bytes mem) {
  Agent& agent = agent_for(node);
  // Late joiners (e.g. serverless pods created mid-run) receive the
  // configured defaults, clamped to whatever the pool still holds.
  if (cores <= 0.0) {
    // Whatever the pool still holds, up to the default; a zero grant is
    // legal (the container waits for reclaimed capacity).
    cores = std::min(config_.late_join_cores,
                     std::max(0.0, allocator_.app().cpu_unallocated()));
  }
  if (mem <= 0) {
    mem = std::min(config_.late_join_mem,
                   std::max<memcg::Bytes>(0, allocator_.app().mem_unallocated()));
  }
  allocator_.register_container(container.id(), cores, mem);
  // The pool may have clamped the grant; read back the committed values.
  cores = allocator_.app().member_cores(container.id());
  mem = allocator_.app().member_mem(container.id());
  agent.manage(container);
  registry_[container.id()] = Entry{&container, &agent};

  // Registration message on the container's new kernel socket.
  net_.send(net::Channel::kRegistration, kRegistrationWireBytes, [] {});

  // Deploy-time bootstrap limits go straight into the cgroups.
  container.cpu_cgroup().set_limit_cores(cores);
  container.mem_cgroup().set_limit(mem);

  // Kernel hook 1: per-period CFS telemetry streamed to the Controller.
  container.cpu_cgroup().set_period_hook(
      [this](const cfs::PeriodStats& period) {
        CpuStatsMsg msg;
        msg.cgroup = period.cgroup;
        msg.period_end = period.period_end;
        msg.quota = period.quota;
        msg.unused = period.unused;
        msg.throttled = period.throttled;
        net_.send(net::Channel::kCpuTelemetry, kCpuStatsWireBytes,
                  [this, msg] { on_cpu_stats(msg); });
      });

  // Kernel hook 2: pre-OOM trap in try_charge().
  cluster::Container* cptr = &container;
  container.mem_cgroup().set_oom_hook(
      [this, cptr](memcg::MemCgroup&, memcg::Bytes charge,
                   memcg::Bytes shortfall) {
        return handle_oom(*cptr, charge, shortfall);
      });
}

void Controller::deregister_container(cluster::Container& container) {
  const auto it = registry_.find(container.id());
  if (it == registry_.end()) return;
  it->second.agent->unmanage(container.id());
  container.cpu_cgroup().set_period_hook(nullptr);
  container.mem_cgroup().set_oom_hook(nullptr);
  allocator_.deregister_container(container.id());
  registry_.erase(it);
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  reclaim_loop_ =
      sim_.schedule_every(sim_.now() + config_.reclaim_interval,
                          config_.reclaim_interval,
                          [this] { run_periodic_reclaim(); });
}

void Controller::stop() {
  if (!started_) return;
  started_ = false;
  sim_.cancel(reclaim_loop_);
}

void Controller::on_cpu_stats(const CpuStatsMsg& stats) {
  ++stats_received_;
  const auto decision = allocator_.on_cpu_stats(stats);
  if (decision.has_value()) push_cpu_limit(stats.cgroup, *decision);
}

void Controller::push_cpu_limit(cluster::ContainerId id, double cores) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return;
  Agent* agent = it->second.agent;
  ++limit_updates_;
  net_.rpc(
      kLimitUpdateRpcBytes, kLimitUpdateRespBytes,
      [agent, id, cores] { agent->apply_cpu_limit(id, cores); }, [] {});
}

void Controller::push_mem_limit(cluster::ContainerId id, memcg::Bytes limit) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return;
  Agent* agent = it->second.agent;
  ++limit_updates_;
  net_.rpc(
      kLimitUpdateRpcBytes, kLimitUpdateRespBytes,
      [agent, id, limit] { agent->apply_mem_limit(id, limit); }, [] {});
}

bool Controller::handle_oom(cluster::Container& container, memcg::Bytes charge,
                            memcg::Bytes shortfall) {
  ++oom_events_;
  // The event travels the container's persistent kernel TCP socket; the
  // limit raise returns over RPC. The container is stalled for the round
  // trip by its own rescue path; here we account the bytes and decide.
  net_.send(net::Channel::kMemoryEvent, kOomEventWireBytes, [] {});

  OomEventMsg event;
  event.container = container.id();
  event.attempted_charge = charge;
  event.shortfall = shortfall;

  auto decision = allocator_.on_oom_event(event, /*post_reclaim=*/false);
  if (decision.action == ResourceAllocator::MemAction::kReclaimThenRetry) {
    // Pool dry: aggressive reclamation from containers with slack
    // (Section III "Reactive Memory Reclamation"), then retry once.
    run_emergency_reclaim();
    decision = allocator_.on_oom_event(event, /*post_reclaim=*/true);
  }
  if (decision.action != ResourceAllocator::MemAction::kGrant) return false;

  // Apply synchronously: the charge retries as soon as the hook returns.
  net_.send(net::Channel::kControlRpc, kLimitUpdateRpcBytes, [] {});
  container.mem_cgroup().set_limit(decision.new_limit);
  const bool saved =
      container.mem_cgroup().usage() + charge <= decision.new_limit;
  if (saved) ++oom_rescues_;
  return saved;
}

memcg::Bytes Controller::run_emergency_reclaim() {
  memcg::Bytes psi = 0;
  for (const auto& agent : agents_) {
    net_.send(net::Channel::kControlRpc, kReclaimRpcBytes, [] {});
    const Agent::ReclaimResult result =
        agent->reclaim(config_.delta, config_.min_mem);
    net_.send(net::Channel::kControlRpc, kReclaimRespBytes, [] {});
    for (const Agent::Resize& resize : result.resizes) {
      allocator_.on_reclaimed(resize.container, resize.new_limit);
    }
    psi += result.psi;
  }
  total_reclaimed_ += psi;
  return psi;
}

void Controller::run_periodic_reclaim() {
  // Every 5 seconds (Section IV-C): ask each Agent to shrink the limits of
  // its containers to usage + δ and report back ψ.
  for (const auto& agent_ptr : agents_) {
    Agent* agent = agent_ptr.get();
    auto result = std::make_shared<Agent::ReclaimResult>();
    net_.rpc(
        kReclaimRpcBytes, kReclaimRespBytes,
        [this, agent, result] {
          *result = agent->reclaim(config_.delta, config_.min_mem);
        },
        [this, result] {
          for (const Agent::Resize& resize : result->resizes) {
            allocator_.on_reclaimed(resize.container, resize.new_limit);
          }
          total_reclaimed_ += result->psi;
        });
  }
}

}  // namespace escra::core
