#include "core/controller.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace escra::core {

Controller::Controller(sim::Simulation& sim, net::Network& network,
                       const EscraConfig& config, ResourceAllocator& allocator)
    : sim_(sim), net_(network), config_(config), allocator_(allocator) {}

Controller::~Controller() { stop(); }

Agent& Controller::agent_for(cluster::Node& node) {
  const auto it = agents_by_node_.find(node.id());
  if (it != agents_by_node_.end()) return *it->second;
  agents_.push_back(std::make_unique<Agent>(node));
  Agent& agent = *agents_.back();
  agents_by_node_[node.id()] = &agent;
  if (obs_ != nullptr) agent.set_obs_counter(obs_->h.agent_limit_applies);
  return agent;
}

void Controller::set_observer(obs::Observer* observer) {
  obs_ = observer;
  obs::Counter* applies =
      observer != nullptr ? observer->h.agent_limit_applies : nullptr;
  for (const auto& agent : agents_) agent->set_obs_counter(applies);
  for (auto& [id, entry] : registry_) {
    if (observer != nullptr) {
      entry.container->cpu_cgroup().set_obs_counters(
          observer->h.cfs_periods, observer->h.cfs_throttled_periods);
      entry.container->mem_cgroup().set_obs_counters(
          observer->h.memcg_oom_kills, observer->h.memcg_oom_rescues);
    } else {
      entry.container->cpu_cgroup().set_obs_counters(nullptr, nullptr);
      entry.container->mem_cgroup().set_obs_counters(nullptr, nullptr);
    }
  }
  if (observer != nullptr) {
    observer->h.containers_active->set(static_cast<double>(registry_.size()));
  }
}

std::uint32_t Controller::node_tag(const Entry& entry) const {
  // Trace events store node + 1 so that 0 stays "unknown" (node ids are
  // zero-based).
  return entry.agent != nullptr ? entry.agent->node().id() + 1 : 0;
}

void Controller::register_container(cluster::Container& container,
                                    cluster::Node& node, double cores,
                                    memcg::Bytes mem) {
  Agent& agent = agent_for(node);
  // Late joiners (e.g. serverless pods created mid-run) receive the
  // configured defaults, clamped to whatever the pool still holds.
  if (cores <= 0.0) {
    // Whatever the pool still holds, up to the default; a zero grant is
    // legal (the container waits for reclaimed capacity).
    cores = std::min(config_.late_join_cores,
                     std::max(0.0, allocator_.app().cpu_unallocated()));
  }
  if (mem <= 0) {
    mem = std::min(config_.late_join_mem,
                   std::max<memcg::Bytes>(0, allocator_.app().mem_unallocated()));
  }
  allocator_.register_container(container.id(), cores, mem);
  // The pool may have clamped the grant; read back the committed values.
  cores = allocator_.app().member_cores(container.id());
  mem = allocator_.app().member_mem(container.id());
  agent.manage(container);
  registry_[container.id()] = Entry{&container, &agent};

  // Registration message on the container's new kernel socket.
  net_.send(net::Channel::kRegistration, kRegistrationWireBytes, [] {});

  // Deploy-time bootstrap limits go straight into the cgroups.
  container.cpu_cgroup().set_limit_cores(cores);
  container.mem_cgroup().set_limit(mem);

  if (obs_ != nullptr) {
    container.cpu_cgroup().set_obs_counters(obs_->h.cfs_periods,
                                            obs_->h.cfs_throttled_periods);
    container.mem_cgroup().set_obs_counters(obs_->h.memcg_oom_kills,
                                            obs_->h.memcg_oom_rescues);
    obs_->h.registrations->inc();
    obs_->h.containers_active->set(static_cast<double>(registry_.size()));
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kContainerRegistered;
    ev.container = container.id();
    ev.node = node.id() + 1;
    ev.before = 0.0;
    ev.after = cores;
    ev.detail = static_cast<std::int64_t>(mem);
    obs_->record(ev);
  }

  // Kernel hook 1: per-period CFS telemetry streamed to the Controller.
  container.cpu_cgroup().set_period_hook(
      [this](const cfs::PeriodStats& period) {
        CpuStatsMsg msg;
        msg.cgroup = period.cgroup;
        msg.period_end = period.period_end;
        msg.quota = period.quota;
        msg.unused = period.unused;
        msg.throttled = period.throttled;
        // Fire instant of the control loop: the kernel hook hands the
        // statistic to the wire. A throttled period opens a causal chain.
        const sim::TimePoint fire = sim_.now();
        obs::EventId cause = 0;
        if (obs_ != nullptr && msg.throttled) {
          obs::TraceEvent ev;
          ev.time = fire;
          ev.kind = obs::EventKind::kThrottleObserved;
          ev.container = msg.cgroup;
          const auto it = registry_.find(msg.cgroup);
          ev.node = it != registry_.end() ? node_tag(it->second) : 0;
          const double limit_cores =
              static_cast<double>(msg.quota) /
              static_cast<double>(config_.cfs_period);
          ev.before = limit_cores;
          ev.after = limit_cores;
          ev.detail = static_cast<std::int64_t>(msg.unused);
          cause = obs_->record(ev);
        }
        net_.send(net::Channel::kCpuTelemetry, kCpuStatsWireBytes,
                  [this, msg, cause, fire] {
                    ingest_cpu_stats(msg, cause, fire);
                  });
      });

  // Kernel hook 2: pre-OOM trap in try_charge().
  cluster::Container* cptr = &container;
  container.mem_cgroup().set_oom_hook(
      [this, cptr](memcg::MemCgroup&, memcg::Bytes charge,
                   memcg::Bytes shortfall) {
        return handle_oom(*cptr, charge, shortfall);
      });
}

void Controller::deregister_container(cluster::Container& container) {
  const auto it = registry_.find(container.id());
  if (it == registry_.end()) return;
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kContainerKilled;
    ev.container = container.id();
    ev.node = node_tag(it->second);
    ev.before = allocator_.app().member_cores(container.id());
    ev.after = 0.0;
    ev.detail =
        static_cast<std::int64_t>(allocator_.app().member_mem(container.id()));
    obs_->record(ev);
    obs_->h.deregistrations->inc();
  }
  it->second.agent->unmanage(container.id());
  container.cpu_cgroup().set_period_hook(nullptr);
  container.mem_cgroup().set_oom_hook(nullptr);
  container.cpu_cgroup().set_obs_counters(nullptr, nullptr);
  container.mem_cgroup().set_obs_counters(nullptr, nullptr);
  allocator_.deregister_container(container.id());
  registry_.erase(it);
  if (obs_ != nullptr) {
    obs_->h.containers_active->set(static_cast<double>(registry_.size()));
  }
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  reclaim_loop_ =
      sim_.schedule_every(sim_.now() + config_.reclaim_interval,
                          config_.reclaim_interval,
                          [this] { run_periodic_reclaim(); });
}

void Controller::stop() {
  if (!started_) return;
  started_ = false;
  sim_.cancel(reclaim_loop_);
}

void Controller::on_cpu_stats(const CpuStatsMsg& stats) {
  // Direct entry point (tests, replay): no causal ancestor, and the fire
  // instant is the period boundary the statistic describes.
  ingest_cpu_stats(stats, /*cause=*/0, /*fire_time=*/stats.period_end);
}

void Controller::ingest_cpu_stats(const CpuStatsMsg& stats, obs::EventId cause,
                                  sim::TimePoint fire_time) {
  ++stats_received_;
  const sim::TimePoint ingest = sim_.now();
  if (obs_ != nullptr) obs_->h.stats_ingested->inc();

  const bool known = allocator_.knows(stats.cgroup);
  const double before =
      known ? allocator_.app().member_cores(stats.cgroup) : 0.0;
  const auto decision = allocator_.on_cpu_stats(stats);
  if (!decision.has_value()) return;

  LoopCtx ctx;
  ctx.fire = fire_time;
  ctx.ingest = ingest;
  ctx.decide = sim_.now();  // synchronous allocator: decide == ingest
  ctx.profile = true;
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = ctx.decide;
    ev.kind = *decision > before ? obs::EventKind::kCpuGrant
                                 : obs::EventKind::kCpuShrink;
    ev.container = stats.cgroup;
    const auto it = registry_.find(stats.cgroup);
    ev.node = it != registry_.end() ? node_tag(it->second) : 0;
    ev.before = before;
    ev.after = *decision;
    ev.cause = cause;
    ctx.cause = obs_->record(ev);
  }
  push_cpu_limit(stats.cgroup, *decision, ctx);
}

void Controller::push_cpu_limit(cluster::ContainerId id, double cores,
                                LoopCtx ctx) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return;
  Agent* agent = it->second.agent;
  ++limit_updates_;
  obs::EventId rpc_id = 0;
  if (obs_ != nullptr) {
    obs_->h.rpcs_issued->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRpcIssued;
    ev.container = id;
    ev.node = node_tag(it->second);
    ev.after = cores;
    ev.cause = ctx.cause;
    ev.detail = static_cast<std::int64_t>(kLimitUpdateRpcBytes);
    rpc_id = obs_->record(ev);
  }
  const std::uint32_t node = node_tag(it->second);
  net_.rpc(
      kLimitUpdateRpcBytes, kLimitUpdateRespBytes,
      [this, agent, id, cores, ctx, rpc_id, node] {
        agent->apply_cpu_limit(id, cores);
        if (obs_ == nullptr) return;
        const sim::TimePoint apply = sim_.now();
        obs_->h.rpcs_applied->inc();
        obs::TraceEvent ev;
        ev.time = apply;
        ev.kind = obs::EventKind::kRpcApplied;
        ev.container = id;
        ev.node = node;
        ev.after = cores;
        ev.cause = rpc_id;
        obs_->record(ev);
        if (ctx.profile) {
          obs_->profiler().record_loop(ctx.fire, ctx.ingest, ctx.decide, apply);
        }
      },
      [] {});
}

void Controller::push_mem_limit(cluster::ContainerId id, memcg::Bytes limit,
                                LoopCtx ctx) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return;
  Agent* agent = it->second.agent;
  ++limit_updates_;
  obs::EventId rpc_id = 0;
  if (obs_ != nullptr) {
    obs_->h.rpcs_issued->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRpcIssued;
    ev.container = id;
    ev.node = node_tag(it->second);
    ev.after = static_cast<double>(limit);
    ev.cause = ctx.cause;
    ev.detail = static_cast<std::int64_t>(kLimitUpdateRpcBytes);
    rpc_id = obs_->record(ev);
  }
  const std::uint32_t node = node_tag(it->second);
  net_.rpc(
      kLimitUpdateRpcBytes, kLimitUpdateRespBytes,
      [this, agent, id, limit, ctx, rpc_id, node] {
        agent->apply_mem_limit(id, limit);
        if (obs_ == nullptr) return;
        const sim::TimePoint apply = sim_.now();
        obs_->h.rpcs_applied->inc();
        obs::TraceEvent ev;
        ev.time = apply;
        ev.kind = obs::EventKind::kRpcApplied;
        ev.container = id;
        ev.node = node;
        ev.after = static_cast<double>(limit);
        ev.cause = rpc_id;
        obs_->record(ev);
        if (ctx.profile) {
          obs_->profiler().record_loop(ctx.fire, ctx.ingest, ctx.decide, apply);
        }
      },
      [] {});
}

bool Controller::handle_oom(cluster::Container& container, memcg::Bytes charge,
                            memcg::Bytes shortfall) {
  ++oom_events_;
  if (obs_ != nullptr) obs_->h.oom_events->inc();
  // The event travels the container's persistent kernel TCP socket; the
  // limit raise returns over RPC. The container is stalled for the round
  // trip by its own rescue path; here we account the bytes and decide.
  net_.send(net::Channel::kMemoryEvent, kOomEventWireBytes, [] {});

  OomEventMsg event;
  event.container = container.id();
  event.attempted_charge = charge;
  event.shortfall = shortfall;

  const memcg::Bytes old_limit = container.mem_cgroup().limit();
  auto decision = allocator_.on_oom_event(event, /*post_reclaim=*/false);
  if (decision.action == ResourceAllocator::MemAction::kReclaimThenRetry) {
    // Pool dry: aggressive reclamation from containers with slack
    // (Section III "Reactive Memory Reclamation"), then retry once.
    run_emergency_reclaim();
    // The sweep may have shrunk this container's own limit, so the original
    // shortfall is stale; a grant sized from it leaves the retried charge
    // over the new limit and OOM-kills a container the pool could cover.
    event.shortfall =
        container.mem_cgroup().usage() + charge - container.mem_cgroup().limit();
    decision = allocator_.on_oom_event(event, /*post_reclaim=*/true);
  }
  if (decision.action != ResourceAllocator::MemAction::kGrant) return false;

  // Apply synchronously: the charge retries as soon as the hook returns.
  net_.send(net::Channel::kControlRpc, kLimitUpdateRpcBytes, [] {});
  container.mem_cgroup().set_limit(decision.new_limit);
  const bool saved =
      container.mem_cgroup().usage() + charge <= decision.new_limit;
  if (saved) ++oom_rescues_;
  if (obs_ != nullptr) {
    if (saved) obs_->h.oom_rescues->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kMemGrantOnOom;
    ev.container = container.id();
    const auto it = registry_.find(container.id());
    ev.node = it != registry_.end() ? node_tag(it->second) : 0;
    ev.before = static_cast<double>(old_limit);
    ev.after = static_cast<double>(decision.new_limit);
    ev.detail = static_cast<std::int64_t>(shortfall);
    obs_->record(ev);
  }
  return saved;
}

void Controller::record_reclaims(Agent& agent,
                                 const std::vector<Agent::Resize>& resizes) {
  if (obs_ == nullptr) return;
  const std::uint32_t node = agent.node().id() + 1;
  memcg::Bytes freed = 0;
  for (const Agent::Resize& resize : resizes) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kReclaim;
    ev.container = resize.container;
    ev.node = node;
    ev.before = static_cast<double>(resize.old_limit);
    ev.after = static_cast<double>(resize.new_limit);
    ev.detail = static_cast<std::int64_t>(resize.old_limit - resize.new_limit);
    obs_->record(ev);
    freed += resize.old_limit - resize.new_limit;
  }
  obs_->h.reclaim_bytes->inc(static_cast<std::uint64_t>(freed));
}

memcg::Bytes Controller::run_emergency_reclaim() {
  memcg::Bytes psi = 0;
  if (obs_ != nullptr) obs_->h.reclaim_sweeps->inc();
  for (const auto& agent : agents_) {
    net_.send(net::Channel::kControlRpc, kReclaimRpcBytes, [] {});
    const Agent::ReclaimResult result =
        agent->reclaim(config_.delta, config_.min_mem);
    net_.send(net::Channel::kControlRpc, kReclaimRespBytes, [] {});
    for (const Agent::Resize& resize : result.resizes) {
      allocator_.on_reclaimed(resize.container, resize.new_limit);
    }
    record_reclaims(*agent, result.resizes);
    psi += result.psi;
  }
  total_reclaimed_ += psi;
  return psi;
}

void Controller::run_periodic_reclaim() {
  // Every 5 seconds (Section IV-C): ask each Agent to shrink the limits of
  // its containers to usage + δ and report back ψ.
  if (obs_ != nullptr && !agents_.empty()) obs_->h.reclaim_sweeps->inc();
  for (const auto& agent_ptr : agents_) {
    Agent* agent = agent_ptr.get();
    auto result = std::make_shared<Agent::ReclaimResult>();
    net_.rpc(
        kReclaimRpcBytes, kReclaimRespBytes,
        [this, agent, result] {
          *result = agent->reclaim(config_.delta, config_.min_mem);
        },
        [this, agent, result] {
          for (const Agent::Resize& resize : result->resizes) {
            allocator_.on_reclaimed(resize.container, resize.new_limit);
          }
          record_reclaims(*agent, result->resizes);
          total_reclaimed_ += result->psi;
        });
  }
}

}  // namespace escra::core
