#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

namespace escra::core {

namespace {
// Minimum bandwidth-rate change worth an RPC, in bytes/s (8 KB/s). Matches
// the allocator's decision epsilon so a clamp that erases the whole change
// also suppresses the slot.
constexpr double kBwRateEpsilon = 8e3;
// Minimum CPU-limit change worth an RPC, in cores (the allocator's epsilon).
constexpr double kCpuLimitEpsilon = 1e-3;
// Tolerance for the RT floor-raising paths. kCpuLimitEpsilon exists to damp
// RPC churn on best-effort limits, but an admitted reservation's floor is a
// core-for-core promise: leaving the book even a milli-core short of it is a
// real deadline-miss cause the checker (cpu_eps = 1e-6) rightly flags. Only
// floating-point dust is tolerated when raising to or shedding toward a floor.
constexpr double kRtFloorSlack = 1e-9;
}  // namespace

Controller::Controller(sim::Simulation& sim, net::Network& network,
                       const EscraConfig& config, ResourceAllocator& allocator)
    : sim_(sim), net_(network), config_(config), allocator_(allocator) {}

Controller::~Controller() {
  stop();
  for (std::size_t i = 0; i < pending_open_.size(); ++i) {
    if (pending_open_[i] != 0) sim_.cancel(pending_[i].timer);
  }
  for (auto& [node, b] : batches_) {
    if (b.scheduled) sim_.cancel(b.flush);
  }
  for (auto& [node, h] : health_) sim_.cancel(h.reclaim_timer);
}

Agent& Controller::agent_for(cluster::Node& node) {
  const auto it = agents_by_node_.find(node.id());
  if (it != agents_by_node_.end()) return *it->second;
  agents_.push_back(std::make_unique<Agent>(node));
  Agent& agent = *agents_.back();
  agents_by_node_[node.id()] = &agent;
  agent.connect(sim_, net_,
                [this](cluster::NodeId n, std::uint64_t incarnation) {
                  on_heartbeat(n, incarnation);
                });
  agent.set_observer(obs_);
  agent.set_bw_shaper(bw_shaper_);
  if (started_) {
    agent.start(config_.heartbeat_interval, config_.agent_lease);
  }
  return agent;
}

Agent* Controller::agent_at(cluster::NodeId node) {
  const auto it = agents_by_node_.find(node);
  return it != agents_by_node_.end() ? it->second : nullptr;
}

bool Controller::node_dead(cluster::NodeId node) const {
  const auto it = health_.find(node);
  return it != health_.end() && it->second.dead;
}

bool Controller::reachable(cluster::NodeId node) const {
  return net_.link_up(ep(node), net::kControllerEndpoint) &&
         net_.link_up(net::kControllerEndpoint, ep(node));
}

void Controller::set_observer(obs::Observer* observer) {
  obs_ = observer;
  for (const auto& agent : agents_) agent->set_observer(observer);
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId) {
    Entry& entry = registry_[slot];
    if (observer != nullptr) {
      entry.container->cpu_cgroup().set_obs_counters(
          observer->h.cfs_periods, observer->h.cfs_throttled_periods);
      entry.container->mem_cgroup().set_obs_counters(
          observer->h.memcg_oom_kills, observer->h.memcg_oom_rescues);
    } else {
      entry.container->cpu_cgroup().set_obs_counters(nullptr, nullptr);
      entry.container->mem_cgroup().set_obs_counters(nullptr, nullptr);
    }
  });
  if (observer != nullptr) {
    observer->h.containers_active->set(static_cast<double>(index_.size()));
  }
}

std::uint32_t Controller::node_tag(const Entry& entry) const {
  // Trace events store node + 1 so that 0 stays "unknown" (node ids are
  // zero-based).
  return entry.agent != nullptr ? entry.agent->node().id() + 1 : 0;
}

void Controller::register_container(cluster::Container& container,
                                    cluster::Node& node, double cores,
                                    memcg::Bytes mem) {
  register_impl(container, node, cores, mem, RegisterMode::kBootstrap);
}

void Controller::register_impl(cluster::Container& container,
                               cluster::Node& node, double cores,
                               memcg::Bytes mem, RegisterMode mode,
                               double bw_want, const cfs::RtSpec* rt,
                               double rt_bw) {
  if (crashed_) {
    // Vacant seat: queue the admission (see deferred_registrations_). The
    // container runs against its creation-time cgroup limits meanwhile —
    // unmanaged, exactly like any pod the control plane has not answered
    // yet.
    deferred_registrations_.push_back(
        DeferredRegistration{&container, &node, cores, mem});
    return;
  }
  Agent& agent = agent_for(node);
  // Late joiners (e.g. serverless pods created mid-run) receive the
  // configured defaults, clamped to whatever the pool still holds.
  if (cores <= 0.0 && mode == RegisterMode::kBootstrap) {
    // Whatever the pool still holds, up to the default; a zero grant is
    // legal (the container waits for reclaimed capacity).
    cores = std::min(config_.late_join_cores,
                     std::max(0.0, allocator_.app().cpu_unallocated()));
  }
  if (mem <= 0 && mode == RegisterMode::kBootstrap) {
    mem = std::min(config_.late_join_mem,
                   std::max<memcg::Bytes>(0, allocator_.app().mem_unallocated()));
  }
  if (mode != RegisterMode::kBootstrap) {
    // Recovery registrations re-commit values granted by an earlier seat
    // (an Agent's fail-static snapshot, or a takeover replica). The pool
    // those grants came from may have been slimmer than what this seat has
    // already committed — a stale WAL prefix rebuilds the book at an older,
    // fatter state, and a later re-adoption of a container that prefix
    // never saw would push past the global limit. Clamp to what is still
    // uncommitted: the cgroup keeps the node's fail-static truth, and the
    // shadow works back up through the normal grant path (handle_oom
    // widens OOM shortfalls by exactly this shadow/applied divergence).
    cores = std::min(cores, std::max(0.0, allocator_.app().cpu_unallocated()));
    mem = std::min(
        mem, std::max<memcg::Bytes>(0, allocator_.app().mem_unallocated()));
  }
  allocator_.register_container(container.id(), cores, mem);
  // The pool may have clamped the grant; read back the committed values.
  cores = allocator_.app().member_cores(container.id());
  mem = allocator_.app().member_mem(container.id());
  agent.manage(container);
  {
    const std::uint32_t slot = index_.intern(container.id());
    if (slot >= registry_.size()) {
      registry_.resize(index_.capacity());
      pending_.resize(static_cast<std::size_t>(index_.capacity()) * 3);
      pending_open_.resize(static_cast<std::size_t>(index_.capacity()) * 3, 0);
    }
    registry_[slot] = Entry{&container, &agent};
  }
  if (bw_shaper_ != nullptr) {
    // Bandwidth admission rides registration: bootstrap grants the plan (or
    // the late-join default); recovery modes re-admit the snapshot/replica
    // rate passed in by the caller, clamped against this seat's book.
    if (mode == RegisterMode::kBootstrap) {
      bw_want = bw_plan_ > 0.0 ? bw_plan_ : config_.late_join_bw;
    }
    admit_bw(container, node, bw_want, mode);
  }
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kRegister;
    rev.container = container.id();
    rev.node = node.id();
    rev.cores = cores;
    rev.mem = mem;
    rev.bw_bps = allocator_.app().member_bw(container.id());
    emit_repl(rev);
  }

  if (mode == RegisterMode::kBootstrap) {
    // Registration message on the container's new kernel socket.
    net_.send_to(net::Channel::kRegistration, ep(node.id()),
                 net::kControllerEndpoint, kRegistrationWireBytes, [] {});
    // Deploy-time bootstrap limits go straight into the cgroups — except
    // that the memory limit never drops below live usage: a pod that ran
    // before the control plane answered (admitted during an outage, drained
    // after recovery) would be OOM-killed by its own admission. The applied
    // limit stays at usage and the reclamation loop walks it toward the
    // shadow as usage allows, same as the resync path.
    container.cpu_cgroup().set_limit_cores(cores);
    container.mem_cgroup().set_limit(
        std::max(mem, container.mem_cgroup().usage()));
  }
  // Resync mode: the cgroups hold the node's fail-static truth; the shadow
  // registration reflects it and any correction travels as a normal
  // (reliable) limit update issued by the resync path.

  if (obs_ != nullptr) {
    container.cpu_cgroup().set_obs_counters(obs_->h.cfs_periods,
                                            obs_->h.cfs_throttled_periods);
    container.mem_cgroup().set_obs_counters(obs_->h.memcg_oom_kills,
                                            obs_->h.memcg_oom_rescues);
    obs_->h.registrations->inc();
    obs_->h.containers_active->set(static_cast<double>(index_.size()));
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kContainerRegistered;
    ev.container = container.id();
    ev.node = node.id() + 1;
    ev.before = 0.0;
    ev.after = cores;
    ev.detail = static_cast<std::int64_t>(mem);
    obs_->record(ev);
  }

  if (config_.credit_defense) open_credit_account(container.id());

  // Kernel hook 1: per-period CFS telemetry streamed to the Controller.
  const cluster::NodeId node_id = node.id();
  container.cpu_cgroup().set_period_hook(
      [this, node_id](const cfs::PeriodStats& period) {
        CpuStatsMsg msg;
        msg.cgroup = period.cgroup;
        msg.period_end = period.period_end;
        msg.quota = period.quota;
        msg.unused = period.unused;
        msg.throttled = period.throttled;
        // Fire instant of the control loop: the kernel hook hands the
        // statistic to the wire. A throttled period opens a causal chain.
        const sim::TimePoint fire = sim_.now();
        obs::EventId cause = 0;
        if (obs_ != nullptr && msg.throttled) {
          obs::TraceEvent ev;
          ev.time = fire;
          ev.kind = obs::EventKind::kThrottleObserved;
          ev.container = msg.cgroup;
          const Entry* entry = find_entry(msg.cgroup);
          ev.node = entry != nullptr ? node_tag(*entry) : 0;
          const double limit_cores =
              static_cast<double>(msg.quota) /
              static_cast<double>(config_.cfs_period);
          ev.before = limit_cores;
          ev.after = limit_cores;
          ev.detail = static_cast<std::int64_t>(msg.unused);
          cause = obs_->record(ev);
        }
        net_.send_to(net::Channel::kCpuTelemetry, ep(node_id),
                     net::kControllerEndpoint, kCpuStatsWireBytes,
                     [this, msg, cause, fire] {
                       ingest_cpu_stats(msg, cause, fire);
                     });
      });

  // Kernel hook 2: pre-OOM trap in try_charge().
  cluster::Container* cptr = &container;
  container.mem_cgroup().set_oom_hook(
      [this, cptr](memcg::MemCgroup&, memcg::Bytes charge,
                   memcg::Bytes shortfall) {
        return handle_oom(*cptr, charge, shortfall);
      });

  // RT reservation recovery. Takeover re-installs the replicated image
  // (exactly-once: install_rt re-emits the kRt record so the new leader's
  // stream rebuilds the standbys). Resync re-derives the reservation from
  // the node-side container — the periodic-job model and its burst survive
  // a controller crash (fail static), so the node is the authoritative
  // record a restarted seat can actually reach. Neither path re-runs the
  // admission test: the reservation was admitted once, by a live leader.
  if (mode == RegisterMode::kTakeover && rt != nullptr && rt->valid()) {
    install_rt(container.id(), *rt, rt_bw, /*fresh=*/false);
  } else if (mode == RegisterMode::kResync && container.rt().valid()) {
    // The bandwidth arm of the reservation is controller soft state with no
    // node-side mirror; a plain restart conservatively re-admits CPU only.
    install_rt(container.id(), container.rt(), 0.0, /*fresh=*/false);
  }
}

void Controller::deregister_container(cluster::Container& container) {
  std::erase_if(deferred_registrations_,
                [&container](const DeferredRegistration& d) {
                  return d.container == &container;
                });
  Entry* entry = find_entry(container.id());
  if (entry == nullptr) return;
  // An admitted reservation is never dropped silently: the explicit
  // eviction decision (reason 0: released with its container) precedes the
  // kill event so the trace always explains why the floor vanished.
  if (rt_.count(container.id()) != 0) evict_rt(container.id(), 0);
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kContainerKilled;
    ev.container = container.id();
    ev.node = node_tag(*entry);
    ev.before = allocator_.app().member_cores(container.id());
    ev.after = 0.0;
    ev.detail =
        static_cast<std::int64_t>(allocator_.app().member_mem(container.id()));
    obs_->record(ev);
    obs_->h.deregistrations->inc();
  }
  cancel_pending_for(container.id());
  close_credit_account(container.id());
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kDeregister;
    rev.container = container.id();
    emit_repl(rev);
  }
  entry->agent->unmanage(container.id());
  // The container is gone: tear down its shaper lane (queued messages
  // release unshaped). Quarantine reclaim does NOT do this — a dead node's
  // shaper is unreachable and keeps its fail-static rates.
  if (bw_shaper_ != nullptr) bw_shaper_->detach(container.id());
  container.cpu_cgroup().set_period_hook(nullptr);
  container.mem_cgroup().set_oom_hook(nullptr);
  container.cpu_cgroup().set_obs_counters(nullptr, nullptr);
  container.mem_cgroup().set_obs_counters(nullptr, nullptr);
  allocator_.deregister_container(container.id());
  index_.release(container.id());
  if (obs_ != nullptr) {
    obs_->h.containers_active->set(static_cast<double>(index_.size()));
  }
}

void Controller::deregister_quarantined(cluster::ContainerId id) {
  // Fail-static reclaim of a dead node's share: the container's pool
  // commitment is released, but the node is unreachable — its kernel hooks
  // and cgroup limits stay exactly as they are (the Agent still "manages"
  // it locally). If the node returns, resync re-adopts the container.
  const Entry* entry = find_entry(id);
  if (entry == nullptr) return;
  // Quarantine revokes the node's RT admissions explicitly (reason 1): the
  // reservation cannot be honored on a dead node, and a silent drop is
  // exactly what the kRtEvicted contract forbids.
  if (rt_.count(id) != 0) evict_rt(id, 1);
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kContainerKilled;
    ev.container = id;
    ev.node = node_tag(*entry);
    ev.before = allocator_.app().member_cores(id);
    ev.after = 0.0;
    ev.detail = static_cast<std::int64_t>(allocator_.app().member_mem(id));
    obs_->record(ev);
    obs_->h.deregistrations->inc();
  }
  cancel_pending_for(id);
  close_credit_account(id);
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kDeregister;
    rev.container = id;
    emit_repl(rev);
  }
  allocator_.deregister_container(id);
  index_.release(id);
  if (obs_ != nullptr) {
    obs_->h.containers_active->set(static_cast<double>(index_.size()));
  }
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  reclaim_loop_ =
      sim_.schedule_every(sim_.now() + config_.reclaim_interval,
                          config_.reclaim_interval,
                          [this] { run_periodic_reclaim(); });
  liveness_loop_ =
      sim_.schedule_every(sim_.now() + config_.heartbeat_interval,
                          config_.heartbeat_interval,
                          [this] { run_liveness_check(); });
  if (config_.credit_defense) {
    settle_loop_ =
        sim_.schedule_every(sim_.now() + config_.cfs_period,
                            config_.cfs_period, [this] { settle_credits(); });
  }
  for (const auto& agent : agents_) {
    agent->start(config_.heartbeat_interval, config_.agent_lease);
  }
}

void Controller::stop() {
  if (!started_) return;
  started_ = false;
  sim_.cancel(reclaim_loop_);
  sim_.cancel(liveness_loop_);
  sim_.cancel(settle_loop_);
  for (const auto& agent : agents_) agent->stop();
}

void Controller::crash() {
  if (crashed_) return;
  crashed_ = true;
  // Controller-side loops die with the process. The Agents are separate
  // processes: their heartbeat loops keep running (and go unanswered, which
  // is how they notice and fall back to fail-static).
  if (started_) {
    started_ = false;
    sim_.cancel(reclaim_loop_);
    sim_.cancel(liveness_loop_);
    sim_.cancel(settle_loop_);
  }
  for (std::size_t i = 0; i < pending_open_.size(); ++i) {
    if (pending_open_[i] != 0) {
      sim_.cancel(pending_[i].timer);
      pending_open_[i] = 0;
    }
  }
  open_pending_ = 0;
  for (auto& [node, b] : batches_) {
    if (b.scheduled) sim_.cancel(b.flush);
  }
  batches_.clear();
  for (auto& [node, h] : health_) sim_.cancel(h.reclaim_timer);
  health_.clear();
  // Soft state is gone: registry and pool accounting are rebuilt from the
  // Agents' snapshots on restart. Kernel hooks and cgroup limits live on
  // the nodes and persist — the cluster fails static.
  index_.clear();
  allocator_.reset();
  // The ledger dies with the process (soft state): balances AND the
  // mint/burn totals reset together, so conservation holds from zero when
  // the seat returns. Under HA the standby's replica preserves the image.
  credits_.clear();
  // The admitted RT set is soft state too — but the reservations are not
  // lost: the node-side periodic-job models keep running fail-static, and
  // resync/takeover re-derive the admitted set (the floors re-arm before
  // any allocator decision can fire, so no reservation is ever shrunk by a
  // seat that forgot it).
  rt_.clear();
  rt_reserved_cores_ = 0.0;
  if (obs_ != nullptr) {
    obs_->h.containers_active->set(0.0);
    obs_->h.rt_reserved_cores->set(0.0);
  }
}

void Controller::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++incarnation_;
  update_seq_ = 0;
  start();  // agents still running their loops: Agent::start is a no-op
  // Rebuild the registry and pool accounting by pulling every Agent's
  // managed-container inventory.
  for (const auto& agent : agents_) {
    resync_node(agent->node().id(), *agent);
  }
  // Admissions queued during the outage. Snapshot responses are still in
  // flight, so the book may under-count — a resync landing later re-adopts
  // at a clamped shadow and pushes the corrective shrink, which the
  // conservation checker covers as in-flight divergence.
  drain_deferred_registrations();
}

void Controller::enable_bandwidth(bw::ClusterShaper& shaper) {
  bw_shaper_ = &shaper;
  for (const auto& agent : agents_) agent->set_bw_shaper(bw_shaper_);
  // The sampler is the bandwidth analogue of the CFS period hook: one
  // BwSample per shaped container per period, shipped to the Controller on
  // its own telemetry channel (lost when the path is down, like CPU stats).
  shaper.start_sampler(
      config_.cfs_period, [this](const bw::BwSample& sample) {
        net_.send_to(net::Channel::kBwTelemetry, ep(sample.node),
                     net::kControllerEndpoint, kBwStatsWireBytes,
                     [this, sample] { ingest_bw_stats(sample); });
      });
}

void Controller::on_bw_stats(const bw::BwSample& sample) {
  ingest_bw_stats(sample);
}

double Controller::node_bw_headroom(cluster::NodeId node,
                                    cluster::ContainerId except) const {
  if (bw_shaper_ == nullptr) return 0.0;
  const double nic = bw_shaper_->node_nic_bps(node);
  double used = 0.0;
  for (const auto& [id, n] : bw_shaper_->attachments()) {
    if (n != node || id == except) continue;
    // The larger of the applied shaper rate and the book's shadow rate: an
    // in-flight grant is already committed in the book, an unlanded shrink
    // is still applied at the node — counting the max keeps the sum of
    // applied rates under the NIC in both directions of divergence. A
    // fail-static attachment can outlive the book across a controller
    // crash (members are rebuilt from resync; shaper state persists on the
    // node), so the shadow rate only counts for current members.
    const double book = allocator_.app().is_member(id)
                            ? allocator_.app().member_bw(id)
                            : 0.0;
    used += std::max(bw_shaper_->container_rate(id), book);
  }
  return std::max(0.0, nic - used);
}

void Controller::admit_bw(cluster::Container& container, cluster::Node& node,
                          double want, RegisterMode mode) {
  if (bw_shaper_ == nullptr) return;
  if (bw_shaper_->node_shaper(node.id()) == nullptr) return;  // no shaper here
  const cluster::ContainerId id = container.id();
  const bool attached = bw_shaper_->node_of(id) != bw::ClusterShaper::kNoNode;
  if (want <= 0.0) {
    // Recovery with no recorded rate (a replica that never saw a bandwidth
    // slot): adopt the node's fail-static shaper rate if the container is
    // still attached there; otherwise it stays unshaped.
    if (!attached) return;
    want = bw_shaper_->container_rate(id);
    if (want <= 0.0) return;
  }
  const double grant =
      std::min({want, std::max(0.0, allocator_.app().bw_unallocated()),
                node_bw_headroom(node.id(), id)});
  if (grant < config_.bw_min_rate) {
    // Below the admission floor: an allocation that small would starve the
    // container behind its own shaper — better unshaped (NIC-contended)
    // until the pool can cover the floor.
    return;
  }
  const double committed = allocator_.app().set_member_bw(id, grant);
  if (committed <= 0.0) return;
  const double applied = attached ? bw_shaper_->container_rate(id) : 0.0;
  if (mode == RegisterMode::kBootstrap) {
    // Deploy-time bootstrap rates go straight into the shaper, like the
    // registration-time cgroup writes.
    if (!attached) bw_shaper_->attach(id, node.id());
    bw_shaper_->set_container_rate(id, committed);
  } else if (std::abs(applied - committed) > kBwRateEpsilon) {
    // Recovery: the shaper keeps the node's fail-static truth; the
    // correction travels as a normal sequenced update.
    LoopCtx ctx;
    push_bw_limit(id, committed, ctx);
  }
}

void Controller::ingest_bw_stats(const bw::BwSample& sample) {
  if (crashed_) return;
  if (obs_ != nullptr) obs_->h.bw_stats_ingested->inc();

  Entry* rit = find_entry(sample.container);
  if (rit == nullptr) return;
  // Dead-node quarantine, same as the CPU path: no decisions for a node
  // that cannot apply them.
  if (rit->agent != nullptr && node_dead(rit->agent->node().id())) {
    return;
  }
  if (!allocator_.knows(sample.container)) return;

  // Physically-impossible bandwidth telemetry: a flow cannot move more
  // bytes/s than its node's NIC, and rates are non-negative.
  if (rit->agent != nullptr) {
    const double nic = rit->agent->node().config().nic_bps;
    if (sample.used_bps < 0.0 || (nic > 0.0 && sample.used_bps > nic)) {
      if (obs_ != nullptr) {
        obs_->h.telemetry_rejected->inc();
        obs::TraceEvent ev;
        ev.time = sim_.now();
        ev.kind = obs::EventKind::kTelemetryRejected;
        ev.container = sample.container;
        ev.node = node_tag(*rit);
        ev.before = 2.0;  // resource flag: 2 = bandwidth
        ev.after = nic;
        ev.detail = static_cast<std::int64_t>(sample.used_bps);
        obs_->record(ev);
      }
      return;
    }
  }

  obs::EventId cause = 0;
  if (sample.throttled) {
    if (obs_ != nullptr) {
      obs_->h.bw_saturation->inc();
      obs::TraceEvent ev;
      ev.time = sim_.now();
      ev.kind = obs::EventKind::kBwSaturation;
      ev.container = sample.container;
      ev.node = node_tag(*rit);
      ev.before = sample.rate_bps;
      ev.after = sample.rate_bps;
      ev.detail = static_cast<std::int64_t>(sample.queue_depth);
      cause = obs_->record(ev);
    }
  }

  const double before = allocator_.app().member_bw(sample.container);
  const auto decision = allocator_.on_bw_stats(sample);
  if (!decision.has_value()) return;

  // NIC conservation: a grant may not push the node's summed applied rates
  // past its NIC, counting every peer at the larger of its applied and book
  // rate (in-flight slots in either direction stay accounted). Shrinks only
  // free capacity and are never clamped. The allocator already moved the
  // book to *decision; a clamp writes the book back down.
  double target = *decision;
  if (target > before && rit->agent != nullptr) {
    const cluster::NodeId node = rit->agent->node().id();
    const double headroom = node_bw_headroom(node, sample.container);
    const double clamped = std::max(before, std::min(target, headroom));
    if (clamped < target) {
      target = allocator_.app().set_member_bw(sample.container, clamped);
    }
  }

  // The decision trace event always lands (1:1 with the allocator's
  // grant/shrink counters), even when the NIC clamp reduced it to a no-op;
  // the slot is only opened for a change worth an RPC.
  LoopCtx ctx;
  ctx.fire = sim_.now();
  ctx.ingest = sim_.now();
  ctx.decide = sim_.now();
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = *decision > before ? obs::EventKind::kBwGrant
                                 : obs::EventKind::kBwShrink;
    ev.container = sample.container;
    ev.node = node_tag(*rit);
    ev.before = before;
    ev.after = target;
    ev.cause = cause;
    ctx.cause = obs_->record(ev);
  }
  if (std::abs(target - before) > kBwRateEpsilon) {
    push_bw_limit(sample.container, target, ctx);
  }
}

void Controller::on_cpu_stats(const CpuStatsMsg& stats) {
  // Direct entry point (tests, replay): no causal ancestor, and the fire
  // instant is the period boundary the statistic describes.
  ingest_cpu_stats(stats, /*cause=*/0, /*fire_time=*/stats.period_end);
}

void Controller::ingest_cpu_stats(const CpuStatsMsg& stats, obs::EventId cause,
                                  sim::TimePoint fire_time) {
  if (crashed_) return;  // nobody home
  ++stats_received_;
  const sim::TimePoint ingest = sim_.now();
  if (obs_ != nullptr) obs_->h.stats_ingested->inc();

  // Dead-node quarantine: decisions for a dead node's containers are
  // suppressed — an update could not be applied there, and the share is
  // frozen until reclaimed (or the node returns and resyncs).
  const Entry* rit = find_entry(stats.cgroup);
  if (rit != nullptr && rit->agent != nullptr &&
      node_dead(rit->agent->node().id())) {
    return;
  }

  // Harden ingestion against lying telemetry: a reading no real cgroup
  // could produce is dropped before it reaches the allocator.
  if (!telemetry_plausible(stats, rit)) return;

  const bool known = allocator_.knows(stats.cgroup);
  const double before =
      known ? allocator_.app().member_cores(stats.cgroup) : 0.0;
  const auto decision = allocator_.on_cpu_stats(stats);
  if (!decision.has_value()) return;

  LoopCtx ctx;
  ctx.fire = fire_time;
  ctx.ingest = ingest;
  ctx.decide = sim_.now();  // synchronous allocator: decide == ingest
  ctx.profile = true;
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = ctx.decide;
    ev.kind = *decision > before ? obs::EventKind::kCpuGrant
                                 : obs::EventKind::kCpuShrink;
    ev.container = stats.cgroup;
    ev.node = rit != nullptr ? node_tag(*rit) : 0;
    ev.before = before;
    ev.after = *decision;
    ev.cause = cause;
    ctx.cause = obs_->record(ev);
  }
  push_cpu_limit(stats.cgroup, *decision, ctx);
}

void Controller::apply_cpu_decision(cluster::ContainerId id, double before,
                                    double cores, sim::TimePoint fire_time) {
  if (crashed_) return;
  LoopCtx ctx;
  ctx.fire = fire_time;
  ctx.ingest = sim_.now();
  ctx.decide = sim_.now();
  ctx.profile = true;
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.time = ctx.decide;
    ev.kind = cores > before ? obs::EventKind::kCpuGrant
                             : obs::EventKind::kCpuShrink;
    ev.container = id;
    const Entry* entry = find_entry(id);
    ev.node = entry != nullptr ? node_tag(*entry) : 0;
    ev.before = before;
    ev.after = cores;
    ctx.cause = obs_->record(ev);
  }
  push_cpu_limit(id, cores, ctx);
}

void Controller::push_cpu_limit(cluster::ContainerId id, double cores,
                                LoopCtx ctx) {
  if (crashed_) return;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return;
  Entry& entry = registry_[slot];
  ++limit_updates_;
  const std::uint64_t key = update_key(id, Resource::kCpu);
  const std::size_t idx = static_cast<std::size_t>(slot) * 3;
  Pending& p = pending_[idx];
  if (pending_open_[idx] == 0) {
    p = Pending{};  // closed row may hold a prior tenant's stale fields
    pending_open_[idx] = 1;
    ++open_pending_;
  } else if (p.timer.valid()) {
    sim_.cancel(p.timer);  // superseded: newest wins
  }
  p.seq = next_seq();
  p.resource = Resource::kCpu;
  p.cores = cores;
  p.attempts = 0;
  p.backoff = config_.rpc_retry_timeout;
  p.ctx = ctx;
  p.rpc_event = 0;
  if (obs_ != nullptr) {
    obs_->h.rpcs_issued->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRpcIssued;
    ev.container = id;
    ev.node = node_tag(entry);
    ev.before = 0.0;  // resource flag: 0 = CPU
    ev.after = cores;
    ev.cause = ctx.cause;
    // Logical (unbatched-equivalent) RPC size; the batched path's actual
    // wire accounting lands in the net.* counters and controller.batched_*.
    ev.detail = static_cast<std::int64_t>(kLimitUpdateRpcBytes);
    p.rpc_event = obs_->record(ev);
  }
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kCpuSlot;
    rev.container = id;
    rev.node = entry.agent->node().id();
    rev.seq = p.seq;
    rev.cores = cores;
    emit_repl(rev);
  }
  dispatch_update(key, entry.agent->node().id());
}

void Controller::push_mem_limit(cluster::ContainerId id, memcg::Bytes limit,
                                LoopCtx ctx) {
  if (crashed_) return;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return;
  Entry& entry = registry_[slot];
  ++limit_updates_;
  const std::uint64_t key = update_key(id, Resource::kMem);
  const std::size_t idx = static_cast<std::size_t>(slot) * 3 + 1;
  Pending& p = pending_[idx];
  if (pending_open_[idx] == 0) {
    p = Pending{};
    pending_open_[idx] = 1;
    ++open_pending_;
  } else if (p.timer.valid()) {
    sim_.cancel(p.timer);
  }
  p.seq = next_seq();
  p.resource = Resource::kMem;
  p.mem = limit;
  p.attempts = 0;
  p.backoff = config_.rpc_retry_timeout;
  p.ctx = ctx;
  p.rpc_event = 0;
  if (obs_ != nullptr) {
    obs_->h.rpcs_issued->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRpcIssued;
    ev.container = id;
    ev.node = node_tag(entry);
    ev.before = 1.0;  // resource flag: 1 = memory
    ev.after = static_cast<double>(limit);
    ev.cause = ctx.cause;
    ev.detail = static_cast<std::int64_t>(kLimitUpdateRpcBytes);
    p.rpc_event = obs_->record(ev);
  }
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kMemSlot;
    rev.container = id;
    rev.node = entry.agent->node().id();
    rev.seq = p.seq;
    rev.is_mem = true;
    rev.mem = limit;
    emit_repl(rev);
  }
  dispatch_update(key, entry.agent->node().id());
}

void Controller::push_bw_limit(cluster::ContainerId id, double rate_bps,
                               LoopCtx ctx) {
  if (crashed_) return;
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return;
  Entry& entry = registry_[slot];
  ++limit_updates_;
  const std::uint64_t key = update_key(id, Resource::kBw);
  const std::size_t idx = static_cast<std::size_t>(slot) * 3 + 2;
  Pending& p = pending_[idx];
  if (pending_open_[idx] == 0) {
    p = Pending{};
    pending_open_[idx] = 1;
    ++open_pending_;
  } else if (p.timer.valid()) {
    sim_.cancel(p.timer);
  }
  p.seq = next_seq();
  p.resource = Resource::kBw;
  p.bw_bps = rate_bps;
  p.attempts = 0;
  p.backoff = config_.rpc_retry_timeout;
  p.ctx = ctx;
  p.rpc_event = 0;
  if (obs_ != nullptr) {
    obs_->h.rpcs_issued->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRpcIssued;
    ev.container = id;
    ev.node = node_tag(entry);
    ev.before = 2.0;  // resource flag: 2 = bandwidth
    ev.after = rate_bps;
    ev.cause = ctx.cause;
    ev.detail = static_cast<std::int64_t>(kLimitUpdateRpcBytes);
    p.rpc_event = obs_->record(ev);
  }
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kBwSlot;
    rev.container = id;
    rev.node = entry.agent->node().id();
    rev.seq = p.seq;
    rev.resource = Resource::kBw;
    rev.bw_bps = rate_bps;
    emit_repl(rev);
  }
  dispatch_update(key, entry.agent->node().id());
}

void Controller::dispatch_update(std::uint64_t key, cluster::NodeId node) {
  if (!config_.batch_limit_updates) {
    send_pending(key);
    return;
  }
  Pending* p = find_pending(key);
  if (p == nullptr) return;
  NodeBatch& batch = batches_[node];
  if (!p->queued) {
    p->queued = true;
    batch.keys.push_back(key);
  }
  if (!batch.scheduled) {
    batch.scheduled = true;
    // Same-tick flush: runs after every event already queued at this
    // timestamp, so all of a period's decisions for the node coalesce into
    // one RPC without delaying any of them.
    batch.flush =
        sim_.schedule_after(0, [this, node] { flush_node_batch(node); });
  }
}

void Controller::flush_node_batch(cluster::NodeId node) {
  const auto bit = batches_.find(node);
  if (bit == batches_.end()) return;
  NodeBatch& batch = bit->second;
  batch.scheduled = false;
  const std::vector<std::uint64_t> keys = std::move(batch.keys);
  batch.keys.clear();
  if (crashed_ || keys.empty()) return;

  // Snapshot of one batch entry, fixed at flush time (exactly what legacy
  // send_pending captures per RPC). A slot superseded after the flush keeps
  // its own newer state; the in-flight entry acks or times out on this seq.
  struct WireEntry {
    std::uint64_t key = 0;
    cluster::ContainerId id = 0;
    std::uint64_t seq = 0;
    Resource resource = Resource::kCpu;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;
    obs::EventId rpc_event = 0;
    LoopCtx ctx;
    std::uint32_t node_tag = 0;
  };
  std::vector<WireEntry> entries;
  entries.reserve(keys.size());
  Agent* agent = nullptr;
  for (const std::uint64_t key : keys) {
    Pending* p = find_pending(key);
    if (p == nullptr) continue;  // acked or canceled before the flush
    Entry* entry = find_entry(static_cast<cluster::ContainerId>(key >> 2));
    if (entry->agent == nullptr) {
      p->queued = false;
      continue;
    }
    if (entry->agent->node().id() != node) {
      // Re-registered on another node between dispatch and flush: hand the
      // slot to the node that owns it now.
      p->queued = false;
      dispatch_update(key, entry->agent->node().id());
      continue;
    }
    p->queued = false;
    agent = entry->agent;
    WireEntry w;
    w.key = key;
    w.id = static_cast<cluster::ContainerId>(key >> 2);
    w.seq = p->seq;
    w.resource = p->resource;
    w.cores = p->cores;
    w.mem = p->mem;
    w.bw_bps = p->bw_bps;
    w.rpc_event = p->rpc_event;
    w.ctx = p->ctx;
    w.node_tag = node_tag(*entry);
    entries.push_back(w);
  }
  if (entries.empty() || agent == nullptr) return;

  if (obs_ != nullptr) {
    obs_->h.batched_rpcs->inc();
    obs_->h.batch_entries->inc(static_cast<std::uint64_t>(entries.size()));
  }
  const std::size_t req_bytes =
      kBatchedLimitUpdateHdrBytes + entries.size() * kBatchedLimitEntryBytes;
  const std::size_t resp_bytes =
      kBatchedLimitAckHdrBytes + entries.size() * kBatchedLimitAckEntryBytes;
  // (key, seq) pairs the Agent acks; shared between the request and
  // response legs. A duplicated request delivery rebuilds the list (the
  // applies are idempotent, and on_update_ack ignores a closed slot).
  auto acks = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
  const cluster::NodeId node_id = node;
  net_.rpc_to(
      net::kControllerEndpoint, ep(node_id), req_bytes, resp_bytes,
      // Request delivered at the Agent: apply every entry with exactly the
      // legacy per-entry semantics. Entries rejected (crashed/unmanaged) or
      // fenced get no ack — their retransmit timers carry them; if *no*
      // entry landed there is no response at all.
      [this, agent, entries, acks]() -> bool {
        acks->clear();
        bool any = false;
        for (const WireEntry& w : entries) {
          Agent::Apply result = Agent::Apply::kRejected;
          double applied_value = 0.0;
          switch (w.resource) {
            case Resource::kCpu:
              result = agent->apply_cpu_limit(w.id, w.cores, w.seq);
              applied_value = w.cores;
              break;
            case Resource::kMem:
              result = agent->apply_mem_limit(w.id, w.mem, w.seq);
              applied_value = static_cast<double>(w.mem);
              break;
            case Resource::kBw:
              result = agent->apply_bw_limit(w.id, w.bw_bps, w.seq);
              applied_value = w.bw_bps;
              break;
          }
          if (result == Agent::Apply::kRejected) continue;
          if (result == Agent::Apply::kFenced) continue;
          if (!any) {
            any = true;
            agent->note_controller_contact();  // delivery renews the lease
          }
          acks->emplace_back(w.key, w.seq);
          if (result == Agent::Apply::kApplied && obs_ != nullptr) {
            const sim::TimePoint apply = sim_.now();
            obs_->h.rpcs_applied->inc();
            obs::TraceEvent ev;
            ev.time = apply;
            ev.kind = obs::EventKind::kRpcApplied;
            ev.container = w.id;
            ev.node = w.node_tag;
            ev.before = static_cast<double>(w.resource);
            ev.after = applied_value;
            ev.cause = w.rpc_event;
            ev.detail = static_cast<std::int64_t>(w.seq);
            obs_->record(ev);
            if (w.ctx.profile) {
              obs_->profiler().record_loop(w.ctx.fire, w.ctx.ingest,
                                           w.ctx.decide, apply);
            }
          }
        }
        return any;
      },
      // Response: per-entry acks. Unacked entries stay pending and
      // retransmit individually — partial-batch loss never re-sends what
      // already landed.
      [this, acks, node_id] {
        for (const auto& [key, seq] : *acks) on_update_ack(key, seq, node_id);
      });

  for (const WireEntry& w : entries) {
    Pending* p = find_pending(w.key);
    if (p == nullptr || p->seq != w.seq) continue;
    p->timer = sim_.schedule_after(p->backoff, [this, key = w.key,
                                                seq = w.seq] {
      on_update_timeout(key, seq);
    });
  }
}

void Controller::send_pending(std::uint64_t key) {
  Pending* pp = find_pending(key);
  if (pp == nullptr) return;
  Pending& p = *pp;
  const auto id = static_cast<cluster::ContainerId>(key >> 2);
  Entry* entry = find_entry(id);
  Agent* agent = entry->agent;
  const cluster::NodeId node_id = agent->node().id();
  const std::uint32_t node = node_tag(*entry);
  const std::uint64_t seq = p.seq;
  const Resource resource = p.resource;
  const double cores = p.cores;
  const memcg::Bytes mem = p.mem;
  const double bw_bps = p.bw_bps;
  const obs::EventId rpc_event = p.rpc_event;
  const LoopCtx ctx = p.ctx;

  net_.rpc_to(
      net::kControllerEndpoint, ep(node_id), kLimitUpdateRpcBytes,
      kLimitUpdateRespBytes,
      // Request delivered at the Agent. Returning false (crashed agent)
      // kills the response leg: the Controller's timeout takes it from
      // there.
      [this, agent, id, seq, resource, cores, mem, bw_bps, rpc_event, ctx,
       node]() -> bool {
        Agent::Apply result = Agent::Apply::kRejected;
        double applied_value = 0.0;
        switch (resource) {
          case Resource::kCpu:
            result = agent->apply_cpu_limit(id, cores, seq);
            applied_value = cores;
            break;
          case Resource::kMem:
            result = agent->apply_mem_limit(id, mem, seq);
            applied_value = static_cast<double>(mem);
            break;
          case Resource::kBw:
            result = agent->apply_bw_limit(id, bw_bps, seq);
            applied_value = bw_bps;
            break;
        }
        if (result == Agent::Apply::kRejected) return false;
        // A fenced update means this epoch has been deposed: the Agent will
        // not act on it and must not treat it as live-controller contact —
        // no ack, the slot dies with the old epoch.
        if (result == Agent::Apply::kFenced) return false;
        agent->note_controller_contact();  // a delivered RPC renews the lease
        if (result == Agent::Apply::kApplied && obs_ != nullptr) {
          const sim::TimePoint apply = sim_.now();
          obs_->h.rpcs_applied->inc();
          obs::TraceEvent ev;
          ev.time = apply;
          ev.kind = obs::EventKind::kRpcApplied;
          ev.container = id;
          ev.node = node;
          ev.before = static_cast<double>(resource);
          ev.after = applied_value;
          ev.cause = rpc_event;  // the original issue, across retransmits
          // The applied sequence (epoch in the high 16 bits): the invariant
          // checker derives the no-split-brain rule — per-(container,
          // resource) applied sequences strictly increase — from this.
          ev.detail = static_cast<std::int64_t>(seq);
          obs_->record(ev);
          if (ctx.profile) {
            obs_->profiler().record_loop(ctx.fire, ctx.ingest, ctx.decide,
                                         apply);
          }
        }
        return true;  // ack (duplicate deliveries ack too: idempotent)
      },
      // Response (ack) back at the Controller.
      [this, key, seq, node_id] { on_update_ack(key, seq, node_id); });

  p.timer = sim_.schedule_after(
      p.backoff, [this, key, seq] { on_update_timeout(key, seq); });
}

void Controller::on_update_ack(std::uint64_t key, std::uint64_t seq,
                               cluster::NodeId node) {
  if (crashed_) return;
  // Any traffic from the node proves it alive.
  health_[node].last_heartbeat = sim_.now();
  Pending* p = find_pending(key);
  if (p == nullptr || p->seq != seq) return;  // superseded
  sim_.cancel(p->timer);
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kAckSlot;
    rev.container = static_cast<cluster::ContainerId>(key >> 2);
    rev.node = node;
    rev.seq = seq;
    rev.resource = p->resource;
    rev.is_mem = p->resource == Resource::kMem;
    emit_repl(rev);
  }
  const std::uint32_t slot =
      index_.find(static_cast<cluster::ContainerId>(key >> 2));
  pending_open_[static_cast<std::size_t>(slot) * 3 + (key & 3)] = 0;
  --open_pending_;
}

void Controller::on_update_timeout(std::uint64_t key, std::uint64_t seq) {
  if (crashed_) return;
  Pending* pp = find_pending(key);
  if (pp == nullptr || pp->seq != seq) return;
  Pending& p = *pp;
  ++p.attempts;
  ++retransmits_;
  const auto id = static_cast<cluster::ContainerId>(key >> 2);
  if (obs_ != nullptr) {
    obs_->h.retransmits->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRetransmit;
    ev.container = id;
    const Entry* rit = find_entry(id);
    ev.node = rit != nullptr ? node_tag(*rit) : 0;
    ev.before = static_cast<double>(p.resource);
    switch (p.resource) {
      case Resource::kCpu:
        ev.after = p.cores;
        break;
      case Resource::kMem:
        ev.after = static_cast<double>(p.mem);
        break;
      case Resource::kBw:
        ev.after = p.bw_bps;
        break;
    }
    ev.cause = p.rpc_event;
    ev.detail = p.attempts;
    obs_->record(ev);
  }
  p.backoff = std::min<sim::Duration>(p.backoff * 2, config_.rpc_backoff_max);
  // Re-send the *newest* desired value and re-arm the timer. The batched
  // path re-enqueues: several entries timing out at the same instant for
  // one node coalesce back into a single retransmit RPC, and only unacked
  // entries ride it.
  const Entry* entry = find_entry(id);
  dispatch_update(key, entry->agent->node().id());
}

void Controller::cancel_pending_for(cluster::ContainerId id) {
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return;
  for (int r = 0; r < 3; ++r) {
    const std::size_t idx = static_cast<std::size_t>(slot) * 3 + r;
    if (pending_open_[idx] == 0) continue;
    sim_.cancel(pending_[idx].timer);
    pending_open_[idx] = 0;
    --open_pending_;
  }
}

void Controller::on_heartbeat(cluster::NodeId node,
                              std::uint64_t incarnation) {
  if (crashed_) return;  // nobody listening; the Agent's lease will expire
  if (obs_ != nullptr) obs_->h.heartbeats->inc();
  NodeHealth& h = health_[node];
  const bool was_dead = h.dead;
  const bool first_contact = h.agent_incarnation == 0;
  const bool agent_restarted =
      h.agent_incarnation != 0 && h.agent_incarnation != incarnation;
  h.last_heartbeat = sim_.now();
  h.agent_incarnation = incarnation;
  // Liveness *transitions* (not every heartbeat) replicate to the standbys:
  // the incarnation map and dead/alive state are part of the takeover image.
  if (first_contact || was_dead || agent_restarted) {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kNodeHealth;
    rev.node = node;
    rev.agent_incarnation = incarnation;
    rev.node_dead = false;
    emit_repl(rev);
  }
  if (was_dead) {
    h.dead = false;
    sim_.cancel(h.reclaim_timer);  // quarantine lifted
    if (obs_ != nullptr) {
      obs_->h.nodes_alive->inc();
      obs::TraceEvent ev;
      ev.time = sim_.now();
      ev.kind = obs::EventKind::kNodeAlive;
      ev.node = node + 1;
      ev.detail = static_cast<std::int64_t>(incarnation);
      obs_->record(ev);
    }
  }
  Agent* agent = agent_at(node);
  if (agent != nullptr) {
    // Ack the heartbeat so the Agent's lease stays fresh.
    net_.send_to(net::Channel::kControlRpc, net::kControllerEndpoint,
                 ep(node), kHeartbeatAckWireBytes,
                 [agent] { agent->note_controller_contact(); });
    // A node back from the dead (possibly with reclaimed containers) or a
    // restarted Agent (sequence table lost) needs reconciliation.
    if (was_dead || agent_restarted) resync_node(node, *agent);
  }
}

void Controller::run_liveness_check() {
  if (crashed_) return;
  for (auto& [node, h] : health_) {
    if (h.dead || h.agent_incarnation == 0) continue;
    if (sim_.now() - h.last_heartbeat > config_.liveness_timeout) {
      declare_dead(node, h);
    }
  }
}

void Controller::declare_dead(cluster::NodeId node, NodeHealth& health) {
  health.dead = true;
  {
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kNodeHealth;
    rev.node = node;
    rev.agent_incarnation = health.agent_incarnation;
    rev.node_dead = true;
    emit_repl(rev);
  }
  if (obs_ != nullptr) {
    obs_->h.nodes_dead->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kNodeDead;
    ev.node = node + 1;
    ev.detail = static_cast<std::int64_t>(
        sim_.now() - health.last_heartbeat);  // silence at declaration, us
    obs_->record(ev);
  }
  // Quarantine: the node's pool share is frozen (decisions suppressed) for
  // the grace period, then reclaimed for the live nodes.
  health.reclaim_timer = sim_.schedule_after(
      config_.quarantine_grace, [this, node] { reclaim_dead_node(node); });
}

void Controller::reclaim_dead_node(cluster::NodeId node) {
  if (crashed_) return;
  const auto hit = health_.find(node);
  if (hit == health_.end() || !hit->second.dead) return;
  std::vector<cluster::ContainerId> ids;
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId id) {
    const Entry& entry = registry_[slot];
    if (entry.agent != nullptr && entry.agent->node().id() == node) {
      ids.push_back(id);
    }
  });
  std::sort(ids.begin(), ids.end());  // deterministic reclaim order
  for (const cluster::ContainerId id : ids) deregister_quarantined(id);
}

void Controller::resync_node(cluster::NodeId node, Agent& agent) {
  if (crashed_) return;
  Agent* agent_ptr = &agent;
  auto snap = std::make_shared<std::vector<Agent::SnapshotEntry>>();
  net_.rpc_to(
      net::kControllerEndpoint, ep(node), kResyncRpcBytes, kResyncRespBytes,
      [agent_ptr, snap]() -> bool {
        if (agent_ptr->crashed()) return false;
        *snap = agent_ptr->snapshot();
        agent_ptr->note_controller_contact();
        return true;
      },
      [this, node, agent_ptr, snap] { apply_resync(node, *agent_ptr, *snap); });
}

void Controller::apply_resync(cluster::NodeId node, Agent& agent,
                              const std::vector<Agent::SnapshotEntry>& snap) {
  if (crashed_) return;
  health_[node].last_heartbeat = sim_.now();  // the response proves liveness
  const double eps = 1e-9;
  for (const Agent::SnapshotEntry& s : snap) {
    if (s.container == nullptr) continue;
    double want_cores = 0.0;
    double want_bw = 0.0;
    bool push_bw = false;
    obs::EventId resync_ev = 0;
    if (index_.contains(s.id)) {
      // Still registered (Agent restart without Controller loss): the
      // shadow limits are authoritative; reconcile the node toward them.
      want_cores = allocator_.app().member_cores(s.id);
      want_bw = allocator_.app().member_bw(s.id);
      push_bw = bw_shaper_ != nullptr &&
                std::abs(want_bw - s.bw_bps) > kBwRateEpsilon;
      if (std::abs(want_cores - s.cpu_cores) <= eps && !push_bw) continue;
    } else {
      // Re-adoption (Controller restart, or a node back after its share
      // was reclaimed): the node's fail-static limits are the starting
      // point, clamped to what the pool still holds. Bandwidth re-admission
      // (with the same clamp and its own corrective slot) rides inside.
      const double cores = std::min(
          s.cpu_cores, std::max(0.0, allocator_.app().cpu_unallocated()));
      const memcg::Bytes mem = std::min(
          s.mem_limit,
          std::max<memcg::Bytes>(0, allocator_.app().mem_unallocated()));
      register_impl(*s.container, agent.node(), cores, mem,
                    RegisterMode::kResync, s.bw_bps);
      want_cores = allocator_.app().member_cores(s.id);
      want_bw = allocator_.app().member_bw(s.id);
    }
    ++resyncs_;
    if (obs_ != nullptr) {
      obs_->h.resyncs->inc();
      obs::TraceEvent ev;
      ev.time = sim_.now();
      ev.kind = obs::EventKind::kResync;
      ev.container = s.id;
      ev.node = node + 1;
      ev.before = s.cpu_cores;  // applied (fail-static) limit at the node
      ev.after = want_cores;    // controller-intended shadow limit
      ev.detail = static_cast<std::int64_t>(s.mem_limit);
      resync_ev = obs_->record(ev);
    }
    // Corrective update where the node diverges from the intent. Memory
    // is left to the periodic reclamation loop (shrinking a memory limit
    // below live usage would manufacture OOMs).
    if (std::abs(want_cores - s.cpu_cores) > eps) {
      LoopCtx ctx;
      ctx.cause = resync_ev;
      push_cpu_limit(s.id, want_cores, ctx);
    }
    if (push_bw) {
      LoopCtx ctx;
      ctx.cause = resync_ev;
      push_bw_limit(s.id, want_bw, ctx);
    }
  }
}

bool Controller::handle_oom(cluster::Container& container, memcg::Bytes charge,
                            memcg::Bytes shortfall) {
  // The event travels the container's persistent kernel TCP socket; the
  // limit raise returns over RPC. The container is stalled for the round
  // trip by its own rescue path; here we account the bytes and decide.
  const Entry* it = find_entry(container.id());
  const cluster::NodeId node =
      it != nullptr && it->agent != nullptr ? it->agent->node().id() : 0;
  net_.send_to(net::Channel::kMemoryEvent, ep(node), net::kControllerEndpoint,
               kOomEventWireBytes, [] {});
  // A crashed Controller, a severed path, or an unregistered container
  // (quarantine-reclaimed) leaves the request unanswered: the hook returns
  // false and the kernel's normal OOM path proceeds against the container's
  // fail-static limit.
  if (crashed_ || it == nullptr || !reachable(node) ||
      !allocator_.knows(container.id())) {
    return false;
  }
  ++oom_events_;
  if (obs_ != nullptr) obs_->h.oom_events->inc();

  const memcg::Bytes old_limit = container.mem_cgroup().limit();
  OomEventMsg event;
  event.container = container.id();
  event.attempted_charge = charge;
  // The kernel reports the shortfall against the *applied* cgroup limit,
  // but the allocator raises the *shadow* limit. After a crash/resync the
  // shadow may sit below the node's fail-static applied limit; widen the
  // request by that divergence so the granted shadow still clears the
  // applied position — otherwise the "grant" would lower the cgroup limit
  // mid-OOM and kill a container the allocator judged grantable.
  event.shortfall =
      shortfall +
      std::max<memcg::Bytes>(
          0, old_limit - allocator_.app().member_mem(container.id()));

  auto decision = allocator_.on_oom_event(event, /*post_reclaim=*/false);
  bool retried = false;
  if (decision.action == ResourceAllocator::MemAction::kReclaimThenRetry) {
    retried = true;
    // Pool dry: aggressive reclamation from containers with slack
    // (Section III "Reactive Memory Reclamation"), then retry once.
    run_emergency_reclaim();
    // The sweep may have shrunk this container's own limit, so the original
    // shortfall is stale; a grant sized from it leaves the retried charge
    // over the new limit and OOM-kills a container the pool could cover.
    // Same shadow-divergence widening as above (the sweep re-syncs shadows
    // for containers it resized, so recompute from current state).
    event.shortfall =
        container.mem_cgroup().usage() + charge -
        std::min(container.mem_cgroup().limit(),
                 allocator_.app().member_mem(container.id()));
    // A non-positive recomputed shortfall means the books say the charge
    // already fits: a real charge failure always leaves usage + charge
    // above the applied limit, so the claimed OOM was forged. Deny — a
    // negative shortfall fed to the allocator would round to a negative
    // page count and turn the "grant" into a limit cut.
    if (event.shortfall <= 0) return false;
    decision = allocator_.on_oom_event(event, /*post_reclaim=*/true);
  }
  if (decision.action != ResourceAllocator::MemAction::kGrant) return false;

  // Describe the grant against the state the decision acted on: the applied
  // limit at grant time, and the shortfall the grant was issued to cover —
  // the kernel's reported shortfall on the direct path, the recomputed
  // book shortfall on the post-reclaim retry (the sweep may have shrunk
  // this container's own limit, so the entry-time claim is stale). For an
  // honest event both equal usage + charge - limit; for a forged event the
  // claim can bear no relation to the books, and the grant is priced by
  // the credit charge below, not second-guessed here.
  const memcg::Bytes pre_grant_limit = container.mem_cgroup().limit();
  const memcg::Bytes eff_shortfall =
      retried ? container.mem_cgroup().usage() + charge - pre_grant_limit
              : shortfall;

  // Apply synchronously: the charge retries as soon as the hook returns.
  container.mem_cgroup().set_limit(decision.new_limit);
  const bool saved =
      container.mem_cgroup().usage() + charge <= decision.new_limit;
  if (saved) ++oom_rescues_;
  obs::EventId grant_ev = 0;
  if (obs_ != nullptr) {
    if (saved) obs_->h.oom_rescues->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kMemGrantOnOom;
    ev.container = container.id();
    ev.node = it != nullptr ? node_tag(*it) : 0;
    ev.before = static_cast<double>(pre_grant_limit);
    ev.after = static_cast<double>(decision.new_limit);
    ev.detail = static_cast<std::int64_t>(eff_shortfall);
    grant_ev = obs_->record(ev);
  }
  // The synchronous write rescued the charge, but only an acked, sequence-
  // numbered desired-state slot survives a controller handoff: route the
  // grant through the slot machinery so an un-acked grant is replicated and
  // a new leader replays it. The slot carries the absolute limit, so the
  // Agent-side re-apply is idempotent — the memcg charge succeeds exactly
  // once, never doubled by the replay.
  LoopCtx ctx;
  ctx.cause = grant_ev;
  push_mem_limit(container.id(), decision.new_limit, ctx);

  // Karma coupling for memory: an OOM grant that lifts the member above its
  // fair share of the global memory limit spends the same credit currency
  // as CPU overclaiming — a phantom-OOM attack drains the attacker's
  // balance, and with it the CPU elasticity the balance was buying.
  if (config_.credit_defense && credits_.contains(container.id()) &&
      allocator_.app().member_count() > 0) {
    const memcg::Bytes fair_mem = static_cast<memcg::Bytes>(
        allocator_.app().mem_limit() /
        static_cast<memcg::Bytes>(allocator_.app().member_count()));
    const memcg::Bytes over =
        decision.new_limit - std::max(pre_grant_limit, fair_mem);
    if (fair_mem > 0 && over > 0) {
      // Price: fraction of a fair memory share taken, in fair-share-seconds.
      // Debt is floored at -credit_cap, same as the settle sweep.
      const std::int64_t before_bal = credits_.balance_micro(container.id());
      const std::int64_t floor_room =
          before_bal + CreditLedger::to_micro(config_.credit_cap);
      const std::int64_t price = std::min(
          CreditLedger::to_micro(static_cast<double>(over) /
                                 static_cast<double>(fair_mem)),
          std::max<std::int64_t>(0, floor_room));
      if (price > 0) {
        credits_.burn(container.id(), price);
        if (obs_ != nullptr) {
          obs_->h.credit_charges->inc();
          obs::TraceEvent ev;
          ev.time = sim_.now();
          ev.kind = obs::EventKind::kCreditCharge;
          ev.container = container.id();
          ev.node = it != nullptr ? node_tag(*it) : 0;
          ev.before = CreditLedger::to_credits(before_bal);
          ev.after =
              CreditLedger::to_credits(credits_.balance_micro(container.id()));
          ev.cause = grant_ev;
          ev.detail = static_cast<std::int64_t>(over);
          obs_->record(ev);
        }
        emit_credit(container.id(), /*removed=*/false);
      }
    }
  }
  return saved;
}

std::vector<Controller::TakeoverContainer> Controller::registry_snapshot() {
  std::vector<TakeoverContainer> out;
  out.reserve(index_.size());
  index_.for_each([&](std::uint32_t, cluster::ContainerId id) {
    TakeoverContainer c;
    c.id = id;
    c.cores = allocator_.app().member_cores(id);
    c.mem = allocator_.app().member_mem(id);
    c.bw_bps = allocator_.app().member_bw(id);
    const auto rt = rt_.find(id);
    if (rt != rt_.end()) {
      c.rt = rt->second.spec;
      c.rt_bw_bps = rt->second.bw_bps;
    }
    out.push_back(c);
  });
  std::sort(out.begin(), out.end(),
            [](const TakeoverContainer& a, const TakeoverContainer& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<Controller::TakeoverSlot> Controller::pending_slots() const {
  std::vector<TakeoverSlot> out;
  out.reserve(open_pending_);
  index_.for_each([&](std::uint32_t slot, cluster::ContainerId id) {
    for (int r = 0; r < 3; ++r) {
      const std::size_t idx = static_cast<std::size_t>(slot) * 3 + r;
      if (pending_open_[idx] == 0) continue;
      const Pending& p = pending_[idx];
      TakeoverSlot s;
      s.id = id;
      s.resource = p.resource;
      s.is_mem = p.resource == Resource::kMem;
      s.cores = p.cores;
      s.mem = p.mem;
      s.bw_bps = p.bw_bps;
      s.seq = p.seq;
      out.push_back(s);
    }
  });
  std::sort(out.begin(), out.end(),
            [](const TakeoverSlot& a, const TakeoverSlot& b) {
              return a.id != b.id ? a.id < b.id : a.resource < b.resource;
            });
  return out;
}

std::vector<Controller::TakeoverNode> Controller::health_snapshot() const {
  std::vector<TakeoverNode> out;
  out.reserve(health_.size());
  for (const auto& [node, h] : health_) {
    TakeoverNode n;
    n.node = node;
    n.agent_incarnation = h.agent_incarnation;
    n.dead = h.dead;
    out.push_back(n);
  }
  std::sort(out.begin(), out.end(),
            [](const TakeoverNode& a, const TakeoverNode& b) {
              return a.node < b.node;
            });
  return out;
}

std::vector<Agent*> Controller::agents() {
  std::vector<Agent*> out;
  out.reserve(agents_.size());
  for (const auto& agent : agents_) out.push_back(agent.get());
  return out;
}

void Controller::takeover(std::uint64_t epoch,
                          const std::vector<TakeoverContainer>& containers,
                          const std::vector<TakeoverSlot>& slots,
                          const std::vector<TakeoverNode>& nodes,
                          obs::EventId cause) {
  // A live (deposed) leader is crashed first by the caller; a dead one is
  // simply re-seated. Either way the seat starts from the replica, not from
  // Agent snapshots.
  crashed_ = false;
  // Never move the epoch backwards: a plain restart() may have burned
  // intermediate incarnations this election never observed.
  incarnation_ = std::max(epoch, incarnation_ + 1);
  update_seq_ = 0;
  start();  // agents keep their own loops; Agent::start is a no-op for them

  // Node health first, so registration sees liveness state. Dead nodes
  // restart their quarantine clock under the new leader — the share is
  // reclaimed `quarantine_grace` after takeover, not retroactively.
  for (const TakeoverNode& n : nodes) {
    NodeHealth& h = health_[n.node];
    h.last_heartbeat = sim_.now();
    h.agent_incarnation = n.agent_incarnation;
    h.dead = n.dead;
    if (n.dead) {
      const cluster::NodeId node = n.node;
      h.reclaim_timer = sim_.schedule_after(
          config_.quarantine_grace, [this, node] { reclaim_dead_node(node); });
    }
    ReplicationEvent rev;
    rev.kind = ReplicationEvent::Kind::kNodeHealth;
    rev.node = n.node;
    rev.agent_incarnation = n.agent_incarnation;
    rev.node_dead = n.dead;
    emit_repl(rev);
  }

  // Rebuild the registry and pool book from the replicated shadow limits.
  // The values were committed against the same pool by the old epoch, so
  // re-committing them in sorted order reproduces the book exactly — no
  // cgroup writes, no bootstrap traffic (kTakeover behaves like kResync on
  // the wire: the node-side state is whatever fail-static preserved).
  for (const TakeoverContainer& c : containers) {
    if (c.container == nullptr || c.node == nullptr) continue;
    if (index_.contains(c.container->id())) continue;
    register_impl(*c.container, *c.node, c.cores, c.mem,
                  RegisterMode::kTakeover, c.bw_bps,
                  c.rt.valid() ? &c.rt : nullptr, c.rt_bw_bps);
  }

  // Replay every still-open desired-state slot with a fresh epoch-packed
  // sequence: the corrective updates converge any cgroup the old leader's
  // unacked RPCs left divergent, and their acks close the slots normally.
  std::vector<cluster::ContainerId> cpu_slotted;
  std::vector<cluster::ContainerId> bw_slotted;
  for (const TakeoverSlot& s : slots) {
    if (!index_.contains(s.id)) continue;
    LoopCtx ctx;
    ctx.cause = cause;
    switch (s.resource) {
      case Resource::kCpu:
        cpu_slotted.push_back(s.id);
        push_cpu_limit(s.id, s.cores, ctx);
        break;
      case Resource::kMem:
        push_mem_limit(s.id, s.mem, ctx);
        break;
      case Resource::kBw:
        bw_slotted.push_back(s.id);
        push_bw_limit(s.id, s.bw_bps, ctx);
        break;
    }
  }

  // A node's applied limit may sit above the book this seat just rebuilt:
  // a WAL record lost in the stream's tail is undetectable (no later record
  // reveals the gap, and nobody outlived the old leader to resend it), and
  // such a loss leaves no open slot behind to correct the cgroup it
  // described. Converge every registered CPU limit the slot replay did not
  // already cover — idempotent sequences make the already-converged case a
  // no-op at the node. Memory is left to the reclamation loop, same as the
  // resync path (shrinking below live usage would manufacture OOMs).
  std::vector<cluster::ContainerId> registered_ids;
  registered_ids.reserve(index_.size());
  index_.for_each([&](std::uint32_t, cluster::ContainerId id) {
    registered_ids.push_back(id);
  });
  std::sort(registered_ids.begin(), registered_ids.end());
  for (const cluster::ContainerId id : registered_ids) {
    if (!std::binary_search(cpu_slotted.begin(), cpu_slotted.end(), id)) {
      LoopCtx ctx;
      ctx.cause = cause;
      push_cpu_limit(id, allocator_.app().member_cores(id), ctx);
    }
    // Same convergence sweep for bandwidth: a bandwidth slot lost in the
    // WAL tail would otherwise leave the node's applied rate divergent
    // forever. Unshaped containers (no book rate, no applied rate) are
    // skipped — pushing a zero rate would attach an empty lane.
    if (bw_shaper_ != nullptr &&
        !std::binary_search(bw_slotted.begin(), bw_slotted.end(), id)) {
      const double book = allocator_.app().member_bw(id);
      const bool attached =
          bw_shaper_->node_of(id) != bw::ClusterShaper::kNoNode;
      const double applied = attached ? bw_shaper_->container_rate(id) : 0.0;
      if (book > 0.0 || applied > 0.0) {
        LoopCtx ctx;
        ctx.cause = cause;
        push_bw_limit(id, book, ctx);
      }
    }
  }

  // Admissions queued during the vacancy, answered against the fully
  // rebuilt book (takeover is synchronous, unlike restart's async resync).
  drain_deferred_registrations();
}

void Controller::drain_deferred_registrations() {
  if (deferred_registrations_.empty()) return;
  const std::vector<DeferredRegistration> deferred =
      std::move(deferred_registrations_);
  deferred_registrations_.clear();
  for (const DeferredRegistration& d : deferred) {
    if (d.container == nullptr || d.node == nullptr) continue;
    if (index_.contains(d.container->id())) continue;
    register_impl(*d.container, *d.node, d.cores, d.mem,
                  RegisterMode::kBootstrap);
  }
}

void Controller::record_reclaims(Agent& agent,
                                 const std::vector<Agent::Resize>& resizes) {
  if (obs_ == nullptr) return;
  const std::uint32_t node = agent.node().id() + 1;
  memcg::Bytes freed = 0;
  for (const Agent::Resize& resize : resizes) {
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kReclaim;
    ev.container = resize.container;
    ev.node = node;
    ev.before = static_cast<double>(resize.old_limit);
    ev.after = static_cast<double>(resize.new_limit);
    ev.detail = static_cast<std::int64_t>(resize.old_limit - resize.new_limit);
    obs_->record(ev);
    freed += resize.old_limit - resize.new_limit;
  }
  obs_->h.reclaim_bytes->inc(static_cast<std::uint64_t>(freed));
}

memcg::Bytes Controller::run_emergency_reclaim() {
  memcg::Bytes psi = 0;
  if (crashed_) return psi;
  if (obs_ != nullptr) obs_->h.reclaim_sweeps->inc();
  for (const auto& agent : agents_) {
    // A crashed or unreachable agent cannot service the synchronous sweep;
    // the RPC library fails fast and the sweep moves on.
    if (agent->crashed() || !reachable(agent->node().id())) continue;
    net_.send_to(net::Channel::kControlRpc, net::kControllerEndpoint,
                 ep(agent->node().id()), kReclaimRpcBytes, [] {});
    const Agent::ReclaimResult result =
        agent->reclaim(config_.delta, config_.min_mem);
    net_.send_to(net::Channel::kControlRpc, ep(agent->node().id()),
                 net::kControllerEndpoint, kReclaimRespBytes, [] {});
    for (const Agent::Resize& resize : result.resizes) {
      allocator_.on_reclaimed(resize.container, resize.new_limit);
      ReplicationEvent rev;
      rev.kind = ReplicationEvent::Kind::kMemShadow;
      rev.container = resize.container;
      rev.mem = resize.new_limit;
      emit_repl(rev);
    }
    record_reclaims(*agent, result.resizes);
    psi += result.psi;
  }
  total_reclaimed_ += psi;
  return psi;
}

void Controller::run_periodic_reclaim() {
  // Every 5 seconds (Section IV-C): ask each Agent to shrink the limits of
  // its containers to usage + δ and report back ψ.
  if (crashed_) return;
  if (obs_ != nullptr && !agents_.empty()) obs_->h.reclaim_sweeps->inc();
  for (const auto& agent_ptr : agents_) {
    Agent* agent = agent_ptr.get();
    auto result = std::make_shared<Agent::ReclaimResult>();
    const memcg::Bytes delta = config_.delta;
    const memcg::Bytes floor = config_.min_mem;
    net_.rpc_to(
        net::kControllerEndpoint, ep(agent->node().id()), kReclaimRpcBytes,
        kReclaimRespBytes,
        [agent, result, delta, floor]() -> bool {
          if (agent->crashed()) return false;
          *result = agent->reclaim(delta, floor);
          return true;
        },
        [this, agent, result] {
          if (crashed_) return;
          for (const Agent::Resize& resize : result->resizes) {
            allocator_.on_reclaimed(resize.container, resize.new_limit);
            ReplicationEvent rev;
            rev.kind = ReplicationEvent::Kind::kMemShadow;
            rev.container = resize.container;
            rev.mem = resize.new_limit;
            emit_repl(rev);
          }
          record_reclaims(*agent, result->resizes);
          total_reclaimed_ += result->psi;
        });
  }
}

bool Controller::telemetry_plausible(const CpuStatsMsg& stats,
                                     const Entry* entry) {
  const double period = static_cast<double>(config_.cfs_period);
  bool bad = stats.quota < 0 || stats.unused < 0 || stats.unused > stats.quota;
  if (!bad && entry != nullptr && entry->agent != nullptr && period > 0.0) {
    // Used core-time over one period cannot exceed the node's core count:
    // the scheduler physically cannot run more than `cores` core-seconds
    // per second, whatever the cgroup's quota says.
    const double node_cores = entry->agent->node().config().cores;
    const double used_cores =
        static_cast<double>(stats.quota - stats.unused) / period;
    if (used_cores > node_cores * (1.0 + 1e-9)) bad = true;
  }
  if (!bad) return true;
  if (obs_ != nullptr) {
    obs_->h.telemetry_rejected->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kTelemetryRejected;
    ev.container = stats.cgroup;
    ev.node = entry != nullptr ? node_tag(*entry) : 0;
    ev.before = 0.0;  // resource flag: 0 = CPU
    ev.after = period > 0.0 ? static_cast<double>(stats.quota) / period : 0.0;
    ev.detail = static_cast<std::int64_t>(stats.unused);
    obs_->record(ev);
  }
  return false;
}

void Controller::open_credit_account(cluster::ContainerId id) {
  if (!config_.credit_defense || credits_.contains(id)) return;
  credits_.open(id, CreditLedger::to_micro(config_.credit_init));
  emit_credit(id, /*removed=*/false);
}

void Controller::close_credit_account(cluster::ContainerId id) {
  if (!credits_.contains(id)) return;
  credits_.close(id);
  emit_credit(id, /*removed=*/true);
}

void Controller::emit_credit(cluster::ContainerId id, bool removed) {
  if (!repl_hook_) return;
  ReplicationEvent rev;
  rev.kind = ReplicationEvent::Kind::kCredit;
  rev.container = id;
  rev.credit_micro = removed ? 0 : credits_.balance_micro(id);
  rev.credit_minted = credits_.minted_micro();
  rev.credit_burned = credits_.burned_micro();
  rev.credit_removed = removed;
  emit_repl(rev);
}

void Controller::install_credits(
    const std::vector<CreditLedger::Snapshot>& accounts, std::int64_t minted,
    std::int64_t burned) {
  // Takeover re-registration already opened init accounts for every member
  // it could rebuild; the replicated image replaces those wholesale.
  // Accounts for containers the takeover could not re-register (vanished
  // mid-failover) are dropped, their balances burned into the totals so
  // conservation survives the filter.
  std::vector<cluster::ContainerId> live;
  live.reserve(credits_.size());
  for (const auto& [id, acct] : credits_.accounts()) live.push_back(id);
  std::vector<CreditLedger::Snapshot> kept;
  kept.reserve(accounts.size());
  std::int64_t dropped = 0;
  for (const CreditLedger::Snapshot& s : accounts) {
    if (index_.find(s.id) != ContainerIndex::kInvalid) {
      kept.push_back(s);
    } else {
      dropped += s.micro;
    }
  }
  // Under replication faults the image's totals and its account map can be
  // stale relative to each other: a lost kCredit record drops an account's
  // open (or close) while later records overwrite the totals with values
  // that include it. The balances are the authoritative part, so re-derive
  // the minted total from them and enforce conservation structurally. In a
  // clean failover the image is self-consistent and this reproduces the
  // replicated minted total exactly.
  (void)minted;
  const std::int64_t total_burned = burned + dropped;
  std::int64_t outstanding = 0;
  for (const CreditLedger::Snapshot& s : kept) outstanding += s.micro;
  credits_.install(kept, total_burned + outstanding, total_burned);
  // A live member missing from the image (its open record never reached
  // the replicated WAL) starts over from the init grant — the same account
  // the takeover re-registration gave it before the install replaced it.
  for (const cluster::ContainerId id : live) {
    if (!credits_.contains(id)) open_credit_account(id);
  }
  // Re-emit the installed image so the new leader's own WAL stream starts
  // from the authoritative balances, not the register-time init grants.
  for (const auto& [id, acct] : credits_.accounts()) {
    emit_credit(id, /*removed=*/false);
  }
}

double Controller::rt_capacity() const {
  const double pool = allocator_.app().cpu_limit();
  // A pinned base (sharded deployments) never counts borrowed pool: the
  // live limit can sit above the base while a borrow is held, and a
  // reservation admitted against transient capacity would have to be
  // broken when the loan is returned.
  return rt_capacity_ > 0.0 ? std::min(rt_capacity_, pool) : pool;
}

double Controller::rt_floor_of(cluster::ContainerId id) const {
  const auto it = rt_.find(id);
  return it != rt_.end() ? it->second.floor : 0.0;
}

double Controller::node_rt_reserved(cluster::NodeId node,
                                    cluster::ContainerId except) const {
  double sum = 0.0;
  for (const auto& [id, info] : rt_) {
    if (id == except) continue;
    const std::uint32_t slot = index_.find(id);
    if (slot == ContainerIndex::kInvalid) continue;
    const Entry& e = registry_[slot];
    if (e.agent != nullptr && e.agent->node().id() == node) sum += info.floor;
  }
  return sum;
}

double Controller::node_rt_bw_reserved(cluster::NodeId node,
                                       cluster::ContainerId except) const {
  double sum = 0.0;
  for (const auto& [id, info] : rt_) {
    if (id == except) continue;
    const std::uint32_t slot = index_.find(id);
    if (slot == ContainerIndex::kInvalid) continue;
    const Entry& e = registry_[slot];
    if (e.agent != nullptr && e.agent->node().id() == node) {
      sum += info.bw_bps;
    }
  }
  return sum;
}

void Controller::record_rt_rejected(cluster::ContainerId id, double floor,
                                    std::int64_t reason) {
  ++rt_rejections_;
  if (obs_ == nullptr) return;
  obs_->h.rt_rejected->inc();
  obs::TraceEvent ev;
  ev.time = sim_.now();
  ev.kind = obs::EventKind::kRtRejected;
  ev.container = id;
  const Entry* entry = find_entry(id);
  ev.node = entry != nullptr ? node_tag(*entry) : 0;
  ev.after = floor;
  ev.detail = reason;
  obs_->record(ev);
}

Controller::RtAdmit Controller::admit_rt(cluster::ContainerId id,
                                         const cfs::RtSpec& spec,
                                         double bw_bps) {
  const double floor = spec.valid() ? spec.floor_cores() : 0.0;
  Entry* entry = find_entry(id);
  if (crashed_ || !spec.valid() || bw_bps < 0.0 || entry == nullptr ||
      entry->agent == nullptr || rt_.count(id) != 0 ||
      node_dead(entry->agent->node().id())) {
    record_rt_rejected(id, floor, 3);
    return RtAdmit::kRejectedState;
  }
  const cluster::NodeId node = entry->agent->node().id();
  // Node utilization bound: the deadline scheduler can honor the node's
  // reservations only while their density sum stays under the bound — the
  // slack above it is what absorbs CFS quantization and best-effort floors.
  const double node_cores = entry->agent->node().config().cores;
  if (node_rt_reserved(node, id) + floor >
      config_.rt_util_bound * node_cores + kCpuLimitEpsilon) {
    record_rt_rejected(id, floor, 0);
    return RtAdmit::kRejectedNode;
  }
  // Pool bound against non-borrowed RT capacity: an admitted floor is a
  // promise the pool must keep through faults, so it is only ever written
  // against capacity this controller owns outright.
  if (rt_reserved_cores_ + floor >
      config_.rt_util_bound * rt_capacity() + kCpuLimitEpsilon) {
    record_rt_rejected(id, floor, 1);
    return RtAdmit::kRejectedPool;
  }
  // Bandwidth arm: a reservation with a rate rides the same admission
  // decision, bounded against the node NIC (the bw plane's scarce link).
  if (bw_bps > 0.0) {
    const double nic =
        bw_shaper_ != nullptr ? bw_shaper_->node_nic_bps(node) : 0.0;
    if (nic <= 0.0 || node_rt_bw_reserved(node, id) + bw_bps >
                          config_.rt_bw_bound * nic + 0.5) {
      record_rt_rejected(id, floor, 2);
      return RtAdmit::kRejectedBw;
    }
  }
  install_rt(id, spec, bw_bps, /*fresh=*/true);
  return RtAdmit::kAdmitted;
}

void Controller::install_rt(cluster::ContainerId id, const cfs::RtSpec& spec,
                            double bw_bps, bool fresh) {
  Entry* entry = find_entry(id);
  if (entry == nullptr || entry->container == nullptr) return;
  const double floor = spec.floor_cores();
  rt_[id] = RtInfo{spec, floor, bw_bps};
  rt_reserved_cores_ += floor;
  allocator_.set_rt_floor(id, floor, bw_bps);
  cluster::Container& c = *entry->container;
  // Recovery re-installation finds the node-side periodic-job model still
  // running (fail static); re-arming it would reset the job phase.
  if (!(c.rt() == spec)) c.set_rt(spec);
  c.set_deadline_miss_observer([this, &c](sim::Duration remaining) {
    on_deadline_miss(c, remaining);
  });
  if (fresh) ++rt_admissions_;
  if (obs_ != nullptr) {
    obs_->h.rt_reserved_cores->set(rt_reserved_cores_);
    if (fresh) {
      obs_->h.rt_admitted->inc();
      obs::TraceEvent ev;
      ev.time = sim_.now();
      ev.kind = obs::EventKind::kRtAdmitted;
      ev.container = id;
      ev.node = node_tag(*entry);
      ev.after = floor;
      ev.detail = (static_cast<std::int64_t>(spec.runtime) << 32) |
                  static_cast<std::int64_t>(spec.period);
      obs_->record(ev);
    }
  }
  emit_rt(id, /*removed=*/false);
  // The reservation holds from this instant: lift the shadow limit to the
  // floor, shedding best-effort if the unallocated pool cannot cover it.
  raise_to_rt_floor(id, floor);
}

bool Controller::evict_rt(cluster::ContainerId id, int reason) {
  const auto it = rt_.find(id);
  if (it == rt_.end()) return false;
  ++rt_evictions_;
  if (obs_ != nullptr) {
    obs_->h.rt_evicted->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kRtEvicted;
    ev.container = id;
    const Entry* entry = find_entry(id);
    ev.node = entry != nullptr ? node_tag(*entry) : 0;
    ev.before = it->second.floor;
    ev.detail = reason;
    obs_->record(ev);
  }
  // A dead node's container keeps its periodic-job model fail-static (the
  // node is unreachable; resync re-derives the reservation if it returns);
  // every other eviction tears the node-side model down.
  remove_rt(id, /*clear_node=*/reason != 1);
  return true;
}

void Controller::remove_rt(cluster::ContainerId id, bool clear_node) {
  const auto it = rt_.find(id);
  if (it == rt_.end()) return;
  rt_reserved_cores_ = std::max(0.0, rt_reserved_cores_ - it->second.floor);
  rt_.erase(it);
  allocator_.clear_rt_floor(id);
  Entry* entry = find_entry(id);
  if (clear_node && entry != nullptr && entry->container != nullptr) {
    entry->container->clear_rt();
    entry->container->set_deadline_miss_observer(nullptr);
  }
  if (obs_ != nullptr) obs_->h.rt_reserved_cores->set(rt_reserved_cores_);
  emit_rt(id, /*removed=*/true);
}

void Controller::emit_rt(cluster::ContainerId id, bool removed) {
  if (!repl_hook_) return;
  ReplicationEvent rev;
  rev.kind = ReplicationEvent::Kind::kRt;
  rev.container = id;
  const auto it = rt_.find(id);
  if (it != rt_.end()) {
    rev.cores = it->second.floor;
    rev.bw_bps = it->second.bw_bps;
    rev.rt_runtime = it->second.spec.runtime;
    rev.rt_deadline = it->second.spec.deadline;
    rev.rt_period = it->second.spec.period;
  }
  rev.rt_removed = removed;
  emit_repl(rev);
}

void Controller::raise_to_rt_floor(cluster::ContainerId id, double floor) {
  // The floor is a promise the deadline model depends on core-for-core, so
  // this path tolerates only numeric dust (kRtFloorSlack), never the RPC
  // churn epsilon: a book left kCpuLimitEpsilon under the floor is a real
  // core-time shortfall that surfaces as an allocator-caused deadline miss.
  const double cur = allocator_.app().member_cores(id);
  if (cur + kRtFloorSlack >= floor) return;
  const double need = floor - cur;
  const double unalloc = std::max(0.0, allocator_.app().cpu_unallocated());
  if (unalloc < need) shed_best_effort(need - unalloc);
  const double applied = allocator_.app().set_member_cores(id, floor);
  if (applied - cur <= kRtFloorSlack) return;
  LoopCtx ctx;
  if (obs_ != nullptr) {
    obs_->h.cpu_grants->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kCpuGrant;
    ev.container = id;
    const Entry* entry = find_entry(id);
    ev.node = entry != nullptr ? node_tag(*entry) : 0;
    ev.before = cur;
    ev.after = applied;
    ctx.cause = obs_->record(ev);
  }
  push_cpu_limit(id, applied, ctx);
}

void Controller::shed_best_effort(double need) {
  if (need <= kRtFloorSlack) return;
  // Graceful degradation: best-effort members shed first, in ascending id
  // order, each shrunk toward the min_cores floor until the need is
  // covered. If best-effort alone cannot cover it (every co-tenant may be
  // RT-admitted), a second pass reclaims RT members' surplus above their
  // own floors — an admitted reservation protects its floor, never the
  // κ-granted headroom above it. Neither pass ever takes an RT container
  // below its floor.
  std::vector<cluster::ContainerId> ids;
  ids.reserve(index_.size());
  index_.for_each(
      [&](std::uint32_t, cluster::ContainerId id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  for (const bool rt_pass : {false, true}) {
    for (const cluster::ContainerId id : ids) {
      if (need <= kRtFloorSlack) return;
      if ((rt_.count(id) != 0) != rt_pass) continue;
      const Entry* entry = find_entry(id);
      if (entry == nullptr || entry->agent == nullptr) continue;
      if (node_dead(entry->agent->node().id())) continue;
      const double cur = allocator_.app().member_cores(id);
      const double lower =
          rt_pass ? std::max(config_.min_cores, rt_floor_of(id))
                  : config_.min_cores;
      const double target = std::max(lower, cur - need);
      // No churn guard here: a sub-epsilon residual is still owed to the
      // floor being raised, and skipping it strands the reservation just
      // under its promise (one extra shrink RPC per admission is cheap).
      if (cur - target <= kRtFloorSlack) continue;
      const double applied = allocator_.app().set_member_cores(id, target);
      need -= cur - applied;
      LoopCtx ctx;
      if (obs_ != nullptr) {
        obs_->h.cpu_shrinks->inc();
        obs::TraceEvent ev;
        ev.time = sim_.now();
        ev.kind = obs::EventKind::kCpuShrink;
        ev.container = id;
        ev.node = node_tag(*entry);
        ev.before = cur;
        ev.after = applied;
        ctx.cause = obs_->record(ev);
      }
      push_cpu_limit(id, applied, ctx);
    }
  }
}

void Controller::on_deadline_miss(cluster::Container& container,
                                  sim::Duration remaining) {
  ++deadline_misses_;
  if (obs_ == nullptr) return;
  obs_->h.deadline_misses->inc();
  obs::TraceEvent ev;
  ev.time = sim_.now();
  ev.kind = obs::EventKind::kDeadlineMiss;
  ev.container = container.id();
  const Entry* entry = find_entry(container.id());
  ev.node = entry != nullptr ? node_tag(*entry) : 0;
  ev.before = container.rt().floor_cores();
  ev.after = allocator_.app().is_member(container.id())
                 ? allocator_.app().member_cores(container.id())
                 : container.cpu_cgroup().limit_cores();
  ev.detail = static_cast<std::int64_t>(remaining);
  obs_->record(ev);
}

void Controller::settle_credits() {
  // The ONLY site that charges usage-based credits. Settling on the
  // Controller's own clock — never per telemetry RPC — makes every charge
  // exactly-once under retransmits and un-dodgeable by a tenant
  // suppressing its own reports: the sweep reads the allocator's book
  // state, which the tenant cannot forge.
  if (crashed_) return;
  const std::size_t members = allocator_.app().member_count();
  if (members == 0) return;
  const double pool = allocator_.app().cpu_limit();
  const double fair = pool / static_cast<double>(members);
  if (fair <= 0.0) return;
  const double tol = fair * config_.credit_tolerance;
  const double period_s = sim::to_seconds(config_.cfs_period);
  // Pool pressure: taking capacity nobody else wants is cheap; taking it
  // from a contended pool costs full price (Karma's price signal).
  const double pressure =
      pool > 0.0 ? allocator_.app().cpu_allocated() / pool : 0.0;
  const std::int64_t cap = CreditLedger::to_micro(config_.credit_cap);
  // Memory is rented, not bought: the one-shot OOM-grant charge is only an
  // entry fee, and a phantom-OOM farmer who idles on CPU would otherwise
  // mint enough every sweep to bankroll the farm forever. Holding bytes
  // above the memory fair share costs the same fair-share-seconds rate as
  // holding cores above the CPU fair share.
  const double mem_pool = static_cast<double>(allocator_.app().mem_limit());
  const double fair_mem = mem_pool / static_cast<double>(members);
  const double mem_pressure =
      mem_pool > 0.0
          ? static_cast<double>(allocator_.app().mem_allocated()) / mem_pool
          : 0.0;

  // std::map keys: the sweep settles in ascending ContainerId order, so
  // every trace and WAL byte is seed-stable.
  std::vector<cluster::ContainerId> ids;
  ids.reserve(credits_.size());
  for (const auto& [id, acct] : credits_.accounts()) ids.push_back(id);

  for (const cluster::ContainerId id : ids) {
    if (!allocator_.app().is_member(id)) continue;
    const Entry* entry = find_entry(id);
    // Dead-node quarantine: a frozen share is not the tenant's choice; no
    // charges, no earnings, no decay until the node returns or is reclaimed.
    if (entry != nullptr && entry->agent != nullptr &&
        node_dead(entry->agent->node().id())) {
      continue;
    }
    const double cur = allocator_.app().member_cores(id);
    const std::int64_t before_bal = credits_.balance_micro(id);

    if (cur > fair + tol) {
      // Above fair share: charge (cur-fair)/fair fair-share-seconds per
      // second held, scaled by pool pressure; debt floored at -credit_cap.
      const std::int64_t want =
          CreditLedger::to_micro((cur - fair) / fair * pressure * period_s);
      const std::int64_t charge = std::min(
          want, std::max<std::int64_t>(0, before_bal + cap));
      if (charge > 0) {
        credits_.burn(id, charge);
        if (obs_ != nullptr) {
          obs_->h.credit_charges->inc();
          obs::TraceEvent ev;
          ev.time = sim_.now();
          ev.kind = obs::EventKind::kCreditCharge;
          ev.container = id;
          ev.node = entry != nullptr ? node_tag(*entry) : 0;
          ev.before = CreditLedger::to_credits(before_bal);
          ev.after = CreditLedger::to_credits(credits_.balance_micro(id));
          ev.detail = static_cast<std::int64_t>(
              std::llround((cur - fair) * 1000.0));  // above-share millicores
          obs_->record(ev);
        }
        emit_credit(id, /*removed=*/false);
      }
      const std::int32_t streak = credits_.bump_streak(id);
      if (credits_.balance_micro(id) <= 0 &&
          streak >= config_.credit_decay_grace) {
        // Credit-exhausted and persistently above fair share: κ-damped
        // decay toward the static fair share — the overclaimer converges
        // to what admission would have given it, never below. An admitted
        // RT floor outranks the decay: the reservation's priority was paid
        // at admission, not borrowed from this ledger.
        const double target = std::max(
            {config_.min_cores, allocator_.rt_floor(id), fair,
             cur - config_.kappa * (cur - fair)});
        if (cur - target > kCpuLimitEpsilon) {
          const double applied = allocator_.app().set_member_cores(id, target);
          LoopCtx ctx;
          if (obs_ != nullptr) {
            obs_->h.greedy_throttles->inc();
            obs::TraceEvent ev;
            ev.time = sim_.now();
            ev.kind = obs::EventKind::kGreedyThrottle;
            ev.container = id;
            ev.node = entry != nullptr ? node_tag(*entry) : 0;
            ev.before = cur;
            ev.after = applied;
            ev.detail = streak;
            ctx.cause = obs_->record(ev);
          }
          push_cpu_limit(id, applied, ctx);
        }
      }
    } else {
      if (cur < fair - tol) {
        // Below fair share: earn at the symmetric rate, capped so priority
        // cannot be banked indefinitely (anti-hoarding).
        const std::int64_t earned = credits_.mint(
            id, CreditLedger::to_micro((fair - cur) / fair * period_s), cap);
        if (earned > 0) {
          if (obs_ != nullptr) {
            obs_->h.credit_refunds->inc();
            obs::TraceEvent ev;
            ev.time = sim_.now();
            ev.kind = obs::EventKind::kCreditRefund;
            ev.container = id;
            ev.node = entry != nullptr ? node_tag(*entry) : 0;
            ev.before = CreditLedger::to_credits(before_bal);
            ev.after = CreditLedger::to_credits(credits_.balance_micro(id));
            ev.detail = static_cast<std::int64_t>(
                std::llround((fair - cur) * 1000.0));  // below-share mcores
            obs_->record(ev);
          }
          emit_credit(id, /*removed=*/false);
        }
      }
      credits_.reset_streak(id);
    }

    // Memory rent, independent of the CPU branch (and of the decay streak,
    // which stays a CPU concept — memory hoarders are drained here and
    // stopped at the next grant by the Υ-gate in Allocator::on_oom_event).
    const double cur_mem =
        static_cast<double>(allocator_.app().member_mem(id));
    if (fair_mem > 0.0 &&
        cur_mem > fair_mem * (1.0 + config_.credit_tolerance)) {
      const std::int64_t bal = credits_.balance_micro(id);
      const std::int64_t want = CreditLedger::to_micro(
          (cur_mem - fair_mem) / fair_mem * mem_pressure * period_s);
      const std::int64_t rent =
          std::min(want, std::max<std::int64_t>(0, bal + cap));
      if (rent > 0) {
        credits_.burn(id, rent);
        if (obs_ != nullptr) {
          obs_->h.credit_charges->inc();
          obs::TraceEvent ev;
          ev.time = sim_.now();
          ev.kind = obs::EventKind::kCreditCharge;
          ev.container = id;
          ev.node = entry != nullptr ? node_tag(*entry) : 0;
          ev.before = CreditLedger::to_credits(bal);
          ev.after = CreditLedger::to_credits(credits_.balance_micro(id));
          ev.detail =
              static_cast<std::int64_t>(cur_mem - fair_mem);  // bytes over
          obs_->record(ev);
        }
        emit_credit(id, /*removed=*/false);
      }
    }
  }
}

}  // namespace escra::core
