// Escra tunables (Sections III, IV-C, IV-D).
//
// Parameter names follow the paper: κ (kappa) and γ (gamma) govern CPU
// scale-down, Υ (upsilon) governs CPU scale-up rate, δ (delta) is the memory
// reclamation safe margin, σ (sigma) the share of global memory withheld at
// deployment for OOM events, and n the sliding-window length in CFS periods.
//
// Two places where the paper under-specifies and this implementation pins an
// interpretation (documented in DESIGN.md):
//   * Scale-up magnitude. The paper's equation multiplies the windowed
//     throttle mean by the application's unallocated runtime and Υ; taken
//     literally the product exceeds the free pool after one throttled
//     period, letting a single container drain it. We keep the Υ-gated
//     rate but clamp each grant to min(pool, current · Υ/20):
//     at the paper's Υ=20 a persistently throttled container doubles per
//     period (reaching any demand within a few 100 ms periods), Υ=35 (the
//     bursty serverless setting) grows ~2.75x, and the per-period
//     scale-down reclaims any overshoot.
//   * γ's unit. The scale-down trigger compares per-period unused runtime
//     against γ; with γ=0.2 we read it in *cores*, i.e. trigger when more
//     than 0.2 cores' worth of the period went unused.
#pragma once

#include <cstddef>

#include "memcg/mem_cgroup.h"
#include "sim/time.h"

namespace escra::core {

struct EscraConfig {
  // --- CPU allocation (Section IV-D1) ---
  // Scale-down rate: fraction of the windowed mean unused runtime removed.
  double kappa = 0.8;
  // Scale-down trigger, in cores of unused runtime in the last period.
  double gamma = 0.2;
  // Scale-up rate; see interpretation note above.
  double upsilon = 20.0;
  // Sliding-window length n, in CFS periods.
  std::size_t window_periods = 5;
  // CFS period (and telemetry report period, Section VI-I).
  sim::Duration cfs_period = sim::milliseconds(100);
  // Floor below which a container's CPU limit is never pushed.
  double min_cores = 0.05;

  // --- memory allocation (Sections IV-C, IV-D2) ---
  // Reclamation safe margin δ ("empirically set to 50 MiB").
  memcg::Bytes delta = 50 * memcg::kMiB;
  // Periodic reclamation interval ("every 5 seconds").
  sim::Duration reclaim_interval = sim::seconds(5);
  // Fraction of the global memory limit withheld at deployment (σ).
  double sigma = 0.2;
  // Fixed grant handed to a container on an OOM event ("a fixed number
  // pages of memory"): 4096 pages.
  memcg::Bytes oom_grant = 4096 * memcg::kPageSize;  // 16 MiB
  // Floor below which a container's memory limit is never reclaimed.
  memcg::Bytes min_mem = 16 * memcg::kMiB;

  // --- bandwidth allocation (beyond the paper: network bandwidth as a
  //     third managed resource, shaped by src/bw token buckets; the math
  //     mirrors the CPU arm with rates in bytes/s) ---
  // Scale-down rate for bandwidth (fraction of mean unused rate removed).
  double bw_kappa = 0.8;
  // Scale-down trigger: unused rate in the last period, bytes/s (100 Mbit).
  double bw_gamma = 12.5e6;
  // Scale-up rate; same Υ-gated interpretation as CPU.
  double bw_upsilon = 20.0;
  // Floor below which a shaped container's rate is never pushed, and the
  // admission floor: a container the allocator cannot grant this much
  // stays unshaped rather than being starved (10 Mbit/s).
  double bw_min_rate = 1.25e6;

  // --- defaults for containers that register after deployment (serverless
  //     pods); mirrors the OpenWhisk per-action pod defaults (Section VI-F).
  double late_join_cores = 1.0;
  memcg::Bytes late_join_mem = 256 * memcg::kMiB;
  // Bandwidth granted to a late joiner when shaping is enabled (bytes/s).
  double late_join_bw = 12.5e6;

  // --- control-plane reliability (beyond the paper: the paper only runs on
  //     a healthy control plane; these govern the fail-static + sub-second
  //     reconvergence behavior under partitions and crashes) ---
  // First retransmit of an unacked limit update (the RPC round trip is
  // ~300 us, so 2 ms is a comfortable ack deadline).
  sim::Duration rpc_retry_timeout = sim::milliseconds(2);
  // Cap for the exponential retransmit backoff.
  sim::Duration rpc_backoff_max = sim::milliseconds(128);
  // Agent -> Controller heartbeat cadence (rides the gRPC channel).
  sim::Duration heartbeat_interval = sim::milliseconds(100);
  // Controller declares a node dead after this much heartbeat silence
  // (~3 missed heartbeats).
  sim::Duration liveness_timeout = sim::milliseconds(350);
  // A dead node's pool share is held (quarantined) this long before being
  // reclaimed for the live nodes.
  sim::Duration quarantine_grace = sim::seconds(2);
  // Agent lease: after this much Controller silence the Agent enters
  // fail-static — containers keep running at their last-applied limits.
  sim::Duration agent_lease = sim::milliseconds(500);
  // Coalesce all limit updates bound for one node within a tick into a
  // single batched RPC with per-entry acks (same exactly-once slot
  // semantics; retransmits stay per-entry). false restores the legacy
  // one-RPC-per-update wire behavior.
  bool batch_limit_updates = true;

  // --- Karma-style credit defense (beyond the paper: strategy-proofness
  //     against lying tenants, after Karma, arXiv:2305.17222). Off by
  //     default; set credit_defense before constructing EscraSystem. ---
  bool credit_defense = false;
  // Initial credit balance, in fair-share-seconds: one unit buys one
  // second of the container's full fair share above the fair share. Sized
  // so an honest bursty tenant keeps sub-second elasticity out of the box.
  double credit_init = 2.0;
  // Earned-credit cap (fair-share-seconds); bounds how long a tenant can
  // bank priority, Karma's anti-hoarding clamp.
  double credit_cap = 30.0;
  // Fractional slack above the fair share tolerated before the settle
  // sweep charges credits or (at non-positive balance) decays the limit.
  double credit_tolerance = 0.10;
  // Settle sweeps a credit-exhausted container must stay above fair share
  // before its CPU limit is decayed toward the static fair share.
  int credit_decay_grace = 3;

  // --- real-time container class (beyond the paper: mixed-criticality
  //     co-location after polena/polenaRT). An admitted RT container holds a
  //     (runtime, deadline, period) reservation whose CPU floor
  //     runtime / min(deadline, period) the allocator may never reclaim. ---
  // Utilization bound for RT admission: the summed RT floors on a node (and
  // across a pool / shard slice) may not exceed this fraction of its cores.
  // 0.7 leaves headroom for best-effort work and for CFS quantization so
  // admitted reservations are actually schedulable, not merely booked.
  double rt_util_bound = 0.7;
  // Fraction of a node's NIC rate RT bandwidth reservations may claim (the
  // bw arm's admission bound, applied when a reservation carries bw_bps).
  double rt_bw_bound = 0.5;
};

}  // namespace escra::core
