// The Escra Controller (Figure 1 circle 2, Figure 3; Section IV-C).
//
// The logically centralized component that brings the system together. It
// owns one Agent per worker node, keeps the pool of registered containers,
// ingests the per-period CPU telemetry each container's kernel hook streams
// over the (simulated) network, forwards it to the Resource Allocator, and
// carries out the allocator's decisions via RPCs to the Agents. It also
// launches the periodic memory-reclamation loop (every 5 s) and services
// pre-OOM memory requests on the containers' persistent kernel sockets.
//
// Reliability layer (beyond the paper): limit updates are sequence-numbered
// and retransmitted with exponential backoff until the Agent acks (the Agent
// discards stale/duplicate sequences, so retries are idempotent); Agents
// heartbeat in and the Controller tracks per-node liveness — a dead node's
// pool share is quarantined, then reclaimed for the live nodes; and the
// Controller itself can crash (soft state — registry, pool accounting,
// allocator windows — is lost) and restart, rebuilding everything by
// resyncing each Agent's managed-container snapshot. Containers on the far
// side of any of these faults fail static: their cgroups keep the last
// applied limits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bw/shaper.h"
#include "cfs/rt.h"
#include "cluster/container.h"
#include "cluster/node.h"
#include "core/agent.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/container_index.h"
#include "core/credit_ledger.h"
#include "core/messages.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"

namespace escra::core {

class Controller {
 public:
  Controller(sim::Simulation& sim, net::Network& network,
             const EscraConfig& config, ResourceAllocator& allocator);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // --- agents ---
  // Creates (or returns) the Agent for a node.
  Agent& agent_for(cluster::Node& node);
  // The node's Agent, or nullptr if none exists yet.
  Agent* agent_at(cluster::NodeId node);

  // --- container registration (Section IV-A / IV-B) ---
  //
  // Registers a container: commits its limits against the global pool,
  // points the node's Agent at it, applies the starting limits to the
  // cgroups, and installs the two kernel hooks (per-period CPU telemetry,
  // pre-OOM trap). `cores`/`mem` of 0 mean "late joiner": the container
  // gets the configured late-join defaults clamped to the unallocated pool.
  void register_container(cluster::Container& container, cluster::Node& node,
                          double cores, memcg::Bytes mem);
  void deregister_container(cluster::Container& container);
  bool is_registered(cluster::ContainerId id) const {
    return index_.contains(id);
  }
  std::size_t registered_count() const { return index_.size(); }

  // Starts the periodic loops: reclamation, liveness checks, and every
  // Agent's heartbeats.
  void start();
  void stop();

  // --- warm-standby replication (controller HA, src/ha) ---
  //
  // Every durable state change the leader makes — container registration /
  // deregistration (pool commitments), desired-state slot opens and acks,
  // shadow-limit moves, node-liveness transitions — is mirrored to an
  // optional replication hook as a flat record. src/ha turns the stream into
  // a sequence-numbered WAL shipped to the standbys; core stays ignorant of
  // the transport.
  struct ReplicationEvent {
    enum class Kind {
      kRegister,    // container joined: committed cores/mem/bw
      kDeregister,  // container left (deregistered or quarantine-reclaimed)
      kCpuSlot,     // desired-state CPU slot opened/superseded (seq, cores)
      kMemSlot,     // desired-state memory slot opened/superseded (seq, mem)
      kAckSlot,     // slot acked by the Agent (seq closed it)
      kMemShadow,   // shadow memory limit moved without a slot (reclaim)
      kNodeHealth,  // node liveness / agent-incarnation transition
      kBwSlot,      // desired-state bandwidth slot opened/superseded (seq, bw)
      kCredit,      // credit-ledger account moved (balance + totals image)
      kRt,          // RT reservation admitted (absolute image) or revoked
    };
    Kind kind = Kind::kRegister;
    cluster::ContainerId container = 0;
    cluster::NodeId node = 0;
    std::uint64_t seq = 0;  // slot sequence number (k*Slot/kAckSlot)
    // Resource of the slot being acked (kAckSlot). `is_mem` predates the
    // three-resource slot space and stays in sync with `resource` for
    // CPU/memory consumers.
    bool is_mem = false;
    Resource resource = Resource::kCpu;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;                  // kRegister / kBwSlot
    std::uint64_t agent_incarnation = 0;  // kNodeHealth
    bool node_dead = false;               // kNodeHealth
    // kCredit: the account's absolute balance plus the ledger's running
    // mint/burn totals (absolute images keep WAL replay a pure fold).
    std::int64_t credit_micro = 0;
    std::int64_t credit_minted = 0;
    std::int64_t credit_burned = 0;
    bool credit_removed = false;  // account closed (container left)
    // kRt: the reservation's absolute (runtime, deadline, period) image —
    // `cores` carries the admitted floor, `bw_bps` the bandwidth
    // reservation. rt_removed marks an explicit eviction.
    sim::Duration rt_runtime = 0;
    sim::Duration rt_deadline = 0;
    sim::Duration rt_period = 0;
    bool rt_removed = false;
  };
  using ReplicationHook = std::function<void(const ReplicationEvent&)>;
  void set_replication_hook(ReplicationHook hook) {
    repl_hook_ = std::move(hook);
  }

  // Takeover: a standby installs its replicated state into this controller
  // seat and assumes leadership under `epoch` (strictly above every epoch
  // this seat has used). Unlike restart(), no snapshot round-trips to the
  // Agents are needed: the registry, pool commitments and node health are
  // rebuilt from the replica, and every still-open desired-state slot is
  // re-issued with a fresh `epoch`-packed sequence — the corrective updates
  // double as the convergence traffic, so takeover cost is one one-way RPC
  // per divergent container instead of a full resync. Works on a crashed
  // seat (leader death) or a live one (a deposed leader being superseded:
  // crash() first). `cause` threads the kLeaderElected trace event into the
  // replayed updates' causal chains.
  struct TakeoverContainer {
    cluster::ContainerId id = 0;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;  // replicated shadow bandwidth rate; 0 = unshaped
    // Replicated RT reservation (rt.valid() false when best-effort); the
    // bandwidth arm of the reservation rides rt_bw_bps.
    cfs::RtSpec rt;
    double rt_bw_bps = 0.0;
    // Resolved by the caller (the replica carries ids; src/ha resolves them
    // against the Cluster before installing). Entries with a null pointer —
    // the container vanished while the replica was in flight — are skipped.
    cluster::Container* container = nullptr;
    cluster::Node* node = nullptr;
  };
  struct TakeoverSlot {
    cluster::ContainerId id = 0;
    bool is_mem = false;  // kept in sync with `resource` for CPU/memory
    Resource resource = Resource::kCpu;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;
    // The slot's current sequence number. Informational for takeover()
    // (replay always stamps fresh new-epoch sequences); used by src/ha to
    // seed its book and to model a deposed leader's in-flight retransmits.
    std::uint64_t seq = 0;
  };
  struct TakeoverNode {
    cluster::NodeId node = 0;
    std::uint64_t agent_incarnation = 0;
    bool dead = false;
  };
  void takeover(std::uint64_t epoch,
                const std::vector<TakeoverContainer>& containers,
                const std::vector<TakeoverSlot>& slots,
                const std::vector<TakeoverNode>& nodes,
                obs::EventId cause = 0);

  // Leader-side state snapshots (sorted, deterministic), used by src/ha to
  // seed the replication book when attaching to a live system.
  std::vector<TakeoverContainer> registry_snapshot();
  std::vector<TakeoverSlot> pending_slots() const;
  std::vector<TakeoverNode> health_snapshot() const;
  std::vector<Agent*> agents();

  // The controller epoch stamped into update sequence numbers. Advances on
  // restart (+1), on HA takeover (to the election's epoch), and when the
  // 48-bit per-epoch sequence counter is about to wrap.
  std::uint64_t epoch() const { return incarnation_; }
  // Test hook (satellite: 48-bit wrap guard): plants the per-epoch sequence
  // counter so tests can drive next_seq() to the wrap boundary cheaply.
  void set_update_seq_for_test(std::uint64_t counter) {
    update_seq_ = counter;
  }
  // Test hook (tests/container_index_test.cc): the process-local dense slot
  // interned for `id`, or ContainerIndex::kInvalid when unregistered. Slots
  // are never serialized — this exists only to lock the determinism
  // property (takeover replay rebuilds identical slot layouts).
  std::uint32_t container_slot_for_test(cluster::ContainerId id) const {
    return index_.find(id);
  }

  // --- crash / restart (fault injection) ---
  // crash(): the Controller process dies. All soft state — registry, pool
  // commitments, allocator windows, pending retransmits, liveness tracking —
  // is lost; kernel hooks and cgroup limits live on the nodes and persist
  // (the cluster fails static). Telemetry, OOM requests, and heartbeats
  // arriving while crashed are dropped on the floor.
  // restart(): comes back empty and rebuilds the registry and pool
  // accounting by pulling each Agent's managed-container snapshot (resync).
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  // --- bandwidth plane (third managed resource, src/bw) ---
  //
  // Arms bandwidth management: the Controller keeps the shaper pointer for
  // rate reads and admission clamping, and starts the shaper's per-period
  // sampler, whose samples travel the kBwTelemetry channel into
  // on_bw_stats — the bandwidth analogue of the CFS period hook. The
  // Distributed Container's bandwidth pool (set_bw_limit) must be armed
  // separately; EscraSystem::enable_bandwidth does both.
  void enable_bandwidth(bw::ClusterShaper& shaper);
  bool bandwidth_enabled() const { return bw_shaper_ != nullptr; }
  bw::ClusterShaper* bw_shaper() { return bw_shaper_; }
  // The per-container bootstrap rate granted at registration (bytes/s);
  // containers registering while the plan is 0 use the late-join default.
  void set_bw_plan(double per_container_bps) { bw_plan_ = per_container_bps; }

  // Bandwidth telemetry ingress (normally invoked via the network by the
  // shaper sampler wiring in enable_bandwidth).
  void on_bw_stats(const bw::BwSample& sample);

  // --- telemetry & events (normally invoked via the network) ---
  void on_cpu_stats(const CpuStatsMsg& stats);
  // Hands the Controller a CPU decision the Resource Allocator already made
  // (src/shard's parallel per-shard sweep runs each shard's allocator on a
  // worker thread — shard state is disjoint — then applies the merged
  // decision stream serially in shard order). Records the grant/shrink
  // event and opens the sequenced desired-state slot exactly as
  // ingest_cpu_stats would after an inline decision. `before` is the shadow
  // limit the allocator saw when it decided.
  void apply_cpu_decision(cluster::ContainerId id, double before,
                          double cores, sim::TimePoint fire_time);
  // Pre-OOM request: returns true if the limit was raised enough for the
  // charge to succeed (the container survives). Fails (container dies by
  // the kernel's normal OOM path) when the Controller is crashed or
  // partitioned from the node.
  bool handle_oom(cluster::Container& container, memcg::Bytes charge,
                  memcg::Bytes shortfall);
  // Heartbeat ingress (normally invoked via the network by Agents).
  void on_heartbeat(cluster::NodeId node, std::uint64_t incarnation);

  // Emergency reclamation sweep across every agent, synchronously (used on
  // OOM when the pool is dry). Returns total ψ. Crashed or partitioned
  // nodes are skipped.
  memcg::Bytes run_emergency_reclaim();

  // --- observability ---
  // Attaches (or detaches, with null) a control-plane observer: decision
  // trace events with causal links, metric counters, and the per-stage
  // control-loop latency profile. Re-wires already-created Agents and
  // already-registered containers, so attaching to a live system works;
  // with no observer every hook is a single null-pointer test.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() { return obs_; }

  // --- Karma-style credit defense (config.credit_defense, src/adv) ---
  //
  // The ledger lives here because the Controller owns the clock (settle
  // sweep every CFS period), the trace, and the replication stream; the
  // allocator reads it via a const pointer to Υ-gate grants.
  const CreditLedger& credits() const { return credits_; }
  // Warm-standby takeover installs the replicated balances (call right
  // after takeover(); synchronous, so no settle tick intervenes). Re-emits
  // one kCredit record per account so the new leader's stream rebuilds the
  // standbys' images.
  void install_credits(const std::vector<CreditLedger::Snapshot>& accounts,
                       std::int64_t minted, std::int64_t burned);

  // --- real-time admission control (mixed-criticality class) ---
  //
  // An RT reservation is a (runtime, deadline, period) triple; its CPU
  // floor is runtime / min(deadline, period) cores. Admission is a
  // utilization-bound test at three scopes — the container's node
  // (rt_util_bound x node cores), the pool's non-borrowed RT capacity
  // (rt_util_bound x rt_capacity), and, when a bandwidth reservation
  // rides along, the node NIC (rt_bw_bound x nic_bps). Once admitted, no
  // allocator decision — κ scale-down, credit decay, greedy throttling —
  // may take the container below its floor, and the reservation is only
  // ever revoked by an explicit kRtEvicted decision (release, node death),
  // never silently.
  enum class RtAdmit {
    kAdmitted,
    kRejectedNode,   // node utilization bound exceeded
    kRejectedPool,   // pool RT-capacity bound exceeded
    kRejectedBw,     // NIC bandwidth bound exceeded (or bw plane off)
    kRejectedState,  // not registered / already admitted / invalid / crashed
  };
  RtAdmit admit_rt(cluster::ContainerId id, const cfs::RtSpec& spec,
                   double bw_bps = 0.0);
  // Revokes an admitted reservation (trace kRtEvicted, reason: 0 released,
  // 1 node dead/quarantined, 2 operator). The container survives as
  // best-effort unless the caller also deregisters it. Returns false if the
  // id holds no reservation.
  bool evict_rt(cluster::ContainerId id, int reason = 0);
  bool rt_admitted(cluster::ContainerId id) const {
    return rt_.count(id) != 0;
  }
  // The admitted CPU floor, or 0 for best-effort containers.
  double rt_floor_of(cluster::ContainerId id) const;
  double rt_reserved_cores() const { return rt_reserved_cores_; }
  std::size_t rt_count() const { return rt_.size(); }
  std::uint64_t rt_admissions() const { return rt_admissions_; }
  std::uint64_t rt_rejections() const { return rt_rejections_; }
  std::uint64_t rt_evictions() const { return rt_evictions_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  // The pool's non-borrowed RT capacity base (cores). The sharded control
  // plane pins this to each shard's base slice so borrowed pool is never
  // counted toward RT headroom; 0 (default) means "use the live pool
  // limit" (single-controller deployments, where nothing is borrowed).
  void set_rt_capacity(double cores) { rt_capacity_ = cores; }
  double rt_capacity() const;

  // --- counters ---
  std::uint64_t stats_received() const { return stats_received_; }
  std::uint64_t limit_updates_sent() const { return limit_updates_; }
  std::uint64_t oom_events() const { return oom_events_; }
  std::uint64_t oom_rescues() const { return oom_rescues_; }
  memcg::Bytes total_reclaimed() const { return total_reclaimed_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t resyncs() const { return resyncs_; }
  // Limit updates issued but not yet acked by their Agent.
  std::size_t pending_updates() const { return open_pending_; }
  bool node_dead(cluster::NodeId node) const;

  ResourceAllocator& allocator() { return allocator_; }

 private:
  struct Entry {
    cluster::Container* container = nullptr;
    Agent* agent = nullptr;
  };
  // Trace/latency context threaded from telemetry fire to limit apply.
  struct LoopCtx {
    obs::EventId cause = 0;        // decision (or throttle) trace event
    sim::TimePoint fire = 0;       // telemetry left the kernel hook
    sim::TimePoint ingest = 0;     // Controller received the statistic
    sim::TimePoint decide = 0;     // Allocator returned the decision
    bool profile = false;          // record the loop when the RPC lands
  };
  // One desired-state slot per (container, resource): the newest intended
  // limit, its sequence number, and the retransmit timer. The *external*
  // identity of a slot — what the WAL, the replicas, and the checker see —
  // stays `container id * 4 + resource`; internally the rows live in a
  // dense vector indexed by `registry slot * 3 + resource` so the hot
  // push/ack/timeout path is a direct load. A superseding decision
  // overwrites the slot (the newest value wins); the ack for the newest
  // sequence clears it.
  struct Pending {
    std::uint64_t seq = 0;
    Resource resource = Resource::kCpu;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;
    int attempts = 0;
    sim::Duration backoff = 0;
    sim::EventHandle timer;
    obs::EventId rpc_event = 0;  // original kRpcIssued (causal anchor)
    LoopCtx ctx;
    bool queued = false;  // sitting in a NodeBatch awaiting flush
  };
  // Per-node coalescing buffer (config_.batch_limit_updates): every limit
  // push within one tick bound for the same node rides a single batched RPC
  // with per-entry acks. The flush runs same-tick (schedule_after(0)) after
  // all already-queued work, so a whole telemetry period's decisions for a
  // node coalesce without adding latency.
  struct NodeBatch {
    std::vector<std::uint64_t> keys;  // external update keys, push order
    sim::EventHandle flush;
    bool scheduled = false;
  };
  // Per-node liveness bookkeeping (keyed by heartbeats).
  struct NodeHealth {
    sim::TimePoint last_heartbeat = 0;
    std::uint64_t agent_incarnation = 0;
    bool dead = false;
    sim::EventHandle reclaim_timer;  // quarantine-expiry reclaim
  };

  enum class RegisterMode { kBootstrap, kResync, kTakeover };
  // `bw_want` is the recovery-mode bandwidth rate to re-admit (snapshot or
  // replica value); bootstrap ignores it and derives the rate from the plan.
  // `rt`/`rt_bw` re-install a replicated RT reservation on the takeover
  // path (resync re-derives the reservation from node-side container state
  // instead — the node is the source of truth a restarted seat can reach).
  void register_impl(cluster::Container& container, cluster::Node& node,
                     double cores, memcg::Bytes mem, RegisterMode mode,
                     double bw_want = 0.0, const cfs::RtSpec* rt = nullptr,
                     double rt_bw = 0.0);
  void ingest_cpu_stats(const CpuStatsMsg& stats, obs::EventId cause,
                        sim::TimePoint fire_time);
  void push_cpu_limit(cluster::ContainerId id, double cores, LoopCtx ctx);
  void push_mem_limit(cluster::ContainerId id, memcg::Bytes limit,
                      LoopCtx ctx);
  void push_bw_limit(cluster::ContainerId id, double rate_bps, LoopCtx ctx);
  void ingest_bw_stats(const bw::BwSample& sample);
  // NIC headroom left on a node for one container's rate: nic_bps minus
  // every *other* attached container's rate, counting for each the larger
  // of the applied shaper rate and the book's shadow rate (so in-flight
  // grants and unlanded shrinks both stay accounted).
  double node_bw_headroom(cluster::NodeId node,
                          cluster::ContainerId except) const;
  // Initial bandwidth admission for a registering container. Grants
  // min(want, pool, NIC headroom) unless that falls below the bw_min_rate
  // admission floor, in which case the container stays unshaped.
  void admit_bw(cluster::Container& container, cluster::Node& node,
                double want, RegisterMode mode);
  void run_periodic_reclaim();
  // Credit defense internals. settle_credits runs every CFS period and is
  // the ONLY site that charges usage-based credits — charging at the sweep
  // rather than per telemetry RPC makes charges exactly-once under
  // retransmits and un-dodgeable by suppressing one's own telemetry.
  void settle_credits();
  void open_credit_account(cluster::ContainerId id);
  void close_credit_account(cluster::ContainerId id);
  void emit_credit(cluster::ContainerId id, bool removed);
  // RT admission internals. install_rt commits an already-checked
  // reservation: books the floor into the allocator, arms the node-side
  // periodic-job model and the deadline-miss observer, and replicates the
  // image (kRt). `fresh` distinguishes a new admission (trace + counter)
  // from recovery re-installation (resync/takeover), which must not
  // double-count.
  void install_rt(cluster::ContainerId id, const cfs::RtSpec& spec,
                  double bw_bps, bool fresh);
  // Drops the reservation's controller-side state (floor, gauge, books);
  // the caller decides whether a kRtEvicted trace precedes it.
  // `clear_node` false leaves the node-side periodic-job model running
  // fail-static (dead-node eviction: the node is unreachable).
  void remove_rt(cluster::ContainerId id, bool clear_node = true);
  // Frees `need` cores of pool headroom by shrinking best-effort members
  // toward min_cores (ascending id order, RT floors untouched): graceful
  // degradation sheds best-effort first, never the admitted RT set.
  void shed_best_effort(double need);
  // Raises the container's shadow limit to its floor (shedding best-effort
  // if the pool is dry) so the reservation holds from admission onward.
  void raise_to_rt_floor(cluster::ContainerId id, double floor);
  double node_rt_reserved(cluster::NodeId node,
                          cluster::ContainerId except) const;
  double node_rt_bw_reserved(cluster::NodeId node,
                             cluster::ContainerId except) const;
  void on_deadline_miss(cluster::Container& container,
                        sim::Duration remaining);
  void record_rt_rejected(cluster::ContainerId id, double floor,
                          std::int64_t reason);
  void emit_rt(cluster::ContainerId id, bool removed);
  // Rejects physically-impossible telemetry (trace kTelemetryRejected).
  bool telemetry_plausible(const CpuStatsMsg& stats, const Entry* entry);
  std::uint32_t node_tag(const Entry& entry) const;
  void record_reclaims(Agent& agent,
                       const std::vector<Agent::Resize>& resizes);

  // --- reliability internals ---
  static std::uint64_t update_key(cluster::ContainerId id, Resource r) {
    return static_cast<std::uint64_t>(id) * 4 +
           static_cast<std::uint64_t>(r);
  }
  std::uint64_t next_seq() {
    // The per-epoch counter lives in the low 48 bits. Rolling it over into
    // the epoch field would make a later update compare *lower* than an
    // earlier one and break the Agents' monotonic-seq check, so bump the
    // epoch and restart the counter just before the wrap instead — packed
    // comparison stays strictly monotonic across the boundary.
    if (update_seq_ >= kUpdateSeqMask) {
      ++incarnation_;
      update_seq_ = 0;
    }
    return pack_update_seq(incarnation_, ++update_seq_);
  }
  void emit_repl(const ReplicationEvent& ev) {
    if (repl_hook_) repl_hook_(ev);
  }
  static net::EndpointId ep(cluster::NodeId node) {
    return static_cast<net::EndpointId>(node);
  }
  bool reachable(cluster::NodeId node) const;
  // Registry row for a container, or nullptr if unregistered.
  Entry* find_entry(cluster::ContainerId id) {
    const std::uint32_t slot = index_.find(id);
    return slot == ContainerIndex::kInvalid ? nullptr : &registry_[slot];
  }
  // Open desired-state slot for an external key, or nullptr.
  Pending* find_pending(std::uint64_t key) {
    const std::uint32_t slot =
        index_.find(static_cast<cluster::ContainerId>(key >> 2));
    if (slot == ContainerIndex::kInvalid) return nullptr;
    const std::size_t idx = static_cast<std::size_t>(slot) * 3 + (key & 3);
    return pending_open_[idx] != 0 ? &pending_[idx] : nullptr;
  }
  // Routes an opened slot to the wire: directly (legacy one-RPC-per-update)
  // or via the node's coalescing batch.
  void dispatch_update(std::uint64_t key, cluster::NodeId node);
  void flush_node_batch(cluster::NodeId node);
  void send_pending(std::uint64_t key);
  void on_update_timeout(std::uint64_t key, std::uint64_t seq);
  void on_update_ack(std::uint64_t key, std::uint64_t seq,
                     cluster::NodeId node);
  void cancel_pending_for(cluster::ContainerId id);
  void run_liveness_check();
  void declare_dead(cluster::NodeId node, NodeHealth& health);
  void reclaim_dead_node(cluster::NodeId node);
  void deregister_quarantined(cluster::ContainerId id);
  void resync_node(cluster::NodeId node, Agent& agent);
  void apply_resync(cluster::NodeId node, Agent& agent,
                    const std::vector<Agent::SnapshotEntry>& snapshot);
  void drain_deferred_registrations();

  sim::Simulation& sim_;
  net::Network& net_;
  EscraConfig config_;
  ResourceAllocator& allocator_;
  obs::Observer* obs_ = nullptr;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unordered_map<cluster::NodeId, Agent*> agents_by_node_;
  // Registered containers interned to dense slots; the hot per-container
  // state (registry entry, three desired-state slot rows) is slot-indexed
  // struct-of-arrays. External identities (WAL, replication, trace events,
  // id*4+resource slot keys) keep the ContainerId — slots never leave the
  // process.
  ContainerIndex index_;
  std::vector<Entry> registry_;
  // Pod creations that arrived while the seat was vacant (Controller
  // crashed, takeover pending). A vacant seat cannot admit — crash()
  // cleared the pool book, so a grant issued now would be clamped against
  // an empty pool and overcommit the cluster's fail-static cgroups.
  // Whichever seat returns (restart or standby takeover) answers them in
  // arrival order against its rebuilt book.
  struct DeferredRegistration {
    cluster::Container* container = nullptr;
    cluster::Node* node = nullptr;
    double cores = 0.0;
    memcg::Bytes mem = 0;
  };
  std::vector<DeferredRegistration> deferred_registrations_;
  CreditLedger credits_;
  sim::EventHandle reclaim_loop_;
  sim::EventHandle liveness_loop_;
  sim::EventHandle settle_loop_;
  bool started_ = false;
  bool crashed_ = false;
  std::uint64_t incarnation_ = 1;
  std::uint64_t update_seq_ = 0;
  // Desired-state slot rows, indexed registry-slot * 3 + resource, with a
  // parallel open-flag byte vector (closed rows keep stale contents until
  // reopened). `open_pending_` maintains the live count for
  // pending_updates() without a scan.
  std::vector<Pending> pending_;
  std::vector<std::uint8_t> pending_open_;
  std::size_t open_pending_ = 0;
  std::unordered_map<cluster::NodeId, NodeBatch> batches_;
  std::unordered_map<cluster::NodeId, NodeHealth> health_;
  ReplicationHook repl_hook_;
  bw::ClusterShaper* bw_shaper_ = nullptr;
  double bw_plan_ = 0.0;  // registration-time grant; 0 = late-join default

  // Admitted RT reservations. An ordered map: admission sweeps and
  // per-node reservation sums iterate it, and decision order must be
  // deterministic across identical-seed runs.
  struct RtInfo {
    cfs::RtSpec spec;
    double floor = 0.0;   // spec.floor_cores() at admission
    double bw_bps = 0.0;  // bandwidth reservation; 0 = none
  };
  std::map<cluster::ContainerId, RtInfo> rt_;
  double rt_reserved_cores_ = 0.0;
  double rt_capacity_ = 0.0;  // 0 = track the live pool limit
  std::uint64_t rt_admissions_ = 0;
  std::uint64_t rt_rejections_ = 0;
  std::uint64_t rt_evictions_ = 0;
  std::uint64_t deadline_misses_ = 0;

  std::uint64_t stats_received_ = 0;
  std::uint64_t limit_updates_ = 0;
  std::uint64_t oom_events_ = 0;
  std::uint64_t oom_rescues_ = 0;
  memcg::Bytes total_reclaimed_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace escra::core
