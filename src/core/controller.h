// The Escra Controller (Figure 1 circle 2, Figure 3; Section IV-C).
//
// The logically centralized component that brings the system together. It
// owns one Agent per worker node, keeps the pool of registered containers,
// ingests the per-period CPU telemetry each container's kernel hook streams
// over the (simulated) network, forwards it to the Resource Allocator, and
// carries out the allocator's decisions via RPCs to the Agents. It also
// launches the periodic memory-reclamation loop (every 5 s) and services
// pre-OOM memory requests on the containers' persistent kernel sockets.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/container.h"
#include "cluster/node.h"
#include "core/agent.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/messages.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"

namespace escra::core {

class Controller {
 public:
  Controller(sim::Simulation& sim, net::Network& network,
             const EscraConfig& config, ResourceAllocator& allocator);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // --- agents ---
  // Creates (or returns) the Agent for a node.
  Agent& agent_for(cluster::Node& node);

  // --- container registration (Section IV-A / IV-B) ---
  //
  // Registers a container: commits its limits against the global pool,
  // points the node's Agent at it, applies the starting limits to the
  // cgroups, and installs the two kernel hooks (per-period CPU telemetry,
  // pre-OOM trap). `cores`/`mem` of 0 mean "late joiner": the container
  // gets the configured late-join defaults clamped to the unallocated pool.
  void register_container(cluster::Container& container, cluster::Node& node,
                          double cores, memcg::Bytes mem);
  void deregister_container(cluster::Container& container);
  bool is_registered(cluster::ContainerId id) const {
    return registry_.contains(id);
  }
  std::size_t registered_count() const { return registry_.size(); }

  // Starts the periodic reclamation loop.
  void start();
  void stop();

  // --- telemetry & events (normally invoked via the network) ---
  void on_cpu_stats(const CpuStatsMsg& stats);
  // Pre-OOM request: returns true if the limit was raised enough for the
  // charge to succeed (the container survives).
  bool handle_oom(cluster::Container& container, memcg::Bytes charge,
                  memcg::Bytes shortfall);

  // Emergency reclamation sweep across every agent, synchronously (used on
  // OOM when the pool is dry). Returns total ψ.
  memcg::Bytes run_emergency_reclaim();

  // --- observability ---
  // Attaches (or detaches, with null) a control-plane observer: decision
  // trace events with causal links, metric counters, and the per-stage
  // control-loop latency profile. Re-wires already-created Agents and
  // already-registered containers, so attaching to a live system works;
  // with no observer every hook is a single null-pointer test.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() { return obs_; }

  // --- counters ---
  std::uint64_t stats_received() const { return stats_received_; }
  std::uint64_t limit_updates_sent() const { return limit_updates_; }
  std::uint64_t oom_events() const { return oom_events_; }
  std::uint64_t oom_rescues() const { return oom_rescues_; }
  memcg::Bytes total_reclaimed() const { return total_reclaimed_; }

  ResourceAllocator& allocator() { return allocator_; }

 private:
  struct Entry {
    cluster::Container* container = nullptr;
    Agent* agent = nullptr;
  };
  // Trace/latency context threaded from telemetry fire to limit apply.
  struct LoopCtx {
    obs::EventId cause = 0;        // decision (or throttle) trace event
    sim::TimePoint fire = 0;       // telemetry left the kernel hook
    sim::TimePoint ingest = 0;     // Controller received the statistic
    sim::TimePoint decide = 0;     // Allocator returned the decision
    bool profile = false;          // record the loop when the RPC lands
  };

  void ingest_cpu_stats(const CpuStatsMsg& stats, obs::EventId cause,
                        sim::TimePoint fire_time);
  void push_cpu_limit(cluster::ContainerId id, double cores, LoopCtx ctx);
  void push_mem_limit(cluster::ContainerId id, memcg::Bytes limit,
                      LoopCtx ctx);
  void run_periodic_reclaim();
  std::uint32_t node_tag(const Entry& entry) const;
  void record_reclaims(Agent& agent,
                       const std::vector<Agent::Resize>& resizes);

  sim::Simulation& sim_;
  net::Network& net_;
  EscraConfig config_;
  ResourceAllocator& allocator_;
  obs::Observer* obs_ = nullptr;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unordered_map<cluster::NodeId, Agent*> agents_by_node_;
  std::unordered_map<cluster::ContainerId, Entry> registry_;
  sim::EventHandle reclaim_loop_;
  bool started_ = false;

  std::uint64_t stats_received_ = 0;
  std::uint64_t limit_updates_ = 0;
  std::uint64_t oom_events_ = 0;
  std::uint64_t oom_rescues_ = 0;
  memcg::Bytes total_reclaimed_ = 0;
};

}  // namespace escra::core
