// The Distributed Container abstraction (Section III).
//
// A Distributed Container groups the containers of one application/tenant —
// possibly spread across nodes — under aggregate CPU and memory limits that
// are enforced *at runtime*, not just at admission like Kubernetes Resource
// Quotas. This class is the Resource Allocator's book of record: it tracks
// the global limits, the sum currently allocated to member containers, and
// therefore the unallocated pool that scale-up decisions draw from.
//
// Class invariant (checked on every mutation):
//     0 <= cpu_allocated() <= cpu_limit()
//     0 <= mem_allocated() <= mem_limit()
//     0 <= bw_allocated() <= bw_limit()   (when bandwidth is enabled)
//
// Bandwidth is optional: bw_limit() is 0 until set_bw_limit() arms it, and
// a member with a zero bandwidth rate is simply unshaped (it consumes none
// of the pool).
#pragma once

#include <cstdint>
#include <vector>

#include "core/container_index.h"
#include "memcg/mem_cgroup.h"

namespace escra::obs {
class Gauge;
}

namespace escra::core {

class DistributedContainer {
 public:
  DistributedContainer(double cpu_limit_cores, memcg::Bytes mem_limit);

  // --- global limits (Figure 3, circle 2) ---
  double cpu_limit() const { return cpu_limit_; }
  memcg::Bytes mem_limit() const { return mem_limit_; }
  double bw_limit() const { return bw_limit_; }

  // Arms (or resizes) the aggregate bandwidth pool, bytes/s. Throws if the
  // new limit is below what is already allocated to members.
  void set_bw_limit(double bw_bps);

  // Resizes the aggregate CPU / memory pools (cross-shard borrowing: a
  // lender shard shrinks its slice, the borrower grows its own). Throws if
  // the new limit is below what is already allocated to members — callers
  // must only lend genuine surplus.
  void set_cpu_limit(double cpu_cores);
  void set_mem_limit(memcg::Bytes mem);

  // --- aggregate allocation state (Figure 3, circle 6) ---
  double cpu_allocated() const { return cpu_allocated_; }
  double cpu_unallocated() const { return cpu_limit_ - cpu_allocated_; }
  memcg::Bytes mem_allocated() const { return mem_allocated_; }
  memcg::Bytes mem_unallocated() const { return mem_limit_ - mem_allocated_; }
  double bw_allocated() const { return bw_allocated_; }
  double bw_unallocated() const { return bw_limit_ - bw_allocated_; }

  std::size_t member_count() const { return index_.size(); }
  bool is_member(std::uint32_t container) const {
    return index_.contains(container);
  }

  // --- membership & per-container shadow limits ---

  // Adds a container with the given starting limits. Throws if the grant
  // would exceed a global limit or the container is already a member.
  void add_member(std::uint32_t container, double cores, memcg::Bytes mem);

  // Removes a container, returning its limits to the pool.
  void remove_member(std::uint32_t container);

  // Current shadow limits for a member (what the allocator believes the
  // Agent has been told to apply).
  double member_cores(std::uint32_t container) const;
  memcg::Bytes member_mem(std::uint32_t container) const;

  // Adjusts a member's CPU limit to `cores`, clamped so the aggregate stays
  // within the global limit. Returns the value actually set.
  double set_member_cores(std::uint32_t container, double cores);

  // Adjusts a member's memory limit to `mem`, clamped likewise.
  memcg::Bytes set_member_mem(std::uint32_t container, memcg::Bytes mem);

  // A member's bandwidth rate, bytes/s; 0 means unshaped.
  double member_bw(std::uint32_t container) const;

  // Adjusts a member's bandwidth rate to `bw_bps`, clamped so the aggregate
  // stays within the global bandwidth pool. Returns the value actually set.
  double set_member_bw(std::uint32_t container, double bw_bps);

  // Observability: pool-occupancy gauges kept in sync on every mutation
  // (all four may be null; typically wired from an obs::Observer's
  // pool.cpu/mem_allocated/unallocated handles).
  void set_obs_gauges(obs::Gauge* cpu_allocated, obs::Gauge* cpu_unallocated,
                      obs::Gauge* mem_allocated, obs::Gauge* mem_unallocated);

  // Bandwidth-pool gauges, wired separately so pre-bandwidth callers keep
  // the four-argument overload above.
  void set_bw_gauges(obs::Gauge* bw_allocated, obs::Gauge* bw_unallocated);

 private:
  void sync_gauges() const;

  struct Member {
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw = 0.0;  // bytes/s; 0 = unshaped
  };
  const Member& member(std::uint32_t container) const;
  Member& member_at(std::uint32_t container, const char* caller);

  double cpu_limit_;
  memcg::Bytes mem_limit_;
  double bw_limit_ = 0.0;  // bytes/s; 0 = bandwidth pool disabled
  double cpu_allocated_ = 0.0;
  memcg::Bytes mem_allocated_ = 0;
  double bw_allocated_ = 0.0;
  // Hot state: member shadow limits in a slot-indexed SoA book. The index
  // interns sparse container ids to dense slots; members_[slot] is valid
  // while the slot is live (intern zero-fills on reuse).
  ContainerIndex index_;
  std::vector<Member> members_;
  obs::Gauge* gauge_cpu_allocated_ = nullptr;
  obs::Gauge* gauge_cpu_unallocated_ = nullptr;
  obs::Gauge* gauge_mem_allocated_ = nullptr;
  obs::Gauge* gauge_mem_unallocated_ = nullptr;
  obs::Gauge* gauge_bw_allocated_ = nullptr;
  obs::Gauge* gauge_bw_unallocated_ = nullptr;
};

}  // namespace escra::core
