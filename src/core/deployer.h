// Application Deployer & Container Watcher (Figure 1 circle 1; Section IV-A).
//
// The Deployer ingests a Distributed Container configuration (the paper's
// YAML set): a list of container specs plus global application CPU/memory
// limits. It sends the global limits to the Controller (by constructing the
// DistributedContainer before deployment), creates the containers across the
// cluster, and bootstraps each one's initial limits per Equations 1-2:
//
//     cpu_0 = global_cpu_limit / #containers                      (1)
//     mem_0 = global_mem_limit * (1 - sigma) / #containers        (2)
//
// where σ is the fraction of global memory withheld for OOM events. (The
// paper prints Eq. 2 as `global·σ/n` while describing σ as the *withheld*
// percentage; we follow the description — see DESIGN.md.)
//
// The Container Watcher detects containers created after deployment (e.g.
// serverless action pods) and registers them with the Controller so they
// start streaming telemetry immediately.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/config.h"
#include "core/controller.h"

namespace escra::core {

// The "set of YAML files": what the operator hands the Deployer.
struct AppSpec {
  std::string name;
  std::vector<cluster::ContainerSpec> containers;
};

class Deployer {
 public:
  Deployer(cluster::Cluster& cluster, Controller& controller,
           const EscraConfig& config);

  // Deploys every container in the spec (spread across nodes), registers
  // each with the Controller with Eq. 1-2 initial limits, and returns them.
  std::vector<cluster::Container*> deploy(const AppSpec& spec);

 private:
  cluster::Cluster& cluster_;
  Controller& controller_;
  EscraConfig config_;
};

class ContainerWatcher {
 public:
  ContainerWatcher(cluster::Cluster& cluster, Controller& controller);
  ~ContainerWatcher();

  ContainerWatcher(const ContainerWatcher&) = delete;
  ContainerWatcher& operator=(const ContainerWatcher&) = delete;

  // Starts watching: containers created in the cluster from now on are
  // registered with the Controller as late joiners.
  void enable();
  void disable();
  bool enabled() const { return enabled_; }

 private:
  cluster::Cluster& cluster_;
  Controller& controller_;
  bool enabled_ = false;
};

}  // namespace escra::core
