#include "core/allocator.h"

#include <algorithm>
#include <cmath>

namespace escra::core {

namespace {
// Minimum CPU-limit change worth an RPC, in cores.
constexpr double kCpuEpsilon = 1e-3;
// Minimum bandwidth-rate change worth an RPC, in bytes/s (8 KB/s).
constexpr double kBwEpsilon = 8e3;
}  // namespace

ResourceAllocator::ResourceAllocator(const EscraConfig& config,
                                     DistributedContainer& app)
    : config_(config), app_(app) {}

void ResourceAllocator::set_observer(obs::Observer* observer) {
  obs_ = observer;
  if (observer != nullptr) {
    app_.set_obs_gauges(observer->h.pool_cpu_allocated,
                        observer->h.pool_cpu_unallocated,
                        observer->h.pool_mem_allocated,
                        observer->h.pool_mem_unallocated);
    app_.set_bw_gauges(observer->h.pool_bw_allocated,
                       observer->h.pool_bw_unallocated);
  } else {
    app_.set_obs_gauges(nullptr, nullptr, nullptr, nullptr);
    app_.set_bw_gauges(nullptr, nullptr);
  }
}

void ResourceAllocator::register_container(std::uint32_t id, double cores,
                                           memcg::Bytes mem) {
  app_.add_member(id, cores, mem);
  const std::uint32_t slot = index_.intern(id);
  if (slot >= windows_.size()) {
    windows_.resize(index_.capacity(), Windows(config_.window_periods));
    bw_windows_.resize(index_.capacity(), Windows(config_.window_periods));
    bw_live_.resize(index_.capacity(), 0);
    rt_floor_.resize(index_.capacity(), 0.0);
    rt_bw_floor_.resize(index_.capacity(), 0.0);
  } else {
    // Slot reuse after a deregister: fresh statistics for the new tenant.
    windows_[slot] = Windows(config_.window_periods);
  }
  bw_live_[slot] = 0;
  rt_floor_[slot] = 0.0;
  rt_bw_floor_[slot] = 0.0;
}

void ResourceAllocator::deregister_container(std::uint32_t id) {
  const std::uint32_t slot = index_.release(id);
  if (slot == ContainerIndex::kInvalid) return;
  rt_floor_[slot] = 0.0;
  rt_bw_floor_[slot] = 0.0;
  app_.remove_member(id);
}

void ResourceAllocator::set_rt_floor(std::uint32_t id, double cores,
                                     double bw_bps) {
  const std::uint32_t slot = index_.find(id);
  if (slot == ContainerIndex::kInvalid) return;
  rt_floor_[slot] = std::max(0.0, cores);
  rt_bw_floor_[slot] = std::max(0.0, bw_bps);
}

void ResourceAllocator::clear_rt_floor(std::uint32_t id) {
  set_rt_floor(id, 0.0, 0.0);
}

double ResourceAllocator::rt_floor(std::uint32_t id) const {
  const std::uint32_t slot = index_.find(id);
  return slot == ContainerIndex::kInvalid ? 0.0 : rt_floor_[slot];
}

double ResourceAllocator::rt_bw_floor(std::uint32_t id) const {
  const std::uint32_t slot = index_.find(id);
  return slot == ContainerIndex::kInvalid ? 0.0 : rt_bw_floor_[slot];
}

void ResourceAllocator::reset() {
  std::vector<std::uint32_t> ids;
  ids.reserve(index_.size());
  index_.for_each([&ids](std::uint32_t, std::uint32_t id) { ids.push_back(id); });
  for (const std::uint32_t id : ids) deregister_container(id);
}

std::optional<double> ResourceAllocator::on_cpu_stats(const CpuStatsMsg& stats) {
  const std::uint32_t slot = index_.find(stats.cgroup);
  if (slot == ContainerIndex::kInvalid) {
    return std::nullopt;  // stale/unknown container
  }
  Windows& win = windows_[slot];

  const double period = static_cast<double>(config_.cfs_period);
  const double unused_cores = static_cast<double>(stats.unused) / period;
  win.throttles.add(stats.throttled ? 1.0 : 0.0);
  win.unused.add(unused_cores);

  const double current = app_.member_cores(stats.cgroup);

  if (stats.throttled) {
    // Scale up (Section IV-D1): the windowed throttle mean gates how much of
    // the application's unallocated runtime this container receives, paced
    // by Υ (see config.h for the Υ-scaling interpretation).
    const double throttle_mean = win.throttles.mean();
    const double unallocated = app_.cpu_unallocated();
    // Section IV-D1 equation with two stabilizing clamps (the paper's Y
    // values make the raw product exceed the free pool after a couple of
    // consecutive throttles): the grant never exceeds (a) the unallocated
    // pool and (b) the container's own current allocation — a persistently
    // throttled container doubles per period, which reaches any demand
    // within a few 100 ms periods, bounds the overshoot past true demand to
    // 2x, and keeps one container from draining the pool other throttled
    // containers are drawing from in the same period.
    const double rate = std::min(throttle_mean * config_.upsilon, 1.0);
    // Y also paces the per-period grant: at the paper's default Y=20 a
    // fully-throttled container doubles per period; Y=35 (the serverless
    // setting) grows ~2.75x; small Y ramps gently.
    const double cap =
        std::max(current * (config_.upsilon / 20.0), 8.0 * config_.min_cores);
    double increase = rate * std::min(unallocated, cap);
    // Credit Υ-gate (Karma defense): lifting above the static fair share
    // spends credits; an exhausted balance caps the grant at the fair
    // share. Honest bursty members with positive balances are untouched.
    // An RT reservation raises the cap to its floor — the gate may never
    // keep an admitted container from reaching the floor it was promised —
    // but grants no headroom past it: an exhausted RT container burning
    // credits competes above its floor like everyone else, so a reservation
    // cannot be laundered into unbounded grant priority.
    if (credits_ != nullptr && app_.member_count() > 0 &&
        credits_->balance_micro(stats.cgroup) <= 0) {
      const double fair =
          app_.cpu_limit() / static_cast<double>(app_.member_count());
      const double gate = std::max(fair, rt_floor_[slot]);
      increase = std::min(increase, std::max(0.0, gate - current));
    }
    if (increase > kCpuEpsilon) {
      const double applied =
          app_.set_member_cores(stats.cgroup, current + increase);
      if (std::abs(applied - current) > kCpuEpsilon) {
        ++scale_ups_;
        if (obs_ != nullptr) obs_->h.cpu_grants->inc();
        return applied;
      }
    }
    return std::nullopt;
  }

  if (unused_cores > config_.gamma) {
    // Scale down: remove κ of the windowed mean unused runtime. Floors: the
    // global minimum, and — so that a burst of unused runtime lingering in
    // the window cannot drag the limit below what the container is consuming
    // right now — last period's usage plus the γ headroom. Without the
    // second floor a container that just cleared a backlog oscillates:
    // big-unused samples crash its limit, the queue rebuilds, it throttles,
    // doubles back up, and repeats.
    const double used_last =
        static_cast<double>(stats.quota - stats.unused) / period;
    // The anti-oscillation floor keeps γ headroom above *active* usage, but
    // fades out for mostly-idle containers (headroom capped by the usage
    // itself) so they can release their allocation all the way down to the
    // global floor and refill the application pool.
    const double headroom = std::min(used_last, config_.gamma);
    // kappa of the windowed mean, but never slower than kappa of the last
    // period: after a scale-up overshoot the mean lags for n periods while
    // the floor below already guarantees we cannot undercut live usage, so
    // the larger of the two trims overshoot within one period.
    const double decrease =
        std::max(win.unused.mean(), unused_cores) * config_.kappa;
    // RT reservation floor: an admitted real-time container's shadow limit
    // never drops below its admission floor, no matter how idle its window
    // looks (the reservation is a latency contract, not a usage forecast).
    const double target =
        std::max({config_.min_cores, rt_floor_[slot], used_last + headroom,
                  current - decrease});
    if (current - target > kCpuEpsilon) {
      const double applied = app_.set_member_cores(stats.cgroup, target);
      ++scale_downs_;
      if (obs_ != nullptr) obs_->h.cpu_shrinks->inc();
      return applied;
    }
  }
  return std::nullopt;
}

std::optional<double> ResourceAllocator::on_bw_stats(
    const bw::BwSample& sample) {
  const std::uint32_t slot = index_.find(sample.container);
  if (slot == ContainerIndex::kInvalid) return std::nullopt;
  const double current = app_.member_bw(sample.container);
  if (current <= 0.0) return std::nullopt;  // unshaped container
  if (bw_live_[slot] == 0) {
    bw_windows_[slot] = Windows(config_.window_periods);
    bw_live_[slot] = 1;
  }
  Windows& win = bw_windows_[slot];

  const double unused = std::max(0.0, current - sample.used_bps);
  win.throttles.add(sample.throttled ? 1.0 : 0.0);
  win.unused.add(unused);

  if (sample.throttled) {
    // Scale up: same Υ-gated shape as the CPU arm — the windowed saturation
    // mean gates how much of the pool's unallocated bandwidth this container
    // receives, the per-period grant capped so one saturated container
    // roughly doubles per period at Υ=20.
    const double rate = std::min(win.throttles.mean() * config_.bw_upsilon, 1.0);
    const double cap = std::max(current * (config_.bw_upsilon / 20.0),
                                8.0 * config_.bw_min_rate);
    const double increase =
        rate * std::min(std::max(0.0, app_.bw_unallocated()), cap);
    if (increase > kBwEpsilon) {
      const double applied =
          app_.set_member_bw(sample.container, current + increase);
      if (std::abs(applied - current) > kBwEpsilon) {
        ++bw_scale_ups_;
        if (obs_ != nullptr) obs_->h.bw_grants->inc();
        return applied;
      }
    }
    return std::nullopt;
  }

  if (unused > config_.bw_gamma) {
    // Scale down: remove κ of the windowed mean unused rate, floored at the
    // global minimum and at last period's usage plus γ headroom (the same
    // anti-oscillation floor as the CPU arm).
    const double used_last = sample.used_bps;
    const double headroom = std::min(used_last, config_.bw_gamma);
    const double decrease =
        std::max(win.unused.mean(), unused) * config_.bw_kappa;
    const double target =
        std::max({config_.bw_min_rate, rt_bw_floor_[slot],
                  used_last + headroom, current - decrease});
    if (current - target > kBwEpsilon) {
      const double applied = app_.set_member_bw(sample.container, target);
      ++bw_scale_downs_;
      if (obs_ != nullptr) obs_->h.bw_shrinks->inc();
      return applied;
    }
  }
  return std::nullopt;
}

ResourceAllocator::MemDecision ResourceAllocator::on_oom_event(
    const OomEventMsg& event, bool post_reclaim) {
  MemDecision decision;
  if (!index_.contains(event.container)) {
    decision.action = MemAction::kDeny;
    return decision;
  }
  const memcg::Bytes current = app_.member_mem(event.container);
  // Round the shortfall up to whole pages and add the fixed grant block so
  // the container is not back here on the very next charge.
  const memcg::Bytes pages =
      ((event.shortfall + memcg::kPageSize - 1) / memcg::kPageSize) *
      memcg::kPageSize;
  memcg::Bytes want = pages + config_.oom_grant;
  // Credit gate for memory: a credit-exhausted member already at or above
  // its fair memory share gets the shortfall only — the fixed bonus block
  // is what a phantom-OOM attack farms, so it is reserved for members in
  // good standing.
  if (credits_ != nullptr && app_.member_count() > 0 &&
      credits_->balance_micro(event.container) <= 0) {
    const memcg::Bytes fair_mem = static_cast<memcg::Bytes>(
        app_.mem_limit() / static_cast<memcg::Bytes>(app_.member_count()));
    if (current >= fair_mem) want = pages;
  }
  const memcg::Bytes unallocated = app_.mem_unallocated();

  if (unallocated >= want) {
    decision.action = MemAction::kGrant;
    decision.new_limit = app_.set_member_mem(event.container, current + want);
    ++mem_grants_;
    if (obs_ != nullptr) obs_->h.mem_grants->inc();
    return decision;
  }
  if (unallocated >= pages) {
    // Pool can cover the shortfall but not the full block: grant what exists.
    decision.action = MemAction::kGrant;
    decision.new_limit =
        app_.set_member_mem(event.container, current + unallocated);
    ++mem_grants_;
    if (obs_ != nullptr) obs_->h.mem_grants->inc();
    return decision;
  }
  if (!post_reclaim) {
    decision.action = MemAction::kReclaimThenRetry;
    return decision;
  }
  decision.action = MemAction::kDeny;
  ++mem_denies_;
  if (obs_ != nullptr) obs_->h.mem_denies->inc();
  return decision;
}

void ResourceAllocator::on_reclaimed(std::uint32_t container,
                                     memcg::Bytes new_limit) {
  if (!index_.contains(container)) return;
  app_.set_member_mem(container, new_limit);
}

}  // namespace escra::core
