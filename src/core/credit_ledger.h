// Karma-style credit ledger (strategy-proofness defense, after Karma,
// arXiv:2305.17222).
//
// Escra's κ/Υ loop trusts telemetry: an inflated usage report or a
// fabricated pre-OOM shortfall is rewarded with a bigger slice of the pool.
// The ledger makes sustained overclaiming cost future priority. Each member
// of the Distributed Container holds a credit balance denominated in
// *fair-share-seconds*: one credit buys one second of holding the member's
// full static fair share (pool / member count) on top of that fair share.
// The Controller's settle sweep (every CFS period) mints credits for
// members allocated below their CPU fair share and burns credits for
// members above it (scaled by pool pressure — taking free capacity nobody
// else wants is cheap; taking it from a contended pool costs full price);
// memory held above the memory fair share is charged rent at the same rate,
// so grant blocks farmed through fabricated OOM events keep costing. The
// allocator's grant path refuses to lift a credit-exhausted member above
// its fair share, and the sweep decays a persistently-exhausted overclaimer
// back toward the static fair share — honest bursty tenants keep sub-second
// elasticity, liars degrade to what admission would have given them.
//
// Balances are integer micro-credits so the conservation law the invariant
// checker enforces is exact, not float-approximate:
//
//     minted == burned + outstanding        (outstanding = Σ balances)
//
// holds after every operation by construction: open() mints the initial
// balance, mint() adds (capped), burn() moves balance to burned (balances
// may go negative — debt), close() burns whatever balance remains.
//
// The ledger is Controller soft state: crash() clears it, and under the
// replicated control plane (src/ha) every mutation is WAL-streamed so a
// standby's takeover installs the same balances — a greedy tenant cannot
// launder its debt through a failover.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "cluster/container.h"

namespace escra::core {

class CreditLedger {
 public:
  // Micro-credits per credit (fair-share-second).
  static constexpr std::int64_t kMicro = 1000000;

  static std::int64_t to_micro(double credits) {
    return static_cast<std::int64_t>(
        std::llround(credits * static_cast<double>(kMicro)));
  }
  static double to_credits(std::int64_t micro) {
    return static_cast<double>(micro) / static_cast<double>(kMicro);
  }

  struct Account {
    std::int64_t micro = 0;        // balance; negative = debt
    std::int32_t above_streak = 0; // consecutive settle sweeps above fair
                                   // share (drives the decay grace)
  };

  // Flat balance image, used for WAL-replicated takeover installs.
  struct Snapshot {
    cluster::ContainerId id = 0;
    std::int64_t micro = 0;
  };

  // --- membership ---
  // Opens an account with `init_micro` (minted). No-op if already open.
  void open(cluster::ContainerId id, std::int64_t init_micro);
  // Closes the account, burning whatever balance remains. No-op if absent.
  void close(cluster::ContainerId id);
  bool contains(cluster::ContainerId id) const {
    return accounts_.find(id) != accounts_.end();
  }
  std::size_t size() const { return accounts_.size(); }

  // --- balance mutation (settle sweep / OOM charges) ---
  // Balance in micro-credits; 0 for an absent account.
  std::int64_t balance_micro(cluster::ContainerId id) const;
  // Mints up to `micro`, clamped so the balance never exceeds `cap_micro`.
  // Returns the amount actually minted (0 for an absent account).
  std::int64_t mint(cluster::ContainerId id, std::int64_t micro,
                    std::int64_t cap_micro);
  // Burns `micro` from the balance (which may go negative). Returns the
  // amount burned (0 for an absent account).
  std::int64_t burn(cluster::ContainerId id, std::int64_t micro);

  // Above-fair-share streak bookkeeping (decay grace). Both are no-ops /
  // return 0 for an absent account.
  std::int32_t bump_streak(cluster::ContainerId id);
  void reset_streak(cluster::ContainerId id);
  std::int32_t streak(cluster::ContainerId id) const;

  // --- whole-ledger operations (crash / takeover) ---
  void clear();
  // Replaces every account and the mint/burn totals with a replicated
  // image (warm-standby takeover). Streaks reset — the grace restarts
  // under the new leader.
  void install(const std::vector<Snapshot>& accounts, std::int64_t minted,
               std::int64_t burned);
  std::vector<Snapshot> snapshot() const;

  // --- conservation (invariant checker) ---
  std::int64_t minted_micro() const { return minted_; }
  std::int64_t burned_micro() const { return burned_; }
  // Σ balances, maintained incrementally (exact).
  std::int64_t outstanding_micro() const { return outstanding_; }

  // std::map: deterministic iteration for settle sweeps, snapshots, and
  // replication — identical-seed runs settle in identical order.
  const std::map<cluster::ContainerId, Account>& accounts() const {
    return accounts_;
  }

 private:
  std::map<cluster::ContainerId, Account> accounts_;
  std::int64_t minted_ = 0;
  std::int64_t burned_ = 0;
  std::int64_t outstanding_ = 0;
};

}  // namespace escra::core
