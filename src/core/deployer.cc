#include "core/deployer.h"

#include <stdexcept>

namespace escra::core {

Deployer::Deployer(cluster::Cluster& cluster, Controller& controller,
                   const EscraConfig& config)
    : cluster_(cluster), controller_(controller), config_(config) {}

std::vector<cluster::Container*> Deployer::deploy(const AppSpec& spec) {
  if (spec.containers.empty()) {
    throw std::invalid_argument("deploy: empty application");
  }
  const DistributedContainer& app = controller_.allocator().app();
  const auto n = static_cast<double>(spec.containers.size());
  const double cpu0 = app.cpu_limit() / n;                             // Eq. 1
  const auto mem0 = static_cast<memcg::Bytes>(
      static_cast<double>(app.mem_limit()) * (1.0 - config_.sigma) / n);  // Eq. 2

  std::vector<cluster::Container*> deployed;
  deployed.reserve(spec.containers.size());
  for (const cluster::ContainerSpec& cs : spec.containers) {
    cluster::Container& c = cluster_.create_container(cs, cpu0, mem0);
    cluster::Node* node = cluster_.node_of(c.id());
    controller_.register_container(c, *node, cpu0, mem0);
    deployed.push_back(&c);
  }
  return deployed;
}

ContainerWatcher::ContainerWatcher(cluster::Cluster& cluster,
                                   Controller& controller)
    : cluster_(cluster), controller_(controller) {}

ContainerWatcher::~ContainerWatcher() { disable(); }

void ContainerWatcher::enable() {
  if (enabled_) return;
  enabled_ = true;
  cluster_.set_container_observer(
      [this](cluster::Container& c, cluster::Node& node) {
        // Late joiner: zero limits ask the Controller to apply the
        // late-join defaults clamped to the unallocated pool.
        controller_.register_container(c, node, 0.0, 0);
      });
}

void ContainerWatcher::disable() {
  if (!enabled_) return;
  enabled_ = false;
  cluster_.set_container_observer(nullptr);
}

}  // namespace escra::core
