// The Resource Allocator (Figure 3; Section IV-D): the lightweight
// decision-making component. It keeps the Distributed Container's global
// CPU/memory pools, consumes per-period CPU telemetry through two sliding
// windowed statistics per container (throttle occurrences and unused
// runtime), and decides when to scale each container up or down. It also
// decides how to satisfy out-of-memory events from the globally unallocated
// memory, falling back to reclamation when the pool is dry.
//
// The allocator is deliberately passive: it returns decisions; the
// Controller carries them out (Section IV-C: "The Controller is not
// responsible for making those ... decisions").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bw/shaper.h"
#include "core/config.h"
#include "core/container_index.h"
#include "core/credit_ledger.h"
#include "core/distributed_container.h"
#include "core/messages.h"
#include "obs/observer.h"
#include "sim/stats.h"

namespace escra::core {

class ResourceAllocator {
 public:
  ResourceAllocator(const EscraConfig& config, DistributedContainer& app);

  // --- membership ---
  void register_container(std::uint32_t id, double cores, memcg::Bytes mem);
  void deregister_container(std::uint32_t id);
  bool knows(std::uint32_t id) const { return index_.contains(id); }
  // Drops every registration (Controller crash: shadow state dies with the
  // process). Pool commitments return to unallocated; windows are cleared.
  void reset();

  // --- CPU (Section IV-D1) ---

  // Consumes one per-period statistic. If a limit change is warranted the
  // new shadow limit (already committed against the global pool) is
  // returned for the Controller to push to the Agent.
  std::optional<double> on_cpu_stats(const CpuStatsMsg& stats);

  // --- memory (Section IV-D2) ---

  enum class MemAction {
    kGrant,             // new_limit committed; apply it and retry the charge
    kReclaimThenRetry,  // pool dry: run reclamation, then call again
    kDeny,              // nothing to give even after reclamation: let it die
  };
  struct MemDecision {
    MemAction action = MemAction::kDeny;
    memcg::Bytes new_limit = 0;
  };

  // Handles a pre-OOM event. `post_reclaim` marks the retry after a
  // reclamation pass, so the allocator denies instead of looping.
  MemDecision on_oom_event(const OomEventMsg& event, bool post_reclaim = false);

  // --- bandwidth (third managed resource; mirrors the CPU arm with rates
  //     in bytes/s) ---

  // Consumes one per-period bandwidth sample from the node shapers. If a
  // rate change is warranted the new shadow rate (committed against the
  // global bandwidth pool — the node-NIC clamp is the Controller's job) is
  // returned for the Controller to push to the Agent. Unshaped containers
  // (member bw of 0) are ignored.
  std::optional<double> on_bw_stats(const bw::BwSample& sample);

  // Syncs shadow state after an Agent reclamation pass; ψ flows back into
  // the pool implicitly (allocated sum drops).
  void on_reclaimed(std::uint32_t container, memcg::Bytes new_limit);

  // --- real-time floors (mixed-criticality class) ---
  // An admitted RT container's reservation floor: no allocator decision —
  // κ scale-down, credit decay, anything — may push its shadow CPU limit
  // below `cores` (or its bandwidth rate below `bw_bps`). Set by the
  // Controller at admission, cleared at eviction/deregistration. RT
  // containers also bypass the credit Υ-gate: their priority was paid for
  // at admission, not borrowed from the Karma ledger.
  void set_rt_floor(std::uint32_t id, double cores, double bw_bps);
  void clear_rt_floor(std::uint32_t id);
  double rt_floor(std::uint32_t id) const;
  double rt_bw_floor(std::uint32_t id) const;

  // --- credit defense (Karma-style, see credit_ledger.h) ---
  // Read-only Υ-gate on the grant paths: with a ledger attached, a member
  // whose balance is non-positive is never lifted above its static fair
  // share (CPU) and gets shortfall-only OOM grants once above its fair
  // memory share. Null detaches (defense off, the default).
  void set_credit_ledger(const CreditLedger* ledger) { credits_ = ledger; }

  // --- observability ---
  // Mirrors decision counters into the observer's registry and keeps the
  // Distributed Container's pool gauges live. Null detaches. The allocator
  // stays decision-only: trace events for its decisions are recorded by the
  // Controller, which owns the clock and the node topology.
  void set_observer(obs::Observer* observer);

  // --- introspection ---
  DistributedContainer& app() { return app_; }
  const EscraConfig& config() const { return config_; }
  std::uint64_t cpu_scale_ups() const { return scale_ups_; }
  std::uint64_t cpu_scale_downs() const { return scale_downs_; }
  std::uint64_t mem_grants() const { return mem_grants_; }
  std::uint64_t mem_denies() const { return mem_denies_; }
  std::uint64_t bw_scale_ups() const { return bw_scale_ups_; }
  std::uint64_t bw_scale_downs() const { return bw_scale_downs_; }

 private:
  // Per-container sliding statistics; `unused` is in cores for the CPU
  // windows and bytes/s for the bandwidth windows.
  struct Windows {
    sim::SlidingWindow throttles;
    sim::SlidingWindow unused;
    explicit Windows(std::size_t n) : throttles(n), unused(n) {}
  };

  EscraConfig config_;
  DistributedContainer& app_;
  obs::Observer* obs_ = nullptr;
  const CreditLedger* credits_ = nullptr;
  // Registered containers interned to dense slots; the window SoA vectors
  // below are indexed by slot. Both resource arms share one index — a
  // container's CPU and bandwidth statistics live at the same slot.
  ContainerIndex index_;
  std::vector<Windows> windows_;
  // Bandwidth windows, lazily armed (bw_live_[slot]) on the first sample
  // for a shaped container (samples only arrive when shaping is enabled,
  // so pre-bw runs never touch these rows beyond the flag).
  std::vector<Windows> bw_windows_;
  std::vector<std::uint8_t> bw_live_;
  // Per-slot RT reservation floors (0 = best-effort). Dense SoA rows like
  // the windows: the scale-down hot paths read them with no map lookup.
  std::vector<double> rt_floor_;
  std::vector<double> rt_bw_floor_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t mem_grants_ = 0;
  std::uint64_t mem_denies_ = 0;
  std::uint64_t bw_scale_ups_ = 0;
  std::uint64_t bw_scale_downs_ = 0;
};

}  // namespace escra::core
