#include "core/escra.h"

#include <stdexcept>

namespace escra::core {

EscraSystem::EscraSystem(sim::Simulation& sim, net::Network& network,
                         cluster::Cluster& cluster, double global_cpu_cores,
                         memcg::Bytes global_mem, EscraConfig config)
    : cluster_(cluster),
      config_(config),
      app_(global_cpu_cores, global_mem),
      allocator_(config_, app_),
      controller_(sim, network, config_, allocator_),
      deployer_(cluster, controller_, config_),
      watcher_(cluster, controller_) {
  if (config_.credit_defense) {
    allocator_.set_credit_ledger(&controller_.credits());
  }
}

std::vector<cluster::Container*> EscraSystem::deploy(const AppSpec& spec) {
  return deployer_.deploy(spec);
}

void EscraSystem::enable_bandwidth(bw::ClusterShaper& shaper,
                                   double global_bw_bps) {
  app_.set_bw_limit(global_bw_bps);
  controller_.enable_bandwidth(shaper);
}

void EscraSystem::manage(const std::vector<cluster::Container*>& containers) {
  if (containers.empty()) throw std::invalid_argument("manage: no containers");
  const auto n = static_cast<double>(containers.size());
  const double cpu0 = app_.cpu_limit() / n;  // Eq. 1
  const auto mem0 = static_cast<memcg::Bytes>(
      static_cast<double>(app_.mem_limit()) * (1.0 - config_.sigma) / n);  // Eq. 2
  if (bandwidth_enabled() && app_.bw_limit() > 0.0) {
    controller_.set_bw_plan(app_.bw_limit() / n);  // Eq. 1, bandwidth analogue
  }
  for (cluster::Container* c : containers) {
    cluster::Node* node = cluster_.node_of(c->id());
    if (node == nullptr) throw std::invalid_argument("manage: unknown container");
    controller_.register_container(*c, *node, cpu0, mem0);
  }
}

void EscraSystem::adopt(cluster::Container& container) {
  cluster::Node* node = cluster_.node_of(container.id());
  if (node == nullptr) throw std::invalid_argument("adopt: unknown container");
  controller_.register_container(container, *node, 0.0, 0);
}

void EscraSystem::release(cluster::Container& container) {
  controller_.deregister_container(container);
}

}  // namespace escra::core
