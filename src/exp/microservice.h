// Microservice experiment harness: runs one (application, workload, policy)
// cell of the paper's 4 x 4 x 3 evaluation grid (Sections VI-B..VI-E) and
// returns the metrics the paper reports — throughput, 99.9%ile latency, and
// per-second absolute-slack distributions for CPU and memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "app/benchmarks.h"
#include "core/config.h"
#include "sim/stats.h"
#include "workload/arrivals.h"

namespace escra::exp {

enum class PolicyKind { kStatic, kAutopilot, kEscra, kVpa, kFirm };

const char* policy_name(PolicyKind kind);

struct MicroserviceConfig {
  app::Benchmark benchmark = app::Benchmark::kHipster;
  // When set, overrides `benchmark`: run this service graph instead (e.g.
  // one loaded from a YAML config). Profiled fresh per run.
  std::shared_ptr<const app::GraphSpec> custom_graph;
  workload::WorkloadKind workload = workload::WorkloadKind::kFixed;
  PolicyKind policy = PolicyKind::kEscra;

  // Static baseline: limits = multiplier x profiled peak (Section VI-B).
  double static_multiplier = 1.5;
  // Optional cpu.cfs_burst_us for the static baseline, as a fraction of
  // each container's quota (0 = vanilla CFS). Exercised by
  // bench/ablation_cfs_burst.
  double static_cfs_burst_factor = 0.0;
  // Autopilot: update interval (1 s is its best case per Section VI-A).
  sim::Duration autopilot_period = sim::seconds(1);
  // Escra tunables (defaults are the paper's: kappa 0.8, gamma 0.2, Y 20).
  core::EscraConfig escra;

  // Cluster shape (Section VI-A: three workers, 2x10-core Xeon, 192 GB).
  int worker_nodes = 3;
  double node_cores = 20.0;
  memcg::Bytes node_mem = 192LL * memcg::kGiB;

  // Load starts only after the application has finished its startup burn
  // (wrk2 is pointed at a ready deployment, not one still JIT-compiling).
  sim::Duration app_ready_delay = sim::seconds(10);
  sim::Duration warmup = sim::seconds(5);
  sim::Duration duration = sim::seconds(60);
  // Client-side request timeout (interactive microservices; wrk2 gives up
  // and counts an error).
  sim::Duration request_timeout = sim::seconds(2);
  std::uint64_t seed = 42;
};

struct RunResult {
  std::string app_name;
  std::string workload_name;
  std::string policy_name;

  // Performance.
  double throughput_rps = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;

  // Cost-efficiency: pooled per-container, per-second absolute slack.
  sim::SampleSet cpu_slack_cores;
  sim::SampleSet mem_slack_mib;

  // Reliability & control-plane counters.
  std::uint64_t oom_kills = 0;
  std::uint64_t oom_rescues = 0;
  std::uint64_t evictions = 0;
  std::uint64_t limit_updates = 0;
  std::uint64_t telemetry_msgs = 0;
  double peak_net_mbps = 0.0;
  double mean_net_mbps = 0.0;
};

RunResult run_microservice(const MicroserviceConfig& config);

}  // namespace escra::exp
