#include "exp/fairness.h"

namespace escra::exp {

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

FairnessMeter::FairnessMeter(sim::Simulation& sim,
                             const core::DistributedContainer& app,
                             sim::Duration interval)
    : sim_(sim), app_(app), interval_(interval) {}

FairnessMeter::~FairnessMeter() { stop(); }

void FairnessMeter::track(cluster::ContainerId id, bool greedy) {
  tracked_.push_back(Tracked{id, greedy, 0.0});
}

void FairnessMeter::start(sim::TimePoint at) {
  start_timer_ = sim_.schedule_at(at, [this] {
    sample_timer_ =
        sim_.schedule_every(sim_.now() + interval_, interval_,
                            [this] { sample(); });
  });
}

void FairnessMeter::stop() {
  sim_.cancel(start_timer_);
  sim_.cancel(sample_timer_);
}

void FairnessMeter::sample() {
  if (tracked_.empty()) return;
  std::vector<double> cores;
  cores.reserve(tracked_.size());
  double allocated = 0.0;
  for (Tracked& t : tracked_) {
    const double c = app_.is_member(t.id) ? app_.member_cores(t.id) : 0.0;
    t.sum_cores += c;
    cores.push_back(c);
    allocated += c;
  }
  const double pool = app_.cpu_limit();
  sum_util_ += pool > 0.0 ? allocated / pool : 0.0;
  sum_jain_ += jain_index(cores);
  ++samples_;
}

FairnessReport FairnessMeter::report() const {
  FairnessReport r;
  r.samples = samples_;
  if (samples_ == 0 || tracked_.empty()) return r;
  const double n = static_cast<double>(samples_);
  r.cpu_utilization = sum_util_ / n;
  r.jain_short_term = sum_jain_ / n;

  std::vector<double> means;
  means.reserve(tracked_.size());
  double greedy_sum = 0.0;
  double honest_sum = 0.0;
  std::size_t greedy_n = 0;
  std::size_t honest_n = 0;
  for (const Tracked& t : tracked_) {
    const double mean = t.sum_cores / n;
    means.push_back(mean);
    if (t.greedy) {
      greedy_sum += mean;
      ++greedy_n;
    } else {
      honest_sum += mean;
      ++honest_n;
    }
  }
  r.jain_long_term = jain_index(means);
  if (greedy_n > 0) r.greedy_mean_cores = greedy_sum / static_cast<double>(greedy_n);
  if (honest_n > 0) r.honest_mean_cores = honest_sum / static_cast<double>(honest_n);
  const double fair =
      app_.cpu_limit() / static_cast<double>(tracked_.size());
  r.greedy_capture = fair > 0.0 ? r.greedy_mean_cores / fair : 0.0;
  return r;
}

}  // namespace escra::exp
