// Application profiling pass (Section VI-B).
//
// "We estimated the resources needed ... by profiling each container and
// measuring maximum CPU and memory usage." The profile runs the application
// under a representative load (the Fixed 400 req/s workload) with generous
// limits and records, per container, the peak 1-second CPU usage (cores)
// and peak memory usage — the 1-second aggregation deliberately mirrors
// what cAdvisor-style tooling gives an operator, smoothing away the
// sub-second spikes that later cause throttles under static limits.
//
// The static baseline sets limits to multiplier x these peaks; Autopilot
// initializes from them; Escra's Distributed Container global limits are
// the same aggregate budget as the static-1.5x deployment, so every policy
// works from an identical resource envelope.
#pragma once

#include <vector>

#include "app/benchmarks.h"
#include "memcg/mem_cgroup.h"
#include "sim/time.h"

namespace escra::exp {

struct ContainerProfile {
  double peak_cores = 0.0;
  memcg::Bytes peak_mem = 0;
};

struct ProfileResult {
  std::vector<ContainerProfile> containers;  // in Application container order

  double total_peak_cores() const;
  memcg::Bytes total_peak_mem() const;
};

struct ProfileConfig {
  // Measurement starts after the warmup skip: the profiler measures the
  // *serving-time* maximum, the way an operator reads a dashboard once the
  // app is steady. Startup/JIT spikes are not in the profile — and the
  // 1-second aggregation smooths sub-second spikes — which is precisely why
  // "1.5x the profiled max" still throttles under bursts (Section VI-C).
  sim::Duration warmup_skip = sim::seconds(10);
  sim::Duration duration = sim::seconds(40);
  // The "representative workload" the operator profiles with. Deliberately
  // below the evaluation's peak rates: a profile is an estimate made before
  // the real traffic arrives (Section I: "will only result in accurate
  // estimates if there is a representative workload").
  double profile_rate_rps = 350.0;
  std::uint64_t seed = 1234;       // a different realization than the runs
  double generous_cores = 8.0;     // per-container profiling limits
  memcg::Bytes generous_mem = 2 * memcg::kGiB;
};

// Profiles an arbitrary service graph (one fresh simulation; not cached).
ProfileResult profile_graph(const app::GraphSpec& graph,
                            const ProfileConfig& config = {});

// Profiles a built-in benchmark application. Results are memoized per
// benchmark for the lifetime of the process (each bench binary profiles each
// app once).
const ProfileResult& profile_benchmark(app::Benchmark benchmark,
                                       const ProfileConfig& config = {});

}  // namespace escra::exp
