#include "exp/report.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace escra::exp {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, value);
  return buf;
}

double pct_decrease(double theirs, double ours) {
  if (theirs == 0.0) return 0.0;
  return (theirs - ours) / theirs * 100.0;
}

double pct_increase(double theirs, double ours) {
  if (theirs == 0.0) return 0.0;
  return (ours - theirs) / theirs * 100.0;
}

void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("print_table: ragged row");
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
}

void print_cdf(const std::string& label, const sim::SampleSet& samples,
               std::size_t points) {
  std::printf("%s  (n=%zu)\n", label.c_str(), samples.count());
  for (const auto& [value, frac] : samples.cdf_curve(points)) {
    std::printf("  %10.3f  %6.3f\n", value, frac);
  }
}

void print_latency_cdf(const std::string& label, const sim::Histogram& hist,
                       std::size_t points) {
  std::printf("%s  (n=%llu)\n", label.c_str(),
              static_cast<unsigned long long>(hist.count()));
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        points == 1
            ? 100.0
            : 100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    std::printf("  %10.2f  %6.3f\n",
                static_cast<double>(hist.percentile(p)) / 1000.0, p / 100.0);
  }
}

void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace escra::exp
