// Console reporting helpers shared by the benchmark binaries: aligned
// ASCII tables and empirical-CDF printouts matching the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "sim/histogram.h"
#include "sim/stats.h"

namespace escra::exp {

// Prints an aligned table: `header` then `rows`; every row must have
// header.size() cells.
void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

// Prints `points` rows of "value cumulative_fraction" for a sample set
// (one Figure 5/6-style CDF curve).
void print_cdf(const std::string& label, const sim::SampleSet& samples,
               std::size_t points = 20);

// Same for a latency histogram, in milliseconds.
void print_latency_cdf(const std::string& label, const sim::Histogram& hist,
                       std::size_t points = 20);

// Fixed-precision double formatting.
std::string fmt(double value, int precision = 2);
// Percentage-delta formatting with sign.
std::string fmt_pct(double value, int precision = 1);

// Relative change helpers used throughout the evaluation:
//   decrease of `ours` vs `theirs` in percent (positive = we are lower).
double pct_decrease(double theirs, double ours);
//   increase of `ours` vs `theirs` in percent (positive = we are higher).
double pct_increase(double theirs, double ours);

void print_section(const std::string& title);

}  // namespace escra::exp
