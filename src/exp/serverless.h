// Serverless experiment harness (Sections VI-F..VI-H): ImageProcess and
// GridSearch on OpenWhisk alone vs OpenWhisk + Escra (and + Escra at 80%
// of the resource limits, for GridSearch). Produces the latency
// distributions of Figure 7 and the aggregate-limit time series of
// Figures 8 and 9.
#pragma once

#include <cstdint>
#include <vector>

#include "memcg/mem_cgroup.h"
#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace escra::exp {

enum class ServerlessMode {
  kOpenWhisk,      // static per-pod limits (1 vCPU / 256 MiB)
  kEscra,          // + Escra, same global resource envelope
  kEscraReduced,   // + Escra with 80% of the global limits (GridSearch case 3)
};

const char* serverless_mode_name(ServerlessMode mode);

// One point of the aggregate-limit time series (Figures 8 and 9).
struct LimitPoint {
  double t_seconds = 0.0;
  double cpu_limit_cores = 0.0;
  double mem_limit_mib = 0.0;
};

// ---------------------------------------------------------------- ImageProcess

struct ImageProcessConfig {
  ServerlessMode mode = ServerlessMode::kOpenWhisk;
  int iterations = 4;                                  // paper: 4 x 10 min
  sim::Duration iteration_length = sim::seconds(600);
  sim::Duration request_gap = sim::milliseconds(800);  // 1 req / 0.8 s
  std::size_t max_pods = 16;
  int worker_nodes = 3;   // plus infra nodes the model does not need
  double node_cores = 16.0;                            // 2x 8-core E5-2650v2
  memcg::Bytes node_mem = 64LL * memcg::kGiB;
  double upsilon = 35.0;  // Section VI-F: Y = 35 for ImageProcess
  std::uint64_t seed = 7;
};

struct ImageProcessResult {
  sim::Histogram latency;             // per-invocation end-to-end, us
  std::vector<LimitPoint> limits;     // per second, averaged over iterations
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cold_starts = 0;
  double mean_latency_ms = 0.0;
  double mean_cpu_limit_cores = 0.0;  // time-averaged aggregate limit
  double mean_mem_limit_mib = 0.0;
};

ImageProcessResult run_image_process(const ImageProcessConfig& config);

// ------------------------------------------------------------------ GridSearch

struct GridSearchConfig {
  ServerlessMode mode = ServerlessMode::kOpenWhisk;
  int runs = 10;  // paper uses 50; the CDF shape stabilizes well before that
  std::size_t total_tasks = 960;
  std::size_t max_pods = 115;
  int worker_nodes = 4;
  double node_cores = 16.0;
  memcg::Bytes node_mem = 64LL * memcg::kGiB;
  double upsilon = 20.0;  // Section VI-F: Y = 20 for GridSearch
  double reduced_fraction = 0.8;  // the "80% fewer cores/MiB" case
  std::uint64_t seed = 11;
};

struct GridSearchResult {
  sim::SampleSet job_latency_s;       // one make-span per run
  std::vector<LimitPoint> limits;     // per second, from the first run
  double mean_latency_s = 0.0;
  double mean_cpu_limit_cores = 0.0;
  double mean_mem_limit_mib = 0.0;
  std::uint64_t tasks_failed = 0;
};

GridSearchResult run_grid_search(const GridSearchConfig& config);

}  // namespace escra::exp
