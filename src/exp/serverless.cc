#include "exp/serverless.h"

#include <algorithm>
#include <memory>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "serverless/apps.h"
#include "serverless/openwhisk.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace escra::exp {

const char* serverless_mode_name(ServerlessMode mode) {
  switch (mode) {
    case ServerlessMode::kOpenWhisk: return "openwhisk";
    case ServerlessMode::kEscra: return "escra-openwhisk";
    case ServerlessMode::kEscraReduced: return "escra-openwhisk-80pct";
  }
  return "unknown";
}

namespace {

// Shared per-run context: cluster + platform + optional Escra.
struct ServerlessRig {
  sim::Simulation simulation;
  net::Network network{simulation};
  cluster::Cluster k8s{simulation};
  std::unique_ptr<serverless::OpenWhisk> openwhisk;
  std::unique_ptr<core::EscraSystem> escra;

  ServerlessRig(int nodes, double cores, memcg::Bytes mem,
                std::size_t max_pods, ServerlessMode mode, double upsilon,
                double reduced_fraction, sim::Rng rng) {
    for (int i = 0; i < nodes; ++i) {
      k8s.add_node(cluster::NodeConfig{.cores = cores, .memory_capacity = mem});
    }
    serverless::OpenWhiskConfig ow;
    ow.max_pods = max_pods;
    if (mode != ServerlessMode::kOpenWhisk) {
      // Escra treats the openwhisk namespace as one application: the global
      // memory limit is the invoker containerPool budget, and CPU scales
      // linearly with it (Section IV-E).
      const double frac =
          mode == ServerlessMode::kEscraReduced ? reduced_fraction : 1.0;
      const double global_cpu = ow.pod_cpu * static_cast<double>(max_pods) * frac;
      const auto global_mem = static_cast<memcg::Bytes>(
          static_cast<double>(ow.pod_mem) * static_cast<double>(max_pods) * frac);
      core::EscraConfig ec;
      ec.upsilon = upsilon;
      ec.late_join_cores = ow.pod_cpu;
      ec.late_join_mem = ow.pod_mem;
      escra = std::make_unique<core::EscraSystem>(simulation, network, k8s,
                                                  global_cpu, global_mem, ec);
      escra->watch();  // adopt pods as the invoker creates them
      escra->start();
    }
    openwhisk = std::make_unique<serverless::OpenWhisk>(simulation, k8s, ow, rng);
    if (escra) {
      openwhisk->set_pod_reap_hook(
          [this](cluster::Container& c) { escra->release(c); });
    }
  }
};

}  // namespace

ImageProcessResult run_image_process(const ImageProcessConfig& config) {
  ImageProcessResult result;
  const auto seconds =
      static_cast<std::size_t>(sim::to_seconds(config.iteration_length));
  std::vector<double> cpu_sum(seconds, 0.0);
  std::vector<double> mem_sum(seconds, 0.0);

  sim::Rng root(config.seed);
  for (int iter = 0; iter < config.iterations; ++iter) {
    // Each iteration starts with a cold pool (paper: "we ensure there are
    // no ImageProcess pods running").
    ServerlessRig rig(config.worker_nodes, config.node_cores, config.node_mem,
                      config.max_pods, config.mode, config.upsilon,
                      /*reduced_fraction=*/1.0, root.fork());
    rig.openwhisk->register_action(serverless::make_image_process_action());

    rig.simulation.schedule_every(0, config.request_gap, [&] {
      if (rig.simulation.now() >= config.iteration_length) return;
      const sim::TimePoint issued = rig.simulation.now();
      rig.openwhisk->invoke("image-process", [&, issued](bool ok) {
        if (ok) {
          result.latency.record(
              std::max<sim::TimePoint>(1, rig.simulation.now() - issued));
          ++result.completed;
        } else {
          ++result.failed;
        }
      });
    });

    rig.simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
      const auto s =
          static_cast<std::size_t>(sim::to_seconds(rig.simulation.now())) - 1;
      if (s >= seconds) return;
      cpu_sum[s] += rig.openwhisk->aggregate_cpu_limit();
      mem_sum[s] += static_cast<double>(rig.openwhisk->aggregate_mem_limit()) /
                    static_cast<double>(memcg::kMiB);
    });

    rig.simulation.run_until(config.iteration_length + sim::seconds(20));
    result.cold_starts += rig.openwhisk->cold_starts();
  }

  result.limits.reserve(seconds);
  double cpu_accum = 0.0, mem_accum = 0.0;
  for (std::size_t s = 0; s < seconds; ++s) {
    LimitPoint p;
    p.t_seconds = static_cast<double>(s + 1);
    p.cpu_limit_cores = cpu_sum[s] / config.iterations;
    p.mem_limit_mib = mem_sum[s] / config.iterations;
    result.limits.push_back(p);
    cpu_accum += p.cpu_limit_cores;
    mem_accum += p.mem_limit_mib;
  }
  if (seconds > 0) {
    result.mean_cpu_limit_cores = cpu_accum / static_cast<double>(seconds);
    result.mean_mem_limit_mib = mem_accum / static_cast<double>(seconds);
  }
  result.mean_latency_ms = result.latency.mean() / 1000.0;
  return result;
}

GridSearchResult run_grid_search(const GridSearchConfig& config) {
  GridSearchResult result;
  sim::Rng root(config.seed);

  for (int run = 0; run < config.runs; ++run) {
    ServerlessRig rig(config.worker_nodes, config.node_cores, config.node_mem,
                      config.max_pods, config.mode, config.upsilon,
                      config.reduced_fraction, root.fork());
    rig.openwhisk->register_action(serverless::make_grid_task_action());

    bool finished = false;
    sim::Duration makespan = 0;
    serverless::GridSearchJob job(
        rig.simulation, *rig.openwhisk, {.total_tasks = config.total_tasks},
        [&](sim::Duration span) {
          finished = true;
          makespan = span;
        });

    const bool record_series = run == 0;
    rig.simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
      if (!record_series || finished) return;
      LimitPoint p;
      p.t_seconds = sim::to_seconds(rig.simulation.now());
      p.cpu_limit_cores = rig.openwhisk->aggregate_cpu_limit();
      p.mem_limit_mib =
          static_cast<double>(rig.openwhisk->aggregate_mem_limit()) /
          static_cast<double>(memcg::kMiB);
      result.limits.push_back(p);
    });

    job.start();
    // Advance until the job completes (with a generous safety ceiling).
    while (!finished && rig.simulation.now() < sim::seconds(3600)) {
      rig.simulation.run_until(rig.simulation.now() + sim::seconds(5));
    }
    result.tasks_failed += job.tasks_failed();
    if (finished) result.job_latency_s.add(sim::to_seconds(makespan));
  }

  result.mean_latency_s = result.job_latency_s.mean();
  if (!result.limits.empty()) {
    double cpu = 0.0, mem = 0.0;
    for (const LimitPoint& p : result.limits) {
      cpu += p.cpu_limit_cores;
      mem += p.mem_limit_mib;
    }
    result.mean_cpu_limit_cores = cpu / static_cast<double>(result.limits.size());
    result.mean_mem_limit_mib = mem / static_cast<double>(result.limits.size());
  }
  return result;
}

}  // namespace escra::exp
