#include "exp/microservice.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "baselines/autopilot.h"
#include "baselines/firm.h"
#include "baselines/static_policy.h"
#include "baselines/vpa.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/profile.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra::exp {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStatic: return "static-1.5x";
    case PolicyKind::kAutopilot: return "autopilot";
    case PolicyKind::kEscra: return "escra";
    case PolicyKind::kVpa: return "vpa";
    case PolicyKind::kFirm: return "firm";
  }
  return "unknown";
}

RunResult run_microservice(const MicroserviceConfig& config) {
  sim::Simulation simulation;
  net::Network network(simulation);
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < config.worker_nodes; ++i) {
    // The CFS period under test applies to the worker kernels themselves
    // (it is the kernel bandwidth period, not just a reporting interval).
    k8s.add_node(cluster::NodeConfig{
        .cores = config.node_cores,
        .memory_capacity = config.node_mem,
        .scheduler_slice = config.escra.cfs_period / 10,
        .cfs_period = config.escra.cfs_period});
  }

  sim::Rng root(config.seed);
  // Bootstrap limits are placeholders; every policy overwrites them below.
  const app::GraphSpec graph = config.custom_graph
                                   ? *config.custom_graph
                                   : app::make_benchmark(config.benchmark);
  app::Application application(k8s, graph, root.fork(), /*initial_cores=*/2.0,
                               /*initial_mem=*/512 * memcg::kMiB);
  const std::vector<cluster::Container*>& containers = application.containers();

  // Profile under the representative Fixed workload (Section VI-B); all
  // policies share the same profiled envelope.
  const ProfileResult prof_copy =
      config.custom_graph ? profile_graph(graph) : ProfileResult{};
  const ProfileResult& prof =
      config.custom_graph ? prof_copy : profile_benchmark(config.benchmark);
  if (prof.containers.size() != containers.size()) {
    throw std::logic_error("profile/application container count mismatch");
  }

  // --- install the policy under test ---
  std::unique_ptr<baselines::Policy> baseline;
  std::unique_ptr<core::EscraSystem> escra;
  switch (config.policy) {
    case PolicyKind::kStatic: {
      std::vector<baselines::StaticLimits> limits;
      limits.reserve(containers.size());
      for (const ContainerProfile& p : prof.containers) {
        limits.push_back({p.peak_cores, p.peak_mem});
      }
      baseline = std::make_unique<baselines::StaticPolicy>(
          containers, limits, config.static_multiplier);
      if (config.static_cfs_burst_factor > 0.0) {
        for (cluster::Container* c : containers) {
          c->cpu_cgroup().set_burst(static_cast<sim::Duration>(
              config.static_cfs_burst_factor *
              static_cast<double>(c->cpu_cgroup().quota())));
        }
      }
      break;
    }
    case PolicyKind::kAutopilot: {
      // Autopilot initializes at the best-estimate profile (with the mild
      // deployment margin an operator's resource request carries) and adapts.
      for (std::size_t i = 0; i < containers.size(); ++i) {
        containers[i]->cpu_cgroup().set_limit_cores(
            1.15 * prof.containers[i].peak_cores);
        containers[i]->mem_cgroup().set_limit(static_cast<memcg::Bytes>(
            1.25 * static_cast<double>(prof.containers[i].peak_mem)));
      }
      baselines::AutopilotConfig ap;
      ap.update_interval = config.autopilot_period;
      baseline = std::make_unique<baselines::AutopilotPolicy>(
          simulation, containers, ap);
      break;
    }
    case PolicyKind::kVpa: {
      // Same deployment margins an operator's resource requests carry.
      for (std::size_t i = 0; i < containers.size(); ++i) {
        containers[i]->cpu_cgroup().set_limit_cores(
            1.15 * prof.containers[i].peak_cores);
        containers[i]->mem_cgroup().set_limit(static_cast<memcg::Bytes>(
            1.25 * static_cast<double>(prof.containers[i].peak_mem)));
      }
      baseline = std::make_unique<baselines::VpaPolicy>(simulation, containers,
                                                        baselines::VpaConfig{});
      break;
    }
    case PolicyKind::kFirm: {
      // Firm multiplexes within a fixed budget set at deployment; start it
      // from the same margined profile as the other dynamic baselines.
      for (std::size_t i = 0; i < containers.size(); ++i) {
        containers[i]->cpu_cgroup().set_limit_cores(
            1.15 * prof.containers[i].peak_cores);
        containers[i]->mem_cgroup().set_limit(static_cast<memcg::Bytes>(
            1.25 * static_cast<double>(prof.containers[i].peak_mem)));
      }
      baseline = std::make_unique<baselines::FirmPolicy>(
          simulation, containers, baselines::FirmConfig{});
      break;
    }
    case PolicyKind::kEscra: {
      // Each evaluation runs one application on a dedicated cluster
      // (Section VI-A), so the operator's Distributed Container limits are
      // the cluster itself: Escra may shift the application anywhere within
      // the hardware envelope while right-sizing each container inside it.
      const double global_cpu =
          config.node_cores * static_cast<double>(config.worker_nodes);
      const auto global_mem = static_cast<memcg::Bytes>(
          static_cast<double>(config.node_mem) * config.worker_nodes);
      escra = std::make_unique<core::EscraSystem>(
          simulation, network, k8s, global_cpu, global_mem, config.escra);
      escra->manage(containers);
      escra->start();
      break;
    }
  }
  if (baseline) baseline->start();

  // --- load (wrk2-style open loop), against a *ready* application ---
  const sim::TimePoint load_start = config.app_ready_delay;
  const sim::TimePoint measure_start = load_start + config.warmup;
  const sim::TimePoint load_end = measure_start + config.duration;
  const auto duration_s =
      static_cast<std::size_t>(sim::to_seconds(load_end)) + 1;
  workload::LoadGenerator loadgen(
      simulation, workload::make_workload(config.workload, root.fork(), duration_s),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      },
      config.request_timeout);
  loadgen.run(load_start, load_end);

  // --- slack sampling, once per second after warmup ---
  RunResult result;
  std::vector<sim::Duration> prev_consumed(containers.size(), 0);
  simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
    const bool measuring = simulation.now() > measure_start;
    for (std::size_t i = 0; i < containers.size(); ++i) {
      const sim::Duration consumed = containers[i]->cpu_cgroup().total_consumed();
      const double used_cores = static_cast<double>(consumed - prev_consumed[i]) /
                                static_cast<double>(sim::kSecond);
      prev_consumed[i] = consumed;
      if (!measuring) continue;
      const double cpu_slack =
          containers[i]->cpu_cgroup().limit_cores() - used_cores;
      const double mem_slack_mib =
          static_cast<double>(containers[i]->mem_cgroup().slack()) /
          static_cast<double>(memcg::kMiB);
      result.cpu_slack_cores.add(std::max(0.0, cpu_slack));
      result.mem_slack_mib.add(std::max(0.0, mem_slack_mib));
    }
  });

  simulation.schedule_at(measure_start, [&] { loadgen.reset_measurements(); });
  simulation.run_until(load_end);
  // Let in-flight requests drain so their latencies are recorded.
  simulation.run_until(load_end + sim::seconds(5));

  // --- collect ---
  result.app_name =
      config.custom_graph ? graph.name : app::benchmark_name(config.benchmark);
  result.workload_name = workload::workload_name(config.workload);
  result.policy_name = policy_name(config.policy);
  result.throughput_rps = loadgen.throughput_rps();
  const sim::Histogram& lat = loadgen.latency();
  result.mean_latency_ms = lat.mean() / 1000.0;
  result.p50_latency_ms = static_cast<double>(lat.percentile(50)) / 1000.0;
  result.p99_latency_ms = static_cast<double>(lat.percentile(99)) / 1000.0;
  result.p999_latency_ms = static_cast<double>(lat.percentile(99.9)) / 1000.0;
  result.succeeded = loadgen.succeeded();
  result.failed = loadgen.failed();
  for (const cluster::Container* c : containers) {
    result.oom_kills += c->oom_kill_count();
    result.evictions += c->eviction_count();
  }
  if (escra) {
    result.oom_rescues = escra->controller().oom_rescues();
    result.limit_updates = escra->controller().limit_updates_sent();
    result.telemetry_msgs =
        network.stats(net::Channel::kCpuTelemetry).messages;
    result.peak_net_mbps = network.peak_mbps();
    result.mean_net_mbps = network.mean_mbps();
    escra->stop();
  }
  if (baseline) baseline->stop();
  return result;
}

}  // namespace escra::exp
