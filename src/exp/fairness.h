// Per-tenant fairness accounting for adversarial runs (src/adv).
//
// Samples each tracked container's CPU allocation on a fixed cadence and
// reduces the series to the numbers the adversarial-tenant experiments
// report: pool utilization, Jain's fairness index on two horizons, and how
// much of the pool the greedy tenants captured relative to their static
// fair share. Short-term Jain (the time-mean of per-sample indices) is the
// honest-burst-friendly metric — a momentarily lopsided pool is fine if it
// averages out; long-term Jain (index of per-container time-means) is what
// a sustained overclaimer degrades and what the credit defense must
// restore. Honest-tenant request latency comes from the experiment's load
// generators; the driver fills honest_p99_ms in.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/container.h"
#include "core/distributed_container.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::exp {

struct FairnessReport {
  // Mean allocated / pool over the sampling window.
  double cpu_utilization = 0.0;
  // Jain index of the per-container *time-mean* allocations (long horizon).
  double jain_long_term = 0.0;
  // Time-mean of the per-sample Jain indices (short horizon).
  double jain_short_term = 0.0;
  // Mean allocation of greedy / honest containers, in cores.
  double greedy_mean_cores = 0.0;
  double honest_mean_cores = 0.0;
  // greedy_mean_cores / static fair share (pool / tracked containers):
  // > 1 means the greedy tenants held more than admission would give them;
  // >= 2 is the attack succeeding outright.
  double greedy_capture = 0.0;
  // Filled by the experiment driver from its honest load generators.
  double honest_p99_ms = 0.0;
  std::uint64_t samples = 0;
};

// Jain's fairness index (1/n .. 1; 1 = perfectly even). Returns 1 for an
// empty or all-zero vector (nothing allocated is trivially even).
double jain_index(const std::vector<double>& xs);

class FairnessMeter {
 public:
  FairnessMeter(sim::Simulation& sim, const core::DistributedContainer& app,
                sim::Duration interval = sim::milliseconds(100));
  ~FairnessMeter();

  FairnessMeter(const FairnessMeter&) = delete;
  FairnessMeter& operator=(const FairnessMeter&) = delete;

  // Registers a container in the sample set. Call before start().
  void track(cluster::ContainerId id, bool greedy);

  void start(sim::TimePoint at);
  void stop();

  FairnessReport report() const;

 private:
  void sample();

  struct Tracked {
    cluster::ContainerId id = 0;
    bool greedy = false;
    double sum_cores = 0.0;
  };

  sim::Simulation& sim_;
  const core::DistributedContainer& app_;
  sim::Duration interval_;
  std::vector<Tracked> tracked_;
  sim::EventHandle start_timer_;
  sim::EventHandle sample_timer_;
  double sum_util_ = 0.0;
  double sum_jain_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace escra::exp
