#include "exp/profile.h"

#include <algorithm>

#include "app/service_graph.h"
#include "cluster/cluster.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sweep/cache.h"
#include "workload/load_generator.h"

namespace escra::exp {

double ProfileResult::total_peak_cores() const {
  double total = 0.0;
  for (const ContainerProfile& c : containers) total += c.peak_cores;
  return total;
}

memcg::Bytes ProfileResult::total_peak_mem() const {
  memcg::Bytes total = 0;
  for (const ContainerProfile& c : containers) total += c.peak_mem;
  return total;
}

ProfileResult profile_graph(const app::GraphSpec& graph,
                            const ProfileConfig& cfg) {
  sim::Simulation simulation;
  cluster::Cluster k8s(simulation);
  for (int i = 0; i < 3; ++i) k8s.add_node(cluster::NodeConfig{});

  sim::Rng root(cfg.seed);
  app::Application application(k8s, graph, root.fork(), cfg.generous_cores,
                               cfg.generous_mem);

  workload::LoadGenerator loadgen(
      simulation,
      std::make_unique<workload::FixedArrivals>(cfg.profile_rate_rps),
      [&application](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  loadgen.run(0, cfg.duration);

  const auto& containers = application.containers();
  ProfileResult result;
  result.containers.resize(containers.size());
  std::vector<sim::Duration> prev_consumed(containers.size(), 0);

  simulation.schedule_every(sim::kSecond, sim::kSecond, [&] {
    const bool measuring = simulation.now() > cfg.warmup_skip;
    for (std::size_t i = 0; i < containers.size(); ++i) {
      const sim::Duration consumed = containers[i]->cpu_cgroup().total_consumed();
      const double used_cores =
          static_cast<double>(consumed - prev_consumed[i]) /
          static_cast<double>(sim::kSecond);
      prev_consumed[i] = consumed;
      if (!measuring) continue;  // skip the startup transient
      result.containers[i].peak_cores =
          std::max(result.containers[i].peak_cores, used_cores);
      result.containers[i].peak_mem = std::max(
          result.containers[i].peak_mem, containers[i]->mem_cgroup().usage());
    }
  });

  simulation.run_until(cfg.duration);
  // A container that never ran still needs a nonzero baseline so that
  // multiplier-based limits are valid.
  for (ContainerProfile& c : result.containers) {
    c.peak_cores = std::max(c.peak_cores, 0.05);
    c.peak_mem = std::max<memcg::Bytes>(c.peak_mem, 48 * memcg::kMiB);
  }
  return result;
}

const ProfileResult& profile_benchmark(app::Benchmark benchmark,
                                       const ProfileConfig& config) {
  // Shared by every sweep cell that runs this benchmark, including cells on
  // parallel sweep::Runner workers — hence the process-wide cache.
  static sweep::ResultCache<int, ProfileResult> cache;
  return cache.get(static_cast<int>(benchmark), [&config](int key) {
    return profile_graph(
        app::make_benchmark(static_cast<app::Benchmark>(key)), config);
  });
}

}  // namespace escra::exp
