// Decision/state WAL for the replicated controller (src/ha).
//
// The active leader turns every durable state change the Controller makes —
// container registration/deregistration (pool commitments), desired-state
// slot opens and acks, shadow-limit moves, node-liveness transitions — into
// a flat, sequence-numbered record. The log index is globally monotonic
// across epochs; a kEpochStart record marks each leadership handoff and
// resets the replica state it governs, so replay is a pure left fold:
// applying records [0..n) in index order always produces the same replica,
// regardless of which leader wrote which prefix (deterministic WAL replay).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "cluster/container.h"
#include "cluster/node.h"
#include "core/messages.h"
#include "memcg/mem_cgroup.h"

namespace escra::ha {

enum class WalKind : std::uint8_t {
  kEpochStart,  // new leadership epoch: replica state resets, then rebuilds
  kRegister,    // container joined: committed cores/mem/bw on a node
  kDeregister,  // container left (deregistered or quarantine-reclaimed)
  kCpuSlot,     // desired-state CPU slot opened/superseded (seq, cores)
  kMemSlot,     // desired-state memory slot opened/superseded (seq, bytes)
  kAckSlot,     // slot closed by the Agent's ack (seq identifies it)
  kMemShadow,   // shadow memory limit moved without a slot (reclaim sweep)
  kNodeHealth,  // node liveness / agent-incarnation transition
  kBwSlot,      // desired-state bandwidth slot opened/superseded (seq, bw)
  kCredit,      // credit-ledger account moved (balance + mint/burn totals)
  kRt,          // RT reservation admitted (absolute image) or revoked
};

struct WalRecord {
  WalKind kind = WalKind::kEpochStart;
  std::uint64_t epoch = 0;  // leader epoch that wrote the record
  std::uint64_t index = 0;  // position in the log (assigned by append)
  cluster::ContainerId container = 0;
  cluster::NodeId node = 0;
  std::uint64_t seq = 0;  // slot sequence (k*Slot/kAckSlot)
  // Resource of the slot being acked (kAckSlot). `is_mem` predates the
  // three-resource slot space and stays in sync for CPU/memory consumers.
  bool is_mem = false;
  core::Resource resource = core::Resource::kCpu;
  double cores = 0.0;
  memcg::Bytes mem = 0;
  double bw_bps = 0.0;                  // kRegister / kBwSlot
  std::uint64_t agent_incarnation = 0;  // kNodeHealth
  bool node_dead = false;               // kNodeHealth
  // kCredit: absolute balance image plus the ledger's running mint/burn
  // totals as of this record, so a replayed prefix always satisfies the
  // conservation law (minted == burned + sum of balances) exactly.
  std::int64_t credit_micro = 0;
  std::int64_t credit_minted = 0;
  std::int64_t credit_burned = 0;
  bool credit_removed = false;  // account closed (balance burned)
  // kRt: absolute reservation image (`cores` carries the admitted floor,
  // `bw_bps` the bandwidth reservation alongside the triple).
  sim::Duration rt_runtime = 0;
  sim::Duration rt_deadline = 0;
  sim::Duration rt_period = 0;
  bool rt_removed = false;  // reservation revoked (kRtEvicted decision)
};

// The leader's in-memory log. Indices never reset (standby cursors stay
// valid across epochs); the prefix every standby has acked is trimmed.
class WalLog {
 public:
  // Assigns the next index, retains the record, returns its index.
  std::uint64_t append(WalRecord record) {
    record.index = next_index_;
    records_.push_back(record);
    return next_index_++;
  }

  // First retained index / one past the last written index.
  std::uint64_t base() const { return next_index_ - records_.size(); }
  std::uint64_t next_index() const { return next_index_; }
  std::size_t retained() const { return records_.size(); }

  // Record at `index`; must be in [base, next_index).
  const WalRecord& at(std::uint64_t index) const {
    return records_[index - base()];
  }

  // Drops every record below `index` (all-standby-acked prefix).
  void trim_to(std::uint64_t index) {
    while (!records_.empty() && records_.front().index < index) {
      records_.pop_front();
    }
  }

 private:
  std::deque<WalRecord> records_;
  std::uint64_t next_index_ = 0;
};

// The state a WAL prefix folds to: what a standby needs to seat a new
// leader without resyncing the Agents. Held identically by the leader (its
// "book", fed directly by the replication hook) and by every standby (fed
// by the delivered stream), so takeover state equals leader state as of the
// last applied record.
struct ReplicaState {
  struct ContainerState {
    double cores = 0.0;    // current shadow CPU commitment
    memcg::Bytes mem = 0;  // current shadow memory commitment
    cluster::NodeId node = 0;
    double bw_bps = 0.0;  // current shadow bandwidth rate; 0 = unshaped
  };
  struct RtState {
    sim::Duration runtime = 0;
    sim::Duration deadline = 0;
    sim::Duration period = 0;
    double bw_bps = 0.0;  // bandwidth reservation; 0 = none
  };
  struct SlotState {
    std::uint64_t seq = 0;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;
  };
  struct NodeState {
    std::uint64_t agent_incarnation = 0;
    bool dead = false;
  };

  // std::map: deterministic iteration order for takeover replay. Slot keys
  // are the *external* identity container_id*4 + resource — deliberately
  // independent of any leader's process-local ContainerIndex slot numbers,
  // so a standby's replayed state matches regardless of interning order.
  std::map<cluster::ContainerId, ContainerState> containers;
  std::map<std::uint64_t, SlotState> slots;  // key = container*4 + resource
  std::map<cluster::NodeId, NodeState> nodes;
  // Credit-ledger image (Karma defense): balances plus the mint/burn
  // totals carried on every kCredit record. Balances for closed accounts
  // are erased by an explicit credit_removed record, not by kDeregister —
  // the close's burn must land in the totals atomically with the erase.
  std::map<cluster::ContainerId, std::int64_t> credits;
  std::int64_t credit_minted = 0;
  std::int64_t credit_burned = 0;
  // Admitted RT reservations (absolute images; erased by an explicit
  // rt_removed record or by the container's kDeregister).
  std::map<cluster::ContainerId, RtState> rt;
  std::uint64_t epoch = 0;

  static std::uint64_t slot_key(cluster::ContainerId id, core::Resource r) {
    return static_cast<std::uint64_t>(id) * 4 +
           static_cast<std::uint64_t>(r);
  }

  void apply(const WalRecord& r) {
    switch (r.kind) {
      case WalKind::kEpochStart:
        // The new leader re-registers everything through its replication
        // hook right after this record; the replica rebuilds from that.
        containers.clear();
        slots.clear();
        nodes.clear();
        credits.clear();
        credit_minted = 0;
        credit_burned = 0;
        rt.clear();
        epoch = r.epoch;
        break;
      case WalKind::kRegister:
        containers[r.container] =
            ContainerState{r.cores, r.mem, r.node, r.bw_bps};
        break;
      case WalKind::kDeregister:
        containers.erase(r.container);
        slots.erase(slot_key(r.container, core::Resource::kCpu));
        slots.erase(slot_key(r.container, core::Resource::kMem));
        slots.erase(slot_key(r.container, core::Resource::kBw));
        rt.erase(r.container);
        break;
      case WalKind::kCpuSlot: {
        slots[slot_key(r.container, core::Resource::kCpu)] =
            SlotState{r.seq, r.cores, 0, 0.0};
        const auto it = containers.find(r.container);
        if (it != containers.end()) it->second.cores = r.cores;
        break;
      }
      case WalKind::kMemSlot: {
        slots[slot_key(r.container, core::Resource::kMem)] =
            SlotState{r.seq, 0.0, r.mem, 0.0};
        const auto it = containers.find(r.container);
        if (it != containers.end()) it->second.mem = r.mem;
        break;
      }
      case WalKind::kBwSlot: {
        slots[slot_key(r.container, core::Resource::kBw)] =
            SlotState{r.seq, 0.0, 0, r.bw_bps};
        const auto it = containers.find(r.container);
        if (it != containers.end()) it->second.bw_bps = r.bw_bps;
        break;
      }
      case WalKind::kAckSlot: {
        const auto it = slots.find(slot_key(r.container, r.resource));
        // A newer (superseding) slot under the same key stays open: only
        // the ack for the newest sequence closes it.
        if (it != slots.end() && it->second.seq == r.seq) slots.erase(it);
        break;
      }
      case WalKind::kMemShadow: {
        const auto it = containers.find(r.container);
        if (it != containers.end()) it->second.mem = r.mem;
        break;
      }
      case WalKind::kNodeHealth:
        nodes[r.node] = NodeState{r.agent_incarnation, r.node_dead};
        break;
      case WalKind::kCredit:
        if (r.credit_removed) {
          credits.erase(r.container);
        } else {
          credits[r.container] = r.credit_micro;
        }
        credit_minted = r.credit_minted;
        credit_burned = r.credit_burned;
        break;
      case WalKind::kRt:
        if (r.rt_removed) {
          rt.erase(r.container);
        } else {
          rt[r.container] =
              RtState{r.rt_runtime, r.rt_deadline, r.rt_period, r.bw_bps};
        }
        break;
    }
  }
};

}  // namespace escra::ha
