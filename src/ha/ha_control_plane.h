// Warm-standby replicated controller (controller HA).
//
// The active leader streams the Controller's decision/state WAL (src/ha/
// wal.h) to N standby replicas over net::Channel::kHaReplication, and
// announces its leadership lease every `lease_interval`. Each standby folds
// the delivered records into a ReplicaState — the exact image a new leader
// needs: registered containers with their current shadow limits, every
// still-open desired-state slot, and the node liveness/incarnation map.
//
// When the lease goes silent for `lease_timeout` (+ rank * takeover_stagger,
// so elections are staggered and at most one standby moves at a time), the
// standby fences the old epoch and takes over:
//
//   1. It claims a strictly higher epoch. If the old leader is in fact
//      alive (a partition, not a crash — split brain), the seat is deposed:
//      the old leader lives on briefly as a "ghost" that keeps
//      retransmitting its in-flight old-epoch updates until it abdicates.
//   2. Controller::takeover installs the replica: registry, pool
//      commitments and node health rebuild from the book — no Agent
//      resync round-trips — and every open slot is replayed with a fresh
//      epoch-packed sequence.
//   3. A fence broadcast tells every Agent the new epoch. Agents discard
//      any lower-epoch update (Apply::kFenced, reusing the incarnation/seq
//      machinery), so the ghost can never move a cgroup after the handoff:
//      epochs resolve split brain, divergent limits are never applied.
//   4. The fence/replay traffic doubles as controller contact, so a
//      takeover that beats the Agents' lease watchdog (lease_timeout <<
//      agent lease) keeps every node out of fail-static entirely.
//
// The promoted standby's seat is the Controller singleton itself (the seat
// is a role, not a process); a fresh standby immediately replaces it, so
// the pool survives arbitrary leader churn. Everything is driven by the
// deterministic simulation: identical seeds give byte-identical failover
// schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/escra.h"
#include "ha/wal.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace escra::ha {

struct HaConfig {
  int standbys = 1;
  // Leader -> standby lease announcement period (also the retransmit /
  // ack-cursor exchange tick).
  sim::Duration lease_interval = sim::milliseconds(50);
  // Silence after which a standby declares the leader dead. Must sit well
  // under the Agents' fail-static lease (default 500 ms) for takeover to
  // keep nodes live.
  sim::Duration lease_timeout = sim::milliseconds(200);
  // Election stagger between standby ranks: rank k waits an extra
  // k * takeover_stagger, so a successful takeover (whose new lease
  // announcements arrive within one RTT) always preempts lower ranks.
  sim::Duration takeover_stagger = sim::milliseconds(100);
  // How long a deposed (split-brain) leader keeps retransmitting its
  // in-flight updates before noticing the higher epoch and abdicating.
  sim::Duration ghost_abdicate = sim::milliseconds(500);
  // Standby ack cursors further than this many records behind the log head
  // at a lease tick are traced as kWalLag.
  std::uint64_t wal_lag_threshold = 64;
  // First standby-endpoint index this plane hands out: standby k answers at
  // net::standby_endpoint(endpoint_base + k). A sharded control plane gives
  // each shard's HA group a disjoint band (shard * max-standbys) so a
  // partition aimed at one shard's replica never clips another's.
  int endpoint_base = 0;
};

class HaControlPlane {
 public:
  // Attaches to a (possibly already running) system: hooks the Controller's
  // replication stream, seeds the leader book from its live snapshots, and
  // creates `config.standbys` warm standbys. `net` must be the same network
  // the system's control plane runs on.
  HaControlPlane(core::EscraSystem& escra, net::Network& net,
                 HaConfig config = {});
  ~HaControlPlane();

  HaControlPlane(const HaControlPlane&) = delete;
  HaControlPlane& operator=(const HaControlPlane&) = delete;

  // Starts/stops the lease loop and the standby watchdogs.
  void start();
  void stop();

  // Fault-injection entry: kills the current leader *without* scheduling a
  // restart — failover is the standbys' job now.
  void kill_leader();

  // --- introspection (tests, benchmarks, tools) ---
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t wal_appends() const { return wal_appends_; }
  std::uint64_t wal_trimmed() const { return log_.base(); }
  int standby_count() const { return static_cast<int>(standbys_.size()); }
  const ReplicaState& book() const { return book_; }
  // Rank r standby's replica / contiguously-applied cursor.
  const ReplicaState& standby_replica(int rank) const;
  std::uint64_t standby_next_index(int rank) const;
  bool ghost_active() const;

 private:
  struct Standby {
    int endpoint_index = 0;  // net::standby_endpoint() address (stable)
    ReplicaState replica;
    std::uint64_t next_index = 0;  // next contiguous record to apply
    std::map<std::uint64_t, WalRecord> stash;  // out-of-order arrivals
    std::uint64_t acked = 0;  // leader-side cumulative-ack cursor
    sim::TimePoint last_leader_contact = 0;
    std::uint64_t last_seen_epoch = 0;
    bool synced = false;  // initial state snapshot delivered
    sim::EventHandle watchdog;
  };

  // A deposed leader's dying gasps: the old-epoch in-flight slots it keeps
  // retransmitting until it abdicates. Fenced at every live Agent.
  struct GhostSlot {
    cluster::ContainerId id = 0;
    cluster::NodeId node = 0;
    core::Resource resource = core::Resource::kCpu;
    double cores = 0.0;
    memcg::Bytes mem = 0;
    double bw_bps = 0.0;
    std::uint64_t seq = 0;
  };
  struct Ghost {
    std::uint64_t epoch = 0;
    std::vector<GhostSlot> slots;
    sim::TimePoint abdicate_at = 0;
    sim::EventHandle timer;
  };

  void on_repl_event(const core::Controller::ReplicationEvent& ev);
  void append_and_stream(WalRecord record);
  void stream_record(Standby& standby, const WalRecord& record);
  void deliver_record(Standby& standby, const WalRecord& record);
  void send_ack(Standby& standby);
  void leader_tick();
  Standby& add_standby();
  void send_snapshot(Standby& standby);
  void arm_watchdog(Standby& standby);
  void standby_check(Standby& standby);
  int rank_of(const Standby& standby) const;
  void promote(Standby& standby);
  void spawn_ghost();
  void ghost_tick(Ghost& ghost);
  obs::Observer* observer();

  core::EscraSystem& escra_;
  sim::Simulation& sim_;
  net::Network& net_;
  HaConfig config_;

  WalLog log_;
  ReplicaState book_;  // leader-side fold of the same log
  std::vector<std::unique_ptr<Standby>> standbys_;  // index 0 = rank 0
  std::vector<std::unique_ptr<Ghost>> ghosts_;
  sim::EventHandle lease_loop_;
  bool started_ = false;
  int next_endpoint_index_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t wal_appends_ = 0;
};

}  // namespace escra::ha
