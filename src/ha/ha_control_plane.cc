#include "ha/ha_control_plane.h"

#include <algorithm>
#include <utility>

#include "core/messages.h"
#include "obs/observer.h"

namespace escra::ha {

namespace {

net::EndpointId node_ep(cluster::NodeId node) {
  return static_cast<net::EndpointId>(node);
}

// Retransmitted WAL records per standby per lease tick: bounds the burst
// after a long outage without stalling catch-up (128 records / 50 ms).
constexpr std::uint64_t kRetransmitBatch = 128;

}  // namespace

HaControlPlane::HaControlPlane(core::EscraSystem& escra, net::Network& net,
                               HaConfig config)
    : escra_(escra),
      sim_(escra.cluster().simulation()),
      net_(net),
      config_(config) {
  core::Controller& controller = escra_.controller();
  epoch_ = controller.epoch();
  book_.epoch = epoch_;

  // Seed the leader book from the live system (attaching mid-run is legal):
  // node health, then containers with their current shadow commitments,
  // then every still-open desired-state slot with its real sequence.
  for (const auto& n : controller.health_snapshot()) {
    book_.nodes[n.node] = ReplicaState::NodeState{n.agent_incarnation, n.dead};
  }
  for (const auto& c : controller.registry_snapshot()) {
    cluster::Node* node = escra_.cluster().node_of(c.id);
    book_.containers[c.id] = ReplicaState::ContainerState{
        c.cores, c.mem, node != nullptr ? node->id() : 0, c.bw_bps};
  }
  for (const auto& s : controller.pending_slots()) {
    book_.slots[ReplicaState::slot_key(s.id, s.resource)] =
        ReplicaState::SlotState{s.seq, s.cores, s.mem, s.bw_bps};
  }

  // Log origin: the current epoch's start. Standbys never replay across
  // this (they bootstrap from a book snapshot), but every later record
  // folds deterministically on top of it.
  WalRecord origin;
  origin.kind = WalKind::kEpochStart;
  origin.epoch = epoch_;
  log_.append(origin);

  controller.set_replication_hook(
      [this](const core::Controller::ReplicationEvent& ev) {
        on_repl_event(ev);
      });

  for (int i = 0; i < config_.standbys; ++i) add_standby();
}

HaControlPlane::~HaControlPlane() {
  stop();
  escra_.controller().set_replication_hook(nullptr);
}

obs::Observer* HaControlPlane::observer() {
  return escra_.controller().observer();
}

void HaControlPlane::start() {
  if (started_) return;
  started_ = true;
  const sim::TimePoint now = sim_.now();
  lease_loop_ = sim_.schedule_every(now + config_.lease_interval,
                                    config_.lease_interval,
                                    [this] { leader_tick(); });
  for (const auto& standby : standbys_) {
    standby->last_leader_contact = now;
    arm_watchdog(*standby);
  }
  obs::Observer* obs = observer();
  if (obs != nullptr) obs->h.ha_epoch->set(static_cast<double>(epoch_));
}

void HaControlPlane::stop() {
  if (!started_) return;
  started_ = false;
  sim_.cancel(lease_loop_);
  for (const auto& standby : standbys_) sim_.cancel(standby->watchdog);
  for (const auto& ghost : ghosts_) sim_.cancel(ghost->timer);
  ghosts_.clear();
}

void HaControlPlane::kill_leader() { escra_.crash(); }

const ReplicaState& HaControlPlane::standby_replica(int rank) const {
  return standbys_.at(static_cast<std::size_t>(rank))->replica;
}

std::uint64_t HaControlPlane::standby_next_index(int rank) const {
  return standbys_.at(static_cast<std::size_t>(rank))->next_index;
}

bool HaControlPlane::ghost_active() const { return !ghosts_.empty(); }

int HaControlPlane::rank_of(const Standby& standby) const {
  for (std::size_t i = 0; i < standbys_.size(); ++i) {
    if (standbys_[i].get() == &standby) return static_cast<int>(i);
  }
  return 0;
}

// --- replication stream (leader side) ---

void HaControlPlane::on_repl_event(
    const core::Controller::ReplicationEvent& ev) {
  using Kind = core::Controller::ReplicationEvent::Kind;
  WalRecord r;
  switch (ev.kind) {
    case Kind::kRegister:
      r.kind = WalKind::kRegister;
      break;
    case Kind::kDeregister:
      r.kind = WalKind::kDeregister;
      break;
    case Kind::kCpuSlot:
      r.kind = WalKind::kCpuSlot;
      break;
    case Kind::kMemSlot:
      r.kind = WalKind::kMemSlot;
      break;
    case Kind::kAckSlot:
      r.kind = WalKind::kAckSlot;
      break;
    case Kind::kMemShadow:
      r.kind = WalKind::kMemShadow;
      break;
    case Kind::kNodeHealth:
      r.kind = WalKind::kNodeHealth;
      break;
    case Kind::kBwSlot:
      r.kind = WalKind::kBwSlot;
      break;
    case Kind::kCredit:
      r.kind = WalKind::kCredit;
      break;
    case Kind::kRt:
      r.kind = WalKind::kRt;
      break;
  }
  r.epoch = escra_.controller().epoch();
  r.container = ev.container;
  r.node = ev.node;
  r.seq = ev.seq;
  r.is_mem = ev.is_mem;
  r.resource = ev.resource;
  r.cores = ev.cores;
  r.mem = ev.mem;
  r.bw_bps = ev.bw_bps;
  r.agent_incarnation = ev.agent_incarnation;
  r.node_dead = ev.node_dead;
  r.credit_micro = ev.credit_micro;
  r.credit_minted = ev.credit_minted;
  r.credit_burned = ev.credit_burned;
  r.credit_removed = ev.credit_removed;
  r.rt_runtime = ev.rt_runtime;
  r.rt_deadline = ev.rt_deadline;
  r.rt_period = ev.rt_period;
  r.rt_removed = ev.rt_removed;
  append_and_stream(r);
}

void HaControlPlane::append_and_stream(WalRecord record) {
  record.index = log_.append(record);
  book_.apply(record);
  ++wal_appends_;
  obs::Observer* obs = observer();
  if (obs != nullptr) obs->h.ha_wal_appends->inc();
  for (const auto& standby : standbys_) stream_record(*standby, record);
}

void HaControlPlane::stream_record(Standby& standby, const WalRecord& record) {
  const int epi = standby.endpoint_index;
  net_.send_to(net::Channel::kHaReplication, net::kControllerEndpoint,
               net::standby_endpoint(epi), core::kWalRecordWireBytes,
               [this, epi, record] {
                 for (const auto& s : standbys_) {
                   if (s->endpoint_index == epi) {
                     deliver_record(*s, record);
                     return;
                   }
                 }
                 // Standby promoted/retired while the record was in flight.
               });
}

void HaControlPlane::deliver_record(Standby& standby, const WalRecord& record) {
  // Any leader traffic renews the standby's view of the lease.
  standby.last_leader_contact = sim_.now();
  standby.last_seen_epoch = std::max(standby.last_seen_epoch, record.epoch);
  if (!standby.synced) {
    // Bootstrap snapshot still in flight: stash everything; the snapshot's
    // cursor decides what is stale once it lands.
    standby.stash[record.index] = record;
    return;
  }
  if (record.index == standby.next_index) {
    standby.replica.apply(record);
    ++standby.next_index;
    // Drain any contiguous out-of-order arrivals behind it.
    auto it = standby.stash.begin();
    while (it != standby.stash.end() && it->first <= standby.next_index) {
      if (it->first == standby.next_index) {
        standby.replica.apply(it->second);
        ++standby.next_index;
      }
      it = standby.stash.erase(it);
    }
  } else if (record.index > standby.next_index) {
    standby.stash[record.index] = record;
  }
  // Cumulative ack either way: a duplicate still tells the leader where the
  // contiguous frontier is.
  send_ack(standby);
}

void HaControlPlane::send_ack(Standby& standby) {
  const int epi = standby.endpoint_index;
  const std::uint64_t acked = standby.next_index;
  net_.send_to(net::Channel::kHaReplication, net::standby_endpoint(epi),
               net::kControllerEndpoint, core::kWalAckWireBytes,
               [this, epi, acked] {
                 for (const auto& s : standbys_) {
                   if (s->endpoint_index == epi) {
                     s->acked = std::max(s->acked, acked);
                     return;
                   }
                 }
               });
}

void HaControlPlane::leader_tick() {
  core::Controller& controller = escra_.controller();
  if (controller.crashed()) return;  // dead leaders announce nothing
  if (controller.epoch() != epoch_) {
    // 48-bit sequence wrap bumped the epoch in place (same leader, no
    // handoff): track it so lease announcements carry the truth.
    epoch_ = controller.epoch();
    obs::Observer* obs = observer();
    if (obs != nullptr) obs->h.ha_epoch->set(static_cast<double>(epoch_));
  }
  std::uint64_t min_acked = log_.next_index();
  for (const auto& sp : standbys_) {
    Standby& s = *sp;
    min_acked = std::min(min_acked, s.acked);
    if (s.synced || s.acked < log_.next_index()) {
      // Retransmit the unacked tail (lost records leave a gap the stash
      // can't close on its own). Bounded per tick to keep a long outage
      // from bursting the channel.
      const std::uint64_t from = std::max(s.acked, log_.base());
      const std::uint64_t to =
          std::min(log_.next_index(), from + kRetransmitBatch);
      for (std::uint64_t i = from; i < to; ++i) stream_record(s, log_.at(i));
    }
    const std::uint64_t lag = log_.next_index() - s.acked;
    if (lag > config_.wal_lag_threshold) {
      obs::Observer* obs = observer();
      if (obs != nullptr) {
        obs->h.ha_wal_lag_events->inc();
        obs::TraceEvent ev;
        ev.time = sim_.now();
        ev.kind = obs::EventKind::kWalLag;
        ev.detail = static_cast<std::int64_t>(lag);
        obs->record(ev);
      }
    }
    // The lease announcement proper: leadership is held by this epoch.
    const int epi = s.endpoint_index;
    const std::uint64_t epoch = epoch_;
    net_.send_to(net::Channel::kHaReplication, net::kControllerEndpoint,
                 net::standby_endpoint(epi), core::kLeaseAnnounceWireBytes,
                 [this, epi, epoch] {
                   for (const auto& st : standbys_) {
                     if (st->endpoint_index == epi) {
                       st->last_leader_contact = sim_.now();
                       st->last_seen_epoch =
                           std::max(st->last_seen_epoch, epoch);
                       return;
                     }
                   }
                 });
  }
  log_.trim_to(min_acked);
}

// --- standby pool ---

HaControlPlane::Standby& HaControlPlane::add_standby() {
  auto standby = std::make_unique<Standby>();
  standby->endpoint_index = config_.endpoint_base + next_endpoint_index_++;
  standby->last_leader_contact = sim_.now();
  standby->last_seen_epoch = epoch_;
  // The bootstrap snapshot covers the log so far; streaming continues from
  // here, and the leader's retransmit cursor starts past the snapshot.
  standby->acked = log_.next_index();
  send_snapshot(*standby);
  if (started_) arm_watchdog(*standby);
  standbys_.push_back(std::move(standby));
  return *standbys_.back();
}

void HaControlPlane::send_snapshot(Standby& standby) {
  const int epi = standby.endpoint_index;
  const std::uint64_t snap_index = log_.next_index();
  const std::uint64_t epoch = epoch_;
  // State transfer sized by the book: one record-equivalent per entry.
  const std::size_t bytes =
      core::kWalRecordWireBytes *
      (1 + book_.containers.size() + book_.slots.size() + book_.nodes.size());
  net_.send_to(
      net::Channel::kHaReplication, net::kControllerEndpoint,
      net::standby_endpoint(epi), bytes,
      [this, epi, snap = book_, snap_index, epoch] {
        for (const auto& sp : standbys_) {
          if (sp->endpoint_index != epi) continue;
          Standby& s = *sp;
          s.replica = snap;
          s.next_index = snap_index;
          s.synced = true;
          s.last_leader_contact = sim_.now();
          s.last_seen_epoch = std::max(s.last_seen_epoch, epoch);
          // Drain stashed records the snapshot doesn't already cover.
          auto it = s.stash.begin();
          while (it != s.stash.end() && it->first <= s.next_index) {
            if (it->first == s.next_index) {
              s.replica.apply(it->second);
              ++s.next_index;
            }
            it = s.stash.erase(it);
          }
          send_ack(s);
          return;
        }
      });
}

void HaControlPlane::arm_watchdog(Standby& standby) {
  Standby* s = &standby;
  standby.watchdog =
      sim_.schedule_every(sim_.now() + config_.lease_interval,
                          config_.lease_interval, [this, s] {
                            standby_check(*s);
                          });
}

void HaControlPlane::standby_check(Standby& standby) {
  // Same strict-> boundary contract as the Agent lease watchdog and the
  // Controller liveness sweep: contact at exactly the expiry instant still
  // holds the lease.
  const sim::Duration deadline =
      config_.lease_timeout + rank_of(standby) * config_.takeover_stagger;
  if (sim_.now() - standby.last_leader_contact > deadline) promote(standby);
}

// --- failover ---

void HaControlPlane::promote(Standby& standby) {
  core::Controller& controller = escra_.controller();
  // Detach the winner from the pool first; its replica is the new truth.
  sim_.cancel(standby.watchdog);
  const int rank = rank_of(standby);
  std::unique_ptr<Standby> winner;
  for (auto it = standbys_.begin(); it != standbys_.end(); ++it) {
    if (it->get() == &standby) {
      winner = std::move(*it);
      standbys_.erase(it);
      break;
    }
  }
  Standby& s = *winner;

  const std::uint64_t old_epoch = std::max(s.last_seen_epoch, s.replica.epoch);
  std::uint64_t new_epoch = old_epoch + 1 + static_cast<std::uint64_t>(rank);

  // Split brain: the seat is still live — the lease went silent because of
  // a partition, not a crash. Depose it; the old incumbent lives on as a
  // ghost retransmitting its in-flight old-epoch updates until it notices
  // the higher epoch and abdicates. Epoch fencing at the Agents guarantees
  // none of those ghosts can move a cgroup after the fence lands.
  if (!controller.crashed()) {
    spawn_ghost();
    controller.crash();
  }
  new_epoch = std::max(new_epoch, controller.epoch() + 1);

  obs::Observer* obs = observer();
  obs::EventId cause = 0;
  // Records the old leader never replicated die with it: account the lost
  // tail before the replica becomes the new truth.
  const std::uint64_t lost = log_.next_index() - s.next_index;
  if (obs != nullptr) {
    if (lost > 0) {
      obs->h.ha_wal_lag_events->inc();
      obs::TraceEvent lag;
      lag.time = sim_.now();
      lag.kind = obs::EventKind::kWalLag;
      lag.detail = static_cast<std::int64_t>(lost);
      obs->record(lag);
    }
    obs->h.ha_elections->inc();
    obs::TraceEvent ev;
    ev.time = sim_.now();
    ev.kind = obs::EventKind::kLeaderElected;
    ev.before = static_cast<double>(old_epoch);
    ev.after = static_cast<double>(s.replica.slots.size());
    ev.detail = static_cast<std::int64_t>(new_epoch);
    cause = obs->record(ev);
  }
  ++failovers_;
  epoch_ = new_epoch;

  // Victory broadcast: the survivors learn the election result the instant
  // it is decided, not a network round-trip later. Without this, a standby
  // whose watchdog shares this very timestamp would see a now-shorter
  // deadline (ranks shift down when the winner leaves the pool) against a
  // still-stale lease and depose the winner before its first announcement
  // could possibly arrive — the stagger only serializes elections if losing
  // a race resets your clock.
  for (const auto& sp : standbys_) {
    sp->last_leader_contact = sim_.now();
    sp->last_seen_epoch = std::max(sp->last_seen_epoch, new_epoch);
  }

  // Fresh book for the new epoch: the takeover replay below re-fires the
  // replication hook for every container, slot, and node, repopulating the
  // book and streaming the rebuilt state to the surviving standbys (which
  // reset on the kEpochStart record).
  book_ = ReplicaState{};
  book_.epoch = new_epoch;
  WalRecord start;
  start.kind = WalKind::kEpochStart;
  start.epoch = new_epoch;
  append_and_stream(start);

  std::vector<core::Controller::TakeoverContainer> containers;
  containers.reserve(s.replica.containers.size());
  for (const auto& [id, cs] : s.replica.containers) {
    core::Controller::TakeoverContainer c;
    c.id = id;
    c.cores = cs.cores;
    c.mem = cs.mem;
    c.bw_bps = cs.bw_bps;
    // Replicated RT reservation: the new leader re-installs the admitted
    // set exactly-once (install_rt re-emits kRt into this epoch's stream).
    const auto rt = s.replica.rt.find(id);
    if (rt != s.replica.rt.end()) {
      c.rt = cfs::RtSpec{rt->second.runtime, rt->second.deadline,
                         rt->second.period};
      c.rt_bw_bps = rt->second.bw_bps;
    }
    c.container = escra_.cluster().find_container(id);
    c.node = escra_.cluster().node_of(id);
    containers.push_back(c);
  }
  std::vector<core::Controller::TakeoverSlot> slots;
  slots.reserve(s.replica.slots.size());
  for (const auto& [key, sl] : s.replica.slots) {
    core::Controller::TakeoverSlot slot;
    slot.id = static_cast<cluster::ContainerId>(key / 4);
    slot.resource = static_cast<core::Resource>(key % 4);
    slot.is_mem = slot.resource == core::Resource::kMem;
    slot.cores = sl.cores;
    slot.mem = sl.mem;
    slot.bw_bps = sl.bw_bps;
    slot.seq = sl.seq;
    slots.push_back(slot);
  }
  std::vector<core::Controller::TakeoverNode> nodes;
  nodes.reserve(s.replica.nodes.size());
  for (const auto& [node, ns] : s.replica.nodes) {
    nodes.push_back(core::Controller::TakeoverNode{
        node, ns.agent_incarnation, ns.dead});
  }

  controller.takeover(new_epoch, containers, slots, nodes, cause);
  // Credit-ledger image (Karma defense): takeover re-registration opened
  // fresh init accounts; replace them with the replicated balances so a
  // greedy tenant cannot launder its debt through a failover. Skipped when
  // the replica carries no credit state (defense off in this run).
  if (!s.replica.credits.empty() || s.replica.credit_minted != 0 ||
      s.replica.credit_burned != 0) {
    std::vector<core::CreditLedger::Snapshot> credit_accounts;
    credit_accounts.reserve(s.replica.credits.size());
    for (const auto& [id, micro] : s.replica.credits) {
      credit_accounts.push_back(core::CreditLedger::Snapshot{id, micro});
    }
    controller.install_credits(credit_accounts, s.replica.credit_minted,
                               s.replica.credit_burned);
  }
  epoch_ = controller.epoch();
  if (obs != nullptr) obs->h.ha_epoch->set(static_cast<double>(epoch_));

  // Fence broadcast: every Agent ratchets to the new epoch; anything the
  // deposed epoch still has in flight is discarded on arrival. Delivery
  // also counts as controller contact, keeping the nodes' leases warm.
  for (core::Agent* agent : controller.agents()) {
    const std::uint64_t epoch = epoch_;
    net_.send_to(net::Channel::kControlRpc, net::kControllerEndpoint,
                 node_ep(agent->node().id()), core::kFenceWireBytes,
                 [agent, epoch] { agent->fence_epoch(epoch); });
  }

  // Replenish the pool: a fresh standby takes the promoted one's place, so
  // the system survives arbitrary leader churn at the same depth.
  add_standby();
}

void HaControlPlane::spawn_ghost() {
  auto ghost = std::make_unique<Ghost>();
  ghost->epoch = book_.epoch;
  ghost->abdicate_at = sim_.now() + config_.ghost_abdicate;
  ghost->slots.reserve(book_.slots.size());
  for (const auto& [key, sl] : book_.slots) {
    GhostSlot g;
    g.id = static_cast<cluster::ContainerId>(key / 4);
    g.resource = static_cast<core::Resource>(key % 4);
    g.cores = sl.cores;
    g.mem = sl.mem;
    g.bw_bps = sl.bw_bps;
    g.seq = sl.seq;
    const auto it = book_.containers.find(g.id);
    if (it == book_.containers.end()) continue;
    g.node = it->second.node;
    ghost->slots.push_back(g);
  }
  Ghost* g = ghost.get();
  ghost->timer =
      sim_.schedule_every(sim_.now() + config_.lease_interval,
                          config_.lease_interval, [this, g] { ghost_tick(*g); });
  ghosts_.push_back(std::move(ghost));
}

void HaControlPlane::ghost_tick(Ghost& ghost) {
  if (sim_.now() >= ghost.abdicate_at) {
    // The deposed leader finally hears about the higher epoch and stands
    // down for good.
    sim_.cancel(ghost.timer);
    for (auto it = ghosts_.begin(); it != ghosts_.end(); ++it) {
      if (it->get() == &ghost) {
        ghosts_.erase(it);
        break;
      }
    }
    return;
  }
  core::Controller& controller = escra_.controller();
  for (const GhostSlot& slot : ghost.slots) {
    core::Agent* agent = controller.agent_at(slot.node);
    if (agent == nullptr || agent->crashed()) continue;
    const cluster::ContainerId id = slot.id;
    const core::Resource resource = slot.resource;
    const double cores = slot.cores;
    const memcg::Bytes mem = slot.mem;
    const double bw_bps = slot.bw_bps;
    const std::uint64_t seq = slot.seq;
    net_.rpc_to(
        net::kControllerEndpoint, node_ep(slot.node),
        core::kLimitUpdateRpcBytes, core::kLimitUpdateRespBytes,
        [agent, id, resource, cores, mem, bw_bps, seq]() -> bool {
          // The ghost re-sends with its *original* old-epoch sequences:
          // before the fence lands these are stale duplicates at worst
          // (idempotent); after it they bounce off Apply::kFenced.
          core::Agent::Apply result = core::Agent::Apply::kRejected;
          switch (resource) {
            case core::Resource::kCpu:
              result = agent->apply_cpu_limit(id, cores, seq);
              break;
            case core::Resource::kMem:
              result = agent->apply_mem_limit(id, mem, seq);
              break;
            case core::Resource::kBw:
              result = agent->apply_bw_limit(id, bw_bps, seq);
              break;
          }
          return result == core::Agent::Apply::kApplied ||
                 result == core::Agent::Apply::kStale;
        },
        [] {});
  }
}

}  // namespace escra::ha
