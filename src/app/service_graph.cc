#include "app/service_graph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::app {

std::size_t GraphSpec::total_containers() const {
  std::size_t n = 0;
  for (const ServiceSpec& s : services) n += static_cast<std::size_t>(s.replicas);
  return n;
}

void GraphSpec::validate() const {
  if (services.empty()) throw std::invalid_argument("GraphSpec: no services");
  for (const ServiceSpec& s : services) {
    if (s.replicas < 1) throw std::invalid_argument("GraphSpec: replicas < 1");
    if (s.cpu_per_visit <= 0) {
      throw std::invalid_argument("GraphSpec: cpu_per_visit <= 0");
    }
  }
  for (const EdgeSpec& e : edges) {
    if (e.from >= services.size() || e.to >= services.size()) {
      throw std::invalid_argument("GraphSpec: edge index out of range");
    }
    if (e.to <= e.from) {
      // Topological indexing (to > from) is how we guarantee acyclicity.
      throw std::invalid_argument("GraphSpec: edges must go forward");
    }
    if (e.probability <= 0.0 || e.probability > 1.0) {
      throw std::invalid_argument("GraphSpec: probability out of (0,1]");
    }
  }
}

Application::Application(cluster::Cluster& cluster, GraphSpec spec,
                         sim::Rng rng, double initial_cores,
                         memcg::Bytes initial_mem)
    : cluster_(cluster), spec_(std::move(spec)), rng_(rng) {
  spec_.validate();
  by_service_.resize(spec_.services.size());
  rr_.assign(spec_.services.size(), 0);
  out_edges_.resize(spec_.services.size());
  for (const EdgeSpec& e : spec_.edges) out_edges_[e.from].push_back(&e);

  for (std::size_t s = 0; s < spec_.services.size(); ++s) {
    const ServiceSpec& svc = spec_.services[s];
    for (int r = 0; r < svc.replicas; ++r) {
      cluster::ContainerSpec cs;
      cs.name = svc.name + "-" + std::to_string(r);
      cs.max_parallelism = svc.max_parallelism;
      cs.base_memory = svc.base_memory;
      cs.restart_delay = svc.restart_delay;
      cs.startup_cpu = svc.startup_cpu;
      cluster::Container& c =
          cluster_.create_container(cs, initial_cores, initial_mem);
      containers_.push_back(&c);
      by_service_[s].push_back(&c);
      start_background(c, svc);
    }
  }
}

void Application::start_background(cluster::Container& container,
                                   const ServiceSpec& svc) {
  if (svc.background_cpu_per_sec <= 0 && svc.gc_cpu <= 0) return;
  sim::Simulation& simulation = cluster_.simulation();
  // Desynchronize containers so GC bursts do not align across the fleet.
  const sim::Duration phase = sim::milliseconds(rng_.uniform_int(0, 999));
  simulation.schedule_every(
      simulation.now() + sim::kSecond + phase, sim::kSecond,
      [this, &container, &svc] {
        if (!container.running()) return;
        if (svc.background_cpu_per_sec > 0) {
          const double jitter = rng_.uniform(0.6, 1.4);
          container.submit(
              static_cast<sim::Duration>(
                  static_cast<double>(svc.background_cpu_per_sec) * jitter),
              0, nullptr);
        }
        if (svc.gc_cpu > 0 && svc.gc_interval > 0 &&
            rng_.chance(static_cast<double>(sim::kSecond) /
                        static_cast<double>(svc.gc_interval))) {
          container.submit(svc.gc_cpu, 0, nullptr);
        }
      });
}

std::vector<cluster::Container*> Application::service_containers(
    std::size_t service) const {
  if (service >= by_service_.size()) {
    throw std::invalid_argument("service_containers: bad index");
  }
  return by_service_[service];
}

cluster::Container& Application::pick_replica(std::size_t service) {
  auto& replicas = by_service_[service];
  const std::size_t start = rr_[service];
  // Prefer a running replica; if all are restarting return the round-robin
  // choice anyway (the submit will fail, which is the correct outcome).
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    cluster::Container* c = replicas[(start + i) % replicas.size()];
    if (c->running()) {
      rr_[service] = (start + i + 1) % replicas.size();
      return *c;
    }
  }
  rr_[service] = (start + 1) % replicas.size();
  return *replicas[start % replicas.size()];
}

void Application::submit_request(Done done) {
  ++started_;
  auto ctx = std::make_shared<RequestCtx>();
  ctx->outstanding = 1;
  ctx->done = std::move(done);
  visit_service(0, std::move(ctx));
}

void Application::visit_service(std::size_t service,
                                std::shared_ptr<RequestCtx> ctx) {
  const ServiceSpec& svc = spec_.services[service];
  cluster::Container& replica = pick_replica(service);

  // Log-normal visit cost with the configured sigma and the spec'd mean:
  // mean of lognormal(mu, sigma) is exp(mu + sigma^2/2).
  sim::Duration cost = svc.cpu_per_visit;
  if (svc.cpu_jitter_sigma > 0.0) {
    const double sigma = svc.cpu_jitter_sigma;
    const double mu =
        std::log(static_cast<double>(svc.cpu_per_visit)) - sigma * sigma / 2.0;
    // Clamp the log-normal tail at 8x the mean: real request handlers have
    // bounded work, and an unclamped 4-sigma draw would dominate a whole
    // run's tail latency by itself.
    cost = std::clamp<sim::Duration>(
        static_cast<sim::Duration>(rng_.lognormal(mu, sigma)),
        sim::microseconds(50), 8 * svc.cpu_per_visit);
  }

  const bool accepted = replica.submit(
      cost, svc.mem_per_visit, [this, service, ctx](bool ok) {
        if (!ok) {
          ctx->failed = true;
        } else {
          // Fork-join fan-out along outgoing edges.
          for (const EdgeSpec* e : out_edges_[service]) {
            if (e->probability >= 1.0 || rng_.chance(e->probability)) {
              ++ctx->outstanding;
              visit_service(e->to, ctx);
            }
          }
        }
        if (--ctx->outstanding == 0 && ctx->done) {
          ctx->done(!ctx->failed);
          ctx->done = nullptr;
        }
      });
  if (!accepted) {
    // Replica is restarting: the visit never ran.
    ctx->failed = true;
    if (--ctx->outstanding == 0 && ctx->done) {
      ctx->done(false);
      ctx->done = nullptr;
    }
  }
}

}  // namespace escra::app
