#include "app/benchmarks.h"

#include <stdexcept>

namespace escra::app {

namespace {

// Shorthand for building a service entry.
ServiceSpec svc(std::string name, int replicas, double cpu_ms,
                memcg::Bytes mem_visit_mib, memcg::Bytes base_mib,
                double parallelism = 8.0) {
  ServiceSpec s;
  s.name = std::move(name);
  s.replicas = replicas;
  s.cpu_per_visit = sim::milliseconds_f(cpu_ms);
  s.mem_per_visit = mem_visit_mib * memcg::kMiB;
  s.base_memory = base_mib * memcg::kMiB;
  s.max_parallelism = parallelism;
  return s;
}

}  // namespace

GraphSpec make_media_microservice() {
  GraphSpec g;
  g.name = "media-microservice";
  // Index:                        name               rep  cpu   vm  base
  g.services = {
      svc("nginx-web",            4, 2.40, 1, 288, 10),     // 0: entry
      svc("compose-review",       2, 7.20, 3, 384),        // 1
      svc("unique-id",            1, 1.00, 1, 192),          // 2
      svc("text-filter",          1, 4.80, 2, 288),          // 3
      svc("user-service",         2, 3.60, 2, 384),         // 4
      svc("movie-id",             1, 2.00, 1, 192),          // 5
      svc("rating",               2, 3.20, 2, 288),          // 6
      svc("review-storage",       2, 5.60, 3, 480),         // 7
      svc("page-service",         2, 6.40, 3, 384),         // 8
      svc("cast-info",            1, 2.80, 2, 288),          // 9
      svc("plot",                 1, 2.40, 2, 288),          // 10
      svc("search",               2, 8.80, 3, 480),         // 11
      svc("recommender",          1, 9.60, 4, 576),         // 12
      svc("mc-review",            1, 1.20, 1, 768),         // 13
      svc("mongo-review",         2, 7.60, 4, 768),         // 14
      svc("mc-movie",             1, 1.20, 1, 768),         // 15
      svc("mongo-movie",          2, 6.80, 4, 768),         // 16
      svc("user-db",              2, 6.00, 3, 672),         // 17
      svc("video",                1, 4.40, 4, 384),         // 18
      svc("photo",                1, 3.60, 3, 384),         // 19
  };
  // 4+2+1+1+2+1+2+2+2+1+1+2+1+1+2+1+2+2+1+1 = 32 containers.
  g.edges = {
      // Compose-review flow (~30% of requests).
      {0, 1, 0.30},
      {1, 2, 1.0}, {1, 3, 1.0}, {1, 4, 1.0}, {1, 5, 1.0},
      {4, 17, 1.0},
      {5, 6, 0.8},
      {6, 7, 1.0},
      {7, 13, 1.0}, {7, 14, 1.0},
      // Read-page flow (~55%).
      {0, 8, 0.55},
      {8, 9, 0.9}, {8, 10, 0.9}, {8, 12, 0.35},
      {9, 16, 1.0}, {10, 15, 0.7}, {10, 16, 0.5},
      {8, 18, 0.25}, {8, 19, 0.4},
      // Search flow (~25%).
      {0, 11, 0.25},
      {11, 16, 1.0}, {11, 12, 0.3},
  };
  g.validate();
  return g;
}

GraphSpec make_hipster_shop() {
  GraphSpec g;
  g.name = "hipster-shop";
  g.services = {
      svc("frontend",        2, 4.40, 2, 384, 10),  // 0: entry
      svc("product-catalog", 1, 3.20, 2, 384),      // 1
      svc("currency",        1, 1.20, 1, 192),       // 2
      svc("cart",            1, 2.40, 2, 480),      // 3
      svc("recommendation",  1, 7.60, 3, 576),      // 4
      svc("ad",              1, 1.60, 1, 288),       // 5
      svc("checkout",        1, 6.40, 3, 384),      // 6
      svc("payment",         1, 2.80, 1, 288),       // 7
      svc("shipping",        1, 2.00, 1, 288),       // 8
      svc("email",           1, 2.40, 2, 288),       // 9
  };
  // 2+1*9 = 11 containers.
  g.edges = {
      {0, 1, 0.85}, {0, 2, 0.9}, {0, 3, 0.45}, {0, 4, 0.5}, {0, 5, 0.6},
      // Checkout flow on ~12% of requests.
      {0, 6, 0.12},
      {6, 7, 1.0}, {6, 8, 1.0}, {6, 9, 1.0},
  };
  g.validate();
  return g;
}

GraphSpec make_train_ticket() {
  GraphSpec g;
  g.name = "train-ticket";
  // 34 services x 2 replicas = 68 containers.
  const struct {
    const char* name;
    double cpu_ms;
    memcg::Bytes vm;
    memcg::Bytes base;
  } defs[] = {
      {"ts-ui",             3.20, 2, 384},  // 0: entry
      {"ts-auth",           2.80, 1, 288},   // 1
      {"ts-user",           2.40, 1, 288},   // 2
      {"ts-travel",         6.80, 3, 480},  // 3
      {"ts-ticketinfo",     4.40, 2, 384},  // 4
      {"ts-basic",          3.60, 2, 288},   // 5
      {"ts-station",        2.00, 1, 288},   // 6
      {"ts-train",          2.00, 1, 288},   // 7
      {"ts-route",          3.20, 2, 288},   // 8
      {"ts-price",          2.00, 1, 288},   // 9
      {"ts-seat",           3.60, 2, 288},   // 10
      {"ts-config",         1.20, 1, 192},   // 11
      {"ts-order",          5.20, 3, 480},  // 12
      {"ts-order-other",    3.20, 2, 384},  // 13
      {"ts-preserve",       6.00, 3, 384},  // 14
      {"ts-contacts",       2.00, 1, 288},   // 15
      {"ts-assurance",      1.60, 1, 288},   // 16
      {"ts-food",           2.80, 2, 288},   // 17
      {"ts-food-map",       2.00, 1, 288},   // 18
      {"ts-consign",        2.00, 1, 288},   // 19
      {"ts-consign-price",  1.20, 1, 192},   // 20
      {"ts-security",       2.40, 1, 288},   // 21
      {"ts-payment",        3.60, 2, 288},   // 22
      {"ts-inside-payment", 3.20, 2, 288},   // 23
      {"ts-notification",   2.00, 2, 288},   // 24
      {"ts-rebook",         3.20, 2, 288},   // 25
      {"ts-cancel",         2.80, 2, 288},   // 26
      {"ts-execute",        2.40, 1, 288},   // 27
      {"ts-verification",   1.60, 1, 192},   // 28
      {"ts-news",           1.20, 1, 192},   // 29
      {"ts-voucher",        1.60, 1, 192},   // 30
      {"ts-delivery",       2.00, 1, 288},   // 31
      {"ts-admin-order",    2.40, 2, 288},   // 32
      {"ts-admin-travel",   2.40, 2, 288},   // 33
  };
  for (const auto& d : defs) g.services.push_back(svc(d.name, 2, d.cpu_ms, d.vm, d.base));
  g.edges = {
      // Every request authenticates.
      {0, 1, 0.9}, {1, 2, 0.7},
      // Search flow (~60%): travel -> ticketinfo -> basic -> station/train/route/price, seat.
      {0, 3, 0.60},
      {3, 4, 1.0}, {4, 5, 1.0},
      {5, 6, 1.0}, {5, 7, 0.8}, {5, 8, 0.8}, {5, 9, 0.9},
      {3, 10, 0.7}, {10, 11, 0.5},
      // Booking flow (~18%): preserve -> contacts/assurance/food/consign, security, order, payment.
      {0, 14, 0.18},
      {14, 15, 1.0}, {14, 16, 0.6}, {14, 17, 0.5}, {14, 19, 0.3},
      {17, 18, 0.8}, {19, 20, 1.0},
      {14, 21, 1.0}, {21, 22, 0.9},
      {22, 23, 1.0}, {23, 24, 0.8},
      // Order management (~12%): list/cancel/rebook.
      {0, 12, 0.12},
      {12, 13, 0.5}, {12, 26, 0.25}, {12, 25, 0.2},
      {26, 27, 0.8}, {25, 28, 0.6},
      // Misc (~10%): news, vouchers, delivery, admin dashboards.
      {0, 29, 0.06}, {0, 30, 0.04}, {0, 31, 0.04},
      {0, 32, 0.03}, {0, 33, 0.03},
  };
  g.validate();
  return g;
}

GraphSpec make_teastore() {
  GraphSpec g;
  g.name = "teastore";
  g.services = {
      svc("webui",       2, 5.60, 2, 480, 10),  // 0: entry
      svc("auth",        1, 2.40, 1, 288),       // 1
      svc("persistence", 1, 5.20, 3, 672),      // 2
      svc("recommender", 1, 8.40, 4, 672),      // 3
      svc("image",       1, 7.20, 4, 576),      // 4
      svc("registry",    1, 0.80, 1, 192),       // 5
  };
  // 2+1+1+1+1+1 = 7 containers.
  g.edges = {
      {0, 1, 0.5},
      {0, 2, 0.9},
      {0, 3, 0.45},
      {0, 4, 0.7},
      {0, 5, 0.05},
      {3, 4, 0.3},  // recommender fetches product images via image service
  };
  g.validate();
  return g;
}

const char* benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::kMedia: return "media-microservice";
    case Benchmark::kHipster: return "hipster-shop";
    case Benchmark::kTrainTicket: return "train-ticket";
    case Benchmark::kTeastore: return "teastore";
  }
  return "unknown";
}

GraphSpec make_benchmark(Benchmark b) {
  switch (b) {
    case Benchmark::kMedia: return make_media_microservice();
    case Benchmark::kHipster: return make_hipster_shop();
    case Benchmark::kTrainTicket: return make_train_ticket();
    case Benchmark::kTeastore: return make_teastore();
  }
  throw std::invalid_argument("make_benchmark: unknown benchmark");
}

}  // namespace escra::app
