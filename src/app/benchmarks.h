// The four microservice benchmark applications (Section VI-A), modelled as
// service graphs with the paper's container counts:
//
//   MediaMicroservice — 32 containers (DeathStarBench media: IMDB-like
//                       browse/review/rate/compose flows),
//   HipsterShop       — 11 containers (online-boutique browse + checkout),
//   TrainTicket       — 68 containers (ticket search/book/modify flows),
//   Teastore          — 7 containers (tea-shop browse + purchase).
//
// Topologies follow the public benchmark suites' service lists; per-visit
// CPU costs and fan-out probabilities are calibrated so that per-container
// demand is heterogeneous (front ends and storage layers hot, admin paths
// cold) and the aggregate fits the paper's three 20-core workers.
#pragma once

#include "app/service_graph.h"

namespace escra::app {

GraphSpec make_media_microservice();  // 32 containers
GraphSpec make_hipster_shop();        // 11 containers
GraphSpec make_train_ticket();        // 68 containers
GraphSpec make_teastore();            // 7 containers

enum class Benchmark { kMedia, kHipster, kTrainTicket, kTeastore };

const char* benchmark_name(Benchmark b);
GraphSpec make_benchmark(Benchmark b);

}  // namespace escra::app
