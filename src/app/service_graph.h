// Microservice application model.
//
// An application is a DAG of services. A request enters at service 0 and,
// when a service's work completes, fans out (fork-join) along its outgoing
// edges, each taken with a probability — so different requests exercise
// different subsets of the graph, giving per-container demand the
// heterogeneity that makes static limits hard to set (Section VI-C).
//
// Each service has one or more replica containers; requests are routed
// round-robin. The per-visit CPU cost is log-normally jittered around the
// service's mean, and each visit holds a memory footprint in the container
// for its duration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "memcg/mem_cgroup.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::app {

struct ServiceSpec {
  std::string name;
  int replicas = 1;
  // Mean core-time one request visit costs at this service.
  sim::Duration cpu_per_visit = sim::milliseconds(2);
  // Log-normal sigma of the visit cost (0 = deterministic). Real service
  // times are heavy-tailed; this is what puts sub-second demand spikes well
  // above any 1-second-smoothed profile.
  double cpu_jitter_sigma = 0.6;
  // Memory held per in-flight visit.
  memcg::Bytes mem_per_visit = 2 * memcg::kMiB;
  // Container runtime parameters for each replica.
  double max_parallelism = 8.0;
  memcg::Bytes base_memory = 96 * memcg::kMiB;
  sim::Duration restart_delay = sim::seconds(3);
  // Startup warmup burn; profiled peaks include it (see exp/profile.h).
  sim::Duration startup_cpu = sim::milliseconds(1500);
  // Steady background CPU (health checks, metrics exporters), core-time
  // per second.
  sim::Duration background_cpu_per_sec = sim::milliseconds(25);
  // Periodic GC-style burst: `gc_cpu` core-time roughly every `gc_interval`.
  // These sub-second spikes are what a 1-second profiler rounds up to, and
  // a major reason profiled "max usage" sits far above typical usage.
  sim::Duration gc_cpu = sim::milliseconds(250);
  sim::Duration gc_interval = sim::seconds(9);
};

struct EdgeSpec {
  std::size_t from = 0;
  std::size_t to = 0;
  double probability = 1.0;
};

struct GraphSpec {
  std::string name;
  std::vector<ServiceSpec> services;  // service 0 is the entry point
  std::vector<EdgeSpec> edges;

  std::size_t total_containers() const;
  void validate() const;  // throws on cycles, bad indices, bad probabilities
};

// A deployed application: containers created in the cluster plus routing.
class Application {
 public:
  using Done = std::function<void(bool ok)>;

  // Creates one container per replica, spread across the cluster's nodes.
  // `initial_cores`/`initial_mem` bootstrap every container (a policy —
  // Escra or a baseline — typically overwrites them immediately).
  Application(cluster::Cluster& cluster, GraphSpec spec, sim::Rng rng,
              double initial_cores, memcg::Bytes initial_mem);

  const GraphSpec& spec() const { return spec_; }
  const std::vector<cluster::Container*>& containers() const {
    return containers_;
  }

  // Containers backing one service.
  std::vector<cluster::Container*> service_containers(std::size_t service) const;

  // Injects one end-to-end request; `done` fires when every reached service
  // visit has completed (ok) or any visit failed (dropped/OOM).
  void submit_request(Done done);

  std::uint64_t requests_started() const { return started_; }

 private:
  struct RequestCtx {
    int outstanding = 0;
    bool failed = false;
    Done done;
  };
  void visit_service(std::size_t service, std::shared_ptr<RequestCtx> ctx);
  void start_background(cluster::Container& container, const ServiceSpec& svc);
  cluster::Container& pick_replica(std::size_t service);

  cluster::Cluster& cluster_;
  GraphSpec spec_;
  sim::Rng rng_;
  std::vector<cluster::Container*> containers_;
  std::vector<std::vector<cluster::Container*>> by_service_;
  std::vector<std::size_t> rr_;  // round-robin cursor per service
  std::vector<std::vector<const EdgeSpec*>> out_edges_;
  std::uint64_t started_ = 0;
};

}  // namespace escra::app
