#include "adv/greedy.h"

#include <algorithm>

namespace escra::workload {

const char* greedy_strategy_name(GreedyStrategy s) {
  switch (s) {
    case GreedyStrategy::kInflatedUsage:
      return "inflated-usage";
    case GreedyStrategy::kPhantomOom:
      return "phantom-oom";
    case GreedyStrategy::kBurstIdleHoard:
      return "burst-idle-hoard";
    case GreedyStrategy::kColluding:
      return "colluding";
  }
  return "unknown";
}

GreedyTenant::GreedyTenant(sim::Simulation& sim, core::Controller& controller,
                           GreedyProfile profile, sim::Rng rng)
    : sim_(sim), controller_(controller), profile_(profile), rng_(rng) {}

GreedyTenant::~GreedyTenant() { stop(); }

void GreedyTenant::attach(cluster::Container& container) {
  containers_.push_back(&container);
  // The mutator is installed immediately but forges nothing until start():
  // forge() gates on running_, so pre-attack telemetry stays truthful.
  cluster::Container* c = &container;
  container.cpu_cgroup().set_stats_mutator(
      [this, c](cfs::PeriodStats& stats) { forge(*c, stats); });
}

void GreedyTenant::start(sim::TimePoint at) {
  start_timer_ = sim_.schedule_at(at, [this] {
    running_ = true;
    switch (profile_.strategy) {
      case GreedyStrategy::kPhantomOom:
        phantom_timer_ = sim_.schedule_every(
            sim_.now() + profile_.phantom_interval, profile_.phantom_interval,
            [this] { fire_phantom_oom(); });
        break;
      case GreedyStrategy::kColluding:
        rotate_timer_ = sim_.schedule_every(
            sim_.now() + profile_.rotate_interval, profile_.rotate_interval,
            [this] { rotate_liar(); });
        break;
      case GreedyStrategy::kBurstIdleHoard:
        burst_tick();
        break;
      case GreedyStrategy::kInflatedUsage:
        break;  // the mutator alone carries the attack
    }
  });
}

void GreedyTenant::stop() {
  running_ = false;
  bursting_ = false;
  sim_.cancel(start_timer_);
  sim_.cancel(phantom_timer_);
  sim_.cancel(rotate_timer_);
  sim_.cancel(burst_timer_);
  remove_mutators();
}

void GreedyTenant::remove_mutators() {
  for (cluster::Container* c : containers_) {
    c->cpu_cgroup().set_stats_mutator(nullptr);
  }
}

void GreedyTenant::forge(cluster::Container& container,
                         cfs::PeriodStats& stats) {
  if (!running_) return;
  switch (profile_.strategy) {
    case GreedyStrategy::kPhantomOom:
      return;  // telemetry stays truthful; the event channel is the attack
    case GreedyStrategy::kInflatedUsage: {
      if (!rng_.chance(profile_.lie_fraction)) return;
      if (profile_.impossible_fraction > 0.0 &&
          rng_.chance(profile_.impossible_fraction)) {
        // A crude forgery no real cgroup could emit, probing the
        // Controller's ingestion hardening: either unused runtime beyond
        // the quota, or a claimed quota (and usage) beyond any node.
        if (rng_.chance(0.5)) {
          stats.unused = stats.quota + stats.quota + 1;
        } else {
          stats.quota = 100 * container.cpu_cgroup().period();  // 100 cores
          stats.unused = 0;
          stats.throttled = true;
        }
        ++impossible_reports_;
        ++lies_told_;
        return;
      }
      // The plausible forgery: "I used everything and wanted more" — the
      // exact report the scale-up arm rewards, every report period.
      stats.unused = 0;
      stats.throttled = true;
      ++lies_told_;
      return;
    }
    case GreedyStrategy::kBurstIdleHoard: {
      if (bursting_) return;  // the burst is real work, reported truthfully
      if (!rng_.chance(profile_.lie_fraction)) return;
      // Idle phase: hide all slack so κ never reclaims the burst's win.
      // No throttle flag — the point is holding, not growing, so the lie
      // stays small and hard to spot.
      stats.unused = 0;
      stats.throttled = false;
      ++lies_told_;
      return;
    }
    case GreedyStrategy::kColluding: {
      if (containers_.empty()) return;
      if (&container != containers_[active_liar_ % containers_.size()]) {
        return;  // accomplices report truthfully (idle, earning credits)
      }
      if (!rng_.chance(profile_.lie_fraction)) return;
      stats.unused = 0;
      stats.throttled = true;
      ++lies_told_;
      return;
    }
  }
}

void GreedyTenant::fire_phantom_oom() {
  if (!running_ || containers_.empty()) return;
  cluster::Container* c =
      containers_[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(containers_.size()) - 1))];
  if (!c->running()) return;
  ++phantom_ooms_;
  // The forged kernel event: claims a charge of `phantom_shortfall` is
  // about to fail. No real charge exists — a grant just parks pool memory
  // under this tenant's limit.
  if (controller_.handle_oom(*c, profile_.phantom_shortfall,
                             profile_.phantom_shortfall)) {
    ++phantom_grants_;
  }
}

void GreedyTenant::rotate_liar() {
  if (!running_ || containers_.empty()) return;
  active_liar_ = (active_liar_ + 1) % containers_.size();
}

void GreedyTenant::burst_tick() {
  if (!running_) return;
  if (!bursting_) {
    bursting_ = true;
    for (cluster::Container* c : containers_) {
      if (!c->running()) continue;
      // Real core-time demand for the whole burst window, submitted up
      // front: the scheduler drains it at whatever limit the loop grants.
      const std::int64_t periods = std::max<std::int64_t>(
          1, profile_.burst_on / std::max<sim::Duration>(1, c->cpu_cgroup().period()));
      c->submit(periods * profile_.burst_cpu_per_period, memcg::kMiB,
                [](bool) {});
    }
    burst_timer_ = sim_.schedule_after(profile_.burst_on, [this] { burst_tick(); });
  } else {
    bursting_ = false;
    burst_timer_ =
        sim_.schedule_after(profile_.burst_off, [this] { burst_tick(); });
  }
}

}  // namespace escra::workload
