// Adversarial tenant models: workloads that game the κ/Υ control loop.
//
// Escra's loop trusts what the kernel hook reports. A tenant that controls
// its own node image (or just its cgroup's exported stats) can forge that
// stream: report zero unused runtime and a throttle flag every period and
// the allocator funds an ever-growing CPU limit; fabricate pre-OOM events
// and the memory arm hands over grant blocks; burst briefly to win an
// allocation and then lie idle to keep it. These models implement exactly
// those strategies against the real control plane — the *internal*
// scheduling accounting stays truthful (the node cannot run fake cycles),
// only the telemetry wire and the event channel are forged — so the
// fairness experiments (exp::FairnessReport, bench/adv_fairness) measure
// what a lying tenant actually extracts, and what the Karma-style credit
// defense (core/credit_ledger.h) claws back.
//
// Everything is driven off one forked sim::Rng, so an adversarial run is
// byte-identically replayable like every other workload in this repo.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/container.h"
#include "core/controller.h"
#include "memcg/mem_cgroup.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::workload {

enum class GreedyStrategy : std::uint8_t {
  // Forge every CFS period report: zero unused runtime + throttle flag,
  // timed to the report period by construction (the mutator runs at each
  // period boundary). The scale-up arm funds an ever-growing limit.
  kInflatedUsage,
  // Fabricate pre-OOM events on a timer: phantom memcg pressure with a
  // fake shortfall farms the fixed OOM grant block without using a byte.
  kPhantomOom,
  // Burst real work to win an allocation, then lie idle (unused = 0) so
  // the κ scale-down never fires: pool hoarding.
  kBurstIdleHoard,
  // Multi-container collusion: the tenant rotates one "active liar" among
  // its containers while the rest idle honestly below fair share earning
  // credits — an attempt to launder per-container budgets through a pool
  // of accomplices.
  kColluding,
};

const char* greedy_strategy_name(GreedyStrategy s);

struct GreedyProfile {
  GreedyStrategy strategy = GreedyStrategy::kInflatedUsage;
  // Fraction of report periods the tenant forges (1.0 = every period).
  // Forging a fraction models a cautious attacker dodging anomaly alarms.
  double lie_fraction = 1.0;
  // Fraction of forged reports that are *physically impossible* (usage
  // beyond node capacity, unused > quota): a crude attacker, or a probe of
  // the Controller's ingestion hardening. Exercises the telemetry clamp.
  double impossible_fraction = 0.0;
  // kPhantomOom: fabricated event cadence and claimed shortfall.
  sim::Duration phantom_interval = sim::milliseconds(400);
  memcg::Bytes phantom_shortfall = 8 * memcg::kMiB;
  // kBurstIdleHoard: real-work burst length, idle (lying) gap, and the
  // CPU cost submitted per period while bursting.
  sim::Duration burst_on = sim::milliseconds(500);
  sim::Duration burst_off = sim::seconds(3);
  sim::Duration burst_cpu_per_period = sim::milliseconds(400);
  // kColluding: how often the active-liar role rotates.
  sim::Duration rotate_interval = sim::seconds(1);
};

// One adversarial tenant: a set of containers it controls plus the forging
// machinery. attach() the containers, then start(); stop() (or
// destruction) removes every forged hook and timer, restoring truthful
// telemetry.
class GreedyTenant {
 public:
  GreedyTenant(sim::Simulation& sim, core::Controller& controller,
               GreedyProfile profile, sim::Rng rng);
  ~GreedyTenant();

  GreedyTenant(const GreedyTenant&) = delete;
  GreedyTenant& operator=(const GreedyTenant&) = delete;

  // Adds a container to the tenant's control. All strategies accept any
  // number of containers; kColluding is pointless with fewer than two.
  void attach(cluster::Container& container);

  void start(sim::TimePoint at);
  void stop();

  const GreedyProfile& profile() const { return profile_; }
  const std::vector<cluster::Container*>& containers() const {
    return containers_;
  }

  // --- attack telemetry (for experiments and the fuzzer's non-vacuity
  //     checks: a sweep where no lies were told proves nothing) ---
  std::uint64_t lies_told() const { return lies_told_; }
  std::uint64_t impossible_reports() const { return impossible_reports_; }
  std::uint64_t phantom_ooms() const { return phantom_ooms_; }
  std::uint64_t phantom_grants() const { return phantom_grants_; }

 private:
  void install_mutators();
  void remove_mutators();
  void forge(cluster::Container& container, cfs::PeriodStats& stats);
  void fire_phantom_oom();
  void rotate_liar();
  void burst_tick();

  sim::Simulation& sim_;
  core::Controller& controller_;
  GreedyProfile profile_;
  sim::Rng rng_;
  std::vector<cluster::Container*> containers_;
  bool running_ = false;
  bool bursting_ = false;
  std::size_t active_liar_ = 0;  // kColluding rotation cursor
  sim::EventHandle phantom_timer_;
  sim::EventHandle rotate_timer_;
  sim::EventHandle burst_timer_;
  sim::EventHandle start_timer_;
  std::uint64_t lies_told_ = 0;
  std::uint64_t impossible_reports_ = 0;
  std::uint64_t phantom_ooms_ = 0;
  std::uint64_t phantom_grants_ = 0;
};

}  // namespace escra::workload
