#include "workload/load_generator.h"

#include <stdexcept>
#include <utility>

namespace escra::workload {

LoadGenerator::LoadGenerator(sim::Simulation& sim,
                             std::unique_ptr<ArrivalProcess> arrivals,
                             Launcher launcher, sim::Duration timeout)
    : sim_(sim),
      arrivals_(std::move(arrivals)),
      launcher_(std::move(launcher)),
      timeout_(timeout) {
  if (!arrivals_) throw std::invalid_argument("LoadGenerator: null arrivals");
  if (!launcher_) throw std::invalid_argument("LoadGenerator: null launcher");
  if (timeout_ <= 0) throw std::invalid_argument("LoadGenerator: bad timeout");
}

LoadGenerator::~LoadGenerator() { stop(); }

void LoadGenerator::run(sim::TimePoint at, sim::TimePoint until) {
  if (until <= at) throw std::invalid_argument("LoadGenerator: empty window");
  started_at_ = at;
  measure_from_ = at;
  stop_at_ = until;
  running_ = true;
  next_event_ = sim_.schedule_at(at, [this] { issue_next(); });
}

void LoadGenerator::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(next_event_);
}

void LoadGenerator::issue_next() {
  if (!running_) return;
  const sim::TimePoint now = sim_.now();
  if (now >= stop_at_) {
    running_ = false;
    return;
  }
  ++issued_;
  const sim::TimePoint intended = now;
  launcher_([this, intended](bool ok) {
    if (sim_.now() < measure_from_) return;  // warmup trim
    if (sim_.now() - intended > timeout_) {
      // The client gave up before this response arrived.
      ++failed_;
      ++timed_out_;
      return;
    }
    if (ok) {
      ++succeeded_;
      latency_.record(std::max<sim::TimePoint>(1, sim_.now() - intended));
    } else {
      ++failed_;
    }
  });
  next_event_ =
      sim_.schedule_after(arrivals_->next_gap(now), [this] { issue_next(); });
}

double LoadGenerator::throughput_rps() const {
  const sim::Duration window = stop_at_ - std::max(started_at_, measure_from_);
  if (window <= 0) return 0.0;
  return static_cast<double>(succeeded_) / sim::to_seconds(window);
}

void LoadGenerator::reset_measurements() {
  measure_from_ = sim_.now();
  succeeded_ = 0;
  failed_ = 0;
  issued_ = 0;
  latency_.reset();
}

}  // namespace escra::workload
