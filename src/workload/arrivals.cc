#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numbers>
#include <stdexcept>
#include <string>

namespace escra::workload {

namespace {
sim::Duration gap_from_rate(double rate_per_sec, sim::Rng& rng) {
  // Poisson process: exponential inter-arrival with mean 1/rate seconds.
  const double gap_s = rng.exponential(rate_per_sec);
  return std::max<sim::Duration>(1, sim::seconds_f(gap_s));
}
}  // namespace

FixedArrivals::FixedArrivals(double req_per_sec) {
  if (req_per_sec <= 0.0) throw std::invalid_argument("FixedArrivals: rate <= 0");
  gap_ = std::max<sim::Duration>(1, sim::seconds_f(1.0 / req_per_sec));
}

sim::Duration FixedArrivals::next_gap(sim::TimePoint) { return gap_; }

ExpArrivals::ExpArrivals(double lambda_req_per_sec, sim::Rng rng)
    : lambda_(lambda_req_per_sec), rng_(rng) {
  if (lambda_ <= 0.0) throw std::invalid_argument("ExpArrivals: lambda <= 0");
}

sim::Duration ExpArrivals::next_gap(sim::TimePoint) {
  return gap_from_rate(lambda_, rng_);
}

BurstArrivals::BurstArrivals(Params params, sim::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.base_req_per_sec <= 0.0 || params_.burst_lambda <= 0.0) {
    throw std::invalid_argument("BurstArrivals: nonpositive rate");
  }
  if (params_.burst_length > params_.burst_interval) {
    throw std::invalid_argument("BurstArrivals: burst longer than interval");
  }
}

bool BurstArrivals::in_burst(sim::TimePoint t) const {
  // A burst occupies the first `burst_length` of every `burst_interval`,
  // starting after the first interval elapses.
  const sim::TimePoint phase = t % params_.burst_interval;
  return t >= params_.burst_interval && phase < params_.burst_length;
}

sim::Duration BurstArrivals::next_gap(sim::TimePoint now) {
  const double rate = in_burst(now)
                          ? params_.base_req_per_sec + params_.burst_lambda
                          : params_.base_req_per_sec;
  return gap_from_rate(rate, rng_);
}

TraceArrivals::TraceArrivals(std::vector<double> rates, sim::Rng rng)
    : rates_(std::move(rates)), rng_(rng) {
  if (rates_.empty()) throw std::invalid_argument("TraceArrivals: empty trace");
  for (const double r : rates_) {
    if (r <= 0.0) throw std::invalid_argument("TraceArrivals: nonpositive rate");
  }
}

sim::Duration TraceArrivals::next_gap(sim::TimePoint now) {
  const auto second = static_cast<std::size_t>(now / sim::kSecond);
  const double rate = rates_[second % rates_.size()];
  return gap_from_rate(rate, rng_);
}

std::vector<double> make_alibaba_rates(std::size_t seconds, sim::Rng& rng) {
  // Envelope from the paper: 56-548 req/s after the 10x speedup. The shape
  // is a compressed diurnal wave (one "day" every ~200 s of sped-up trace)
  // with multiplicative noise and occasional short spikes, which is what a
  // 10x-accelerated production trace looks like at per-second granularity.
  constexpr double kLow = 56.0;
  constexpr double kHigh = 548.0;
  const double mid = (kLow + kHigh) / 2.0;
  const double amp = (kHigh - kLow) / 2.0;
  std::vector<double> rates;
  rates.reserve(seconds);
  double spike = 0.0;
  for (std::size_t s = 0; s < seconds; ++s) {
    const double t = static_cast<double>(s);
    const double diurnal =
        std::sin(2.0 * std::numbers::pi * t / 200.0) +
        0.3 * std::sin(2.0 * std::numbers::pi * t / 47.0);
    double rate = mid + amp * 0.72 * diurnal;
    rate *= 1.0 + rng.normal(0.0, 0.06);
    if (rng.chance(0.02)) spike = rng.uniform(0.2, 0.6);  // short load spike
    rate *= 1.0 + spike;
    spike *= 0.6;  // spikes decay over a few seconds
    rates.push_back(std::clamp(rate, kLow, kHigh));
  }
  return rates;
}

std::vector<double> load_rate_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace " + path);
  std::vector<double> rates;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    double rate = 0.0;
    try {
      rate = std::stod(line.substr(first, last - first + 1));
    } catch (...) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": not a number");
    }
    if (rate <= 0.0) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": nonpositive rate");
    }
    rates.push_back(rate);
  }
  if (rates.empty()) throw std::runtime_error(path + ": empty trace");
  return rates;
}

void save_rate_trace(const std::string& path,
                     const std::vector<double>& rates) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace " + path);
  out.precision(12);  // round-trip cleanly through the text format
  out << "# requests per second, one value per simulated second\n";
  for (const double r : rates) out << r << "\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kFixed: return "fixed";
    case WorkloadKind::kExp: return "exp";
    case WorkloadKind::kBurst: return "burst";
    case WorkloadKind::kAlibaba: return "alibaba";
  }
  return "unknown";
}

std::unique_ptr<ArrivalProcess> make_workload(WorkloadKind kind, sim::Rng rng,
                                              std::size_t trace_seconds) {
  switch (kind) {
    case WorkloadKind::kFixed:
      return std::make_unique<FixedArrivals>(400.0);
    case WorkloadKind::kExp:
      return std::make_unique<ExpArrivals>(300.0, rng);
    case WorkloadKind::kBurst:
      return std::make_unique<BurstArrivals>(BurstArrivals::Params{}, rng);
    case WorkloadKind::kAlibaba: {
      sim::Rng trace_rng = rng.fork();
      return std::make_unique<TraceArrivals>(
          make_alibaba_rates(trace_seconds, trace_rng), rng);
    }
  }
  throw std::invalid_argument("make_workload: unknown kind");
}

}  // namespace escra::workload
