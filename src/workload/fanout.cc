#include "workload/fanout.h"

#include <algorithm>
#include <stdexcept>

namespace escra::workload {

FanoutWorkload::FanoutWorkload(sim::Simulation& sim, net::Network& net,
                               std::uint32_t frontend,
                               net::EndpointId frontend_endpoint,
                               std::vector<Backend> backends, Config config,
                               sim::Rng rng)
    : sim_(sim),
      net_(net),
      frontend_(frontend),
      frontend_endpoint_(frontend_endpoint),
      backends_(std::move(backends)),
      config_(config),
      rng_(rng) {
  if (backends_.empty()) {
    throw std::invalid_argument("FanoutWorkload: no backends");
  }
  if (config_.fanout == 0 || config_.fanout > backends_.size()) {
    config_.fanout = backends_.size();
  }
  if (config_.lambda <= 0.0) {
    throw std::invalid_argument("FanoutWorkload: lambda <= 0");
  }
  if (config_.hot_rotate <= 0) {
    throw std::invalid_argument("FanoutWorkload: hot_rotate <= 0");
  }
}

FanoutWorkload::~FanoutWorkload() { stop(); }

void FanoutWorkload::run(sim::TimePoint at, sim::TimePoint until) {
  stop();
  running_ = true;
  stop_at_ = until;
  next_event_ = sim_.schedule_at(at, [this] { issue_next(); });
}

void FanoutWorkload::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(next_event_);
}

std::size_t FanoutWorkload::hot_backend(sim::TimePoint t) const {
  return static_cast<std::size_t>(t / config_.hot_rotate) % backends_.size();
}

void FanoutWorkload::issue_next() {
  if (!running_ || sim_.now() > stop_at_) return;
  const std::uint64_t request = ++issued_;
  launch(request, sim_.now());
  const double gap_s = rng_.exponential(config_.lambda);
  next_event_ =
      sim_.schedule_after(std::max<sim::Duration>(
                              1, static_cast<sim::Duration>(gap_s * 1e6)),
                          [this] { issue_next(); });
}

void FanoutWorkload::launch(std::uint64_t request, sim::TimePoint intended) {
  // The hot backend always participates (it is where the bytes are); the
  // remaining fanout-1 picks walk the cold backends round-robin, so every
  // backend keeps a baseline flow and the skew is purely in response size.
  const std::size_t hot = hot_backend(sim_.now());
  std::vector<std::size_t> picks;
  picks.reserve(config_.fanout);
  picks.push_back(hot);
  while (picks.size() < config_.fanout) {
    rotor_ = (rotor_ + 1) % backends_.size();
    if (rotor_ != hot) picks.push_back(rotor_);
  }

  pending_[request] = Pending{picks.size(), intended};
  for (const std::size_t index : picks) {
    const Backend& backend = backends_[index];
    net_.send_flow(
        net::Channel::kAppData, frontend_endpoint_, backend.endpoint,
        frontend_, backend.container, config_.request_bytes,
        [this, request, backend] {
          // The backend answers immediately; the response size depends on
          // who is hot *now*, not at issue time — a rotation mid-request
          // shifts load exactly as a cache going cold would.
          std::size_t bytes = config_.response_bytes;
          const std::size_t hot_now = hot_backend(sim_.now());
          if (backends_[hot_now].container == backend.container) {
            bytes = static_cast<std::size_t>(
                static_cast<double>(bytes) * config_.hot_multiplier);
          }
          net_.send_flow(net::Channel::kAppData, backend.endpoint,
                         frontend_endpoint_, backend.container, frontend_,
                         bytes, [this, request] { on_response(request); });
        });
  }
}

void FanoutWorkload::on_response(std::uint64_t request) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  if (--it->second.outstanding > 0) return;
  latency_.record(
      std::max<std::int64_t>(1, sim_.now() - it->second.intended));
  ++completed_;
  pending_.erase(it);
}

}  // namespace escra::workload
