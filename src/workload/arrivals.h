// Request arrival processes (Section VI-A).
//
// The paper loads each microservice with one of four open-loop workloads:
//   Fixed    — constant 400 requests/second,
//   Exp      — Poisson arrivals with lambda = 300 req/s,
//   Burst    — fixed 50 req/s plus a 10-second Poisson burst (lambda = 600)
//              every 20 seconds,
//   Alibaba  — a datacenter trace sped up 10x, 56-548 req/s.
//
// The Alibaba trace itself is not redistributable, so `AlibabaArrivals`
// replays a synthetic per-second rate series with the published envelope:
// a diurnal swing across the 56-548 range, plus noise and occasional spikes
// (see make_alibaba_rates).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace escra::workload {

// An open-loop arrival process: yields successive inter-arrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Time from the arrival at `now` until the next arrival.
  virtual sim::Duration next_gap(sim::TimePoint now) = 0;
};

// Constant-rate arrivals.
class FixedArrivals final : public ArrivalProcess {
 public:
  explicit FixedArrivals(double req_per_sec);
  sim::Duration next_gap(sim::TimePoint now) override;

 private:
  sim::Duration gap_;
};

// Poisson arrivals.
class ExpArrivals final : public ArrivalProcess {
 public:
  ExpArrivals(double lambda_req_per_sec, sim::Rng rng);
  sim::Duration next_gap(sim::TimePoint now) override;

 private:
  double lambda_;
  sim::Rng rng_;
};

// Base fixed rate with periodic Poisson bursts.
class BurstArrivals final : public ArrivalProcess {
 public:
  struct Params {
    double base_req_per_sec = 50.0;
    double burst_lambda = 600.0;
    sim::Duration burst_length = sim::seconds(10);
    sim::Duration burst_interval = sim::seconds(20);
  };
  BurstArrivals(Params params, sim::Rng rng);
  sim::Duration next_gap(sim::TimePoint now) override;

 private:
  bool in_burst(sim::TimePoint t) const;
  Params params_;
  sim::Rng rng_;
};

// Piecewise-per-second rate replay with Poisson arrivals inside each second.
class TraceArrivals final : public ArrivalProcess {
 public:
  // `rates[i]` is the request rate during simulated second i; the series
  // wraps around when the run is longer than the trace.
  TraceArrivals(std::vector<double> rates, sim::Rng rng);
  sim::Duration next_gap(sim::TimePoint now) override;

  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> rates_;
  sim::Rng rng_;
};

// Synthesizes the Alibaba-like rate series: `seconds` entries spanning
// 56-548 req/s (trace sped up 10x), diurnal swing + noise + spikes.
std::vector<double> make_alibaba_rates(std::size_t seconds, sim::Rng& rng);

// Loads a per-second rate series from a file: one req/s value per line
// (blank lines and '#' comments ignored). Lets TraceArrivals replay a real
// datacenter trace — the paper's Alibaba methodology — instead of the
// synthetic envelope. Throws std::runtime_error on unreadable files or
// nonpositive rates.
std::vector<double> load_rate_trace(const std::string& path);

// Writes a rate series in the same format (used to export synthetic traces
// for inspection or reuse).
void save_rate_trace(const std::string& path, const std::vector<double>& rates);

// The paper's four workload distributions.
enum class WorkloadKind { kFixed, kExp, kBurst, kAlibaba };

const char* workload_name(WorkloadKind kind);

// Factory with the paper's parameters.
std::unique_ptr<ArrivalProcess> make_workload(WorkloadKind kind, sim::Rng rng,
                                              std::size_t trace_seconds = 600);

}  // namespace escra::workload
