// Fan-out request/response workload over the shaped data plane (src/bw).
//
// Models the fan-out pattern that makes per-container bandwidth limits
// matter: a frontend container broadcasts a small request to `fanout`
// backend containers spread across nodes, each backend answers with a much
// larger response, and the request completes only when the *last* response
// lands — so one bandwidth-starved backend drags the whole request's tail.
//
// The load is deliberately skewed and shifting: at any moment one backend
// is "hot" (its responses are hot_multiplier times larger), and the hot
// seat rotates every `hot_rotate`. A static equal split of the NIC leaves
// the hot backend throttling behind its token bucket while the cold
// backends' headroom idles; Escra's event-driven bandwidth arm follows the
// rotation, which is exactly the p99 gap bench/fig_bw_fanout.cc measures.
//
// All traffic runs through net::Network::send_flow on Channel::kAppData, so
// an attached bw::ClusterShaper shapes it and the shaping shows up in the
// recorded end-to-end latency. Arrivals are open-loop Poisson (latency from
// intended arrival time, coordinated-omission free, like LoadGenerator).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::workload {

class FanoutWorkload {
 public:
  // One backend replica: the container the response bytes are charged to
  // and the node endpoint it answers from.
  struct Backend {
    std::uint32_t container = 0;
    net::EndpointId endpoint = 0;
  };

  struct Config {
    // Backends contacted per request (clamped to the backend count).
    std::size_t fanout = 4;
    // Request leg, frontend -> backend.
    std::size_t request_bytes = 1'500;
    // Response leg, backend -> frontend; the bandwidth-heavy direction.
    std::size_t response_bytes = 32'000;
    // The hot backend's responses are this many times larger.
    double hot_multiplier = 8.0;
    // The hot seat moves to the next backend (in vector order) this often.
    sim::Duration hot_rotate = sim::seconds(5);
    // Poisson arrival rate, requests per second.
    double lambda = 40.0;
  };

  // `frontend`/`frontend_endpoint` identify the aggregating container;
  // `backends` must be non-empty. The rng drives arrivals and the rotating
  // choice of which cold backends join each request.
  FanoutWorkload(sim::Simulation& sim, net::Network& net,
                 std::uint32_t frontend, net::EndpointId frontend_endpoint,
                 std::vector<Backend> backends, Config config, sim::Rng rng);
  ~FanoutWorkload();

  FanoutWorkload(const FanoutWorkload&) = delete;
  FanoutWorkload& operator=(const FanoutWorkload&) = delete;

  // Issues requests from `at` until `until`; in-flight requests still
  // complete and record after the window closes.
  void run(sim::TimePoint at, sim::TimePoint until);
  void stop();

  // Index of the backend holding the hot seat at time `t`.
  std::size_t hot_backend(sim::TimePoint t) const;

  // --- results ---
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  // Full-request latency (intended arrival -> last response), microseconds.
  const sim::Histogram& latency() const { return latency_; }

 private:
  void issue_next();
  void launch(std::uint64_t request, sim::TimePoint intended);
  void on_response(std::uint64_t request);

  struct Pending {
    std::size_t outstanding = 0;
    sim::TimePoint intended = 0;
  };

  sim::Simulation& sim_;
  net::Network& net_;
  std::uint32_t frontend_;
  net::EndpointId frontend_endpoint_;
  std::vector<Backend> backends_;
  Config config_;
  sim::Rng rng_;

  bool running_ = false;
  sim::TimePoint stop_at_ = 0;
  sim::EventHandle next_event_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t rotor_ = 0;  // round-robin cursor over cold backends
  std::unordered_map<std::uint64_t, Pending> pending_;
  sim::Histogram latency_;
};

}  // namespace escra::workload
