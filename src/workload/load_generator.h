// Open-loop load generator with coordinated-omission-free latency recording
// (the role wrk2 plays in the paper's testbed).
//
// Arrivals are scheduled from the arrival process independently of request
// completions, so a slow system accumulates queueing — the behaviour that
// separates Escra from laggy autoscalers under bursts. Latency is measured
// from the *intended* arrival time. Failed requests (dropped by an OOM kill
// or rejected by a restarting container) count against throughput and are
// excluded from the latency distribution, mirroring wrk2's handling of
// errored requests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.h"
#include "sim/histogram.h"
#include "sim/time.h"
#include "workload/arrivals.h"

namespace escra::workload {

class LoadGenerator {
 public:
  // Completion continuation handed to the application with each request.
  using Done = std::function<void(bool ok)>;
  // The system under test: must eventually invoke the continuation.
  using Launcher = std::function<void(Done done)>;

  // `timeout`: a request not completed within it is recorded as failed (the
  // wrk2 client gives up), and its eventual completion is ignored.
  LoadGenerator(sim::Simulation& sim, std::unique_ptr<ArrivalProcess> arrivals,
                Launcher launcher, sim::Duration timeout = sim::seconds(4));
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  // Starts issuing requests at `at` and stops issuing after `until`
  // (in-flight requests still complete and are recorded).
  void run(sim::TimePoint at, sim::TimePoint until);
  void stop();

  // --- results ---
  std::uint64_t issued() const { return issued_; }
  std::uint64_t succeeded() const { return succeeded_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t timed_out() const { return timed_out_; }
  // Successful requests per second of issue window.
  double throughput_rps() const;
  // Latency distribution of successful requests, microseconds.
  const sim::Histogram& latency() const { return latency_; }

  // Ignores results recorded before `t` (used to trim warmup).
  void reset_measurements();

 private:
  void issue_next();

  sim::Simulation& sim_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Launcher launcher_;
  sim::Duration timeout_;
  sim::TimePoint stop_at_ = 0;
  sim::TimePoint started_at_ = 0;
  sim::TimePoint measure_from_ = 0;
  bool running_ = false;
  sim::EventHandle next_event_;

  std::uint64_t issued_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timed_out_ = 0;
  sim::Histogram latency_;
};

}  // namespace escra::workload
