#include "fault/fault_injector.h"

#include <algorithm>

#include "obs/observer.h"

namespace escra::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kAgentCrash:
      return "agent-crash";
    case FaultKind::kControllerCrash:
      return "controller-crash";
    case FaultKind::kRpcDrop:
      return "rpc-drop";
    case FaultKind::kRpcDuplicate:
      return "rpc-duplicate";
    case FaultKind::kDelaySpike:
      return "delay-spike";
    case FaultKind::kLeaderKill:
      return "leader-kill";
  }
  return "unknown";
}

FaultInjector::Profile FaultInjector::leader_churn_profile() {
  Profile p;
  p.max_faults = 4;
  p.partition_weight = 0.15;
  p.agent_crash_weight = 0.10;
  p.controller_crash_weight = 0.0;  // the HA watchdog owns seat recovery
  p.rpc_drop_weight = 0.15;
  p.rpc_duplicate_weight = 0.05;
  p.delay_spike_weight = 0.05;
  p.leader_kill_weight = 0.50;
  p.target_ha_channel = true;
  return p;
}

FaultInjector::FaultInjector(sim::Simulation& sim, net::Network& net,
                             core::EscraSystem& escra)
    : sim_(sim), net_(net), escra_(escra) {}

void FaultInjector::record(bool injected, FaultKind kind,
                           std::uint32_t node_tag, double rate,
                           sim::Duration duration) {
  if (injected) {
    ++injected_;
  } else {
    ++cleared_;
  }
  obs::Observer* obs = escra_.controller().observer();
  if (obs == nullptr) return;
  if (injected) {
    obs->h.faults_injected->inc();
  } else {
    obs->h.faults_cleared->inc();
  }
  obs::TraceEvent ev;
  ev.time = sim_.now();
  ev.kind = injected ? obs::EventKind::kFaultInjected
                     : obs::EventKind::kFaultCleared;
  ev.node = node_tag;
  ev.before = rate;
  ev.after = sim::to_seconds(duration);
  ev.detail = static_cast<std::int64_t>(kind);
  obs->record(ev);
}

void FaultInjector::inject_partition(cluster::NodeId node,
                                     sim::TimePoint start,
                                     sim::Duration duration) {
  sim_.schedule_at(start, [this, node, duration] {
    if (partition_depth_[node]++ == 0) {
      net_.partition(static_cast<net::EndpointId>(node),
                     net::kControllerEndpoint);
    }
    record(true, FaultKind::kPartition, node + 1, 0.0, duration);
    sim_.schedule_after(duration, [this, node, duration] {
      if (--partition_depth_[node] == 0) {
        net_.heal(static_cast<net::EndpointId>(node),
                  net::kControllerEndpoint);
      }
      record(false, FaultKind::kPartition, node + 1, 0.0, duration);
    });
  });
}

void FaultInjector::inject_agent_crash(cluster::NodeId node,
                                       sim::TimePoint start,
                                       sim::Duration downtime) {
  sim_.schedule_at(start, [this, node, downtime] {
    core::Agent* agent = escra_.controller().agent_at(node);
    if (agent == nullptr) return;  // node never hosted a managed container
    if (agent_crash_depth_[node]++ == 0) agent->crash();
    record(true, FaultKind::kAgentCrash, node + 1, 0.0, downtime);
    sim_.schedule_after(downtime, [this, node, downtime] {
      core::Agent* a = escra_.controller().agent_at(node);
      if (a != nullptr && --agent_crash_depth_[node] == 0) a->restart();
      record(false, FaultKind::kAgentCrash, node + 1, 0.0, downtime);
    });
  });
}

void FaultInjector::inject_controller_crash(sim::TimePoint start,
                                            sim::Duration downtime) {
  sim_.schedule_at(start, [this, downtime] {
    // Record *before* the crash so the event lands even if the observer's
    // registry gauges are zeroed by it (the trace buffer is independent).
    record(true, FaultKind::kControllerCrash, 0, 0.0, downtime);
    if (controller_crash_depth_++ == 0) escra_.crash();
    sim_.schedule_after(downtime, [this, downtime] {
      if (--controller_crash_depth_ == 0) escra_.restart();
      record(false, FaultKind::kControllerCrash, 0, 0.0, downtime);
    });
  });
}

void FaultInjector::inject_rpc_drop(net::Channel channel, double rate,
                                    sim::TimePoint start,
                                    sim::Duration duration) {
  const int ch = static_cast<int>(channel);
  sim_.schedule_at(start, [this, channel, ch, rate, duration] {
    ++drop_depth_[ch];
    net_.set_drop_rate(channel, rate);
    record(true, FaultKind::kRpcDrop, 0, rate, duration);
    sim_.schedule_after(duration, [this, channel, ch, rate, duration] {
      if (--drop_depth_[ch] == 0) net_.set_drop_rate(channel, 0.0);
      record(false, FaultKind::kRpcDrop, 0, rate, duration);
    });
  });
}

void FaultInjector::inject_rpc_duplicate(net::Channel channel, double rate,
                                         sim::TimePoint start,
                                         sim::Duration duration) {
  const int ch = static_cast<int>(channel);
  sim_.schedule_at(start, [this, channel, ch, rate, duration] {
    ++dup_depth_[ch];
    net_.set_duplicate_rate(channel, rate);
    record(true, FaultKind::kRpcDuplicate, 0, rate, duration);
    sim_.schedule_after(duration, [this, channel, ch, rate, duration] {
      if (--dup_depth_[ch] == 0) net_.set_duplicate_rate(channel, 0.0);
      record(false, FaultKind::kRpcDuplicate, 0, rate, duration);
    });
  });
}

void FaultInjector::inject_delay_spike(net::Channel channel, double rate,
                                       sim::Duration extra,
                                       sim::TimePoint start,
                                       sim::Duration duration) {
  const int ch = static_cast<int>(channel);
  sim_.schedule_at(start, [this, channel, ch, rate, extra, duration] {
    ++spike_depth_[ch];
    net_.set_delay_spike(channel, rate, extra);
    record(true, FaultKind::kDelaySpike, 0, rate, duration);
    sim_.schedule_after(duration, [this, channel, ch, rate, duration] {
      if (--spike_depth_[ch] == 0) net_.set_delay_spike(channel, 0.0, 0);
      record(false, FaultKind::kDelaySpike, 0, rate, duration);
    });
  });
}

void FaultInjector::inject_leader_kill(sim::TimePoint start) {
  sim_.schedule_at(start, [this] {
    // Record before the crash (same reasoning as controller-crash), and
    // close the window immediately: the kill is a point event — no restart
    // follows, recovery belongs to the HA standbys.
    record(true, FaultKind::kLeaderKill, 0, 0.0, 0);
    escra_.crash();
    record(false, FaultKind::kLeaderKill, 0, 0.0, 0);
  });
}

void FaultInjector::schedule_random(sim::Rng& rng, sim::TimePoint end,
                                    const Profile& profile, int node_count) {
  const sim::TimePoint now = sim_.now();
  const int count = static_cast<int>(
      rng.uniform_int(0, std::max(0, profile.max_faults)));
  const double total_weight =
      profile.partition_weight + profile.agent_crash_weight +
      profile.controller_crash_weight + profile.rpc_drop_weight +
      profile.rpc_duplicate_weight + profile.delay_spike_weight +
      profile.leader_kill_weight;
  // The channels a probabilistic fault can target. kRegistration is spared:
  // registration is modelled as fire-and-forget bootstrap, with no retry
  // path to exercise. The HA replication channel joins the draw only when
  // the profile opts in (keeps legacy seed streams byte-identical).
  static constexpr net::Channel kFaultChannels[4] = {
      net::Channel::kControlRpc, net::Channel::kCpuTelemetry,
      net::Channel::kMemoryEvent, net::Channel::kHaReplication};
  const std::int64_t channel_max = profile.target_ha_channel ? 3 : 2;

  for (int i = 0; i < count; ++i) {
    // Fixed draw count per fault, independent of the kind selected.
    const double kind_draw = rng.uniform(0.0, total_weight);
    const cluster::NodeId node = static_cast<cluster::NodeId>(
        node_count > 0 ? rng.uniform_int(0, node_count - 1) : 0);
    const sim::Duration duration =
        rng.uniform_int(profile.min_duration, profile.max_duration);
    const double rate = rng.uniform(profile.min_rate, profile.max_rate);
    const sim::Duration spike =
        rng.uniform_int(profile.min_spike, profile.max_spike);
    const net::Channel channel =
        kFaultChannels[rng.uniform_int(0, channel_max)];
    // Clamp the window so recovery fits before `end`.
    const sim::TimePoint latest_start =
        end - duration - profile.recovery_margin;
    if (latest_start <= now) continue;  // run too short for this fault
    const sim::TimePoint start = rng.uniform_int(now, latest_start);

    double edge = profile.partition_weight;
    if (kind_draw < edge) {
      inject_partition(node, start, duration);
      continue;
    }
    edge += profile.agent_crash_weight;
    if (kind_draw < edge) {
      inject_agent_crash(node, start, duration);
      continue;
    }
    edge += profile.controller_crash_weight;
    if (kind_draw < edge) {
      inject_controller_crash(start, duration);
      continue;
    }
    edge += profile.rpc_drop_weight;
    if (kind_draw < edge) {
      inject_rpc_drop(channel, rate, start, duration);
      continue;
    }
    edge += profile.rpc_duplicate_weight;
    if (kind_draw < edge) {
      inject_rpc_duplicate(channel, rate, start, duration);
      continue;
    }
    edge += profile.delay_spike_weight;
    if (kind_draw < edge) {
      inject_delay_spike(channel, rate, spike, start, duration);
      continue;
    }
    inject_leader_kill(start);
  }
}

}  // namespace escra::fault
