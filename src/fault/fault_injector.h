// Deterministic control-plane fault injection.
//
// The FaultInjector turns an Escra deployment into a crash-test rig: it
// schedules node partitions, Agent crash/restart cycles, Controller
// crash/restart cycles, and per-channel probabilistic RPC faults (drop,
// duplicate, delay spike) against the simulated network — all either
// scripted explicitly or drawn as a deterministic schedule from a seeded
// RNG (`schedule_random`), so any fault scenario replays bit-for-bit.
//
// Every injection and clearance is recorded as a kFaultInjected /
// kFaultCleared trace event (when an observer is attached to the system's
// Controller) so traces show exactly which windows of a run were degraded,
// and the invariant checker can reconcile anomalies against fault windows.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/node.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace escra::fault {

// Fault taxonomy. The enum value is stored in the trace event's `detail`
// field so tools can tell fault windows apart.
enum class FaultKind : int {
  kPartition = 1,        // node <-> Controller links severed, both ways
  kAgentCrash = 2,       // Agent process dies (soft state lost), restarts
  kControllerCrash = 3,  // Controller dies (registry/pool lost), restarts
  kRpcDrop = 4,          // per-channel probabilistic message loss
  kRpcDuplicate = 5,     // per-channel probabilistic duplicate delivery
  kDelaySpike = 6,       // per-channel probabilistic extra latency
  kLeaderKill = 7,       // Controller dies with NO restart: recovery is the
                         // HA standbys' takeover (src/ha), not a resync
};

const char* fault_kind_name(FaultKind kind);

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, net::Network& net,
                core::EscraSystem& escra);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- scripted injections ---
  //
  // Each call schedules the fault to take effect at absolute time `start`
  // and clear `duration` later. Overlapping faults of the same kind on the
  // same target nest: the fault clears only when the last overlapping
  // window ends.

  // Severs both directions between `node` and the Controller.
  void inject_partition(cluster::NodeId node, sim::TimePoint start,
                        sim::Duration duration);
  // Kills the node's Agent (sequence table lost; cgroups persist), then
  // restarts it with a new incarnation — the Controller notices and resyncs.
  void inject_agent_crash(cluster::NodeId node, sim::TimePoint start,
                          sim::Duration downtime);
  // Kills the Controller (registry, pool accounting, pending retransmits
  // lost; the cluster fails static), then restarts it — it rebuilds by
  // resyncing every Agent.
  void inject_controller_crash(sim::TimePoint start, sim::Duration downtime);
  // Per-channel probabilistic faults for the window.
  void inject_rpc_drop(net::Channel channel, double rate, sim::TimePoint start,
                       sim::Duration duration);
  void inject_rpc_duplicate(net::Channel channel, double rate,
                            sim::TimePoint start, sim::Duration duration);
  void inject_delay_spike(net::Channel channel, double rate,
                          sim::Duration extra, sim::TimePoint start,
                          sim::Duration duration);
  // Kills the Controller permanently — no restart is scheduled. Only
  // meaningful when an ha::HaControlPlane shadows the system: a standby's
  // lease watchdog detects the silence and takes the seat over. The kill is
  // recorded as an instantaneous fault window (injected and cleared at the
  // kill instant); the recovery itself is traced by kLeaderElected.
  void inject_leader_kill(sim::TimePoint start);

  // --- seed-driven schedules ---

  struct Profile {
    // Upper bound on the number of faults drawn (actual count is uniform in
    // [0, max_faults]).
    int max_faults = 3;
    // Relative weights of each fault kind (need not sum to 1).
    double partition_weight = 0.25;
    double agent_crash_weight = 0.20;
    double controller_crash_weight = 0.15;
    double rpc_drop_weight = 0.20;
    double rpc_duplicate_weight = 0.10;
    double delay_spike_weight = 0.10;
    // Fault-window duration range.
    sim::Duration min_duration = sim::milliseconds(200);
    sim::Duration max_duration = sim::seconds(3);
    // Probabilistic-fault rate range.
    double min_rate = 0.05;
    double max_rate = 0.40;
    // Delay-spike extra latency range.
    sim::Duration min_spike = sim::milliseconds(1);
    sim::Duration max_spike = sim::milliseconds(20);
    // Weight of permanent leader kills (kLeaderKill). Zero by default: the
    // fault only makes sense with a warm-standby pool attached, and keeping
    // it out of the draw preserves existing seed streams.
    double leader_kill_weight = 0.0;
    // Widens the probabilistic-fault channel draw to include the HA
    // replication channel (WAL stream / lease announcements), so drop and
    // delay faults can starve the standbys' view of the lease.
    bool target_ha_channel = false;
    // Faults are clamped to end at least this long before `end`, so every
    // run includes a recovery window the checker can hold to account.
    sim::Duration recovery_margin = sim::seconds(1);
  };

  // Profile for hammering the replicated-controller path: leader kills
  // dominate, plain controller crash/restart is disabled (a restart's
  // epoch bump would race the standbys' elections for the same seat — the
  // HA watchdog owns recovery here), and probabilistic faults may target
  // the HA replication channel.
  static Profile leader_churn_profile();

  // Draws a deterministic fault script from `rng` over [sim.now(), end) and
  // schedules it. The number of RNG draws per fault is fixed regardless of
  // the kind drawn, so scenario streams stay aligned across profiles.
  void schedule_random(sim::Rng& rng, sim::TimePoint end,
                       const Profile& profile, int node_count);

  // --- introspection ---
  std::uint64_t injected() const { return injected_; }
  std::uint64_t cleared() const { return cleared_; }
  std::uint64_t active() const { return injected_ - cleared_; }

 private:
  void record(bool injected, FaultKind kind, std::uint32_t node_tag,
              double rate, sim::Duration duration);

  sim::Simulation& sim_;
  net::Network& net_;
  core::EscraSystem& escra_;

  // Nesting depths so overlapping same-target windows compose.
  std::unordered_map<cluster::NodeId, int> partition_depth_;
  std::unordered_map<cluster::NodeId, int> agent_crash_depth_;
  int controller_crash_depth_ = 0;
  int drop_depth_[net::kChannelCount] = {};
  int dup_depth_[net::kChannelCount] = {};
  int spike_depth_[net::kChannelCount] = {};

  std::uint64_t injected_ = 0;
  std::uint64_t cleared_ = 0;
};

}  // namespace escra::fault
