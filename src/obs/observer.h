// Observer: the one-object attachment point for control-plane observability.
//
// Bundles the three obs halves — decision TraceBuffer, MetricsRegistry, and
// control-loop LoopProfiler — and pre-registers the metric handles the
// instrumented modules (core/controller, core/allocator, core/agent, cfs,
// memcg, net, serverless) increment on their hot paths.
//
// Instrumentation contract: modules hold a nullable `Observer*` (or raw
// `Counter*`/`Gauge*` handles wired from one). With no observer attached
// every hook is a single null-pointer test, so benchmark hot paths are
// unaffected; attaching is strictly additive and can be done on a live
// system (EscraSystem::attach_observer re-wires already-registered
// containers and agents).
//
//   obs::Observer observer;
//   escra.attach_observer(observer);       // before or after deploy
//   network.attach_metrics(observer.metrics());
//   simulation.run_until(...);
//   observer.trace().export_jsonl(file);   // decision trace, causal links
//   observer.metrics().export_csv(file, simulation.now());
//   std::puts(observer.profiler().table().c_str());
#pragma once

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace escra::obs {

class Observer {
 public:
  struct Config {
    std::size_t trace_capacity = 1 << 16;
  };

  // Two constructors instead of one defaulted `Config{}` argument: a default
  // argument would need Config's member initializers before the enclosing
  // class is complete. The bodies of in-class definitions are parsed in the
  // complete-class context, so the delegating form compiles.
  Observer() : Observer(Config{}) {}
  explicit Observer(Config config);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  LoopProfiler& profiler() { return profiler_; }
  const LoopProfiler& profiler() const { return profiler_; }

  EventId record(const TraceEvent& event) { return trace_.record(event); }

  // Handles for the metrics the control plane updates inline. Registered in
  // the constructor, so user code registering a clashing name fails fast.
  struct Handles {
    // Controller (telemetry ingest, RPC fan-out, OOM path, reclamation).
    Counter* stats_ingested = nullptr;    // controller.stats_ingested
    Counter* rpcs_issued = nullptr;       // controller.rpcs_issued
    Counter* rpcs_applied = nullptr;      // controller.rpcs_applied
    // Coalesced per-node limit pushes: batched RPCs sent and the entries
    // they carried (entries/batched_rpcs = mean coalescing factor).
    Counter* batched_rpcs = nullptr;      // controller.batched_rpcs
    Counter* batch_entries = nullptr;     // controller.batch_entries
    Counter* oom_events = nullptr;        // controller.oom_events
    Counter* oom_rescues = nullptr;       // controller.oom_rescues
    Counter* reclaim_sweeps = nullptr;    // reclaim.sweeps
    Counter* reclaim_bytes = nullptr;     // reclaim.bytes_total
    Counter* registrations = nullptr;     // containers.registered_total
    Counter* deregistrations = nullptr;   // containers.deregistered_total
    Gauge* containers_active = nullptr;   // containers.active

    // Resource Allocator decisions.
    Counter* cpu_grants = nullptr;   // allocator.cpu_grants
    Counter* cpu_shrinks = nullptr;  // allocator.cpu_shrinks
    Counter* mem_grants = nullptr;   // allocator.mem_grants
    Counter* mem_denies = nullptr;   // allocator.mem_denies

    // Distributed Container pool occupancy.
    Gauge* pool_cpu_allocated = nullptr;    // pool.cpu_allocated_cores
    Gauge* pool_cpu_unallocated = nullptr;  // pool.cpu_unallocated_cores
    Gauge* pool_mem_allocated = nullptr;    // pool.mem_allocated_bytes
    Gauge* pool_mem_unallocated = nullptr;  // pool.mem_unallocated_bytes

    // Substrate hooks (CFS periods, memcg OOM outcomes, Agent applies).
    Counter* cfs_periods = nullptr;            // cfs.periods_total
    Counter* cfs_throttled_periods = nullptr;  // cfs.throttled_periods_total
    Counter* memcg_oom_kills = nullptr;        // memcg.oom_kills
    Counter* memcg_oom_rescues = nullptr;      // memcg.oom_rescues
    Counter* agent_limit_applies = nullptr;    // agent.limit_applies

    // Reliability layer (retransmit/ack, heartbeats, liveness, resync).
    Counter* retransmits = nullptr;          // controller.retransmits
    Counter* dup_suppressed = nullptr;       // agent.duplicates_suppressed
    Counter* resyncs = nullptr;              // controller.resyncs
    Counter* heartbeats = nullptr;           // controller.heartbeats_received
    Counter* nodes_dead = nullptr;           // controller.nodes_declared_dead
    Counter* nodes_alive = nullptr;          // controller.nodes_recovered
    Counter* fail_static_entries = nullptr;  // agent.fail_static_entries
    Counter* faults_injected = nullptr;      // fault.injected
    Counter* faults_cleared = nullptr;       // fault.cleared

    // Controller HA (warm-standby replication, src/ha).
    Counter* ha_wal_appends = nullptr;    // ha.wal_appends
    Counter* ha_elections = nullptr;      // ha.elections
    Counter* ha_fenced_updates = nullptr; // ha.fenced_updates
    Counter* ha_wal_lag_events = nullptr; // ha.wal_lag_events
    Gauge* ha_epoch = nullptr;            // ha.epoch (current leader epoch)

    // Bandwidth plane (src/bw shaping + allocator arm).
    Counter* bw_throttle_events = nullptr;  // bw.throttle_events
    Counter* bw_saturation = nullptr;       // controller.bw_saturation_events
    Counter* bw_stats_ingested = nullptr;   // controller.bw_stats_ingested
    Counter* bw_grants = nullptr;           // allocator.bw_grants
    Counter* bw_shrinks = nullptr;          // allocator.bw_shrinks
    Gauge* pool_bw_allocated = nullptr;     // pool.bw_allocated_bps
    Gauge* pool_bw_unallocated = nullptr;   // pool.bw_unallocated_bps

    // Adversarial-tenant defense (credit ledger + telemetry hardening).
    Counter* telemetry_rejected = nullptr;  // controller.telemetry_rejected
    Counter* credit_charges = nullptr;      // controller.credit_charges
    Counter* credit_refunds = nullptr;      // controller.credit_refunds
    Counter* greedy_throttles = nullptr;    // controller.greedy_throttles

    // Sharded control plane (src/shard). Incremented on the observer of the
    // shard that records the matching trace event (requests at the
    // borrower, grants at the lender, returns at the returner).
    Counter* shard_adverts = nullptr;             // shard.advertisements
    Counter* shard_borrow_requests = nullptr;     // shard.borrow_requests
    Counter* shard_borrow_grants = nullptr;       // shard.borrow_grants
    Counter* shard_borrow_returns = nullptr;      // shard.borrow_returns
    Counter* shard_borrow_retransmits = nullptr;  // shard.borrow_retransmits
    Counter* shard_pool_resizes = nullptr;        // shard.pool_resizes

    // Real-time container class (admission control + deadline model).
    Counter* rt_admitted = nullptr;        // controller.rt_admitted
    Counter* rt_rejected = nullptr;        // controller.rt_rejected
    Counter* rt_evicted = nullptr;         // controller.rt_evicted
    Counter* deadline_misses = nullptr;    // cfs.deadline_misses
    Gauge* rt_reserved_cores = nullptr;    // controller.rt_reserved_cores
  };
  Handles h;

 private:
  TraceBuffer trace_;
  MetricsRegistry metrics_;
  LoopProfiler profiler_;
};

}  // namespace escra::obs
