#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace escra::obs {

namespace {

constexpr const char* kKindNames[kEventKindCount] = {
    "throttle-observed",    "cpu-grant",  "cpu-shrink",
    "mem-grant-on-oom",     "reclaim",    "container-registered",
    "container-killed",     "rpc-issued", "rpc-applied",
    "retransmit",           "duplicate-suppressed",
    "resync",               "fail-static",
    "node-dead",            "node-alive",
    "fault-injected",       "fault-cleared",
    "leader-elected",       "epoch-fenced",
    "wal-lag",
    "bw-throttled",         "bw-saturation",
    "bw-grant",             "bw-shrink",
    "telemetry-rejected",   "credit-charge",
    "credit-refund",        "greedy-throttle",
    "shard-advertise",      "borrow-request",
    "borrow-grant",         "borrow-return",
    "shard-pool-resize",
    "rt-admitted",          "rt-rejected",
    "rt-evicted",           "deadline-miss",
};

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kEventKindCount ? kKindNames[i] : "unknown";
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (int i = 0; i < kEventKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("TraceBuffer: capacity 0");
  ring_.reserve(capacity);
}

EventId TraceBuffer::record(TraceEvent event) {
  event.id = next_id_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    // Full: overwrite the oldest slot and advance the ring start.
    ring_[start_] = event;
    start_ = (start_ + 1) % capacity_;
    ++evicted_;
  }
  if (record_hook_) record_hook_(event);
  return event.id;
}

std::size_t TraceBuffer::index_of(EventId id) const {
  // Buffered ids are the dense range [oldest, next_id_); valid physical
  // indices are always < ring_.size(), so ring_.size() works as "absent".
  const EventId oldest = next_id_ - ring_.size();
  if (id < oldest || id >= next_id_) return ring_.size();  // not buffered
  return (start_ + static_cast<std::size_t>(id - oldest)) % capacity_;
}

const TraceEvent* TraceBuffer::find(EventId id) const {
  if (id == 0) return nullptr;
  const std::size_t idx = index_of(id);
  return idx < ring_.size() ? &ring_[idx] : nullptr;
}

const TraceEvent& TraceBuffer::at(std::size_t index) const {
  if (index >= ring_.size()) throw std::out_of_range("TraceBuffer::at");
  return ring_[(start_ + index) % capacity_];
}

std::vector<TraceEvent> TraceBuffer::chain(EventId id) const {
  std::vector<TraceEvent> out;
  const TraceEvent* e = find(id);
  while (e != nullptr) {
    out.push_back(*e);
    e = e->cause == 0 ? nullptr : find(e->cause);
  }
  // Collected effect-to-cause; the caller reads root-first.
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<TraceEvent> TraceBuffer::for_container(
    std::uint32_t container) const {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = at(i);
    if (e.container == container) out.push_back(e);
  }
  return out;
}

std::optional<TraceEvent> TraceBuffer::last(EventKind kind,
                                            std::uint32_t container) const {
  for (std::size_t i = ring_.size(); i-- > 0;) {
    const TraceEvent& e = at(i);
    if (e.kind == kind && e.container == container) return e;
  }
  return std::nullopt;
}

namespace {

void append_event_jsonl(std::string& line, const TraceEvent& e) {
  line += "{\"id\":";
  line += std::to_string(e.id);
  line += ",\"t_us\":";
  line += std::to_string(e.time);
  line += ",\"kind\":\"";
  line += event_kind_name(e.kind);
  line += "\",\"container\":";
  line += std::to_string(e.container);
  line += ",\"node\":";
  line += std::to_string(e.node);
  line += ",\"before\":";
  append_double(line, e.before);
  line += ",\"after\":";
  append_double(line, e.after);
  line += ",\"cause\":";
  line += std::to_string(e.cause);
  line += ",\"detail\":";
  line += std::to_string(e.detail);
  if (e.shard != 0) {
    // Emitted only when set, so unsharded exports (and every export written
    // before the sharded control plane existed) stay byte-identical.
    line += ",\"shard\":";
    line += std::to_string(e.shard);
  }
  line += "}\n";
}

}  // namespace

void TraceBuffer::export_jsonl(std::ostream& out) const {
  std::string line;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    line.clear();
    append_event_jsonl(line, at(i));
    out << line;
  }
}

void export_merged_jsonl(const std::vector<const TraceBuffer*>& shards,
                         std::ostream& out) {
  // Collect (buffer, intra-buffer index) references and interleave by
  // (time, shard). Each buffer is already time-ordered, so a stable sort on
  // time alone preserves intra-buffer order; the shard tie-break makes the
  // cross-buffer interleaving at equal timestamps deterministic too.
  struct Ref {
    sim::TimePoint time;
    std::uint32_t shard;  // buffer index + 1
    std::size_t index;    // position within its buffer
  };
  std::vector<Ref> refs;
  std::size_t total = 0;
  for (const TraceBuffer* b : shards) total += b->size();
  refs.reserve(total);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t i = 0; i < shards[s]->size(); ++i) {
      refs.push_back({shards[s]->at(i).time,
                      static_cast<std::uint32_t>(s + 1), i});
    }
  }
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.time != b.time ? a.time < b.time : a.shard < b.shard;
  });
  // Re-assign dense ids in merge order and remap causal links within each
  // source buffer (causality never crosses shards: every shard records only
  // its own decision chains).
  std::vector<std::unordered_map<EventId, EventId>> remap(shards.size());
  std::string line;
  EventId next_id = 1;
  for (const Ref& r : refs) {
    TraceEvent e = shards[r.shard - 1]->at(r.index);
    remap[r.shard - 1][e.id] = next_id;
    e.id = next_id++;
    if (e.cause != 0) {
      const auto& m = remap[r.shard - 1];
      const auto it = m.find(e.cause);
      // Causes pointing at evicted (or not-yet-merged) events drop to 0,
      // exactly like an evicted link in a single buffer.
      e.cause = it != m.end() ? it->second : 0;
    }
    e.shard = r.shard;
    line.clear();
    append_event_jsonl(line, e);
    out << line;
  }
}

void TraceBuffer::export_csv(std::ostream& out) const {
  out << "id,t_us,kind,container,node,before,after,cause,detail\n";
  std::string line;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = at(i);
    line.clear();
    line += std::to_string(e.id);
    line += ',';
    line += std::to_string(e.time);
    line += ',';
    line += event_kind_name(e.kind);
    line += ',';
    line += std::to_string(e.container);
    line += ',';
    line += std::to_string(e.node);
    line += ',';
    append_double(line, e.before);
    line += ',';
    append_double(line, e.after);
    line += ',';
    line += std::to_string(e.cause);
    line += ',';
    line += std::to_string(e.detail);
    line += '\n';
    out << line;
  }
}

namespace {

// Extracts the raw text of `"key":<value>` from a JSONL line produced by
// export_jsonl. The format is our own flat single-line objects, so plain
// string scanning is sufficient (no nested objects or escaped strings).
std::string_view json_field(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) {
    throw std::runtime_error("trace import: missing field '" +
                             std::string(key) + "'");
  }
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) {
      throw std::runtime_error("trace import: unterminated string");
    }
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

TraceBuffer TraceBuffer::import_jsonl(std::istream& in) {
  // First pass: collect, so the buffer can be sized to hold everything.
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      TraceEvent e;
      e.id = std::stoull(std::string(json_field(line, "id")));
      e.time = std::stoll(std::string(json_field(line, "t_us")));
      const auto kind = event_kind_from_name(json_field(line, "kind"));
      if (!kind.has_value()) throw std::runtime_error("unknown kind");
      e.kind = *kind;
      e.container =
          static_cast<std::uint32_t>(
              std::stoul(std::string(json_field(line, "container"))));
      e.node = static_cast<std::uint32_t>(
          std::stoul(std::string(json_field(line, "node"))));
      e.before = std::stod(std::string(json_field(line, "before")));
      e.after = std::stod(std::string(json_field(line, "after")));
      e.cause = std::stoull(std::string(json_field(line, "cause")));
      e.detail = std::stoll(std::string(json_field(line, "detail")));
      // Optional: absent in unsharded exports (and all pre-shard files).
      if (line.find("\"shard\":") != std::string::npos) {
        e.shard = static_cast<std::uint32_t>(
            std::stoul(std::string(json_field(line, "shard"))));
      }
      events.push_back(e);
    } catch (const std::exception& ex) {
      throw std::runtime_error("trace import: line " + std::to_string(lineno) +
                               ": " + ex.what());
    }
  }
  TraceBuffer buf(events.empty() ? 1 : events.size());
  for (const TraceEvent& e : events) {
    const EventId want = e.id;
    buf.record(e);
    // Preserve the original ids so causal links keep resolving: exports are
    // dense and ordered, so forcing the counter forward is enough.
    if (buf.next_id_ - 1 != want) {
      if (want + 1 < buf.next_id_) {
        throw std::runtime_error("trace import: ids not ascending");
      }
      TraceEvent& slot =
          buf.ring_[(buf.start_ + buf.ring_.size() - 1) % buf.capacity_];
      slot.id = want;
      buf.next_id_ = want + 1;
    }
  }
  return buf;
}

}  // namespace escra::obs
