// Control-loop latency profiler (escra_obs).
//
// Breaks the telemetry -> decision -> limit-apply loop into its stages and
// records each stage's simulated-time latency:
//
//   fire->ingest   telemetry datagram leaves the kernel hook, arrives at
//                  the owning shard's Controller (one-way network latency;
//                  the src/shard router binds each container's telemetry to
//                  exactly one shard at registration, so the stage measures
//                  one hop regardless of shard count),
//   ingest->decide Controller hands the statistic to the Resource
//                  Allocator and gets a decision (synchronous, zero
//                  sim-time; per-shard wall-clock cost of this stage is
//                  what bench/shard_scale reports as decision latency),
//   decide->apply  limit-update RPC to the Agent and cgroup write,
//   end-to-end     fire -> cgroup write, the paper's sub-second claim.
//
// Each shard's Observer owns one LoopProfiler, so a sharded control plane
// (src/shard) produces per-shard stage tables; cross-shard borrow traffic
// never enters the loop profile (it moves pool headroom, not decisions).
//
// Per-stage distributions reuse sim::Histogram (percentiles) plus
// sim::RunningStat (exact means); `table()` renders the p50/p90/p99/max
// breakdown bench/control_loop_trace prints.
#pragma once

#include <string>

#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace escra::obs {

enum class LoopStage : std::uint8_t {
  kFireToIngest = 0,
  kIngestToDecide = 1,
  kDecideToApply = 2,
  kEndToEnd = 3,
};
inline constexpr int kLoopStageCount = 4;

const char* loop_stage_name(LoopStage stage);

class LoopProfiler {
 public:
  LoopProfiler();

  void record(LoopStage stage, sim::Duration latency);

  // Records all four stages of one completed loop from its timestamps
  // (fire <= ingest <= decide <= apply, all simulated time).
  void record_loop(sim::TimePoint fire, sim::TimePoint ingest,
                   sim::TimePoint decide, sim::TimePoint apply);

  const sim::Histogram& histogram(LoopStage stage) const;
  const sim::RunningStat& stat(LoopStage stage) const;
  std::uint64_t loops_completed() const { return loops_; }

  // Formatted per-stage latency table (mean/p50/p90/p99/max, milliseconds).
  std::string table() const;

 private:
  sim::Histogram hist_[kLoopStageCount];
  sim::RunningStat stat_[kLoopStageCount];
  std::uint64_t loops_ = 0;
};

}  // namespace escra::obs
