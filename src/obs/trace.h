// Structured control-plane decision trace (escra_obs).
//
// A bounded ring buffer of typed control-plane events: every allocation
// decision Escra makes (CPU grant/shrink, OOM memory grant, reclamation
// resize), the telemetry observation that triggered it, and the RPC that
// carried it to the node — each stamped with simulated time, container and
// node ids, the limit before and after, and a *causal link* to the event
// that triggered it. The chain
//
//     ThrottleObserved -> CpuGrant -> RpcIssued -> RpcApplied
//
// answers "why did container X get limit Y" with the full telemetry-to-
// cgroup path and its per-stage latency, the instrumented counterpart of
// the paper's sub-second control-loop claim (Sections IV, VI-I).
//
// Event ids are assigned in record order by the deterministic simulation,
// so two identical-seed runs produce byte-identical JSONL/CSV exports. At
// capacity the oldest event is evicted (its id is never reused; causal
// walks simply stop when a cause has been evicted).
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace escra::obs {

enum class EventKind : std::uint8_t {
  kThrottleObserved,     // CFS period ended throttled (telemetry fire site)
  kCpuGrant,             // allocator raised a CPU limit
  kCpuShrink,            // allocator lowered a CPU limit
  kMemGrantOnOom,        // allocator raised a memory limit pre-OOM
  kReclaim,              // reclamation pass shrank a memory limit
  kContainerRegistered,  // container joined the Distributed Container
  kContainerKilled,      // container left (reaped, killed, or released)
  kRpcIssued,            // Controller -> Agent limit-update RPC sent
  kRpcApplied,           // Agent applied the limit to the cgroup
  // Reliability layer (fault tolerance). RpcIssued/RpcApplied/Retransmit
  // carry the resource in `before`: 0 = CPU, 1 = memory.
  kRetransmit,           // unacked limit update re-sent (detail = attempt #)
  kDuplicateSuppressed,  // Agent discarded a stale/duplicate update by seq
  kResync,               // reconciliation re-adopted / corrected a container
  kFailStatic,           // Agent entered (detail=1) / left (detail=0)
                         // fail-static local fallback
  kNodeDead,             // Controller declared a node dead (missed heartbeats)
  kNodeAlive,            // a dead node's heartbeats resumed
  kFaultInjected,        // FaultInjector opened a fault window (detail = kind)
  kFaultCleared,         // FaultInjector closed a fault window (detail = kind)
  // Controller HA (warm-standby replication, src/ha).
  kLeaderElected,        // a standby took over leadership (detail = new epoch,
                         // before = old epoch, after = replayed WAL slots)
  kEpochFenced,          // Agent rejected an update from a fenced (deposed)
                         // epoch (detail = rejected seq)
  kWalLag,               // a standby's acked WAL cursor fell behind the
                         // leader's log (detail = lag in records)
  // Bandwidth plane (src/bw). RpcIssued/RpcApplied/Retransmit use
  // `before` = 2 for bandwidth slots; Bw* limits are in bytes/s.
  kBwThrottled,          // a shaper queue formed for a container (data
                         // plane; before = rate limit, detail = queue depth)
  kBwSaturation,         // Controller observed a saturated period in the
                         // bandwidth telemetry (detail = queue depth)
  kBwGrant,              // allocator raised a bandwidth limit
  kBwShrink,             // allocator lowered a bandwidth limit
  // Adversarial-tenant defense (src/adv + credit ledger in the Controller).
  kTelemetryRejected,    // ingest dropped a physically-impossible reading
                         // (before = resource, detail = reported value)
  kCreditCharge,         // settle sweep debited credits for above-fair-share
                         // allocation (before/after = balance, detail =
                         // above-share millicores)
  kCreditRefund,         // settle sweep minted credits for below-fair-share
                         // allocation (before/after = balance, detail =
                         // below-share millicores)
  kGreedyThrottle,       // credit-exhausted container decayed toward its
                         // static fair share (before/after = CPU limit)
  // Sharded control plane (src/shard). Borrow events carry the resource in
  // `before` (0 = CPU, 1 = memory, 2 = bandwidth, matching the Rpc*
  // convention), the amount in `after` (cores / bytes / bytes-per-second),
  // and pack the peer shard id and the per-pair borrow sequence into
  // `detail` as (peer << 48) | seq. The recording shard itself is carried
  // by the event's `shard` field (stamped at merged export from buffer
  // provenance, or pre-set by the recorder).
  kShardAdvertise,       // periodic surplus advertisement broadcast (before =
                         // CPU surplus cores, after = memory surplus bytes,
                         // detail = bandwidth surplus bytes/s)
  kBorrowRequest,        // hot shard asked a peer for pool headroom
  kBorrowGrant,          // lender shrank its pool and granted the request
  kBorrowReturn,         // borrower shrank its pool to hand capacity back
  kShardPoolResize,      // a shard's pool slice changed size (before/after =
                         // old/new limit in the resource's unit, detail =
                         // resource)
  // Real-time container class (mixed criticality). RT reservations are
  // (runtime, deadline, period) triples; the admitted CPU floor is
  // runtime / min(deadline, period) cores.
  kRtAdmitted,           // admission control accepted an RT reservation
                         // (after = admitted floor in cores, detail =
                         // runtime us packed with period us as
                         // (runtime_us << 32) | period_us)
  kRtRejected,           // admission control refused an RT reservation
                         // (after = requested floor, detail = 0 node bound,
                         // 1 pool bound, 2 bw bound, 3 not registered /
                         // already admitted)
  kRtEvicted,            // an admitted RT reservation was revoked by an
                         // explicit controller decision (node death,
                         // deregistration) — never silently (before =
                         // admitted floor, detail = reason: 0 released,
                         // 1 node dead/quarantined, 2 operator)
  kDeadlineMiss,         // an admitted RT container's periodic job ran past
                         // its deadline (before = admitted floor, after =
                         // shadow CPU limit at the miss, detail = core-time
                         // still owed at the deadline, us)
};
inline constexpr int kEventKindCount = 37;

const char* event_kind_name(EventKind kind);
std::optional<EventKind> event_kind_from_name(std::string_view name);

// 0 means "no event" (e.g. a root cause).
using EventId = std::uint64_t;

struct TraceEvent {
  EventId id = 0;  // assigned by TraceBuffer::record
  sim::TimePoint time = 0;
  EventKind kind = EventKind::kThrottleObserved;
  std::uint32_t container = 0;  // 0 = not container-specific
  std::uint32_t node = 0;       // node id + 1; 0 = unknown/none
  // Limit before/after the event, in the resource's natural unit: cores for
  // CPU events, bytes for memory events; 0 when not a limit change.
  double before = 0.0;
  double after = 0.0;
  EventId cause = 0;  // the event this one is a direct consequence of
  // Kind-specific extra: unused runtime (ThrottleObserved, us), shortfall
  // (MemGrantOnOom, bytes), freed bytes (Reclaim), wire bytes (Rpc*).
  std::int64_t detail = 0;
  // Owning controller shard + 1; 0 = unsharded/none. Stamped by
  // export_merged_jsonl from buffer provenance (each shard records into its
  // own Observer), so single-controller exports are unchanged byte-for-byte:
  // export_jsonl only emits the field when it is nonzero.
  std::uint32_t shard = 0;
};

class TraceBuffer {
 public:
  // Invoked (when set) with every event right after it is recorded, id
  // assigned. Used by src/check to validate events as they happen; the
  // hot-path cost when unset is one pointer test per record.
  using RecordHook = std::function<void(const TraceEvent&)>;

  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  // Appends the event (evicting the oldest if full), assigns its id, and
  // returns it. The passed event's `id` field is ignored.
  EventId record(TraceEvent event);

  // Replaces the record hook; pass nullptr (default) to clear it. The hook
  // must not record into this buffer (no reentrancy guard).
  void set_record_hook(RecordHook hook) { record_hook_ = std::move(hook); }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  // Total events ever recorded / evicted from the ring.
  std::uint64_t recorded() const { return next_id_ - 1; }
  std::uint64_t evicted() const { return evicted_; }

  // Event by id; nullptr if never recorded or already evicted. O(1): ids
  // are dense, so the id maps straight to a ring position.
  const TraceEvent* find(EventId id) const;
  // Events oldest-first; index 0 is the oldest still buffered.
  const TraceEvent& at(std::size_t index) const;

  // --- causal queries ---

  // The causal chain ending at `id`, root first. Stops (at the oldest
  // retained link) when a cause has been evicted or is 0.
  std::vector<TraceEvent> chain(EventId id) const;

  // All buffered events touching a container, oldest first.
  std::vector<TraceEvent> for_container(std::uint32_t container) const;

  // The newest buffered event satisfying (kind, container); nullopt if none.
  std::optional<TraceEvent> last(EventKind kind, std::uint32_t container) const;

  // --- export / import ---

  // One JSON object per line, fields in fixed order, %.17g doubles: output
  // depends only on the recorded events, so identical-seed runs export
  // byte-identical files.
  void export_jsonl(std::ostream& out) const;
  void export_csv(std::ostream& out) const;

  // Parses a file produced by export_jsonl (used by the escra-trace CLI).
  // Throws std::runtime_error on malformed lines. The `shard` field is
  // optional (absent in pre-shard exports; parsed when present).
  static TraceBuffer import_jsonl(std::istream& in);

 private:
  std::size_t index_of(EventId id) const;

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // ring_[(start_ + i) % capacity_]
  std::size_t start_ = 0;
  EventId next_id_ = 1;
  std::uint64_t evicted_ = 0;
  RecordHook record_hook_;
};

// Merges per-shard trace buffers into one deterministic JSONL stream
// (src/shard: each shard records into its own Observer; this is the export
// the escra-trace --shard view reads). Events are interleaved by
// (time, shard) with intra-buffer order preserved, re-assigned dense ids in
// merge order, causal links remapped within their own shard's buffer (cross
// buffer causality does not exist), and stamped with shard = buffer index
// + 1. Identical-seed runs produce byte-identical merged exports.
void export_merged_jsonl(const std::vector<const TraceBuffer*>& shards,
                         std::ostream& out);

}  // namespace escra::obs
