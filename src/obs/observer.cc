#include "obs/observer.h"

namespace escra::obs {

Observer::Observer(Config config) : trace_(config.trace_capacity) {
  h.stats_ingested = &metrics_.counter("controller.stats_ingested");
  h.rpcs_issued = &metrics_.counter("controller.rpcs_issued");
  h.rpcs_applied = &metrics_.counter("controller.rpcs_applied");
  h.batched_rpcs = &metrics_.counter("controller.batched_rpcs");
  h.batch_entries = &metrics_.counter("controller.batch_entries");
  h.oom_events = &metrics_.counter("controller.oom_events");
  h.oom_rescues = &metrics_.counter("controller.oom_rescues");
  h.reclaim_sweeps = &metrics_.counter("reclaim.sweeps");
  h.reclaim_bytes = &metrics_.counter("reclaim.bytes_total");
  h.registrations = &metrics_.counter("containers.registered_total");
  h.deregistrations = &metrics_.counter("containers.deregistered_total");
  h.containers_active = &metrics_.gauge("containers.active");

  h.cpu_grants = &metrics_.counter("allocator.cpu_grants");
  h.cpu_shrinks = &metrics_.counter("allocator.cpu_shrinks");
  h.mem_grants = &metrics_.counter("allocator.mem_grants");
  h.mem_denies = &metrics_.counter("allocator.mem_denies");

  h.pool_cpu_allocated = &metrics_.gauge("pool.cpu_allocated_cores");
  h.pool_cpu_unallocated = &metrics_.gauge("pool.cpu_unallocated_cores");
  h.pool_mem_allocated = &metrics_.gauge("pool.mem_allocated_bytes");
  h.pool_mem_unallocated = &metrics_.gauge("pool.mem_unallocated_bytes");

  h.cfs_periods = &metrics_.counter("cfs.periods_total");
  h.cfs_throttled_periods = &metrics_.counter("cfs.throttled_periods_total");
  h.memcg_oom_kills = &metrics_.counter("memcg.oom_kills");
  h.memcg_oom_rescues = &metrics_.counter("memcg.oom_rescues");
  h.agent_limit_applies = &metrics_.counter("agent.limit_applies");

  h.retransmits = &metrics_.counter("controller.retransmits");
  h.dup_suppressed = &metrics_.counter("agent.duplicates_suppressed");
  h.resyncs = &metrics_.counter("controller.resyncs");
  h.heartbeats = &metrics_.counter("controller.heartbeats_received");
  h.nodes_dead = &metrics_.counter("controller.nodes_declared_dead");
  h.nodes_alive = &metrics_.counter("controller.nodes_recovered");
  h.fail_static_entries = &metrics_.counter("agent.fail_static_entries");
  h.faults_injected = &metrics_.counter("fault.injected");
  h.faults_cleared = &metrics_.counter("fault.cleared");

  h.ha_wal_appends = &metrics_.counter("ha.wal_appends");
  h.ha_elections = &metrics_.counter("ha.elections");
  h.ha_fenced_updates = &metrics_.counter("ha.fenced_updates");
  h.ha_wal_lag_events = &metrics_.counter("ha.wal_lag_events");
  h.ha_epoch = &metrics_.gauge("ha.epoch");

  h.bw_throttle_events = &metrics_.counter("bw.throttle_events");
  h.bw_saturation = &metrics_.counter("controller.bw_saturation_events");
  h.bw_stats_ingested = &metrics_.counter("controller.bw_stats_ingested");
  h.bw_grants = &metrics_.counter("allocator.bw_grants");
  h.bw_shrinks = &metrics_.counter("allocator.bw_shrinks");
  h.pool_bw_allocated = &metrics_.gauge("pool.bw_allocated_bps");
  h.pool_bw_unallocated = &metrics_.gauge("pool.bw_unallocated_bps");

  h.telemetry_rejected = &metrics_.counter("controller.telemetry_rejected");
  h.credit_charges = &metrics_.counter("controller.credit_charges");
  h.credit_refunds = &metrics_.counter("controller.credit_refunds");
  h.greedy_throttles = &metrics_.counter("controller.greedy_throttles");

  h.shard_adverts = &metrics_.counter("shard.advertisements");
  h.shard_borrow_requests = &metrics_.counter("shard.borrow_requests");
  h.shard_borrow_grants = &metrics_.counter("shard.borrow_grants");
  h.shard_borrow_returns = &metrics_.counter("shard.borrow_returns");
  h.shard_borrow_retransmits = &metrics_.counter("shard.borrow_retransmits");
  h.shard_pool_resizes = &metrics_.counter("shard.pool_resizes");

  h.rt_admitted = &metrics_.counter("controller.rt_admitted");
  h.rt_rejected = &metrics_.counter("controller.rt_rejected");
  h.rt_evicted = &metrics_.counter("controller.rt_evicted");
  h.deadline_misses = &metrics_.counter("cfs.deadline_misses");
  h.rt_reserved_cores = &metrics_.gauge("controller.rt_reserved_cores");
}

}  // namespace escra::obs
