// Control-plane metrics registry (escra_obs).
//
// Named counters, gauges, and latency histograms for the Escra control
// plane: grants/shrinks per second, pool occupancy, per-channel network
// bytes, OOM rescues, and the per-stage control-loop latency the paper's
// overhead evaluation (Section VI-I) reports. Instrumented modules hold raw
// `Counter*`/`Gauge*` handles obtained at attach time, so the hot-path cost
// when observability is off is a single null-pointer check.
//
// Registration is strict: a metric name can be registered exactly once,
// across all three metric kinds. Re-registering throws instead of silently
// shadowing the first metric (silent shadowing would split a counter's
// increments across two objects and under-report without any error).
//
// Snapshots: `snapshot()` captures every metric's current value at one
// simulated instant; `start_periodic_snapshots()` schedules capture on the
// simulation clock so a run leaves behind a deterministic time series,
// exportable as CSV.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace escra::sim {
class Simulation;
}

namespace escra::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::uint64_t value_ = 0;
};

// Point-in-time value (pool occupancy, pod counts).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  double value_ = 0.0;
};

// Distribution metric: a log-bucketed histogram (for percentiles) plus a
// running moment (for an exact mean). Values are integers — typically
// simulated-time durations in microseconds.
class DistributionMetric {
 public:
  void record(std::int64_t value) {
    hist_.record(value);
    stat_.add(static_cast<double>(value));
  }
  const sim::Histogram& histogram() const { return hist_; }
  const sim::RunningStat& stat() const { return stat_; }
  std::uint64_t count() const { return hist_.count(); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  DistributionMetric(std::string name, std::int64_t max_value,
                     int precision_bits)
      : name_(std::move(name)), hist_(max_value, precision_bits) {}
  std::string name_;
  sim::Histogram hist_;
  sim::RunningStat stat_;
};

// One captured instant: (metric name, value) pairs in name order. Counters
// report their count, gauges their value, distributions their sample count
// (the full distribution stays queryable on the registry itself).
struct MetricsSnapshot {
  sim::TimePoint time = 0;
  std::vector<std::pair<std::string, double>> values;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (throws std::invalid_argument on a duplicate name,
  //     regardless of metric kind) ---
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  DistributionMetric& distribution(const std::string& name,
                                   std::int64_t max_value = 3'600'000'000LL,
                                   int precision_bits = 7);

  // --- lookup (nullptr when absent or a different kind) ---
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const DistributionMetric* find_distribution(const std::string& name) const;
  bool has(const std::string& name) const;
  std::size_t size() const;

  // --- snapshotting ---
  MetricsSnapshot snapshot(sim::TimePoint now) const;
  // Captures a snapshot every `interval`, first at `interval`, on the
  // simulation clock. Call at most once per registry.
  void start_periodic_snapshots(sim::Simulation& sim, sim::Duration interval);
  // Captures one snapshot now and appends it to the series.
  void capture(sim::TimePoint now);
  const std::vector<MetricsSnapshot>& snapshots() const { return snapshots_; }

  // CSV time series: one column per metric (name order), one row per
  // captured snapshot. When no snapshot was ever captured, emits a single
  // row of the current values at time `now`.
  void export_csv(std::ostream& out, sim::TimePoint now) const;

 private:
  void claim_name(const std::string& name);

  // std::map keeps metric iteration in name order, which makes snapshots and
  // CSV exports deterministic and stable across runs.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DistributionMetric>> distributions_;
  std::vector<MetricsSnapshot> snapshots_;
  bool periodic_started_ = false;
};

}  // namespace escra::obs
