#include "obs/metrics.h"

#include <cstdio>
#include <stdexcept>

#include "sim/event_queue.h"

namespace escra::obs {

void MetricsRegistry::claim_name(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  }
  if (has(name)) {
    throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name +
                                "' (names are registered exactly once; use "
                                "find_* to share a handle)");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  claim_name(name);
  auto& slot = counters_[name];
  slot = std::unique_ptr<Counter>(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  claim_name(name);
  auto& slot = gauges_[name];
  slot = std::unique_ptr<Gauge>(new Gauge(name));
  return *slot;
}

DistributionMetric& MetricsRegistry::distribution(const std::string& name,
                                                  std::int64_t max_value,
                                                  int precision_bits) {
  claim_name(name);
  auto& slot = distributions_[name];
  slot = std::unique_ptr<DistributionMetric>(
      new DistributionMetric(name, max_value, precision_bits));
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const DistributionMetric* MetricsRegistry::find_distribution(
    const std::string& name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : it->second.get();
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         distributions_.contains(name);
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + distributions_.size();
}

MetricsSnapshot MetricsRegistry::snapshot(sim::TimePoint now) const {
  MetricsSnapshot snap;
  snap.time = now;
  snap.values.reserve(size());
  // Merge the three name-ordered maps into one name-ordered value list.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto d = distributions_.begin();
  while (c != counters_.end() || g != gauges_.end() ||
         d != distributions_.end()) {
    const std::string* cn = c != counters_.end() ? &c->first : nullptr;
    const std::string* gn = g != gauges_.end() ? &g->first : nullptr;
    const std::string* dn = d != distributions_.end() ? &d->first : nullptr;
    const std::string* least = cn;
    if (least == nullptr || (gn != nullptr && *gn < *least)) least = gn;
    if (least == nullptr || (dn != nullptr && *dn < *least)) least = dn;
    if (least == cn && cn != nullptr) {
      snap.values.emplace_back(*cn, static_cast<double>(c->second->value()));
      ++c;
    } else if (least == gn && gn != nullptr) {
      snap.values.emplace_back(*gn, g->second->value());
      ++g;
    } else {
      snap.values.emplace_back(*dn, static_cast<double>(d->second->count()));
      ++d;
    }
  }
  return snap;
}

void MetricsRegistry::capture(sim::TimePoint now) {
  snapshots_.push_back(snapshot(now));
}

void MetricsRegistry::start_periodic_snapshots(sim::Simulation& sim,
                                               sim::Duration interval) {
  if (interval <= 0) {
    throw std::invalid_argument("start_periodic_snapshots: interval <= 0");
  }
  if (periodic_started_) {
    throw std::logic_error("start_periodic_snapshots: already started");
  }
  periodic_started_ = true;
  sim.schedule_every(sim.now() + interval, interval,
                     [this, &sim] { capture(sim.now()); });
}

void MetricsRegistry::export_csv(std::ostream& out, sim::TimePoint now) const {
  // Column set: the union of metric names across all snapshots plus the
  // current registry (metrics registered after snapshotting began appear as
  // empty cells in earlier rows).
  std::map<std::string, bool> columns;
  for (const MetricsSnapshot& snap : snapshots_) {
    for (const auto& [name, _] : snap.values) columns[name] = true;
  }
  const MetricsSnapshot current = snapshot(now);
  for (const auto& [name, _] : current.values) columns[name] = true;

  out << "time_s";
  for (const auto& [name, _] : columns) out << ',' << name;
  out << '\n';

  const auto write_row = [&](const MetricsSnapshot& snap) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", sim::to_seconds(snap.time));
    out << buf;
    auto it = snap.values.begin();
    for (const auto& [name, _] : columns) {
      while (it != snap.values.end() && it->first < name) ++it;
      out << ',';
      if (it != snap.values.end() && it->first == name) {
        std::snprintf(buf, sizeof(buf), "%.17g", it->second);
        out << buf;
      }
    }
    out << '\n';
  };

  if (snapshots_.empty()) {
    write_row(current);
    return;
  }
  for (const MetricsSnapshot& snap : snapshots_) write_row(snap);
}

}  // namespace escra::obs
