#include "obs/profiler.h"

#include <cstdio>
#include <stdexcept>

namespace escra::obs {

namespace {
// Stage latencies are sub-second in any healthy run; a 1-hour ceiling keeps
// the histograms tiny while leaving room to see pathological stalls.
constexpr std::int64_t kMaxLatencyUs = 3'600'000'000LL;
}  // namespace

const char* loop_stage_name(LoopStage stage) {
  switch (stage) {
    case LoopStage::kFireToIngest: return "fire->ingest";
    case LoopStage::kIngestToDecide: return "ingest->decide";
    case LoopStage::kDecideToApply: return "decide->apply";
    case LoopStage::kEndToEnd: return "end-to-end";
  }
  return "unknown";
}

LoopProfiler::LoopProfiler()
    : hist_{sim::Histogram(kMaxLatencyUs), sim::Histogram(kMaxLatencyUs),
            sim::Histogram(kMaxLatencyUs), sim::Histogram(kMaxLatencyUs)} {}

void LoopProfiler::record(LoopStage stage, sim::Duration latency) {
  if (latency < 0) throw std::invalid_argument("LoopProfiler: negative");
  const auto i = static_cast<std::size_t>(stage);
  hist_[i].record(latency);
  stat_[i].add(static_cast<double>(latency));
}

void LoopProfiler::record_loop(sim::TimePoint fire, sim::TimePoint ingest,
                               sim::TimePoint decide, sim::TimePoint apply) {
  record(LoopStage::kFireToIngest, ingest - fire);
  record(LoopStage::kIngestToDecide, decide - ingest);
  record(LoopStage::kDecideToApply, apply - decide);
  record(LoopStage::kEndToEnd, apply - fire);
  ++loops_;
}

const sim::Histogram& LoopProfiler::histogram(LoopStage stage) const {
  return hist_[static_cast<std::size_t>(stage)];
}

const sim::RunningStat& LoopProfiler::stat(LoopStage stage) const {
  return stat_[static_cast<std::size_t>(stage)];
}

std::string LoopProfiler::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "  %-16s %10s %10s %10s %10s %10s %10s\n",
                "stage", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms",
                "max ms");
  out += line;
  for (int i = 0; i < kLoopStageCount; ++i) {
    const auto stage = static_cast<LoopStage>(i);
    const sim::Histogram& h = hist_[i];
    // The histogram clamps values below 1 us up to 1 us; use the exact
    // running stat for the mean and fall back to it for an all-zero stage.
    const double mean_ms = stat_[i].mean() / 1000.0;
    std::snprintf(line, sizeof(line),
                  "  %-16s %10llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                  loop_stage_name(stage),
                  static_cast<unsigned long long>(h.count()), mean_ms,
                  static_cast<double>(h.percentile(50)) / 1000.0,
                  static_cast<double>(h.percentile(90)) / 1000.0,
                  static_cast<double>(h.percentile(99)) / 1000.0,
                  static_cast<double>(h.max()) / 1000.0);
    out += line;
  }
  return out;
}

}  // namespace escra::obs
