#include "bw/token_bucket.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::bw {

TokenBucket::TokenBucket(double rate_bps, double burst_bytes)
    : rate_(rate_bps), burst_(burst_bytes), tokens_(burst_bytes) {
  if (rate_bps > 0.0 && burst_bytes <= 0.0) {
    throw std::invalid_argument("TokenBucket: nonpositive burst");
  }
}

void TokenBucket::refill(sim::TimePoint now) {
  if (now <= last_) return;
  const double dt = sim::to_seconds(now - last_);
  last_ = now;
  if (rate_ <= 0.0) return;
  tokens_ = std::min(burst_, tokens_ + rate_ * dt);
}

double TokenBucket::need(double bytes) const {
  return std::min(bytes, burst_);
}

void TokenBucket::set_rate(sim::TimePoint now, double rate_bps,
                           double burst_bytes) {
  refill(now);
  rate_ = rate_bps;
  if (rate_ <= 0.0) return;
  if (burst_bytes <= 0.0) {
    throw std::invalid_argument("TokenBucket::set_rate: nonpositive burst");
  }
  burst_ = burst_bytes;
  tokens_ = std::min(tokens_, burst_);
}

double TokenBucket::tokens(sim::TimePoint now) {
  refill(now);
  return unlimited() ? 0.0 : tokens_;
}

bool TokenBucket::try_consume(sim::TimePoint now, double bytes) {
  if (unlimited()) return true;
  refill(now);
  if (tokens_ + 1e-9 < need(bytes)) return false;
  tokens_ -= bytes;  // oversized messages leave debt, never deadlock
  return true;
}

sim::Duration TokenBucket::time_until(sim::TimePoint now, double bytes) {
  if (unlimited()) return 0;
  refill(now);
  const double missing = need(bytes) - tokens_;
  if (missing <= 1e-9) return 0;
  // Ceil to whole microseconds, then nudge past any floating-point shortfall
  // so the caller's timer always lands on a consumable instant.
  sim::Duration d =
      static_cast<sim::Duration>(std::ceil(missing / rate_ * 1e6));
  while (tokens_ + rate_ * sim::to_seconds(d) + 1e-9 < need(bytes)) ++d;
  return std::max<sim::Duration>(d, 1);
}

}  // namespace escra::bw
