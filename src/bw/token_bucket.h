// Token bucket over simulated time — the primitive behind the HTB-style
// per-container bandwidth shaper (src/bw/shaper.h).
//
// Tokens are bytes. The bucket refills lazily at `rate_bps` bytes/second up
// to a `burst_bytes` ceiling, so an idle container accrues one full burst of
// credit and can transmit it back-to-back before throttling — the CFS-burst
// analogue for the network plane. A message larger than the burst consumes
// the whole bucket and drives the level negative (debt), so oversized
// messages wait for a full bucket instead of deadlocking.
//
// rate <= 0 means unlimited: every consume succeeds instantly and the
// bucket keeps no state, so unshaped containers cost nothing.
#pragma once

#include "sim/time.h"

namespace escra::bw {

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_bps, double burst_bytes);

  double rate_bps() const { return rate_; }
  double burst_bytes() const { return burst_; }
  bool unlimited() const { return rate_ <= 0.0; }

  // Re-rates the bucket mid-flight: credit accrued under the old rate is
  // settled up to `now` first, then time continues under the new rate.
  // Tokens above the new burst ceiling are forfeited.
  void set_rate(sim::TimePoint now, double rate_bps, double burst_bytes);

  // Current token level after refilling to `now`.
  double tokens(sim::TimePoint now);

  // Consumes `bytes` if enough credit is available (a message larger than
  // the burst is admitted on a full bucket and leaves debt). Returns false
  // without consuming otherwise.
  bool try_consume(sim::TimePoint now, double bytes);

  // Microseconds until try_consume(now + d, bytes) would succeed; 0 when it
  // already would. Unlimited buckets always return 0.
  sim::Duration time_until(sim::TimePoint now, double bytes);

 private:
  void refill(sim::TimePoint now);
  // Credit needed to admit `bytes` (capped at the burst for oversized ones).
  double need(double bytes) const;

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  sim::TimePoint last_ = 0;
};

}  // namespace escra::bw
