#include "bw/shaper.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/observer.h"

namespace escra::bw {

// --- NodeShaper ----------------------------------------------------------

NodeShaper::NodeShaper(sim::Simulation& sim, std::uint32_t node,
                       double nic_bps, ShaperConfig config)
    : sim_(sim),
      node_(node),
      config_(config),
      nic_(nic_bps, nic_bps > 0.0 ? std::max(config.min_burst_bytes,
                                             nic_bps * config.burst_window_s)
                                  : 0.0) {
  if (nic_bps <= 0.0) {
    throw std::invalid_argument("NodeShaper: nonpositive NIC capacity");
  }
}

NodeShaper::~NodeShaper() {
  for (auto& [key, ln] : lanes_) sim_.cancel(ln.timer);
}

double NodeShaper::burst_for(double rate_bps) const {
  return std::max(config_.min_burst_bytes, rate_bps * config_.burst_window_s);
}

double NodeShaper::container_rate(std::uint32_t container) const {
  const auto it = rates_.find(container);
  return it == rates_.end() ? 0.0 : it->second;
}

NodeShaper::Lane& NodeShaper::lane(std::uint32_t container, bool ingress,
                                   double rate_bps) {
  const std::uint64_t key = lane_key(container, ingress);
  auto it = lanes_.find(key);
  if (it == lanes_.end()) {
    it = lanes_.emplace(key, Lane{}).first;
    it->second.bucket = TokenBucket(rate_bps, burst_for(rate_bps));
    // A fresh lane starts with a full burst of credit (idle until now), but
    // its refill clock starts at the current instant, not t=0.
    it->second.bucket.tokens(sim_.now());
  }
  return it->second;
}

void NodeShaper::set_container_rate(std::uint32_t container, double rate_bps) {
  rates_[container] = std::max(0.0, rate_bps);
  const double rate = rates_[container];
  for (const bool ingress : {false, true}) {
    const std::uint64_t key = lane_key(container, ingress);
    const auto it = lanes_.find(key);
    if (it == lanes_.end()) continue;  // future lanes read rates_
    Lane& ln = it->second;
    ln.bucket.set_rate(sim_.now(), rate,
                       rate > 0.0 ? burst_for(rate) : ln.bucket.burst_bytes());
    if (!ln.queue.empty() && !ln.draining) {
      // Queued messages re-evaluate against the new rate right now: a raise
      // can release them early, a cut pushes their release further out.
      sim_.cancel(ln.timer);
      ln.timer = sim::EventHandle{};
      drain(key);
    }
  }
}

void NodeShaper::remove_container(std::uint32_t container) {
  for (const bool ingress : {false, true}) {
    const std::uint64_t key = lane_key(container, ingress);
    const auto it = lanes_.find(key);
    if (it == lanes_.end()) continue;
    sim_.cancel(it->second.timer);
    // Release anything still queued, in order: the container's shaping is
    // gone, not the messages already handed to the network.
    std::deque<Queued> pending = std::move(it->second.queue);
    lanes_.erase(it);
    for (Queued& q : pending) q.release();
  }
  rates_.erase(container);
}

void NodeShaper::note_throttle(std::uint32_t container, const Lane& ln) {
  if (obs_ == nullptr) return;
  obs_->h.bw_throttle_events->inc();
  obs_->record({.time = sim_.now(),
                .kind = obs::EventKind::kBwThrottled,
                .container = container,
                .node = node_ + 1,
                .before = ln.bucket.rate_bps(),
                .after = ln.bucket.rate_bps(),
                .detail = static_cast<std::int64_t>(ln.queue.size())});
}

bool NodeShaper::shape(bool ingress, std::uint32_t container,
                       std::size_t bytes, std::function<void()> release) {
  const double rate = container_rate(container);
  if (rate <= 0.0) return false;  // unshaped container: pass through
  Lane& ln = lane(container, ingress, rate);
  const sim::TimePoint now = sim_.now();
  const double b = static_cast<double>(bytes);
  if (ln.queue.empty() && !ln.draining && ln.bucket.time_until(now, b) == 0 &&
      nic_.time_until(now, b) == 0) {
    ln.bucket.try_consume(now, b);
    nic_.try_consume(now, b);
    ln.through_bytes += bytes;
    return false;
  }
  ++ln.throttled_msgs;
  ln.queue.push_back({bytes, std::move(release)});
  if (ln.queue.size() == 1) {
    // Queue formation: the obs event that makes data-plane throttling
    // visible before the next telemetry period lands.
    note_throttle(container, ln);
    if (!ln.draining) {
      const std::uint64_t key = lane_key(container, ingress);
      const sim::Duration wait =
          std::max(ln.bucket.time_until(now, b), nic_.time_until(now, b));
      ln.timer = sim_.schedule_after(std::max<sim::Duration>(wait, 1),
                                     [this, key] { drain(key); });
    }
  }
  return true;
}

void NodeShaper::drain(std::uint64_t key) {
  {
    const auto it = lanes_.find(key);
    if (it == lanes_.end()) return;
    it->second.timer = sim::EventHandle{};
    it->second.draining = true;
  }
  while (true) {
    // Re-find every iteration: a release() may re-enter the shaper and even
    // remove this container.
    const auto it = lanes_.find(key);
    if (it == lanes_.end()) return;
    Lane& ln = it->second;
    if (ln.queue.empty()) {
      ln.draining = false;
      return;
    }
    const sim::TimePoint now = sim_.now();
    const double b = static_cast<double>(ln.queue.front().bytes);
    const sim::Duration wait =
        std::max(ln.bucket.time_until(now, b), nic_.time_until(now, b));
    if (wait > 0) {
      ln.draining = false;
      ln.timer = sim_.schedule_after(wait, [this, key] { drain(key); });
      return;
    }
    Queued head = std::move(ln.queue.front());
    ln.queue.pop_front();
    ln.bucket.try_consume(now, b);
    nic_.try_consume(now, b);
    ln.through_bytes += head.bytes;
    head.release();
  }
}

NodeShaper::PeriodStats NodeShaper::sample(std::uint32_t container) {
  PeriodStats s;
  for (const bool ingress : {false, true}) {
    const auto it = lanes_.find(lane_key(container, ingress));
    if (it == lanes_.end()) continue;
    Lane& ln = it->second;
    (ingress ? s.ingress_bytes : s.egress_bytes) = ln.through_bytes;
    s.throttled_msgs += ln.throttled_msgs;
    s.queue_depth += ln.queue.size();
    ln.through_bytes = 0;
    ln.throttled_msgs = 0;
  }
  return s;
}

std::size_t NodeShaper::queued_messages() const {
  std::size_t n = 0;
  for (const auto& [key, ln] : lanes_) n += ln.queue.size();
  return n;
}

// --- ClusterShaper -------------------------------------------------------

ClusterShaper::ClusterShaper(sim::Simulation& sim, ShaperConfig config)
    : sim_(sim), config_(config) {}

ClusterShaper::~ClusterShaper() { stop_sampler(); }

NodeShaper& ClusterShaper::add_node(std::uint32_t node, double nic_bps) {
  auto [it, inserted] = nodes_.emplace(
      node, std::make_unique<NodeShaper>(sim_, node, nic_bps, config_));
  if (!inserted) throw std::invalid_argument("ClusterShaper: duplicate node");
  it->second->set_observer(obs_);
  return *it->second;
}

NodeShaper* ClusterShaper::node_shaper(std::uint32_t node) {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const NodeShaper* ClusterShaper::node_shaper(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.get();
}

double ClusterShaper::node_nic_bps(std::uint32_t node) const {
  const NodeShaper* shaper = node_shaper(node);
  return shaper == nullptr ? 0.0 : shaper->nic_bps();
}

void ClusterShaper::attach(std::uint32_t container, std::uint32_t node) {
  if (!nodes_.contains(node)) {
    throw std::invalid_argument("ClusterShaper::attach: unknown node");
  }
  container_node_[container] = node;
}

void ClusterShaper::detach(std::uint32_t container) {
  const auto it = container_node_.find(container);
  if (it == container_node_.end()) return;
  if (NodeShaper* shaper = node_shaper(it->second)) {
    shaper->remove_container(container);
  }
  container_node_.erase(it);
}

std::uint32_t ClusterShaper::node_of(std::uint32_t container) const {
  const auto it = container_node_.find(container);
  return it == container_node_.end() ? kNoNode : it->second;
}

void ClusterShaper::set_container_rate(std::uint32_t container,
                                       double rate_bps) {
  const std::uint32_t node = node_of(container);
  if (node == kNoNode) {
    throw std::invalid_argument(
        "ClusterShaper::set_container_rate: container not attached");
  }
  nodes_.at(node)->set_container_rate(container, rate_bps);
}

double ClusterShaper::container_rate(std::uint32_t container) const {
  const std::uint32_t node = node_of(container);
  if (node == kNoNode) return 0.0;
  return nodes_.at(node)->container_rate(container);
}

void ClusterShaper::start_sampler(sim::Duration period, StatsSink sink) {
  if (period <= 0) throw std::invalid_argument("start_sampler: period <= 0");
  stop_sampler();
  sample_period_ = period;
  sink_ = std::move(sink);
  sampler_ = sim_.schedule_every(sim_.now() + period, period,
                                 [this] { sampler_tick(); });
}

void ClusterShaper::stop_sampler() {
  sim_.cancel(sampler_);
  sampler_ = sim::EventHandle{};
}

void ClusterShaper::sampler_tick() {
  if (!sink_) return;
  const double period_s = sim::to_seconds(sample_period_);
  // Ascending container order: the emission order (and therefore the
  // controller's ingest order) is deterministic.
  for (const auto& [container, node] : container_node_) {
    NodeShaper& shaper = *nodes_.at(node);
    const double rate = shaper.container_rate(container);
    if (rate <= 0.0) continue;  // unshaped: no telemetry
    const NodeShaper::PeriodStats stats = shaper.sample(container);
    BwSample s;
    s.container = container;
    s.node = node;
    s.rate_bps = rate;
    s.used_bps = static_cast<double>(
                     std::max(stats.egress_bytes, stats.ingress_bytes)) /
                 period_s;
    s.throttled = stats.throttled_msgs > 0 || stats.queue_depth > 0;
    s.queue_depth = stats.queue_depth;
    sink_(s);
  }
}

void ClusterShaper::set_observer(obs::Observer* observer) {
  obs_ = observer;
  for (auto& [node, shaper] : nodes_) shaper->set_observer(observer);
}

std::size_t ClusterShaper::queued_messages() const {
  std::size_t n = 0;
  for (const auto& [node, shaper] : nodes_) n += shaper->queued_messages();
  return n;
}

bool ClusterShaper::shape_egress(std::uint32_t container, std::size_t bytes,
                                 std::function<void()> release) {
  const std::uint32_t node = node_of(container);
  if (node == kNoNode) return false;
  return nodes_.at(node)->shape(false, container, bytes, std::move(release));
}

bool ClusterShaper::shape_ingress(std::uint32_t container, std::size_t bytes,
                                  std::function<void()> release) {
  const std::uint32_t node = node_of(container);
  if (node == kNoNode) return false;
  return nodes_.at(node)->shape(true, container, bytes, std::move(release));
}

}  // namespace escra::bw
