// HTB-style hierarchical bandwidth shaping for container traffic.
//
// Mirrors how src/cfs models the CFS bandwidth controller, but for the
// network plane: every worker node owns a NodeShaper — a root token bucket
// sized to the node's NIC capacity with one child bucket per shaped
// container and direction (egress/ingress). net::Network::send_flow
// consults the ClusterShaper (the net::Shaper implementation that maps
// containers to their node's shaper) on every attributed send: a message
// within the container's rate passes straight through; one exceeding it is
// queued FIFO and released by a sim timer once tokens accumulate, so
// shaping is visible in end-to-end latency.
//
// Telemetry mirrors the CFS period hook: a periodic sampler emits one
// BwSample per shaped container (achieved rate, throttle flag, queue
// depth), which the Controller ingests like CPU stats to drive the
// allocator's bandwidth arm. Queue formation records an obs::kBwThrottled
// decision event when an Observer is attached.
//
// Everything runs on the deterministic simulation clock: identical seeds
// give byte-identical release schedules at any --jobs count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "bw/token_bucket.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace escra::obs {
class Observer;
}

namespace escra::bw {

struct ShaperConfig {
  // Bucket depth as a time window of the rate: burst = rate * burst_window,
  // floored so slow containers still absorb one MTU-scale batch.
  double burst_window_s = 0.010;
  double min_burst_bytes = 64.0 * 1024.0;
};

// Per-period telemetry for one shaped container (the bandwidth analogue of
// the CFS PeriodStats message).
struct BwSample {
  std::uint32_t container = 0;
  std::uint32_t node = 0;
  double rate_bps = 0.0;          // current symmetric rate limit, bytes/s
  double used_bps = 0.0;          // binding direction's achieved rate
  bool throttled = false;         // a queue formed (or persists) this period
  std::uint64_t queue_depth = 0;  // messages still queued at sample time
};

// One worker node's shaper: root NIC bucket + per-container/direction child
// buckets with FIFO queues and timer-driven release.
class NodeShaper {
 public:
  NodeShaper(sim::Simulation& sim, std::uint32_t node, double nic_bps,
             ShaperConfig config = {});
  ~NodeShaper();

  NodeShaper(const NodeShaper&) = delete;
  NodeShaper& operator=(const NodeShaper&) = delete;

  std::uint32_t node() const { return node_; }
  double nic_bps() const { return nic_.rate_bps(); }

  // Sets the container's symmetric rate limit (applied to both directions).
  // <= 0 means unshaped (unlimited). Takes effect immediately: queued
  // messages re-evaluate against the new rate at the call instant.
  void set_container_rate(std::uint32_t container, double rate_bps);
  double container_rate(std::uint32_t container) const;

  // Drops the container's lanes, releasing anything still queued (in FIFO
  // order, unshaped — the container is gone, not its in-flight messages).
  void remove_container(std::uint32_t container);

  // The shaping decision for one message. Returns true when queued
  // (`release` fires later from a timer); false to pass through now.
  bool shape(bool ingress, std::uint32_t container, std::size_t bytes,
             std::function<void()> release);

  // Period accounting drained by the ClusterShaper sampler: returns the
  // container's counters since the last call and resets them.
  struct PeriodStats {
    std::uint64_t egress_bytes = 0;   // released onto the wire
    std::uint64_t ingress_bytes = 0;  // released to the receiver
    std::uint64_t throttled_msgs = 0;
    std::uint64_t queue_depth = 0;  // still queued now (not reset)
  };
  PeriodStats sample(std::uint32_t container);

  std::size_t queued_messages() const;

  void set_observer(obs::Observer* observer) { obs_ = observer; }

 private:
  struct Queued {
    std::size_t bytes = 0;
    std::function<void()> release;
  };
  struct Lane {
    TokenBucket bucket;
    std::deque<Queued> queue;
    sim::EventHandle timer;
    bool draining = false;
    std::uint64_t through_bytes = 0;
    std::uint64_t throttled_msgs = 0;
  };

  static std::uint64_t lane_key(std::uint32_t container, bool ingress) {
    return static_cast<std::uint64_t>(container) * 2 + (ingress ? 1 : 0);
  }
  double burst_for(double rate_bps) const;
  Lane& lane(std::uint32_t container, bool ingress, double rate_bps);
  void drain(std::uint64_t key);
  void note_throttle(std::uint32_t container, const Lane& ln);

  sim::Simulation& sim_;
  std::uint32_t node_;
  ShaperConfig config_;
  TokenBucket nic_;  // root bucket: shaped traffic shares the NIC
  std::map<std::uint64_t, Lane> lanes_;   // deterministic iteration
  std::map<std::uint32_t, double> rates_; // container -> symmetric rate
  obs::Observer* obs_ = nullptr;
};

// The cluster-wide net::Shaper: routes shape calls to the owning node's
// NodeShaper and runs the periodic telemetry sampler.
class ClusterShaper final : public net::Shaper {
 public:
  explicit ClusterShaper(sim::Simulation& sim, ShaperConfig config = {});
  ~ClusterShaper() override;

  ClusterShaper(const ClusterShaper&) = delete;
  ClusterShaper& operator=(const ClusterShaper&) = delete;

  NodeShaper& add_node(std::uint32_t node, double nic_bps);
  NodeShaper* node_shaper(std::uint32_t node);
  const NodeShaper* node_shaper(std::uint32_t node) const;
  double node_nic_bps(std::uint32_t node) const;

  // Places a container on a node for shaping purposes (must mirror the
  // cluster's placement). Unattached containers pass through unshaped.
  void attach(std::uint32_t container, std::uint32_t node);
  void detach(std::uint32_t container);
  // Owning node, or nullopt-like sentinel kNoNode when unattached.
  static constexpr std::uint32_t kNoNode = 0xffffffffu;
  std::uint32_t node_of(std::uint32_t container) const;
  const std::map<std::uint32_t, std::uint32_t>& attachments() const {
    return container_node_;
  }

  void set_container_rate(std::uint32_t container, double rate_bps);
  double container_rate(std::uint32_t container) const;

  // Per-period telemetry: every `period`, emits one BwSample per shaped
  // container (rate > 0), in ascending container order.
  using StatsSink = std::function<void(const BwSample&)>;
  void start_sampler(sim::Duration period, StatsSink sink);
  void stop_sampler();

  void set_observer(obs::Observer* observer);

  std::size_t queued_messages() const;

  // net::Shaper
  bool shape_egress(std::uint32_t container, std::size_t bytes,
                    std::function<void()> release) override;
  bool shape_ingress(std::uint32_t container, std::size_t bytes,
                     std::function<void()> release) override;

 private:
  void sampler_tick();

  sim::Simulation& sim_;
  ShaperConfig config_;
  std::map<std::uint32_t, std::unique_ptr<NodeShaper>> nodes_;
  std::map<std::uint32_t, std::uint32_t> container_node_;
  sim::Duration sample_period_ = 0;
  sim::EventHandle sampler_;
  StatsSink sink_;
  obs::Observer* obs_ = nullptr;
};

}  // namespace escra::bw
