#include "config/app_config.h"

#include <stdexcept>
#include <unordered_map>

namespace escra::config {

namespace {

app::ServiceSpec parse_service(const YamlNode& node) {
  app::ServiceSpec spec;
  spec.name = node.get_string("name", "");
  if (spec.name.empty()) {
    throw std::runtime_error("config: service without a name");
  }
  spec.replicas = static_cast<int>(node.get_int("replicas", 1));
  spec.cpu_per_visit =
      sim::milliseconds_f(node.get_double("cpu_per_visit_ms", 2.0));
  spec.cpu_jitter_sigma = node.get_double("cpu_jitter_sigma", 0.6);
  spec.mem_per_visit = static_cast<memcg::Bytes>(
      node.get_double("mem_per_visit_mib", 2.0) *
      static_cast<double>(memcg::kMiB));
  spec.max_parallelism = node.get_double("parallelism", 8.0);
  spec.base_memory = static_cast<memcg::Bytes>(
      node.get_double("base_memory_mib", 288.0) *
      static_cast<double>(memcg::kMiB));
  spec.restart_delay =
      sim::seconds_f(node.get_double("restart_delay_s", 3.0));
  spec.startup_cpu =
      sim::milliseconds_f(node.get_double("startup_cpu_ms", 1500.0));
  spec.background_cpu_per_sec =
      sim::milliseconds_f(node.get_double("background_cpu_ms_per_s", 25.0));
  spec.gc_cpu = sim::milliseconds_f(node.get_double("gc_cpu_ms", 250.0));
  spec.gc_interval = sim::seconds_f(node.get_double("gc_interval_s", 9.0));
  return spec;
}

}  // namespace

AppConfig parse_app_config(const YamlNode& root) {
  AppConfig config;
  config.name = root.get_string("name", "app");
  config.graph.name = config.name;

  // --- services ---
  const YamlNode* services = root.find("services");
  if (services == nullptr || !services->is_list() || services->size() == 0) {
    throw std::runtime_error("config: 'services' list is required");
  }
  std::unordered_map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < services->size(); ++i) {
    app::ServiceSpec spec = parse_service((*services)[i]);
    if (index_of.contains(spec.name)) {
      throw std::runtime_error("config: duplicate service '" + spec.name + "'");
    }
    index_of[spec.name] = i;
    config.graph.services.push_back(std::move(spec));
  }

  // --- edges (by service name; service order defines the topology) ---
  if (const YamlNode* edges = root.find("edges")) {
    for (std::size_t i = 0; i < edges->size(); ++i) {
      const YamlNode& e = (*edges)[i];
      const std::string from = e.get_string("from", "");
      const std::string to = e.get_string("to", "");
      if (!index_of.contains(from) || !index_of.contains(to)) {
        throw std::runtime_error("config: edge references unknown service '" +
                                 (index_of.contains(from) ? to : from) + "'");
      }
      app::EdgeSpec edge;
      edge.from = index_of.at(from);
      edge.to = index_of.at(to);
      edge.probability = e.get_double("probability", 1.0);
      config.graph.edges.push_back(edge);
    }
  }
  config.graph.validate();

  // --- Distributed Container limits ---
  const YamlNode& limits = root.at("limits");
  config.global_cpu_cores = limits.at("cpu_cores").as_double();
  config.global_mem = static_cast<memcg::Bytes>(
      limits.at("memory_mib").as_double() * static_cast<double>(memcg::kMiB));
  if (config.global_cpu_cores <= 0.0 || config.global_mem <= 0) {
    throw std::runtime_error("config: limits must be positive");
  }

  // --- Escra tunables (optional; paper defaults otherwise) ---
  if (const YamlNode* escra = root.find("escra")) {
    config.escra.kappa = escra->get_double("kappa", config.escra.kappa);
    config.escra.gamma = escra->get_double("gamma", config.escra.gamma);
    config.escra.upsilon = escra->get_double("upsilon", config.escra.upsilon);
    config.escra.sigma = escra->get_double("sigma", config.escra.sigma);
    config.escra.delta = static_cast<memcg::Bytes>(
        escra->get_double("delta_mib",
                          static_cast<double>(config.escra.delta) /
                              static_cast<double>(memcg::kMiB)) *
        static_cast<double>(memcg::kMiB));
    config.escra.reclaim_interval = sim::seconds_f(escra->get_double(
        "reclaim_interval_s",
        sim::to_seconds(config.escra.reclaim_interval)));
    config.escra.cfs_period = sim::milliseconds_f(escra->get_double(
        "report_period_ms",
        sim::to_milliseconds(config.escra.cfs_period)));
    config.escra.window_periods = static_cast<std::size_t>(escra->get_int(
        "window_periods",
        static_cast<std::int64_t>(config.escra.window_periods)));
  }
  return config;
}

AppConfig load_app_config(const std::string& yaml_text) {
  return parse_app_config(YamlNode::parse(yaml_text));
}

AppConfig load_app_config_file(const std::string& path) {
  return parse_app_config(load_yaml_file(path));
}

}  // namespace escra::config
