// Application configuration files: the "set of YAML files" the Deployer
// ingests (Sections III, IV-A). A config describes a Distributed Container:
// the service graph (services, replicas, per-visit costs, edges), the
// aggregate CPU/memory limits, and optional Escra tunables.
//
// Example (see configs/ for complete files):
//
//   name: teastore
//   limits:
//     cpu_cores: 12.0
//     memory_mib: 4096
//   escra:
//     kappa: 0.8
//     gamma: 0.2
//     upsilon: 20
//   services:
//     - name: webui
//       replicas: 2
//       cpu_per_visit_ms: 5.6
//       mem_per_visit_mib: 2
//       base_memory_mib: 480
//     - name: auth
//       cpu_per_visit_ms: 2.4
//   edges:
//     - from: webui
//       to: auth
//       probability: 0.5
#pragma once

#include <string>

#include "app/service_graph.h"
#include "config/yaml.h"
#include "core/config.h"
#include "memcg/mem_cgroup.h"

namespace escra::config {

struct AppConfig {
  std::string name;
  app::GraphSpec graph;
  // Distributed Container aggregate limits.
  double global_cpu_cores = 0.0;
  memcg::Bytes global_mem = 0;
  // Tunables (paper defaults where the file is silent).
  core::EscraConfig escra;
};

// Converts a parsed document; throws std::runtime_error (with the offending
// key or service name) on invalid or missing fields.
AppConfig parse_app_config(const YamlNode& root);

// Convenience: parse from text / from a file on disk.
AppConfig load_app_config(const std::string& yaml_text);
AppConfig load_app_config_file(const std::string& path);

}  // namespace escra::config
