// Minimal YAML-subset parser (no external dependencies).
//
// The Application Deployer "takes a set of YAML files describing a set of
// Kubernetes deployments, services, and containers" (Section III). This
// parser covers the subset those configuration files need:
//
//   * block mappings        key: value  /  key: <indented block>
//   * block sequences       - value  /  - key: value <indented siblings>
//   * scalars               strings, integers, floats, booleans
//   * comments (#) and blank lines
//
// It does not implement anchors, flow style, multi-line scalars, or tags —
// config files using those are rejected with a ParseError naming the line.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace escra::config {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("yaml:" + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class YamlNode {
 public:
  enum class Kind { kScalar, kMap, kList };

  // Parses a complete document. Throws ParseError on malformed input.
  static YamlNode parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_map() const { return kind_ == Kind::kMap; }
  bool is_list() const { return kind_ == Kind::kList; }

  // --- map access ---
  // Child by key; throws if not a map or the key is missing.
  const YamlNode& at(const std::string& key) const;
  // Child by key or nullptr.
  const YamlNode* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  // Map entries in document order.
  const std::vector<std::pair<std::string, YamlNode>>& entries() const;

  // --- list access ---
  const YamlNode& operator[](std::size_t index) const;
  std::size_t size() const;

  // --- scalar access (throws on kind/format mismatch) ---
  const std::string& as_string() const;
  double as_double() const;
  std::int64_t as_int() const;
  bool as_bool() const;

  // Typed lookups with defaults for optional keys.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kScalar;
  std::string scalar_;
  std::vector<std::pair<std::string, YamlNode>> map_;
  std::vector<YamlNode> list_;
};

// Reads and parses a file; throws std::runtime_error if unreadable.
YamlNode load_yaml_file(const std::string& path);

}  // namespace escra::config
