#include "config/yaml.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace escra::config {

namespace {

struct Line {
  std::size_t number = 0;  // 1-based
  int indent = 0;
  std::string content;  // stripped of indentation, comments, and trailing ws
};

std::string strip_comment(std::string_view s) {
  // A '#' starts a comment unless inside quotes.
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == '#' && !in_single && !in_double) {
      s = s.substr(0, i);
      break;
    }
  }
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(end == std::string_view::npos ? "" : s.substr(0, end + 1));
}

std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++number;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    std::size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    if (indent < raw.size() && raw[indent] == '\t') {
      throw ParseError(number, "tab indentation is not supported");
    }
    const std::string content = strip_comment(raw.substr(indent));
    if (content.empty()) continue;
    if (content == "---") continue;  // document marker
    lines.push_back({number, static_cast<int>(indent), content});
  }
  return lines;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

// Splits "key: rest" at the first unquoted colon-space (or trailing colon).
// Returns false if the line is not a mapping entry.
bool split_key(const std::string& s, std::string& key, std::string& rest) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == ':' && !in_single && !in_double) {
      if (i + 1 == s.size()) {
        key = s.substr(0, i);
        rest.clear();
        return true;
      }
      if (s[i + 1] == ' ') {
        key = s.substr(0, i);
        rest = s.substr(i + 2);
        const auto first = rest.find_first_not_of(' ');
        rest = first == std::string::npos ? "" : rest.substr(first);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

// Declared as a friend of YamlNode; internal to this translation unit in
// spirit, named here so the friendship resolves.
class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  YamlNode parse_document() {
    if (lines_.empty()) {
      YamlNode node;
      node.kind_ = YamlNode::Kind::kMap;
      return node;
    }
    YamlNode root = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) {
      throw ParseError(lines_[pos_].number, "unexpected dedent/content");
    }
    return root;
  }

 private:
  bool done() const { return pos_ >= lines_.size(); }
  const Line& peek() const { return lines_[pos_]; }

  YamlNode scalar(const std::string& text) {
    YamlNode node;
    node.kind_ = YamlNode::Kind::kScalar;
    node.scalar_ = unquote(text);
    return node;
  }

  // Parses the block starting at the current line, whose items share
  // `indent`. Decides map vs list from the first line.
  YamlNode parse_block(int indent) {
    if (done()) throw ParseError(0, "empty block");
    if (peek().content.rfind("- ", 0) == 0 || peek().content == "-") {
      return parse_list(indent);
    }
    return parse_map(indent);
  }

  YamlNode parse_map(int indent) {
    YamlNode node;
    node.kind_ = YamlNode::Kind::kMap;
    while (!done() && peek().indent == indent &&
           peek().content.rfind("- ", 0) != 0 && peek().content != "-") {
      const Line line = peek();
      std::string key, rest;
      if (!split_key(line.content, key, rest)) {
        throw ParseError(line.number, "expected 'key: value'");
      }
      key = unquote(key);
      for (const auto& [existing, v] : node.map_) {
        if (existing == key) {
          throw ParseError(line.number, "duplicate key '" + key + "'");
        }
      }
      ++pos_;
      if (!rest.empty()) {
        node.map_.emplace_back(key, scalar(rest));
      } else if (!done() && peek().indent > indent) {
        node.map_.emplace_back(key, parse_block(peek().indent));
      } else {
        node.map_.emplace_back(key, scalar(""));  // empty value
      }
    }
    if (!done() && peek().indent > indent) {
      throw ParseError(peek().number, "unexpected indent");
    }
    return node;
  }

  YamlNode parse_list(int indent) {
    YamlNode node;
    node.kind_ = YamlNode::Kind::kList;
    while (!done() && peek().indent == indent &&
           (peek().content.rfind("- ", 0) == 0 || peek().content == "-")) {
      const Line line = peek();
      const std::string inner =
          line.content == "-" ? "" : line.content.substr(2);
      ++pos_;
      std::string key, rest;
      if (inner.empty()) {
        // "-" alone: the item is the following indented block.
        if (done() || peek().indent <= indent) {
          throw ParseError(line.number, "empty list item");
        }
        node.list_.push_back(parse_block(peek().indent));
      } else if (split_key(inner, key, rest)) {
        // "- key: value": a map item whose siblings (if any) are indented
        // past the dash.
        YamlNode item;
        item.kind_ = YamlNode::Kind::kMap;
        if (!rest.empty()) {
          item.map_.emplace_back(unquote(key), scalar(rest));
        } else if (!done() && peek().indent > indent + 2) {
          item.map_.emplace_back(unquote(key), parse_block(peek().indent));
        } else {
          item.map_.emplace_back(unquote(key), scalar(""));
        }
        while (!done() && peek().indent > indent) {
          // Continuation keys of the same item.
          const int cont_indent = peek().indent;
          YamlNode more = parse_map(cont_indent);
          for (auto& [k, v] : more.map_) {
            item.map_.emplace_back(std::move(k), std::move(v));
          }
        }
        node.list_.push_back(std::move(item));
      } else {
        node.list_.push_back(scalar(inner));
      }
    }
    return node;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

YamlNode YamlNode::parse(std::string_view text) {
  Parser parser(tokenize(text));
  return parser.parse_document();
}

const YamlNode* YamlNode::find(const std::string& key) const {
  if (kind_ != Kind::kMap) return nullptr;
  for (const auto& [k, v] : map_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const YamlNode& YamlNode::at(const std::string& key) const {
  if (kind_ != Kind::kMap) throw std::runtime_error("yaml: not a map");
  const YamlNode* node = find(key);
  if (node == nullptr) throw std::runtime_error("yaml: missing key '" + key + "'");
  return *node;
}

const std::vector<std::pair<std::string, YamlNode>>& YamlNode::entries() const {
  if (kind_ != Kind::kMap) throw std::runtime_error("yaml: not a map");
  return map_;
}

const YamlNode& YamlNode::operator[](std::size_t index) const {
  if (kind_ != Kind::kList) throw std::runtime_error("yaml: not a list");
  if (index >= list_.size()) throw std::runtime_error("yaml: index out of range");
  return list_[index];
}

std::size_t YamlNode::size() const {
  switch (kind_) {
    case Kind::kList: return list_.size();
    case Kind::kMap: return map_.size();
    case Kind::kScalar: return scalar_.empty() ? 0 : 1;
  }
  return 0;
}

const std::string& YamlNode::as_string() const {
  if (kind_ != Kind::kScalar) throw std::runtime_error("yaml: not a scalar");
  return scalar_;
}

double YamlNode::as_double() const {
  const std::string& s = as_string();
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    if (used != s.size()) throw std::runtime_error("");
    return value;
  } catch (...) {
    throw std::runtime_error("yaml: '" + s + "' is not a number");
  }
}

std::int64_t YamlNode::as_int() const {
  const std::string& s = as_string();
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("yaml: '" + s + "' is not an integer");
  }
  return value;
}

bool YamlNode::as_bool() const {
  const std::string& s = as_string();
  if (s == "true" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "no" || s == "off") return false;
  throw std::runtime_error("yaml: '" + s + "' is not a boolean");
}

double YamlNode::get_double(const std::string& key, double fallback) const {
  const YamlNode* node = find(key);
  return node == nullptr ? fallback : node->as_double();
}

std::int64_t YamlNode::get_int(const std::string& key,
                               std::int64_t fallback) const {
  const YamlNode* node = find(key);
  return node == nullptr ? fallback : node->as_int();
}

std::string YamlNode::get_string(const std::string& key,
                                 const std::string& fallback) const {
  const YamlNode* node = find(key);
  return node == nullptr ? fallback : node->as_string();
}

YamlNode load_yaml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return YamlNode::parse(buffer.str());
}

}  // namespace escra::config
