#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::sim {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::reset() { *this = RunningStat(); }

SlidingWindow::SlidingWindow(std::size_t capacity) : buf_(capacity, 0.0) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow: capacity 0");
}

void SlidingWindow::add(double x) {
  if (size_ == buf_.size()) {
    sum_ -= buf_[head_];
  } else {
    ++size_;
  }
  buf_[head_] = x;
  sum_ += x;
  head_ = (head_ + 1) % buf_.size();
}

double SlidingWindow::mean() const {
  if (size_ == 0) return 0.0;
  return sum_ / static_cast<double>(size_);
}

void SlidingWindow::reset() {
  std::fill(buf_.begin(), buf_.end(), 0.0);
  head_ = 0;
  size_ = 0;
  sum_ = 0.0;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points == 0) return curve;
  ensure_sorted();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(samples_.size() - 1));
    curve.emplace_back(samples_[idx], frac);
  }
  return curve;
}

void DecayingValue::add(double t, double x) {
  value_ = value(t) + x;
  last_t_ = t;
  seen_ = true;
}

double DecayingValue::value(double t) const {
  if (!seen_) return 0.0;
  const double dt = t - last_t_;
  if (dt <= 0.0) return value_;
  return value_ * std::exp2(-dt / half_life_);
}

}  // namespace escra::sim
