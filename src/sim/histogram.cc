#include "sim/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace escra::sim {

Histogram::Histogram(std::int64_t max_value, int precision_bits)
    : precision_bits_(precision_bits),
      sub_bucket_bits_(precision_bits),
      max_value_(max_value) {
  if (max_value < 1) throw std::invalid_argument("Histogram: max_value < 1");
  if (precision_bits < 1 || precision_bits > 14) {
    throw std::invalid_argument("Histogram: precision_bits out of range");
  }
  // One linear "sub-bucket" region per power-of-two magnitude.
  const int magnitudes =
      std::bit_width(static_cast<std::uint64_t>(max_value)) + 1;
  buckets_.assign(static_cast<std::size_t>(magnitudes) << sub_bucket_bits_, 0);
}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  const auto v = static_cast<std::uint64_t>(value);
  const int mag = std::bit_width(v);  // v >= 1 so mag >= 1
  if (mag <= sub_bucket_bits_) {
    return static_cast<std::size_t>(v);
  }
  const int shift = mag - sub_bucket_bits_;
  const std::uint64_t sub = v >> shift;  // top precision bits, MSB set
  return (static_cast<std::size_t>(mag - sub_bucket_bits_) << sub_bucket_bits_) +
         static_cast<std::size_t>(sub);
}

std::int64_t Histogram::bucket_value(std::size_t index) const {
  const std::size_t region = index >> sub_bucket_bits_;
  const std::size_t sub = index & ((std::size_t{1} << sub_bucket_bits_) - 1);
  if (region == 0) return static_cast<std::int64_t>(sub);
  // Midpoint of the bucket range for low bias.
  const int shift = static_cast<int>(region);
  const std::uint64_t lo = static_cast<std::uint64_t>(sub) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return static_cast<std::int64_t>(lo + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  value = std::clamp<std::int64_t>(value, 1, max_value_);
  const std::size_t idx = bucket_index(value);
  buckets_[std::min(idx, buckets_.size() - 1)] += n;
  if (count_ == 0) {
    recorded_min_ = recorded_max_ = value;
  } else {
    recorded_min_ = std::min(recorded_min_, value);
    recorded_max_ = std::max(recorded_max_, value);
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

std::int64_t Histogram::min() const { return count_ ? recorded_min_ : 0; }
std::int64_t Histogram::max() const { return count_ ? recorded_max_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target && buckets_[i] > 0) {
      return std::clamp(bucket_value(i), recorded_min_, recorded_max_);
    }
  }
  return recorded_max_;
}

double Histogram::cdf_at(std::int64_t value) const {
  if (count_ == 0) return 0.0;
  const std::size_t limit = bucket_index(std::clamp<std::int64_t>(value, 1, max_value_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= std::min(limit, buckets_.size() - 1); ++i) {
    cum += buckets_[i];
  }
  return static_cast<double>(cum) / static_cast<double>(count_);
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() != buckets_.size() ||
      other.precision_bits_ != precision_bits_) {
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      recorded_min_ = other.recorded_min_;
      recorded_max_ = other.recorded_max_;
    } else {
      recorded_min_ = std::min(recorded_min_, other.recorded_min_);
      recorded_max_ = std::max(recorded_max_, other.recorded_max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  recorded_min_ = recorded_max_ = 0;
  sum_ = 0.0;
}

}  // namespace escra::sim
