// Discrete-event simulation engine.
//
// Every Escra substrate (CFS bandwidth controller, memory cgroups, the
// network, workload generators, control loops) is driven by one shared
// `Simulation`. Events fire in (time, insertion-order) order, which makes
// whole-cluster runs bit-for-bit reproducible for a given RNG seed.
//
// The engine is built for the traffic the control plane actually generates —
// dense near-future periodic timers (100 ms CFS periods, heartbeats) and
// short-lived retransmit timers that are almost always cancelled:
//
//   - A hierarchical timer wheel (4 levels x 256 slots, 1 us base
//     granularity, ~71 min span) gives O(1) schedule and O(1) true cancel:
//     cancelled events are unlinked immediately, never tombstoned.
//   - Timers beyond the wheel span overflow to an indexed binary heap whose
//     entries migrate into the wheel as the clock approaches them.
//   - Callbacks are `sim::Callback` (48-byte small-buffer optimization), and
//     event nodes live in an intrusive free-list pool, so the steady-state
//     hot path performs no heap allocation. Periodic events are re-armed in
//     place each firing instead of allocating a fresh node.
//   - Handles carry a generation tag, so a stale handle held after its event
//     fired (or was cancelled) can never cancel an unrelated event that
//     recycled the same node.
//
// Within one timestamp, events fire strictly in schedule order (seq), across
// wheel levels, the overflow heap, and any cancel/unlink churn — the
// ordering contract every determinism test in this tree depends on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace escra::sim {

// Handle used to cancel a scheduled event. Packs a node index and a
// generation tag: after the event fires or is cancelled, the node's
// generation advances, so this handle becomes inert even if the node is
// recycled for an unrelated event.
class EventHandle {
 public:
  EventHandle() = default;

  // True if this handle refers to a scheduled (possibly already fired) event.
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

// The simulation: a clock plus a hierarchical timer wheel of callbacks.
class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now). Returns a handle
  // that can be passed to `cancel`.
  EventHandle schedule_at(TimePoint at, Callback fn);

  // Schedules `fn` to run `delay` microseconds from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  // Schedules `fn` to run every `period`, first firing at `start`. The
  // callback may call `cancel` on the returned handle to stop the series.
  EventHandle schedule_every(TimePoint start, Duration period, Callback fn);

  // Coalesced scheduling for message deliveries: callbacks bound for the
  // same timestamp share one event node, so N same-tick deliveries cost one
  // wheel insertion and one firing. Appends preserve the global
  // (time, insertion-order) contract exactly: any plain `schedule_*` call
  // for the same timestamp seals the open batch, so a batch can only absorb
  // callbacks that would have been contiguous in the event order anyway.
  // Coalesced callbacks cannot be cancelled (message sends never are).
  void schedule_coalesced(TimePoint at, Callback fn);

  // Cancels a pending event (one-shot or periodic). O(1): the event is
  // unlinked and its node recycled immediately. Safe to call on invalid,
  // already-fired, or stale handles.
  void cancel(EventHandle handle);

  // Runs events until the queue drains or the clock passes `end`. Events
  // scheduled exactly at `end` run. Returns the number of events executed.
  std::size_t run_until(TimePoint end);

  // Runs every queued event. Only safe when nothing reschedules forever.
  std::size_t run_all();

  // Number of live (not cancelled) events currently scheduled. Coalesced
  // batches count once per member callback.
  std::size_t pending_events() const;

  // Total callbacks executed so far (coalesced batch members each count).
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Node;
  struct Batch;

  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;         // 256 slots per level
  static constexpr int kLevels = 4;                     // 1 us .. 2^32 us
  static constexpr int kBitmapWords = kSlots / 64;
  static constexpr TimePoint kSpan = TimePoint{1} << (kSlotBits * kLevels);

  struct SlotList {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  // --- node pool ---
  Node* acquire();
  void release(Node* n);
  Node* node_at(std::uint32_t index) const;
  static std::uint64_t handle_id(const Node* n);

  // --- wheel / heap plumbing ---
  void place(Node* n);                       // insert by n->at relative to now_
  void wheel_link(Node* n, int level, int slot);
  void wheel_unlink(Node* n);
  void cascade(int level, int slot);         // redistribute one slot downward
  void migrate_heap();                       // pull near-future heap entries in
  void heap_push(Node* n);
  void heap_remove(std::size_t pos);
  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);
  TimePoint next_cascade_time(int level) const;

  // Advances the clock to the next event <= limit and returns its node
  // (detached, ready to fire), or nullptr if none is due by `limit`.
  Node* pop_min(TimePoint limit);
  void take_slot(int slot);                  // level-0 slot -> ready list
  bool run_one(TimePoint end);

  // --- coalesced batches ---
  struct OpenBatch {
    TimePoint at = 0;
    Batch* batch = nullptr;
  };
  Batch* acquire_batch();
  void release_batch(Batch* b);
  void seal_batches_at(TimePoint at);
  void run_batch(Batch* b);
  EventHandle schedule_impl(TimePoint at, Duration period, Callback fn,
                            bool is_batch);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;

  // Node pool: stable addresses via fixed-size chunks, free list threaded
  // through the nodes themselves.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_head_ = nullptr;
  std::uint32_t node_count_ = 0;

  SlotList wheel_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kBitmapWords] = {};
  std::size_t wheel_count_ = 0;

  std::vector<Node*> heap_;  // overflow: (at, seq)-keyed indexed min-heap

  // Current-tick ready list: the due level-0 slot, sorted by seq.
  std::vector<Node*> ready_;
  std::size_t ready_pos_ = 0;

  std::vector<std::unique_ptr<Batch>> batch_pool_;
  std::vector<Batch*> free_batches_;
  std::vector<OpenBatch> open_batches_;
  // Batch members beyond the first (the wrapper node accounts for one), so
  // pending_events() can count coalesced callbacks individually.
  std::size_t coalesced_extra_ = 0;
};

}  // namespace escra::sim
