// Discrete-event simulation engine.
//
// Every Escra substrate (CFS bandwidth controller, memory cgroups, the
// network, workload generators, control loops) is driven by one shared
// `Simulation`. Events fire in (time, insertion-order) order, which makes
// whole-cluster runs bit-for-bit reproducible for a given RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace escra::sim {

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but its callback is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  // True if this handle refers to a scheduled (possibly already fired) event.
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

// The simulation: a clock plus a priority queue of callbacks.
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now). Returns a handle
  // that can be passed to `cancel`.
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  // Schedules `fn` to run `delay` microseconds from now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  // Schedules `fn` to run every `period`, first firing at `start`. The
  // callback may call `cancel` on the returned handle to stop the series.
  EventHandle schedule_every(TimePoint start, Duration period,
                             std::function<void()> fn);

  // Cancels a pending event (one-shot or periodic). Safe to call on invalid
  // or already-fired handles.
  void cancel(EventHandle handle);

  // Runs events until the queue drains or the clock passes `end`. Events
  // scheduled exactly at `end` run. Returns the number of events executed.
  std::size_t run_until(TimePoint end);

  // Runs every queued event. Only safe when nothing reschedules forever.
  std::size_t run_all();

  // Number of events currently queued (including cancelled ones not yet
  // popped).
  std::size_t pending_events() const { return queue_.size(); }

  // Total events executed so far.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
    std::uint64_t id = 0;
    Duration period = 0;  // > 0 for periodic events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool run_one(TimePoint end);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily on lookup
  bool cancelled_dirty_ = false;
};

}  // namespace escra::sim
