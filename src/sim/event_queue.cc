#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace escra::sim {

EventHandle Simulation::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  Event ev;
  ev.at = at;
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.fn = std::move(fn);
  EventHandle handle(ev.id);
  queue_.push(std::move(ev));
  return handle;
}

EventHandle Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_every(TimePoint start, Duration period,
                                       std::function<void()> fn) {
  if (period <= 0) throw std::invalid_argument("schedule_every: period <= 0");
  if (start < now_) throw std::invalid_argument("schedule_every: start in past");
  Event ev;
  ev.at = start;
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.period = period;
  ev.fn = std::move(fn);
  EventHandle handle(ev.id);
  queue_.push(std::move(ev));
  return handle;
}

void Simulation::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.push_back(handle.id_);
  cancelled_dirty_ = true;
}

bool Simulation::run_one(TimePoint end) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > end) return false;
    if (cancelled_dirty_) {
      std::sort(cancelled_.begin(), cancelled_.end());
      cancelled_dirty_ = false;
    }
    const bool is_cancelled =
        std::binary_search(cancelled_.begin(), cancelled_.end(), top.id);
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled) continue;
    assert(ev.at >= now_);
    now_ = ev.at;
    if (ev.period > 0) {
      // Re-arm before running so the callback can cancel its own series.
      Event next = ev;
      next.at = ev.at + ev.period;
      next.seq = next_seq_++;
      queue_.push(std::move(next));
    }
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulation::run_until(TimePoint end) {
  std::size_t n = 0;
  while (run_one(end)) ++n;
  if (now_ < end) now_ = end;
  return n;
}

std::size_t Simulation::run_all() {
  std::size_t n = 0;
  while (run_one(std::numeric_limits<TimePoint>::max())) ++n;
  return n;
}

}  // namespace escra::sim
