#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace escra::sim {

namespace {

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

// (at, seq) lexicographic order: the global firing order.
inline bool fires_before(TimePoint a_at, std::uint64_t a_seq, TimePoint b_at,
                         std::uint64_t b_seq) {
  return a_at != b_at ? a_at < b_at : a_seq < b_seq;
}

// First set bit at index >= `from` within a 256-bit map, or -1.
inline int scan_bits_from(const std::uint64_t* occ, int from) {
  int word = from >> 6;
  std::uint64_t w = occ[word] & (kAllOnes << (from & 63));
  for (;;) {
    if (w != 0) return (word << 6) + std::countr_zero(w);
    if (++word == 4) return -1;
    w = occ[word];
  }
}

inline bool any_bits(const std::uint64_t* occ) {
  return (occ[0] | occ[1] | occ[2] | occ[3]) != 0;
}

// Where a node currently lives. The two "parked" states keep a node alive
// while its own callback is still on the stack.
enum NodeWhere : std::uint8_t {
  kFree = 0,
  kWheel,
  kHeap,
  kReady,            // in ready_, due this tick
  kReadyCancelled,   // in ready_, cancelled before firing
  kExecuting,        // one-shot currently firing; released after it returns
  kParkedCancelled,  // periodic cancelled mid-firing; released after return
};

}  // namespace

struct Simulation::Node {
  TimePoint at = 0;
  std::uint64_t seq = 0;
  Duration period = 0;  // > 0 for periodic events
  std::uint32_t gen = 1;
  std::uint32_t index = 0;
  Node* prev = nullptr;
  Node* next = nullptr;
  std::int32_t heap_pos = -1;
  std::uint8_t where = kFree;
  std::uint8_t level = 0;
  std::uint8_t running = 0;   // callback currently on the stack
  std::uint8_t is_batch = 0;  // coalesced-delivery wrapper (not counted)
  std::uint16_t slot = 0;
  Callback fn;
};

struct Simulation::Batch {
  std::vector<Callback> members;
};

Simulation::Simulation() { ready_.reserve(16); }

Simulation::~Simulation() = default;

// --- node pool -------------------------------------------------------------

Simulation::Node* Simulation::acquire() {
  if (free_head_ == nullptr) {
    constexpr std::uint32_t kChunk = 256;
    chunks_.push_back(std::make_unique<Node[]>(kChunk));
    Node* arr = chunks_.back().get();
    for (std::uint32_t i = kChunk; i-- > 0;) {
      arr[i].index = node_count_ + i;
      arr[i].next = free_head_;
      free_head_ = &arr[i];
    }
    node_count_ += kChunk;
  }
  Node* n = free_head_;
  free_head_ = n->next;
  n->prev = n->next = nullptr;
  n->heap_pos = -1;
  n->running = 0;
  n->is_batch = 0;
  n->period = 0;
  return n;
}

void Simulation::release(Node* n) {
  n->fn.reset();
  if (++n->gen == 0) n->gen = 1;  // stale handles must never match again
  n->where = kFree;
  n->running = 0;
  n->period = 0;
  n->heap_pos = -1;
  n->prev = nullptr;
  n->next = free_head_;
  free_head_ = n;
}

Simulation::Node* Simulation::node_at(std::uint32_t index) const {
  return &chunks_[index >> 8][index & 255];
}

std::uint64_t Simulation::handle_id(const Node* n) {
  return (static_cast<std::uint64_t>(n->index + 1) << 32) | n->gen;
}

// --- wheel / heap plumbing -------------------------------------------------

void Simulation::wheel_link(Node* n, int level, int slot) {
  SlotList& s = wheel_[level][slot];
  n->prev = s.tail;
  n->next = nullptr;
  if (s.tail != nullptr) {
    s.tail->next = n;
  } else {
    s.head = n;
  }
  s.tail = n;
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  n->where = kWheel;
  n->level = static_cast<std::uint8_t>(level);
  n->slot = static_cast<std::uint16_t>(slot);
  ++wheel_count_;
}

void Simulation::wheel_unlink(Node* n) {
  SlotList& s = wheel_[n->level][n->slot];
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    s.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    s.tail = n->prev;
  }
  n->prev = n->next = nullptr;
  if (s.head == nullptr) {
    occupied_[n->level][n->slot >> 6] &=
        ~(std::uint64_t{1} << (n->slot & 63));
  }
  --wheel_count_;
}

void Simulation::place(Node* n) {
  const TimePoint delta = n->at - now_;
  assert(delta >= 0);
  if (delta >= kSpan) {
    heap_push(n);
    return;
  }
  int level = 0;
  if (delta >= (TimePoint{1} << (3 * kSlotBits))) {
    level = 3;
  } else if (delta >= (TimePoint{1} << (2 * kSlotBits))) {
    level = 2;
  } else if (delta >= (TimePoint{1} << kSlotBits)) {
    level = 1;
  }
  const int slot =
      static_cast<int>((n->at >> (kSlotBits * level)) & (kSlots - 1));
  wheel_link(n, level, slot);
}

void Simulation::cascade(int level, int slot) {
  SlotList& s = wheel_[level][slot];
  Node* n = s.head;
  if (n == nullptr) return;
  s.head = s.tail = nullptr;
  occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (n != nullptr) {
    Node* next = n->next;
    n->prev = n->next = nullptr;
    --wheel_count_;
    place(n);  // always lands on a strictly lower level (or level 0)
    n = next;
  }
}

void Simulation::heap_push(Node* n) {
  n->where = kHeap;
  n->heap_pos = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(n);
  heap_sift_up(heap_.size() - 1);
}

void Simulation::heap_sift_up(std::size_t pos) {
  Node* n = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    Node* p = heap_[parent];
    if (fires_before(p->at, p->seq, n->at, n->seq)) break;
    heap_[pos] = p;
    p->heap_pos = static_cast<std::int32_t>(pos);
    pos = parent;
  }
  heap_[pos] = n;
  n->heap_pos = static_cast<std::int32_t>(pos);
}

void Simulation::heap_sift_down(std::size_t pos) {
  const std::size_t size = heap_.size();
  Node* n = heap_[pos];
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        fires_before(heap_[child + 1]->at, heap_[child + 1]->seq,
                     heap_[child]->at, heap_[child]->seq)) {
      ++child;
    }
    if (fires_before(n->at, n->seq, heap_[child]->at, heap_[child]->seq))
      break;
    heap_[pos] = heap_[child];
    heap_[pos]->heap_pos = static_cast<std::int32_t>(pos);
    pos = child;
  }
  heap_[pos] = n;
  n->heap_pos = static_cast<std::int32_t>(pos);
}

void Simulation::heap_remove(std::size_t pos) {
  Node* last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    last->heap_pos = static_cast<std::int32_t>(pos);
    heap_sift_down(pos);
    heap_sift_up(last->heap_pos);
  }
}

void Simulation::migrate_heap() {
  // Invariant: every wheel entry is within [now, now + span), every heap
  // entry at or beyond now + span. Pull entries in as the clock approaches.
  while (!heap_.empty() && heap_.front()->at - now_ < kSpan) {
    Node* n = heap_.front();
    heap_remove(0);
    n->heap_pos = -1;
    place(n);
  }
}

TimePoint Simulation::next_cascade_time(int level) const {
  const std::uint64_t* occ = occupied_[level];
  if (!any_bits(occ)) return std::numeric_limits<TimePoint>::max();
  const TimePoint win = now_ >> (kSlotBits * level);
  const int d = static_cast<int>(win & (kSlots - 1));
  // Circular search: the slot matching the current window digit was already
  // cascaded when its window began, so it counts as a full wrap away.
  int steps;
  int s = d + 1 < kSlots ? scan_bits_from(occ, d + 1) : -1;
  if (s >= 0) {
    steps = s - d;
  } else {
    s = scan_bits_from(occ, 0);
    steps = kSlots - d + s;
  }
  return (win + steps) << (kSlotBits * level);
}

void Simulation::take_slot(int slot) {
  SlotList& s = wheel_[0][slot];
  Node* n = s.head;
  s.head = s.tail = nullptr;
  occupied_[0][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  ready_.clear();
  ready_pos_ = 0;
  while (n != nullptr) {
    Node* next = n->next;
    n->prev = n->next = nullptr;
    --wheel_count_;
    n->where = kReady;
    ready_.push_back(n);
    n = next;
  }
  if (ready_.size() > 1) {
    // Same timestamp (level-0 slots are 1 us wide); cascades may have
    // interleaved arrival order, so restore global insertion order here.
    std::sort(ready_.begin(), ready_.end(),
              [](const Node* a, const Node* b) { return a->seq < b->seq; });
  }
}

Simulation::Node* Simulation::pop_min(TimePoint limit) {
  for (;;) {
    while (ready_pos_ < ready_.size()) {
      Node* n = ready_[ready_pos_];
      if (n->where == kReadyCancelled) {
        ++ready_pos_;
        release(n);
        continue;
      }
      if (n->at > limit) return nullptr;
      ++ready_pos_;
      return n;
    }
    if (!ready_.empty()) {
      ready_.clear();
      ready_pos_ = 0;
    }
    migrate_heap();
    // Level 0: an occupied slot in the current 256-us window fires next —
    // nothing reachable by cascade can be earlier.
    const int i0 = static_cast<int>(now_ & (kSlots - 1));
    const int j = scan_bits_from(occupied_[0], i0);
    if (j >= 0) {
      const TimePoint t = (now_ & ~static_cast<TimePoint>(kSlots - 1)) + j;
      if (t > limit) return nullptr;
      now_ = t;
      take_slot(j);
      continue;
    }
    // Window exhausted: advance to the earliest boundary that can surface
    // level-0 work — wrapped level-0 entries or an occupied higher slot.
    TimePoint b = std::numeric_limits<TimePoint>::max();
    if (any_bits(occupied_[0])) b = (now_ | (kSlots - 1)) + 1;
    for (int l = 1; l < kLevels; ++l) b = std::min(b, next_cascade_time(l));
    if (b == std::numeric_limits<TimePoint>::max()) {
      // Wheel empty. Jump toward the overflow heap; with nothing to cascade
      // the cursor can move freely.
      if (heap_.empty()) return nullptr;
      const TimePoint at_h = heap_.front()->at;
      if (at_h > limit) return nullptr;
      now_ = at_h - kSpan + 1;
      continue;
    }
    if (b > limit) return nullptr;
    now_ = b;
    for (int l = kLevels - 1; l >= 1; --l) {
      if ((b & ((TimePoint{1} << (kSlotBits * l)) - 1)) == 0) {
        cascade(l, static_cast<int>((b >> (kSlotBits * l)) & (kSlots - 1)));
      }
    }
  }
}

// --- scheduling ------------------------------------------------------------

EventHandle Simulation::schedule_impl(TimePoint at, Duration period,
                                      Callback fn, bool is_batch) {
  // A plain event landing on a timestamp with an open coalesced batch seals
  // it: later coalesced sends must fire after this event, so they need a
  // fresh batch with a later sequence number.
  if (!is_batch && !open_batches_.empty()) seal_batches_at(at);
  Node* n = acquire();
  n->at = at;
  n->seq = next_seq_++;
  n->period = period;
  n->is_batch = is_batch ? 1 : 0;
  n->fn = std::move(fn);
  place(n);
  return EventHandle(handle_id(n));
}

EventHandle Simulation::schedule_at(TimePoint at, Callback fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  return schedule_impl(at, 0, std::move(fn), /*is_batch=*/false);
}

EventHandle Simulation::schedule_after(Duration delay, Callback fn) {
  if (delay < 0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_impl(now_ + delay, 0, std::move(fn), /*is_batch=*/false);
}

EventHandle Simulation::schedule_every(TimePoint start, Duration period,
                                       Callback fn) {
  if (period <= 0) throw std::invalid_argument("schedule_every: period <= 0");
  if (start < now_) throw std::invalid_argument("schedule_every: start in past");
  return schedule_impl(start, period, std::move(fn), /*is_batch=*/false);
}

void Simulation::schedule_coalesced(TimePoint at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("schedule_coalesced: time in the past");
  }
  for (OpenBatch& ob : open_batches_) {
    if (ob.at == at) {
      ob.batch->members.push_back(std::move(fn));
      ++coalesced_extra_;
      return;
    }
  }
  Batch* b = acquire_batch();
  b->members.push_back(std::move(fn));
  schedule_impl(at, 0, Callback([this, b] { run_batch(b); }),
                /*is_batch=*/true);
  open_batches_.push_back(OpenBatch{at, b});
}

void Simulation::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  const std::uint32_t index =
      static_cast<std::uint32_t>(handle.id_ >> 32) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(handle.id_);
  if (index >= node_count_) return;
  Node* n = node_at(index);
  if (n->gen != gen) return;  // stale handle: the node was recycled
  switch (n->where) {
    case kWheel:
      wheel_unlink(n);
      if (n->running) {
        n->where = kParkedCancelled;  // released once its callback returns
      } else {
        release(n);
      }
      break;
    case kHeap:
      heap_remove(static_cast<std::size_t>(n->heap_pos));
      n->heap_pos = -1;
      if (n->running) {
        n->where = kParkedCancelled;
      } else {
        release(n);
      }
      break;
    case kReady:
      n->where = kReadyCancelled;  // released when the tick drains
      break;
    default:
      // kExecuting / kParkedCancelled / kReadyCancelled: firing or already
      // cancelled — nothing to do. kFree is unreachable (gen mismatch).
      break;
  }
}

// --- coalesced batches -----------------------------------------------------

Simulation::Batch* Simulation::acquire_batch() {
  if (free_batches_.empty()) {
    batch_pool_.push_back(std::make_unique<Batch>());
    return batch_pool_.back().get();
  }
  Batch* b = free_batches_.back();
  free_batches_.pop_back();
  return b;
}

void Simulation::release_batch(Batch* b) {
  b->members.clear();  // keeps capacity: steady state allocates nothing
  free_batches_.push_back(b);
}

void Simulation::seal_batches_at(TimePoint at) {
  for (std::size_t i = 0; i < open_batches_.size(); ++i) {
    if (open_batches_[i].at == at) {
      open_batches_[i] = open_batches_.back();
      open_batches_.pop_back();
      return;  // at most one open batch per timestamp
    }
  }
}

void Simulation::run_batch(Batch* b) {
  // The firing batch can no longer absorb appends.
  for (std::size_t i = 0; i < open_batches_.size(); ++i) {
    if (open_batches_[i].batch == b) {
      open_batches_[i] = open_batches_.back();
      open_batches_.pop_back();
      break;
    }
  }
  coalesced_extra_ -= b->members.size() - 1;
  for (Callback& cb : b->members) {
    ++executed_;
    cb();
  }
  release_batch(b);
}

// --- execution -------------------------------------------------------------

bool Simulation::run_one(TimePoint end) {
  Node* n = pop_min(end);
  if (n == nullptr) return false;
  assert(n->at >= now_);
  now_ = n->at;
  if (n->period > 0) {
    // Re-arm in place (same node, same handle, fresh seq) before running so
    // the callback can cancel its own series.
    n->at += n->period;
    n->seq = next_seq_++;
    if (!open_batches_.empty()) seal_batches_at(n->at);
    place(n);
    n->running = 1;
    ++executed_;
    n->fn();
    if (n->where == kParkedCancelled) {
      release(n);  // cancelled mid-firing: now safe to recycle
    } else {
      n->running = 0;
    }
    return true;
  }
  n->where = kExecuting;
  if (!n->is_batch) ++executed_;  // batches count per member in run_batch
  n->fn();
  release(n);
  return true;
}

std::size_t Simulation::run_until(TimePoint end) {
  std::size_t n = 0;
  while (run_one(end)) ++n;
  if (now_ < end) now_ = end;
  return n;
}

std::size_t Simulation::run_all() {
  std::size_t n = 0;
  while (run_one(std::numeric_limits<TimePoint>::max())) ++n;
  return n;
}

std::size_t Simulation::pending_events() const {
  std::size_t ready_live = 0;
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i) {
    if (ready_[i]->where == kReady) ++ready_live;
  }
  return wheel_count_ + heap_.size() + ready_live + coalesced_extra_;
}

}  // namespace escra::sim
