// Log-bucketed histogram for latency recording (an HdrHistogram-style
// structure, standing in for the wrk2 latency recorder the paper uses).
//
// Values are bucketed with bounded relative error, so recording millions of
// request latencies costs O(1) memory while high percentiles (99.9%) stay
// accurate to the configured precision.
#pragma once

#include <cstdint>
#include <vector>

namespace escra::sim {

class Histogram {
 public:
  // Records values in [1, max_value] with <= 2^-precision_bits relative
  // error. Values outside the range are clamped.
  explicit Histogram(std::int64_t max_value = 3'600'000'000LL,
                     int precision_bits = 7);

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;

  // Percentile in [0, 100]. Returns the representative value of the bucket
  // containing that rank; 0 when empty.
  std::int64_t percentile(double p) const;

  // Fraction of recorded values <= value.
  double cdf_at(std::int64_t value) const;

  // Merges another histogram with identical geometry.
  void merge(const Histogram& other);

  void reset();

 private:
  std::size_t bucket_index(std::int64_t value) const;
  std::int64_t bucket_value(std::size_t index) const;

  int precision_bits_;
  int sub_bucket_bits_;
  std::int64_t max_value_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t recorded_min_ = 0;
  std::int64_t recorded_max_ = 0;
  double sum_ = 0.0;
};

}  // namespace escra::sim
