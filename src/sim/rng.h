// Deterministic random-number utilities.
//
// Every stochastic element of an experiment (inter-arrival times, per-request
// CPU-cost jitter, trace noise) draws from one seeded `Rng` so that a run is
// reproducible end-to-end.
#pragma once

#include <cstdint>
#include <random>

namespace escra::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Exponential with the given rate (events per unit). Mean is 1/rate.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Derives an independent child generator; used to give each container or
  // generator its own stream so adding one component does not perturb others.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace escra::sim
