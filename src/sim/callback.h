// Small-buffer-optimized callback for the event engine.
//
// `sim::Callback` replaces `std::function<void()>` on the simulation hot
// path. Closures whose captures fit in 48 bytes (every control-loop tick,
// telemetry delivery, and retransmit timer in this tree) are stored inline
// in the event node — scheduling an event allocates nothing. Larger
// callables fall back to a single heap allocation, so correctness never
// depends on capture size.
//
// Move-only by design: an event fires once, so the engine never needs to
// copy a callback, and move-only storage admits captures like
// `std::unique_ptr` that `std::function` rejects.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace escra::sim {

class Callback {
 public:
  // Captures up to this size (and alignment <= max_align_t) stay inline.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); }};

  template <typename Fn>
  static constexpr VTable kHeapVTable{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); }};

  void move_from(Callback& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(buf_, other.buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace escra::sim
