// Simulated-time primitives shared by every Escra module.
//
// All simulated timestamps and durations are integer microseconds. Integer
// time keeps the discrete-event engine deterministic (no FP drift in event
// ordering) while being fine enough to express the sub-millisecond control
// actions the paper reports (limit application "on the order of 100s of
// microseconds", Section III).
#pragma once

#include <cstdint>

namespace escra::sim {

// A point in simulated time, in microseconds since simulation start.
using TimePoint = std::int64_t;

// A span of simulated time, in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;

// Convenience literal-style constructors. `milliseconds(2.5)` is allowed and
// truncates toward zero after scaling.
constexpr Duration microseconds(std::int64_t us) { return us; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * kMillisecond; }
constexpr Duration seconds(std::int64_t s) { return s * kSecond; }
constexpr Duration milliseconds_f(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration seconds_f(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace escra::sim
