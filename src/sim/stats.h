// Statistics helpers used across the allocator, baselines, and the
// experiment harness: running moments, fixed-size sliding windows (the
// allocator's "windowed statistics" from Section IV-D1), sample sets with
// percentile/CDF queries, and exponentially-decaying values (Autopilot).
#pragma once

#include <cstddef>
#include <vector>

namespace escra::sim {

// Welford running mean/variance.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-capacity sliding window over the last `n` samples with O(1) mean.
// This is the allocator's windowed statistic: one instance tracks throttle
// flags (0/1), another tracks unused runtime, over the last n CFS periods.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  // Mean over the samples currently in the window; 0 when empty.
  double mean() const;
  // Sum over the samples currently in the window.
  double sum() const { return sum_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool full() const { return size_ == buf_.size(); }
  void reset();

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;  // next slot to overwrite
  std::size_t size_ = 0;
  double sum_ = 0.0;
};

// Collects raw samples and answers percentile / CDF queries. Used for slack
// CDFs (Figures 5 and 6) and latency distributions.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Percentile in [0, 100] using linear interpolation between order
  // statistics. Returns 0 for an empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const;
  double max() const;

  // Evaluates the empirical CDF at `x`: fraction of samples <= x.
  double cdf_at(double x) const;

  // Returns (value, cumulative-fraction) pairs at `points` evenly spaced
  // quantiles, suitable for printing a CDF curve.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Exponentially-decaying weight, the building block of Autopilot's
// moving-window recommenders: weight of a sample aged `dt` is 2^(-dt/half_life).
class DecayingValue {
 public:
  explicit DecayingValue(double half_life) : half_life_(half_life) {}

  // Adds `x` observed at time `t` (monotonically nondecreasing).
  void add(double t, double x);
  // Decayed value as of time `t`.
  double value(double t) const;
  double half_life() const { return half_life_; }

 private:
  double half_life_;
  double value_ = 0.0;
  double last_t_ = 0.0;
  bool seen_ = false;
};

}  // namespace escra::sim
