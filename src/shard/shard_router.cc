#include "shard/shard_router.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace escra::shard {

std::uint64_t ShardRouter::hash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  // Raw FNV-1a mixes into the low bits only; ring placement sorts on the
  // *high* bits, where short, similar keys cluster badly enough that whole
  // shards get zero arc coverage. Murmur3's fmix64 finalizer fixes the
  // avalanche.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

ShardRouter::ShardRouter(int shards, int virtual_nodes)
    : shards_(shards), virtual_nodes_(virtual_nodes) {
  if (shards < 1) throw std::invalid_argument("ShardRouter: shards < 1");
  if (virtual_nodes < 1)
    throw std::invalid_argument("ShardRouter: virtual_nodes < 1");
  ring_.reserve(static_cast<std::size_t>(shards) * virtual_nodes);
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < virtual_nodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring_.emplace_back(hash(point), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardRouter::shard_for_app(std::string_view app) const {
  const std::uint64_t h = hash(app);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

}  // namespace escra::shard
