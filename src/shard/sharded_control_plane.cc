#include "shard/sharded_control_plane.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/messages.h"
#include "sweep/runner.h"

namespace escra::shard {

namespace {

// Smallest transfer worth shipping: whole bytes for memory, a nano-core /
// nano-bps for the continuous resources (below that the pool math is noise).
double min_transfer(int res) { return res == 1 ? 1.0 : 1e-9; }

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, sizeof v);
  return v;
}

}  // namespace

ShardedControlPlane::ShardedControlPlane(sim::Simulation& sim,
                                         net::Network& net,
                                         cluster::Cluster& cluster,
                                         double global_cpu_cores,
                                         memcg::Bytes global_mem,
                                         ShardPlaneConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      config_(config),
      router_(config.shards, config.virtual_nodes) {
  if (config_.shards < 1)
    throw std::invalid_argument("ShardedControlPlane: shards < 1");
  const int n = config_.shards;
  const double cpu_slice = global_cpu_cores / n;
  const memcg::Bytes mem_slice = global_mem / n;
  const memcg::Bytes mem_remainder = global_mem % n;
  shards_.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    // Shard 0 absorbs the integer remainder, so the memory slices sum to
    // the global pool exactly.
    const memcg::Bytes mem = mem_slice + (s == 0 ? mem_remainder : 0);
    shards_[s].escra = std::make_unique<core::EscraSystem>(
        sim_, net_, cluster_, cpu_slice, mem, config_.escra);
    // RT admissions debit the shard's own base slice, never borrowed pool:
    // a loan is recallable, a reservation is not.
    shards_[s].escra->controller().set_rt_capacity(cpu_slice);
    shards_[s].heard.resize(static_cast<std::size_t>(n));
    cluster_cpu_limit_ += cpu_slice;
    cluster_mem_limit_ += mem;
  }
}

ShardedControlPlane::~ShardedControlPlane() {
  if (started_) stop();
}

std::vector<cluster::Container*> ShardedControlPlane::deploy(
    const core::AppSpec& spec) {
  const int s = router_.shard_for_app(spec.name);
  core::EscraSystem& escra = *shards_[s].escra;
  std::vector<cluster::Container*> out;
  if (escra.controller().registered_count() == 0) {
    // First application on this shard: exact Eq. 1-2 over the slice, so a
    // one-shard plane is indistinguishable from the bare controller.
    out = escra.deploy(spec);
  } else {
    // Later applications join like serverless pods: creation-time defaults,
    // then the late-join registration path (grant clamped to whatever the
    // slice still holds — possibly zero until earlier apps shed slack).
    out.reserve(spec.containers.size());
    for (const cluster::ContainerSpec& cs : spec.containers) {
      cluster::Container& c = cluster_.create_container(
          cs, config_.escra.late_join_cores, config_.escra.late_join_mem);
      escra.adopt(c);
      out.push_back(&c);
    }
  }
  for (cluster::Container* c : out) owner_[c->id()] = s;
  return out;
}

void ShardedControlPlane::manage(
    const std::string& app,
    const std::vector<cluster::Container*>& containers) {
  const int s = router_.shard_for_app(app);
  core::EscraSystem& escra = *shards_[s].escra;
  if (escra.controller().registered_count() == 0) {
    escra.manage(containers);
  } else {
    for (cluster::Container* c : containers) escra.adopt(*c);
  }
  for (cluster::Container* c : containers) owner_[c->id()] = s;
}

void ShardedControlPlane::start() {
  if (started_) return;
  started_ = true;
  for (auto& state : shards_) state.escra->start();
  if (shard_count() > 1) {
    advert_loop_ = sim_.schedule_every(
        sim_.now() + config_.advertise_interval, config_.advertise_interval,
        [this] { advertise_tick(); });
  }
}

void ShardedControlPlane::stop() {
  if (!started_) return;
  started_ = false;
  sim_.cancel(advert_loop_);
  for (auto& state : shards_) {
    for (auto& p : state.pending) sim_.cancel(p.timer);
    if (state.ha) state.ha->stop();
    state.escra->stop();
  }
}

void ShardedControlPlane::attach_observer(int s, obs::Observer& observer) {
  shards_.at(s).observer = &observer;
  shards_[s].escra->attach_observer(observer);
}

void ShardedControlPlane::export_merged_trace(std::ostream& out) const {
  // Shards without an observer contribute an empty buffer, so buffer index
  // == shard index and the merged events' shard stamps stay truthful.
  static const obs::TraceBuffer kEmpty{1};
  std::vector<const obs::TraceBuffer*> buffers;
  buffers.reserve(shards_.size());
  for (const auto& state : shards_)
    buffers.push_back(state.observer ? &state.observer->trace() : &kEmpty);
  obs::export_merged_jsonl(buffers, out);
}

void ShardedControlPlane::enable_ha(int standbys, ha::HaConfig base) {
  if (!started_)
    throw std::logic_error("ShardedControlPlane::enable_ha before start()");
  for (int s = 0; s < shard_count(); ++s) {
    ha::HaConfig config = base;
    config.standbys = standbys;
    config.endpoint_base = s * standbys;
    shards_[s].ha = std::make_unique<ha::HaControlPlane>(*shards_[s].escra,
                                                         net_, config);
    shards_[s].ha->start();
  }
  ha_enabled_ = true;
}

ha::HaControlPlane& ShardedControlPlane::ha(int s) {
  auto& plane = shards_.at(s).ha;
  if (!plane) throw std::logic_error("ShardedControlPlane: HA not enabled");
  return *plane;
}

int ShardedControlPlane::shard_of_container(cluster::ContainerId id) const {
  const auto it = owner_.find(id);
  return it == owner_.end() ? -1 : it->second;
}

// --- pool slice accessors -------------------------------------------------

double ShardedControlPlane::limit_of(int s, int res) const {
  core::DistributedContainer& app = shards_[s].escra->app();
  switch (res) {
    case kResCpu: return app.cpu_limit();
    case kResMem: return static_cast<double>(app.mem_limit());
    default: return app.bw_limit();
  }
}

double ShardedControlPlane::unalloc_of(int s, int res) const {
  core::DistributedContainer& app = shards_[s].escra->app();
  switch (res) {
    case kResCpu: return app.cpu_unallocated();
    case kResMem: return static_cast<double>(app.mem_unallocated());
    default: return app.bw_unallocated();
  }
}

void ShardedControlPlane::resize_pool(int s, int res, double new_limit,
                                      std::uint64_t cause) {
  core::DistributedContainer& app = shards_[s].escra->app();
  const double old_limit = limit_of(s, res);
  switch (res) {
    case kResCpu: app.set_cpu_limit(new_limit); break;
    case kResMem: app.set_mem_limit(std::llround(new_limit)); break;
    default: app.set_bw_limit(new_limit); break;
  }
  ++pool_resizes_;
  bump(s, &obs::Observer::Handles::shard_pool_resizes);
  record_event(s, obs::EventKind::kShardPoolResize, old_limit, new_limit, res,
               cause);
}

double ShardedControlPlane::lendable_surplus(int s, int res) const {
  double surplus =
      unalloc_of(s, res) - config_.reserve_frac * limit_of(s, res);
  if (res == kResCpu) {
    // Admitted RT floors are promised capacity even while the unallocated
    // figure still covers them (a floor not yet drawn is still owed):
    // lending it out would let a later raise_to_rt_floor find the pool dry.
    surplus -= shards_[s].escra->controller().rt_reserved_cores();
  }
  if (surplus <= 0.0) return 0.0;
  return res == kResMem ? std::floor(surplus) : surplus;
}

// --- advertise / borrow / return tick -------------------------------------

void ShardedControlPlane::advertise_tick() {
  // Fixed shard iteration order: the tick's decision sequence (and hence
  // the whole borrow event stream) depends only on the sim clock and the
  // shard states, never on container-map iteration or thread scheduling.
  for (int s = 0; s < shard_count(); ++s) {
    if (crashed(s)) continue;  // a dead leader neither lends nor borrows
    broadcast_adverts(s);
    maybe_return(s);
    maybe_borrow(s);
  }
}

void ShardedControlPlane::broadcast_adverts(int s) {
  Advert advert;
  advert.heard = true;
  for (int res = 0; res < kResCount; ++res)
    advert.surplus[res] = lendable_surplus(s, res);
  ++adverts_sent_;
  bump(s, &obs::Observer::Handles::shard_adverts);
  record_event(s, obs::EventKind::kShardAdvertise, advert.surplus[kResCpu],
               advert.surplus[kResMem],
               static_cast<std::int64_t>(advert.surplus[kResBw]));
  for (int peer = 0; peer < shard_count(); ++peer) {
    if (peer == s) continue;
    // Fire-and-forget datagram: a lost advert just delays borrowing one
    // tick, so it rides the droppable leg of kShardControl.
    net_.send_to(net::Channel::kShardControl, net::shard_endpoint(s),
                 net::shard_endpoint(peer), core::kShardAdvertWireBytes,
                 [this, s, peer, advert] {
                   if (!crashed(peer)) shards_[peer].heard[s] = advert;
                 });
  }
}

void ShardedControlPlane::maybe_return(int s) {
  ShardState& state = shards_[s];
  for (int res = 0; res < kResCount; ++res) {
    if (state.pending[res].active) continue;
    // Largest outstanding debt first; ties go to the lowest lender id so
    // the repayment order is deterministic.
    int lender = -1;
    double owed = 0.0;
    for (const auto& [key, amount] : state.owed) {
      if (key.second != res || amount < min_transfer(res)) continue;
      if (amount > owed) {
        owed = amount;
        lender = key.first;
      }
    }
    if (lender < 0) continue;
    const double limit = limit_of(s, res);
    if (unalloc_of(s, res) <= config_.return_frac * limit) continue;
    double amount = std::min(owed, lendable_surplus(s, res));
    if (res == kResMem) amount = std::floor(amount);
    if (amount < min_transfer(res)) continue;

    const std::uint64_t seq = ++state.next_seq[lender];
    auto owed_it = state.owed.find({lender, res});
    owed_it->second -= amount;
    if (owed_it->second < min_transfer(res)) state.owed.erase(owed_it);

    ++borrows_returned_;
    bump(s, &obs::Observer::Handles::shard_borrow_returns);
    const obs::EventId ev =
        record_event(s, obs::EventKind::kBorrowReturn, res, amount,
                     pack_detail(lender, seq));
    // Shrink-before-raise: the capacity leaves this shard's slice the
    // instant the notice ships, so the conservation sum never double
    // counts it while the notice (or its retransmits) are in flight.
    resize_pool(s, res, limit - amount, ev);
    inflight_[res] += amount;

    Pending& p = state.pending[res];
    p.active = true;
    p.is_return = true;
    p.peer = lender;
    p.seq = seq;
    p.amount = amount;
    p.backoff = config_.borrow_retry_timeout;
    send_return(s, res);
    arm_retransmit(s, res);
  }
}

void ShardedControlPlane::maybe_borrow(int s) {
  ShardState& state = shards_[s];
  for (int res = 0; res < kResCount; ++res) {
    if (state.pending[res].active) continue;
    const double limit = limit_of(s, res);
    if (limit <= 0.0) continue;  // resource not armed on this shard
    const double unalloc = unalloc_of(s, res);
    if (unalloc >= config_.low_frac * limit) continue;
    double want = config_.target_frac * limit - unalloc;
    if (res == kResMem) want = std::ceil(want);
    if (want < min_transfer(res)) continue;
    // Best advertiser: highest advertised surplus, ties to the lowest
    // shard id. Currently-dead peers are skipped (their adverts are stale
    // and the request leg would only burn retransmits).
    int peer = -1;
    double best = 0.0;
    for (int candidate = 0; candidate < shard_count(); ++candidate) {
      if (candidate == s || crashed(candidate)) continue;
      const Advert& advert = state.heard[candidate];
      if (!advert.heard) continue;
      if (advert.surplus[res] > best) {
        best = advert.surplus[res];
        peer = candidate;
      }
    }
    if (peer < 0 || best < min_transfer(res)) continue;

    const std::uint64_t seq = ++state.next_seq[peer];
    ++borrows_requested_;
    bump(s, &obs::Observer::Handles::shard_borrow_requests);
    record_event(s, obs::EventKind::kBorrowRequest, res, want,
                 pack_detail(peer, seq));
    Pending& p = state.pending[res];
    p.active = true;
    p.is_return = false;
    p.peer = peer;
    p.seq = seq;
    p.amount = want;
    p.backoff = config_.borrow_retry_timeout;
    send_borrow(s, res);
    arm_retransmit(s, res);
  }
}

void ShardedControlPlane::send_borrow(int s, int res) {
  const Pending& p = shards_[s].pending[res];
  const int peer = p.peer;
  const std::uint64_t seq = p.seq;
  const double want = p.amount;
  net_.rpc_to(
      net::shard_endpoint(s), net::shard_endpoint(peer),
      core::kBorrowRequestRpcBytes, core::kBorrowGrantRespBytes,
      // Request leg, runs at the lender. Returns false when the lender's
      // seat is down (no process to answer); duplicates of the same
      // sequence re-read the cached grant, never shrink the pool twice.
      [this, s, peer, res, seq, want]() -> bool {
        if (crashed(peer)) return false;
        GrantCache& cache = shards_[peer].grant_cache[{s, res}];
        if (seq > cache.seq) {
          // Fresh request: grant against the *current* surplus (the
          // advert the borrower acted on may be a tick stale).
          const double limit = limit_of(peer, res);
          double granted = std::min(want, lendable_surplus(peer, res));
          if (res == kResMem) granted = std::floor(granted);
          if (granted < min_transfer(res)) granted = 0.0;
          cache.seq = seq;
          cache.granted = granted;
          if (granted > 0.0) {
            ++borrows_granted_;
            bump(peer, &obs::Observer::Handles::shard_borrow_grants);
            const obs::EventId ev =
                record_event(peer, obs::EventKind::kBorrowGrant, res, granted,
                             pack_detail(s, seq));
            resize_pool(peer, res, limit - granted, ev);
            inflight_[res] += granted;
          }
        }
        return true;
      },
      // Response leg, runs back at the borrower: apply the grant once.
      [this, s, res, seq] {
        Pending& p = shards_[s].pending[res];
        if (!p.active || p.is_return || p.seq != seq) return;  // stale/dup
        if (crashed(s)) return;  // hold: a retransmit re-asks the cache
        const int peer = p.peer;
        const auto it = shards_[peer].grant_cache.find({s, res});
        if (it == shards_[peer].grant_cache.end() || it->second.seq != seq)
          return;
        sim_.cancel(p.timer);
        p = Pending{};
        const double granted = it->second.granted;
        if (granted > 0.0) {
          resize_pool(s, res, limit_of(s, res) + granted, 0);
          inflight_[res] -= granted;
          shards_[s].owed[{peer, res}] += granted;
        }
      });
}

void ShardedControlPlane::send_return(int s, int res) {
  const Pending& p = shards_[s].pending[res];
  const int peer = p.peer;
  const std::uint64_t seq = p.seq;
  const double amount = p.amount;
  net_.rpc_to(
      net::shard_endpoint(s), net::shard_endpoint(peer),
      core::kBorrowReturnRpcBytes, core::kBorrowReturnAckBytes,
      // Return notice at the receiving lender: applied exactly once per
      // sequence, duplicates just re-ack.
      [this, s, peer, res, seq, amount]() -> bool {
        if (crashed(peer)) return false;
        std::uint64_t& applied = shards_[peer].return_applied[{s, res}];
        if (seq > applied) {
          applied = seq;
          resize_pool(peer, res, limit_of(peer, res) + amount, 0);
          inflight_[res] -= amount;
        }
        return true;
      },
      // Ack back at the returner: close the op.
      [this, s, res, seq] {
        Pending& p = shards_[s].pending[res];
        if (p.active && p.is_return && p.seq == seq) {
          sim_.cancel(p.timer);
          p = Pending{};
        }
      });
}

void ShardedControlPlane::arm_retransmit(int s, int res) {
  Pending& p = shards_[s].pending[res];
  p.timer = sim_.schedule_after(
      p.backoff, [this, s, res, seq = p.seq] {
        on_retransmit_timer(s, res, seq);
      });
}

void ShardedControlPlane::on_retransmit_timer(int s, int res,
                                              std::uint64_t seq) {
  Pending& p = shards_[s].pending[res];
  if (!p.active || p.seq != seq) return;  // op completed meanwhile
  p.backoff = std::min(p.backoff * 2, config_.borrow_backoff_max);
  if (!crashed(s)) {
    // A crashed originator can't transmit; keep the timer alive so the op
    // resumes (idempotently, against the receiver caches) after restart.
    ++borrow_retransmits_;
    bump(s, &obs::Observer::Handles::shard_borrow_retransmits);
    if (p.is_return)
      send_return(s, res);
    else
      send_borrow(s, res);
  }
  arm_retransmit(s, res);
}

// --- parallel sweep --------------------------------------------------------

std::uint64_t ShardedControlPlane::sweep_parallel(
    const std::vector<std::vector<core::CpuStatsMsg>>& by_shard, int jobs) {
  if (by_shard.size() != shards_.size())
    throw std::invalid_argument(
        "ShardedControlPlane::sweep_parallel: batch count != shard count");
  struct Decision {
    cfs::CgroupId cgroup = 0;
    double before = 0.0;
    double after = 0.0;
    sim::TimePoint fire = 0;
  };
  // Phase 1: every shard's allocator pass on a worker thread. Shards own
  // disjoint allocator/pool/observer state, so the only sharing is
  // read-only config — results land by shard index, independent of
  // scheduling.
  auto decisions = sweep::parallel_map<std::vector<Decision>>(
      shards_.size(), jobs, [this, &by_shard](std::size_t i) {
        std::vector<Decision> out;
        const int s = static_cast<int>(i);
        if (crashed(s)) return out;
        core::EscraSystem& sys = *shards_[i].escra;
        out.reserve(by_shard[i].size());
        for (const core::CpuStatsMsg& msg : by_shard[i]) {
          if (!sys.allocator().knows(msg.cgroup)) continue;
          const double before = sys.app().member_cores(msg.cgroup);
          const auto cores = sys.allocator().on_cpu_stats(msg);
          if (cores)
            out.push_back({msg.cgroup, before, *cores, msg.period_end});
        }
        return out;
      });
  // Phase 2: serial, shard-ordered apply — limit RPCs, trace events, and
  // retransmit slots are born in a deterministic order regardless of how
  // phase 1 was scheduled.
  std::uint64_t checksum = 14695981039346656037ULL;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    core::Controller& controller = shards_[i].escra->controller();
    for (const Decision& d : decisions[i]) {
      controller.apply_cpu_decision(d.cgroup, d.before, d.after, d.fire);
      checksum = fnv1a_mix(checksum, d.cgroup);
      checksum = fnv1a_mix(checksum, double_bits(d.before));
      checksum = fnv1a_mix(checksum, double_bits(d.after));
    }
  }
  return checksum;
}

// --- observability helpers -------------------------------------------------

obs::EventId ShardedControlPlane::record_event(int s, obs::EventKind kind,
                                               double before, double after,
                                               std::int64_t detail,
                                               obs::EventId cause) {
  obs::Observer* observer = shards_[s].observer;
  if (!observer) return 0;
  obs::TraceEvent event;
  event.time = sim_.now();
  event.kind = kind;
  event.before = before;
  event.after = after;
  event.cause = cause;
  event.detail = detail;
  event.shard = static_cast<std::uint32_t>(s) + 1;
  return observer->record(event);
}

void ShardedControlPlane::bump(int s,
                               obs::Counter* obs::Observer::Handles::* handle) {
  obs::Observer* observer = shards_[s].observer;
  if (observer && observer->h.*handle) (observer->h.*handle)->inc();
}

}  // namespace escra::shard
