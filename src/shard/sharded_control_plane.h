// Sharded control plane: N controller shards over one cluster.
//
// A single Escra controller ingests every container's per-period telemetry;
// past a few thousand nodes that one seat becomes the scaling wall. This
// plane partitions the container population across `shards` full
// controller instances (each a core::EscraSystem with its own Resource
// Allocator, Distributed Container pool slice, registry, and retransmit
// machinery) and keeps three properties the rest of the tree depends on:
//
//   1. App-affine routing. A consistent-hash router (shard_router.h) maps
//      each *application* to exactly one shard, so app-level aggregate
//      limits never straddle shards and every allocator decision is made
//      against a complete pool. Telemetry needs no routing tier at run
//      time: registration pins a container to its shard's controller, and
//      the per-node Agents talk to it like any single controller.
//
//   2. Cross-shard pool borrowing. The global CPU/memory pools are sliced
//      evenly at construction; a periodic advertise tick (fixed shard
//      order, gated off when shards == 1) lets each shard broadcast its
//      surplus, and a hot shard borrows headroom from the best advertiser
//      over sequenced, idempotent RPCs (request/grant, return/ack — the
//      same at-most-once discipline as the Controller's desired-state
//      slots: per-pair monotonic sequence numbers, receiver-side caches,
//      exponential-backoff retransmit). A lender shrinks its slice before
//      the grant travels and a returner shrinks before the notice travels,
//      so at every instant
//
//          sum(shard pool slices) + in-flight transfers == cluster pool
//
//      exactly for memory (whole bytes) and to 1e-6 for CPU/bandwidth —
//      the invariant src/check/shard_checker.h sweeps.
//
//   3. Determinism. All shards step in the one sim clock; every loop
//      iterates shards in index order; identical seeds give byte-identical
//      merged traces at any shard count, and sweep_parallel() fans the
//      allocator passes of disjoint shards across worker threads with a
//      serial, shard-ordered apply phase, so --jobs never changes a byte.
//      With shards == 1 the plane is decision-stream-identical to a bare
//      EscraSystem (tests/differential_test.cc proves it).
//
// Each shard gets its *own* obs::Observer (attach_observer(shard, obs));
// export_merged_trace() interleaves the per-shard buffers into one
// deterministic JSONL stream with events stamped by owning shard. HA is
// per shard: enable_ha() gives every shard its own warm-standby group on a
// disjoint standby-endpoint band, so one shard's failover never disturbs
// another's decision stream.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/shard_router.h"
#include "sim/event_queue.h"

namespace escra::shard {

struct ShardPlaneConfig {
  int shards = 1;
  // Consistent-hash ring points per shard (see shard_router.h).
  int virtual_nodes = 64;
  // Cadence of the surplus-advertisement / borrow / return tick. Off the
  // CFS period on purpose: borrowing is pool maintenance, not a control
  // loop, and 500 ms keeps its traffic negligible next to telemetry.
  sim::Duration advertise_interval = sim::milliseconds(500);
  // Fraction of a shard's pool slice it always withholds from lending —
  // headroom for its own next scale-up burst.
  double reserve_frac = 0.10;
  // A shard borrows when its unallocated pool drops below low_frac of its
  // slice, and asks for enough to refill to target_frac.
  double low_frac = 0.05;
  double target_frac = 0.15;
  // A borrower starts repaying once its unallocated pool exceeds
  // return_frac of its slice (hysteresis: target < return keeps a
  // borrow/return pair from oscillating every tick).
  double return_frac = 0.40;
  // First retransmit of an unacked borrow/return op, then exponential
  // backoff to the cap (mirrors EscraConfig::rpc_retry_timeout).
  sim::Duration borrow_retry_timeout = sim::milliseconds(2);
  sim::Duration borrow_backoff_max = sim::milliseconds(128);
  // Per-shard EscraSystem tunables (κ/γ/Υ, periods, reliability knobs).
  core::EscraConfig escra;
};

class ShardedControlPlane {
 public:
  // Slices `global_cpu_cores` / `global_mem` evenly across the shards
  // (memory's integer remainder goes to shard 0, so the cluster total is
  // exact) and builds one EscraSystem per shard on the shared simulation,
  // network, and cluster.
  ShardedControlPlane(sim::Simulation& sim, net::Network& net,
                      cluster::Cluster& cluster, double global_cpu_cores,
                      memcg::Bytes global_mem,
                      ShardPlaneConfig config = ShardPlaneConfig{});
  ~ShardedControlPlane();

  ShardedControlPlane(const ShardedControlPlane&) = delete;
  ShardedControlPlane& operator=(const ShardedControlPlane&) = delete;

  // Deploys the application on its owning shard (router-chosen by
  // spec.name); Eq. 1-2 initial limits come from that shard's pool slice.
  std::vector<cluster::Container*> deploy(const core::AppSpec& spec);

  // Takes over already-created containers as one application named `app`,
  // managed by the owning shard.
  void manage(const std::string& app,
              const std::vector<cluster::Container*>& containers);

  // Starts every shard's control loops (shard index order) and, when
  // shards > 1, the advertise/borrow tick.
  void start();
  void stop();

  // Per-shard observability: each shard records decisions into its own
  // Observer (the per-shard InvariantChecker attachment point). The
  // observer must outlive the plane.
  void attach_observer(int shard, obs::Observer& observer);

  // Interleaves the attached shards' trace buffers into one deterministic
  // JSONL stream (obs::export_merged_jsonl), events stamped with their
  // owning shard. Shards without an observer contribute nothing.
  void export_merged_trace(std::ostream& out) const;

  // Arms a warm-standby HA group per shard (call after start()). Shard i's
  // standbys occupy the disjoint endpoint band [i * standbys, (i + 1) *
  // standbys) of net::standby_endpoint, so partitions and failovers stay
  // per shard. `base` seeds every per-shard HaConfig (standbys and
  // endpoint_base are overwritten).
  void enable_ha(int standbys, ha::HaConfig base = ha::HaConfig{});
  ha::HaControlPlane& ha(int shard);
  bool ha_enabled() const { return ha_enabled_; }

  // Deterministic parallel allocator sweep, the bench/shard_scale engine:
  // phase 1 runs each shard's telemetry batch through its own allocator on
  // a sweep::parallel_map worker (disjoint shards touch disjoint state),
  // phase 2 applies the collected decisions serially in shard order
  // through Controller::apply_cpu_decision. Returns an FNV-1a checksum of
  // the merged (cgroup, before, after) decision stream — byte-identical at
  // any `jobs`. `by_shard` must have shard_count() entries.
  std::uint64_t sweep_parallel(
      const std::vector<std::vector<core::CpuStatsMsg>>& by_shard, int jobs);

  // --- introspection (tests, benchmarks, tools, src/check) ---
  int shard_count() const { return static_cast<int>(shards_.size()); }
  core::EscraSystem& shard(int i) { return *shards_.at(i).escra; }
  const core::EscraSystem& shard(int i) const { return *shards_.at(i).escra; }
  const ShardRouter& router() const { return router_; }
  const ShardPlaneConfig& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }

  int shard_of_app(std::string_view app) const {
    return router_.shard_for_app(app);
  }
  // Owning shard of a container deployed/managed through this plane; -1 if
  // unknown to the plane.
  int shard_of_container(cluster::ContainerId id) const;

  // RT admission routed to the container's owning shard: the reservation
  // debits that shard's base slice (set_rt_capacity pins the bound to the
  // non-borrowed base, so borrowed pool never backs an RT floor). Rejects
  // with kRejectedState when the plane does not know the container.
  core::Controller::RtAdmit admit_rt(cluster::ContainerId id,
                                     const cfs::RtSpec& spec,
                                     double bw_bps = 0.0) {
    const int s = shard_of_container(id);
    if (s < 0) return core::Controller::RtAdmit::kRejectedState;
    return shards_[s].escra->controller().admit_rt(id, spec, bw_bps);
  }

  // Cluster-wide pool totals captured at construction (the conservation
  // right-hand side) and the transfer amounts currently on the wire.
  double cluster_cpu_limit() const { return cluster_cpu_limit_; }
  memcg::Bytes cluster_mem_limit() const { return cluster_mem_limit_; }
  double cluster_bw_limit() const { return cluster_bw_limit_; }
  double inflight_cpu() const { return inflight_[0]; }
  double inflight_mem() const { return inflight_[1]; }
  double inflight_bw() const { return inflight_[2]; }

  std::uint64_t adverts_sent() const { return adverts_sent_; }
  std::uint64_t borrows_requested() const { return borrows_requested_; }
  std::uint64_t borrows_granted() const { return borrows_granted_; }
  std::uint64_t borrows_returned() const { return borrows_returned_; }
  std::uint64_t borrow_retransmits() const { return borrow_retransmits_; }
  std::uint64_t pool_resizes() const { return pool_resizes_; }

 private:
  // Resource axes of the borrow protocol; indexes inflight_[] and the
  // per-resource pending slots. Matches the trace convention (Rpc* /
  // Borrow* events carry 0 = CPU, 1 = memory, 2 = bandwidth in `before`).
  static constexpr int kResCpu = 0;
  static constexpr int kResMem = 1;
  static constexpr int kResBw = 2;
  static constexpr int kResCount = 3;

  // Latest surplus advertisement heard from a peer. Amounts are in the
  // resource's natural unit; memory surplus is always whole bytes.
  struct Advert {
    double surplus[kResCount] = {0.0, 0.0, 0.0};
    bool heard = false;
  };

  // The one outstanding borrow-or-return op a shard may have per resource.
  struct Pending {
    bool active = false;
    bool is_return = false;
    int peer = -1;
    std::uint64_t seq = 0;
    double amount = 0.0;  // requested (borrow) or shipped (return)
    sim::Duration backoff = 0;
    sim::EventHandle timer;
  };

  // Lender-side idempotency cache: the grant computed for the newest
  // request sequence from one (borrower, resource) stream. A retransmitted
  // request re-reads it; the response leg reads it as its payload.
  struct GrantCache {
    std::uint64_t seq = 0;
    double granted = 0.0;
  };

  struct ShardState {
    std::unique_ptr<core::EscraSystem> escra;
    obs::Observer* observer = nullptr;
    std::unique_ptr<ha::HaControlPlane> ha;
    std::vector<Advert> heard;  // indexed by peer shard
    Pending pending[kResCount];
    // Per-peer monotonic sequence for ops this shard originates (shared
    // across resources and op types; per-(peer, resource) streams are
    // serialized, so they see strictly increasing sequences).
    std::map<int, std::uint64_t> next_seq;
    std::map<std::pair<int, int>, GrantCache> grant_cache;  // (peer, res)
    // Receiver-side exactly-once ledger for return notices: the newest
    // applied sequence per (returner, resource).
    std::map<std::pair<int, int>, std::uint64_t> return_applied;
    // What this shard currently owes each lender, per resource — the
    // return pass repays these balances.
    std::map<std::pair<int, int>, double> owed;  // (lender, res)
  };

  bool crashed(int s) const { return shards_[s].escra->crashed(); }
  double limit_of(int s, int res) const;
  double unalloc_of(int s, int res) const;
  // Resizes shard s's pool slice for `res`, recording kShardPoolResize.
  void resize_pool(int s, int res, double new_limit, std::uint64_t cause);
  double lendable_surplus(int s, int res) const;

  void advertise_tick();
  void broadcast_adverts(int s);
  void maybe_return(int s);
  void maybe_borrow(int s);
  void send_borrow(int s, int res);
  void send_return(int s, int res);
  void arm_retransmit(int s, int res);
  void on_retransmit_timer(int s, int res, std::uint64_t seq);

  obs::EventId record_event(int s, obs::EventKind kind, double before,
                            double after, std::int64_t detail,
                            obs::EventId cause = 0);
  void bump(int s, obs::Counter* obs::Observer::Handles::* handle);
  static std::int64_t pack_detail(int peer, std::uint64_t seq) {
    return (static_cast<std::int64_t>(peer) << 48) |
           static_cast<std::int64_t>(seq & 0xffffffffffffULL);
  }

  sim::Simulation& sim_;
  net::Network& net_;
  cluster::Cluster& cluster_;
  ShardPlaneConfig config_;
  ShardRouter router_;
  std::vector<ShardState> shards_;
  std::unordered_map<cluster::ContainerId, int> owner_;
  sim::EventHandle advert_loop_;
  bool started_ = false;
  bool ha_enabled_ = false;

  double cluster_cpu_limit_ = 0.0;
  memcg::Bytes cluster_mem_limit_ = 0;
  double cluster_bw_limit_ = 0.0;
  // Transfer amounts shipped but not yet landed, per resource (memory held
  // as whole bytes in the double — exact up to 2^53).
  double inflight_[kResCount] = {0.0, 0.0, 0.0};

  std::uint64_t adverts_sent_ = 0;
  std::uint64_t borrows_requested_ = 0;
  std::uint64_t borrows_granted_ = 0;
  std::uint64_t borrows_returned_ = 0;
  std::uint64_t borrow_retransmits_ = 0;
  std::uint64_t pool_resizes_ = 0;
};

}  // namespace escra::shard
