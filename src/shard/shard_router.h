// Deterministic application -> shard router (consistent hashing).
//
// The sharded control plane partitions containers across controller shards
// *by application*: every container of one application lands on the same
// shard, so the Distributed Container's app-level aggregate limits never
// straddle a shard boundary and each shard's Resource Allocator reasons
// over a complete pool. The mapping is a classic consistent-hash ring —
// each shard owns `virtual_nodes` points hashed onto a 64-bit ring, and an
// application maps to the owner of the first point clockwise of its own
// hash. Growing the ring from N to N+1 shards therefore only moves the
// applications the new shard's points capture (~1/(N+1) of them); every
// other application keeps its owner, which is what keeps resharding cheap
// and what tests/shard_test.cc asserts.
//
// Everything is pure arithmetic on the app name (FNV-1a), so the mapping
// is identical across processes, runs, and --jobs settings.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace escra::shard {

class ShardRouter {
 public:
  // `shards` >= 1; `virtual_nodes` points per shard (more points = better
  // balance; 64 keeps the max/min application load ratio under ~1.3).
  explicit ShardRouter(int shards, int virtual_nodes = 64);

  // The shard owning `app`, in [0, shard_count()).
  int shard_for_app(std::string_view app) const;

  int shard_count() const { return shards_; }
  int virtual_nodes() const { return virtual_nodes_; }

  // FNV-1a 64-bit, the ring's hash (exposed for tests).
  static std::uint64_t hash(std::string_view s);

 private:
  int shards_;
  int virtual_nodes_;
  // Ring points sorted by hash; ties (astronomically unlikely) resolve to
  // the lower shard id via pair ordering, keeping the ring deterministic.
  std::vector<std::pair<std::uint64_t, int>> ring_;
};

}  // namespace escra::shard
