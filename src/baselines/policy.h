// Common interface for the comparison allocation policies (Section VI):
// static allocation (common practice), our Autopilot recreation (state of
// the art), and a VPA-style threshold scaler (related work). Escra itself
// is driven through core::EscraSystem; the experiment harness treats all of
// them uniformly.
#pragma once

#include <string>

namespace escra::baselines {

class Policy {
 public:
  virtual ~Policy() = default;

  // Starts any periodic control loop the policy runs.
  virtual void start() = 0;
  virtual void stop() = 0;
  virtual std::string name() const = 0;
};

}  // namespace escra::baselines
