// Recreation of Google's Autopilot workload autoscaler (Rzadca et al.,
// EuroSys'20), as the paper does for its comparison (Section VI-A:
// "Autopilot is not open-source so we implemented a recreation of the
// Autopilot ML recommender").
//
// Per container and per resource, Autopilot maintains exponentially-
// decaying histograms of usage samples. A set of candidate *models* (arms
// of a multi-armed bandit) each propose a limit — a percentile of a decayed
// histogram times a safety margin. Every sample, each model is charged a
// cost: w_o when usage overruns the limit the model would have set, plus
// w_u times the unused headroom (slack). At each update period the arm with
// the lowest decayed cost wins and its proposal is applied. As in the
// paper's comparison, the update period is configurable; 1 s is Autopilot's
// best case (5 min is its default), and resizes are applied without a
// container restart.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/decaying_histogram.h"
#include "baselines/policy.h"
#include "cluster/container.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::baselines {

struct AutopilotModel {
  double half_life_s = 120.0;  // histogram decay half-life
  double percentile = 95.0;    // limit percentile
  double margin = 1.15;        // safety margin
};

struct AutopilotConfig {
  sim::Duration sample_interval = sim::seconds(1);
  sim::Duration update_interval = sim::seconds(1);  // best case per the paper
  // Bandit cost weights: overrun (demand above proposed limit) vs underrun
  // (slack). "Some parameters used in the Autopilot algorithm are manually
  // tuned by their engineers (w_o, w_u, etc.)" — these values were tuned for
  // best performance on our benchmarks, as the paper did.
  double w_overrun = 8.0;
  double w_underrun = 1.0;
  double cost_half_life_s = 120.0;
  // Candidate CPU arms; defaults mirror the EuroSys paper's grid of decay
  // half-lives x percentiles x margins.
  std::vector<AutopilotModel> models = {
      {30.0, 90.0, 1.10},  {30.0, 95.0, 1.15},  {30.0, 98.0, 1.30},
      {120.0, 90.0, 1.10}, {120.0, 95.0, 1.15}, {120.0, 98.0, 1.30},
      {480.0, 95.0, 1.15}, {480.0, 98.0, 1.30},
  };
  // Memory arms. Autopilot's memory recommenders are peak-oriented (an OOM
  // costs a restart, so the default recommender tracks the decayed window
  // maximum rather than a mid percentile); arms differ in how fast the peak
  // is forgotten and in the safety margin.
  std::vector<AutopilotModel> mem_models = {
      {60.0, 100.0, 1.10},  {60.0, 100.0, 1.25},
      {240.0, 100.0, 1.10}, {240.0, 100.0, 1.25},
      {960.0, 100.0, 1.40},
  };
  // Histogram geometry.
  double cpu_max_cores = 16.0;
  std::size_t cpu_buckets = 128;
  double mem_max_bytes = 4.0 * 1024 * 1024 * 1024;
  std::size_t mem_buckets = 128;
  // Number of usage samples required before the recommender overrides the
  // deployed limits (Autopilot does not act without data).
  std::size_t warmup_samples = 5;
  // Floors so a freshly idle container is not scaled to zero.
  double min_cores = 0.05;
  memcg::Bytes min_mem = 32 * memcg::kMiB;
};

class AutopilotPolicy final : public Policy {
 public:
  AutopilotPolicy(sim::Simulation& sim,
                  std::vector<cluster::Container*> containers,
                  AutopilotConfig config);
  ~AutopilotPolicy() override;

  void start() override;
  void stop() override;
  std::string name() const override { return "autopilot"; }

  // Index of the currently winning CPU arm for a container (for tests).
  std::size_t best_cpu_model(std::size_t container_index) const;

  std::uint64_t cpu_resizes() const { return cpu_resizes_; }
  std::uint64_t mem_resizes() const { return mem_resizes_; }

 private:
  struct ResourceState {
    std::vector<DecayingHistogram> histograms;  // one per distinct half-life
    std::vector<std::size_t> model_hist;        // model -> histogram index
    std::vector<double> model_cost;             // decayed bandit cost
    double cost_decay_factor = 1.0;             // per-sample decay multiplier
    double last_usage = 0.0;
  };
  struct ContainerState {
    cluster::Container* container = nullptr;
    sim::Duration prev_consumed = 0;
    std::size_t samples = 0;  // only counted while the container is running
    ResourceState cpu;
    ResourceState mem;
  };

  ResourceState make_resource_state(const std::vector<AutopilotModel>& models,
                                    double max_value, std::size_t buckets) const;
  void on_sample();
  void on_update();
  double model_proposal(const std::vector<AutopilotModel>& models,
                        const ResourceState& rs, std::size_t model) const;
  std::size_t argmin_cost(const ResourceState& rs) const;

  sim::Simulation& sim_;
  AutopilotConfig config_;
  std::vector<ContainerState> states_;
  sim::EventHandle sample_loop_;
  sim::EventHandle update_loop_;
  bool running_ = false;
  std::uint64_t cpu_resizes_ = 0;
  std::uint64_t mem_resizes_ = 0;
};

}  // namespace escra::baselines
