#include "baselines/decaying_histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::baselines {

DecayingHistogram::DecayingHistogram(double max_value, std::size_t buckets,
                                     double half_life)
    : max_value_(max_value), half_life_(half_life), weights_(buckets, 0.0) {
  if (max_value <= 0.0) throw std::invalid_argument("max_value <= 0");
  if (buckets == 0) throw std::invalid_argument("zero buckets");
  if (half_life <= 0.0) throw std::invalid_argument("half_life <= 0");
}

void DecayingHistogram::add(double t, double value, double weight) {
  if (!seen_) {
    last_t_ = t;
    seen_ = true;
  }
  if (t > last_t_) {
    scale_ *= std::exp2((t - last_t_) / half_life_);
    last_t_ = t;
    if (scale_ > 1e12) renormalize();
  }
  const double clamped = std::clamp(value, 0.0, max_value_);
  const auto bucket = std::min(
      weights_.size() - 1,
      static_cast<std::size_t>(clamped / max_value_ *
                               static_cast<double>(weights_.size())));
  weights_[bucket] += weight * scale_;
}

void DecayingHistogram::renormalize() {
  for (double& w : weights_) w /= scale_;
  scale_ = 1.0;
}

double DecayingHistogram::percentile(double p) const {
  double total = 0.0;
  for (const double w : weights_) total += w;
  if (total <= 0.0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    cum += weights_[i];
    if (cum >= target && weights_[i] > 0.0) {
      // Upper bucket edge: conservative for a limit recommender.
      return static_cast<double>(i + 1) / static_cast<double>(weights_.size()) *
             max_value_;
    }
  }
  return max_value_;
}

double DecayingHistogram::total_weight() const {
  double total = 0.0;
  for (const double w : weights_) total += w;
  // Report in "weight of a sample added now" units.
  return total / scale_;
}

}  // namespace escra::baselines
