#include "baselines/firm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::baselines {

FirmPolicy::FirmPolicy(sim::Simulation& sim,
                       std::vector<cluster::Container*> containers,
                       FirmConfig config)
    : sim_(sim), config_(config) {
  if (containers.empty()) throw std::invalid_argument("firm: no containers");
  if (config_.low_watermark >= config_.high_watermark) {
    throw std::invalid_argument("firm: watermarks inverted");
  }
  states_.reserve(containers.size());
  for (cluster::Container* c : containers) {
    State st;
    st.container = c;
    st.prev_consumed = c->cpu_cgroup().total_consumed();
    states_.push_back(st);
  }
}

FirmPolicy::~FirmPolicy() { stop(); }

void FirmPolicy::start() {
  if (running_) return;
  running_ = true;
  budget_ = 0.0;
  for (const State& st : states_) {
    budget_ += st.container->cpu_cgroup().limit_cores();
  }
  loop_ = sim_.schedule_every(sim_.now() + config_.interval, config_.interval,
                              [this] { on_cycle(); });
}

void FirmPolicy::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(loop_);
}

void FirmPolicy::on_cycle() {
  // 1. Sample per-container utilization over the last interval.
  double harvestable = 0.0;
  double wanted = 0.0;
  std::vector<double> deficit(states_.size(), 0.0);
  std::vector<double> surplus(states_.size(), 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    const sim::Duration consumed = st.container->cpu_cgroup().total_consumed();
    st.used_cores = static_cast<double>(consumed - st.prev_consumed) /
                    static_cast<double>(config_.interval);
    st.prev_consumed = consumed;
    if (!st.container->running()) continue;
    const double limit = st.container->cpu_cgroup().limit_cores();
    const double util = limit > 0.0 ? st.used_cores / limit : 1.0;
    if (util >= config_.high_watermark) {
      // The critical path: ask for enough to bring utilization to the
      // midpoint of the band.
      const double target_util =
          (config_.high_watermark + config_.low_watermark) / 2.0;
      deficit[i] = st.used_cores / target_util - limit;
      wanted += std::max(0.0, deficit[i]);
    } else if (util < config_.low_watermark) {
      // A donor: part of its headroom can move to the critical path.
      const double excess = limit - std::max(st.used_cores / 0.7,
                                             config_.min_cores);
      surplus[i] = std::max(0.0, excess * config_.harvest_rate);
      harvestable += surplus[i];
    }
  }
  if (wanted <= 1e-9 || harvestable <= 1e-9) return;

  // 2. Move capacity: donors shrink, critical containers grow, the budget
  //    stays fixed (Firm multiplexes; it does not grow the application).
  const double moved = std::min(wanted, harvestable);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    cluster::Container* c = states_[i].container;
    if (surplus[i] > 0.0) {
      const double share = surplus[i] / harvestable * moved;
      c->cpu_cgroup().set_limit_cores(std::max(
          config_.min_cores, c->cpu_cgroup().limit_cores() - share));
    } else if (deficit[i] > 0.0) {
      const double share = deficit[i] / wanted * moved;
      c->cpu_cgroup().set_limit_cores(c->cpu_cgroup().limit_cores() + share);
    }
  }
  ++reallocations_;
}

}  // namespace escra::baselines
