// Static allocation (Section VI-B): the common practice Escra is compared
// against. Each container's CPU and memory limits are set once, to a
// multiplier of its profiled peak usage (0.75x "underutilized", 1.0x
// "best-estimate", 1.5x "safe buffer"), and never changed. Containers that
// outgrow their memory limit are OOM-killed — there is no rescue path.
#pragma once

#include <vector>

#include "baselines/policy.h"
#include "cluster/container.h"
#include "memcg/mem_cgroup.h"

namespace escra::baselines {

struct StaticLimits {
  double cores = 1.0;
  memcg::Bytes mem = 256 * memcg::kMiB;
};

class StaticPolicy final : public Policy {
 public:
  // Applies `multiplier * profiled[i]` to `containers[i]` immediately.
  StaticPolicy(const std::vector<cluster::Container*>& containers,
               const std::vector<StaticLimits>& profiled, double multiplier);

  void start() override {}
  void stop() override {}
  std::string name() const override;

  double multiplier() const { return multiplier_; }

 private:
  double multiplier_;
};

}  // namespace escra::baselines
