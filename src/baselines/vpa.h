// Kubernetes Vertical Pod Autoscaler model (Section II).
//
// VPA sets a target utilization with upper/lower bounds around it. When a
// container's usage crosses a bound, VPA resizes toward the target — but a
// resize requires a pod restart (dropping in-flight work), so VPA resizes a
// container at most once per cool-down (a minute in practice). These two
// properties — restart-to-resize and infrequent scaling — are the
// limitations the paper motivates Escra with.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/policy.h"
#include "cluster/container.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::baselines {

struct VpaConfig {
  double target_utilization = 0.5;  // resize so usage/limit == target
  double upper_bound = 0.75;        // scale up when usage/limit exceeds this
  double lower_bound = 0.25;        // scale down when below this
  sim::Duration check_interval = sim::seconds(30);
  sim::Duration cooldown = sim::kMinute;  // "at most once per minute"
  double min_cores = 0.1;
  memcg::Bytes min_mem = 64 * memcg::kMiB;
};

class VpaPolicy final : public Policy {
 public:
  VpaPolicy(sim::Simulation& sim, std::vector<cluster::Container*> containers,
            VpaConfig config);
  ~VpaPolicy() override;

  void start() override;
  void stop() override;
  std::string name() const override { return "vpa"; }

  std::uint64_t restarts() const { return restarts_; }

 private:
  struct State {
    cluster::Container* container = nullptr;
    sim::Duration prev_consumed = 0;
    sim::TimePoint last_resize = 0;
    double cpu_used_cores = 0.0;
  };
  void on_check();

  sim::Simulation& sim_;
  VpaConfig config_;
  std::vector<State> states_;
  sim::EventHandle loop_;
  bool running_ = false;
  std::uint64_t restarts_ = 0;
};

}  // namespace escra::baselines
