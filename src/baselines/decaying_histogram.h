// Exponentially-decaying histogram: the building block of Autopilot's
// moving-window recommenders (Rzadca et al., EuroSys'20 Section 3.1). Each
// recorded sample's weight halves every `half_life`; percentile queries see
// the decayed distribution, so recent load dominates while old peaks fade.
//
// Implementation note: uniform decay rescales every bucket by the same
// factor, which leaves percentiles unchanged — so instead of decaying the
// buckets we *grow* the weight of newer samples by 2^(t/half_life) and
// renormalize when the scale gets large. add() and percentile() are O(1)
// and O(buckets) with no per-bucket timestamps.
#pragma once

#include <cstddef>
#include <vector>

namespace escra::baselines {

class DecayingHistogram {
 public:
  // Values are clamped into [0, max_value] across `buckets` linear buckets;
  // `half_life` is in the same time unit passed to add()/percentile().
  DecayingHistogram(double max_value, std::size_t buckets, double half_life);

  // Records `value` observed at time `t` (nondecreasing across calls).
  void add(double t, double value, double weight = 1.0);

  // Value at percentile p in [0,100] of the decayed distribution as of the
  // last add. Returns 0 when empty. Reports the upper edge of the bucket
  // containing the rank (conservative for limit-setting).
  double percentile(double p) const;

  double total_weight() const;
  double max_value() const { return max_value_; }
  double half_life() const { return half_life_; }

 private:
  void renormalize();

  double max_value_;
  double half_life_;
  std::vector<double> weights_;
  double last_t_ = 0.0;
  double scale_ = 1.0;  // weight multiplier for a sample added at last_t_
  bool seen_ = false;
};

}  // namespace escra::baselines
