#include "baselines/static_policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::baselines {

StaticPolicy::StaticPolicy(const std::vector<cluster::Container*>& containers,
                           const std::vector<StaticLimits>& profiled,
                           double multiplier)
    : multiplier_(multiplier) {
  if (containers.size() != profiled.size()) {
    throw std::invalid_argument("StaticPolicy: size mismatch");
  }
  if (multiplier <= 0.0) {
    throw std::invalid_argument("StaticPolicy: multiplier <= 0");
  }
  for (std::size_t i = 0; i < containers.size(); ++i) {
    containers[i]->cpu_cgroup().set_limit_cores(profiled[i].cores * multiplier);
    // No operator deploys a memory limit below the container's resident
    // footprint (it would crash-loop on arrival); floor the multiplied
    // limit just above current usage. Working-set growth beyond that still
    // OOMs, which is the under-provisioning cost the 0.75x case measures.
    const auto scaled = static_cast<memcg::Bytes>(
        std::llround(static_cast<double>(profiled[i].mem) * multiplier));
    const memcg::Bytes floor =
        containers[i]->mem_cgroup().usage() + 16 * memcg::kMiB;
    containers[i]->mem_cgroup().set_limit(std::max(scaled, floor));
  }
}

std::string StaticPolicy::name() const {
  return "static-" + std::to_string(multiplier_) + "x";
}

}  // namespace escra::baselines
