// Firm-inspired baseline (Qiu et al., OSDI'20; paper Section II).
//
// Firm reduces SLO violations by intelligently *multiplexing* CPU between
// the containers of an application: resources move from underutilized
// containers to the ones on the critical path, without pod restarts. Like
// Autopilot it runs a coarse-grained feedback loop, and it "does not
// implement seamless or automatic memory scaling, requiring users to set
// static [memory] limits".
//
// This recreation implements Firm's resource-multiplexing mechanism without
// the reinforcement-learning policy on top: every interval it ranks
// containers by CPU utilization, harvests capacity from those below the low
// watermark, and grants it to those above the high watermark — the
// aggregate CPU budget fixed at its starting value. Memory limits are never
// touched.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/policy.h"
#include "cluster/container.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::baselines {

struct FirmConfig {
  sim::Duration interval = sim::seconds(1);  // the feedback loop period
  double high_watermark = 0.85;  // utilization above this: wants more CPU
  double low_watermark = 0.50;   // below this: capacity can be harvested
  // Fraction of a donor's excess (limit - usage/target) harvested per cycle.
  double harvest_rate = 0.5;
  double min_cores = 0.1;
};

class FirmPolicy final : public Policy {
 public:
  FirmPolicy(sim::Simulation& sim, std::vector<cluster::Container*> containers,
             FirmConfig config);
  ~FirmPolicy() override;

  void start() override;
  void stop() override;
  std::string name() const override { return "firm"; }

  // Aggregate CPU budget (fixed at the sum of limits when start() ran).
  double budget_cores() const { return budget_; }
  std::uint64_t reallocations() const { return reallocations_; }

 private:
  struct State {
    cluster::Container* container = nullptr;
    sim::Duration prev_consumed = 0;
    double used_cores = 0.0;
  };
  void on_cycle();

  sim::Simulation& sim_;
  FirmConfig config_;
  std::vector<State> states_;
  double budget_ = 0.0;
  sim::EventHandle loop_;
  bool running_ = false;
  std::uint64_t reallocations_ = 0;
};

}  // namespace escra::baselines
