#include "baselines/autopilot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::baselines {

AutopilotPolicy::AutopilotPolicy(sim::Simulation& sim,
                                 std::vector<cluster::Container*> containers,
                                 AutopilotConfig config)
    : sim_(sim), config_(std::move(config)) {
  if (containers.empty()) throw std::invalid_argument("autopilot: no containers");
  if (config_.models.empty()) throw std::invalid_argument("autopilot: no models");
  states_.reserve(containers.size());
  for (cluster::Container* c : containers) {
    ContainerState st;
    st.container = c;
    st.prev_consumed = c->cpu_cgroup().total_consumed();
    st.cpu = make_resource_state(config_.models, config_.cpu_max_cores,
                                 config_.cpu_buckets);
    st.mem = make_resource_state(config_.mem_models, config_.mem_max_bytes,
                                 config_.mem_buckets);
    states_.push_back(std::move(st));
  }
}

AutopilotPolicy::~AutopilotPolicy() { stop(); }

AutopilotPolicy::ResourceState AutopilotPolicy::make_resource_state(
    const std::vector<AutopilotModel>& models, double max_value,
    std::size_t buckets) const {
  ResourceState rs;
  // Share one histogram among models with the same half-life.
  std::vector<double> half_lives;
  rs.model_hist.reserve(models.size());
  for (const AutopilotModel& m : models) {
    const auto it =
        std::find(half_lives.begin(), half_lives.end(), m.half_life_s);
    if (it == half_lives.end()) {
      half_lives.push_back(m.half_life_s);
      rs.histograms.emplace_back(max_value, buckets, m.half_life_s);
      rs.model_hist.push_back(half_lives.size() - 1);
    } else {
      rs.model_hist.push_back(
          static_cast<std::size_t>(it - half_lives.begin()));
    }
  }
  rs.model_cost.assign(models.size(), 0.0);
  rs.cost_decay_factor = std::exp2(
      -sim::to_seconds(config_.sample_interval) / config_.cost_half_life_s);
  return rs;
}

void AutopilotPolicy::start() {
  if (running_) return;
  running_ = true;
  sample_loop_ =
      sim_.schedule_every(sim_.now() + config_.sample_interval,
                          config_.sample_interval, [this] { on_sample(); });
  update_loop_ =
      sim_.schedule_every(sim_.now() + config_.update_interval,
                          config_.update_interval, [this] { on_update(); });
}

void AutopilotPolicy::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(sample_loop_);
  sim_.cancel(update_loop_);
}

double AutopilotPolicy::model_proposal(
    const std::vector<AutopilotModel>& models, const ResourceState& rs,
    std::size_t model) const {
  const AutopilotModel& m = models[model];
  return rs.histograms[rs.model_hist[model]].percentile(m.percentile) *
         m.margin;
}

std::size_t AutopilotPolicy::argmin_cost(const ResourceState& rs) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < rs.model_cost.size(); ++i) {
    if (rs.model_cost[i] < rs.model_cost[best]) best = i;
  }
  return best;
}

void AutopilotPolicy::on_sample() {
  const double t = sim::to_seconds(sim_.now());
  const double interval_s = sim::to_seconds(config_.sample_interval);
  for (ContainerState& st : states_) {
    // CPU usage over the last sample interval, in cores — the 1-second
    // aggregation a cAdvisor-style exporter provides.
    const sim::Duration consumed = st.container->cpu_cgroup().total_consumed();
    const double cpu_used =
        static_cast<double>(consumed - st.prev_consumed) /
        static_cast<double>(config_.sample_interval);
    st.prev_consumed = consumed;
    const double mem_used =
        static_cast<double>(st.container->mem_cgroup().usage());
    // A restarting pod exports no usage; feeding zeros into the histograms
    // would poison the recommendation the moment it comes back.
    if (!st.container->running()) continue;
    ++st.samples;

    for (ResourceState* rs : {&st.cpu, &st.mem}) {
      const bool is_cpu = rs == &st.cpu;
      const double usage = is_cpu ? cpu_used : mem_used;
      const auto& models = is_cpu ? config_.models : config_.mem_models;
      // Charge each arm for the limit it *would* have set before seeing
      // this sample: overrun costs w_o, slack costs w_u (normalized by the
      // proposal so CPU and memory costs are comparable).
      for (std::size_t m = 0; m < models.size(); ++m) {
        const double proposal = model_proposal(models, *rs, m);
        double penalty = 0.0;
        if (usage > proposal) {
          penalty = config_.w_overrun;
        } else if (proposal > 0.0) {
          penalty = config_.w_underrun * (proposal - usage) / proposal;
        }
        rs->model_cost[m] = rs->model_cost[m] * rs->cost_decay_factor + penalty;
      }
      for (DecayingHistogram& h : rs->histograms) h.add(t, usage);
      rs->last_usage = usage;
    }
    (void)interval_s;
  }
}

void AutopilotPolicy::on_update() {
  for (ContainerState& st : states_) {
    if (st.samples < config_.warmup_samples) continue;  // not enough data yet
    const std::size_t cpu_arm = argmin_cost(st.cpu);
    const double cpu_limit = std::max(
        config_.min_cores, model_proposal(config_.models, st.cpu, cpu_arm));
    if (cpu_limit > 0.0 &&
        std::abs(st.container->cpu_cgroup().limit_cores() - cpu_limit) > 1e-3) {
      st.container->cpu_cgroup().set_limit_cores(cpu_limit);
      ++cpu_resizes_;
    }

    const std::size_t mem_arm = argmin_cost(st.mem);
    // Never set a memory limit below what the container is using right now:
    // the recommender can see current usage, and a limit below it is a
    // guaranteed OOM on the very next charge. Growth *between* updates can
    // still outrun the limit, which is where Autopilot's OOMs come from.
    const double floor_now =
        static_cast<double>(st.container->mem_cgroup().usage()) * 1.02;
    const auto mem_limit = static_cast<memcg::Bytes>(std::llround(
        std::max({static_cast<double>(config_.min_mem), floor_now,
                  model_proposal(config_.mem_models, st.mem, mem_arm)})));
    if (mem_limit > 0 && mem_limit != st.container->mem_cgroup().limit()) {
      st.container->mem_cgroup().set_limit(mem_limit);
      ++mem_resizes_;
    }
  }
}

std::size_t AutopilotPolicy::best_cpu_model(std::size_t container_index) const {
  return argmin_cost(states_.at(container_index).cpu);
}

}  // namespace escra::baselines
