#include "baselines/vpa.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::baselines {

VpaPolicy::VpaPolicy(sim::Simulation& sim,
                     std::vector<cluster::Container*> containers,
                     VpaConfig config)
    : sim_(sim), config_(config) {
  if (containers.empty()) throw std::invalid_argument("vpa: no containers");
  if (config_.lower_bound >= config_.upper_bound) {
    throw std::invalid_argument("vpa: bounds inverted");
  }
  states_.reserve(containers.size());
  for (cluster::Container* c : containers) {
    State st;
    st.container = c;
    st.prev_consumed = c->cpu_cgroup().total_consumed();
    st.last_resize = -config_.cooldown;  // allow an immediate first resize
    states_.push_back(st);
  }
}

VpaPolicy::~VpaPolicy() { stop(); }

void VpaPolicy::start() {
  if (running_) return;
  running_ = true;
  loop_ = sim_.schedule_every(sim_.now() + config_.check_interval,
                              config_.check_interval, [this] { on_check(); });
}

void VpaPolicy::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(loop_);
}

void VpaPolicy::on_check() {
  const sim::TimePoint now = sim_.now();
  for (State& st : states_) {
    cluster::Container& c = *st.container;
    const sim::Duration consumed = c.cpu_cgroup().total_consumed();
    st.cpu_used_cores = static_cast<double>(consumed - st.prev_consumed) /
                        static_cast<double>(config_.check_interval);
    st.prev_consumed = consumed;
    if (!c.running()) continue;
    if (now - st.last_resize < config_.cooldown) continue;

    const double cpu_limit = c.cpu_cgroup().limit_cores();
    const double cpu_util =
        cpu_limit > 0.0 ? st.cpu_used_cores / cpu_limit : 1.0;
    const auto mem_usage = static_cast<double>(c.mem_cgroup().usage());
    const auto mem_limit_d = static_cast<double>(c.mem_cgroup().limit());
    const double mem_util = mem_limit_d > 0.0 ? mem_usage / mem_limit_d : 1.0;

    const bool out_of_band = cpu_util > config_.upper_bound ||
                             cpu_util < config_.lower_bound ||
                             mem_util > config_.upper_bound ||
                             mem_util < config_.lower_bound;
    if (!out_of_band) continue;

    // Resize both resources toward the target. This is a pod restart:
    // in-flight work is dropped and the container cold-starts.
    const double new_cores = std::max(
        config_.min_cores, st.cpu_used_cores / config_.target_utilization);
    const auto new_mem = std::max<memcg::Bytes>(
        config_.min_mem, static_cast<memcg::Bytes>(
                             std::llround(mem_usage / config_.target_utilization)));
    c.evict_restart(new_cores, new_mem);
    st.last_resize = now;
    ++restarts_;
  }
}

}  // namespace escra::baselines
