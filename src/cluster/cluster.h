// The cluster: nodes plus container creation/placement.
//
// Owns every Node and Container. Placement is least-loaded-by-container-
// count (the experiments spread each application's containers across the
// three worker nodes, as in Section VI-A). Container creation notifies an
// observer — the hook Escra's Container Watcher uses to register newly
// deployed containers with the Controller (Section IV-A).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/container.h"
#include "cluster/node.h"
#include "sim/event_queue.h"

namespace escra::cluster {

class Cluster {
 public:
  using ContainerObserver = std::function<void(Container&, Node&)>;

  explicit Cluster(sim::Simulation& sim);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Node& add_node(NodeConfig config = {});

  // Creates a container, places it on the node with the fewest containers
  // (or on `pin_to` if provided), and notifies the observer.
  Container& create_container(ContainerSpec spec, double initial_cores,
                              memcg::Bytes initial_mem_limit,
                              Node* pin_to = nullptr);

  // Permanently removes a container (serverless pods are reaped when idle).
  void remove_container(Container& container);

  void set_container_observer(ContainerObserver obs) { observer_ = std::move(obs); }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::vector<Container*> containers() const;
  Container* find_container(ContainerId id) const;
  Node* node_of(ContainerId id) const;
  std::size_t container_count() const { return container_nodes_.size(); }

  sim::Simulation& simulation() { return sim_; }

 private:
  sim::Simulation& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Container>> containers_;
  // Parallel map: container id -> owning node (index aligned with containers_).
  std::vector<std::pair<Container*, Node*>> container_nodes_;
  ContainerObserver observer_;
  ContainerId next_id_ = 1;
  NodeId next_node_id_ = 0;
};

}  // namespace escra::cluster
