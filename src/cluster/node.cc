#include "cluster/node.h"

#include <algorithm>
#include <stdexcept>

namespace escra::cluster {

Node::Node(sim::Simulation& sim, NodeId id, NodeConfig config)
    : sim_(sim),
      id_(id),
      config_(config),
      scheduler_(sim, {.cores = config.cores,
                       .slice = config.scheduler_slice,
                       .period = config.cfs_period}) {
  if (config.memory_capacity <= 0) {
    throw std::invalid_argument("Node: memory capacity <= 0");
  }
}

void Node::attach(Container& container) {
  containers_.push_back(&container);
  scheduler_.attach(&container);
}

void Node::detach(Container& container) {
  std::erase(containers_, &container);
  scheduler_.detach(&container);
}

memcg::Bytes Node::memory_in_use() const {
  memcg::Bytes total = 0;
  for (const Container* c : containers_) total += c->mem_cgroup().usage();
  return total;
}

memcg::Bytes Node::memory_limit_total() const {
  memcg::Bytes total = 0;
  for (const Container* c : containers_) total += c->mem_cgroup().limit();
  return total;
}

}  // namespace escra::cluster
