#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace escra::cluster {

Cluster::Cluster(sim::Simulation& sim) : sim_(sim) {}

Node& Cluster::add_node(NodeConfig config) {
  nodes_.push_back(std::make_unique<Node>(sim_, next_node_id_++, config));
  return *nodes_.back();
}

Container& Cluster::create_container(ContainerSpec spec, double initial_cores,
                                     memcg::Bytes initial_mem_limit,
                                     Node* pin_to) {
  if (nodes_.empty()) throw std::logic_error("create_container: no nodes");
  Node* target = pin_to;
  if (target == nullptr) {
    target = nodes_.front().get();
    for (const auto& n : nodes_) {
      if (n->container_count() < target->container_count()) target = n.get();
    }
  }
  containers_.push_back(std::make_unique<Container>(
      sim_, next_id_++, std::move(spec), target->config().cfs_period,
      initial_cores, initial_mem_limit));
  Container& c = *containers_.back();
  target->attach(c);
  container_nodes_.emplace_back(&c, target);
  if (observer_) observer_(c, *target);
  return c;
}

void Cluster::remove_container(Container& container) {
  Node* node = node_of(container.id());
  if (node != nullptr) node->detach(container);
  std::erase_if(container_nodes_,
                [&](const auto& p) { return p.first == &container; });
  std::erase_if(containers_,
                [&](const auto& c) { return c.get() == &container; });
}

std::vector<Container*> Cluster::containers() const {
  std::vector<Container*> out;
  out.reserve(container_nodes_.size());
  for (const auto& [c, n] : container_nodes_) out.push_back(c);
  return out;
}

Container* Cluster::find_container(ContainerId id) const {
  for (const auto& [c, n] : container_nodes_) {
    if (c->id() == id) return c;
  }
  return nullptr;
}

Node* Cluster::node_of(ContainerId id) const {
  for (const auto& [c, n] : container_nodes_) {
    if (c->id() == id) return n;
  }
  return nullptr;
}

}  // namespace escra::cluster
