// A worker node: CPU cores driven by one NodeCpuScheduler, a memory
// capacity, and the containers placed on it. Mirrors a Cloudlab worker in
// the paper's testbed (Section VI-A).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cfs/node_scheduler.h"
#include "cluster/container.h"
#include "memcg/mem_cgroup.h"
#include "sim/event_queue.h"

namespace escra::cluster {

using NodeId = std::uint32_t;

struct NodeConfig {
  double cores = 20.0;  // two 10-core sockets in the microservice testbed
  memcg::Bytes memory_capacity = 192LL * memcg::kGiB;
  sim::Duration scheduler_slice = sim::milliseconds(10);
  sim::Duration cfs_period = sim::milliseconds(100);
  // NIC capacity in bytes/s (10 GbE in the testbed); caps the sum of
  // per-container bandwidth rate limits placed on the node (src/bw).
  double nic_bps = 1.25e9;
};

class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const NodeConfig& config() const { return config_; }
  cfs::NodeCpuScheduler& scheduler() { return scheduler_; }

  // Places an existing container on this node (attaches its cgroup to the
  // node scheduler).
  void attach(Container& container);
  void detach(Container& container);

  const std::vector<Container*>& containers() const { return containers_; }
  std::size_t container_count() const { return containers_.size(); }

  // Sum of container memory usage on this node.
  memcg::Bytes memory_in_use() const;
  // Sum of container memory *limits* on this node (reservation pressure).
  memcg::Bytes memory_limit_total() const;
  memcg::Bytes memory_available() const {
    return config_.memory_capacity - memory_in_use();
  }

 private:
  sim::Simulation& sim_;
  NodeId id_;
  NodeConfig config_;
  cfs::NodeCpuScheduler scheduler_;
  std::vector<Container*> containers_;
};

}  // namespace escra::cluster
