#include "cluster/container.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace escra::cluster {

Container::Container(sim::Simulation& sim, ContainerId id, ContainerSpec spec,
                     sim::Duration cfs_period, double initial_cores,
                     memcg::Bytes initial_mem_limit)
    : sim_(sim),
      id_(id),
      spec_(std::move(spec)),
      cpu_(id, cfs_period, initial_cores),
      mem_(id, initial_mem_limit) {
  resident_ = spec_.base_memory;
  mem_.force_charge(resident_);
  enqueue_startup_work();
}

Container::~Container() {
  sim_.cancel(rt_release_timer_);
  sim_.cancel(rt_deadline_check_);
}

void Container::set_rt(const cfs::RtSpec& spec) {
  if (!spec.valid()) {
    throw std::invalid_argument("Container::set_rt: invalid RtSpec");
  }
  clear_rt();
  rt_ = spec;
  // Burst = runtime: a job released right at a quota-budget edge draws its
  // full runtime from accumulated burst instead of stalling into the next
  // refill — without this, CFS quantization alone can miss tight deadlines.
  cpu_.set_burst(spec.runtime);
  release_rt_job();
  rt_release_timer_ = sim_.schedule_every(sim_.now() + spec.period, spec.period,
                                          [this] { release_rt_job(); });
}

void Container::clear_rt() {
  if (!rt_.valid()) return;
  sim_.cancel(rt_release_timer_);
  sim_.cancel(rt_deadline_check_);
  rt_ = {};
  rt_job_remaining_ = 0;
  cpu_.set_burst(0);
}

void Container::release_rt_job() {
  if (!rt_.valid() || state_ != State::kRunning) return;
  // deadline <= period (RtSpec::valid), so the previous job's deadline
  // check has already fired; any leftover remainder here was abandoned
  // there and lateness never cascades across jobs.
  rt_job_remaining_ = rt_.runtime;
  ++rt_job_seq_;
  ++rt_jobs_released_;
  const std::uint64_t seq = rt_job_seq_;
  rt_deadline_check_ = sim_.schedule_after(
      rt_.deadline, [this, seq] { check_rt_deadline(seq); });
}

void Container::check_rt_deadline(std::uint64_t job_seq) {
  if (job_seq != rt_job_seq_ || rt_job_remaining_ <= 0) return;
  ++deadline_misses_;
  const sim::Duration remaining = rt_job_remaining_;
  rt_job_remaining_ = 0;  // abandon the late job: one miss per job, no pileup
  if (on_deadline_miss_) on_deadline_miss_(remaining);
}

void Container::enqueue_startup_work() {
  if (spec_.startup_cpu <= 0) return;
  // Warmup burns core-time across the container's worker threads; split it
  // so it can exploit the full parallelism like a real JIT/startup phase.
  const auto lanes = std::max(1, static_cast<int>(spec_.max_parallelism));
  const sim::Duration per_lane = spec_.startup_cpu / lanes;
  for (int i = 0; i < lanes; ++i) {
    WorkItem item;
    item.remaining = std::max<sim::Duration>(per_lane, 1);
    item.mem = 0;
    queue_.push_back(std::move(item));
  }
}

bool Container::submit(sim::Duration cpu_cost, memcg::Bytes mem_footprint,
                       Completion on_done) {
  if (state_ != State::kRunning) return false;
  WorkItem item;
  item.remaining = std::max<sim::Duration>(cpu_cost, 1);
  item.mem = mem_footprint;
  item.on_done = std::move(on_done);
  queue_.push_back(std::move(item));
  return true;
}

void Container::adjust_resident(memcg::Bytes delta) {
  if (state_ != State::kRunning) return;
  if (delta >= 0) {
    const memcg::ChargeResult charge = mem_.try_charge(delta);
    if (charge == memcg::ChargeResult::kOom) {
      oom_kill();
      return;
    }
    if (charge == memcg::ChargeResult::kRescued) stall_for(spec_.oom_rescue_stall);
    resident_ += delta;
  } else {
    const memcg::Bytes release = std::min<memcg::Bytes>(-delta, resident_);
    mem_.uncharge(release);
    resident_ -= release;
  }
}

double Container::cpu_demand(sim::Duration slice) {
  if (state_ != State::kRunning || sim_.now() < stalled_until_) return 0.0;
  const double slice_f = static_cast<double>(slice);
  double demand = 0.0;
  double lanes = spec_.max_parallelism;
  if (rt_job_remaining_ > 0 && lanes > 0.0) {
    // The RT job runs single-threaded on its own lane ahead of FIFO work.
    const double want =
        std::min(static_cast<double>(rt_job_remaining_), slice_f) / slice_f;
    demand += std::min(want, 1.0);
    lanes -= 1.0;
  }
  for (const WorkItem& item : queue_) {
    if (lanes <= 0.0) break;
    const double want =
        std::min(static_cast<double>(item.remaining), slice_f) / slice_f;
    demand += std::min(want, lanes);
    lanes -= 1.0;
  }
  return std::min(demand, spec_.max_parallelism);
}

void Container::run_for(sim::Duration granted, sim::Duration slice) {
  if (state_ != State::kRunning || granted <= 0) return;
  // The RT job is served before any best-effort work: within the container
  // the reservation has strict priority, mirroring the scheduler's RT tier
  // across containers.
  if (rt_job_remaining_ > 0) {
    const sim::Duration give = std::min({rt_job_remaining_, slice, granted});
    rt_job_remaining_ -= give;
    granted -= give;
    if (rt_job_remaining_ == 0) ++rt_jobs_completed_;
    if (granted <= 0) return;
  }
  // Drain FIFO: each item is single-threaded so it can absorb at most
  // `slice` of core-time in one slice; surplus flows to the next item.
  std::vector<Completion> finished;
  const std::size_t n = queue_.size();
  for (std::size_t i = 0; i < n && granted > 0; ++i) {
    WorkItem& item = queue_[i];
    if (item.remaining == 0) continue;
    if (!item.charged) {
      // The working set is allocated as the request starts executing. This
      // is where the pre-OOM kernel hook fires under memory pressure.
      const memcg::ChargeResult charge = mem_.try_charge(item.mem);
      if (charge == memcg::ChargeResult::kOom) {
        // The OOM killer takes the whole container down; oom_kill() fails
        // every queued item (including this one) and schedules the restart.
        oom_kill();
        return;
      }
      if (charge == memcg::ChargeResult::kRescued) {
        stall_for(spec_.oom_rescue_stall);
      }
      item.charged = true;
    }
    const sim::Duration give = std::min({item.remaining, slice, granted});
    item.remaining -= give;
    granted -= give;
    if (item.remaining == 0) {
      mem_.uncharge(item.mem);
      ++completed_;
      finished.push_back(std::move(item.on_done));
    }
  }
  std::erase_if(queue_, [](const WorkItem& w) { return w.remaining == 0; });
  // Invoke completions only after the queue is consistent: callbacks may
  // submit new work here or even OOM-kill this container.
  for (Completion& done : finished) {
    if (done) done(true);
  }
}

void Container::stall_for(sim::Duration d) {
  stalled_until_ = std::max(stalled_until_, sim_.now() + d);
}

void Container::oom_kill() {
  if (state_ != State::kRunning) return;
  ++oom_kill_count_;
  if (on_oom_kill_) on_oom_kill_();
  kill_common();
}

void Container::evict_restart(double new_cores, memcg::Bytes new_mem_limit) {
  if (state_ != State::kRunning) return;
  ++evictions_;
  cpu_.set_limit_cores(new_cores);
  mem_.set_limit(new_mem_limit);
  kill_common();
}

void Container::kill_common() {
  state_ = State::kRestarting;
  // An in-flight RT job dies with the container: that is a drop (the kill's
  // fault), not a deadline miss (an allocator decision) — cancel the check.
  rt_job_remaining_ = 0;
  sim_.cancel(rt_deadline_check_);
  std::vector<Completion> failed;
  failed.reserve(queue_.size());
  for (WorkItem& item : queue_) {
    ++dropped_;
    failed.push_back(std::move(item.on_done));
  }
  queue_.clear();
  mem_.reset_usage();
  resident_ = 0;
  cpu_.reset_bandwidth();
  sim_.schedule_after(spec_.restart_delay, [this] { finish_restart(); });
  for (Completion& done : failed) {
    if (done) done(false);
  }
}

void Container::finish_restart() {
  state_ = State::kRunning;
  resident_ = spec_.base_memory;
  mem_.force_charge(resident_);
  enqueue_startup_work();
}

}  // namespace escra::cluster
