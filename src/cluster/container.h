// A container: a CFS cgroup + a memory cgroup + a FIFO work queue.
//
// The application layer submits work items (a request's CPU cost at one
// service, or a serverless action body); the node scheduler drains them
// through the container's CFS quota. Memory is charged per item on submit
// and released on completion, on top of a resident base footprint, so a
// container's usage rises and falls with its in-flight load — the dynamics
// that make static limits wasteful and coarse autoscalers late.
//
// When a charge overflows the memory limit the cgroup's pre-OOM hook runs
// (the Escra rescue path). If no hook is installed, or the hook declines,
// the container is OOM-killed: all queued work fails and the container
// restarts after a cold-start delay — the cost Escra's event-driven scaling
// is designed to avoid.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "cfs/cgroup.h"
#include "cfs/node_scheduler.h"
#include "cfs/rt.h"
#include "memcg/mem_cgroup.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::cluster {

using ContainerId = std::uint32_t;

// Static description of a container (the "YAML" fields that matter here).
struct ContainerSpec {
  std::string name;
  // Worker-thread parallelism: how many cores the container can use at once.
  double max_parallelism = 4.0;
  // Resident memory after start (image + runtime baseline).
  memcg::Bytes base_memory = 64 * memcg::kMiB;
  // Cold restart time after an OOM kill (image pull cached; process restart,
  // reconnects, warmup).
  sim::Duration restart_delay = sim::seconds(3);
  // Stall applied to the whole container while an OOM rescue round-trips to
  // the Controller (orders of magnitude cheaper than the restart).
  sim::Duration oom_rescue_stall = sim::milliseconds(1);
  // Core-time burned right after (re)start — JIT warmup, cache priming,
  // connection setup. This is what inflates profiled "maximum usage" and
  // makes peak-based static limits so much larger than steady-state demand.
  sim::Duration startup_cpu = 0;
};

class Container final : public cfs::CpuConsumer {
 public:
  enum class State { kRunning, kRestarting };

  // Completion callback: ok=true when the work finished, false when it was
  // dropped by an OOM kill.
  using Completion = std::function<void(bool ok)>;
  // Fired when the container OOM-kills (for experiment accounting).
  using OomKillObserver = std::function<void()>;

  Container(sim::Simulation& sim, ContainerId id, ContainerSpec spec,
            sim::Duration cfs_period, double initial_cores,
            memcg::Bytes initial_mem_limit);

  ContainerId id() const { return id_; }
  const std::string& name() const { return spec_.name; }
  const ContainerSpec& spec() const { return spec_; }
  State state() const { return state_; }
  bool running() const { return state_ == State::kRunning; }

  // --- application interface ---

  // Enqueues a work item costing `cpu_cost` core-time. `mem_footprint`
  // bytes are charged when the item *starts executing* (a queued request
  // holds a socket, not heap) and released at completion. Returns false
  // (and does not invoke `on_done`) if the container is restarting; returns
  // true and eventually calls `on_done` otherwise. The deferred charge may
  // OOM-kill the container when it fires, in which case `on_done(false)`
  // fires along with every other queued item's callback.
  bool submit(sim::Duration cpu_cost, memcg::Bytes mem_footprint,
              Completion on_done);

  // Adjusts the container's resident memory by `delta` (e.g. a cache or
  // model loaded outside any single request). Can trigger the same OOM path.
  void adjust_resident(memcg::Bytes delta);

  std::size_t queue_depth() const { return queue_.size(); }

  // Resident (non-request) memory currently charged: base footprint plus
  // adjust_resident deltas. Lets the invariant checker distinguish a
  // legitimate usage > limit (force-charged residency after a restart into
  // a reclaimed limit) from an accounting bug.
  memcg::Bytes resident() const { return resident_; }

  // --- cgroups (what the Escra Agent manipulates) ---
  cfs::CfsCgroup& cpu_cgroup() override { return cpu_; }
  const cfs::CfsCgroup& cpu_cgroup() const { return cpu_; }
  memcg::MemCgroup& mem_cgroup() { return mem_; }
  const memcg::MemCgroup& mem_cgroup() const { return mem_; }

  // --- CpuConsumer ---
  double cpu_demand(sim::Duration slice) override;
  void run_for(sim::Duration granted, sim::Duration slice) override;

  // --- lifecycle ---
  void set_oom_kill_observer(OomKillObserver obs) { on_oom_kill_ = std::move(obs); }
  std::uint64_t oom_kill_count() const { return oom_kill_count_; }
  std::uint64_t completed_items() const { return completed_; }
  std::uint64_t dropped_items() const { return dropped_; }

  // Stalls the container for `d` (used by the OOM rescue round trip).
  void stall_for(sim::Duration d);

  // Evicts and restarts the container with new limits (how VPA resizes a
  // pod: the pod is killed and recreated, dropping in-flight work). Not
  // counted as an OOM kill.
  void evict_restart(double new_cores, memcg::Bytes new_mem_limit);
  std::uint64_t eviction_count() const { return evictions_; }

  // --- real-time reservation (mixed-criticality class) ---
  //
  // An admitted RT container releases one job of `spec.runtime` core-time
  // every `spec.period`; the job must finish within `spec.deadline` of its
  // release or the miss observer fires (once per job; the late job is then
  // abandoned so misses never cascade). RT work is served *before* the FIFO
  // queue and the scheduler's RT tier serves this container before
  // best-effort peers, so an admitted reservation misses only when its own
  // cgroup quota is held below the floor — an allocator decision. Installing
  // a spec also sets the cgroup's burst to `runtime`, so a job released just
  // before a period refill is never starved by budget-edge quantization.
  ~Container();
  void set_rt(const cfs::RtSpec& spec);
  void clear_rt();
  bool realtime() const override { return rt_.valid(); }
  const cfs::RtSpec& rt() const { return rt_; }  // !valid() when not RT
  using DeadlineMissObserver =
      std::function<void(sim::Duration remaining_runtime)>;
  void set_deadline_miss_observer(DeadlineMissObserver obs) {
    on_deadline_miss_ = std::move(obs);
  }
  std::uint64_t rt_jobs_released() const { return rt_jobs_released_; }
  std::uint64_t rt_jobs_completed() const { return rt_jobs_completed_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }

 private:
  struct WorkItem {
    sim::Duration remaining = 0;
    memcg::Bytes mem = 0;
    bool charged = false;  // memory charged once execution starts
    Completion on_done;
  };

  void oom_kill();
  void kill_common();  // shared teardown for oom_kill / evict_restart
  void finish_restart();
  void enqueue_startup_work();
  void release_rt_job();
  void check_rt_deadline(std::uint64_t job_seq);

  sim::Simulation& sim_;
  ContainerId id_;
  ContainerSpec spec_;
  cfs::CfsCgroup cpu_;
  memcg::MemCgroup mem_;
  State state_ = State::kRunning;
  std::deque<WorkItem> queue_;
  sim::TimePoint stalled_until_ = 0;
  memcg::Bytes resident_ = 0;
  std::uint64_t oom_kill_count_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  OomKillObserver on_oom_kill_;

  // RT reservation state. rt_ is all-zero (invalid) when not admitted.
  cfs::RtSpec rt_;
  sim::EventHandle rt_release_timer_;
  sim::EventHandle rt_deadline_check_;
  sim::Duration rt_job_remaining_ = 0;  // core-time left in the current job
  std::uint64_t rt_job_seq_ = 0;        // current job number (0 = none yet)
  std::uint64_t rt_jobs_released_ = 0;
  std::uint64_t rt_jobs_completed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  DeadlineMissObserver on_deadline_miss_;
};

}  // namespace escra::cluster
