// The two serverless benchmark applications (Section VI-F).
//
// ImageProcess: a single-function app (read image -> process metadata,
// create thumbnail -> write result). Driven open-loop: one request every
// 0.8 s for 10 minutes, four iterations, each starting with a cold pool.
//
// GridSearch: a Lithops-style batch job — 960 hyperparameter-tuning tasks
// fanned out over up to ~115 worker pods; each task loads data from the
// store (I/O), fits/scores a classifier (CPU), and writes results back.
// The job's latency is the completion time of the last task. The I/O:CPU
// mix (~55% off-CPU) is what gives Escra room to cut aggregate CPU limits
// roughly in half without slowing the job.
#pragma once

#include <cstdint>
#include <functional>

#include "serverless/openwhisk.h"
#include "sim/time.h"

namespace escra::serverless {

// The ImageProcess user action.
ActionSpec make_image_process_action();

// One GridSearch task (one worker-pool work item).
ActionSpec make_grid_task_action();

// Fans `total_tasks` grid-task invocations into the platform at start and
// reports the job make-span.
class GridSearchJob {
 public:
  struct Params {
    std::size_t total_tasks = 960;
    // Lithops retries failed tasks; a task is abandoned after this many
    // attempts.
    int max_attempts = 5;
  };
  using JobDone = std::function<void(sim::Duration makespan)>;

  GridSearchJob(sim::Simulation& sim, OpenWhisk& platform, Params params,
                JobDone on_done);

  // Submits every task now (the Lithops map call).
  void start();

  std::size_t tasks_completed() const { return done_; }
  std::size_t tasks_failed() const { return failed_; }
  std::size_t retries() const { return retries_; }
  bool finished() const { return done_ + failed_ == params_.total_tasks; }

 private:
  void submit_task(int attempt);
  sim::Simulation& sim_;
  OpenWhisk& platform_;
  Params params_;
  JobDone on_done_;
  sim::TimePoint started_at_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace escra::serverless
