#include "serverless/openwhisk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace escra::serverless {

OpenWhisk::OpenWhisk(sim::Simulation& sim, cluster::Cluster& cluster,
                     OpenWhiskConfig config, sim::Rng rng)
    : sim_(sim), cluster_(cluster), config_(config), rng_(rng) {}

OpenWhisk::~OpenWhisk() {
  for (auto& pod : pods_) sim_.cancel(pod->reap_timer);
}

void OpenWhisk::attach_metrics(obs::MetricsRegistry& registry) {
  obs_invocations_ = &registry.counter("openwhisk.invocations");
  obs_cold_starts_ = &registry.counter("openwhisk.cold_starts");
  obs_completions_ = &registry.counter("openwhisk.completions");
  obs_pods_reaped_ = &registry.counter("openwhisk.pods_reaped");
  obs_pods_ = &registry.gauge("openwhisk.pods");
  obs_queue_depth_ = &registry.gauge("openwhisk.queue_depth");
  sync_pod_gauges();
}

void OpenWhisk::sync_pod_gauges() {
  if (obs_pods_ == nullptr) return;
  obs_pods_->set(static_cast<double>(pods_.size()));
  obs_queue_depth_->set(static_cast<double>(queue_.size()));
}

void OpenWhisk::register_action(ActionSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("action: empty name");
  actions_[spec.name] = std::move(spec);
}

OpenWhisk::Pod* OpenWhisk::find_idle_pod(const std::string& action) {
  for (auto& pod : pods_) {
    if (!pod->busy && !pod->warming && pod->action == action &&
        pod->container->running()) {
      return pod.get();
    }
  }
  return nullptr;
}

void OpenWhisk::invoke(const std::string& action, Done done) {
  if (!actions_.contains(action)) {
    throw std::invalid_argument("invoke: unknown action " + action);
  }
  Activation activation{action, std::move(done)};
  if (obs_invocations_ != nullptr) obs_invocations_->inc();

  if (Pod* warm = find_idle_pod(action)) {
    start_on_pod(*warm, std::move(activation));
    return;
  }
  if (pods_.size() < config_.max_pods) {
    // Cold start: create the pod container now (Escra's Watcher adopts it
    // here; the connection does not delay execution, Section IV-E), then
    // run after the runtime initializes.
    ++cold_starts_;
    if (obs_cold_starts_ != nullptr) obs_cold_starts_->inc();
    cluster::ContainerSpec cs;
    cs.name = action + "-pod-" + std::to_string(pods_.size());
    cs.max_parallelism = config_.pod_parallelism;
    cs.base_memory = config_.pod_base_mem;
    cs.restart_delay = sim::seconds(2);
    cluster::Container& c =
        cluster_.create_container(cs, config_.pod_cpu, config_.pod_mem);
    auto pod = std::make_unique<Pod>();
    pod->container = &c;
    pod->action = action;
    pod->warming = true;
    Pod* raw = pod.get();
    pods_.push_back(std::move(pod));
    sync_pod_gauges();
    sim_.schedule_after(config_.cold_start,
                        [this, raw, a = std::move(activation)]() mutable {
                          raw->warming = false;
                          start_on_pod(*raw, std::move(a));
                        });
    return;
  }
  // Pool full: activation queues in the invoker.
  queue_.push_back(std::move(activation));
  sync_pod_gauges();
}

void OpenWhisk::start_on_pod(Pod& pod, Activation activation) {
  pod.busy = true;
  sim_.cancel(pod.reap_timer);
  const ActionSpec& spec = actions_.at(activation.action);

  // Phase 1: input I/O (no CPU held).
  sim_.schedule_after(spec.io_before, [this, &pod, spec,
                                       done = std::move(activation.done)]() mutable {
    // Phase 2: CPU body holding the working set.
    sim::Duration cost = spec.cpu_cost;
    if (spec.cpu_sigma > 0.0) {
      const double sigma = spec.cpu_sigma;
      const double mu =
          std::log(static_cast<double>(spec.cpu_cost)) - sigma * sigma / 2.0;
      cost = std::max<sim::Duration>(
          sim::milliseconds(1),
          static_cast<sim::Duration>(rng_.lognormal(mu, sigma)));
    }
    if (!pod.container->running()) {
      // Pod was killed while this activation was in its I/O phase; fail it
      // now (submit would reject it and the continuation must not be lost).
      finish_on_pod(pod);
      if (done) done(false);
      return;
    }
    const bool accepted = pod.container->submit(
        cost, spec.working_mem,
        [this, &pod, spec, done = std::move(done)](bool ok) mutable {
          if (!ok) {
            finish_on_pod(pod);
            if (done) done(false);
            return;
          }
          // Phase 3: output I/O.
          sim_.schedule_after(spec.io_after,
                              [this, &pod, done = std::move(done)]() mutable {
                                ++completed_;
                                if (obs_completions_ != nullptr) {
                                  obs_completions_->inc();
                                }
                                finish_on_pod(pod);
                                if (done) done(true);
                              });
        });
    if (!accepted) {
      finish_on_pod(pod);
      if (done) done(false);
    }
  });
}

void OpenWhisk::finish_on_pod(Pod& pod) {
  pod.busy = false;
  pod.idle_since = sim_.now();
  // Drain the queue first; otherwise start the idle-reap clock.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->action == pod.action && pod.container->running()) {
      Activation next = std::move(*it);
      queue_.erase(it);
      sync_pod_gauges();
      start_on_pod(pod, std::move(next));
      return;
    }
  }
  arm_reap_timer(pod);
}

void OpenWhisk::arm_reap_timer(Pod& pod) {
  sim_.cancel(pod.reap_timer);
  pod.reap_timer = sim_.schedule_after(config_.idle_timeout, [this, &pod] {
    if (!pod.busy && !pod.warming) reap_pod(pod);
  });
}

void OpenWhisk::reap_pod(Pod& pod) {
  if (reap_hook_) reap_hook_(*pod.container);
  cluster_.remove_container(*pod.container);
  std::erase_if(pods_, [&](const auto& p) { return p.get() == &pod; });
  if (obs_pods_reaped_ != nullptr) obs_pods_reaped_->inc();
  sync_pod_gauges();
}

std::size_t OpenWhisk::busy_pods() const {
  std::size_t n = 0;
  for (const auto& pod : pods_) {
    if (pod->busy || pod->warming) ++n;
  }
  return n;
}

double OpenWhisk::aggregate_cpu_limit() const {
  double total = 0.0;
  for (const auto& pod : pods_) {
    total += pod->container->cpu_cgroup().limit_cores();
  }
  return total;
}

memcg::Bytes OpenWhisk::aggregate_mem_limit() const {
  memcg::Bytes total = 0;
  for (const auto& pod : pods_) total += pod->container->mem_cgroup().limit();
  return total;
}

}  // namespace escra::serverless
