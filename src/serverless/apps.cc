#include "serverless/apps.h"

#include <stdexcept>

namespace escra::serverless {

ActionSpec make_image_process_action() {
  ActionSpec a;
  a.name = "image-process";
  a.io_before = sim::milliseconds(150);   // fetch image from the data store
  a.cpu_cost = sim::milliseconds(1200);   // metadata + thumbnail
  a.cpu_sigma = 0.30;
  a.io_after = sim::milliseconds(100);    // write thumbnail back
  a.working_mem = 110 * memcg::kMiB;      // decoded image + scratch
  return a;
}

ActionSpec make_grid_task_action() {
  ActionSpec a;
  a.name = "grid-task";
  a.io_before = sim::seconds(10);         // load dataset shard from Redis
  a.cpu_cost = sim::seconds(13);          // fit + score one parameter cell
  a.cpu_sigma = 0.20;
  a.io_after = sim::seconds(5);           // push scores back
  a.working_mem = 140 * memcg::kMiB;      // vectorized reviews + model
  return a;
}

GridSearchJob::GridSearchJob(sim::Simulation& sim, OpenWhisk& platform,
                             Params params, JobDone on_done)
    : sim_(sim), platform_(platform), params_(params), on_done_(std::move(on_done)) {
  if (params_.total_tasks == 0) {
    throw std::invalid_argument("GridSearchJob: zero tasks");
  }
}

void GridSearchJob::start() {
  started_at_ = sim_.now();
  for (std::size_t t = 0; t < params_.total_tasks; ++t) submit_task(1);
}

void GridSearchJob::submit_task(int attempt) {
  platform_.invoke("grid-task", [this, attempt](bool ok) {
    if (ok) {
      ++done_;
    } else if (attempt < params_.max_attempts) {
      // Lithops re-queues a failed task (e.g. the worker pod OOMed).
      ++retries_;
      submit_task(attempt + 1);
      return;
    } else {
      ++failed_;
    }
    if (finished() && on_done_) {
      on_done_(sim_.now() - started_at_);
      on_done_ = nullptr;
    }
  });
}

}  // namespace escra::serverless
