// OpenWhisk-like serverless platform model (Section IV-E / VI-F).
//
// Serverless functions ("user actions") run in per-action pods. An
// invocation reuses a warm idle pod when one exists; otherwise, if the pool
// has room, a new pod cold-starts (container creation + runtime init);
// otherwise the activation queues. Idle pods are reaped after a timeout.
// Every pod is created with the OpenWhisk defaults the paper configures:
// 1 vCPU and 256 MiB per pod.
//
// An action body is modelled as I/O (data-store reads/writes — pure delay,
// no CPU) around a CPU phase that holds a working-set memory charge. This
// mix is what lets Escra cut aggregate CPU limits ~2x without hurting
// latency: pods spend much of their wall time off-CPU.
//
// Escra integration (Section IV-E): pods are ordinary cluster containers,
// so an enabled ContainerWatcher adopts them at creation; a reap callback
// lets the experiment release them from the Distributed Container before
// removal.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace escra::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}

namespace escra::serverless {

// A registered serverless function.
struct ActionSpec {
  std::string name;
  // Pre-CPU I/O (e.g. read input from the data store).
  sim::Duration io_before = sim::milliseconds(80);
  // Mean CPU cost of the body; log-normal jitter with `cpu_sigma`.
  sim::Duration cpu_cost = sim::milliseconds(600);
  double cpu_sigma = 0.25;
  // Post-CPU I/O (e.g. write result).
  sim::Duration io_after = sim::milliseconds(50);
  // Working set charged to the pod for the duration of the body.
  memcg::Bytes working_mem = 120 * memcg::kMiB;
};

struct OpenWhiskConfig {
  // OpenWhisk invoker defaults from the paper's configuration.
  double pod_cpu = 1.0;                              // 1 vCPU request+limit
  memcg::Bytes pod_mem = 256 * memcg::kMiB;          // per-pod memory
  memcg::Bytes pod_base_mem = 60 * memcg::kMiB;      // runtime baseline
  sim::Duration cold_start = sim::milliseconds(650);  // pod creation + init
  sim::Duration idle_timeout = sim::seconds(60);     // warm-pod reap
  std::size_t max_pods = 128;                        // invoker containerPool
  double pod_parallelism = 1.0;  // one activation per pod at a time
};

class OpenWhisk {
 public:
  using Done = std::function<void(bool ok)>;
  // Called just before a pod's container is removed (reap), so Escra can
  // release it from the Distributed Container.
  using PodReapHook = std::function<void(cluster::Container&)>;

  OpenWhisk(sim::Simulation& sim, cluster::Cluster& cluster,
            OpenWhiskConfig config, sim::Rng rng);
  ~OpenWhisk();

  OpenWhisk(const OpenWhisk&) = delete;
  OpenWhisk& operator=(const OpenWhisk&) = delete;

  void register_action(ActionSpec spec);

  // Invokes an action; `done` fires at end-to-end completion (queueing +
  // cold start + I/O + CPU). ok=false if the activation was dropped (pod
  // OOM-killed mid-run).
  void invoke(const std::string& action, Done done);

  void set_pod_reap_hook(PodReapHook hook) { reap_hook_ = std::move(hook); }

  // --- aggregate metrics (the serverless evaluation's main axis) ---
  std::size_t pod_count() const { return pods_.size(); }
  std::size_t busy_pods() const;
  double aggregate_cpu_limit() const;       // Σ pod CPU limits, in cores
  memcg::Bytes aggregate_mem_limit() const; // Σ pod memory limits
  std::uint64_t cold_starts() const { return cold_starts_; }
  std::uint64_t completed() const { return completed_; }
  std::size_t queued() const { return queue_.size(); }

  // Observability: registers openwhisk.* counters/gauges (invocations,
  // cold_starts, completions, pods_reaped, pods, queue_depth) and mirrors
  // platform activity into them. Call at most once per registry.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct Pod {
    cluster::Container* container = nullptr;
    std::string action;
    bool busy = false;
    bool warming = false;  // cold start in progress
    sim::TimePoint idle_since = 0;
    sim::EventHandle reap_timer;
  };
  struct Activation {
    std::string action;
    Done done;
  };

  void start_on_pod(Pod& pod, Activation activation);
  void finish_on_pod(Pod& pod);
  Pod* find_idle_pod(const std::string& action);
  void reap_pod(Pod& pod);
  void arm_reap_timer(Pod& pod);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  OpenWhiskConfig config_;
  sim::Rng rng_;
  std::unordered_map<std::string, ActionSpec> actions_;
  std::vector<std::unique_ptr<Pod>> pods_;
  std::deque<Activation> queue_;
  PodReapHook reap_hook_;
  std::uint64_t cold_starts_ = 0;
  std::uint64_t completed_ = 0;

  void sync_pod_gauges();
  obs::Counter* obs_invocations_ = nullptr;
  obs::Counter* obs_cold_starts_ = nullptr;
  obs::Counter* obs_completions_ = nullptr;
  obs::Counter* obs_pods_reaped_ = nullptr;
  obs::Gauge* obs_pods_ = nullptr;
  obs::Gauge* obs_queue_depth_ = nullptr;
};

}  // namespace escra::serverless
