#include "cfs/cgroup.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace escra::cfs {

namespace {
sim::Duration quota_for(double cores, sim::Duration period) {
  return static_cast<sim::Duration>(
      std::llround(cores * static_cast<double>(period)));
}
}  // namespace

CfsCgroup::CfsCgroup(CgroupId id, sim::Duration period, double initial_cores)
    : id_(id), period_(period) {
  if (period <= 0) throw std::invalid_argument("CfsCgroup: period <= 0");
  if (initial_cores < 0.0) {
    throw std::invalid_argument("CfsCgroup: negative core limit");
  }
  cores_ = initial_cores;
  quota_ = quota_for(cores_, period_);
  runtime_remaining_ = quota_;
}

void CfsCgroup::set_limit_cores(double cores) {
  if (cores < 0.0) throw std::invalid_argument("set_limit_cores: negative");
  const sim::Duration new_quota = quota_for(cores, period_);
  const sim::Duration delta = new_quota - quota_;
  cores_ = cores;
  quota_ = new_quota;
  runtime_remaining_ = std::max<sim::Duration>(0, runtime_remaining_ + delta);
  if (throttled_ && runtime_remaining_ > 0) {
    // A mid-period quota raise unthrottles the group; the throttle flag for
    // this period stays set because a throttle *did* occur (the telemetry
    // must report it so the allocator can react).
  }
}

void CfsCgroup::consume(sim::Duration core_time, bool wanted_more) {
  if (core_time < 0) throw std::invalid_argument("consume: negative time");
  if (core_time > runtime_remaining_) {
    throw std::logic_error("consume: exceeds remaining runtime");
  }
  runtime_remaining_ -= core_time;
  consumed_ += core_time;
  total_consumed_ += core_time;
  if (wanted_more && runtime_remaining_ == 0) throttled_ = true;
}

void CfsCgroup::set_burst(sim::Duration burst) {
  if (burst < 0) throw std::invalid_argument("set_burst: negative");
  burst_ = burst;
  // Shrinking the burst (RT reservation torn down) claws back any banked
  // runtime above the new budget, as the kernel clamps `runtime` when
  // cfs_burst_us is lowered mid-period.
  if (runtime_remaining_ > quota_ + burst_) {
    runtime_remaining_ = quota_ + burst_;
  }
}

void CfsCgroup::end_period(sim::TimePoint now) {
  PeriodStats stats;
  stats.cgroup = id_;
  stats.period_end = now;
  stats.quota = quota_;
  // Telemetry reports unused runtime relative to the base quota, as the
  // kernel's `runtime` variable does (burst carry-over is a refill detail).
  stats.unused = std::clamp<sim::Duration>(runtime_remaining_, 0, quota_);
  stats.throttled = throttled_;
  ++periods_;
  if (throttled_) ++throttle_count_;
  // A lying tenant forges the exported record here; internal accounting
  // above stays truthful. The observability counters follow the *reported*
  // stream (they model the Agent's view of the wire), keeping the invariant
  // checker's counter<->trace pairing 1:1 even under forged telemetry.
  if (stats_mutator_) stats_mutator_(stats);
  if (obs_periods_ != nullptr) obs_periods_->inc();
  if (stats.throttled && obs_throttled_ != nullptr) obs_throttled_->inc();
  if (hook_) hook_(stats);
  // Refill (the CFS timer callback path): the next period gets the quota
  // plus any unused runtime carried over, capped at the burst budget.
  const sim::Duration carried =
      std::min(burst_, std::max<sim::Duration>(0, runtime_remaining_));
  runtime_remaining_ = quota_ + carried;
  consumed_ = 0;
  throttled_ = false;
}

void CfsCgroup::reset_bandwidth() {
  runtime_remaining_ = quota_;
  consumed_ = 0;
  throttled_ = false;
}

bool CfsCgroup::bandwidth_state_valid() const {
  if (runtime_remaining_ < 0) return false;
  if (runtime_remaining_ > quota_ + burst_) return false;
  if (quota_ != quota_for(cores_, period_)) return false;
  if (consumed_ < 0 || total_consumed_ < consumed_) return false;
  return true;
}

}  // namespace escra::cfs
