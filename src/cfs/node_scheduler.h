// Per-node CPU scheduler.
//
// Advances simulated CPU execution on one worker node in fixed slices
// (default 10 ms, ten slices per 100 ms CFS period). Each slice it asks every
// attached consumer (container) how many cores of work it could use, grants
// core-time max-min fairly subject to (a) the node's core count and (b) each
// cgroup's remaining CFS runtime, then lets the consumer advance its work by
// the granted core-time. Period boundaries fire each cgroup's telemetry hook.
//
// This reproduces the two CPU-side costs the paper's evaluation hinges on:
// throttling (quota exhausted mid-period while work is queued) and node
// contention (sum of demands exceeding the core count).
#pragma once

#include <cstddef>
#include <vector>

#include "cfs/cgroup.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace escra::cfs {

// Something that consumes CPU through a CFS cgroup (a container).
class CpuConsumer {
 public:
  virtual ~CpuConsumer() = default;

  // The cgroup through which this consumer's runtime is accounted.
  virtual CfsCgroup& cpu_cgroup() = 0;

  // Number of cores' worth of work the consumer could execute during the
  // next `slice` if unconstrained (bounded by pending work and its own
  // parallelism). May be fractional.
  virtual double cpu_demand(sim::Duration slice) = 0;

  // Advances the consumer's work by `granted` core-time within a slice of
  // length `slice`. `granted <= cpu_demand(slice) * slice` (up to rounding).
  virtual void run_for(sim::Duration granted, sim::Duration slice) = 0;

  // True for an admitted real-time consumer: the scheduler water-fills the
  // RT tier against the full node first, and best-effort consumers share
  // only what remains (the deadline-scheduler model: an RT cgroup's
  // reservation-backed demand is never squeezed by best-effort contention,
  // only by its own quota).
  virtual bool realtime() const { return false; }
};

class NodeCpuScheduler {
 public:
  struct Config {
    double cores = 20.0;                              // node core count
    sim::Duration slice = sim::milliseconds(10);      // scheduling quantum
    sim::Duration period = sim::milliseconds(100);    // CFS period
  };

  NodeCpuScheduler(sim::Simulation& sim, Config config);
  ~NodeCpuScheduler();

  NodeCpuScheduler(const NodeCpuScheduler&) = delete;
  NodeCpuScheduler& operator=(const NodeCpuScheduler&) = delete;

  void attach(CpuConsumer* consumer);
  void detach(CpuConsumer* consumer);

  double cores() const { return config_.cores; }
  sim::Duration period() const { return config_.period; }

  // Node CPU utilization in the last completed slice, in cores.
  double last_slice_usage_cores() const { return last_usage_cores_; }

  // Max-min fair allocation: given demands (cores) and capacity (cores),
  // returns the grant per consumer. Exposed for unit testing.
  static std::vector<double> max_min_fair(const std::vector<double>& demands,
                                          double capacity);

 private:
  void on_slice();

  sim::Simulation& sim_;
  Config config_;
  std::vector<CpuConsumer*> consumers_;
  sim::EventHandle tick_;
  sim::Duration into_period_ = 0;
  double last_usage_cores_ = 0.0;
};

}  // namespace escra::cfs
