// Real-time reservation model (mixed-criticality container class).
//
// An RT container declares a (runtime, deadline, period) triple, the
// SCHED_DEADLINE-style contract of polena/polenaRT-era deadline-scheduled
// containers: every `period` it releases a job needing `runtime` of
// core-time that must complete within `deadline` of its release. The CPU
// bandwidth the contract implies — the floor admission reserves and the
// allocator may never reclaim — is
//
//     floor_cores = runtime / min(deadline, period)
//
// (the density bound: constrained deadlines, deadline <= period, need the
// denser rate; implicit deadlines reduce to runtime / period utilization).
//
// The struct lives in src/cfs because the deadline *scheduler model* does:
// NodeCpuScheduler's RT tier and CfsCgroup's burst make the reservation
// schedulable, cluster::Container's periodic job machinery detects misses,
// and the controller does admission arithmetic on the same triple.
#pragma once

#include "sim/time.h"

namespace escra::cfs {

struct RtSpec {
  sim::Duration runtime = 0;   // core-time needed per job
  sim::Duration deadline = 0;  // relative deadline from job release
  sim::Duration period = 0;    // job release period

  // A spec is well-formed when every leg is positive, the job is feasible
  // in isolation (runtime fits inside the deadline), and deadlines are
  // constrained (deadline <= period) — the standard SCHED_DEADLINE shape,
  // which also guarantees at most one job in flight per container.
  bool valid() const {
    return runtime > 0 && deadline > 0 && period > 0 && runtime <= deadline &&
           deadline <= period;
  }

  // The reservation's CPU floor in cores (density bound; see header).
  double floor_cores() const {
    const sim::Duration window = deadline < period ? deadline : period;
    if (window <= 0) return 0.0;
    return static_cast<double>(runtime) / static_cast<double>(window);
  }

  bool operator==(const RtSpec&) const = default;
};

}  // namespace escra::cfs
