#include "cfs/node_scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace escra::cfs {

NodeCpuScheduler::NodeCpuScheduler(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  if (config_.cores <= 0.0) throw std::invalid_argument("node cores <= 0");
  if (config_.slice <= 0 || config_.period <= 0 ||
      config_.period % config_.slice != 0) {
    throw std::invalid_argument("period must be a positive multiple of slice");
  }
  tick_ = sim_.schedule_every(sim_.now() + config_.slice, config_.slice,
                              [this] { on_slice(); });
}

NodeCpuScheduler::~NodeCpuScheduler() { sim_.cancel(tick_); }

void NodeCpuScheduler::attach(CpuConsumer* consumer) {
  if (consumer == nullptr) throw std::invalid_argument("attach: null consumer");
  consumers_.push_back(consumer);
}

void NodeCpuScheduler::detach(CpuConsumer* consumer) {
  std::erase(consumers_, consumer);
}

std::vector<double> NodeCpuScheduler::max_min_fair(
    const std::vector<double>& demands, double capacity) {
  std::vector<double> grant(demands.size(), 0.0);
  double remaining = capacity;
  std::vector<std::size_t> unsatisfied;
  unsatisfied.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] > 0.0) unsatisfied.push_back(i);
  }
  // Water-filling: repeatedly hand each unsatisfied consumer an equal share;
  // consumers whose demand is met drop out and return their excess.
  while (!unsatisfied.empty() && remaining > 1e-12) {
    const double share = remaining / static_cast<double>(unsatisfied.size());
    double given = 0.0;
    std::vector<std::size_t> next;
    next.reserve(unsatisfied.size());
    for (const std::size_t i : unsatisfied) {
      const double want = demands[i] - grant[i];
      const double take = std::min(want, share);
      grant[i] += take;
      given += take;
      if (demands[i] - grant[i] > 1e-12) next.push_back(i);
    }
    remaining -= given;
    if (given <= 1e-12) break;  // everyone satisfied
    unsatisfied = std::move(next);
  }
  return grant;
}

void NodeCpuScheduler::on_slice() {
  const sim::Duration slice = config_.slice;
  const double slice_s = static_cast<double>(slice);

  // 1. Collect demands, capped by each cgroup's remaining runtime. Track
  //    whether quota (not the raw workload) was the binding constraint; that
  //    distinction drives the CFS throttle flag.
  std::vector<double> demands(consumers_.size(), 0.0);
  std::vector<bool> quota_capped(consumers_.size(), false);
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    CpuConsumer& c = *consumers_[i];
    const double raw = std::max(0.0, c.cpu_demand(slice));
    const double quota_cores =
        static_cast<double>(c.cpu_cgroup().runtime_remaining()) / slice_s;
    demands[i] = std::min(raw, quota_cores);
    quota_capped[i] = raw > quota_cores + 1e-12;
  }

  // 2. Two-tier split: the RT tier water-fills against the full node first
  //    (deadline class — best-effort contention can never squeeze it), then
  //    best-effort consumers share max-min fairly what remains. With no RT
  //    consumers attached this reduces bit-for-bit to the flat split.
  std::vector<double> grants(consumers_.size(), 0.0);
  bool any_rt = false;
  for (const CpuConsumer* c : consumers_) {
    if (c->realtime()) {
      any_rt = true;
      break;
    }
  }
  if (!any_rt) {
    grants = max_min_fair(demands, config_.cores);
  } else {
    std::vector<double> rt_demands(consumers_.size(), 0.0);
    std::vector<double> be_demands(consumers_.size(), 0.0);
    for (std::size_t i = 0; i < consumers_.size(); ++i) {
      (consumers_[i]->realtime() ? rt_demands : be_demands)[i] = demands[i];
    }
    const std::vector<double> rt_grants =
        max_min_fair(rt_demands, config_.cores);
    double rt_used = 0.0;
    for (const double g : rt_grants) rt_used += g;
    const std::vector<double> be_grants =
        max_min_fair(be_demands, std::max(0.0, config_.cores - rt_used));
    for (std::size_t i = 0; i < consumers_.size(); ++i) {
      grants[i] = consumers_[i]->realtime() ? rt_grants[i] : be_grants[i];
    }
  }

  // 3. Charge runtime and let each consumer advance.
  double used = 0.0;
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    CfsCgroup& cg = consumers_[i]->cpu_cgroup();
    auto granted = static_cast<sim::Duration>(std::floor(grants[i] * slice_s));
    granted = std::min(granted, cg.runtime_remaining());
    cg.consume(granted, quota_capped[i]);
    if (granted > 0) consumers_[i]->run_for(granted, slice);
    used += static_cast<double>(granted) / slice_s;
  }
  last_usage_cores_ = used;

  // 4. Period boundary: fire telemetry hooks and refill.
  into_period_ += slice;
  if (into_period_ >= config_.period) {
    into_period_ = 0;
    const sim::TimePoint now = sim_.now();
    for (CpuConsumer* c : consumers_) c->cpu_cgroup().end_period(now);
  }
}

}  // namespace escra::cfs
