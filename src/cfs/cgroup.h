// Model of the Linux CFS bandwidth controller for one cgroup.
//
// Linux cpu.cfs_quota_us / cpu.cfs_period_us semantics: each period the
// cgroup's runtime budget ("quota", in microseconds of core-time) is
// refilled; threads consume runtime as they execute; when runtime reaches
// zero while work remains runnable the group is *throttled* until the next
// refill. Escra's kernel hook exports, at each period boundary, exactly
// three facts: the quota, the unused runtime (the CFS `runtime` variable),
// and whether the group was throttled in the period (Section IV-B). This
// class reproduces that state machine and fires the hook.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace escra::obs {
class Counter;
}

namespace escra::cfs {

using CgroupId = std::uint32_t;

// The per-period telemetry record produced by the kernel hook.
struct PeriodStats {
  CgroupId cgroup = 0;
  sim::TimePoint period_end = 0;
  sim::Duration quota = 0;   // core-time budget for the period (us)
  sim::Duration unused = 0;  // unconsumed runtime at period end (us, >= 0)
  bool throttled = false;    // ran out of runtime while runnable
};

class CfsCgroup {
 public:
  // Invoked at every period boundary with that period's stats.
  using PeriodHook = std::function<void(const PeriodStats&)>;

  CfsCgroup(CgroupId id, sim::Duration period, double initial_cores);

  CgroupId id() const { return id_; }
  sim::Duration period() const { return period_; }

  // --- limit management (what the Escra Agent manipulates) ---

  // Sets the CPU limit in cores. Takes effect immediately: the remaining
  // runtime in the current period is adjusted by the quota delta, mirroring
  // a cfs_quota_us write. A raise can un-throttle the group mid-period.
  void set_limit_cores(double cores);
  double limit_cores() const { return cores_; }
  // Quota in microseconds of core-time per period.
  sim::Duration quota() const { return quota_; }

  // CFS burst (cpu.cfs_burst_us, Linux >= 5.14): unused runtime from one
  // period carries into the next, up to `burst` microseconds of core-time
  // on top of the quota. Lets a statically-limited group absorb sub-second
  // spikes without a limit change — the kernel's own partial answer to the
  // problem Escra solves, ablated in bench/ablation_cfs_burst.
  void set_burst(sim::Duration burst);
  sim::Duration burst() const { return burst_; }

  // --- scheduler interface (driven by NodeCpuScheduler each slice) ---

  // Runtime still available this period.
  sim::Duration runtime_remaining() const { return runtime_remaining_; }
  bool throttled() const { return throttled_; }

  // Consumes `core_time` of runtime. `wanted_more` records that the group
  // had runnable work it could not execute (because of quota or node
  // contention capped *by quota*); that is what sets the throttle flag.
  void consume(sim::Duration core_time, bool wanted_more);

  // Ends the current period: reports stats through the hook, then refills
  // runtime and clears the throttle flag (the CFS refill path).
  void end_period(sim::TimePoint now);

  void set_period_hook(PeriodHook hook) { hook_ = std::move(hook); }

  // Adversarial-tenant modeling (src/adv): rewrites the *exported* stats
  // record after the truthful internal accounting and before the hook and
  // observability counters see it — a compromised kernel module lying on
  // the telemetry wire. Internal scheduling state (runtime, throttling,
  // consumed totals) is never affected; only what the Controller is told.
  using StatsMutator = std::function<void(PeriodStats&)>;
  void set_stats_mutator(StatsMutator mutator) {
    stats_mutator_ = std::move(mutator);
  }

  // Observability: shared counters bumped at each period boundary (total
  // periods, throttled periods). Null (the default) disables the hook; the
  // hot-path cost is one pointer test per period.
  void set_obs_counters(obs::Counter* periods, obs::Counter* throttled) {
    obs_periods_ = periods;
    obs_throttled_ = throttled;
  }

  // --- accounting for slack measurement ---

  // Core-time consumed in the current (incomplete) period.
  sim::Duration consumed_this_period() const { return consumed_; }
  // Total core-time consumed over the cgroup's lifetime.
  sim::Duration total_consumed() const { return total_consumed_; }
  // Number of periods in which the group was throttled.
  std::uint64_t throttle_count() const { return throttle_count_; }
  std::uint64_t periods_elapsed() const { return periods_; }

  // Resets bandwidth state (used when a container restarts).
  void reset_bandwidth();

  // Internal-consistency predicate for the invariant checker: runtime
  // remaining is within [0, quota + burst] and the quota matches the limit.
  // (consumed_this_period <= quota + burst is deliberately NOT asserted: a
  // mid-period limit cut legitimately leaves consumed above the new quota.)
  bool bandwidth_state_valid() const;

 private:
  CgroupId id_;
  sim::Duration period_;
  double cores_ = 0.0;
  sim::Duration quota_ = 0;
  sim::Duration burst_ = 0;
  sim::Duration runtime_remaining_ = 0;
  sim::Duration consumed_ = 0;
  sim::Duration total_consumed_ = 0;
  bool throttled_ = false;
  std::uint64_t throttle_count_ = 0;
  std::uint64_t periods_ = 0;
  PeriodHook hook_;
  StatsMutator stats_mutator_;
  obs::Counter* obs_periods_ = nullptr;
  obs::Counter* obs_throttled_ = nullptr;
};

}  // namespace escra::cfs
