// Thread-safe result cache for sweep cells.
//
// Bench binaries evaluate overlapping grids (the same application x workload
// cell feeds several tables), so results are computed once per process and
// shared. `ResultCache` is that memo: `get` computes on miss under a
// per-cache mutex, and `prefetch` fills many cells in parallel through
// sweep::parallel_for before a serial reporting pass reads them back.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "sweep/runner.h"

namespace escra::sweep {

template <typename Key, typename Value>
class ResultCache {
 public:
  // Returns the cached value for `key`, computing it with compute(key) on a
  // miss. References stay valid for the cache's lifetime (std::map nodes are
  // stable). The mutex is held across compute, so concurrent callers of
  // `get` serialize; use `prefetch` for parallelism.
  template <typename Compute>
  const Value& get(const Key& key, Compute&& compute) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = cells_.find(key);
      if (it != cells_.end()) return it->second;
    }
    // Compute outside the lock so prefetch workers don't serialize; if two
    // threads race on the same key the first insert wins and the loser's
    // work is dropped (cells are deterministic, so both values are equal).
    Value v = compute(key);
    const std::lock_guard<std::mutex> lock(mu_);
    return cells_.emplace(key, std::move(v)).first->second;
  }

  // Computes every missing key in parallel across `jobs` threads
  // (0 = hardware). After this returns, `get` for these keys is a pure
  // lookup.
  template <typename Compute>
  void prefetch(const std::vector<Key>& keys, int jobs, Compute&& compute) {
    parallel_for(keys.size(), jobs, [this, &keys, &compute](std::size_t i) {
      get(keys[i], compute);
    });
  }

 private:
  std::mutex mu_;
  std::map<Key, Value> cells_;
};

}  // namespace escra::sweep
