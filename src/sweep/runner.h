// Deterministic parallel sweep runner.
//
// Escra's evaluation artifacts (the fuzzer, grid searches, period sweeps)
// are embarrassingly parallel: each cell is one self-contained Simulation
// driven by its own sim::Rng, so cells never share mutable state. This
// runner fans cells out across a thread pool while keeping every observable
// output deterministic: results are stored by cell index, so aggregation
// order is independent of thread scheduling, and a sweep at --jobs 8
// produces byte-identical reports to the same sweep at --jobs 1.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace escra::sweep {

// Resolves a --jobs flag: values > 0 pass through, 0 means "use the
// hardware" (never less than 1).
int resolve_jobs(int jobs);

// Runs fn(i) for every i in [0, count) across resolve_jobs(jobs) worker
// threads and blocks until all complete. Work is handed out through an
// atomic cursor. If any invocation throws, every cell still runs and the
// lowest-index exception is rethrown, so failure selection is deterministic.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

// Typed convenience over parallel_for: out[i] = fn(i), ordered by index
// regardless of completion order. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, int jobs, Fn&& fn) {
  std::vector<T> out(count);
  parallel_for(count, jobs,
               [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace escra::sweep
