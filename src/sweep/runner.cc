#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace escra::sweep {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolve_jobs(jobs)), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = count;

  const auto work = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        // Keep draining: every cell runs, and the error we surface is the
        // lowest-index one — the same one a serial run would hit first.
        const std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace escra::sweep
