#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/arrivals.h"
#include "workload/load_generator.h"

namespace escra::workload {
namespace {

using sim::milliseconds;
using sim::seconds;

// Counts arrivals from a process over a window.
std::size_t count_arrivals(ArrivalProcess& p, sim::TimePoint from,
                           sim::TimePoint until) {
  std::size_t n = 0;
  sim::TimePoint t = from;
  while (true) {
    t += p.next_gap(t);
    if (t >= until) break;
    ++n;
  }
  return n;
}

TEST(FixedArrivalsTest, ExactRate) {
  FixedArrivals p(400.0);
  EXPECT_EQ(p.next_gap(0), sim::kSecond / 400);
  EXPECT_EQ(count_arrivals(p, 0, seconds(10)), 4000u - 1);
}

TEST(FixedArrivalsTest, InvalidRateThrows) {
  EXPECT_THROW(FixedArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(FixedArrivals(-5.0), std::invalid_argument);
}

TEST(ExpArrivalsTest, MeanRateMatchesLambda) {
  ExpArrivals p(300.0, sim::Rng(1));
  const auto n = count_arrivals(p, 0, seconds(30));
  // 9000 expected; Poisson sd ~ 95.
  EXPECT_NEAR(static_cast<double>(n), 9000.0, 400.0);
}

TEST(ExpArrivalsTest, GapsAreVariable) {
  ExpArrivals p(100.0, sim::Rng(2));
  sim::Duration first = p.next_gap(0);
  bool varied = false;
  for (int i = 0; i < 50; ++i) {
    if (p.next_gap(0) != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(BurstArrivalsTest, BaseRateOutsideBursts) {
  BurstArrivals p({}, sim::Rng(3));
  // Bursts start after the first 20 s interval; [0, 20) is base-rate only.
  const auto n = count_arrivals(p, 0, seconds(19));
  EXPECT_NEAR(static_cast<double>(n), 19.0 * 50.0, 200.0);
}

TEST(BurstArrivalsTest, BurstWindowRunsHot) {
  BurstArrivals p({}, sim::Rng(4));
  // [20 s, 30 s) is the first burst: base 50 + lambda 600.
  const auto n = count_arrivals(p, seconds(20), seconds(30));
  EXPECT_NEAR(static_cast<double>(n), 6500.0, 500.0);
}

TEST(BurstArrivalsTest, BurstsRepeatEveryInterval) {
  BurstArrivals p({}, sim::Rng(5));
  const auto burst1 = count_arrivals(p, seconds(20), seconds(30));
  const auto quiet = count_arrivals(p, seconds(30), seconds(40));
  const auto burst2 = count_arrivals(p, seconds(40), seconds(50));
  EXPECT_GT(burst1, quiet * 5);
  EXPECT_GT(burst2, quiet * 5);
}

TEST(BurstArrivalsTest, InvalidParamsThrow) {
  BurstArrivals::Params bad;
  bad.burst_length = seconds(30);
  bad.burst_interval = seconds(20);
  EXPECT_THROW(BurstArrivals(bad, sim::Rng(1)), std::invalid_argument);
}

TEST(TraceArrivalsTest, FollowsPerSecondRates) {
  TraceArrivals p({100.0, 500.0}, sim::Rng(6));
  const auto slow = count_arrivals(p, 0, sim::kSecond - 1);
  const auto fast = count_arrivals(p, sim::kSecond, 2 * sim::kSecond - 1);
  EXPECT_NEAR(static_cast<double>(slow), 100.0, 50.0);
  EXPECT_NEAR(static_cast<double>(fast), 500.0, 120.0);
}

TEST(TraceArrivalsTest, WrapsAround) {
  TraceArrivals p({100.0, 500.0}, sim::Rng(7));
  const auto wrapped = count_arrivals(p, seconds(2), seconds(3) - 1);
  EXPECT_NEAR(static_cast<double>(wrapped), 100.0, 50.0);
}

TEST(TraceArrivalsTest, RejectsBadTraces) {
  EXPECT_THROW(TraceArrivals({}, sim::Rng(1)), std::invalid_argument);
  EXPECT_THROW(TraceArrivals({10.0, 0.0}, sim::Rng(1)), std::invalid_argument);
}

TEST(AlibabaTraceTest, StaysInPublishedEnvelope) {
  sim::Rng rng(8);
  const auto rates = make_alibaba_rates(600, rng);
  ASSERT_EQ(rates.size(), 600u);
  for (const double r : rates) {
    EXPECT_GE(r, 56.0);
    EXPECT_LE(r, 548.0);
  }
  // The trace swings: it must visit both the bottom and top third.
  const double lo = *std::min_element(rates.begin(), rates.end());
  const double hi = *std::max_element(rates.begin(), rates.end());
  EXPECT_LT(lo, 150.0);
  EXPECT_GT(hi, 450.0);
}

TEST(AlibabaTraceTest, DeterministicForSeed) {
  sim::Rng a(42), b(42);
  EXPECT_EQ(make_alibaba_rates(100, a), make_alibaba_rates(100, b));
}

TEST(RateTraceFileTest, RoundTrips) {
  sim::Rng rng(10);
  const auto rates = make_alibaba_rates(50, rng);
  const std::string path = ::testing::TempDir() + "/trace.txt";
  save_rate_trace(path, rates);
  const auto loaded = load_rate_trace(path);
  ASSERT_EQ(loaded.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_NEAR(loaded[i], rates[i], 1e-4);
  }
  // The loaded series drives TraceArrivals directly.
  TraceArrivals p(loaded, sim::Rng(11));
  EXPECT_GT(p.next_gap(0), 0);
}

TEST(RateTraceFileTest, IgnoresCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/commented.txt";
  {
    std::ofstream out(path);
    out << "# header\n\n100\n  200  # inline\n\n300\n";
  }
  const auto rates = load_rate_trace(path);
  EXPECT_EQ(rates, (std::vector<double>{100.0, 200.0, 300.0}));
}

TEST(RateTraceFileTest, RejectsBadFiles) {
  EXPECT_THROW(load_rate_trace("/no/such/trace.txt"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/bad.txt";
  {
    std::ofstream out(path);
    out << "12\nnot-a-number\n";
  }
  EXPECT_THROW(load_rate_trace(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "0\n";
  }
  EXPECT_THROW(load_rate_trace(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(load_rate_trace(path), std::runtime_error);
}

TEST(WorkloadFactoryTest, ProducesAllKinds) {
  sim::Rng rng(9);
  for (const auto kind :
       {WorkloadKind::kFixed, WorkloadKind::kExp, WorkloadKind::kBurst,
        WorkloadKind::kAlibaba}) {
    const auto p = make_workload(kind, rng.fork());
    ASSERT_NE(p, nullptr);
  }
  EXPECT_STREQ(workload_name(WorkloadKind::kFixed), "fixed");
  EXPECT_STREQ(workload_name(WorkloadKind::kAlibaba), "alibaba");
}

// -------------------------------------------------------------- LoadGenerator

TEST(LoadGeneratorTest, IssuesAtConfiguredRate) {
  sim::Simulation sim;
  std::size_t launched = 0;
  LoadGenerator gen(sim, std::make_unique<FixedArrivals>(100.0),
                    [&](LoadGenerator::Done done) {
                      ++launched;
                      done(true);
                    });
  gen.run(0, seconds(10));
  sim.run_until(seconds(11));
  EXPECT_NEAR(static_cast<double>(launched), 1000.0, 2.0);
  EXPECT_EQ(gen.succeeded(), launched);
  EXPECT_NEAR(gen.throughput_rps(), 100.0, 1.0);
}

TEST(LoadGeneratorTest, LatencyMeasuredFromIntendedStart) {
  sim::Simulation sim;
  LoadGenerator gen(sim, std::make_unique<FixedArrivals>(10.0),
                    [&](LoadGenerator::Done done) {
                      sim.schedule_after(milliseconds(25),
                                         [d = std::move(done)] { d(true); });
                    });
  gen.run(0, seconds(2));
  sim.run_until(seconds(3));
  EXPECT_NEAR(static_cast<double>(gen.latency().percentile(50)),
              25000.0, 600.0);
}

TEST(LoadGeneratorTest, FailuresCountedSeparately) {
  sim::Simulation sim;
  int i = 0;
  LoadGenerator gen(sim, std::make_unique<FixedArrivals>(10.0),
                    [&](LoadGenerator::Done done) { done(++i % 2 == 0); });
  gen.run(0, seconds(1));
  sim.run_until(seconds(2));
  EXPECT_EQ(gen.succeeded(), gen.failed());
  EXPECT_EQ(gen.latency().count(), gen.succeeded());
}

TEST(LoadGeneratorTest, TimeoutCountsAsFailure) {
  sim::Simulation sim;
  LoadGenerator gen(
      sim, std::make_unique<FixedArrivals>(10.0),
      [&](LoadGenerator::Done done) {
        sim.schedule_after(seconds(10), [d = std::move(done)] { d(true); });
      },
      /*timeout=*/seconds(4));
  gen.run(0, seconds(1));
  sim.run_until(seconds(20));
  EXPECT_EQ(gen.succeeded(), 0u);
  EXPECT_GT(gen.timed_out(), 0u);
  EXPECT_EQ(gen.failed(), gen.timed_out());
}

TEST(LoadGeneratorTest, ResetMeasurementsTrimsWarmup) {
  sim::Simulation sim;
  LoadGenerator gen(sim, std::make_unique<FixedArrivals>(100.0),
                    [](LoadGenerator::Done done) { done(true); });
  gen.run(0, seconds(10));
  sim.schedule_at(seconds(5), [&] { gen.reset_measurements(); });
  sim.run_until(seconds(11));
  EXPECT_NEAR(static_cast<double>(gen.succeeded()), 500.0, 3.0);
  EXPECT_NEAR(gen.throughput_rps(), 100.0, 1.5);
}

TEST(LoadGeneratorTest, StopCeasesIssuing) {
  sim::Simulation sim;
  std::size_t launched = 0;
  LoadGenerator gen(sim, std::make_unique<FixedArrivals>(100.0),
                    [&](LoadGenerator::Done done) {
                      ++launched;
                      done(true);
                    });
  gen.run(0, seconds(10));
  sim.schedule_at(seconds(1), [&] { gen.stop(); });
  sim.run_until(seconds(10));
  EXPECT_NEAR(static_cast<double>(launched), 100.0, 2.0);
}

TEST(LoadGeneratorTest, InvalidConstructionThrows) {
  sim::Simulation sim;
  EXPECT_THROW(LoadGenerator(sim, nullptr, [](LoadGenerator::Done) {}),
               std::invalid_argument);
  EXPECT_THROW(
      LoadGenerator(sim, std::make_unique<FixedArrivals>(1.0), nullptr),
      std::invalid_argument);
  LoadGenerator ok(sim, std::make_unique<FixedArrivals>(1.0),
                   [](LoadGenerator::Done) {});
  EXPECT_THROW(ok.run(seconds(2), seconds(1)), std::invalid_argument);
}

}  // namespace
}  // namespace escra::workload
