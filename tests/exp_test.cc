#include <gtest/gtest.h>

#include "exp/microservice.h"
#include "exp/profile.h"
#include "exp/report.h"
#include "exp/serverless.h"

namespace escra::exp {
namespace {

TEST(ReportTest, PctHelpers) {
  EXPECT_DOUBLE_EQ(pct_decrease(100.0, 60.0), 40.0);
  EXPECT_DOUBLE_EQ(pct_decrease(100.0, 150.0), -50.0);
  EXPECT_DOUBLE_EQ(pct_increase(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(pct_increase(0.0, 5.0), 0.0);  // guarded
  EXPECT_DOUBLE_EQ(pct_decrease(0.0, 5.0), 0.0);
}

TEST(ReportTest, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_pct(12.345, 1), "+12.3%");
  EXPECT_EQ(fmt_pct(-5.0, 1), "-5.0%");
}

TEST(ReportTest, RaggedTableThrows) {
  EXPECT_THROW(print_table({"a", "b"}, {{"1"}}), std::invalid_argument);
  EXPECT_NO_THROW(print_table({"a", "b"}, {{"1", "2"}}));
}

TEST(ProfileTest, ProfilesEveryContainerWithSanePeaks) {
  const ProfileResult& p = profile_benchmark(app::Benchmark::kTeastore);
  ASSERT_EQ(p.containers.size(), 7u);
  for (const ContainerProfile& c : p.containers) {
    EXPECT_GT(c.peak_cores, 0.0);
    EXPECT_LT(c.peak_cores, 8.0);  // under the generous profiling limit
    EXPECT_GE(c.peak_mem, 48 * memcg::kMiB);
  }
  EXPECT_GT(p.total_peak_cores(), 1.0);
  EXPECT_GT(p.total_peak_mem(), 7LL * 100 * memcg::kMiB);
}

TEST(ProfileTest, CachedAcrossCalls) {
  const ProfileResult& a = profile_benchmark(app::Benchmark::kTeastore);
  const ProfileResult& b = profile_benchmark(app::Benchmark::kTeastore);
  EXPECT_EQ(&a, &b);
}

TEST(PolicyNameTest, AllKindsNamed) {
  EXPECT_STREQ(policy_name(PolicyKind::kStatic), "static-1.5x");
  EXPECT_STREQ(policy_name(PolicyKind::kAutopilot), "autopilot");
  EXPECT_STREQ(policy_name(PolicyKind::kEscra), "escra");
  EXPECT_STREQ(policy_name(PolicyKind::kVpa), "vpa");
  EXPECT_STREQ(policy_name(PolicyKind::kFirm), "firm");
  EXPECT_STREQ(serverless_mode_name(ServerlessMode::kOpenWhisk), "openwhisk");
  EXPECT_STREQ(serverless_mode_name(ServerlessMode::kEscraReduced),
               "escra-openwhisk-80pct");
}

// One short smoke run per policy kind, checking the harness produces
// complete, self-consistent results (the shape assertions live in
// EXPERIMENTS.md / the bench binaries; here we verify plumbing).
class HarnessSmokeTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(HarnessSmokeTest, ProducesConsistentResults) {
  MicroserviceConfig cfg;
  cfg.benchmark = app::Benchmark::kTeastore;
  cfg.workload = workload::WorkloadKind::kFixed;
  cfg.policy = GetParam();
  cfg.duration = sim::seconds(15);
  const RunResult r = run_microservice(cfg);
  EXPECT_EQ(r.app_name, "teastore");
  EXPECT_EQ(r.workload_name, "fixed");
  EXPECT_GT(r.throughput_rps, 300.0);
  EXPECT_GT(r.succeeded, 4000u);
  EXPECT_GT(r.p999_latency_ms, r.p50_latency_ms);
  EXPECT_GE(r.p50_latency_ms, 1.0);
  EXPECT_FALSE(r.cpu_slack_cores.empty());
  EXPECT_FALSE(r.mem_slack_mib.empty());
  if (GetParam() == PolicyKind::kEscra) {
    EXPECT_GT(r.telemetry_msgs, 100u);
    EXPECT_GT(r.limit_updates, 0u);
    EXPECT_EQ(r.oom_kills, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, HarnessSmokeTest,
                         ::testing::Values(PolicyKind::kStatic,
                                           PolicyKind::kAutopilot,
                                           PolicyKind::kEscra,
                                           PolicyKind::kVpa,
                                           PolicyKind::kFirm));

TEST(HarnessCustomGraphTest, RunsAYamlStyleGraph) {
  app::GraphSpec g;
  g.name = "custom";
  app::ServiceSpec front;
  front.name = "front";
  front.replicas = 2;
  front.cpu_per_visit = sim::milliseconds(3);
  app::ServiceSpec back = front;
  back.name = "back";
  back.replicas = 1;
  g.services = {front, back};
  g.edges = {{0, 1, 0.8}};

  MicroserviceConfig cfg;
  cfg.custom_graph = std::make_shared<app::GraphSpec>(std::move(g));
  cfg.workload = workload::WorkloadKind::kFixed;
  cfg.policy = PolicyKind::kEscra;
  cfg.duration = sim::seconds(15);
  const RunResult r = run_microservice(cfg);
  EXPECT_EQ(r.app_name, "custom");
  EXPECT_GT(r.throughput_rps, 300.0);
  EXPECT_EQ(r.oom_kills, 0u);

  // The same custom graph must also drive a baseline (profiled fresh).
  cfg.policy = PolicyKind::kStatic;
  const RunResult st = run_microservice(cfg);
  EXPECT_EQ(st.policy_name, "static-1.5x");
  EXPECT_GT(st.throughput_rps, 300.0);
}

TEST(ServerlessHarnessTest, ImageProcessSmoke) {
  ImageProcessConfig cfg;
  cfg.mode = ServerlessMode::kEscra;
  cfg.iterations = 1;
  cfg.iteration_length = sim::seconds(30);
  const ImageProcessResult r = run_image_process(cfg);
  EXPECT_GT(r.completed, 25u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.cold_starts, 0u);
  EXPECT_GT(r.mean_latency_ms, 0.0);
  EXPECT_EQ(r.limits.size(), 30u);
  EXPECT_GT(r.mean_cpu_limit_cores, 0.0);
}

TEST(ServerlessHarnessTest, GridSearchSmoke) {
  GridSearchConfig cfg;
  cfg.mode = ServerlessMode::kEscra;
  cfg.runs = 1;
  cfg.total_tasks = 60;
  cfg.max_pods = 20;
  const GridSearchResult r = run_grid_search(cfg);
  EXPECT_EQ(r.job_latency_s.count(), 1u);
  EXPECT_GT(r.mean_latency_s, 10.0);
  EXPECT_EQ(r.tasks_failed, 0u);
  EXPECT_GT(r.mean_cpu_limit_cores, 0.0);
  EXPECT_FALSE(r.limits.empty());
}

}  // namespace
}  // namespace escra::exp
