#include "sweep/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sweep/cache.h"

namespace escra::sweep {
namespace {

TEST(SweepRunner, ResolveJobsPassesPositiveThrough) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(SweepRunner, ResolveJobsZeroMeansHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(SweepRunner, EmptyRangeIsANoop) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(SweepRunner, ResultsAreOrderedByIndexNotCompletion) {
  // Early indices sleep longest, so completion order is roughly reversed;
  // the result vector must still be in index order.
  const std::vector<int> out =
      parallel_map<int>(16, 8, [](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((16 - i) % 4));
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunner, ParallelMatchesSerial) {
  const auto cell = [](std::size_t i) {
    return static_cast<int>(i * 2654435761u % 1000);
  };
  const std::vector<int> serial = parallel_map<int>(200, 1, cell);
  const std::vector<int> parallel = parallel_map<int>(200, 8, cell);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, LowestIndexExceptionWinsAndAllCellsRun) {
  std::vector<std::atomic<int>> hits(64);
  try {
    parallel_for(64, 8, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 7 || i == 40) {
        throw std::runtime_error("cell " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 7");  // deterministic: lowest index
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i << " was skipped";
  }
}

TEST(SweepCache, ComputesEachKeyOnce) {
  ResultCache<int, int> cache;
  std::atomic<int> computes{0};
  const auto compute = [&computes](int key) {
    ++computes;
    return key * 10;
  };
  EXPECT_EQ(cache.get(3, compute), 30);
  EXPECT_EQ(cache.get(3, compute), 30);
  EXPECT_EQ(computes.load(), 1);
}

TEST(SweepCache, PrefetchFillsInParallelThenGetHits) {
  ResultCache<int, int> cache;
  std::atomic<int> computes{0};
  const auto compute = [&computes](int key) {
    ++computes;
    return key + 100;
  };
  std::vector<int> keys;
  for (int k = 0; k < 50; ++k) keys.push_back(k);
  cache.prefetch(keys, 8, compute);
  const int after_prefetch = computes.load();
  // Racing workers may duplicate a key's compute (first insert wins), but
  // never lose one.
  EXPECT_GE(after_prefetch, 50);
  for (int k = 0; k < 50; ++k) EXPECT_EQ(cache.get(k, compute), k + 100);
  EXPECT_EQ(computes.load(), after_prefetch);  // all pure hits
}

}  // namespace
}  // namespace escra::sweep
