// Sharded control plane (src/shard): the consistent-hash router keeps app
// ownership stable as the ring grows; deploys land whole apps on one shard;
// the borrow/return protocol moves pool headroom to hot shards and back with
// exactly-once effect under drops, duplicates, and retransmits; a shard
// leader failover never perturbs another shard's decision stream; and the
// parallel allocator sweep is --jobs invariant.
#include "shard/sharded_control_plane.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/shard_checker.h"
#include "cluster/cluster.h"
#include "core/messages.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/shard_router.h"
#include "sim/rng.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// --- router ---------------------------------------------------------------

TEST(ShardRouterTest, BalancesAppsAcrossShards) {
  shard::ShardRouter router(4);
  std::vector<int> count(4, 0);
  constexpr int kApps = 2000;
  for (int i = 0; i < kApps; ++i) {
    const int s = router.shard_for_app("app-" + std::to_string(i));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++count[s];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(count[s], kApps / 10) << "shard " << s << " starved";
  }
}

TEST(ShardRouterTest, GrowingTheRingOnlyMovesAppsToTheNewShard) {
  shard::ShardRouter before(4), after(5);
  constexpr int kApps = 2000;
  int moved = 0;
  for (int i = 0; i < kApps; ++i) {
    const std::string app = "app-" + std::to_string(i);
    const int owner_before = before.shard_for_app(app);
    const int owner_after = after.shard_for_app(app);
    if (owner_before != owner_after) {
      ++moved;
      // Consistent hashing: a reassigned key can only have been captured by
      // one of the new shard's ring points.
      EXPECT_EQ(owner_after, 4) << app;
    }
  }
  // Expected churn is ~1/5 of the keys; anything near full reshuffling
  // means the ring degenerated into modulo hashing.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kApps * 2 / 5);
}

// --- rig ------------------------------------------------------------------

// Finds an app name the router maps to `target` (names are arbitrary; the
// tests need controlled placement).
std::string app_on_shard(const shard::ShardRouter& router, int target,
                         const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string name = prefix + std::to_string(i);
    if (router.shard_for_app(name) == target) return name;
  }
}

core::AppSpec make_app(const std::string& name, int containers,
                       double parallelism = 4.0) {
  core::AppSpec spec;
  spec.name = name;
  for (int i = 0; i < containers; ++i) {
    cluster::ContainerSpec c;
    c.name = name + "/c" + std::to_string(i);
    c.max_parallelism = parallelism;
    c.base_memory = 64 * kMiB;
    spec.containers.push_back(std::move(c));
  }
  return spec;
}

struct ShardRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::vector<std::unique_ptr<obs::Observer>> observers;
  std::optional<shard::ShardedControlPlane> plane;

  explicit ShardRig(int shards, double global_cpu = 8.0,
                    shard::ShardPlaneConfig pcfg = {}) {
    for (int n = 0; n < 4; ++n) k8s.add_node({.cores = 16.0});
    pcfg.shards = shards;
    plane.emplace(sim, net, k8s, global_cpu, memcg::Bytes{4} * kGiB, pcfg);
    for (int s = 0; s < shards; ++s) {
      observers.push_back(std::make_unique<obs::Observer>());
      plane->attach_observer(s, *observers[s]);
    }
  }

  // Saturating load: one 40 ms item per 10 ms per container (demand ~4
  // cores each) until `until`; persistent throttling drives scale-up into
  // a dry pool, which is what makes the owning shard borrow.
  void drive_hot(const std::vector<cluster::Container*>& containers,
                 sim::TimePoint until) {
    for (cluster::Container* c : containers) {
      sim::Simulation* simp = &sim;
      sim.schedule_every(milliseconds(1), milliseconds(10), [c, simp, until] {
        if (simp->now() >= until) return;
        c->submit(milliseconds(40), 0, [](bool) {});
      });
    }
  }
};

// --- placement ------------------------------------------------------------

TEST(ShardPlaneTest, DeployKeepsEveryAppOnExactlyOneShard) {
  ShardRig rig(3);
  std::size_t expected[3] = {0, 0, 0};
  for (int a = 0; a < 9; ++a) {
    const std::string name = "app" + std::to_string(a);
    const int owner = rig.plane->shard_of_app(name);
    const auto members = rig.plane->deploy(make_app(name, 4));
    expected[owner] += members.size();
    for (const cluster::Container* c : members) {
      EXPECT_EQ(rig.plane->shard_of_container(c->id()), owner) << name;
    }
  }
  rig.plane->start();
  rig.sim.run_until(milliseconds(50));  // registrations land
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(rig.plane->shard(s).controller().registered_count(),
              expected[s])
        << "shard " << s;
  }
  EXPECT_EQ(rig.plane->shard_of_container(9999), -1);
}

// --- borrowing ------------------------------------------------------------

TEST(ShardPlaneTest, BorrowMovesHeadroomToTheHotShardAndBack) {
  ShardRig rig(2);
  check::ShardInvariantChecker checker(*rig.plane);
  const auto& router = rig.plane->router();
  const auto hot =
      rig.plane->deploy(make_app(app_on_shard(router, 0, "hot"), 4));
  rig.plane->deploy(make_app(app_on_shard(router, 1, "idle"), 2));
  const int hot_shard = 0;
  const int idle_shard = 1;
  const double slice = rig.plane->shard(hot_shard).app().cpu_limit();
  EXPECT_DOUBLE_EQ(slice, 4.0);

  rig.plane->start();
  rig.drive_hot(hot, seconds(5));
  rig.sim.run_until(seconds(5));

  // The idle shard's containers scaled down, its surplus was advertised,
  // and the hot shard borrowed real capacity.
  EXPECT_GT(rig.plane->adverts_sent(), 0u);
  EXPECT_GE(rig.plane->borrows_granted(), 1u);
  EXPECT_GT(rig.plane->shard(hot_shard).app().cpu_limit(), slice + 0.1);
  EXPECT_LT(rig.plane->shard(idle_shard).app().cpu_limit(), slice - 0.1);
  const double peak = rig.plane->shard(hot_shard).app().cpu_limit();

  // Load gone: the hot shard's members shrink, its unallocated pool crosses
  // the return threshold, and the debt flows back to the lender.
  rig.sim.run_until(seconds(12));
  EXPECT_GE(rig.plane->borrows_returned(), 1u);
  EXPECT_LT(rig.plane->shard(hot_shard).app().cpu_limit(), peak);
  EXPECT_TRUE(checker.ok()) << checker.report();

  // The merged trace is deterministic in one run, stamps owning shards, and
  // carries the borrow protocol.
  std::ostringstream a, b;
  rig.plane->export_merged_trace(a);
  rig.plane->export_merged_trace(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"shard\":1"), std::string::npos);
  EXPECT_NE(a.str().find("\"shard\":2"), std::string::npos);
  EXPECT_NE(a.str().find("borrow-grant"), std::string::npos);
}

TEST(ShardPlaneTest, BorrowIsExactlyOnceUnderDropsDuplicatesAndHeal) {
  ShardRig rig(2);
  check::ShardInvariantChecker checker(*rig.plane);
  rig.net.set_fault_rng(sim::Rng(0x5ad17ULL));
  // Adverts ride kShardControl datagrams; the borrow/return RPC legs ride
  // the control-RPC path — fault both, plus duplicated legs to hit the
  // receiver-side sequence caches.
  rig.net.set_drop_rate(net::Channel::kShardControl, 0.25);
  rig.net.set_duplicate_rate(net::Channel::kShardControl, 0.25);
  rig.net.set_drop_rate(net::Channel::kControlRpc, 0.2);
  rig.net.set_duplicate_rate(net::Channel::kControlRpc, 0.2);

  const auto& router = rig.plane->router();
  const auto hot =
      rig.plane->deploy(make_app(app_on_shard(router, 0, "hot"), 4));
  rig.plane->deploy(make_app(app_on_shard(router, 1, "idle"), 2));
  rig.plane->start();
  rig.drive_hot(hot, seconds(6));
  rig.sim.run_until(seconds(6));

  EXPECT_GE(rig.plane->borrows_granted(), 1u);
  EXPECT_GT(rig.plane->borrow_retransmits(), 0u)
      << "25% loss on the borrow channel must force retransmits";

  // Heal and settle: every in-flight op completes (idempotently — the
  // duplicated legs already exercised the receiver caches), after which the
  // ledger must be empty and conservation exact. The settle window covers
  // the slow tail: the hot shard sheds its load-time grants period by
  // period until the return threshold is crossed, then repays the debt.
  rig.net.set_drop_rate(net::Channel::kShardControl, 0.0);
  rig.net.set_duplicate_rate(net::Channel::kShardControl, 0.0);
  rig.net.set_drop_rate(net::Channel::kControlRpc, 0.0);
  rig.net.set_duplicate_rate(net::Channel::kControlRpc, 0.0);
  rig.sim.run_until(seconds(20));

  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_NEAR(rig.plane->inflight_cpu(), 0.0, 1e-9);
  EXPECT_EQ(static_cast<long long>(rig.plane->inflight_mem()), 0);
  const double slices = rig.plane->shard(0).app().cpu_limit() +
                        rig.plane->shard(1).app().cpu_limit();
  EXPECT_NEAR(slices, rig.plane->cluster_cpu_limit(), 1e-9);
  EXPECT_EQ(rig.plane->shard(0).app().mem_limit() +
                rig.plane->shard(1).app().mem_limit(),
            rig.plane->cluster_mem_limit());
}

// --- HA / failover isolation ----------------------------------------------

TEST(ShardPlaneTest, OwnershipAndConservationSurviveShardLeaderChurn) {
  ShardRig rig(2);
  check::ShardInvariantChecker checker(*rig.plane);
  const auto& router = rig.plane->router();
  const auto hot =
      rig.plane->deploy(make_app(app_on_shard(router, 0, "hot"), 4));
  const auto idle =
      rig.plane->deploy(make_app(app_on_shard(router, 1, "idle"), 2));
  rig.plane->start();
  rig.plane->enable_ha(1);
  rig.drive_hot(hot, seconds(5));

  // Kill the hot shard's leader mid-borrow-traffic, twice.
  rig.sim.schedule_at(seconds(1) + milliseconds(7),
                      [&] { rig.plane->ha(0).kill_leader(); });
  rig.sim.schedule_at(seconds(3) + milliseconds(3),
                      [&] { rig.plane->ha(0).kill_leader(); });
  rig.sim.run_until(seconds(8));

  EXPECT_EQ(rig.plane->ha(0).failovers(), 2u);
  EXPECT_EQ(rig.plane->ha(1).failovers(), 0u);
  // Ownership never moved: every container still belongs to its shard and
  // the promoted leader rebuilt the full registry.
  for (const cluster::Container* c : hot) {
    EXPECT_EQ(rig.plane->shard_of_container(c->id()), 0);
  }
  for (const cluster::Container* c : idle) {
    EXPECT_EQ(rig.plane->shard_of_container(c->id()), 1);
  }
  EXPECT_EQ(rig.plane->shard(0).controller().registered_count(), hot.size());
  EXPECT_EQ(rig.plane->shard(1).controller().registered_count(), idle.size());
  EXPECT_GE(rig.plane->borrows_granted(), 1u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// One shard's failover is invisible to the other shard's decision stream.
// Borrowing is quiesced (low_frac = 0: a shard never asks) because pool
// transfers are the one *deliberate* cross-shard coupling; everything else
// — telemetry, decisions, limit RPCs, HA replication — must stay perfectly
// isolated per shard.
TEST(ShardPlaneTest, LeaderFailoverIsInvisibleToOtherShards) {
  const auto run = [](bool kill) {
    shard::ShardPlaneConfig pcfg;
    pcfg.low_frac = 0.0;
    ShardRig rig(2, 8.0, pcfg);
    const auto& router = rig.plane->router();
    const auto a =
        rig.plane->deploy(make_app(app_on_shard(router, 0, "a"), 4));
    const auto b =
        rig.plane->deploy(make_app(app_on_shard(router, 1, "b"), 4));
    rig.plane->start();
    rig.plane->enable_ha(1);
    rig.drive_hot(a, seconds(2));
    rig.drive_hot(b, seconds(2));
    if (kill) {
      rig.sim.schedule_at(seconds(1) + milliseconds(7),
                          [&] { rig.plane->ha(0).kill_leader(); });
    }
    rig.sim.run_until(seconds(3));
    std::ostringstream shard1_trace;
    rig.observers[1]->trace().export_jsonl(shard1_trace);
    return shard1_trace.str();
  };
  const std::string undisturbed = run(false);
  const std::string with_failover = run(true);
  EXPECT_FALSE(undisturbed.empty());
  EXPECT_EQ(undisturbed, with_failover);
}

// --- parallel sweep -------------------------------------------------------

TEST(ShardPlaneTest, SweepParallelIsJobsInvariant) {
  const auto build = [](ShardRig& rig) {
    std::vector<cluster::Container*> all;
    for (int a = 0; a < 8; ++a) {
      const auto members =
          rig.plane->deploy(make_app("app" + std::to_string(a), 4));
      all.insert(all.end(), members.begin(), members.end());
    }
    rig.plane->start();
    rig.sim.run_until(milliseconds(50));  // registrations land
    return all;
  };
  // Identical telemetry rounds: half the containers persistently throttled,
  // half persistently slack, so both allocator arms fire.
  const auto batches = [](ShardRig& rig,
                          const std::vector<cluster::Container*>& all) {
    std::vector<std::vector<core::CpuStatsMsg>> by_shard(
        rig.plane->shard_count());
    for (const cluster::Container* c : all) {
      core::CpuStatsMsg m;
      m.cgroup = c->id();
      m.period_end = rig.sim.now();
      m.quota = milliseconds(100);
      if (c->id() % 2 == 0) {
        m.throttled = true;
        m.unused = 0;
      } else {
        m.throttled = false;
        m.unused = milliseconds(60);
      }
      by_shard[rig.plane->shard_of_container(c->id())].push_back(m);
    }
    return by_shard;
  };

  ShardRig serial(4, 16.0);
  ShardRig threaded(4, 16.0);
  const auto all_serial = build(serial);
  const auto all_threaded = build(threaded);

  for (int round = 0; round < 10; ++round) {
    const std::uint64_t cs1 =
        serial.plane->sweep_parallel(batches(serial, all_serial), 1);
    const std::uint64_t cs4 =
        threaded.plane->sweep_parallel(batches(threaded, all_threaded), 4);
    EXPECT_EQ(cs1, cs4) << "round " << round;
    serial.sim.run_until(serial.sim.now() + milliseconds(100));
    threaded.sim.run_until(threaded.sim.now() + milliseconds(100));
  }
  // The rounds actually produced decisions (the checksum equality above is
  // not vacuous), and the end states agree limb for limb.
  std::uint64_t downs = 0;
  for (int s = 0; s < 4; ++s) {
    downs += serial.plane->shard(s).allocator().cpu_scale_downs();
  }
  EXPECT_GT(downs, 0u);
  for (std::size_t i = 0; i < all_serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(all_serial[i]->cpu_cgroup().limit_cores(),
                     all_threaded[i]->cpu_cgroup().limit_cores())
        << "container " << i;
  }
}

}  // namespace
}  // namespace escra
