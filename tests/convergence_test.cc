// Property suite: the Escra control loop must converge — not oscillate,
// starve, or leak pool — across the tunable space and across demand shapes.
// Each case runs a small end-to-end system (real scheduler, real telemetry
// path) and checks steady-state properties rather than exact values.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/stats.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct Params {
  double kappa;
  double gamma;
  double upsilon;
  std::size_t window;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "k" + std::to_string(static_cast<int>(p.kappa * 10)) + "_g" +
         std::to_string(static_cast<int>(p.gamma * 100)) + "_y" +
         std::to_string(static_cast<int>(p.upsilon)) + "_n" +
         std::to_string(p.window);
}

class ConvergenceTest : public ::testing::TestWithParam<Params> {
 protected:
  core::EscraConfig make_config() const {
    core::EscraConfig cfg;
    cfg.kappa = GetParam().kappa;
    cfg.gamma = GetParam().gamma;
    cfg.upsilon = GetParam().upsilon;
    cfg.window_periods = GetParam().window;
    return cfg;
  }
};

// A container with constant demand must settle: limit within
// [demand, demand + gamma + slop] and no throttling once converged.
TEST_P(ConvergenceTest, ConstantDemandSettles) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({.cores = 16.0});
  cluster::ContainerSpec spec;
  spec.name = "steady";
  spec.max_parallelism = 4.0;
  cluster::Container& c = k8s.create_container(spec, 1.0, 512 * kMiB);
  core::EscraSystem escra(sim, net, k8s, 8.0, 2 * kGiB, make_config());
  escra.manage({&c});
  escra.start();

  // Constant ~2.0 cores of demand (two saturated lanes).
  sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    while (c.queue_depth() < 2) c.submit(seconds(5), 0, nullptr);
  });

  sim.run_until(seconds(10));  // convergence window
  sim::SampleSet limits;
  const auto before_throttles = c.cpu_cgroup().throttle_count();
  sim.schedule_every(sim.now() + milliseconds(100), milliseconds(100),
                     [&] { limits.add(c.cpu_cgroup().limit_cores()); });
  sim.run_until(seconds(30));

  const double gamma = GetParam().gamma;
  EXPECT_GE(limits.min(), 2.0 - 0.05) << "never below demand";
  EXPECT_LE(limits.percentile(95), 2.0 + 2.0 * gamma + 0.3)
      << "settles near demand + headroom";
  // Once converged, throttles are rare (a couple per 20 s at most).
  EXPECT_LE(c.cpu_cgroup().throttle_count() - before_throttles, 8u);
}

// A step change in demand must be followed within a bounded number of
// periods, in both directions.
TEST_P(ConvergenceTest, StepChangeTracksWithinABound) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({.cores = 16.0});
  cluster::ContainerSpec spec;
  spec.name = "step";
  spec.max_parallelism = 6.0;
  cluster::Container& c = k8s.create_container(spec, 1.0, 512 * kMiB);
  core::EscraSystem escra(sim, net, k8s, 10.0, 2 * kGiB, make_config());
  escra.manage({&c});
  escra.start();

  int lanes = 1;
  sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    while (c.queue_depth() < static_cast<std::size_t>(lanes)) {
      c.submit(seconds(5), 0, nullptr);
    }
  });
  sim.run_until(seconds(10));
  lanes = 4;  // step up
  sim.run_until(seconds(15));
  EXPECT_GE(c.cpu_cgroup().limit_cores(), 3.8)
      << "scale-up reached the new demand within 5 s";
  lanes = 1;  // step down: the queue drains, then demand is 1 core
  sim.run_until(seconds(30));
  EXPECT_LE(c.cpu_cgroup().limit_cores(), 1.0 + 2.0 * GetParam().gamma + 0.4)
      << "scale-down released the excess within 10 s";
}

// The Distributed Container invariant and pool conservation hold through
// the whole run: allocated <= limit and allocated = sum(members).
TEST_P(ConvergenceTest, PoolConservation) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({.cores = 16.0});
  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 4; ++i) {
    cluster::ContainerSpec spec;
    spec.name = "c" + std::to_string(i);
    spec.max_parallelism = 4.0;
    containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
  }
  core::EscraSystem escra(sim, net, k8s, 6.0, 2 * kGiB, make_config());
  escra.manage(containers);
  escra.start();

  // Rotating demand: each second a different container is the hot one.
  sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    const auto hot = static_cast<std::size_t>(
        (sim.now() / seconds(1)) % containers.size());
    while (containers[hot]->queue_depth() < 3) {
      containers[hot]->submit(seconds(2), kMiB, nullptr);
    }
  });

  bool ok = true;
  sim.schedule_every(milliseconds(100), milliseconds(100), [&] {
    double sum = 0.0;
    for (const cluster::Container* c : containers) {
      sum += escra.app().member_cores(c->id());
    }
    if (std::abs(sum - escra.app().cpu_allocated()) > 1e-6) ok = false;
    if (escra.app().cpu_allocated() > escra.app().cpu_limit() + 1e-6) ok = false;
    if (escra.app().cpu_unallocated() < -1e-6) ok = false;
  });
  sim.run_until(seconds(30));
  EXPECT_TRUE(ok) << "pool accounting drifted";
}

INSTANTIATE_TEST_SUITE_P(
    TunableGrid, ConvergenceTest,
    ::testing::Values(Params{0.8, 0.2, 20.0, 5},    // paper defaults
                      Params{0.8, 0.2, 35.0, 5},    // serverless Y
                      Params{0.5, 0.2, 20.0, 5},    // gentle scale-down
                      Params{1.0, 0.2, 20.0, 5},    // full scale-down
                      Params{0.8, 0.05, 20.0, 5},   // tight headroom
                      Params{0.8, 0.5, 20.0, 5},    // loose headroom
                      Params{0.8, 0.2, 20.0, 1},    // no smoothing
                      Params{0.8, 0.2, 20.0, 20},   // heavy smoothing
                      Params{0.8, 0.2, 60.0, 3}),   // aggressive everything
    param_name);

}  // namespace
}  // namespace escra
