// Differential test against the static baseline: for a workload that never
// triggers a control event (no throttling, unused runtime below gamma, no
// OOMs, no reclaimable slack), Escra must behave exactly like static
// allocation — the Eq. 1-2 initial limits are the final limits, and the
// allocator makes zero decisions. Any drift here means Escra acts without an
// event, contradicting the paper's event-driven design.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baselines/static_policy.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/event_queue.h"

namespace escra {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// 2 containers, Eq. 1 gives 2.0 / 2 = 1.0 core each; Eq. 2 gives
// 640 MiB * (1 - sigma 0.2) / 2 = 256 MiB each.
constexpr double kGlobalCpu = 2.0;
constexpr memcg::Bytes kGlobalMem = 640 * kMiB;
constexpr double kExpectedCores = 1.0;
constexpr memcg::Bytes kExpectedMem = 256 * kMiB;

// Base memory keeps every limit within usage + delta (210 + 50 >= 256 MiB),
// so periodic reclamation has nothing to take.
constexpr memcg::Bytes kBaseMem = 210 * kMiB;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::vector<cluster::Container*> containers;

  Rig() {
    k8s.add_node({.cores = 8.0});
    for (int i = 0; i < 2; ++i) {
      cluster::ContainerSpec spec;
      spec.name = "svc" + std::to_string(i);
      spec.base_memory = kBaseMem;
      spec.max_parallelism = 4.0;
      containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
    }
  }

  // A 9 ms item every 10 ms from t = 1 ms: 90% utilization in every CFS
  // period — never throttled (no scale-up event), unused 0.1 core below the
  // default gamma 0.2 (no scale-down event), zero memory per item.
  void drive_steady() {
    for (cluster::Container* c : containers) {
      sim.schedule_every(milliseconds(1), milliseconds(10), [c] {
        c->submit(milliseconds(9), 0, [](bool) {});
      });
    }
  }
};

TEST(DifferentialTest, EventFreeWorkloadMatchesStaticBaseline) {
  Rig escra_rig;
  core::EscraSystem escra(escra_rig.sim, escra_rig.net, escra_rig.k8s,
                          kGlobalCpu, kGlobalMem);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(escra_rig.containers);
  escra.start();
  escra_rig.drive_steady();
  escra_rig.sim.run_until(seconds(5));

  Rig static_rig;
  baselines::StaticPolicy policy(
      static_rig.containers,
      {{kExpectedCores, kExpectedMem}, {kExpectedCores, kExpectedMem}},
      /*multiplier=*/1.0);
  policy.start();
  static_rig.drive_steady();
  static_rig.sim.run_until(seconds(5));

  // Final limits agree exactly: Escra never moved off the Eq. 1-2 values.
  for (std::size_t i = 0; i < escra_rig.containers.size(); ++i) {
    EXPECT_DOUBLE_EQ(escra_rig.containers[i]->cpu_cgroup().limit_cores(),
                     static_rig.containers[i]->cpu_cgroup().limit_cores());
    EXPECT_EQ(escra_rig.containers[i]->mem_cgroup().limit(),
              static_rig.containers[i]->mem_cgroup().limit());
    EXPECT_DOUBLE_EQ(escra_rig.containers[i]->cpu_cgroup().limit_cores(),
                     kExpectedCores);
    EXPECT_EQ(escra_rig.containers[i]->mem_cgroup().limit(), kExpectedMem);
  }

  // And the allocator was a strict no-op: no grants, shrinks, OOM rescues,
  // or reclaimed bytes — only the two registrations hit the trace.
  EXPECT_EQ(observer.h.cpu_grants->value(), 0u);
  EXPECT_EQ(observer.h.cpu_shrinks->value(), 0u);
  EXPECT_EQ(observer.h.mem_grants->value(), 0u);
  EXPECT_EQ(observer.h.reclaim_bytes->value(), 0u);
  EXPECT_EQ(observer.h.oom_events->value(), 0u);
  EXPECT_EQ(observer.h.registrations->value(), 2u);

  // The workload itself behaved identically under both policies.
  for (cluster::Container* c : escra_rig.containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
  for (cluster::Container* c : static_rig.containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
}

}  // namespace
}  // namespace escra
