// Differential tests.
//
// 1) Against the static baseline: for a workload that never triggers a
//    control event (no throttling, unused runtime below gamma, no OOMs, no
//    reclaimable slack), Escra must behave exactly like static allocation —
//    the Eq. 1-2 initial limits are the final limits, and the allocator
//    makes zero decisions. Any drift here means Escra acts without an
//    event, contradicting the paper's event-driven design.
//
// 2) Batched vs legacy limit-update wire path: the coalesced per-node RPC
//    (config.batch_limit_updates) is a transport optimization and must be
//    semantically invisible. On the canonical 64-node / 256-container
//    scenario (bench/sim_throughput's e2e case) the two paths must make the
//    same decisions at the same times with the same values — compared as a
//    canonicalized trace (events sorted within a timestamp, ids/causal
//    links dropped: within-tick apply *order* legitimately differs when a
//    batch groups a node's entries) and as metrics with only the
//    wire-accounting counters (net.*, controller.batched_*) excluded.
//    Under faults (2% RPC loss, leader failover mid-batch) cross-path byte
//    equality is impossible by construction — both paths draw from one
//    fault-rng stream and a batch consumes one draw where legacy consumes
//    many, so the fault schedules diverge — there each path must instead be
//    exactly reproducible run-to-run, keep every invariant green, and end
//    converged.
//
// 3) Sharded vs single controller: a ShardedControlPlane at --shards 1 is
//    the same EscraSystem behind a router, so its decision stream must be
//    *byte-identical* to the unsharded controller on the canonical
//    scenario. Multi-shard runs cannot match the single controller decision
//    for decision (each shard allocates from its slice), but must be
//    byte-identical run-to-run and keep cross-shard pool conservation
//    green.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/static_policy.h"
#include "check/invariant_checker.h"
#include "check/shard_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"
#include "shard/sharded_control_plane.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace escra {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// 2 containers, Eq. 1 gives 2.0 / 2 = 1.0 core each; Eq. 2 gives
// 640 MiB * (1 - sigma 0.2) / 2 = 256 MiB each.
constexpr double kGlobalCpu = 2.0;
constexpr memcg::Bytes kGlobalMem = 640 * kMiB;
constexpr double kExpectedCores = 1.0;
constexpr memcg::Bytes kExpectedMem = 256 * kMiB;

// Base memory keeps every limit within usage + delta (210 + 50 >= 256 MiB),
// so periodic reclamation has nothing to take.
constexpr memcg::Bytes kBaseMem = 210 * kMiB;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::vector<cluster::Container*> containers;

  Rig() {
    k8s.add_node({.cores = 8.0});
    for (int i = 0; i < 2; ++i) {
      cluster::ContainerSpec spec;
      spec.name = "svc" + std::to_string(i);
      spec.base_memory = kBaseMem;
      spec.max_parallelism = 4.0;
      containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
    }
  }

  // A 9 ms item every 10 ms from t = 1 ms: 90% utilization in every CFS
  // period — never throttled (no scale-up event), unused 0.1 core below the
  // default gamma 0.2 (no scale-down event), zero memory per item.
  void drive_steady() {
    for (cluster::Container* c : containers) {
      sim.schedule_every(milliseconds(1), milliseconds(10), [c] {
        c->submit(milliseconds(9), 0, [](bool) {});
      });
    }
  }
};

TEST(DifferentialTest, EventFreeWorkloadMatchesStaticBaseline) {
  Rig escra_rig;
  core::EscraSystem escra(escra_rig.sim, escra_rig.net, escra_rig.k8s,
                          kGlobalCpu, kGlobalMem);
  obs::Observer observer;
  escra.attach_observer(observer);
  escra.manage(escra_rig.containers);
  escra.start();
  escra_rig.drive_steady();
  escra_rig.sim.run_until(seconds(5));

  Rig static_rig;
  baselines::StaticPolicy policy(
      static_rig.containers,
      {{kExpectedCores, kExpectedMem}, {kExpectedCores, kExpectedMem}},
      /*multiplier=*/1.0);
  policy.start();
  static_rig.drive_steady();
  static_rig.sim.run_until(seconds(5));

  // Final limits agree exactly: Escra never moved off the Eq. 1-2 values.
  for (std::size_t i = 0; i < escra_rig.containers.size(); ++i) {
    EXPECT_DOUBLE_EQ(escra_rig.containers[i]->cpu_cgroup().limit_cores(),
                     static_rig.containers[i]->cpu_cgroup().limit_cores());
    EXPECT_EQ(escra_rig.containers[i]->mem_cgroup().limit(),
              static_rig.containers[i]->mem_cgroup().limit());
    EXPECT_DOUBLE_EQ(escra_rig.containers[i]->cpu_cgroup().limit_cores(),
                     kExpectedCores);
    EXPECT_EQ(escra_rig.containers[i]->mem_cgroup().limit(), kExpectedMem);
  }

  // And the allocator was a strict no-op: no grants, shrinks, OOM rescues,
  // or reclaimed bytes — only the two registrations hit the trace.
  EXPECT_EQ(observer.h.cpu_grants->value(), 0u);
  EXPECT_EQ(observer.h.cpu_shrinks->value(), 0u);
  EXPECT_EQ(observer.h.mem_grants->value(), 0u);
  EXPECT_EQ(observer.h.reclaim_bytes->value(), 0u);
  EXPECT_EQ(observer.h.oom_events->value(), 0u);
  EXPECT_EQ(observer.h.registrations->value(), 2u);

  // The workload itself behaved identically under both policies.
  for (cluster::Container* c : escra_rig.containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
  for (cluster::Container* c : static_rig.containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
}

// --- batched vs legacy limit-update wire path -----------------------------

struct CanonicalOptions {
  bool batched = true;
  double rpc_drop = 0.0;
  bool failover = false;  // kill the leader mid-batch at t = 1 s
  int shards = 0;         // 0 = bare EscraSystem, >=1 = ShardedControlPlane
  int apps = 1;           // contiguous app groups (sharded runs only)
};

struct CanonicalRun {
  std::vector<std::tuple<sim::TimePoint, int, std::uint32_t, std::uint32_t,
                         double, double, std::int64_t>>
      canonical_trace;  // (time, kind, container, node, before, after, detail)
  std::string filtered_metrics;
  std::string raw_trace;  // for run-to-run byte equality
  std::vector<double> cpu_limits;
  std::vector<memcg::Bytes> mem_limits;
  bool checker_ok = false;
  std::string checker_report;
  std::uint64_t retransmits = 0;
  std::uint64_t batched_rpcs = 0;
  std::uint64_t batch_entries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t borrow_grants = 0;
  std::size_t registered = 0;
};

// The canonical 64-node, 256-container cluster from bench/sim_throughput's
// e2e case (shortened to 2 simulated seconds), with observer + invariant
// checker attached.
CanonicalRun run_canonical(const CanonicalOptions& opt) {
  sim::Simulation sim;
  net::Network network(sim);
  cluster::Cluster k8s(sim);
  constexpr int kNodes = 64;
  constexpr int kContainersPerNode = 4;
  for (int n = 0; n < kNodes; ++n) {
    k8s.add_node(cluster::NodeConfig{.cores = 20.0});
  }
  core::EscraConfig cfg;
  cfg.batch_limit_updates = opt.batched;
  // Either one bare EscraSystem or a ShardedControlPlane over the identical
  // pool — built in the same order so `--shards 1` replays the exact event
  // schedule of the unsharded controller.
  std::optional<core::EscraSystem> bare;
  std::optional<shard::ShardedControlPlane> plane;
  if (opt.shards == 0) {
    bare.emplace(sim, network, k8s, 512.0, 256LL * memcg::kGiB, cfg);
  } else {
    shard::ShardPlaneConfig pcfg;
    pcfg.shards = opt.shards;
    pcfg.escra = cfg;
    plane.emplace(sim, network, k8s, 512.0, 256LL * memcg::kGiB, pcfg);
  }
  const int observer_count = opt.shards == 0 ? 1 : opt.shards;
  std::vector<std::unique_ptr<obs::Observer>> observers;
  for (int s = 0; s < observer_count; ++s) {
    observers.push_back(std::make_unique<obs::Observer>(
        obs::Observer::Config{.trace_capacity = 1 << 20}));
  }
  obs::Observer& observer = *observers[0];
  if (bare) {
    bare->attach_observer(observer);
  } else {
    for (int s = 0; s < opt.shards; ++s) {
      plane->attach_observer(s, *observers[s]);
    }
  }
  // Net metrics live on observer 0 only; the other shards' checkers skip the
  // net-consistency rules (their registries have no net.* counters).
  network.attach_metrics(observer.metrics());
  std::vector<std::unique_ptr<check::InvariantChecker>> checkers;
  if (bare) {
    checkers.push_back(
        std::make_unique<check::InvariantChecker>(*bare, network, observer));
  } else {
    for (int s = 0; s < opt.shards; ++s) {
      checkers.push_back(std::make_unique<check::InvariantChecker>(
          plane->shard(s), network, *observers[s]));
    }
  }
  std::optional<check::ShardInvariantChecker> shard_checker;
  if (plane) shard_checker.emplace(*plane);

  if (opt.rpc_drop > 0.0) {
    network.set_fault_rng(sim::Rng(0xbe4cfULL));
    network.set_drop_rate(net::Channel::kControlRpc, opt.rpc_drop);
  }

  sim::Rng root(0xe5c7a64ULL);
  std::vector<cluster::Container*> members;
  for (int c = 0; c < kNodes * kContainersPerNode; ++c) {
    cluster::ContainerSpec spec;
    spec.name = "c" + std::to_string(c);
    spec.max_parallelism = 4.0;
    spec.base_memory = 64 * memcg::kMiB;
    members.push_back(&k8s.create_container(spec, 1.0, 256 * memcg::kMiB));
  }
  if (bare) {
    bare->manage(members);
    bare->start();
  } else {
    // Contiguous app groups; apps == 1 keeps the whole cluster in one app,
    // which at shards == 1 routes everything to shard 0's full-pool slice.
    const int apps = std::max(1, opt.apps);
    const std::size_t per = members.size() / apps;
    for (int a = 0; a < apps; ++a) {
      std::vector<cluster::Container*> group(
          members.begin() + a * per,
          a + 1 == apps ? members.end() : members.begin() + (a + 1) * per);
      plane->manage(apps == 1 ? std::string("canonical")
                              : "app" + std::to_string(a),
                    group);
    }
    plane->start();
  }

  std::optional<ha::HaControlPlane> ha;
  if (opt.failover) {
    if (bare) {
      ha::HaConfig hcfg;
      hcfg.standbys = 1;
      ha.emplace(*bare, network, hcfg);
      ha->start();
    } else {
      plane->enable_ha(1);
    }
    // Land inside the decision tick: at t = 1 s + 80 us the telemetry has
    // been ingested and this period's limit updates are on the wire (in
    // batched mode: issued, flushed, not yet delivered) — the takeover
    // happens mid-batch, with per-entry acks still in flight.
    sim.schedule_at(sim::seconds(1) + sim::microseconds(230), [&] {
      if (ha) {
        ha->kill_leader();
      } else {
        plane->ha(0).kill_leader();
      }
    });
  }

  struct Stream {
    cluster::Container* container;
    int phase;
    sim::Rng rng;
  };
  std::vector<Stream> streams;
  streams.reserve(members.size());
  int idx = 0;
  for (cluster::Container* c : members) {
    streams.push_back({c, idx++, root.fork()});
  }
  for (Stream& s : streams) {
    sim::Simulation* simp = &sim;
    sim.schedule_every(
        milliseconds(1 + s.rng.uniform_int(0, 19)), milliseconds(20),
        [&s, simp] {
          const bool on =
              ((simp->now() / milliseconds(500)) + s.phase) % 2 == 0;
          const int batch = on ? 3 : 0;
          for (int b = 0; b < batch; ++b) {
            const double cost_ms = s.rng.lognormal(std::log(4.0), 0.8);
            s.container->submit(
                std::max<sim::Duration>(
                    1, static_cast<sim::Duration>(cost_ms * 1000.0)),
                2 * memcg::kMiB, [](bool) {});
          }
        });
  }
  sim.run_until(seconds(2));

  CanonicalRun r;
  for (const auto& obs_ptr : observers) {
    const obs::TraceBuffer& trace = obs_ptr->trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const obs::TraceEvent& e = trace.at(i);
      r.canonical_trace.emplace_back(e.time, static_cast<int>(e.kind),
                                     e.container, e.node, e.before, e.after,
                                     e.detail);
    }
  }
  // Canonicalize: within one timestamp, order is a scheduling artifact of
  // how deliveries were grouped; across timestamps it is behavior.
  std::stable_sort(r.canonical_trace.begin(), r.canonical_trace.end());
  std::ostringstream raw;
  if (plane && opt.shards > 1) {
    plane->export_merged_trace(raw);
  } else {
    // Shard 0's buffer alone — at shards <= 1 this is the whole story and
    // stays byte-comparable with the unsharded export.
    observer.trace().export_jsonl(raw);
  }
  r.raw_trace = raw.str();
  // The CSV is column-oriented (one header row, one value row). Drop the
  // wire-accounting columns — net.* and the batch coalescing counters are
  // *supposed* to differ between transports — and keep everything else.
  std::ostringstream metrics;
  observer.metrics().export_csv(metrics, sim.now());
  std::istringstream lines(metrics.str());
  std::string header, values;
  std::getline(lines, header);
  std::getline(lines, values);
  const auto split = [](const std::string& row) {
    std::vector<std::string> cells;
    std::istringstream ss(row);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    return cells;
  };
  const std::vector<std::string> names = split(header);
  const std::vector<std::string> cells = split(values);
  for (std::size_t i = 0; i < names.size() && i < cells.size(); ++i) {
    if (names[i].rfind("net.", 0) == 0 ||
        names[i] == "controller.batched_rpcs" ||
        names[i] == "controller.batch_entries") {
      continue;
    }
    r.filtered_metrics += names[i] + "=" + cells[i] + "\n";
  }
  for (const cluster::Container* c : members) {
    r.cpu_limits.push_back(c->cpu_cgroup().limit_cores());
    r.mem_limits.push_back(c->mem_cgroup().limit());
  }
  r.checker_ok = true;
  for (const auto& c : checkers) {
    if (!c->ok()) {
      r.checker_ok = false;
      r.checker_report += c->report();
    }
  }
  if (shard_checker && !shard_checker->ok()) {
    r.checker_ok = false;
    r.checker_report += shard_checker->report();
  }
  if (r.checker_ok) r.checker_report = "ok";
  if (bare) {
    r.retransmits = bare->controller().retransmits();
    r.failovers = ha ? ha->failovers() : 0;
    r.registered = bare->controller().registered_count();
  } else {
    for (int s = 0; s < opt.shards; ++s) {
      r.retransmits += plane->shard(s).controller().retransmits();
      r.registered += plane->shard(s).controller().registered_count();
    }
    r.failovers = plane->ha_enabled() ? plane->ha(0).failovers() : 0;
    r.borrow_grants = plane->borrows_granted();
  }
  r.batched_rpcs = observer.h.batched_rpcs->value();
  r.batch_entries = observer.h.batch_entries->value();
  return r;
}

TEST(DifferentialTest, BatchedAndLegacyPathsAgreeOnCanonicalScenario) {
  const CanonicalRun batched = run_canonical({.batched = true});
  const CanonicalRun legacy = run_canonical({.batched = false});

  EXPECT_TRUE(batched.checker_ok) << batched.checker_report;
  EXPECT_TRUE(legacy.checker_ok) << legacy.checker_report;
  EXPECT_GT(batched.batched_rpcs, 0u);
  EXPECT_GT(batched.batch_entries, batched.batched_rpcs)
      << "coalescing must actually group a node's per-period updates";
  EXPECT_EQ(legacy.batched_rpcs, 0u);

  // Same decisions, same instants, same values — the transport is invisible.
  ASSERT_EQ(batched.canonical_trace.size(), legacy.canonical_trace.size());
  EXPECT_EQ(batched.canonical_trace, legacy.canonical_trace);
  EXPECT_EQ(batched.filtered_metrics, legacy.filtered_metrics);
  EXPECT_EQ(batched.cpu_limits, legacy.cpu_limits);
  EXPECT_EQ(batched.mem_limits, legacy.mem_limits);
}

TEST(DifferentialTest, BothPathsAreReproducibleAndSoundUnderRpcLoss) {
  for (const bool batched : {true, false}) {
    SCOPED_TRACE(batched ? "batched" : "legacy");
    const CanonicalRun a = run_canonical({.batched = batched, .rpc_drop = 0.02});
    const CanonicalRun b = run_canonical({.batched = batched, .rpc_drop = 0.02});
    EXPECT_TRUE(a.checker_ok) << a.checker_report;
    EXPECT_GT(a.retransmits, 0u) << "2% loss must force retransmits";
    // Determinism survives the fault path: byte-identical reruns.
    EXPECT_EQ(a.raw_trace, b.raw_trace);
    EXPECT_EQ(a.cpu_limits, b.cpu_limits);
    EXPECT_EQ(a.mem_limits, b.mem_limits);
    EXPECT_EQ(a.registered, 256u);
  }
}

// --- sharded vs single controller -----------------------------------------

TEST(DifferentialTest, SingleShardPlaneMatchesBareController) {
  const CanonicalRun bare = run_canonical({});
  const CanonicalRun sharded = run_canonical({.shards = 1});

  EXPECT_TRUE(bare.checker_ok) << bare.checker_report;
  EXPECT_TRUE(sharded.checker_ok) << sharded.checker_report;
  EXPECT_EQ(sharded.registered, 256u);
  EXPECT_EQ(sharded.borrow_grants, 0u)
      << "a single shard has nobody to borrow from";

  // Byte-identical, not merely equivalent: same events, same instants, same
  // values, same ids — the shard layer at N = 1 adds nothing.
  EXPECT_EQ(bare.raw_trace, sharded.raw_trace);
  EXPECT_EQ(bare.canonical_trace, sharded.canonical_trace);
  EXPECT_EQ(bare.filtered_metrics, sharded.filtered_metrics);
  EXPECT_EQ(bare.cpu_limits, sharded.cpu_limits);
  EXPECT_EQ(bare.mem_limits, sharded.mem_limits);
}

TEST(DifferentialTest, MultiShardCanonicalRunsAreByteReproducible) {
  const CanonicalOptions opt{.shards = 4, .apps = 32};
  const CanonicalRun a = run_canonical(opt);
  const CanonicalRun b = run_canonical(opt);

  EXPECT_TRUE(a.checker_ok) << a.checker_report;
  EXPECT_TRUE(b.checker_ok) << b.checker_report;
  EXPECT_EQ(a.registered, 256u);
  // The merged trace (all four shards, stable cross-shard order, re-assigned
  // ids) is byte-identical across runs.
  EXPECT_EQ(a.raw_trace, b.raw_trace);
  EXPECT_EQ(a.cpu_limits, b.cpu_limits);
  EXPECT_EQ(a.mem_limits, b.mem_limits);
}

TEST(DifferentialTest, MultiShardSurvivesShardLeaderFailover) {
  const CanonicalOptions opt{.failover = true, .shards = 4, .apps = 32};
  const CanonicalRun a = run_canonical(opt);
  const CanonicalRun b = run_canonical(opt);

  EXPECT_TRUE(a.checker_ok) << a.checker_report;
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_EQ(a.registered, 256u) << "takeover must rebuild shard 0's registry";
  EXPECT_EQ(a.raw_trace, b.raw_trace);
  EXPECT_EQ(a.cpu_limits, b.cpu_limits);
  EXPECT_EQ(a.mem_limits, b.mem_limits);
}

TEST(DifferentialTest, BothPathsSurviveLeaderFailoverMidBatch) {
  for (const bool batched : {true, false}) {
    SCOPED_TRACE(batched ? "batched" : "legacy");
    const CanonicalRun a = run_canonical({.batched = batched, .failover = true});
    const CanonicalRun b = run_canonical({.batched = batched, .failover = true});
    EXPECT_TRUE(a.checker_ok) << a.checker_report;
    EXPECT_EQ(a.failovers, 1u);
    EXPECT_EQ(a.registered, 256u) << "takeover must rebuild the registry";
    EXPECT_EQ(a.raw_trace, b.raw_trace) << "failover schedule is deterministic";
    EXPECT_EQ(a.cpu_limits, b.cpu_limits);
    EXPECT_EQ(a.mem_limits, b.mem_limits);
  }
}

}  // namespace
}  // namespace escra
