#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace escra::sim {
namespace {

// ---------------------------------------------------------------- RunningStat

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MatchesNaiveOnRandomData) {
  Rng rng(99);
  RunningStat s;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    s.add(x);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = (sum_sq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// -------------------------------------------------------------- SlidingWindow

TEST(SlidingWindowTest, ZeroCapacityThrows) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(SlidingWindowTest, EmptyMeanIsZero) {
  SlidingWindow w(4);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.full());
}

TEST(SlidingWindowTest, PartialWindowAveragesWhatExists) {
  SlidingWindow w(5);
  w.add(2.0);
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_EQ(w.size(), 2u);
}

TEST(SlidingWindowTest, OldSamplesEvicted) {
  SlidingWindow w(3);
  for (const double x : {1.0, 2.0, 3.0}) w.add(x);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  w.add(10.0);  // evicts 2.0
  EXPECT_DOUBLE_EQ(w.mean(), (3.0 + 10.0 + 10.0) / 3.0);
}

// This is the allocator's throttle-window: a 0/1 series whose mean is the
// average throttle count over the last n periods (Section IV-D1).
TEST(SlidingWindowTest, ThrottleWindowSemantics) {
  SlidingWindow w(5);
  for (int i = 0; i < 5; ++i) w.add(0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  w.add(1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.2);
  for (int i = 0; i < 4; ++i) w.add(1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 1.0);
}

TEST(SlidingWindowTest, SumTracksWindowContents) {
  SlidingWindow w(2);
  w.add(3.0);
  w.add(4.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.sum(), 9.0);
}

TEST(SlidingWindowTest, ResetEmptiesWindow) {
  SlidingWindow w(3);
  w.add(5.0);
  w.reset();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.sum(), 0.0);
}

class SlidingWindowCapacityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlidingWindowCapacityTest, MeanMatchesNaiveComputation) {
  const std::size_t cap = GetParam();
  SlidingWindow w(cap);
  Rng rng(cap);
  std::vector<double> all;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.push_back(x);
    w.add(x);
    double expect = 0.0;
    const std::size_t lo = all.size() > cap ? all.size() - cap : 0;
    for (std::size_t j = lo; j < all.size(); ++j) expect += all[j];
    expect /= static_cast<double>(all.size() - lo);
    ASSERT_NEAR(w.mean(), expect, 1e-9) << "capacity=" << cap << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SlidingWindowCapacityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 32, 100));

// ------------------------------------------------------------------ SampleSet

TEST(SampleSetTest, EmptyQueriesAreZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.0);
  EXPECT_TRUE(s.cdf_curve(10).empty());
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSetTest, CdfAtCountsInclusive) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSetTest, CdfCurveIsMonotone) {
  SampleSet s;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) s.add(rng.exponential(1.0));
  const auto curve = s.cdf_curve(25);
  ASSERT_EQ(curve.size(), 25u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSetTest, UniformSamplesHaveExpectedQuantiles) {
  SampleSet s;
  Rng rng(17);
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform(0.0, 1.0));
  EXPECT_NEAR(s.percentile(50), 0.5, 0.02);
  EXPECT_NEAR(s.percentile(90), 0.9, 0.02);
  EXPECT_NEAR(s.percentile(99), 0.99, 0.01);
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

// -------------------------------------------------------------- DecayingValue

TEST(DecayingValueTest, DecaysByHalfEveryHalfLife) {
  DecayingValue v(10.0);
  v.add(0.0, 8.0);
  EXPECT_DOUBLE_EQ(v.value(0.0), 8.0);
  EXPECT_NEAR(v.value(10.0), 4.0, 1e-12);
  EXPECT_NEAR(v.value(20.0), 2.0, 1e-12);
  EXPECT_NEAR(v.value(30.0), 1.0, 1e-12);
}

TEST(DecayingValueTest, AddAccumulatesDecayedValue) {
  DecayingValue v(10.0);
  v.add(0.0, 4.0);
  v.add(10.0, 4.0);  // old 4 decayed to 2, plus 4
  EXPECT_NEAR(v.value(10.0), 6.0, 1e-12);
}

TEST(DecayingValueTest, EmptyIsZero) {
  const DecayingValue v(5.0);
  EXPECT_DOUBLE_EQ(v.value(100.0), 0.0);
}

}  // namespace
}  // namespace escra::sim
