// Multi-tenant isolation (Section VII): several Distributed Containers
// sharing worker nodes, each confined to its own aggregate limits at
// runtime. A misbehaving tenant must not be able to take CPU or memory
// beyond its budget, no matter how hard it bursts.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "sim/histogram.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct TwoTenantRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::vector<cluster::Container*> a_containers;
  std::vector<cluster::Container*> b_containers;
  std::unique_ptr<core::EscraSystem> tenant_a;
  std::unique_ptr<core::EscraSystem> tenant_b;

  TwoTenantRig(double a_cpu, double b_cpu) {
    for (int i = 0; i < 2; ++i) k8s.add_node({.cores = 16.0});
    cluster::ContainerSpec spec;
    spec.base_memory = 96 * kMiB;
    spec.max_parallelism = 8.0;
    for (int i = 0; i < 2; ++i) {
      spec.name = "a" + std::to_string(i);
      a_containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
      spec.name = "b" + std::to_string(i);
      b_containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
    }
    tenant_a = std::make_unique<core::EscraSystem>(sim, net, k8s, a_cpu, 2 * kGiB);
    tenant_a->manage(a_containers);
    tenant_a->start();
    tenant_b = std::make_unique<core::EscraSystem>(sim, net, k8s, b_cpu, 1 * kGiB);
    tenant_b->manage(b_containers);
    tenant_b->start();
  }
};

TEST(MultiTenantTest, RunawayTenantCappedAtItsGlobalLimit) {
  TwoTenantRig rig(/*a_cpu=*/6.0, /*b_cpu=*/4.0);
  // Tenant B wants far more than 4 cores.
  rig.sim.schedule_every(milliseconds(20), milliseconds(20), [&] {
    for (cluster::Container* c : rig.b_containers) {
      c->submit(milliseconds(200), 0, nullptr);  // ~10 cores per container
    }
  });
  sim::SampleSet b_usage;
  std::vector<sim::Duration> prev(rig.b_containers.size(), 0);
  rig.sim.schedule_every(seconds(1), seconds(1), [&] {
    double used = 0.0;
    for (std::size_t i = 0; i < rig.b_containers.size(); ++i) {
      const auto consumed = rig.b_containers[i]->cpu_cgroup().total_consumed();
      used += static_cast<double>(consumed - prev[i]) / 1e6;
      prev[i] = consumed;
    }
    if (rig.sim.now() > seconds(5)) b_usage.add(used);
  });
  rig.sim.run_until(seconds(30));
  // Even saturated, tenant B's aggregate usage stays at/below its 4-core
  // budget (within one CFS period of slop).
  EXPECT_LE(b_usage.max(), 4.3);
  EXPECT_GT(b_usage.percentile(50), 3.0) << "B does get its own budget";
  EXPECT_LE(rig.tenant_b->app().cpu_allocated(), 4.0 + 1e-6);
}

TEST(MultiTenantTest, NeighbourUnaffectedByStorm) {
  TwoTenantRig rig(6.0, 4.0);
  // Tenant A: steady flow whose latency we track.
  sim::Histogram latency;
  rig.sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    const sim::TimePoint t0 = rig.sim.now();
    rig.a_containers[0]->submit(milliseconds(4), kMiB, [&, t0](bool ok) {
      if (ok) latency.record(std::max<sim::TimePoint>(1, rig.sim.now() - t0));
    });
  });
  // Quiet first half, tenant-B storm in the second half.
  rig.sim.schedule_at(seconds(15), [&] {
    rig.sim.schedule_every(rig.sim.now() + milliseconds(20), milliseconds(20),
                           [&] {
      for (cluster::Container* c : rig.b_containers) {
        c->submit(milliseconds(200), 2 * kMiB, nullptr);
      }
    });
  });
  rig.sim.run_until(seconds(15));
  const auto quiet_p99 = latency.percentile(99);
  latency.reset();
  rig.sim.run_until(seconds(30));
  const auto storm_p99 = latency.percentile(99);
  // 16+16 cores of hardware, 6+4 of budgets: the storm is absorbed inside
  // B's cap, so A's tail moves by at most a small factor.
  EXPECT_LT(static_cast<double>(storm_p99),
            2.0 * static_cast<double>(quiet_p99) + 20000.0);
}

TEST(MultiTenantTest, MemoryIsolationAcrossTenants) {
  TwoTenantRig rig(6.0, 4.0);
  // Tenant B's hog grows until its own pool is exhausted.
  rig.sim.schedule_every(milliseconds(500), milliseconds(500), [&] {
    rig.b_containers[0]->adjust_resident(24 * kMiB);
  });
  rig.sim.run_until(seconds(40));
  // B's hog eventually dies against B's 1 GiB budget...
  EXPECT_GE(rig.b_containers[0]->oom_kill_count(), 1u);
  // ...while tenant A's containers and pool are untouched.
  for (const cluster::Container* c : rig.a_containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
  EXPECT_LE(rig.tenant_b->app().mem_allocated(),
            rig.tenant_b->app().mem_limit());
  EXPECT_LE(rig.tenant_a->app().mem_allocated(),
            rig.tenant_a->app().mem_limit());
}

TEST(MultiTenantTest, BudgetsCanOversubscribeHardware) {
  // Limits are not reservations: tenants' budgets may sum past the node
  // capacity, and the node scheduler arbitrates actual contention.
  TwoTenantRig rig(/*a_cpu=*/24.0, /*b_cpu=*/24.0);  // 48 > 32 cores
  for (auto* tenants : {&rig.a_containers, &rig.b_containers}) {
    for (cluster::Container* c : *tenants) {
      rig.sim.schedule_every(milliseconds(20), milliseconds(20), [c] {
        c->submit(milliseconds(300), 0, nullptr);
      });
    }
  }
  rig.sim.run_until(seconds(20));
  double total_used = 0.0;
  for (const cluster::Container* c : rig.k8s.containers()) {
    total_used += sim::to_seconds(c->cpu_cgroup().total_consumed());
  }
  // The hardware (2 x 16 cores x 20 s = 640 core-s) is the binding limit;
  // both tenants share it without either being starved.
  EXPECT_GT(total_used, 500.0);
  EXPECT_LE(total_used, 645.0);
}

}  // namespace
}  // namespace escra
