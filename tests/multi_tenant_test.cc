// Multi-tenant isolation (Section VII): several Distributed Containers
// sharing worker nodes, each confined to its own aggregate limits at
// runtime. A misbehaving tenant must not be able to take CPU or memory
// beyond its budget, no matter how hard it bursts.
#include <gtest/gtest.h>

#include "adv/greedy.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "exp/fairness.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/histogram.h"
#include "sim/rng.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct TwoTenantRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  std::vector<cluster::Container*> a_containers;
  std::vector<cluster::Container*> b_containers;
  std::unique_ptr<core::EscraSystem> tenant_a;
  std::unique_ptr<core::EscraSystem> tenant_b;

  TwoTenantRig(double a_cpu, double b_cpu) {
    for (int i = 0; i < 2; ++i) k8s.add_node({.cores = 16.0});
    cluster::ContainerSpec spec;
    spec.base_memory = 96 * kMiB;
    spec.max_parallelism = 8.0;
    for (int i = 0; i < 2; ++i) {
      spec.name = "a" + std::to_string(i);
      a_containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
      spec.name = "b" + std::to_string(i);
      b_containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
    }
    tenant_a = std::make_unique<core::EscraSystem>(sim, net, k8s, a_cpu, 2 * kGiB);
    tenant_a->manage(a_containers);
    tenant_a->start();
    tenant_b = std::make_unique<core::EscraSystem>(sim, net, k8s, b_cpu, 1 * kGiB);
    tenant_b->manage(b_containers);
    tenant_b->start();
  }
};

TEST(MultiTenantTest, RunawayTenantCappedAtItsGlobalLimit) {
  TwoTenantRig rig(/*a_cpu=*/6.0, /*b_cpu=*/4.0);
  // Tenant B wants far more than 4 cores.
  rig.sim.schedule_every(milliseconds(20), milliseconds(20), [&] {
    for (cluster::Container* c : rig.b_containers) {
      c->submit(milliseconds(200), 0, nullptr);  // ~10 cores per container
    }
  });
  sim::SampleSet b_usage;
  std::vector<sim::Duration> prev(rig.b_containers.size(), 0);
  rig.sim.schedule_every(seconds(1), seconds(1), [&] {
    double used = 0.0;
    for (std::size_t i = 0; i < rig.b_containers.size(); ++i) {
      const auto consumed = rig.b_containers[i]->cpu_cgroup().total_consumed();
      used += static_cast<double>(consumed - prev[i]) / 1e6;
      prev[i] = consumed;
    }
    if (rig.sim.now() > seconds(5)) b_usage.add(used);
  });
  rig.sim.run_until(seconds(30));
  // Even saturated, tenant B's aggregate usage stays at/below its 4-core
  // budget (within one CFS period of slop).
  EXPECT_LE(b_usage.max(), 4.3);
  EXPECT_GT(b_usage.percentile(50), 3.0) << "B does get its own budget";
  EXPECT_LE(rig.tenant_b->app().cpu_allocated(), 4.0 + 1e-6);
}

TEST(MultiTenantTest, NeighbourUnaffectedByStorm) {
  TwoTenantRig rig(6.0, 4.0);
  // Tenant A: steady flow whose latency we track.
  sim::Histogram latency;
  rig.sim.schedule_every(milliseconds(10), milliseconds(10), [&] {
    const sim::TimePoint t0 = rig.sim.now();
    rig.a_containers[0]->submit(milliseconds(4), kMiB, [&, t0](bool ok) {
      if (ok) latency.record(std::max<sim::TimePoint>(1, rig.sim.now() - t0));
    });
  });
  // Quiet first half, tenant-B storm in the second half.
  rig.sim.schedule_at(seconds(15), [&] {
    rig.sim.schedule_every(rig.sim.now() + milliseconds(20), milliseconds(20),
                           [&] {
      for (cluster::Container* c : rig.b_containers) {
        c->submit(milliseconds(200), 2 * kMiB, nullptr);
      }
    });
  });
  rig.sim.run_until(seconds(15));
  const auto quiet_p99 = latency.percentile(99);
  latency.reset();
  rig.sim.run_until(seconds(30));
  const auto storm_p99 = latency.percentile(99);
  // 16+16 cores of hardware, 6+4 of budgets: the storm is absorbed inside
  // B's cap, so A's tail moves by at most a small factor.
  EXPECT_LT(static_cast<double>(storm_p99),
            2.0 * static_cast<double>(quiet_p99) + 20000.0);
}

TEST(MultiTenantTest, MemoryIsolationAcrossTenants) {
  TwoTenantRig rig(6.0, 4.0);
  // Tenant B's hog grows until its own pool is exhausted.
  rig.sim.schedule_every(milliseconds(500), milliseconds(500), [&] {
    rig.b_containers[0]->adjust_resident(24 * kMiB);
  });
  rig.sim.run_until(seconds(40));
  // B's hog eventually dies against B's 1 GiB budget...
  EXPECT_GE(rig.b_containers[0]->oom_kill_count(), 1u);
  // ...while tenant A's containers and pool are untouched.
  for (const cluster::Container* c : rig.a_containers) {
    EXPECT_EQ(c->oom_kill_count(), 0u);
  }
  EXPECT_LE(rig.tenant_b->app().mem_allocated(),
            rig.tenant_b->app().mem_limit());
  EXPECT_LE(rig.tenant_a->app().mem_allocated(),
            rig.tenant_a->app().mem_limit());
}

TEST(MultiTenantTest, BudgetsCanOversubscribeHardware) {
  // Limits are not reservations: tenants' budgets may sum past the node
  // capacity, and the node scheduler arbitrates actual contention.
  TwoTenantRig rig(/*a_cpu=*/24.0, /*b_cpu=*/24.0);  // 48 > 32 cores
  for (auto* tenants : {&rig.a_containers, &rig.b_containers}) {
    for (cluster::Container* c : *tenants) {
      rig.sim.schedule_every(milliseconds(20), milliseconds(20), [c] {
        c->submit(milliseconds(300), 0, nullptr);
      });
    }
  }
  rig.sim.run_until(seconds(20));
  double total_used = 0.0;
  for (const cluster::Container* c : rig.k8s.containers()) {
    total_used += sim::to_seconds(c->cpu_cgroup().total_consumed());
  }
  // The hardware (2 x 16 cores x 20 s = 640 core-s) is the binding limit;
  // both tenants share it without either being starved.
  EXPECT_GT(total_used, 500.0);
  EXPECT_LE(total_used, 645.0);
}

// --- lying tenants vs the honest floor (src/adv + the credit defense) ---

// One pool, four members, one of them adversarial. Honest members run a
// steady genuine load; the liar forges its telemetry stream.
struct GreedyRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  std::vector<cluster::Container*> containers;
  core::EscraSystem escra;
  workload::GreedyTenant liar;
  exp::FairnessMeter meter;

  explicit GreedyRig(bool defense,
                     workload::GreedyProfile profile = {})
      : escra(sim, net, k8s, 8.0, 4 * kGiB,
              [defense] {
                core::EscraConfig cfg;
                cfg.credit_defense = defense;
                return cfg;
              }()),
        liar(sim, escra.controller(), profile, sim::Rng(0xadf00d)),
        meter(sim, escra.app()) {
    for (int i = 0; i < 2; ++i) k8s.add_node({.cores = 16.0});
    cluster::ContainerSpec spec;
    spec.base_memory = 96 * kMiB;
    spec.max_parallelism = 8.0;
    for (int i = 0; i < 4; ++i) {
      spec.name = "c" + std::to_string(i);
      containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
    }
    escra.attach_observer(observer);
    escra.manage(containers);
    escra.start();
    // Container 0 is the liar; 1..3 run a genuine ~1.2-core load.
    liar.attach(*containers[0]);
    for (int i = 1; i < 4; ++i) {
      cluster::Container* c = containers[i];
      sim.schedule_every(milliseconds(50) + milliseconds(i),
                         milliseconds(50),
                         [c] { c->submit(milliseconds(60), 0, nullptr); });
      meter.track(c->id(), /*greedy=*/false);
    }
    meter.track(containers[0]->id(), /*greedy=*/true);
    liar.start(milliseconds(100));
    meter.start(seconds(5));  // skip the cold-start transient
  }
};

TEST(AdversarialTenantTest, InflatedUsageCapturesPoolWithoutDefense) {
  GreedyRig rig(/*defense=*/false);
  rig.sim.run_until(seconds(60));
  const exp::FairnessReport r = rig.meter.report();
  // Fair share is 2 cores. Pure telemetry forgery — zero real work — walks
  // the liar's limit to at least twice that, and long-term fairness
  // collapses.
  EXPECT_GT(rig.liar.lies_told(), 0u);
  EXPECT_GE(r.greedy_capture, 2.0)
      << "greedy mean " << r.greedy_mean_cores << " cores";
  EXPECT_LT(r.jain_long_term, 0.85);
}

TEST(AdversarialTenantTest, CreditDefenseDecaysLiarToFairShare) {
  GreedyRig rig(/*defense=*/true);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  checker.attach_credits(rig.escra.controller().credits());
  rig.sim.run_until(seconds(60));
  const exp::FairnessReport r = rig.meter.report();
  const double fair = rig.escra.app().cpu_limit() / 4.0;
  // The liar still lies every period, but the ledger bleeds it dry and the
  // settle sweep decays it back to (about) its static fair share...
  EXPECT_GT(rig.liar.lies_told(), 0u);
  EXPECT_GT(rig.observer.h.credit_charges->value(), 0u);
  EXPECT_GT(rig.observer.h.greedy_throttles->value(), 0u);
  EXPECT_LE(rig.escra.controller().credits().balance_micro(
                rig.containers[0]->id()),
            0);
  EXPECT_LT(r.greedy_capture, 1.35);
  // ...while honest members keep what they genuinely use (~1.2 cores) and
  // long-term fairness holds.
  EXPECT_GE(r.honest_mean_cores, 1.0);
  EXPECT_GE(r.jain_long_term, 0.90);
  EXPECT_TRUE(checker.ok()) << checker.report();
  // The liar holds no more than fair share plus the settle tolerance band.
  EXPECT_LE(rig.escra.app().member_cores(rig.containers[0]->id()),
            fair * (1.0 + rig.escra.config().credit_tolerance) + 0.35);
}

TEST(AdversarialTenantTest, PhantomOomFarmingIsChargedAndGated) {
  workload::GreedyProfile profile;
  profile.strategy = workload::GreedyStrategy::kPhantomOom;
  GreedyRig rig(/*defense=*/true, profile);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  checker.attach_credits(rig.escra.controller().credits());
  rig.sim.run_until(seconds(60));
  // The farm is priced, not free: limit growth above the memory fair share
  // pays an entry fee at grant time and rent at every settle sweep. And it
  // does not compound — the farmer never touches the farmed bytes, so the
  // κ reclaim loop keeps clawing the hoard back toward real usage.
  EXPECT_GT(rig.liar.phantom_ooms(), 0u);
  EXPECT_GT(rig.liar.phantom_grants(), 0u);
  EXPECT_GT(rig.observer.h.credit_charges->value(), 0u);
  const double fair_mem =
      static_cast<double>(rig.escra.app().mem_limit()) / 4.0;
  EXPECT_LE(static_cast<double>(
                rig.escra.app().member_mem(rig.containers[0]->id())),
            1.5 * fair_mem)
      << "phantom farm must not keep compounding past fair share";
  EXPECT_LE(rig.escra.app().mem_allocated(), rig.escra.app().mem_limit());
  // The honest members never paid for the fabricated pressure with a kill.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(rig.containers[i]->oom_kill_count(), 0u);
  }
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(AdversarialTenantTest, ColludersCannotLaunderThroughRotation) {
  workload::GreedyProfile profile;
  profile.strategy = workload::GreedyStrategy::kColluding;
  profile.rotate_interval = seconds(2);
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  core::EscraConfig cfg;
  cfg.credit_defense = true;
  core::EscraSystem escra{sim, net, k8s, 8.0, 4 * kGiB, cfg};
  for (int i = 0; i < 2; ++i) k8s.add_node({.cores = 16.0});
  cluster::ContainerSpec spec;
  spec.base_memory = 96 * kMiB;
  spec.max_parallelism = 8.0;
  std::vector<cluster::Container*> containers;
  for (int i = 0; i < 4; ++i) {
    spec.name = "c" + std::to_string(i);
    containers.push_back(&k8s.create_container(spec, 1.0, 512 * kMiB));
  }
  escra.attach_observer(observer);
  escra.manage(containers);
  escra.start();
  // The whole pool colludes: one rotating liar, the rest earning credits
  // while idle — trying to bankroll whoever currently lies.
  workload::GreedyTenant ring{sim, escra.controller(), profile,
                              sim::Rng(0xc0110de)};
  for (cluster::Container* c : containers) ring.attach(*c);
  exp::FairnessMeter meter{sim, escra.app()};
  for (cluster::Container* c : containers) meter.track(c->id(), true);
  ring.start(milliseconds(100));
  meter.start(seconds(5));
  check::InvariantChecker checker(escra, net, observer);
  checker.attach_credits(escra.controller().credits());
  sim.run_until(seconds(60));
  // Rotation does not help: each liar-in-turn pays for its own window, and
  // nobody's *allocation* can exceed fair share for long once its own
  // balance drains, so the pool's long-term split stays near-even.
  const exp::FairnessReport r = meter.report();
  EXPECT_GT(ring.lies_told(), 0u);
  EXPECT_GE(r.jain_long_term, 0.85);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

}  // namespace
}  // namespace escra
