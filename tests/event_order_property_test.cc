// Property test for the event engine's ordering contract: against a naive
// reference model, events must fire in exact (time, insertion-order)
// sequence through everything the hierarchical wheel does internally —
// level placement, cascades, the overflow heap, wheel<->heap migration,
// cancel/unlink churn, and incremental run_until slices. The whole
// repository's determinism guarantee reduces to this property.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace escra::sim {
namespace {

struct PlannedEvent {
  TimePoint at = 0;
  std::uint64_t order = 0;  // global insertion order
  int id = 0;
  bool cancelled = false;
  EventHandle handle;
};

TEST(EventOrderProperty, MatchesReferenceModelUnderChurn) {
  const TimePoint span = TimePoint{1} << 32;  // wheel span in us
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
    Rng rng(seed);
    Simulation sim;
    std::vector<int> fired;
    std::vector<PlannedEvent> plan;
    std::uint64_t order = 0;
    int next_id = 0;

    for (int round = 0; round < 40; ++round) {
      // Schedule a burst with deltas spanning every placement class: the
      // due slot, every wheel level, and past the span into the heap.
      const int burst = static_cast<int>(rng.uniform_int(1, 24));
      for (int i = 0; i < burst; ++i) {
        TimePoint delta = 0;
        switch (rng.uniform_int(0, 4)) {
          case 0: delta = rng.uniform_int(0, 255); break;               // L0
          case 1: delta = rng.uniform_int(256, 65535); break;           // L1
          case 2: delta = rng.uniform_int(65536, 1 << 24); break;       // L2+
          case 3: delta = rng.uniform_int(1 << 24, span - 1); break;    // L3
          default: delta = span + rng.uniform_int(0, span); break;      // heap
        }
        // Collisions are the interesting case: reuse a recent timestamp
        // sometimes so same-tick ordering is exercised across sources.
        TimePoint at = sim.now() + delta;
        if (!plan.empty() && rng.chance(0.2)) {
          const PlannedEvent& prev =
              plan[rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1)];
          if (prev.at >= sim.now()) at = prev.at;
        }
        PlannedEvent ev;
        ev.at = at;
        ev.order = order++;
        ev.id = next_id++;
        const int id = ev.id;
        ev.handle = sim.schedule_at(at, [&fired, id] { fired.push_back(id); });
        plan.push_back(ev);
      }
      // Cancel ~a quarter of the still-pending events (true unlink churn).
      for (PlannedEvent& ev : plan) {
        if (!ev.cancelled && ev.at > sim.now() && rng.chance(0.25)) {
          sim.cancel(ev.handle);
          ev.cancelled = true;
        }
      }
      // Advance in an uneven slice; occasionally jump past the span so the
      // heap migrates into the wheel.
      const TimePoint step = rng.chance(0.1)
                                 ? span + rng.uniform_int(0, 1000)
                                 : rng.uniform_int(0, 1 << 20);
      sim.run_until(sim.now() + step);
    }
    sim.run_all();

    // Reference model: survivors sorted by (time, insertion order).
    std::vector<PlannedEvent> expected;
    for (const PlannedEvent& ev : plan) {
      if (!ev.cancelled) expected.push_back(ev);
    }
    std::sort(expected.begin(), expected.end(),
              [](const PlannedEvent& a, const PlannedEvent& b) {
                return a.at != b.at ? a.at < b.at : a.order < b.order;
              });
    ASSERT_EQ(fired.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(fired[i], expected[i].id)
          << "seed " << seed << " position " << i;
    }
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(EventOrderProperty, PendingCountTracksScheduleCancelFire) {
  Rng rng(99);
  Simulation sim;
  std::size_t live = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    const TimePoint at = sim.now() + rng.uniform_int(1, 1 << 22);
    handles.push_back(sim.schedule_at(at, [] {}));
    ++live;
    EXPECT_EQ(sim.pending_events(), live);
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    sim.cancel(handles[i]);
    --live;
    EXPECT_EQ(sim.pending_events(), live);
  }
  sim.run_all();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace escra::sim
