#include "core/agent.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace escra::core {
namespace {

using memcg::kMiB;

struct Rig {
  sim::Simulation sim;
  cluster::Cluster k8s{sim};
  cluster::Node& node = k8s.add_node({});
  Agent agent{node};

  cluster::Container& make(const std::string& name, double cores,
                           memcg::Bytes mem) {
    cluster::ContainerSpec s;
    s.name = name;
    s.base_memory = 64 * kMiB;
    return k8s.create_container(std::move(s), cores, mem);
  }
};

TEST(AgentTest, ManageAndUnmanage) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 256 * kMiB);
  EXPECT_FALSE(rig.agent.manages(c.id()));
  rig.agent.manage(c);
  EXPECT_TRUE(rig.agent.manages(c.id()));
  EXPECT_EQ(rig.agent.managed_count(), 1u);
  rig.agent.unmanage(c.id());
  EXPECT_FALSE(rig.agent.manages(c.id()));
}

TEST(AgentTest, ApplyLimitsHitCgroupsDirectly) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 256 * kMiB);
  rig.agent.manage(c);
  EXPECT_TRUE(rig.agent.apply_cpu_limit(c.id(), 2.5));
  EXPECT_TRUE(rig.agent.apply_mem_limit(c.id(), 300 * kMiB));
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.5);
  EXPECT_EQ(c.mem_cgroup().limit(), 300 * kMiB);
}

TEST(AgentTest, ApplyToUnmanagedFails) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 256 * kMiB);
  EXPECT_FALSE(rig.agent.apply_cpu_limit(c.id(), 2.0));
  EXPECT_FALSE(rig.agent.apply_mem_limit(c.id(), kMiB));
}

TEST(AgentTest, ReclaimShrinksToUsagePlusDelta) {
  // The Section IV-C rule: if C_l > C_u + delta, set C_l' = C_u + delta and
  // report psi = C_l - C_l'.
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 256 * kMiB);
  rig.agent.manage(c);  // usage = 64 MiB base
  const auto result = rig.agent.reclaim(50 * kMiB, /*floor=*/16 * kMiB);
  EXPECT_EQ(c.mem_cgroup().limit(), 114 * kMiB);
  EXPECT_EQ(result.psi, (256 - 114) * kMiB);
  ASSERT_EQ(result.resizes.size(), 1u);
  EXPECT_EQ(result.resizes[0].container, c.id());
  EXPECT_EQ(result.resizes[0].new_limit, 114 * kMiB);
}

TEST(AgentTest, ReclaimSkipsTightContainers) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 100 * kMiB);  // usage 64
  rig.agent.manage(c);
  const auto result = rig.agent.reclaim(50 * kMiB, 16 * kMiB);
  // 100 <= 64 + 50: leave it alone.
  EXPECT_EQ(result.psi, 0);
  EXPECT_TRUE(result.resizes.empty());
  EXPECT_EQ(c.mem_cgroup().limit(), 100 * kMiB);
}

TEST(AgentTest, ReclaimRespectsFloor) {
  Rig rig;
  cluster::ContainerSpec s;
  s.name = "tiny";
  s.base_memory = 4 * kMiB;
  cluster::Container& c = rig.k8s.create_container(std::move(s), 1.0, 512 * kMiB);
  rig.agent.manage(c);
  const auto result = rig.agent.reclaim(10 * kMiB, /*floor=*/128 * kMiB);
  EXPECT_EQ(c.mem_cgroup().limit(), 128 * kMiB);
  EXPECT_EQ(result.psi, (512 - 128) * kMiB);
}

TEST(AgentTest, ReclaimAggregatesPsiAcrossContainers) {
  Rig rig;
  cluster::Container& a = rig.make("a", 1.0, 256 * kMiB);
  cluster::Container& b = rig.make("b", 1.0, 512 * kMiB);
  rig.agent.manage(a);
  rig.agent.manage(b);
  const auto result = rig.agent.reclaim(50 * kMiB, 16 * kMiB);
  EXPECT_EQ(result.resizes.size(), 2u);
  EXPECT_EQ(result.psi, (256 - 114) * kMiB + (512 - 114) * kMiB);
}

TEST(AgentTest, ReclaimIsIdempotentAtFixedUsage) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, 256 * kMiB);
  rig.agent.manage(c);
  rig.agent.reclaim(50 * kMiB, 16 * kMiB);
  const auto second = rig.agent.reclaim(50 * kMiB, 16 * kMiB);
  EXPECT_EQ(second.psi, 0) << "already at usage + delta";
}

}  // namespace
}  // namespace escra::core
