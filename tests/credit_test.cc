// The Karma-style credit ledger and its settle loop (core/credit_ledger.h,
// Controller::settle_credits): earn below fair share, pay above it, decay
// when broke, conserve every micro-credit — including across an RPC
// retransmit storm (charges are settle-driven, never telemetry-driven) and
// across a leader failover (balances ride the WAL).
#include "core/credit_ledger.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bw/shaper.h"
#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "core/messages.h"
#include "ha/ha_control_plane.h"
#include "net/network.h"
#include "obs/observer.h"

namespace escra {
namespace {

using core::CreditLedger;
using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// --- ledger unit tests ---

TEST(CreditLedgerTest, OpenMintBurnCloseConserves) {
  CreditLedger lg;
  const auto conserved = [&lg] {
    return lg.minted_micro() == lg.burned_micro() + lg.outstanding_micro();
  };
  lg.open(1, CreditLedger::to_micro(2.0));
  lg.open(2, CreditLedger::to_micro(2.0));
  EXPECT_TRUE(conserved());
  EXPECT_EQ(lg.balance_micro(1), CreditLedger::to_micro(2.0));

  lg.mint(1, CreditLedger::to_micro(1.5), CreditLedger::to_micro(30.0));
  lg.burn(2, CreditLedger::to_micro(0.75));
  EXPECT_TRUE(conserved());

  lg.close(1);
  EXPECT_TRUE(conserved());
  EXPECT_FALSE(lg.contains(1));
  EXPECT_EQ(lg.balance_micro(1), 0);

  // Closing a debtor burns the (negative) remainder; conservation holds
  // through the sign.
  lg.burn(2, CreditLedger::to_micro(10.0));
  EXPECT_LT(lg.balance_micro(2), 0);
  lg.close(2);
  EXPECT_TRUE(conserved());
  EXPECT_EQ(lg.outstanding_micro(), 0);
}

TEST(CreditLedgerTest, MintClampsAtCap) {
  CreditLedger lg;
  lg.open(1, CreditLedger::to_micro(2.0));
  const std::int64_t cap = CreditLedger::to_micro(3.0);
  // Room for exactly 1.0 credit; the rest of the mint is refused.
  EXPECT_EQ(lg.mint(1, CreditLedger::to_micro(5.0), cap),
            CreditLedger::to_micro(1.0));
  EXPECT_EQ(lg.balance_micro(1), cap);
  EXPECT_EQ(lg.mint(1, CreditLedger::to_micro(1.0), cap), 0);
  // A deep debtor can mint its way back up to the cap.
  lg.burn(1, CreditLedger::to_micro(10.0));
  EXPECT_EQ(lg.mint(1, CreditLedger::to_micro(2.0), cap),
            CreditLedger::to_micro(2.0));
  EXPECT_EQ(lg.minted_micro(), lg.burned_micro() + lg.outstanding_micro());
}

TEST(CreditLedgerTest, OpenIsIdempotentAndInstallReplaces) {
  CreditLedger lg;
  lg.open(1, CreditLedger::to_micro(2.0));
  lg.open(1, CreditLedger::to_micro(99.0));  // no-op, not a re-mint
  EXPECT_EQ(lg.balance_micro(1), CreditLedger::to_micro(2.0));
  EXPECT_EQ(lg.minted_micro(), CreditLedger::to_micro(2.0));

  std::vector<CreditLedger::Snapshot> image = {
      {7, CreditLedger::to_micro(1.25)},
      {9, CreditLedger::to_micro(-0.5)},
  };
  const std::int64_t minted = CreditLedger::to_micro(4.0);
  const std::int64_t burned = minted - CreditLedger::to_micro(0.75);
  lg.install(image, minted, burned);
  EXPECT_FALSE(lg.contains(1));
  EXPECT_EQ(lg.balance_micro(7), CreditLedger::to_micro(1.25));
  EXPECT_EQ(lg.balance_micro(9), CreditLedger::to_micro(-0.5));
  EXPECT_EQ(lg.outstanding_micro(), CreditLedger::to_micro(0.75));
  EXPECT_EQ(lg.minted_micro(), lg.burned_micro() + lg.outstanding_micro());
}

// --- settle-loop tests against a live system ---

core::EscraConfig defense_config() {
  core::EscraConfig cfg;
  cfg.credit_defense = true;
  return cfg;
}

struct CreditRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  std::vector<cluster::Container*> containers;
  core::EscraSystem escra;

  explicit CreditRig(int n = 4, core::EscraConfig cfg = defense_config(),
                     double pool_cores = 8.0)
      : escra(sim, net, k8s, pool_cores, 4 * kGiB, cfg) {
    k8s.add_node({});
    k8s.add_node({});
    cluster::ContainerSpec spec;
    spec.base_memory = 64 * kMiB;
    spec.max_parallelism = 8.0;
    for (int i = 0; i < n; ++i) {
      spec.name = "c" + std::to_string(i);
      containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
    }
    escra.attach_observer(observer);
    escra.manage(containers);
    escra.start();
  }
};

TEST(CreditSettleTest, IdleMembersEarnUpToTheCap) {
  CreditRig rig;
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  checker.attach_credits(rig.escra.controller().credits());
  // Everyone idle: κ shrinks limits toward the floor, everyone sits below
  // fair share and earns. Long enough for the earliest earner to hit cap.
  rig.sim.run_until(seconds(60));
  const CreditLedger& lg = rig.escra.controller().credits();
  const std::int64_t cap =
      CreditLedger::to_micro(rig.escra.config().credit_cap);
  for (const cluster::Container* c : rig.containers) {
    EXPECT_GT(lg.balance_micro(c->id()),
              CreditLedger::to_micro(rig.escra.config().credit_init));
    EXPECT_LE(lg.balance_micro(c->id()), cap);
  }
  EXPECT_GT(rig.observer.h.credit_refunds->value(), 0u);
  EXPECT_EQ(rig.observer.h.credit_charges->value(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(CreditSettleTest, SustainedOverclaimChargesThenDecays) {
  CreditRig rig;
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  checker.attach_credits(rig.escra.controller().credits());
  // Container 0 runs hot forever; the others idle. It scales far above its
  // 2-core fair share, burns through its initial credits (the idle pool
  // keeps pressure < 1, but the charge still accrues), and once broke is
  // decayed back toward fair share by the settle sweep.
  cluster::Container* hog = rig.containers[0];
  rig.sim.schedule_every(milliseconds(20), milliseconds(20), [&] {
    hog->submit(milliseconds(150), 0, nullptr);
  });
  rig.sim.run_until(seconds(90));
  const CreditLedger& lg = rig.escra.controller().credits();
  const double fair =
      rig.escra.app().cpu_limit() /
      static_cast<double>(rig.escra.app().member_count());
  EXPECT_GT(rig.observer.h.credit_charges->value(), 0u);
  EXPECT_GT(rig.observer.h.greedy_throttles->value(), 0u);
  EXPECT_LE(lg.balance_micro(hog->id()), 0);
  // Debt is floored at -credit_cap.
  EXPECT_GE(lg.balance_micro(hog->id()),
            -CreditLedger::to_micro(rig.escra.config().credit_cap));
  // The decay converged the overclaimer to (roughly) its static fair share.
  EXPECT_LE(rig.escra.app().member_cores(hog->id()),
            fair * (1.0 + rig.escra.config().credit_tolerance) + 0.35);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(CreditSettleTest, TelemetryRetransmitsNeverCharge) {
  CreditRig rig;
  rig.sim.run_until(seconds(2));
  core::Controller& controller = rig.escra.controller();
  const std::int64_t burned_before = controller.credits().burned_micro();
  const std::uint64_t charges_before = rig.observer.h.credit_charges->value();
  // A duplicated/retransmitted telemetry burst for a busy-looking cgroup:
  // five identical reports land back-to-back with no settle sweep between
  // them (no sim time passes). Decisions may fire; charges must not —
  // settlement is the only charging site, so duplicates are free.
  core::CpuStatsMsg msg;
  msg.cgroup = rig.containers[0]->id();
  msg.period_end = rig.sim.now();
  msg.quota = rig.containers[0]->cpu_cgroup().quota();
  msg.unused = 0;
  msg.throttled = true;
  for (int i = 0; i < 5; ++i) controller.on_cpu_stats(msg);
  EXPECT_EQ(controller.credits().burned_micro(), burned_before);
  EXPECT_EQ(rig.observer.h.credit_charges->value(), charges_before);
}

TEST(CreditSettleTest, ImpossibleTelemetryIsRejectedBeforeTheAllocator) {
  CreditRig rig;
  rig.sim.run_until(seconds(1));
  core::Controller& controller = rig.escra.controller();
  cluster::Container* c = rig.containers[0];
  const double cores_before = rig.escra.app().member_cores(c->id());

  core::CpuStatsMsg msg;
  msg.cgroup = c->id();
  msg.period_end = rig.sim.now();
  // unused > quota: no real cgroup can report this.
  msg.quota = c->cpu_cgroup().quota();
  msg.unused = msg.quota + 1000;
  msg.throttled = false;
  controller.on_cpu_stats(msg);
  // Claimed usage beyond the node's core count (quota says 100 cores were
  // burned in one period on a 20-core node).
  msg.quota = 100 * c->cpu_cgroup().period();
  msg.unused = 0;
  msg.throttled = true;
  controller.on_cpu_stats(msg);

  EXPECT_EQ(rig.observer.h.telemetry_rejected->value(), 2u);
  EXPECT_DOUBLE_EQ(rig.escra.app().member_cores(c->id()), cores_before);
}

// The plausibility clamp's boundary: a saturated node legitimately reports
// usage of exactly its core count, and a saturated flow exactly its NIC
// rate — AT the bound is real telemetry and must be ingested. Epsilon
// ABOVE is physically impossible and must be rejected. Off-by-one here
// either drops honest saturation reports (the loop goes blind exactly when
// pressure peaks) or admits forged ones.
TEST(CreditSettleTest, TelemetryAtThePhysicalBoundIsAccepted) {
  CreditRig rig;
  rig.sim.run_until(seconds(1));
  core::Controller& controller = rig.escra.controller();
  cluster::Container* c = rig.containers[0];
  const sim::Duration period = c->cpu_cgroup().period();

  core::CpuStatsMsg msg;
  msg.cgroup = c->id();
  msg.period_end = rig.sim.now();
  // Exactly node capacity: 20 core-periods burned on the 20-core node.
  msg.quota = 20 * period;
  msg.unused = 0;
  msg.throttled = false;
  controller.on_cpu_stats(msg);
  EXPECT_EQ(rig.observer.h.telemetry_rejected->value(), 0u);

  // One percent of a period above capacity: impossible, rejected.
  msg.quota = 20 * period + period / 100;
  controller.on_cpu_stats(msg);
  EXPECT_EQ(rig.observer.h.telemetry_rejected->value(), 1u);
}

TEST(CreditSettleTest, BwTelemetryAtTheNicRateIsAccepted) {
  CreditRig rig;
  rig.sim.run_until(seconds(1));
  core::Controller& controller = rig.escra.controller();
  const double nic = 1.25e9;  // NodeConfig default

  bw::BwSample sample;
  sample.container = rig.containers[0]->id();
  sample.rate_bps = nic;
  sample.used_bps = nic;  // the link saturated: exactly the NIC rate
  sample.throttled = false;
  controller.on_bw_stats(sample);
  EXPECT_EQ(rig.observer.h.telemetry_rejected->value(), 0u);

  sample.used_bps = nic * (1.0 + 1e-6);  // faster than the wire: forged
  controller.on_bw_stats(sample);
  EXPECT_EQ(rig.observer.h.telemetry_rejected->value(), 1u);
}

// --- failover: balances ride the WAL; conservation survives takeover ---

TEST(CreditHaTest, BalancesSurviveLeaderFailover) {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  obs::Observer observer;
  core::EscraSystem escra{sim, net, k8s, 8.0, 4 * kGiB, defense_config()};
  k8s.add_node({});
  k8s.add_node({});
  std::vector<cluster::Container*> containers;
  cluster::ContainerSpec spec;
  spec.base_memory = 64 * kMiB;
  for (int i = 0; i < 4; ++i) {
    spec.name = "c" + std::to_string(i);
    containers.push_back(&k8s.create_container(spec, 1.0, 256 * kMiB));
  }
  escra.attach_observer(observer);
  escra.manage(containers);
  escra.start();
  std::optional<ha::HaControlPlane> ha;
  ha::HaConfig cfg;
  cfg.standbys = 2;
  ha.emplace(escra, net, cfg);
  ha->start();

  check::InvariantChecker checker(escra, net, observer);
  checker.attach_credits(escra.controller().credits());

  // Idle run: everyone earns above their initial grant, then the leader is
  // killed. If balances did not ride the WAL, the takeover would reopen
  // everyone at credit_init.
  std::int64_t balance_at_kill = 0;
  sim.schedule_at(seconds(10), [&] {
    balance_at_kill = escra.controller().credits().balance_micro(
        containers[0]->id());
    ha->kill_leader();
  });
  sim.run_until(seconds(20));

  const CreditLedger& lg = escra.controller().credits();
  EXPECT_GT(balance_at_kill, CreditLedger::to_micro(2.0));
  // Still earning from the replicated balance, not reset to the 2.0 init.
  EXPECT_GE(lg.balance_micro(containers[0]->id()), balance_at_kill);
  EXPECT_EQ(lg.minted_micro(), lg.burned_micro() + lg.outstanding_micro());
  EXPECT_GE(ha->failovers(), 1u);
  EXPECT_TRUE(checker.ok()) << checker.report();
  ha.reset();
}

}  // namespace
}  // namespace escra
