#include "core/distributed_container.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace escra::core {
namespace {

using memcg::kGiB;
using memcg::kMiB;

TEST(DistributedContainerTest, ConstructionValidatesLimits) {
  EXPECT_THROW(DistributedContainer(0.0, kGiB), std::invalid_argument);
  EXPECT_THROW(DistributedContainer(4.0, 0), std::invalid_argument);
  DistributedContainer dc(8.0, 4 * kGiB);
  EXPECT_DOUBLE_EQ(dc.cpu_limit(), 8.0);
  EXPECT_EQ(dc.mem_limit(), 4 * kGiB);
  EXPECT_DOUBLE_EQ(dc.cpu_allocated(), 0.0);
  EXPECT_EQ(dc.mem_allocated(), 0);
}

TEST(DistributedContainerTest, AddMemberCommitsAgainstPool) {
  DistributedContainer dc(8.0, 4 * kGiB);
  dc.add_member(1, 2.0, kGiB);
  dc.add_member(2, 3.0, kGiB);
  EXPECT_DOUBLE_EQ(dc.cpu_allocated(), 5.0);
  EXPECT_DOUBLE_EQ(dc.cpu_unallocated(), 3.0);
  EXPECT_EQ(dc.mem_allocated(), 2 * kGiB);
  EXPECT_EQ(dc.member_count(), 2u);
  EXPECT_TRUE(dc.is_member(1));
  EXPECT_FALSE(dc.is_member(3));
}

TEST(DistributedContainerTest, OverCommitAtAddThrows) {
  DistributedContainer dc(4.0, kGiB);
  dc.add_member(1, 3.0, 512 * kMiB);
  EXPECT_THROW(dc.add_member(2, 2.0, kMiB), std::invalid_argument);
  EXPECT_THROW(dc.add_member(3, 0.5, kGiB), std::invalid_argument);
  // Failed adds must not corrupt state.
  EXPECT_DOUBLE_EQ(dc.cpu_allocated(), 3.0);
  EXPECT_EQ(dc.member_count(), 1u);
}

TEST(DistributedContainerTest, DuplicateMemberThrows) {
  DistributedContainer dc(4.0, kGiB);
  dc.add_member(1, 1.0, kMiB);
  EXPECT_THROW(dc.add_member(1, 1.0, kMiB), std::invalid_argument);
}

TEST(DistributedContainerTest, RemoveReturnsLimitsToPool) {
  DistributedContainer dc(8.0, 4 * kGiB);
  dc.add_member(1, 2.0, kGiB);
  dc.add_member(2, 3.0, kGiB);
  dc.remove_member(1);
  EXPECT_DOUBLE_EQ(dc.cpu_allocated(), 3.0);
  EXPECT_EQ(dc.mem_allocated(), kGiB);
  EXPECT_FALSE(dc.is_member(1));
  EXPECT_THROW(dc.remove_member(1), std::invalid_argument);
}

TEST(DistributedContainerTest, SetMemberCoresMovesAllocation) {
  DistributedContainer dc(8.0, kGiB);
  dc.add_member(1, 2.0, kMiB);
  const double applied = dc.set_member_cores(1, 5.0);
  EXPECT_DOUBLE_EQ(applied, 5.0);
  EXPECT_DOUBLE_EQ(dc.member_cores(1), 5.0);
  EXPECT_DOUBLE_EQ(dc.cpu_unallocated(), 3.0);
}

TEST(DistributedContainerTest, RuntimeEnforcementClampsToGlobal) {
  // The defining Distributed Container behaviour: a raise is clamped so the
  // application aggregate never exceeds the global limit (Section III).
  DistributedContainer dc(8.0, kGiB);
  dc.add_member(1, 2.0, 256 * kMiB);
  dc.add_member(2, 4.0, 256 * kMiB);
  const double applied = dc.set_member_cores(1, 100.0);
  EXPECT_DOUBLE_EQ(applied, 4.0);  // 8 - 4 already held by member 2
  EXPECT_DOUBLE_EQ(dc.cpu_allocated(), 8.0);
  EXPECT_DOUBLE_EQ(dc.cpu_unallocated(), 0.0);

  const memcg::Bytes mem_applied = dc.set_member_mem(1, 10 * kGiB);
  EXPECT_EQ(mem_applied, kGiB - 256 * kMiB);
  EXPECT_EQ(dc.mem_allocated(), dc.mem_limit());
}

TEST(DistributedContainerTest, LoweringAlwaysAllowed) {
  DistributedContainer dc(8.0, kGiB);
  dc.add_member(1, 8.0, kGiB);
  EXPECT_DOUBLE_EQ(dc.set_member_cores(1, 0.5), 0.5);
  EXPECT_EQ(dc.set_member_mem(1, 64 * kMiB), 64 * kMiB);
  EXPECT_DOUBLE_EQ(dc.cpu_unallocated(), 7.5);
}

TEST(DistributedContainerTest, NegativeTargetClampsToZero) {
  DistributedContainer dc(8.0, kGiB);
  dc.add_member(1, 2.0, kMiB);
  EXPECT_DOUBLE_EQ(dc.set_member_cores(1, -5.0), 0.0);
  EXPECT_EQ(dc.set_member_mem(1, -100), 0);
}

TEST(DistributedContainerTest, UnknownMemberQueriesThrow) {
  DistributedContainer dc(8.0, kGiB);
  EXPECT_THROW(dc.member_cores(42), std::invalid_argument);
  EXPECT_THROW(dc.member_mem(42), std::invalid_argument);
  EXPECT_THROW(dc.set_member_cores(42, 1.0), std::invalid_argument);
  EXPECT_THROW(dc.set_member_mem(42, kMiB), std::invalid_argument);
}

// Property suite: under arbitrary interleavings of add/remove/resize, the
// class invariant 0 <= allocated <= global must hold for both resources, and
// allocated must equal the sum of member shadow limits.
class DistributedContainerPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedContainerPropertyTest, InvariantHoldsUnderRandomOps) {
  sim::Rng rng(GetParam());
  DistributedContainer dc(16.0, 8 * kGiB);
  std::vector<std::uint32_t> members;
  std::uint32_t next_id = 1;

  for (int op = 0; op < 3000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    if (kind == 0) {
      // Add with a pool-feasible grant.
      const double cores = rng.uniform(0.0, std::max(0.0, dc.cpu_unallocated()));
      const auto mem = static_cast<memcg::Bytes>(
          rng.uniform(0.0, static_cast<double>(dc.mem_unallocated())));
      dc.add_member(next_id, cores, mem);
      members.push_back(next_id++);
    } else if (kind == 1 && !members.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1));
      dc.remove_member(members[i]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!members.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1));
      if (kind == 2) {
        dc.set_member_cores(members[i], rng.uniform(-1.0, 20.0));
      } else {
        dc.set_member_mem(members[i],
                          static_cast<memcg::Bytes>(
                              rng.uniform(-1e9, 1e10)));
      }
    }

    // Invariants.
    ASSERT_GE(dc.cpu_allocated(), -1e-9);
    ASSERT_LE(dc.cpu_allocated(), dc.cpu_limit() + 1e-6);
    ASSERT_GE(dc.mem_allocated(), 0);
    ASSERT_LE(dc.mem_allocated(), dc.mem_limit());
    double cpu_sum = 0.0;
    memcg::Bytes mem_sum = 0;
    for (const std::uint32_t m : members) {
      cpu_sum += dc.member_cores(m);
      mem_sum += dc.member_mem(m);
    }
    ASSERT_NEAR(cpu_sum, dc.cpu_allocated(), 1e-6);
    ASSERT_EQ(mem_sum, dc.mem_allocated());
    ASSERT_EQ(members.size(), dc.member_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedContainerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace escra::core
