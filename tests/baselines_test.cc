#include <gtest/gtest.h>

#include "baselines/autopilot.h"
#include "baselines/decaying_histogram.h"
#include "baselines/firm.h"
#include "baselines/static_policy.h"
#include "baselines/vpa.h"
#include "cluster/cluster.h"

namespace escra::baselines {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

// --------------------------------------------------------- DecayingHistogram

TEST(DecayingHistogramTest, EmptyIsZero) {
  DecayingHistogram h(10.0, 100, 60.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(DecayingHistogramTest, PercentileOfUniformSamples) {
  DecayingHistogram h(10.0, 100, 1e9);  // effectively no decay
  for (int i = 1; i <= 100; ++i) h.add(0.0, static_cast<double>(i) / 10.0);
  EXPECT_NEAR(h.percentile(50), 5.0, 0.2);
  EXPECT_NEAR(h.percentile(95), 9.5, 0.2);
  EXPECT_NEAR(h.percentile(100), 10.0, 0.2);
}

TEST(DecayingHistogramTest, RecentSamplesDominateAfterDecay) {
  DecayingHistogram h(10.0, 100, /*half_life=*/10.0);
  // Old high usage...
  for (int i = 0; i < 100; ++i) h.add(0.0, 9.0);
  // ...then a long quiet stretch of low usage.
  for (int t = 1; t <= 100; ++t) h.add(static_cast<double>(t), 1.0);
  // After 10 half-lives the old peak carries ~2^-10 of its weight.
  EXPECT_LT(h.percentile(95), 2.0);
}

TEST(DecayingHistogramTest, PeakSurvivesModerateDecay) {
  DecayingHistogram h(10.0, 100, /*half_life=*/300.0);
  h.add(0.0, 8.0);
  for (int t = 1; t <= 60; ++t) h.add(static_cast<double>(t), 1.0);
  // Max percentile still reports the old peak's bucket.
  EXPECT_GT(h.percentile(100), 7.9);
}

TEST(DecayingHistogramTest, RenormalizationPreservesPercentiles) {
  DecayingHistogram h(10.0, 100, /*half_life=*/1.0);
  // Enough time span to force many renormalizations (2^t/1 growth).
  for (int t = 0; t < 500; ++t) h.add(static_cast<double>(t), 5.0);
  EXPECT_NEAR(h.percentile(50), 5.0, 0.2);
}

TEST(DecayingHistogramTest, ClampsToRange) {
  DecayingHistogram h(10.0, 100, 60.0);
  h.add(0.0, -5.0);
  h.add(0.0, 50.0);
  EXPECT_LE(h.percentile(100), 10.0);
  EXPECT_GE(h.percentile(0), 0.0);
}

TEST(DecayingHistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(DecayingHistogram(0.0, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(DecayingHistogram(1.0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(DecayingHistogram(1.0, 10, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- test rig

struct Rig {
  sim::Simulation sim;
  cluster::Cluster k8s{sim};
  cluster::Node& node = k8s.add_node({});

  cluster::Container& make(const std::string& name,
                           memcg::Bytes base = 64 * kMiB) {
    cluster::ContainerSpec s;
    s.name = name;
    s.base_memory = base;
    s.max_parallelism = 4.0;
    return k8s.create_container(std::move(s), 2.0, 512 * kMiB);
  }
};

// ---------------------------------------------------------------- Static

TEST(StaticPolicyTest, AppliesMultipliedProfile) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  StaticPolicy policy({&c}, {{2.0, 200 * kMiB}}, 1.5);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 3.0);
  EXPECT_EQ(c.mem_cgroup().limit(), 300 * kMiB);
  EXPECT_EQ(policy.name(), "static-1.500000x");
}

TEST(StaticPolicyTest, ValidatesInputs) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  EXPECT_THROW(StaticPolicy({&c}, {}, 1.5), std::invalid_argument);
  EXPECT_THROW(StaticPolicy({&c}, {{1.0, kMiB}}, 0.0), std::invalid_argument);
}

TEST(StaticPolicyTest, NeverChangesLimitsAfterStart) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  StaticPolicy policy({&c}, {{0.5, 128 * kMiB}}, 1.0);
  policy.start();
  c.submit(seconds(30), 0, nullptr);  // one lane of demand vs a 0.5 limit
  rig.sim.run_until(seconds(5));
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 0.5);
  EXPECT_GT(c.cpu_cgroup().throttle_count(), 10u) << "throttles, no reaction";
}

// -------------------------------------------------------------- Autopilot

TEST(AutopilotTest, ValidatesInputs) {
  Rig rig;
  EXPECT_THROW(AutopilotPolicy(rig.sim, {}, {}), std::invalid_argument);
  cluster::Container& c = rig.make("a");
  AutopilotConfig no_models;
  no_models.models.clear();
  EXPECT_THROW(AutopilotPolicy(rig.sim, {&c}, no_models), std::invalid_argument);
}

TEST(AutopilotTest, WaitsForWarmupSamples) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(2.0);
  AutopilotConfig cfg;
  cfg.warmup_samples = 5;
  AutopilotPolicy policy(rig.sim, {&c}, cfg);
  policy.start();
  rig.sim.run_until(seconds(3));
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0)
      << "no resize before warmup_samples seconds of data";
  EXPECT_EQ(policy.cpu_resizes(), 0u);
}

TEST(AutopilotTest, ScalesBusyContainerUpOverTime) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(0.5);
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  c.submit(seconds(300), 0, nullptr);  // saturating work (4-way parallel)
  rig.sim.run_until(seconds(30));
  // The recommender sees sustained usage at the limit and raises it.
  EXPECT_GT(c.cpu_cgroup().limit_cores(), 0.5);
  EXPECT_GT(policy.cpu_resizes(), 0u);
}

TEST(AutopilotTest, ScalesIdleContainerDown) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(4.0);
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  rig.sim.run_until(seconds(60));
  EXPECT_LT(c.cpu_cgroup().limit_cores(), 1.0) << "idle usage -> small limit";
}

TEST(AutopilotTest, MemoryLimitNeverBelowCurrentUsage) {
  Rig rig;
  cluster::Container& c = rig.make("a", /*base=*/128 * kMiB);
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  rig.sim.run_until(seconds(60));
  EXPECT_GE(c.mem_cgroup().limit(), c.mem_cgroup().usage());
  EXPECT_GT(policy.mem_resizes(), 0u);
}

TEST(AutopilotTest, LagsBehindSuddenBursts) {
  // The paper's core criticism: a windowed recommender reacts on second-to-
  // minute timescales, so a sudden burst throttles until the window adapts.
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(0.5);
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  // Idle for 30 s (recommender converges down), then a burst arrives.
  rig.sim.schedule_at(seconds(30), [&] { c.submit(seconds(100), 0, nullptr); });
  rig.sim.run_until(seconds(31));
  const double limit_at_burst = c.cpu_cgroup().limit_cores();
  rig.sim.run_until(seconds(33));
  EXPECT_GT(c.cpu_cgroup().throttle_count(), 0u)
      << "burst outruns the limit (" << limit_at_burst << " cores)";
}

TEST(AutopilotTest, RestartingContainersExportNoSamples) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  rig.sim.run_until(seconds(10));
  c.evict_restart(1.0, 512 * kMiB);  // restarting for 3 s
  EXPECT_NO_THROW(rig.sim.run_until(seconds(20)));
  EXPECT_TRUE(c.running());
}

TEST(AutopilotTest, BestModelIsQueryable) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  AutopilotPolicy policy(rig.sim, {&c}, {});
  policy.start();
  rig.sim.run_until(seconds(10));
  EXPECT_LT(policy.best_cpu_model(0), AutopilotConfig{}.models.size());
  EXPECT_THROW(policy.best_cpu_model(5), std::out_of_range);
}

// -------------------------------------------------------------------- VPA

TEST(VpaTest, ValidatesInputs) {
  Rig rig;
  EXPECT_THROW(VpaPolicy(rig.sim, {}, {}), std::invalid_argument);
  cluster::Container& c = rig.make("a");
  VpaConfig bad;
  bad.lower_bound = 0.9;
  bad.upper_bound = 0.1;
  EXPECT_THROW(VpaPolicy(rig.sim, {&c}, bad), std::invalid_argument);
}

TEST(VpaTest, ResizeRequiresRestart) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(4.0);  // utilization ~0 -> out of band
  VpaConfig cfg;
  cfg.check_interval = seconds(10);
  VpaPolicy policy(rig.sim, {&c}, cfg);
  policy.start();
  rig.sim.run_until(seconds(11));
  EXPECT_EQ(policy.restarts(), 1u);
  EXPECT_EQ(c.eviction_count(), 1u);
  EXPECT_FALSE(c.running()) << "the pod is being recreated";
}

TEST(VpaTest, CooldownLimitsResizeFrequency) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(4.0);
  VpaConfig cfg;
  cfg.check_interval = seconds(10);
  VpaPolicy policy(rig.sim, {&c}, cfg);
  policy.start();
  rig.sim.run_until(seconds(59));
  EXPECT_EQ(policy.restarts(), 1u) << "at most one resize per minute";
  rig.sim.run_until(seconds(130));
  EXPECT_GE(policy.restarts(), 2u);
}

TEST(VpaTest, InBandUtilizationLeftAlone) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  // Pin utilization near the target: usage ~64 MiB of a 128 MiB limit and
  // CPU ~50% of limit.
  c.mem_cgroup().set_limit(128 * kMiB);
  c.cpu_cgroup().set_limit_cores(0.1);
  rig.sim.schedule_every(milliseconds(100), milliseconds(100), [&] {
    c.submit(milliseconds(5), 0, nullptr);  // ~0.05 cores
  });
  VpaConfig cfg;
  cfg.check_interval = seconds(10);
  VpaPolicy policy(rig.sim, {&c}, cfg);
  policy.start();
  rig.sim.run_until(seconds(45));
  EXPECT_EQ(policy.restarts(), 0u);
}

// ------------------------------------------------------------------- Firm

TEST(FirmTest, ValidatesInputs) {
  Rig rig;
  EXPECT_THROW(FirmPolicy(rig.sim, {}, {}), std::invalid_argument);
  cluster::Container& c = rig.make("a");
  FirmConfig bad;
  bad.low_watermark = 0.9;
  bad.high_watermark = 0.5;
  EXPECT_THROW(FirmPolicy(rig.sim, {&c}, bad), std::invalid_argument);
}

TEST(FirmTest, MultiplexesFromIdleToBusyWithinFixedBudget) {
  Rig rig;
  cluster::Container& busy = rig.make("busy");
  cluster::Container& idle = rig.make("idle");
  busy.cpu_cgroup().set_limit_cores(1.0);
  idle.cpu_cgroup().set_limit_cores(3.0);
  FirmPolicy policy(rig.sim, {&busy, &idle}, {});
  policy.start();
  EXPECT_DOUBLE_EQ(policy.budget_cores(), 4.0);
  for (int i = 0; i < 4; ++i) busy.submit(seconds(300), 0, nullptr);  // 4 lanes
  rig.sim.run_until(seconds(20));
  // Capacity moved: busy grew, idle shrank, aggregate preserved.
  EXPECT_GT(busy.cpu_cgroup().limit_cores(), 1.5);
  EXPECT_LT(idle.cpu_cgroup().limit_cores(), 2.0);
  EXPECT_NEAR(busy.cpu_cgroup().limit_cores() + idle.cpu_cgroup().limit_cores(),
              4.0, 0.05);
  EXPECT_GT(policy.reallocations(), 0u);
}

TEST(FirmTest, NeverTouchesMemoryLimits) {
  // "Firm does not implement seamless or automatic memory scaling" (Sec II).
  Rig rig;
  cluster::Container& c = rig.make("a");
  const memcg::Bytes before = c.mem_cgroup().limit();
  FirmPolicy policy(rig.sim, {&c}, {});
  policy.start();
  c.submit(seconds(100), 0, nullptr);
  rig.sim.run_until(seconds(30));
  EXPECT_EQ(c.mem_cgroup().limit(), before);
}

TEST(FirmTest, NoRestartsEver) {
  Rig rig;
  cluster::Container& a = rig.make("a");
  cluster::Container& b = rig.make("b");
  FirmPolicy policy(rig.sim, {&a, &b}, {});
  policy.start();
  a.submit(seconds(200), 0, nullptr);
  rig.sim.run_until(seconds(30));
  EXPECT_EQ(a.eviction_count() + b.eviction_count(), 0u);
}

TEST(FirmTest, NothingMovesWhenAllInBand) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  c.cpu_cgroup().set_limit_cores(0.2);
  // ~0.14 cores of demand against 0.2: utilization ~0.7, inside the band.
  rig.sim.schedule_every(milliseconds(100), milliseconds(100),
                         [&] { c.submit(milliseconds(14), 0, nullptr); });
  FirmPolicy policy(rig.sim, {&c}, {});
  policy.start();
  rig.sim.run_until(seconds(20));
  EXPECT_EQ(policy.reallocations(), 0u);
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 0.2);
}

TEST(FirmTest, CannotGrowPastItsBudget) {
  // Unlike Escra drawing on a cluster-scale Distributed Container, Firm is
  // stuck multiplexing the deployment's original budget.
  Rig rig;
  cluster::Container& a = rig.make("a");
  cluster::Container& b = rig.make("b");
  a.cpu_cgroup().set_limit_cores(1.0);
  b.cpu_cgroup().set_limit_cores(1.0);
  FirmPolicy policy(rig.sim, {&a, &b}, {});
  policy.start();
  for (int i = 0; i < 4; ++i) {
    a.submit(seconds(500), 0, nullptr);  // both saturated:
    b.submit(seconds(500), 0, nullptr);  // nothing to harvest
  }
  rig.sim.run_until(seconds(20));
  EXPECT_NEAR(a.cpu_cgroup().limit_cores() + b.cpu_cgroup().limit_cores(),
              2.0, 0.05);
  EXPECT_GT(a.cpu_cgroup().throttle_count(), 50u) << "budget-bound: throttles";
}

}  // namespace
}  // namespace escra::baselines
