#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "serverless/apps.h"
#include "serverless/openwhisk.h"

namespace escra::serverless {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

ActionSpec fast_action(const std::string& name = "fn") {
  ActionSpec a;
  a.name = name;
  a.io_before = milliseconds(20);
  a.cpu_cost = milliseconds(100);
  a.cpu_sigma = 0.0;
  a.io_after = milliseconds(10);
  a.working_mem = 50 * kMiB;
  return a;
}

struct Rig {
  sim::Simulation sim;
  cluster::Cluster k8s{sim};
  OpenWhisk ow;

  explicit Rig(OpenWhiskConfig cfg = {})
      : ow((k8s.add_node({}), sim), k8s, cfg, sim::Rng(1)) {}
};

TEST(OpenWhiskTest, UnknownActionThrows) {
  Rig rig;
  EXPECT_THROW(rig.ow.invoke("nope", nullptr), std::invalid_argument);
  ActionSpec bad = fast_action("");
  EXPECT_THROW(rig.ow.register_action(bad), std::invalid_argument);
}

TEST(OpenWhiskTest, FirstInvocationColdStarts) {
  Rig rig;
  rig.ow.register_action(fast_action());
  bool ok = false;
  sim::TimePoint done_at = 0;
  rig.ow.invoke("fn", [&](bool o) {
    ok = o;
    done_at = rig.sim.now();
  });
  EXPECT_EQ(rig.ow.pod_count(), 1u);
  EXPECT_EQ(rig.ow.cold_starts(), 1u);
  rig.sim.run_until(seconds(5));
  EXPECT_TRUE(ok);
  // cold start (650) + io (20) + cpu (100 at 1 vCPU) + io (10); the first
  // scheduler slice credits work submitted mid-slice, so allow one slice.
  EXPECT_GE(done_at, milliseconds(770));
  EXPECT_LE(done_at, milliseconds(900));
}

TEST(OpenWhiskTest, WarmPodIsReused) {
  Rig rig;
  rig.ow.register_action(fast_action());
  rig.ow.invoke("fn", nullptr);
  rig.sim.run_until(seconds(3));
  sim::TimePoint start = rig.sim.now();
  sim::TimePoint done_at = 0;
  rig.ow.invoke("fn", [&](bool) { done_at = rig.sim.now(); });
  rig.sim.run_until(seconds(6));
  EXPECT_EQ(rig.ow.cold_starts(), 1u) << "second invocation reuses the pod";
  EXPECT_EQ(rig.ow.pod_count(), 1u);
  // Warm latency: no cold-start component.
  EXPECT_LT(done_at - start, milliseconds(250));
}

TEST(OpenWhiskTest, ConcurrentInvocationsGrowThePool) {
  Rig rig;
  rig.ow.register_action(fast_action());
  int done = 0;
  for (int i = 0; i < 5; ++i) rig.ow.invoke("fn", [&](bool) { ++done; });
  EXPECT_EQ(rig.ow.pod_count(), 5u);
  EXPECT_EQ(rig.ow.busy_pods(), 5u);
  rig.sim.run_until(seconds(5));
  EXPECT_EQ(done, 5);
  EXPECT_EQ(rig.ow.busy_pods(), 0u);
}

TEST(OpenWhiskTest, PoolCapQueuesActivations) {
  OpenWhiskConfig cfg;
  cfg.max_pods = 2;
  Rig rig(cfg);
  rig.ow.register_action(fast_action());
  int done = 0;
  for (int i = 0; i < 6; ++i) rig.ow.invoke("fn", [&](bool) { ++done; });
  EXPECT_EQ(rig.ow.pod_count(), 2u);
  EXPECT_EQ(rig.ow.queued(), 4u);
  rig.sim.run_until(seconds(10));
  EXPECT_EQ(done, 6) << "queued activations drain as pods free up";
  EXPECT_EQ(rig.ow.queued(), 0u);
}

TEST(OpenWhiskTest, IdlePodsAreReaped) {
  OpenWhiskConfig cfg;
  cfg.idle_timeout = seconds(5);
  Rig rig(cfg);
  rig.ow.register_action(fast_action());
  rig.ow.invoke("fn", nullptr);
  rig.sim.run_until(seconds(2));
  EXPECT_EQ(rig.ow.pod_count(), 1u);
  rig.sim.run_until(seconds(30));
  EXPECT_EQ(rig.ow.pod_count(), 0u);
  EXPECT_EQ(rig.k8s.container_count(), 0u) << "container removed from cluster";
}

TEST(OpenWhiskTest, ReapHookFiresBeforeRemoval) {
  OpenWhiskConfig cfg;
  cfg.idle_timeout = seconds(5);
  Rig rig(cfg);
  rig.ow.register_action(fast_action());
  bool hook_ran = false;
  rig.ow.set_pod_reap_hook([&](cluster::Container& c) {
    hook_ran = true;
    EXPECT_TRUE(rig.k8s.find_container(c.id()) != nullptr);
  });
  rig.ow.invoke("fn", nullptr);
  rig.sim.run_until(seconds(30));
  EXPECT_TRUE(hook_ran);
}

TEST(OpenWhiskTest, AggregateLimitsTrackPool) {
  Rig rig;
  rig.ow.register_action(fast_action());
  for (int i = 0; i < 3; ++i) rig.ow.invoke("fn", nullptr);
  EXPECT_DOUBLE_EQ(rig.ow.aggregate_cpu_limit(), 3.0);  // 3 x 1 vCPU
  EXPECT_EQ(rig.ow.aggregate_mem_limit(), 3 * 256 * kMiB);
}

TEST(OpenWhiskTest, PodsArePinnedToAction) {
  Rig rig;
  rig.ow.register_action(fast_action("a"));
  rig.ow.register_action(fast_action("b"));
  rig.ow.invoke("a", nullptr);
  rig.sim.run_until(seconds(3));  // pod for a is idle now
  rig.ow.invoke("b", nullptr);
  EXPECT_EQ(rig.ow.pod_count(), 2u) << "b cannot reuse a's pod";
}

TEST(OpenWhiskTest, CompletionCountTracks) {
  Rig rig;
  rig.ow.register_action(fast_action());
  for (int i = 0; i < 4; ++i) rig.ow.invoke("fn", nullptr);
  rig.sim.run_until(seconds(10));
  EXPECT_EQ(rig.ow.completed(), 4u);
}

// ------------------------------------------------------------- GridSearchJob

TEST(GridSearchJobTest, CompletesAllTasks) {
  OpenWhiskConfig cfg;
  cfg.max_pods = 8;
  Rig rig(cfg);
  ActionSpec task = fast_action("grid-task");
  rig.ow.register_action(task);
  sim::Duration makespan = 0;
  GridSearchJob job(rig.sim, rig.ow, {.total_tasks = 40},
                    [&](sim::Duration d) { makespan = d; });
  job.start();
  rig.sim.run_until(seconds(60));
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.tasks_completed(), 40u);
  EXPECT_EQ(job.tasks_failed(), 0u);
  EXPECT_GT(makespan, 0);
  // 40 tasks x 130 ms body over 8 pods ~ 5 rounds; with a cold start it is
  // well under a few seconds.
  EXPECT_LT(makespan, seconds(10));
}

TEST(GridSearchJobTest, ZeroTasksThrows) {
  Rig rig;
  rig.ow.register_action(fast_action("grid-task"));
  EXPECT_THROW(
      GridSearchJob(rig.sim, rig.ow, {.total_tasks = 0}, nullptr),
      std::invalid_argument);
}

TEST(GridSearchJobTest, RetriesFailedTasks) {
  // Pods whose working set exceeds the pod memory limit OOM on first touch;
  // the job must retry and (after the pod restarts) eventually... the spec
  // here keeps memory within bounds but kills a pod mid-run manually.
  OpenWhiskConfig cfg;
  cfg.max_pods = 2;
  Rig rig(cfg);
  rig.ow.register_action(fast_action("grid-task"));
  GridSearchJob job(rig.sim, rig.ow, {.total_tasks = 10}, nullptr);
  job.start();
  rig.sim.schedule_at(milliseconds(300), [&] {
    // Kill one pod mid-task: the in-flight task fails and must be retried.
    auto containers = rig.k8s.containers();
    ASSERT_FALSE(containers.empty());
    containers[0]->evict_restart(1.0, 256 * kMiB);
  });
  rig.sim.run_until(seconds(60));
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.tasks_completed(), 10u);
  EXPECT_GE(job.retries(), 1u);
}

// ------------------------------------------------- Escra + OpenWhisk together

TEST(EscraOpenWhiskTest, WatcherAdoptsPodsAndReclaimsIdleMemory) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  core::EscraConfig ec;
  ec.upsilon = 35.0;
  core::EscraSystem escra(sim, net, k8s, 16.0, 4096LL * kMiB, ec);
  escra.watch();
  escra.start();

  OpenWhiskConfig cfg;
  cfg.idle_timeout = seconds(120);
  OpenWhisk ow(sim, k8s, cfg, sim::Rng(2));
  ow.set_pod_reap_hook([&](cluster::Container& c) { escra.release(c); });
  ow.register_action(fast_action());

  int done = 0;
  for (int i = 0; i < 4; ++i) ow.invoke("fn", [&](bool ok) { done += ok; });
  sim.run_until(seconds(2));
  EXPECT_EQ(done, 4);
  EXPECT_EQ(escra.controller().registered_count(), 4u);

  // Idle pods: Escra reclaims their memory to usage + delta and scales CPU
  // down, so the aggregate limits drop well below the static 4 x (1, 256).
  sim.run_until(seconds(30));
  EXPECT_LT(ow.aggregate_cpu_limit(), 2.0);
  EXPECT_LT(ow.aggregate_mem_limit(), 4 * 200 * kMiB);
}

TEST(EscraOpenWhiskTest, ReleasedPodsReturnLimitsToPool) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  core::EscraSystem escra(sim, net, k8s, 4.0, 1024LL * kMiB);
  escra.watch();
  OpenWhiskConfig cfg;
  cfg.idle_timeout = seconds(5);
  OpenWhisk ow(sim, k8s, cfg, sim::Rng(3));
  ow.set_pod_reap_hook([&](cluster::Container& c) { escra.release(c); });
  ow.register_action(fast_action());
  ow.invoke("fn", nullptr);
  sim.run_until(seconds(1));
  EXPECT_GT(escra.app().cpu_allocated(), 0.0);
  sim.run_until(seconds(30));  // pod reaped
  EXPECT_EQ(ow.pod_count(), 0u);
  EXPECT_DOUBLE_EQ(escra.app().cpu_allocated(), 0.0);
  EXPECT_EQ(escra.app().mem_allocated(), 0);
}

TEST(ActionSpecsTest, PaperApplicationsAreRegistered) {
  const ActionSpec ip = make_image_process_action();
  EXPECT_EQ(ip.name, "image-process");
  EXPECT_GT(ip.cpu_cost, 0);
  const ActionSpec gs = make_grid_task_action();
  EXPECT_EQ(gs.name, "grid-task");
  // GridSearch tasks are I/O-heavy (the property Escra exploits).
  EXPECT_GT(gs.io_before + gs.io_after, gs.cpu_cost / 2);
}

}  // namespace
}  // namespace escra::serverless
