#include <gtest/gtest.h>

#include "config/app_config.h"
#include "config/yaml.h"

namespace escra::config {
namespace {

// -------------------------------------------------------------- YAML parser

TEST(YamlTest, EmptyDocumentIsEmptyMap) {
  const YamlNode doc = YamlNode::parse("");
  EXPECT_TRUE(doc.is_map());
  EXPECT_EQ(doc.size(), 0u);
}

TEST(YamlTest, FlatMapping) {
  const YamlNode doc = YamlNode::parse("name: escra\ncount: 7\nratio: 0.5\n");
  EXPECT_EQ(doc.at("name").as_string(), "escra");
  EXPECT_EQ(doc.at("count").as_int(), 7);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 0.5);
}

TEST(YamlTest, NestedMapping) {
  const YamlNode doc = YamlNode::parse(
      "limits:\n"
      "  cpu_cores: 12\n"
      "  memory_mib: 4096\n"
      "name: x\n");
  EXPECT_TRUE(doc.at("limits").is_map());
  EXPECT_EQ(doc.at("limits").at("memory_mib").as_int(), 4096);
  EXPECT_EQ(doc.at("name").as_string(), "x");
}

TEST(YamlTest, ScalarList) {
  const YamlNode doc = YamlNode::parse("items:\n  - a\n  - b\n  - c\n");
  const YamlNode& items = doc.at("items");
  ASSERT_TRUE(items.is_list());
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_string(), "a");
  EXPECT_EQ(items[2].as_string(), "c");
}

TEST(YamlTest, ListOfMaps) {
  const YamlNode doc = YamlNode::parse(
      "services:\n"
      "  - name: webui\n"
      "    replicas: 2\n"
      "  - name: auth\n"
      "    replicas: 1\n");
  const YamlNode& services = doc.at("services");
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0].at("name").as_string(), "webui");
  EXPECT_EQ(services[0].at("replicas").as_int(), 2);
  EXPECT_EQ(services[1].at("name").as_string(), "auth");
}

TEST(YamlTest, CommentsAndBlanksIgnored) {
  const YamlNode doc = YamlNode::parse(
      "# header comment\n"
      "\n"
      "key: value  # trailing comment\n"
      "other: 'has # inside quotes'\n");
  EXPECT_EQ(doc.at("key").as_string(), "value");
  EXPECT_EQ(doc.at("other").as_string(), "has # inside quotes");
}

TEST(YamlTest, QuotedStrings) {
  const YamlNode doc =
      YamlNode::parse("a: \"hello: world\"\nb: 'single'\n");
  EXPECT_EQ(doc.at("a").as_string(), "hello: world");
  EXPECT_EQ(doc.at("b").as_string(), "single");
}

TEST(YamlTest, Booleans) {
  const YamlNode doc = YamlNode::parse("x: true\ny: no\n");
  EXPECT_TRUE(doc.at("x").as_bool());
  EXPECT_FALSE(doc.at("y").as_bool());
  EXPECT_THROW(doc.at("x").as_int(), std::runtime_error);
}

TEST(YamlTest, TypedDefaults) {
  const YamlNode doc = YamlNode::parse("present: 3\n");
  EXPECT_EQ(doc.get_int("present", 0), 3);
  EXPECT_EQ(doc.get_int("absent", 42), 42);
  EXPECT_DOUBLE_EQ(doc.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(doc.get_string("absent", "d"), "d");
}

TEST(YamlTest, Errors) {
  EXPECT_THROW(YamlNode::parse("key: 1\nkey: 2\n"), ParseError);  // duplicate
  EXPECT_THROW(YamlNode::parse("\tkey: 1\n"), ParseError);        // tab indent
  EXPECT_THROW(YamlNode::parse("just a scalar line\n"), ParseError);
  const YamlNode doc = YamlNode::parse("k: v\n");
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
  EXPECT_THROW(doc.at("k").as_double(), std::runtime_error);
  EXPECT_THROW(doc[0], std::runtime_error);  // not a list
}

TEST(YamlTest, ParseErrorCarriesLineNumber) {
  try {
    YamlNode::parse("ok: 1\nbroken line\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(YamlTest, DocumentMarkerSkipped) {
  const YamlNode doc = YamlNode::parse("---\nkey: v\n");
  EXPECT_EQ(doc.at("key").as_string(), "v");
}

TEST(YamlTest, MissingFileThrows) {
  EXPECT_THROW(load_yaml_file("/nonexistent/path.yaml"), std::runtime_error);
}

// -------------------------------------------------------------- AppConfig

constexpr const char* kMinimalApp = R"(
name: demo
limits:
  cpu_cores: 8
  memory_mib: 2048
services:
  - name: front
    replicas: 2
    cpu_per_visit_ms: 3.5
  - name: back
edges:
  - from: front
    to: back
    probability: 0.7
)";

TEST(AppConfigTest, ParsesMinimalApplication) {
  const AppConfig cfg = load_app_config(kMinimalApp);
  EXPECT_EQ(cfg.name, "demo");
  EXPECT_DOUBLE_EQ(cfg.global_cpu_cores, 8.0);
  EXPECT_EQ(cfg.global_mem, 2048 * memcg::kMiB);
  ASSERT_EQ(cfg.graph.services.size(), 2u);
  EXPECT_EQ(cfg.graph.services[0].name, "front");
  EXPECT_EQ(cfg.graph.services[0].replicas, 2);
  EXPECT_EQ(cfg.graph.services[0].cpu_per_visit, sim::milliseconds_f(3.5));
  EXPECT_EQ(cfg.graph.services[1].replicas, 1);  // default
  ASSERT_EQ(cfg.graph.edges.size(), 1u);
  EXPECT_EQ(cfg.graph.edges[0].from, 0u);
  EXPECT_EQ(cfg.graph.edges[0].to, 1u);
  EXPECT_DOUBLE_EQ(cfg.graph.edges[0].probability, 0.7);
  // Paper-default tunables when the escra block is absent.
  EXPECT_DOUBLE_EQ(cfg.escra.kappa, 0.8);
  EXPECT_DOUBLE_EQ(cfg.escra.upsilon, 20.0);
}

TEST(AppConfigTest, EscraBlockOverridesTunables) {
  const AppConfig cfg = load_app_config(R"(
name: tuned
limits:
  cpu_cores: 4
  memory_mib: 1024
escra:
  kappa: 0.5
  gamma: 0.1
  upsilon: 35
  delta_mib: 25
  sigma: 0.3
  report_period_ms: 50
  window_periods: 10
services:
  - name: only
)");
  EXPECT_DOUBLE_EQ(cfg.escra.kappa, 0.5);
  EXPECT_DOUBLE_EQ(cfg.escra.gamma, 0.1);
  EXPECT_DOUBLE_EQ(cfg.escra.upsilon, 35.0);
  EXPECT_EQ(cfg.escra.delta, 25 * memcg::kMiB);
  EXPECT_DOUBLE_EQ(cfg.escra.sigma, 0.3);
  EXPECT_EQ(cfg.escra.cfs_period, sim::milliseconds(50));
  EXPECT_EQ(cfg.escra.window_periods, 10u);
}

TEST(AppConfigTest, RejectsInvalidConfigs) {
  // No services.
  EXPECT_THROW(load_app_config("name: x\nlimits:\n  cpu_cores: 1\n"
                               "  memory_mib: 64\n"),
               std::runtime_error);
  // Unknown edge endpoint.
  EXPECT_THROW(load_app_config(R"(
limits:
  cpu_cores: 1
  memory_mib: 64
services:
  - name: a
edges:
  - from: a
    to: ghost
)"),
               std::runtime_error);
  // Duplicate service name.
  EXPECT_THROW(load_app_config(R"(
limits:
  cpu_cores: 1
  memory_mib: 64
services:
  - name: a
  - name: a
)"),
               std::runtime_error);
  // Missing limits.
  EXPECT_THROW(load_app_config("services:\n  - name: a\n"), std::runtime_error);
  // Nonpositive limits.
  EXPECT_THROW(load_app_config("limits:\n  cpu_cores: 0\n  memory_mib: 64\n"
                               "services:\n  - name: a\n"),
               std::runtime_error);
}

TEST(AppConfigTest, BackwardEdgeRejectedByGraphValidation) {
  EXPECT_THROW(load_app_config(R"(
limits:
  cpu_cores: 1
  memory_mib: 64
services:
  - name: a
  - name: b
edges:
  - from: b
    to: a
)"),
               std::invalid_argument);
}

TEST(AppConfigTest, ShippedConfigsLoad) {
  // The repository's example configuration files must stay valid.
  for (const char* file : {"/configs/teastore.yaml", "/configs/hipster_shop.yaml"}) {
    const std::string path = std::string(ESCRA_SOURCE_DIR) + file;
    SCOPED_TRACE(path);
    AppConfig cfg;
    ASSERT_NO_THROW(cfg = load_app_config_file(path));
    EXPECT_GT(cfg.graph.total_containers(), 0u);
    EXPECT_GT(cfg.global_cpu_cores, 0.0);
  }
}

}  // namespace
}  // namespace escra::config
