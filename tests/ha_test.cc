// The warm-standby replicated controller (src/ha): WAL replication keeps
// every standby a faithful mirror of the leader's book; a leader kill is
// followed by a staggered election, epoch fencing, and a sub-second
// takeover that replays the WAL tail instead of resyncing the Agents; a
// partitioned (still-alive) leader is deposed and its ghost can never move
// a cgroup again. Plus the satellite contracts: the 48-bit sequence-counter
// wrap guard, exactly-once effect for an OOM grant whose leader died
// mid-flight, and the strict-> lease-boundary determinism shared by the
// Agent watchdog and the standby election timer.
#include "ha/ha_control_plane.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "core/messages.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "obs/observer.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

cluster::Container& make_container(cluster::Cluster& k8s,
                                   const std::string& name,
                                   double parallelism = 4.0) {
  cluster::ContainerSpec s;
  s.name = name;
  s.base_memory = 64 * kMiB;
  s.max_parallelism = parallelism;
  return k8s.create_container(std::move(s), 0.5, 128 * kMiB);
}

struct HaRig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  core::EscraSystem escra{sim, net, k8s, 16.0, 8 * kGiB};
  obs::Observer observer;
  std::vector<cluster::Container*> containers;
  // Declared last: destroyed first, so the replication hook detaches while
  // the Controller is still alive.
  std::optional<ha::HaControlPlane> ha;

  explicit HaRig(int standbys, ha::HaConfig cfg = {}) {
    k8s.add_node({});
    k8s.add_node({});
    for (int i = 0; i < 4; ++i) {
      containers.push_back(&make_container(k8s, "c" + std::to_string(i)));
    }
    escra.attach_observer(observer);
    escra.manage(containers);
    escra.start();
    cfg.standbys = standbys;
    ha.emplace(escra, net, cfg);
    ha->start();
  }
};

void expect_replica_equals(const ha::ReplicaState& a,
                           const ha::ReplicaState& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.containers.size(), b.containers.size());
  for (const auto& [id, cs] : a.containers) {
    const auto it = b.containers.find(id);
    ASSERT_NE(it, b.containers.end()) << "container " << id;
    EXPECT_DOUBLE_EQ(cs.cores, it->second.cores) << "container " << id;
    EXPECT_EQ(cs.mem, it->second.mem) << "container " << id;
    EXPECT_EQ(cs.node, it->second.node) << "container " << id;
  }
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (const auto& [key, sl] : a.slots) {
    const auto it = b.slots.find(key);
    ASSERT_NE(it, b.slots.end()) << "slot " << key;
    EXPECT_EQ(sl.seq, it->second.seq) << "slot " << key;
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (const auto& [id, ns] : a.nodes) {
    const auto it = b.nodes.find(id);
    ASSERT_NE(it, b.nodes.end()) << "node " << id;
    EXPECT_EQ(ns.agent_incarnation, it->second.agent_incarnation);
    EXPECT_EQ(ns.dead, it->second.dead);
  }
}

// --- WAL replication ----------------------------------------------------

TEST(HaTest, WalStreamMirrorsLeaderBookOnEveryStandby) {
  HaRig rig(2);
  // Land between decision sweeps: every record appended by the last sweep
  // has had >> one RTT to reach the standbys.
  rig.sim.run_until(seconds(2) + milliseconds(17));

  EXPECT_GT(rig.ha->wal_appends(), 0u);
  for (int rank = 0; rank < 2; ++rank) {
    SCOPED_TRACE("standby rank " + std::to_string(rank));
    expect_replica_equals(rig.ha->book(), rig.ha->standby_replica(rank));
  }
}

TEST(HaTest, DeterministicReplayIsAPureFoldOfTheLog) {
  // Folding any record prefix in index order gives the same state no matter
  // who holds it — replay a synthetic log twice, in one pass and split
  // across two ReplicaStates joined by copy.
  ha::WalLog log;
  std::vector<ha::WalRecord> records;
  {
    ha::WalRecord r;
    r.kind = ha::WalKind::kEpochStart;
    r.epoch = 3;
    records.push_back(r);
    r = {};
    r.kind = ha::WalKind::kRegister;
    r.epoch = 3;
    r.container = 7;
    r.node = 1;
    r.cores = 2.0;
    r.mem = 256 * kMiB;
    records.push_back(r);
    r = {};
    r.kind = ha::WalKind::kCpuSlot;
    r.epoch = 3;
    r.container = 7;
    r.seq = core::pack_update_seq(3, 41);
    r.cores = 3.0;
    records.push_back(r);
    r = {};
    r.kind = ha::WalKind::kAckSlot;
    r.epoch = 3;
    r.container = 7;
    r.seq = core::pack_update_seq(3, 41);
    r.is_mem = false;
    records.push_back(r);
  }
  for (const auto& r : records) log.append(r);

  ha::ReplicaState one_pass;
  for (std::uint64_t i = log.base(); i < log.next_index(); ++i) {
    one_pass.apply(log.at(i));
  }
  ha::ReplicaState prefix;
  prefix.apply(log.at(0));
  prefix.apply(log.at(1));
  ha::ReplicaState resumed = prefix;  // handoff mid-log
  resumed.apply(log.at(2));
  resumed.apply(log.at(3));
  expect_replica_equals(one_pass, resumed);

  EXPECT_EQ(one_pass.epoch, 3u);
  EXPECT_DOUBLE_EQ(one_pass.containers.at(7).cores, 3.0);
  EXPECT_TRUE(one_pass.slots.empty()) << "ack closed the slot";
}

// --- clean failover -----------------------------------------------------

TEST(HaTest, LeaderKillElectsStandbySubSecondWithoutResyncOrFailStatic) {
  HaRig rig(2);
  rig.sim.run_until(seconds(1));
  const std::uint64_t epoch_before = rig.escra.controller().epoch();
  const std::uint64_t resyncs_before = rig.escra.controller().resyncs();
  ASSERT_EQ(rig.escra.controller().registered_count(), 4u);

  rig.sim.schedule_at(seconds(1), [&] { rig.ha->kill_leader(); });
  rig.sim.run_until(seconds(2));

  EXPECT_EQ(rig.ha->failovers(), 1u);
  EXPECT_FALSE(rig.escra.crashed()) << "a standby holds the seat";
  EXPECT_GT(rig.escra.controller().epoch(), epoch_before);
  EXPECT_EQ(rig.ha->epoch(), rig.escra.controller().epoch());
  EXPECT_EQ(rig.ha->standby_count(), 2) << "the pool replenished itself";

  // Takeover rebuilt the registry from the replica — zero resync
  // round-trips — and beat the Agents' 500 ms lease watchdog.
  EXPECT_EQ(rig.escra.controller().registered_count(), 4u);
  EXPECT_EQ(rig.escra.controller().resyncs(), resyncs_before);
  for (cluster::NodeId n = 0; n < 2; ++n) {
    core::Agent* agent = rig.escra.controller().agent_at(n);
    ASSERT_NE(agent, nullptr);
    EXPECT_FALSE(agent->fail_static()) << "node " << n;
    EXPECT_EQ(agent->fenced_epoch(), rig.ha->epoch()) << "node " << n;
  }

  // Sub-second takeover, visible in the trace.
  EXPECT_EQ(rig.observer.h.ha_elections->value(), 1u);
  const obs::TraceBuffer& trace = rig.observer.trace();
  sim::TimePoint elected = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.at(i).kind == obs::EventKind::kLeaderElected) {
      elected = trace.at(i).time;
      break;
    }
  }
  ASSERT_GT(elected, seconds(1));
  EXPECT_LT(elected, seconds(1) + seconds(1)) << "takeover within 1 s";
}

TEST(HaTest, FailoverScheduleIsByteIdenticalAcrossRuns) {
  auto run = [] {
    HaRig rig(2);
    rig.sim.schedule_at(seconds(1), [&] { rig.ha->kill_leader(); });
    rig.sim.run_until(seconds(3));
    std::vector<std::uint64_t> fingerprint;
    const obs::TraceBuffer& trace = rig.observer.trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const obs::TraceEvent& ev = trace.at(i);
      fingerprint.push_back(static_cast<std::uint64_t>(ev.time));
      fingerprint.push_back(static_cast<std::uint64_t>(ev.kind));
      fingerprint.push_back(ev.container);
      fingerprint.push_back(static_cast<std::uint64_t>(ev.detail));
    }
    fingerprint.push_back(rig.ha->epoch());
    fingerprint.push_back(rig.ha->wal_appends());
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

// --- epoch fencing / split brain ----------------------------------------

TEST(HaTest, DeposedLeaderIsFencedAndCanNeverMoveACgroup) {
  HaRig rig(1);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  rig.sim.run_until(seconds(1));
  const std::uint64_t old_epoch = rig.escra.controller().epoch();

  // Partition the leader from its standby only — the Agents still hear
  // both sides. The standby must conclude the leader is dead (it cannot
  // distinguish silence from death), depose it, and fence its epoch.
  rig.net.partition(net::kControllerEndpoint, net::standby_endpoint(0));
  rig.sim.run_until(seconds(1) + milliseconds(400));

  EXPECT_EQ(rig.ha->failovers(), 1u);
  EXPECT_GT(rig.ha->epoch(), old_epoch);
  EXPECT_TRUE(rig.ha->ghost_active())
      << "the old leader was alive: it lives on briefly as a ghost";

  // The fence broadcast reached every Agent; any old-epoch update — even
  // one whose raw sequence would beat the per-resource stale check — is
  // discarded without touching the cgroup.
  for (cluster::NodeId n = 0; n < 2; ++n) {
    core::Agent* agent = rig.escra.controller().agent_at(n);
    ASSERT_NE(agent, nullptr);
    EXPECT_EQ(agent->fenced_epoch(), rig.ha->epoch()) << "node " << n;
  }
  cluster::Container* victim = rig.containers[0];
  const cluster::Node* home = rig.k8s.node_of(victim->id());
  ASSERT_NE(home, nullptr);
  core::Agent* agent = rig.escra.controller().agent_at(home->id());
  const double limit_before = victim->cpu_cgroup().limit_cores();
  EXPECT_EQ(agent->apply_cpu_limit(
                victim->id(), 99.0,
                core::pack_update_seq(old_epoch, core::kUpdateSeqMask - 1)),
            core::Agent::Apply::kFenced);
  EXPECT_DOUBLE_EQ(victim->cpu_cgroup().limit_cores(), limit_before);

  // The ghost abdicates within ghost_abdicate (500 ms) and the cluster
  // stays coherent throughout: no split-brain, monotonic epochs.
  rig.sim.run_until(seconds(2) + milliseconds(200));
  EXPECT_FALSE(rig.ha->ghost_active());
  checker.check_now();
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(HaTest, LeaderChurnUnderInjectedFaultsKeepsInvariantsGreen) {
  HaRig rig(2);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  rig.net.set_fault_rng(sim::Rng(23));
  fault::FaultInjector injector(rig.sim, rig.net, rig.escra);
  injector.inject_rpc_drop(net::Channel::kHaReplication, 0.2, seconds(1),
                           seconds(4));
  rig.sim.schedule_at(seconds(2), [&] { rig.ha->kill_leader(); });
  rig.sim.schedule_at(seconds(4), [&] { rig.ha->kill_leader(); });
  rig.sim.run_until(seconds(6));

  EXPECT_EQ(rig.ha->failovers(), 2u);
  EXPECT_EQ(rig.ha->standby_count(), 2);
  EXPECT_FALSE(rig.escra.crashed());
  checker.check_now();
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- satellite: OOM-grant slot replay is exactly-once -------------------

TEST(HaTest, OomGrantSurvivesLeaderDeathWithExactlyOnceEffect) {
  HaRig rig(1);
  check::InvariantChecker checker(rig.escra, rig.net, rig.observer);
  rig.sim.run_until(seconds(1));

  cluster::Container* victim = rig.containers[0];
  bool granted = false;
  memcg::Bytes shadow_after_grant = 0;
  rig.sim.schedule_at(seconds(1) + milliseconds(3), [&] {
    // The grant opens a desired-state memory slot and streams its WAL
    // record; the leader dies in the same instant — before the Agent's
    // apply, long before the ack. The standby's replica holds the open
    // slot, so takeover replays it under the new epoch.
    granted = rig.escra.controller().handle_oom(*victim, 32 * kMiB,
                                                32 * kMiB);
    shadow_after_grant = rig.ha->book().containers.at(victim->id()).mem;
    rig.ha->kill_leader();
  });
  rig.sim.run_until(seconds(3));

  EXPECT_TRUE(granted);
  EXPECT_EQ(rig.ha->failovers(), 1u);
  // Exactly-once effect: the kernel limit landed on the granted value (the
  // replayed update is idempotent — same absolute limit, fresh sequence),
  // the leader book agrees with the kernel, and the slot is closed.
  EXPECT_EQ(victim->mem_cgroup().limit(), shadow_after_grant);
  EXPECT_EQ(rig.ha->book().containers.at(victim->id()).mem,
            shadow_after_grant);
  EXPECT_TRUE(rig.ha->book().slots.empty())
      << "the replayed slot was acked under the new epoch";
  checker.check_now();
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- satellite: 48-bit sequence-counter wrap guard ----------------------

TEST(HaTest, SeqCounterWrapRollsEpochInsteadOfCorruptingOrder) {
  HaRig rig(1);
  rig.sim.run_until(seconds(1));
  const std::uint64_t epoch_before = rig.escra.controller().epoch();
  // Plant the per-epoch counter at 2^48 - 1; the very next limit update
  // must roll the epoch rather than let the counter overflow into the
  // epoch field (which would make newer updates compare *lower*). Force
  // sequenced updates across the boundary with a pair of OOM grants.
  rig.escra.controller().set_update_seq_for_test(core::kUpdateSeqMask);
  bool granted = false;
  rig.sim.schedule_at(seconds(1) + milliseconds(10), [&] {
    granted = rig.escra.controller().handle_oom(*rig.containers[0],
                                                16 * kMiB, 16 * kMiB);
    rig.escra.controller().handle_oom(*rig.containers[1], 16 * kMiB,
                                      16 * kMiB);
  });
  rig.sim.run_until(seconds(3));

  EXPECT_TRUE(granted);
  EXPECT_GT(rig.escra.controller().epoch(), epoch_before);
  // The system keeps functioning across the roll: updates still land.
  EXPECT_EQ(rig.escra.controller().registered_count(), 4u);
  for (cluster::NodeId n = 0; n < 2; ++n) {
    core::Agent* agent = rig.escra.controller().agent_at(n);
    ASSERT_NE(agent, nullptr);
    EXPECT_FALSE(agent->fail_static());
  }
}

// --- satellite: strict-> lease boundary ---------------------------------

TEST(HaTest, AgentLeaseContactAtExactExpiryInstantHoldsTheLease) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  cluster::Node& node = k8s.add_node({});
  cluster::Container& c = make_container(k8s, "a");
  core::Agent agent(node);
  agent.manage(c);
  agent.connect(sim, net, nullptr);
  // Heartbeat (and piggybacked watchdog) every 50 ms, lease 100 ms. The
  // last contact lands at t=50 ms, so the watchdog tick at t=150 ms sees
  // silence of exactly one lease — the boundary contract is strict >, so
  // the lease HOLDS; only the 200 ms tick (150 ms of silence) trips it.
  agent.start(milliseconds(50), milliseconds(100));
  sim.schedule_at(milliseconds(50), [&] { agent.note_controller_contact(); });

  sim.run_until(milliseconds(160));
  EXPECT_FALSE(agent.fail_static())
      << "contact at exactly lease expiry must hold the lease";
  sim.run_until(milliseconds(210));
  EXPECT_TRUE(agent.fail_static())
      << "strictly longer silence trips fail-static";
}

TEST(HaTest, StandbyElectionInstantIsIdenticalAcrossRuns) {
  // The standby watchdog uses the same strict-> boundary; with identical
  // seeds the election fires at the same simulated microsecond every time.
  auto elected_at = [] {
    HaRig rig(2);
    rig.sim.schedule_at(seconds(1), [&] { rig.ha->kill_leader(); });
    rig.sim.run_until(seconds(2));
    const obs::TraceBuffer& trace = rig.observer.trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace.at(i).kind == obs::EventKind::kLeaderElected) {
        return trace.at(i).time;
      }
    }
    return sim::TimePoint{0};
  };
  const sim::TimePoint first = elected_at();
  ASSERT_GT(first, seconds(1));
  EXPECT_LE(first, seconds(1) + milliseconds(400))
      << "lease timeout 200 ms + watchdog grid: well under a second";
  EXPECT_EQ(first, elected_at());
}

}  // namespace
}  // namespace escra
