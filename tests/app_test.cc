#include <gtest/gtest.h>

#include "app/benchmarks.h"
#include "app/service_graph.h"
#include "cluster/cluster.h"
#include "sim/rng.h"

namespace escra::app {
namespace {

using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

GraphSpec tiny_graph() {
  GraphSpec g;
  g.name = "tiny";
  ServiceSpec front;
  front.name = "front";
  front.replicas = 2;
  front.cpu_per_visit = milliseconds(2);
  front.cpu_jitter_sigma = 0.0;
  front.startup_cpu = 0;
  front.background_cpu_per_sec = 0;
  front.gc_cpu = 0;
  ServiceSpec back = front;
  back.name = "back";
  back.replicas = 1;
  g.services = {front, back};
  g.edges = {{0, 1, 1.0}};
  return g;
}

// ------------------------------------------------------------------ GraphSpec

TEST(GraphSpecTest, ValidationCatchesBadGraphs) {
  GraphSpec g = tiny_graph();
  EXPECT_NO_THROW(g.validate());

  GraphSpec empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  GraphSpec bad_edge = tiny_graph();
  bad_edge.edges.push_back({1, 0, 1.0});  // backward: cycle risk
  EXPECT_THROW(bad_edge.validate(), std::invalid_argument);

  GraphSpec oob = tiny_graph();
  oob.edges.push_back({0, 7, 1.0});
  EXPECT_THROW(oob.validate(), std::invalid_argument);

  GraphSpec bad_prob = tiny_graph();
  bad_prob.edges[0].probability = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

  GraphSpec no_replicas = tiny_graph();
  no_replicas.services[0].replicas = 0;
  EXPECT_THROW(no_replicas.validate(), std::invalid_argument);
}

TEST(GraphSpecTest, TotalContainersSumsReplicas) {
  EXPECT_EQ(tiny_graph().total_containers(), 3u);
}

// ----------------------------------------------------- benchmark applications

struct CountCase {
  Benchmark benchmark;
  std::size_t containers;
};

class BenchmarkCountTest : public ::testing::TestWithParam<CountCase> {};

// The paper's container counts (Section VI-A): Media 32, HipsterShop 11,
// TrainTicket 68, Teastore 7.
TEST_P(BenchmarkCountTest, MatchesPaperContainerCount) {
  const GraphSpec g = make_benchmark(GetParam().benchmark);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.total_containers(), GetParam().containers);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCounts, BenchmarkCountTest,
    ::testing::Values(CountCase{Benchmark::kMedia, 32},
                      CountCase{Benchmark::kHipster, 11},
                      CountCase{Benchmark::kTrainTicket, 68},
                      CountCase{Benchmark::kTeastore, 7}));

TEST(BenchmarkTest, EntryServiceIsFirst) {
  for (const auto b : {Benchmark::kMedia, Benchmark::kHipster,
                       Benchmark::kTrainTicket, Benchmark::kTeastore}) {
    const GraphSpec g = make_benchmark(b);
    // Service 0 must have outgoing edges (it is the entry point).
    bool has_out = false;
    for (const EdgeSpec& e : g.edges) has_out |= e.from == 0;
    EXPECT_TRUE(has_out) << benchmark_name(b);
  }
}

TEST(BenchmarkTest, EveryServiceReachableFromEntry) {
  for (const auto b : {Benchmark::kMedia, Benchmark::kHipster,
                       Benchmark::kTrainTicket, Benchmark::kTeastore}) {
    const GraphSpec g = make_benchmark(b);
    std::vector<bool> reachable(g.services.size(), false);
    reachable[0] = true;
    // Edges are topologically indexed, so one forward pass suffices.
    for (const EdgeSpec& e : g.edges) {
      if (reachable[e.from]) reachable[e.to] = true;
    }
    for (std::size_t s = 0; s < g.services.size(); ++s) {
      EXPECT_TRUE(reachable[s])
          << benchmark_name(b) << " service " << g.services[s].name;
    }
  }
}

// ---------------------------------------------------------------- Application

struct Rig {
  sim::Simulation sim;
  cluster::Cluster k8s{sim};
  Application app;

  explicit Rig(GraphSpec g = tiny_graph())
      : app((k8s.add_node({}), k8s), std::move(g), sim::Rng(1),
            /*initial_cores=*/4.0, /*initial_mem=*/512 * kMiB) {}
};

TEST(ApplicationTest, DeploysOneContainerPerReplica) {
  Rig rig;
  EXPECT_EQ(rig.app.containers().size(), 3u);
  EXPECT_EQ(rig.k8s.container_count(), 3u);
  EXPECT_EQ(rig.app.service_containers(0).size(), 2u);
  EXPECT_EQ(rig.app.service_containers(1).size(), 1u);
  EXPECT_THROW(rig.app.service_containers(9), std::invalid_argument);
}

TEST(ApplicationTest, RequestTraversesGraphAndCompletes) {
  Rig rig;
  bool done = false, ok = false;
  rig.app.submit_request([&](bool o) {
    done = true;
    ok = o;
  });
  rig.sim.run_until(seconds(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.app.requests_started(), 1u);
  // Both entry and backend did work.
  EXPECT_GT(rig.app.service_containers(1)[0]->completed_items(), 0u);
}

TEST(ApplicationTest, RoundRobinSpreadsAcrossReplicas) {
  Rig rig;
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    rig.app.submit_request([&](bool) { ++completed; });
  }
  rig.sim.run_until(seconds(2));
  EXPECT_EQ(completed, 10);
  const auto front = rig.app.service_containers(0);
  EXPECT_EQ(front[0]->completed_items(), front[1]->completed_items());
}

TEST(ApplicationTest, FailedVisitFailsWholeRequest) {
  Rig rig;
  // Kill the single backend replica: in-flight requests through it fail.
  cluster::Container* back = rig.app.service_containers(1)[0];
  back->evict_restart(1.0, 512 * kMiB);
  bool ok = true;
  bool done = false;
  rig.app.submit_request([&](bool o) {
    done = true;
    ok = o;
  });
  rig.sim.run_until(seconds(1));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok) << "backend was restarting: request must fail";
}

TEST(ApplicationTest, ProbabilisticEdgesSometimesSkip) {
  GraphSpec g = tiny_graph();
  g.edges[0].probability = 0.5;
  Rig rig(std::move(g));
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    rig.app.submit_request([&](bool) { ++completed; });
  }
  rig.sim.run_until(seconds(5));
  EXPECT_EQ(completed, 200);
  const auto visits = rig.app.service_containers(1)[0]->completed_items();
  EXPECT_GT(visits, 50u);
  EXPECT_LT(visits, 150u);
}

TEST(ApplicationTest, BackgroundLoadKeepsIdleContainersWarm) {
  GraphSpec g = tiny_graph();
  g.services[0].background_cpu_per_sec = milliseconds(30);
  Rig rig(std::move(g));
  rig.sim.run_until(seconds(10));
  // No requests were sent, yet the front containers burned CPU.
  EXPECT_GT(rig.app.service_containers(0)[0]->cpu_cgroup().total_consumed(),
            milliseconds(100));
}

TEST(ApplicationTest, GcBurstsShowUpAsSpikes) {
  GraphSpec g = tiny_graph();
  g.services[1].gc_cpu = milliseconds(300);
  g.services[1].gc_interval = seconds(2);
  Rig rig(std::move(g));
  rig.sim.run_until(seconds(20));
  // Roughly 10 GC bursts x 300 ms expected over 20 s.
  EXPECT_GT(rig.app.service_containers(1)[0]->cpu_cgroup().total_consumed(),
            milliseconds(1000));
}

TEST(ApplicationTest, StartupBurnHappensOnDeployment) {
  GraphSpec g = tiny_graph();
  g.services[0].startup_cpu = milliseconds(800);
  Rig rig(std::move(g));
  rig.sim.run_until(seconds(3));
  EXPECT_GE(rig.app.service_containers(0)[0]->cpu_cgroup().total_consumed(),
            milliseconds(800));
}

}  // namespace
}  // namespace escra::app
