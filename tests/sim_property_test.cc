// Property tests for the deterministic-simulation primitives the fuzzer and
// every experiment depend on: sim::Histogram (bounded relative error,
// quantile monotonicity, merge equivalence) and sim::Rng (bounds,
// determinism, fork independence, distribution sanity at a fixed seed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/histogram.h"
#include "sim/rng.h"

namespace escra::sim {
namespace {

// precision_bits = 7 (the default): values are bucketed with at most
// 2^-7 relative error.
constexpr double kRelError = 1.0 / 128.0;

TEST(HistogramPropertyTest, QuantilesAreMonotone) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    h.record(static_cast<std::int64_t>(rng.lognormal(8.0, 1.5)) + 1);
  }
  std::int64_t prev = h.percentile(0.0);
  for (double p = 0.5; p <= 100.0; p += 0.5) {
    const std::int64_t q = h.percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(100.0), h.max() + h.max() / 64);
}

TEST(HistogramPropertyTest, RelativeErrorIsBounded) {
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform(1.0, 3.0e9));
    Histogram h;
    h.record(v);
    const std::int64_t est = h.percentile(50.0);
    EXPECT_LE(std::llabs(est - v),
              static_cast<std::int64_t>(std::ceil(v * kRelError)) + 1)
        << "v=" << v;
    EXPECT_EQ(h.min(), v);  // recorded extremes are exact
    EXPECT_EQ(h.max(), v);
  }
}

TEST(HistogramPropertyTest, MergeEqualsCombinedRecording) {
  Rng rng(13);
  std::vector<std::int64_t> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(static_cast<std::int64_t>(rng.lognormal(7.0, 1.0)) + 1);
    b.push_back(static_cast<std::int64_t>(rng.lognormal(9.0, 0.5)) + 1);
  }
  Histogram ha, hb, combined;
  for (std::int64_t v : a) ha.record(v), combined.record(v);
  for (std::int64_t v : b) hb.record(v), combined.record(v);
  ha.merge(hb);
  EXPECT_EQ(ha.count(), combined.count());
  EXPECT_EQ(ha.min(), combined.min());
  EXPECT_EQ(ha.max(), combined.max());
  EXPECT_DOUBLE_EQ(ha.mean(), combined.mean());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(ha.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

TEST(HistogramPropertyTest, RecordNEqualsRepeatedRecord) {
  Histogram bulk, loop;
  bulk.record_n(12345, 1000);
  for (int i = 0; i < 1000; ++i) loop.record(12345);
  EXPECT_EQ(bulk.count(), loop.count());
  EXPECT_DOUBLE_EQ(bulk.mean(), loop.mean());
  EXPECT_EQ(bulk.percentile(99.0), loop.percentile(99.0));
}

TEST(HistogramPropertyTest, CdfIsMonotoneAndComplete) {
  Histogram h;
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(1.0, 1.0e6)));
  }
  double prev = 0.0;
  for (std::int64_t v = 1; v <= 1'000'000; v *= 2) {
    const double c = h.cdf_at(v);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(h.max()), 1.0);
}

TEST(HistogramPropertyTest, OutOfRangeValuesAreClamped) {
  Histogram h(/*max_value=*/1000, /*precision_bits=*/7);
  h.record(-5);
  h.record(0);
  h.record(999'999);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.percentile(0.0), 0);
  EXPECT_LE(h.percentile(100.0), 1000 + 1000 / 64);
}

TEST(RngPropertyTest, UniformStaysInRange) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngPropertyTest, UniformIntCoversInclusiveRange) {
  Rng rng(22);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // both endpoints reachable
}

TEST(RngPropertyTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
    EXPECT_DOUBLE_EQ(a.exponential(3.0), b.exponential(3.0));
    EXPECT_DOUBLE_EQ(a.lognormal(1.0, 0.5), b.lognormal(1.0, 0.5));
    EXPECT_EQ(a.chance(0.5), b.chance(0.5));
  }
}

TEST(RngPropertyTest, ForkIsDeterministicAndIndependent) {
  Rng a(7), b(7);
  Rng child_a = a.fork();
  Rng child_b = b.fork();
  // Forked children agree with each other and with the parents' later draws.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(child_a.uniform(0.0, 1.0), child_b.uniform(0.0, 1.0));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
  // Draining a child does not perturb the parent: a parent that forked and
  // one that forked-and-drained produce the same stream.
  Rng p1(99), p2(99);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  (void)c1;
  for (int i = 0; i < 1000; ++i) (void)c2.uniform(0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(p1.uniform(0.0, 1.0), p2.uniform(0.0, 1.0));
  }
}

TEST(RngPropertyTest, DistributionMeansConvergeAtFixedSeed) {
  // Deterministic (fixed seed), so tight-ish bounds cannot flake.
  Rng rng(23);
  double exp_sum = 0.0, uni_sum = 0.0;
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    exp_sum += rng.exponential(2.0);
    uni_sum += rng.uniform(0.0, 10.0);
    heads += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(exp_sum / n, 0.5, 0.01);
  EXPECT_NEAR(uni_sum / n, 5.0, 0.05);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace escra::sim
