#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <limits>
#include <vector>

namespace escra::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulationTest, RunsEventAtScheduledTime) {
  Simulation sim;
  TimePoint fired_at = -1;
  sim.schedule_at(milliseconds(5), [&] { fired_at = sim.now(); });
  sim.run_until(milliseconds(10));
  EXPECT_EQ(fired_at, milliseconds(5));
}

TEST(SimulationTest, ClockAdvancesToEndEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(seconds(3));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimeEventsFireInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(milliseconds(7), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ScheduleAfterIsRelativeToNow) {
  Simulation sim;
  TimePoint fired_at = -1;
  sim.schedule_at(seconds(1), [&] {
    sim.schedule_after(milliseconds(250), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, seconds(1) + milliseconds(250));
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(seconds(1), [] {});
  sim.run_until(seconds(2));
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(SimulationTest, RunUntilDoesNotRunLaterEvents) {
  Simulation sim;
  bool early = false;
  bool late = false;
  sim.schedule_at(seconds(1), [&] { early = true; });
  sim.schedule_at(seconds(3), [&] { late = true; });
  sim.run_until(seconds(2));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), seconds(2));
  sim.run_until(seconds(3));  // events exactly at the boundary run
  EXPECT_TRUE(late);
}

TEST(SimulationTest, PeriodicEventRepeats) {
  Simulation sim;
  int count = 0;
  sim.schedule_every(seconds(1), seconds(1), [&] { ++count; });
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, PeriodicEventCanCancelItself) {
  Simulation sim;
  int count = 0;
  EventHandle handle;
  handle = sim.schedule_every(seconds(1), seconds(1), [&] {
    if (++count == 3) sim.cancel(handle);
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(seconds(1), [&] { fired = true; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelInvalidHandleIsSafe) {
  Simulation sim;
  sim.cancel(EventHandle{});  // default handle: no-op
  sim.schedule_at(1, [] {});
  EXPECT_NO_THROW(sim.run_all());
}

TEST(SimulationTest, CancelAfterFireIsSafe) {
  Simulation sim;
  const EventHandle h = sim.schedule_at(1, [] {});
  sim.run_all();
  EXPECT_NO_THROW(sim.cancel(h));
  sim.schedule_at(sim.now() + 1, [] {});
  EXPECT_EQ(sim.run_all(), 1u);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(SimulationTest, RunUntilReturnsExecutedCount) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run_until(seconds(1)), 5u);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(SimulationTest, ZeroPeriodThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_every(0, 0, [] {}), std::invalid_argument);
}

TEST(SimulationTest, ManyInterleavedTimersKeepRelativeOrder) {
  Simulation sim;
  std::vector<std::pair<TimePoint, int>> log;
  sim.schedule_every(10, 10, [&] { log.emplace_back(sim.now(), 0); });
  sim.schedule_every(15, 15, [&] { log.emplace_back(sim.now(), 1); });
  sim.run_until(100);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first);
  }
  // 10 firings of the 10-tick timer, 6 of the 15-tick timer.
  int zeros = 0, ones = 0;
  for (const auto& [t, id] : log) (id == 0 ? zeros : ones)++;
  EXPECT_EQ(zeros, 10);
  EXPECT_EQ(ones, 6);
}

// Regression: the old engine's handles were raw sequence numbers, so a
// handle kept after its event fired could alias whatever event recycled the
// slot. Generation tags make stale handles inert. The pool free list is
// LIFO, so back-to-back fire + schedule is guaranteed to recycle the node.
TEST(SimulationTest, StaleHandleAfterFireCannotCancelRecycledNode) {
  Simulation sim;
  int b_fired = 0;
  const EventHandle a = sim.schedule_at(milliseconds(1), [] {});
  sim.run_until(milliseconds(2));  // a fired; its node is back in the pool
  sim.schedule_at(milliseconds(3), [&] { ++b_fired; });  // recycles a's node
  sim.cancel(a);  // stale: must not touch the recycled node
  sim.run_until(milliseconds(4));
  EXPECT_EQ(b_fired, 1);
}

TEST(SimulationTest, StaleHandleAfterCancelCannotCancelRecycledNode) {
  Simulation sim;
  int b_fired = 0;
  const EventHandle a = sim.schedule_at(milliseconds(1), [] {});
  sim.cancel(a);  // node freed immediately (true unlink, no tombstone)
  sim.schedule_at(milliseconds(3), [&] { ++b_fired; });  // recycles a's node
  sim.cancel(a);  // stale again
  sim.run_until(milliseconds(4));
  EXPECT_EQ(b_fired, 1);
}

TEST(SimulationTest, CancelledEventFreesItsPendingSlot) {
  Simulation sim;
  const EventHandle h = sim.schedule_at(milliseconds(1), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_events(), 0u);  // unlinked, not tombstoned
  EXPECT_EQ(sim.run_all(), 0u);
}

// Timers beyond the wheel span (2^32 us, ~71.6 min) overflow to the heap
// and must still interleave with near timers in exact (time, insertion)
// order — including two far timers at the same timestamp.
TEST(SimulationTest, FarTimersBeyondWheelSpanKeepGlobalOrder) {
  Simulation sim;
  const TimePoint span = TimePoint{1} << 32;
  std::vector<int> order;
  sim.schedule_at(3 * span + 5, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(span + 7, [&] { order.push_back(2); });
  sim.schedule_at(3 * span + 5, [&] { order.push_back(4); });  // same tick
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 3 * span + 5);
}

TEST(SimulationTest, CancelWorksInOverflowHeap) {
  Simulation sim;
  const TimePoint span = TimePoint{1} << 32;
  std::vector<int> order;
  sim.schedule_at(span + 1, [&] { order.push_back(1); });
  const EventHandle mid = sim.schedule_at(span + 2, [&] { order.push_back(2); });
  sim.schedule_at(span + 3, [&] { order.push_back(3); });
  sim.cancel(mid);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulationTest, CoalescedCallbacksKeepInsertionOrderAroundPlainEvents) {
  Simulation sim;
  const TimePoint t = milliseconds(5);
  std::vector<char> order;
  sim.schedule_coalesced(t, [&] { order.push_back('a'); });
  sim.schedule_coalesced(t, [&] { order.push_back('b'); });  // same batch
  sim.schedule_at(t, [&] { order.push_back('c'); });  // seals the batch
  sim.schedule_coalesced(t, [&] { order.push_back('d'); });  // fresh batch
  EXPECT_EQ(sim.pending_events(), 4u);  // batches count per member
  sim.run_all();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'd'}));
  EXPECT_EQ(sim.executed_events(), 4u);  // members count, wrappers don't
}

TEST(SimulationTest, PeriodicReArmSealsSameTickBatch) {
  Simulation sim;
  std::vector<char> order;
  bool appended_late = false;
  // P fires at 10ms and re-arms to 20ms; the re-arm is a plain insertion at
  // 20ms, so it seals A's open batch. B, coalesced after the re-arm, must
  // land in a fresh batch and fire after P's second firing.
  sim.schedule_coalesced(milliseconds(20), [&] { order.push_back('a'); });
  const EventHandle p = sim.schedule_every(
      milliseconds(10), milliseconds(10), [&] {
        order.push_back('p');
        if (!appended_late) {
          appended_late = true;
          sim.schedule_coalesced(milliseconds(20),
                                 [&] { order.push_back('b'); });
        }
      });
  sim.run_until(milliseconds(20));
  sim.cancel(p);
  EXPECT_EQ(order, (std::vector<char>{'p', 'a', 'p', 'b'}));
}

TEST(SimulationTest, OneShotCancellingItselfWhileFiringIsSafe) {
  Simulation sim;
  EventHandle h;
  int fired = 0;
  h = sim.schedule_at(milliseconds(1), [&] {
    ++fired;
    sim.cancel(h);  // self-cancel mid-execution: must be a no-op
  });
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, CallbackCancellingLaterSameTickEventWins) {
  Simulation sim;
  std::vector<int> order;
  EventHandle second;
  sim.schedule_at(milliseconds(1), [&] {
    order.push_back(1);
    sim.cancel(second);  // same-tick, later-seq event is already ready
  });
  second = sim.schedule_at(milliseconds(1), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(SimulationTest, LargeCaptureCallbacksStillWork) {
  // Captures past Callback::kInlineBytes take the heap fallback; behavior
  // must be identical.
  Simulation sim;
  std::array<std::uint64_t, 16> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  sim.schedule_at(1, [big, &sum] {
    for (const std::uint64_t v : big) sum += v;
  });
  sim.run_all();
  EXPECT_EQ(sum, 7u * 16u);
}

}  // namespace
}  // namespace escra::sim
