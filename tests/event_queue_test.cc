#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace escra::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulationTest, RunsEventAtScheduledTime) {
  Simulation sim;
  TimePoint fired_at = -1;
  sim.schedule_at(milliseconds(5), [&] { fired_at = sim.now(); });
  sim.run_until(milliseconds(10));
  EXPECT_EQ(fired_at, milliseconds(5));
}

TEST(SimulationTest, ClockAdvancesToEndEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(seconds(3));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimeEventsFireInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(milliseconds(7), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ScheduleAfterIsRelativeToNow) {
  Simulation sim;
  TimePoint fired_at = -1;
  sim.schedule_at(seconds(1), [&] {
    sim.schedule_after(milliseconds(250), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, seconds(1) + milliseconds(250));
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(seconds(1), [] {});
  sim.run_until(seconds(2));
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(SimulationTest, RunUntilDoesNotRunLaterEvents) {
  Simulation sim;
  bool early = false;
  bool late = false;
  sim.schedule_at(seconds(1), [&] { early = true; });
  sim.schedule_at(seconds(3), [&] { late = true; });
  sim.run_until(seconds(2));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), seconds(2));
  sim.run_until(seconds(3));  // events exactly at the boundary run
  EXPECT_TRUE(late);
}

TEST(SimulationTest, PeriodicEventRepeats) {
  Simulation sim;
  int count = 0;
  sim.schedule_every(seconds(1), seconds(1), [&] { ++count; });
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, PeriodicEventCanCancelItself) {
  Simulation sim;
  int count = 0;
  EventHandle handle;
  handle = sim.schedule_every(seconds(1), seconds(1), [&] {
    if (++count == 3) sim.cancel(handle);
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(seconds(1), [&] { fired = true; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelInvalidHandleIsSafe) {
  Simulation sim;
  sim.cancel(EventHandle{});  // default handle: no-op
  sim.schedule_at(1, [] {});
  EXPECT_NO_THROW(sim.run_all());
}

TEST(SimulationTest, CancelAfterFireIsSafe) {
  Simulation sim;
  const EventHandle h = sim.schedule_at(1, [] {});
  sim.run_all();
  EXPECT_NO_THROW(sim.cancel(h));
  sim.schedule_at(sim.now() + 1, [] {});
  EXPECT_EQ(sim.run_all(), 1u);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(SimulationTest, RunUntilReturnsExecutedCount) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run_until(seconds(1)), 5u);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(SimulationTest, ZeroPeriodThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_every(0, 0, [] {}), std::invalid_argument);
}

TEST(SimulationTest, ManyInterleavedTimersKeepRelativeOrder) {
  Simulation sim;
  std::vector<std::pair<TimePoint, int>> log;
  sim.schedule_every(10, 10, [&] { log.emplace_back(sim.now(), 0); });
  sim.schedule_every(15, 15, [&] { log.emplace_back(sim.now(), 1); });
  sim.run_until(100);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first);
  }
  // 10 firings of the 10-tick timer, 6 of the 15-tick timer.
  int zeros = 0, ones = 0;
  for (const auto& [t, id] : log) (id == 0 ? zeros : ones)++;
  EXPECT_EQ(zeros, 10);
  EXPECT_EQ(ones, 6);
}

}  // namespace
}  // namespace escra::sim
