#include "core/accounting.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"

namespace escra::core {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  cluster::Cluster k8s{sim};
  cluster::Node& node = k8s.add_node({});
  UsageAccountant accountant{sim};

  cluster::Container& make(const std::string& name, double cores,
                           memcg::Bytes mem) {
    cluster::ContainerSpec s;
    s.name = name;
    s.base_memory = 512 * kMiB;
    return k8s.create_container(std::move(s), cores, mem);
  }
};

TEST(UsageAccountantTest, ValidatesArguments) {
  sim::Simulation sim;
  EXPECT_THROW(UsageAccountant(sim, 0), std::invalid_argument);
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, kGiB);
  EXPECT_THROW(rig.accountant.track(c, ""), std::invalid_argument);
}

TEST(UsageAccountantTest, ReservedIntegralFollowsLimits) {
  Rig rig;
  cluster::Container& c = rig.make("a", 2.0, kGiB);
  rig.accountant.track(c, "tenant-a");
  rig.sim.run_until(seconds(10));
  const UsageBill& bill = rig.accountant.bill("tenant-a");
  // 2 cores reserved for 10 s = 20 core-seconds.
  EXPECT_NEAR(bill.cpu_core_seconds_reserved, 20.0, 0.5);
  // 1 GiB reserved for 10 s.
  EXPECT_NEAR(bill.mem_gib_seconds_reserved, 10.0, 0.5);
  EXPECT_EQ(bill.samples, 10u);
}

TEST(UsageAccountantTest, UsedIntegralFollowsConsumption) {
  Rig rig;
  cluster::Container& c = rig.make("a", 1.0, kGiB);
  rig.accountant.track(c, "tenant-a");
  c.submit(seconds(4), 0, nullptr);  // 4 core-seconds of work at 1 core
  rig.sim.run_until(seconds(10));
  const UsageBill& bill = rig.accountant.bill("tenant-a");
  EXPECT_NEAR(bill.cpu_core_seconds_used, 4.0, 0.3);
  // Memory used: 512 MiB base for 10 s = 5 GiB-s.
  EXPECT_NEAR(bill.mem_gib_seconds_used, 5.0, 0.3);
  EXPECT_NEAR(bill.cpu_utilization(), 0.4, 0.05);
}

TEST(UsageAccountantTest, BillsAggregatePerTenant) {
  Rig rig;
  cluster::Container& a = rig.make("a", 1.0, kGiB);
  cluster::Container& b = rig.make("b", 3.0, kGiB);
  cluster::Container& other = rig.make("c", 1.0, kGiB);
  rig.accountant.track(a, "alpha");
  rig.accountant.track(b, "alpha");
  rig.accountant.track(other, "beta");
  rig.sim.run_until(seconds(5));
  EXPECT_NEAR(rig.accountant.bill("alpha").cpu_core_seconds_reserved, 20.0, 1.0);
  EXPECT_NEAR(rig.accountant.bill("beta").cpu_core_seconds_reserved, 5.0, 0.5);
  EXPECT_EQ(rig.accountant.tenants().size(), 2u);
}

TEST(UsageAccountantTest, UnknownTenantBillIsZero) {
  Rig rig;
  const UsageBill& bill = rig.accountant.bill("ghost");
  EXPECT_DOUBLE_EQ(bill.cpu_core_seconds_reserved, 0.0);
  EXPECT_DOUBLE_EQ(bill.cost_reserved(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bill.cpu_utilization(), 0.0);
}

TEST(UsageAccountantTest, UntrackStopsMetering) {
  Rig rig;
  cluster::Container& c = rig.make("a", 2.0, kGiB);
  rig.accountant.track(c, "t");
  rig.sim.run_until(seconds(5));
  rig.accountant.untrack(c.id());
  EXPECT_FALSE(rig.accountant.tracking(c.id()));
  const double frozen = rig.accountant.bill("t").cpu_core_seconds_reserved;
  rig.sim.run_until(seconds(10));
  EXPECT_DOUBLE_EQ(rig.accountant.bill("t").cpu_core_seconds_reserved, frozen);
}

TEST(UsageAccountantTest, CostModels) {
  UsageBill bill;
  bill.cpu_core_seconds_used = 10.0;
  bill.cpu_core_seconds_reserved = 40.0;
  bill.mem_gib_seconds_used = 5.0;
  bill.mem_gib_seconds_reserved = 20.0;
  EXPECT_DOUBLE_EQ(bill.cost_reserved(0.01, 0.001), 0.4 + 0.02);
  EXPECT_DOUBLE_EQ(bill.cost_used(0.01, 0.001), 0.1 + 0.005);
  EXPECT_DOUBLE_EQ(bill.cpu_utilization(), 0.25);
  EXPECT_DOUBLE_EQ(bill.mem_utilization(), 0.25);
}

// The Section VII story: under Escra the reserved integral tracks the used
// integral, so reservation-billed cost approaches usage-billed cost.
TEST(UsageAccountantTest, EscraShrinksReservationBill) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  UsageAccountant accountant(sim);

  cluster::ContainerSpec spec;
  spec.name = "svc";
  spec.base_memory = 128 * kMiB;
  // Static container: 4 cores / 1 GiB reserved, mostly idle.
  cluster::Container& fixed = k8s.create_container(spec, 4.0, kGiB);
  // Escra-managed twin with the same light load.
  cluster::Container& managed = k8s.create_container(spec, 4.0, kGiB);
  core::EscraSystem escra(sim, net, k8s, 8.0, 4 * kGiB);
  escra.adopt(managed);
  escra.start();

  accountant.track(fixed, "static");
  accountant.track(managed, "escra");
  sim.schedule_every(sim::kSecond, sim::kSecond, [&] {
    fixed.submit(sim::milliseconds(100), 4 * kMiB, nullptr);   // ~0.1 cores
    managed.submit(sim::milliseconds(100), 4 * kMiB, nullptr);
  });
  sim.run_until(seconds(60));

  const UsageBill& static_bill = accountant.bill("static");
  const UsageBill& escra_bill = accountant.bill("escra");
  // Same work...
  EXPECT_NEAR(static_bill.cpu_core_seconds_used,
              escra_bill.cpu_core_seconds_used, 1.0);
  // ...but the Escra reservation is a fraction of the static one.
  EXPECT_LT(escra_bill.cpu_core_seconds_reserved,
            0.4 * static_bill.cpu_core_seconds_reserved);
  EXPECT_LT(escra_bill.mem_gib_seconds_reserved,
            0.5 * static_bill.mem_gib_seconds_reserved);
  EXPECT_GT(escra_bill.cpu_utilization(), static_bill.cpu_utilization());
}

}  // namespace
}  // namespace escra::core
