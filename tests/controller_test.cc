#include "core/controller.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/escra.h"

namespace escra::core {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::milliseconds;
using sim::seconds;

struct Rig {
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Cluster k8s{sim};
  cluster::Node& node = k8s.add_node({});
  EscraConfig config;
  DistributedContainer app{16.0, 8 * kGiB};
  ResourceAllocator alloc{config, app};
  Controller controller{sim, net, config, alloc};

  cluster::Container& make(const std::string& name, double parallelism = 4.0) {
    cluster::ContainerSpec s;
    s.name = name;
    s.base_memory = 64 * kMiB;
    s.max_parallelism = parallelism;
    return k8s.create_container(std::move(s), 0.5, 128 * kMiB);
  }
};

TEST(ControllerTest, RegistrationAppliesLimitsAndCommitsPool) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 2.0, kGiB);
  EXPECT_TRUE(rig.controller.is_registered(c.id()));
  EXPECT_DOUBLE_EQ(c.cpu_cgroup().limit_cores(), 2.0);
  EXPECT_EQ(c.mem_cgroup().limit(), kGiB);
  EXPECT_DOUBLE_EQ(rig.app.cpu_allocated(), 2.0);
  EXPECT_EQ(rig.controller.registered_count(), 1u);
}

TEST(ControllerTest, LateJoinerGetsDefaultsClampedToPool) {
  Rig rig;
  cluster::Container& a = rig.make("a");
  rig.controller.register_container(a, rig.node, 15.5, 8 * kGiB - 100 * kMiB);
  cluster::Container& b = rig.make("b");
  rig.controller.register_container(b, rig.node, 0.0, 0);  // late joiner
  // Defaults are 1.0 cores / 256 MiB, but only 0.5 cores / 100 MiB remain.
  EXPECT_DOUBLE_EQ(b.cpu_cgroup().limit_cores(), 0.5);
  EXPECT_EQ(b.mem_cgroup().limit(), 100 * kMiB);
}

TEST(ControllerTest, LateJoinerWithEmptyPoolGetsZero) {
  Rig rig;
  cluster::Container& a = rig.make("a");
  rig.controller.register_container(a, rig.node, 16.0, 8 * kGiB);
  cluster::Container& b = rig.make("b");
  EXPECT_NO_THROW(rig.controller.register_container(b, rig.node, 0.0, 0));
  EXPECT_DOUBLE_EQ(b.cpu_cgroup().limit_cores(), 0.0);
}

TEST(ControllerTest, TelemetryFlowsToAllocatorAndBack) {
  Rig rig;
  rig.node.scheduler();  // node created
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 0.5, kGiB);
  // Saturate the container so every period throttles.
  c.submit(seconds(30), 0, nullptr);
  rig.sim.run_until(seconds(2));
  EXPECT_GT(rig.controller.stats_received(), 10u);
  EXPECT_GT(rig.controller.limit_updates_sent(), 0u);
  // The control loop raised the limit above the bootstrap 0.5 cores.
  EXPECT_GT(c.cpu_cgroup().limit_cores(), 0.5);
  EXPECT_GT(rig.net.stats(net::Channel::kCpuTelemetry).messages, 10u);
  EXPECT_GT(rig.net.stats(net::Channel::kControlRpc).messages, 0u);
}

TEST(ControllerTest, DeregisterStopsTelemetryAndFreesPool) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 2.0, kGiB);
  rig.controller.deregister_container(c);
  EXPECT_FALSE(rig.controller.is_registered(c.id()));
  EXPECT_DOUBLE_EQ(rig.app.cpu_allocated(), 0.0);
  const auto msgs_before = rig.net.stats(net::Channel::kCpuTelemetry).messages;
  rig.sim.run_until(seconds(1));
  EXPECT_EQ(rig.net.stats(net::Channel::kCpuTelemetry).messages, msgs_before);
}

TEST(ControllerTest, OomRescueRaisesLimitSynchronously) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 1.0, 100 * kMiB);
  // Working set of 60 MiB on top of 64 MiB base overflows the 100 MiB limit
  // the moment it executes; the pre-OOM hook must rescue it.
  bool ok = false;
  c.submit(milliseconds(20), 60 * kMiB, [&](bool o) { ok = o; });
  rig.sim.run_until(seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(c.running());
  EXPECT_EQ(rig.controller.oom_events(), 1u);
  EXPECT_EQ(rig.controller.oom_rescues(), 1u);
  EXPECT_GT(c.mem_cgroup().limit(), 100 * kMiB);
  EXPECT_GT(rig.net.stats(net::Channel::kMemoryEvent).messages, 0u);
}

TEST(ControllerTest, OomDeniedWhenApplicationExhausted) {
  Rig rig;
  cluster::Container& a = rig.make("a");
  cluster::Container& b = rig.make("b");
  // Consume the entire application memory: a holds almost everything
  // (usage pinned via resident growth so reclamation cannot free it).
  rig.controller.register_container(a, rig.node, 1.0, 8 * kGiB - 128 * kMiB);
  rig.controller.register_container(b, rig.node, 1.0, 128 * kMiB);
  a.adjust_resident(8 * kGiB - 128 * kMiB - 64 * kMiB - 10 * kMiB);
  b.submit(milliseconds(20), 200 * kMiB, nullptr);
  rig.sim.run_until(seconds(1));
  EXPECT_FALSE(b.running()) << "no memory anywhere: the kill must proceed";
  EXPECT_EQ(b.oom_kill_count(), 1u);
}

TEST(ControllerTest, PeriodicReclamationShrinksIdleContainers) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 1.0, kGiB);
  rig.controller.start();
  rig.sim.run_until(seconds(6));  // one 5-second reclamation pass
  // usage 64 MiB -> limit reclaimed to usage + delta (50 MiB).
  EXPECT_EQ(c.mem_cgroup().limit(), 114 * kMiB);
  EXPECT_EQ(rig.app.member_mem(c.id()), 114 * kMiB);
  EXPECT_EQ(rig.controller.total_reclaimed(), kGiB - 114 * kMiB);
  rig.controller.stop();
}

TEST(ControllerTest, ReclamationFreesMemoryForNeedyContainers) {
  Rig rig;
  cluster::Container& fat = rig.make("fat");
  cluster::Container& needy = rig.make("needy");
  rig.controller.register_container(fat, rig.node, 1.0, 8 * kGiB - 130 * kMiB);
  rig.controller.register_container(needy, rig.node, 1.0, 130 * kMiB);
  // Pool is empty, but `fat` only uses 64 MiB: the emergency reclamation
  // path must free its slack so `needy` survives.
  bool ok = false;
  needy.submit(milliseconds(20), 100 * kMiB, [&](bool o) { ok = o; });
  rig.sim.run_until(seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(needy.running());
  EXPECT_LT(fat.mem_cgroup().limit(), kGiB) << "fat was reclaimed";
  EXPECT_EQ(rig.controller.oom_rescues(), 1u);
}

TEST(ControllerTest, EmergencyReclaimReportsPsi) {
  Rig rig;
  cluster::Container& c = rig.make("a");
  rig.controller.register_container(c, rig.node, 1.0, kGiB);
  const memcg::Bytes psi = rig.controller.run_emergency_reclaim();
  EXPECT_EQ(psi, kGiB - 114 * kMiB);
}

TEST(ControllerTest, AgentPerNodeIsReused) {
  Rig rig;
  Agent& a1 = rig.controller.agent_for(rig.node);
  Agent& a2 = rig.controller.agent_for(rig.node);
  EXPECT_EQ(&a1, &a2);
  cluster::Node& other = rig.k8s.add_node({});
  EXPECT_NE(&rig.controller.agent_for(other), &a1);
}

TEST(ControllerTest, StartStopIdempotent) {
  Rig rig;
  rig.controller.start();
  rig.controller.start();
  rig.controller.stop();
  rig.controller.stop();
  rig.sim.run_until(seconds(12));
  EXPECT_EQ(rig.controller.total_reclaimed(), 0) << "loop cancelled";
}

// End-to-end EscraSystem facade behaviour.
TEST(EscraSystemTest, DeployAppliesEquations1And2) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  EscraConfig cfg;
  cfg.sigma = 0.2;
  EscraSystem escra(sim, net, k8s, 8.0, 4 * kGiB, cfg);
  AppSpec spec;
  spec.name = "demo";
  for (int i = 0; i < 4; ++i) {
    cluster::ContainerSpec cs;
    cs.name = "svc" + std::to_string(i);
    spec.containers.push_back(cs);
  }
  const auto deployed = escra.deploy(spec);
  ASSERT_EQ(deployed.size(), 4u);
  for (const cluster::Container* c : deployed) {
    EXPECT_DOUBLE_EQ(c->cpu_cgroup().limit_cores(), 2.0);  // 8 / 4
    EXPECT_EQ(c->mem_cgroup().limit(),
              static_cast<memcg::Bytes>(4.0 * kGiB * 0.8 / 4.0));
  }
  // sigma share withheld in the pool.
  EXPECT_NEAR(static_cast<double>(escra.app().mem_unallocated()),
              0.2 * 4 * kGiB, 4096);
}

TEST(EscraSystemTest, WatcherAdoptsLateContainers) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  k8s.add_node({});
  EscraSystem escra(sim, net, k8s, 8.0, 4 * kGiB);
  escra.watch();
  cluster::ContainerSpec cs;
  cs.name = "pod";
  cluster::Container& c = k8s.create_container(cs, 1.0, 256 * kMiB);
  EXPECT_TRUE(escra.controller().is_registered(c.id()));
  escra.release(c);
  EXPECT_FALSE(escra.controller().is_registered(c.id()));
  escra.unwatch();
  cluster::Container& d = k8s.create_container(cs, 1.0, 256 * kMiB);
  EXPECT_FALSE(escra.controller().is_registered(d.id()));
}

TEST(EscraSystemTest, ManageEmptyListThrows) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  EscraSystem escra(sim, net, k8s, 8.0, 4 * kGiB);
  EXPECT_THROW(escra.manage({}), std::invalid_argument);
}

}  // namespace
}  // namespace escra::core
