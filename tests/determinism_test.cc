// Whole-system determinism regression: two runs with the same seed must be
// indistinguishable — identical final allocations, byte-identical metrics
// CSV and decision-trace JSONL exports. This is the property the fuzzer's
// seed-replay workflow and every experiment in the paper reproduction rest
// on; any wall-clock, pointer-ordering, or uninitialized-read leak into the
// control path breaks it.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/benchmarks.h"
#include "cluster/cluster.h"
#include "core/escra.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"
#include "workload/load_generator.h"

namespace escra {
namespace {

using memcg::kGiB;
using memcg::kMiB;
using sim::seconds;

struct RunResult {
  std::vector<double> cpu_limits;
  std::vector<memcg::Bytes> mem_limits;
  std::uint64_t succeeded = 0;
  std::string metrics_csv;
  std::string trace_jsonl;

  bool operator==(const RunResult& o) const {
    return cpu_limits == o.cpu_limits && mem_limits == o.mem_limits &&
           succeeded == o.succeeded && metrics_csv == o.metrics_csv &&
           trace_jsonl == o.trace_jsonl;
  }
};

RunResult run_once(std::uint64_t seed) {
  sim::Simulation sim;
  net::Network net(sim);
  cluster::Cluster k8s(sim);
  for (int i = 0; i < 3; ++i) k8s.add_node({});
  app::Application application(k8s, app::make_teastore(), sim::Rng(seed), 1.0,
                               512 * kMiB);
  core::EscraSystem escra(sim, net, k8s, 12.0, 8 * kGiB);
  obs::Observer observer;
  escra.attach_observer(observer);
  net.attach_metrics(observer.metrics());
  escra.manage(application.containers());
  escra.start();

  workload::LoadGenerator gen(
      sim, std::make_unique<workload::ExpArrivals>(200.0, sim::Rng(seed + 1)),
      [&](workload::LoadGenerator::Done done) {
        application.submit_request(std::move(done));
      });
  gen.run(seconds(1), seconds(8));
  sim.run_until(seconds(10));

  RunResult result;
  for (const cluster::Container* c : application.containers()) {
    result.cpu_limits.push_back(c->cpu_cgroup().limit_cores());
    result.mem_limits.push_back(c->mem_cgroup().limit());
  }
  result.succeeded = gen.succeeded();
  std::ostringstream metrics;
  observer.metrics().export_csv(metrics, sim.now());
  result.metrics_csv = metrics.str();
  std::ostringstream trace;
  observer.trace().export_jsonl(trace);
  result.trace_jsonl = trace.str();
  return result;
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  const RunResult a = run_once(42);
  const RunResult b = run_once(42);
  EXPECT_EQ(a.cpu_limits, b.cpu_limits);
  EXPECT_EQ(a.mem_limits, b.mem_limits);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_TRUE(a == b);
}

TEST(DeterminismTest, RunsAreNonTrivial) {
  // Guard against the determinism check passing vacuously: the workload must
  // actually exercise the control plane.
  const RunResult a = run_once(42);
  EXPECT_GT(a.succeeded, 1000u);
  EXPECT_FALSE(a.trace_jsonl.empty());
  EXPECT_FALSE(a.metrics_csv.empty());
}

}  // namespace
}  // namespace escra
