#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace escra::cluster {
namespace {

using memcg::kGiB;
using memcg::kMiB;

ContainerSpec spec(const std::string& name) {
  ContainerSpec s;
  s.name = name;
  return s;
}

TEST(NodeTest, TracksMemoryOfAttachedContainers) {
  sim::Simulation sim;
  Cluster cluster(sim);
  Node& node = cluster.add_node({.memory_capacity = 4 * kGiB});
  Container& a = cluster.create_container(spec("a"), 1.0, 256 * kMiB);
  Container& b = cluster.create_container(spec("b"), 1.0, 512 * kMiB);
  EXPECT_EQ(node.container_count(), 2u);
  EXPECT_EQ(node.memory_in_use(),
            a.mem_cgroup().usage() + b.mem_cgroup().usage());
  EXPECT_EQ(node.memory_limit_total(), 768 * kMiB);
  EXPECT_EQ(node.memory_available(), 4 * kGiB - node.memory_in_use());
}

TEST(NodeTest, InvalidConfigThrows) {
  sim::Simulation sim;
  EXPECT_THROW(Node(sim, 0, {.memory_capacity = 0}), std::invalid_argument);
}

TEST(ClusterTest, CreateWithoutNodesThrows) {
  sim::Simulation sim;
  Cluster cluster(sim);
  EXPECT_THROW(cluster.create_container(spec("x"), 1.0, kMiB), std::logic_error);
}

TEST(ClusterTest, LeastLoadedPlacementBalances) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_node({});
  cluster.add_node({});
  cluster.add_node({});
  for (int i = 0; i < 9; ++i) {
    cluster.create_container(spec("c" + std::to_string(i)), 0.5, 64 * kMiB);
  }
  for (const auto& node : cluster.nodes()) {
    EXPECT_EQ(node->container_count(), 3u);
  }
  EXPECT_EQ(cluster.container_count(), 9u);
}

TEST(ClusterTest, PinnedPlacement) {
  sim::Simulation sim;
  Cluster cluster(sim);
  Node& first = cluster.add_node({});
  cluster.add_node({});
  for (int i = 0; i < 4; ++i) {
    cluster.create_container(spec("p"), 0.5, 64 * kMiB, &first);
  }
  EXPECT_EQ(first.container_count(), 4u);
  EXPECT_EQ(cluster.nodes()[1]->container_count(), 0u);
}

TEST(ClusterTest, FindAndNodeOf) {
  sim::Simulation sim;
  Cluster cluster(sim);
  Node& node = cluster.add_node({});
  Container& c = cluster.create_container(spec("x"), 1.0, kMiB);
  EXPECT_EQ(cluster.find_container(c.id()), &c);
  EXPECT_EQ(cluster.node_of(c.id()), &node);
  EXPECT_EQ(cluster.find_container(9999), nullptr);
  EXPECT_EQ(cluster.node_of(9999), nullptr);
}

TEST(ClusterTest, ObserverSeesCreations) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_node({});
  std::vector<ContainerId> seen;
  cluster.set_container_observer(
      [&](Container& c, Node&) { seen.push_back(c.id()); });
  Container& a = cluster.create_container(spec("a"), 1.0, kMiB);
  Container& b = cluster.create_container(spec("b"), 1.0, kMiB);
  EXPECT_EQ(seen, (std::vector<ContainerId>{a.id(), b.id()}));
}

TEST(ClusterTest, RemoveDetachesAndDestroys) {
  sim::Simulation sim;
  Cluster cluster(sim);
  Node& node = cluster.add_node({});
  Container& c = cluster.create_container(spec("gone"), 1.0, kMiB);
  const ContainerId id = c.id();
  cluster.remove_container(c);
  EXPECT_EQ(cluster.find_container(id), nullptr);
  EXPECT_EQ(node.container_count(), 0u);
  EXPECT_EQ(cluster.container_count(), 0u);
}

TEST(ClusterTest, IdsAreUniqueAndStable) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_node({});
  Container& a = cluster.create_container(spec("a"), 1.0, kMiB);
  Container& b = cluster.create_container(spec("b"), 1.0, kMiB);
  const ContainerId a_id = a.id();
  cluster.remove_container(a);
  Container& c = cluster.create_container(spec("c"), 1.0, kMiB);
  EXPECT_NE(b.id(), c.id());
  EXPECT_NE(a_id, c.id()) << "ids are never reused";
}

TEST(ClusterTest, ContainersListMatchesCreation) {
  sim::Simulation sim;
  Cluster cluster(sim);
  cluster.add_node({});
  cluster.create_container(spec("a"), 1.0, kMiB);
  cluster.create_container(spec("b"), 1.0, kMiB);
  const auto all = cluster.containers();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name(), "a");
  EXPECT_EQ(all[1]->name(), "b");
}

}  // namespace
}  // namespace escra::cluster
